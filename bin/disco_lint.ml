(* disco-lint: invariant checker for the disco tree.

   Default mode parses every .ml under the given roots (default: lib bin
   bench) and enforces the syntactic catalogue in Lint.Rules (L1-L6).
   With --typed it instead loads the .cmt files dune emitted under
   --build-dir, builds the interprocedural call graph and enforces the
   typed catalogue in Lint.Typed_rules (L7 alloc discipline, L8 domain
   escape, L9 exception hygiene, H0 manifest integrity).

   Exits 1 iff any error-severity diagnostic is reported, 2 on usage
   errors, including a root that does not exist or matches no
   .ml/.cmt files (a typo'd path must not silently pass). *)

let usage =
  "disco-lint [--typed] [--build-dir DIR] [--json] [--warn RULE] [--rules] \
   [DIR|FILE]..."

let print_rule r =
  Printf.printf "%s %-32s %s\n    why:  %s\n    hint: %s\n" r.Lint.Rules.id
    ("(" ^ r.Lint.Rules.title ^ ")")
    (Lint.Diagnostic.severity_label r.Lint.Rules.default_severity)
    r.Lint.Rules.rationale r.Lint.Rules.hint

let print_catalogue () =
  print_endline "Syntactic pass (default):";
  List.iter print_rule Lint.Rules.catalogue;
  print_endline "";
  print_endline "Typed pass (--typed, needs `dune build @check` artifacts):";
  List.iter print_rule Lint.Typed_rules.catalogue

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("disco-lint: " ^ s); exit 2) fmt

let () =
  let json = ref false in
  let typed = ref false in
  let show_rules = ref false in
  let build_dir = ref "_build/default" in
  let source_root = ref "." in
  let overrides = ref [] in
  let roots = ref [] in
  let demote rule =
    match (Lint.Rules.find rule, Lint.Typed_rules.find rule) with
    | None, None -> fail "unknown rule %s" rule
    | _ -> overrides := (rule, Lint.Diagnostic.Warning) :: !overrides
  in
  let spec =
    [
      ("--typed", Arg.Set typed, " run the typed (.cmt-based) pass: L7/L8/L9/H0");
      ( "--build-dir",
        Arg.Set_string build_dir,
        "DIR where dune put the .cmt files (default: _build/default)" );
      ( "--source-root",
        Arg.Set_string source_root,
        "DIR sources live under, for waiver comments (default: .)" );
      ("--json", Arg.Set json, " emit a machine-readable JSON summary");
      ("--warn", Arg.String demote, "RULE demote RULE from error to warning");
      ("--rules", Arg.Set show_rules, " print the rule catalogues and exit");
    ]
  in
  Arg.parse spec (fun d -> roots := d :: !roots) usage;
  if !show_rules then begin
    print_catalogue ();
    exit 0
  end;
  let explicit_roots = !roots <> [] in
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | r -> r
  in
  (* A requested path that does not exist is an error in both modes (in
     typed mode roots scope cmt sources, which only exist for real paths). *)
  if explicit_roots then
    List.iter
      (fun r -> if not (Sys.file_exists r) then fail "no such path: %s" r)
      roots;
  let summary =
    if !typed then begin
      match
        Lint.Typed_driver.run ~severity_overrides:!overrides
          ~build_dir:!build_dir ~source_root:!source_root ~roots ()
      with
      | Error e -> fail "%s" e
      | Ok (units, summary) ->
          (match Lint.Typed_load.roots_without_units ~units roots with
          | [] -> ()
          | missing ->
              fail "no .cmt files found for %s (run `dune build @check`?)"
                (String.concat " " missing));
          summary
    end
    else begin
      let files = Lint.Driver.collect_ml_files roots in
      List.iter
        (fun r ->
          let has file = Lint.Typed_load.under_root r (Lint.Driver.normalize_path file) in
          if not (List.exists has files) then fail "no .ml files under %s" r)
        roots;
      Lint.Driver.lint_files ~severity_overrides:!overrides files
    end
  in
  if !json then print_endline (Lint.Driver.summary_to_json summary)
  else begin
    List.iter
      (fun d -> print_endline (Lint.Diagnostic.to_human d))
      summary.Lint.Driver.diagnostics;
    Printf.printf "disco-lint%s: %d %s checked, %d errors, %d warnings\n"
      (if !typed then " --typed" else "")
      summary.Lint.Driver.files
      (if !typed then "units" else "files")
      summary.Lint.Driver.errors summary.Lint.Driver.warnings
  end;
  exit (if summary.Lint.Driver.errors > 0 then 1 else 0)
