(* disco-lint: AST-level invariant checker for the disco tree.

   Parses every .ml under the given roots (default: lib bin bench) and
   enforces the rule catalogue in Lint.Rules (L1 determinism, L2 hash-space
   discipline, L3 no swallowed exceptions, L4 no stray output, L5 no
   Obj.magic / untyped ignore).  Exits non-zero iff any error-severity
   diagnostic is reported. *)

let usage = "disco-lint [--json] [--warn RULE] [--rules] [DIR|FILE]..."

let print_catalogue () =
  List.iter
    (fun r ->
      Printf.printf "%s %-28s %s\n    why:  %s\n    hint: %s\n" r.Lint.Rules.id
        ("(" ^ r.Lint.Rules.title ^ ")")
        (Lint.Diagnostic.severity_label r.Lint.Rules.default_severity)
        r.Lint.Rules.rationale r.Lint.Rules.hint)
    Lint.Rules.catalogue

let () =
  let json = ref false in
  let show_rules = ref false in
  let overrides = ref [] in
  let roots = ref [] in
  let demote rule =
    match Lint.Rules.find rule with
    | Some _ -> overrides := (rule, Lint.Diagnostic.Warning) :: !overrides
    | None ->
        Printf.eprintf "disco-lint: unknown rule %s\n" rule;
        exit 2
  in
  let spec =
    [
      ("--json", Arg.Set json, " emit a machine-readable JSON summary");
      ("--warn", Arg.String demote, "RULE demote RULE from error to warning");
      ("--rules", Arg.Set show_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun d -> roots := d :: !roots) usage;
  if !show_rules then begin
    print_catalogue ();
    exit 0
  end;
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | r -> r
  in
  let files = Lint.Driver.collect_ml_files roots in
  if files = [] then begin
    Printf.eprintf "disco-lint: no .ml files under %s\n" (String.concat " " roots);
    exit 2
  end;
  let summary = Lint.Driver.lint_files ~severity_overrides:!overrides files in
  if !json then print_endline (Lint.Driver.summary_to_json summary)
  else begin
    List.iter
      (fun d -> print_endline (Lint.Diagnostic.to_human d))
      summary.Lint.Driver.diagnostics;
    Printf.printf "disco-lint: %d files checked, %d errors, %d warnings\n"
      summary.Lint.Driver.files summary.Lint.Driver.errors
      summary.Lint.Driver.warnings
  end;
  exit (if summary.Lint.Driver.errors > 0 then 1 else 0)
