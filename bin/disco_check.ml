(* disco-check: seeded property-based + differential testing of every
   registered router.

     disco-check --seed 42 --cases 200
     disco-check --seed 42 --cases 200 --max-nodes 96 --scheme disco
     disco-check --replay 'seed=123,family=gnm,n=32,pairs=4,workload=uniform,churn=0'
     disco-check --cases 2000 --json --out report.json

   Exit status 0 iff no invariant violation was found. On failure the
   report includes, per counterexample, the shrunk scenario and the exact
   command that replays it. *)

open Cmdliner
module Check = Disco_check
module Protocol = Disco_experiments.Protocol
module Routers = Disco_experiments.Routers

let seed_arg = Disco_experiments.Cli.seed_term
let jobs_arg = Disco_experiments.Cli.jobs_term

let cases_arg =
  Arg.(value & opt int 50
       & info [ "cases" ] ~docv:"N" ~doc:"Number of generated scenarios to run.")

let max_nodes_arg =
  Arg.(value & opt int 128
       & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Largest topology size the generator may draw.")

(* Shared with disco-sim: one scheme vocabulary, plus "all". *)
let scheme_arg = Disco_experiments.Cli.scheme_term ~extra:[ "all" ] ~default:"all" ()

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit the machine-readable JSON summary.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Also write the JSON summary to $(docv).")

let replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"SCENARIO"
           ~doc:"Run one explicit scenario (the key=value form a failure \
                 report prints) instead of generating cases.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-case progress dots.")

(* The term already validated the name against the registry. *)
let routers_for = function
  | "all" -> Routers.all ()
  | name -> [ Routers.find_exn name ]

let emit ~json ~out summary =
  let js = Check.Harness.to_json summary in
  match
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc js;
        output_char oc '\n';
        close_out oc
    | None -> ()
  with
  | () ->
      if json then print_endline js else print_string (Check.Harness.report summary);
      Ok ()
  | exception Sys_error e -> Error (Printf.sprintf "cannot write report: %s" e)

let run seed cases max_nodes scheme json out replay quiet jobs =
  let routers = routers_for scheme in
  (
      match replay with
      | Some desc -> (
          match Check.Scenario.of_string desc with
          | Error e -> `Error (false, Printf.sprintf "bad --replay scenario: %s" e)
          | Ok sc ->
              let cx = Check.Harness.check_scenario ~routers sc in
              let counterexamples = Option.to_list cx in
              let summary =
                {
                  Check.Harness.run_seed = sc.Check.Scenario.seed;
                  cases = 1;
                  max_nodes = sc.Check.Scenario.n;
                  schemes = List.map Protocol.name_of routers;
                  total_pairs = sc.Check.Scenario.pairs;
                  total_route_failures = 0;
                  counterexamples;
                }
              in
              match emit ~json ~out summary with
              | Error e -> `Error (false, e)
              | Ok () ->
                  if counterexamples = [] then `Ok ()
                  else `Error (false, "invariant violations found"))
      | None ->
          let on_case ~case ~failed =
            if not (quiet || json) then begin
              print_char (if failed then 'X' else '.');
              if (case + 1) mod 50 = 0 then Printf.printf " %d\n" (case + 1);
              flush stdout
            end
          in
          let summary =
            Check.Harness.run_cases ~routers ~on_case ~jobs ~run_seed:seed ~cases
              ~max_nodes ()
          in
          if not (quiet || json) then print_newline ();
          match emit ~json ~out summary with
          | Error e -> `Error (false, e)
          | Ok () ->
              if Check.Harness.passed summary then `Ok ()
              else `Error (false, "invariant violations found"))

let cmd =
  let doc = "Property-based invariant checking for every registered router" in
  Cmd.v
    (Cmd.info "disco-check" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ cases_arg $ max_nodes_arg $ scheme_arg $ json_arg
       $ out_arg $ replay_arg $ quiet_arg $ jobs_arg))

let () = exit (Cmd.eval cmd)
