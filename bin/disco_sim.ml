(* disco-sim: command-line playground for the Disco protocols.

     disco-sim gen --kind geometric -n 1024 -o topo.graph
     disco-sim route --kind gnm -n 512 --src 3 --dst 77
     disco-sim route --input topo.graph --src 0 --dst 9 --protocol s4
     disco-sim state --kind as-level -n 2048
     disco-sim estimate --kind gnm -n 1024
     disco-sim trace --kind geometric -n 512 --src 3 --dst 99 --scheme vrr
     disco-sim dot --kind gnm -n 64 --src 0 --dst 9 -o route.dot
     disco-sim figure --id fig3 --scale small
*)

open Cmdliner
module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

let kind_of_string s =
  match Gen.kind_of_string s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "unknown topology kind %S" s)

let load_graph ~input ~kind ~n ~seed =
  match input with
  | Some path -> Ok (Disco_graph.Graph_io.of_file path)
  | None -> (
      match kind_of_string kind with
      | Ok k -> Ok (Gen.by_kind ~rng:(Rng.create seed) k ~n)
      | Error e -> Error e)

(* Common flags *)
let kind_arg =
  Arg.(value & opt string "gnm"
       & info [ "kind"; "k" ] ~docv:"KIND"
           ~doc:"Topology: gnm, geometric, as-level, router-level.")

let n_arg =
  Arg.(value & opt int 512 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg = Disco_experiments.Cli.seed_term

let input_arg =
  Arg.(value & opt (some string) None
       & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Edge-list file instead of a generator.")

(* gen: write a topology to a file. *)
let gen_cmd =
  let run kind n seed output =
    match kind_of_string kind with
    | Error e -> `Error (false, e)
    | Ok k ->
        let g = Gen.by_kind ~rng:(Rng.create seed) k ~n in
        (match output with
        | Some path ->
            Disco_graph.Graph_io.to_file path g;
            Printf.printf "wrote %d nodes / %d edges to %s\n" (Graph.n g) (Graph.m g) path
        | None -> Disco_graph.Graph_io.to_channel stdout g);
        `Ok ()
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a topology as an edge list")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ output))

let scheme_arg = Disco_experiments.Cli.scheme_term ~default:"disco" ()

(* route: walk one pair through any registered scheme's data plane. *)
let route_cmd =
  let run kind n seed input src dst protocol =
    match load_graph ~input ~kind ~n ~seed with
    | Error e -> `Error (false, e)
    | Ok g ->
        let nn = Graph.n g in
        if src < 0 || src >= nn || dst < 0 || dst >= nn then
          `Error (false, "src/dst out of range")
        else begin
          let packed = Disco_experiments.Routers.find_exn protocol in
          let module R = (val packed : Disco_experiments.Protocol.ROUTER) in
          let tb = Disco_experiments.Testbed.of_graph ~seed g in
          let router = R.build tb in
          let tel = Disco_util.Telemetry.create () in
          let shortest = Dijkstra.distance g src dst in
          let report name = function
            | Some path ->
                Printf.printf "%-18s %2d hops  stretch %.3f  %s\n" name
                  (List.length path - 1)
                  (if shortest > 0.0 then Dijkstra.path_length g path /. shortest
                   else 1.0)
                  (String.concat "-" (List.map string_of_int path))
            | None -> Printf.printf "%-18s routing failed\n" name
          in
          let module Walk = Disco_experiments.Walk in
          report (R.name ^ "-first")
            (Walk.first (module R) router ~tel ~graph:g ~src ~dst);
          report (R.name ^ "-later")
            (Walk.later (module R) router ~tel ~graph:g ~src ~dst);
          Printf.printf "%-18s %.3f\n" "shortest" shortest;
          Printf.printf "%-18s %d entries\n" "state@src"
            (R.state_entries router src);
          `Ok ()
        end
  in
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"NODE" ~doc:"Source node.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"NODE" ~doc:"Destination node.") in
  Cmd.v (Cmd.info "route" ~doc:"Route one source-destination pair")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ input_arg $ src $ dst $ scheme_arg))

(* state: per-protocol state summary. *)
let state_cmd =
  let run kind n seed with_vrr =
    match kind_of_string kind with
    | Error e -> `Error (false, e)
    | Ok k ->
        let tb = Disco_experiments.Testbed.make ~seed k ~n in
        let st = Disco_experiments.Metrics.state ~with_vrr tb in
        let row name samples =
          let s = Stats.summarize samples in
          Printf.printf "%-12s mean %10.1f  p95 %10.1f  max %10.1f\n" name s.Stats.mean
            s.Stats.p95 s.Stats.max
        in
        row "disco" st.Disco_experiments.Metrics.disco;
        row "nddisco" st.Disco_experiments.Metrics.nddisco;
        row "s4" st.Disco_experiments.Metrics.s4;
        row "path-vector" st.Disco_experiments.Metrics.pathvector;
        (match st.Disco_experiments.Metrics.vrr with
        | Some v -> row "vrr" v
        | None -> ());
        `Ok ()
  in
  let with_vrr =
    Arg.(value & flag & info [ "vrr" ] ~doc:"Also build VRR (slower).")
  in
  Cmd.v (Cmd.info "state" ~doc:"Per-node routing state summary")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ with_vrr))

(* estimate: synopsis diffusion demo. *)
let estimate_cmd =
  let run kind n seed buckets =
    match kind_of_string kind with
    | Error e -> `Error (false, e)
    | Ok k ->
        let g = Gen.by_kind ~rng:(Rng.create seed) k ~n in
        let o =
          Disco_synopsis.Diffusion.estimate_n ~graph:g ~node_name:Core.Name.default
            ~buckets ()
        in
        let s = Stats.summarize o.Disco_synopsis.Diffusion.estimates in
        Printf.printf
          "true n=%d; estimates mean=%.0f min=%.0f max=%.0f (%dB synopses, %d rounds, %d msgs)\n"
          n s.Stats.mean s.Stats.min s.Stats.max o.Disco_synopsis.Diffusion.sketch_bytes
          o.Disco_synopsis.Diffusion.rounds_run o.Disco_synopsis.Diffusion.messages;
        `Ok ()
  in
  let buckets =
    Arg.(value & opt int 32 & info [ "buckets" ] ~docv:"B" ~doc:"FM bitmaps (power of 2).")
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Estimate n by synopsis diffusion")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ buckets))

(* trace: packet-level walk with per-hop decisions, for any registered
   scheme — the same walker the figures measure with. *)
let trace_cmd =
  let run kind n seed input src dst protocol =
    match load_graph ~input ~kind ~n ~seed with
    | Error e -> `Error (false, e)
    | Ok g ->
        let nn = Graph.n g in
        if src < 0 || src >= nn || dst < 0 || dst >= nn then
          `Error (false, "src/dst out of range")
        else begin
          let packed = Disco_experiments.Routers.find_exn protocol in
          let module R = (val packed : Disco_experiments.Protocol.ROUTER) in
          let module Walk = Disco_experiments.Walk in
          let tb = Disco_experiments.Testbed.of_graph ~seed g in
          let router = R.build tb in
          let tel = Disco_util.Telemetry.create () in
          let show label tr =
            Printf.printf "%s (%s):\n%s\n" label R.name
              (Format.asprintf "%a" Core.Dataplane.pp_trace tr)
          in
          show "first packet"
            (Walk.first_trace (module R) router ~tel ~graph:g ~src ~dst);
          show "later packets"
            (Walk.later_trace (module R) router ~tel ~graph:g ~src ~dst);
          `Ok ()
        end
  in
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"NODE" ~doc:"Source node.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"NODE" ~doc:"Destination node.") in
  Cmd.v (Cmd.info "trace" ~doc:"Trace a packet hop by hop with per-node decisions")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ input_arg $ src $ dst $ scheme_arg))

(* dot: Graphviz export, optionally highlighting a Disco route. *)
let dot_cmd =
  let run kind n seed input src dst output =
    match load_graph ~input ~kind ~n ~seed with
    | Error e -> `Error (false, e)
    | Ok g ->
        let highlight =
          match (src, dst) with
          | Some s, Some d when s <> d ->
              let disco = Core.Disco.build ~rng:(Rng.create seed) g in
              Core.Disco.route_first disco ~src:s ~dst:d
          | _ -> []
        in
        let dot = Disco_graph.Graph_io.to_dot ~highlight g in
        (match output with
        | Some path ->
            let oc = open_out path in
            Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
                output_string oc dot);
            Printf.printf "wrote %s\n" path
        | None -> print_string dot);
        `Ok ()
  in
  let src = Arg.(value & opt (some int) None & info [ "src" ] ~docv:"NODE" ~doc:"Route source.") in
  let dst = Arg.(value & opt (some int) None & info [ "dst" ] ~docv:"NODE" ~doc:"Route destination.") in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the topology as Graphviz, optionally with a route highlighted")
    Term.(ret (const run $ kind_arg $ n_arg $ seed_arg $ input_arg $ src $ dst $ output))

(* figure: delegate to the experiment harness; parsing shared with
   bench/main.exe via Disco_experiments.Cli. *)
let figure_cmd =
  let run id scale seed jobs = Disco_experiments.Figures.run ~seed ~jobs scale id in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate one evaluation figure")
    Term.(
      const run
      $ Disco_experiments.Cli.figure_term ~default:"fig3" ()
      $ Disco_experiments.Cli.scale_term $ seed_arg
      $ Disco_experiments.Cli.jobs_term)

let () =
  let info =
    Cmd.info "disco-sim" ~doc:"Scalable routing on flat names (Disco) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; route_cmd; trace_cmd; state_cmd; estimate_cmd; dot_cmd; figure_cmd ]))
