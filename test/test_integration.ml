(* Cross-module integration: the dynamic protocols must converge to the
   static simulator's state (the paper validates exactly this in §5,
   "Accuracy of static simulation"), and the full Disco stack must deliver
   between all pairs. *)

module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module Pathvector = Disco_pathvector.Pathvector

let test_dynamic_vicinity_matches_static () =
  let g = Helpers.random_weighted_graph 41 in
  let n = Graph.n g in
  let rng = Rng.create 41 in
  let nd = Core.Nddisco.build ~rng g in
  let flags = nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark in
  let k = Core.Vicinity.k nd.Core.Nddisco.vicinity in
  let r =
    Pathvector.run ~graph:g
      ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k }) ()
  in
  (* Distance multisets of dynamic vicinities match the static ones. *)
  for v = 0 to n - 1 do
    let static =
      (Core.Vicinity.view nd.Core.Nddisco.vicinity v).Core.Vicinity.dists
      |> Array.to_list
      |> List.filter_map (fun d -> Some d)
    in
    let static =
      (* Static vicinities may include landmarks; the dynamic filter tracks
         non-landmarks separately, so compare against non-landmark members. *)
      List.filteri
        (fun i _ ->
          not flags.((Core.Vicinity.view nd.Core.Nddisco.vicinity v).Core.Vicinity.members.(i)))
        static
      |> List.sort compare
    in
    let dynamic = ref [] in
    Hashtbl.iter
      (fun d (route : Pathvector.route) ->
        if (not flags.(d)) && d <> v then dynamic := route.Pathvector.dist :: !dynamic)
      r.Pathvector.tables.(v);
    let dynamic = List.sort compare !dynamic in
    (* The dynamic table holds k non-landmark routes; the static vicinity
       holds the k closest nodes of any kind. Compare the common prefix. *)
    let rec common a b =
      match (a, b) with
      | x :: a', y :: b' when Float.abs (x -. y) < 1e-9 -> 1 + common a' b'
      | _ -> 0
    in
    let c = common static dynamic in
    Alcotest.(check bool)
      (Printf.sprintf "node %d: %d common closest" v c)
      true
      (c >= min (List.length static) (List.length dynamic) - 0)
  done

let test_dynamic_landmark_routes_match_static () =
  let g = Helpers.random_weighted_graph 43 in
  let rng = Rng.create 43 in
  let nd = Core.Nddisco.build ~rng g in
  let flags = nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark in
  let k = Core.Vicinity.k nd.Core.Nddisco.vicinity in
  let r =
    Pathvector.run ~graph:g
      ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k }) ()
  in
  for v = 0 to Graph.n g - 1 do
    Array.iter
      (fun lm ->
        if lm <> v then begin
          match Hashtbl.find_opt r.Pathvector.tables.(v) lm with
          | None -> Alcotest.failf "node %d lacks landmark %d" v lm
          | Some route ->
              let static = Core.Landmark_trees.dist nd.Core.Nddisco.trees ~lm v in
              Alcotest.(check bool) "landmark dist converged" true
                (Float.abs (route.Pathvector.dist -. static) < 1e-9)
        end)
      nd.Core.Nddisco.landmarks.Core.Landmarks.ids
  done

let test_disco_all_pairs_delivery () =
  let g = Helpers.random_graph ~n_min:48 ~n_max:49 45 in
  let d = Core.Disco.build ~rng:(Rng.create 45) g in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then begin
        let first = Core.Disco.route_first d ~src:s ~dst:t in
        Helpers.check_path g ~src:s ~dst:t first;
        let later = Core.Disco.route_later d ~src:s ~dst:t in
        Helpers.check_path g ~src:s ~dst:t later
        (* Note: a first packet can occasionally beat later packets — its
           group-proxy detour may expose better shortcut opportunities —
           so no ordering is asserted; the stretch bounds are checked in
           test_disco_core. *)
      end
    done
  done

let test_event_and_static_stretch_agree () =
  (* §5 "Accuracy of static simulation": mean stretch computed from the
     converged dynamic tables matches the static simulator's within 1%. *)
  let g = Helpers.random_weighted_graph 47 in
  let n = Graph.n g in
  let rng = Rng.create 47 in
  let nd = Core.Nddisco.build ~rng g in
  let flags = nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark in
  let k = Core.Vicinity.k nd.Core.Nddisco.vicinity in
  let r =
    Pathvector.run ~graph:g
      ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k }) ()
  in
  (* Dynamic later-packet route: direct if in table, else via l_t table
     route + address route. *)
  let ws = Dijkstra.make_workspace g in
  let static_sum = ref 0.0 and dyn_sum = ref 0.0 and count = ref 0 in
  for s = 0 to min 20 (n - 1) do
    let sp = Dijkstra.sssp ~ws g s in
    for t = 0 to n - 1 do
      if s <> t && sp.Dijkstra.dist.(t) > 0.0 then begin
        let static_route =
          Core.Nddisco.route_later ~heuristic:Core.Shortcut.No_shortcut nd ~src:s ~dst:t
        in
        let dyn_len =
          match Hashtbl.find_opt r.Pathvector.tables.(s) t with
          | Some route -> route.Pathvector.dist
          | None ->
              if Core.Vicinity.mem nd.Core.Nddisco.vicinity t s then
                (* handshake: t reveals the exact path *)
                sp.Dijkstra.dist.(t)
              else begin
                (* via t's landmark, using the dynamic landmark route *)
                let lm = (Core.Nddisco.address nd t).Core.Address.landmark in
                let to_lm =
                  match Hashtbl.find_opt r.Pathvector.tables.(s) lm with
                  | Some route -> route.Pathvector.dist
                  | None -> Core.Landmark_trees.dist nd.Core.Nddisco.trees ~lm s
                in
                to_lm +. nd.Core.Nddisco.landmarks.Core.Landmarks.dist.(t)
              end
        in
        static_sum := !static_sum +. (Helpers.path_len g static_route /. sp.Dijkstra.dist.(t));
        dyn_sum := !dyn_sum +. (dyn_len /. sp.Dijkstra.dist.(t));
        incr count
      end
    done
  done;
  let s_mean = !static_sum /. float_of_int !count in
  let d_mean = !dyn_sum /. float_of_int !count in
  (* The static simulator's vicinity is the k closest nodes of any kind
     while the dynamic filter keeps landmarks separately plus the k closest
     non-landmarks — a slightly larger effective vicinity — so the means
     agree closely but not exactly (the paper's own check reports ~1%). *)
  Alcotest.(check bool)
    (Printf.sprintf "static %.4f vs dynamic %.4f" s_mean d_mean)
    true
    (Float.abs (s_mean -. d_mean) /. s_mean < 0.06)

let suite =
  [
    Alcotest.test_case "dynamic vicinity = static" `Quick test_dynamic_vicinity_matches_static;
    Alcotest.test_case "dynamic landmark routes = static" `Quick test_dynamic_landmark_routes_match_static;
    Alcotest.test_case "Disco delivers between all pairs" `Quick test_disco_all_pairs_delivery;
    Alcotest.test_case "event/static stretch agreement" `Quick test_event_and_static_stretch_agree;
  ]
