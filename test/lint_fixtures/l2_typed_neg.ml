(* L2 negative: typed comparators and immediate-value equality only. *)
let order (a : int array) = Array.sort Int.compare a
let closer h a b = Hash_space.compare_unsigned a b < Hash_space.compare_unsigned a h
let is_zero x = x = 0
let not_self u v = u <> v
let same_name a b = String.equal a b
