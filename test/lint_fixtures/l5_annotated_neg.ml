(* L5 negative: discards carry a type annotation, or drop a plain value. *)
let drop f x = ignore (f x : int)
let drop_value y = ignore y
let bind f x =
  let _result : bool = f x in
  ()
