(* L1 negative: all randomness flows through the seeded Rng; no clock. *)
let jitter rng = Disco_util.Rng.int rng 100
let coin rng = Disco_util.Rng.bool rng
let elapsed t0 t1 = t1 -. t0
