(* L2 positive: polymorphic compare/equality/hash on protocol values. *)
let order (a : int array) = Array.sort compare a
let order' xs = List.sort Stdlib.compare xs
let bucket v = Hashtbl.hash v
let same_pair x y = (x, 0) = (y, 1)
let differs x lbl = (x, lbl) <> (x, "other")
