(* L1 positive: ambient randomness and wall-clock reads in protocol code. *)
let jitter () = Random.int 100
let stamp () = Unix.gettimeofday ()
let seed () = Random.self_init ()
let cpu () = Sys.time ()
