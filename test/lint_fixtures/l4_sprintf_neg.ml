(* L4 negative: libraries format strings and return them. *)
let render x = Printf.sprintf "x=%d" x
let describe t = Format.asprintf "%f" t
let warn msg = Printf.eprintf "warning: %s\n" msg
