(* L6 positive fixture: raw concurrency primitives outside lib/util/pool.ml.
   Every use below must be reported individually. *)

let d = Domain.spawn (fun () -> ())
let m = Mutex.create ()
let c = Condition.create ()
let a = Atomic.make 0

let () =
  Mutex.lock m;
  Condition.broadcast c;
  Atomic.incr a;
  Domain.join d;
  Mutex.unlock m
