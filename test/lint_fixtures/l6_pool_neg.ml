(* L6 negative fixture: parallelism through the sanctioned task API only.
   Disco_util.Pool is the choke point; nothing here touches
   Domain/Mutex/Condition/Atomic directly. *)

let row_sums pool rows =
  Disco_util.Pool.run pool rows (fun row -> Array.fold_left ( + ) 0 row)

let with_jobs jobs f = Disco_util.Pool.with_pool ~jobs f
