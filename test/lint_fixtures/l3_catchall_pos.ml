(* L3 positive: catch-alls that swallow every exception. *)
let safe f = try f () with _ -> 0
let lookup tbl k = match Hashtbl.find tbl k with v -> Some v | exception _ -> None
