(* L4 positive: stdout writes from library code. *)
let debug x = Printf.printf "x=%d\n" x
let banner () = print_endline "starting"
let trace s = print_string s
