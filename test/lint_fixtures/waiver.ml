(* Waiver fixture: the first two violations are waived (trailing comment and
   standalone line above); the third names the wrong rule, so its L2
   diagnostic must survive. *)
let order (a : int array) = Array.sort compare a (* disco-lint: allow L2 *)

(* disco-lint: allow L5 benchmark-style discard *)
let drop f x = ignore (f x)

(* disco-lint: allow L4 *)
let order2 (a : int array) = Array.sort compare a
