(* L3 negative: specific exceptions, or bound-and-reraised. *)
let safe f = try f () with Not_found -> 0
let logged f = try f () with Invalid_argument msg -> failwith msg
let reraise f = try f () with e -> raise e
