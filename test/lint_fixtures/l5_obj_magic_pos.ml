(* L5 positive: Obj.magic, and untyped discards of call results. *)
let coerce x = Obj.magic x
let drop f x = ignore (f x)
let drop_pipe f x = f x |> ignore
let drop_app f x = ignore @@ f x
