module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Landmarks = Disco_core.Landmarks
module Tree_address = Disco_core.Tree_address

let build seed =
  let g = Helpers.random_weighted_graph seed in
  let rng = Rng.create seed in
  let lms = Landmarks.build ~rng ~params:Disco_core.Params.default g in
  (g, lms, Tree_address.build g lms)

let test_labels_unique_per_tree () =
  let g, lms, ta = build 3 in
  let per_tree = Hashtbl.create 8 in
  for v = 0 to Graph.n g - 1 do
    let lm = lms.Landmarks.nearest.(v) in
    let key = (lm, Tree_address.label_of ta v) in
    if Hashtbl.mem per_tree key then Alcotest.failf "duplicate label in tree %d" lm;
    Hashtbl.add per_tree key ()
  done

let test_route_matches_forest () =
  let g, lms, ta = build 5 in
  for v = 0 to Graph.n g - 1 do
    let via_labels = Tree_address.route ta v in
    let via_forest = Landmarks.address_route lms v in
    Alcotest.(check (list int))
      (Printf.sprintf "node %d" v)
      via_forest via_labels
  done

let test_bits_is_log_n () =
  let g, _, ta = build 7 in
  let n = Graph.n g in
  Alcotest.(check bool) "2^bits >= n" true (1 lsl Tree_address.bits ta >= n);
  Alcotest.(check bool) "2^(bits-1) < n" true (1 lsl (Tree_address.bits ta - 1) < n)

let test_byte_size () =
  let _, _, ta = build 9 in
  Alcotest.(check int) "ipv4 + label bytes"
    (4 + ((Tree_address.bits ta + 7) / 8))
    (Tree_address.byte_size ~name_bytes:4 ta)

let test_landmark_root_label () =
  let g, lms, ta = build 11 in
  Array.iter
    (fun lm -> Alcotest.(check int) "root gets block start" 0 (Tree_address.label_of ta lm))
    lms.Landmarks.ids;
  ignore g

let test_ring_topology () =
  (* On a ring the explicit route needs n/2 bits but the tree address stays
     at log2 n — the §4.2 trade-off in the extreme case. *)
  let n = 64 in
  let g = Gen.ring ~n in
  let lms = Landmarks.of_ids g [| 0 |] in
  let ta = Tree_address.build g lms in
  Alcotest.(check int) "log2 n bits" 6 (Tree_address.bits ta);
  for v = 0 to n - 1 do
    let r = Tree_address.route ta v in
    Alcotest.(check int) "route reaches v" v (List.nth r (List.length r - 1))
  done

(* --- encode_label / decode_label round-trips --- *)

let roundtrip_all g lms ta =
  for v = 0 to Graph.n g - 1 do
    let landmark = lms.Landmarks.nearest.(v) in
    let bytes = Tree_address.encode_label ta v in
    Alcotest.(check int) "wire form fits the fixed width"
      ((Tree_address.bits ta + 7) / 8)
      (Bytes.length bytes);
    Alcotest.(check int)
      (Printf.sprintf "decode inverts encode at node %d" v)
      v
      (Tree_address.decode_label ta ~landmark bytes)
  done

let test_label_codec_roundtrip () =
  let g, lms, ta = build 13 in
  roundtrip_all g lms ta

let test_label_codec_wide_labels () =
  (* n = 300 forces bits = 9: every label crosses the byte boundary, the
     case a byte-granular codec gets wrong. *)
  let n = 300 in
  let g = Gen.gnm ~rng:(Rng.create 99) ~n ~m:(3 * n) in
  let lms = Landmarks.build ~rng:(Rng.create 100) ~params:Disco_core.Params.default g in
  let ta = Tree_address.build g lms in
  Alcotest.(check int) "9-bit labels" 9 (Tree_address.bits ta);
  roundtrip_all g lms ta

let test_label_codec_single_tree_ring () =
  (* One landmark owning the whole ring: labels span the full [0, n)
     block, including label 0 (all-zero bits) and the maximum label. *)
  let n = 64 in
  let g = Gen.ring ~n in
  let lms = Landmarks.of_ids g [| 0 |] in
  let ta = Tree_address.build g lms in
  roundtrip_all g lms ta

let test_label_codec_rejects_foreign_label () =
  let g, lms, ta = build 15 in
  (* Find a node and a landmark that does not own it; its label decoded
     against that landmark must be rejected rather than misrouted. *)
  let ids = lms.Landmarks.ids in
  if Array.length ids >= 2 then begin
    let found = ref None in
    for v = 0 to Graph.n g - 1 do
      if !found = None then begin
        let mine = lms.Landmarks.nearest.(v) in
        let foreign = if ids.(0) = mine then ids.(1) else ids.(0) in
        (* Only a genuine mismatch triggers the range check: the same
           label value may legitimately exist in the foreign tree. *)
        let bytes = Tree_address.encode_label ta v in
        match Tree_address.decode_label ta ~landmark:foreign bytes with
        | w -> if w <> v then found := Some ()
        | exception Invalid_argument _ -> found := Some ()
      end
    done;
    Alcotest.(check bool) "foreign decode never silently yields the node" true
      (!found <> None || Graph.n g = Array.length ids)
  end

let suite =
  [
    Alcotest.test_case "labels unique per tree" `Quick test_labels_unique_per_tree;
    Alcotest.test_case "route matches forest" `Quick test_route_matches_forest;
    Alcotest.test_case "bits = ceil log2 n" `Quick test_bits_is_log_n;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "landmark root label" `Quick test_landmark_root_label;
    Alcotest.test_case "ring topology" `Quick test_ring_topology;
    Alcotest.test_case "label codec roundtrip" `Quick test_label_codec_roundtrip;
    Alcotest.test_case "label codec wide labels" `Quick test_label_codec_wide_labels;
    Alcotest.test_case "label codec full-block ring" `Quick test_label_codec_single_tree_ring;
    Alcotest.test_case "label codec rejects foreign label" `Quick
      test_label_codec_rejects_foreign_label;
  ]
