module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Pathvector = Disco_pathvector.Pathvector

let check_full_tables g =
  let r = Pathvector.run ~graph:g ~mode:Pathvector.Full () in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    let sp = Dijkstra.sssp g s in
    for t = 0 to n - 1 do
      if t <> s && sp.Dijkstra.dist.(t) < infinity then begin
        match Hashtbl.find_opt r.Pathvector.tables.(s) t with
        | None -> Alcotest.failf "node %d missing route to %d" s t
        | Some route ->
            if Float.abs (route.Pathvector.dist -. sp.Dijkstra.dist.(t)) > 1e-9 then
              Alcotest.failf "node %d route to %d: %f <> %f" s t route.Pathvector.dist
                sp.Dijkstra.dist.(t)
      end
    done
  done;
  r

let test_full_converges_to_shortest () =
  ignore (check_full_tables (Helpers.random_graph ~n_min:10 ~n_max:30 3))

let test_full_weighted () =
  ignore (check_full_tables (Helpers.random_weighted_graph 5))

let test_paths_are_real () =
  let g = Helpers.random_graph ~n_min:10 ~n_max:25 7 in
  let r = Pathvector.run ~graph:g ~mode:Pathvector.Full () in
  Array.iteri
    (fun s table ->
      Hashtbl.iter
        (fun t route ->
          Helpers.check_path g ~src:s ~dst:t route.Pathvector.path;
          Alcotest.(check bool) "dist = path length" true
            (Float.abs (Helpers.path_len g route.Pathvector.path -. route.Pathvector.dist)
            < 1e-9))
        table)
    r.Pathvector.tables

let test_messages_positive () =
  let g = Helpers.random_graph 11 in
  let r = Pathvector.run ~graph:g ~mode:Pathvector.Full () in
  Alcotest.(check bool) "messages flowed" true (r.Pathvector.total_messages > 0);
  Alcotest.(check int) "per-node sums to total" r.Pathvector.total_messages
    (Array.fold_left ( + ) 0 r.Pathvector.messages_by_node);
  (* A non-forgetful control plane retains at least one announcement per
     route the data plane keeps (Theorem 2's delta factor). *)
  let sizes = Pathvector.table_sizes r in
  Array.iteri
    (fun v rib ->
      Alcotest.(check bool) "adj rib >= table" true (rib >= sizes.(v)))
    r.Pathvector.adj_rib_entries

let landmark_flags g ids =
  let flags = Array.make (Graph.n g) false in
  List.iter (fun v -> flags.(v) <- true) ids;
  flags

let test_vicinity_mode_respects_k () =
  let g = Helpers.random_graph ~n_min:20 ~n_max:40 13 in
  let flags = landmark_flags g [ 0 ] in
  let k = 5 in
  let r =
    Pathvector.run ~graph:g ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k }) ()
  in
  Array.iteri
    (fun v table ->
      let non_landmark = ref 0 in
      Hashtbl.iter (fun d _ -> if not flags.(d) then incr non_landmark) table;
      if !non_landmark > k then
        Alcotest.failf "node %d has %d > %d vicinity routes" v !non_landmark k)
    r.Pathvector.tables

let test_vicinity_mode_finds_k_closest () =
  let g = Helpers.random_weighted_graph 17 in
  let flags = landmark_flags g [ 0 ] in
  let k = 6 in
  let r =
    Pathvector.run ~graph:g ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k }) ()
  in
  (* The converged vicinity distances must equal the k smallest true
     distances (multiset equality; boundary ties may pick either node). *)
  let n = Graph.n g in
  for v = 0 to min 9 (n - 1) do
    let sp = Dijkstra.sssp g v in
    (* Candidates for vicinity slots: non-landmark nodes other than v. *)
    let truth =
      List.init n Fun.id
      |> List.filter (fun t -> t <> v && not flags.(t))
      |> List.map (fun t -> sp.Dijkstra.dist.(t))
      |> List.sort compare
    in
    let got = ref [] in
    Hashtbl.iter
      (fun d route -> if (not flags.(d)) && d <> v then got := route.Pathvector.dist :: !got)
      r.Pathvector.tables.(v);
    let got = List.sort compare !got in
    List.iteri
      (fun i dist ->
        let want = List.nth truth i in
        if Float.abs (dist -. want) > 1e-9 then
          Alcotest.failf "node %d: vicinity dist %d is %f, want %f" v i dist want)
      got
  done

let test_landmarks_always_kept () =
  let g = Helpers.random_graph ~n_min:15 ~n_max:30 19 in
  let ids = [ 1; 3 ] in
  let flags = landmark_flags g ids in
  let r =
    Pathvector.run ~graph:g ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k = 2 }) ()
  in
  Array.iteri
    (fun v table ->
      List.iter
        (fun lm ->
          if v <> lm && not (Hashtbl.mem table lm) then
            Alcotest.failf "node %d missing landmark %d" v lm)
        ids)
    r.Pathvector.tables

let test_radius_mode_matches_clusters () =
  let g = Helpers.random_weighted_graph 23 in
  let n = Graph.n g in
  let ids = [ 0; n / 2 ] in
  let flags = landmark_flags g ids in
  let multi = Dijkstra.multi_source g (Array.of_list ids) in
  let radius = multi.Dijkstra.mdist in
  let r =
    Pathvector.run ~graph:g ~mode:(Pathvector.Landmarks_and_radius { landmarks = flags; radius }) ()
  in
  (* v holds a route to non-landmark w iff d(v,w) < d(w, l_w). Skip exact
     boundaries (e.g. v = l_w, where d(v,w) = radius(w)): the protocol sums
     edge weights in the opposite order from the oracle's Dijkstra, so the
     strict comparison can go either way in the last float bit. *)
  for v = 0 to n - 1 do
    let sp = Dijkstra.sssp g v in
    for w = 0 to n - 1 do
      if w <> v && (not flags.(w)) && Float.abs (sp.Dijkstra.dist.(w) -. radius.(w)) > 1e-9
      then begin
        let should = sp.Dijkstra.dist.(w) < radius.(w) in
        let has = Hashtbl.mem r.Pathvector.tables.(v) w in
        if should <> has then
          Alcotest.failf "cluster mismatch v=%d w=%d (want %b, got %b)" v w should has
      end
    done
  done

let test_table_sizes () =
  let g = Helpers.random_graph 29 in
  let r = Pathvector.run ~graph:g ~mode:Pathvector.Full () in
  let sizes = Pathvector.table_sizes r in
  Array.iter (fun s -> Alcotest.(check int) "full tables" (Graph.n g - 1) s) sizes

let suite =
  [
    Alcotest.test_case "full mode converges to shortest paths" `Quick test_full_converges_to_shortest;
    Alcotest.test_case "full mode on weighted graph" `Quick test_full_weighted;
    Alcotest.test_case "paths are real paths" `Quick test_paths_are_real;
    Alcotest.test_case "message accounting" `Quick test_messages_positive;
    Alcotest.test_case "vicinity mode respects k" `Quick test_vicinity_mode_respects_k;
    Alcotest.test_case "vicinity mode finds k closest" `Quick test_vicinity_mode_finds_k_closest;
    Alcotest.test_case "landmarks always kept" `Quick test_landmarks_always_kept;
    Alcotest.test_case "radius mode = S4 clusters" `Quick test_radius_mode_matches_clusters;
    Alcotest.test_case "table sizes" `Quick test_table_sizes;
  ]
