(* Smoke coverage of the experiment harness on a tiny testbed: the metric
   collectors must be internally consistent (each protocol measured on the
   same topology, stretch >= 1, congestion counts conserve flows). *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Stats = Disco_util.Stats
module Testbed = Disco_experiments.Testbed
module Metrics = Disco_experiments.Metrics
module Messaging = Disco_experiments.Messaging
module Figures = Disco_experiments.Figures

let tb = lazy (Testbed.make ~seed:5 Gen.Gnm ~n:192)

let test_state_shapes () =
  let tb = Lazy.force tb in
  let st = Metrics.state ~with_vrr:true tb in
  let n = Graph.n tb.Testbed.graph in
  Alcotest.(check int) "disco rows" n (Array.length st.Metrics.disco);
  Alcotest.(check int) "s4 rows" n (Array.length st.Metrics.s4);
  Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.0)) st.Metrics.disco;
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "pv = n-1" (float_of_int (n - 1)) v)
    st.Metrics.pathvector;
  (* Disco state strictly contains NDDisco state. *)
  Array.iteri
    (fun i d -> Alcotest.(check bool) "disco >= nddisco" true (d >= st.Metrics.nddisco.(i)))
    st.Metrics.disco

let test_stretch_shapes () =
  let tb = Lazy.force tb in
  let sr = Metrics.stretch ~pairs:150 ~with_vrr:true tb in
  let check_series name (s : float array) =
    Alcotest.(check bool) (name ^ " nonempty") true (Array.length s > 0);
    Array.iter
      (fun v -> Alcotest.(check bool) (name ^ " >= 1") true (v >= 1.0 -. 1e-9))
      s
  in
  check_series "disco first" sr.Metrics.s_disco.Metrics.first;
  check_series "disco later" sr.Metrics.s_disco.Metrics.later;
  check_series "nddisco first" sr.Metrics.s_nddisco.Metrics.first;
  check_series "s4 later" sr.Metrics.s_s4.Metrics.later;
  (match sr.Metrics.s_vrr with
  | Some v -> check_series "vrr" v
  | None -> Alcotest.fail "vrr requested but absent");
  (* Later packets never do worse on average than first packets. *)
  Alcotest.(check bool) "disco later <= first (mean)" true
    (Stats.mean sr.Metrics.s_disco.Metrics.later
    <= Stats.mean sr.Metrics.s_disco.Metrics.first +. 1e-9)

let test_stretch_theorem_bounds_hold () =
  let tb = Lazy.force tb in
  let sr = Metrics.stretch ~pairs:150 tb in
  let max a = (Stats.summarize a).Stats.max in
  Alcotest.(check bool) "disco first <= 7" true (max sr.Metrics.s_disco.Metrics.first <= 7.0);
  Alcotest.(check bool) "disco later <= 3" true (max sr.Metrics.s_disco.Metrics.later <= 3.0);
  Alcotest.(check bool) "s4 later <= 3" true (max sr.Metrics.s_s4.Metrics.later <= 3.0)

let test_congestion_conservation () =
  let tb = Lazy.force tb in
  let c = Metrics.congestion tb in
  (* Total edge-uses = total route hops; each of the n flows contributes
     its hop count, so the totals must be positive and equal rows. *)
  let total a = Array.fold_left ( +. ) 0.0 a in
  Alcotest.(check bool) "disco used edges" true (total c.Metrics.c_disco > 0.0);
  Alcotest.(check bool) "pv used edges" true (total c.Metrics.c_pathvector > 0.0);
  (* Shortest-path routing uses no more total hops than any protocol. *)
  Alcotest.(check bool) "pv total <= disco total" true
    (total c.Metrics.c_pathvector <= total c.Metrics.c_disco +. 1e-9)

let test_heuristic_table_ordering () =
  let tb = Lazy.force tb in
  let rows = Metrics.mean_stretch_by_heuristic ~pairs:100 tb in
  Alcotest.(check int) "six heuristics" 6 (List.length rows);
  let get h = List.assoc h rows in
  Alcotest.(check bool) "no-shortcut worst or equal" true
    (List.for_all (fun (_, v) -> v <= get Disco_core.Shortcut.No_shortcut +. 1e-9) rows);
  Alcotest.(check bool) "path-knowledge best or equal" true
    (List.for_all (fun (_, v) -> v >= get Disco_core.Shortcut.Path_knowledge -. 1e-9) rows)

let test_messaging_sweep () =
  let points = Messaging.sweep ~seed:3 ~pv_cap:96 ~sizes:[ 64; 96; 128 ] () in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun (p : Messaging.point) ->
      Alcotest.(check bool) "nddisco <= pathvector" true (p.Messaging.nddisco <= p.Messaging.pathvector);
      Alcotest.(check bool) "disco adds overhead" true (p.Messaging.disco_1f >= p.Messaging.nddisco);
      Alcotest.(check bool) "3 fingers >= 1 finger" true (p.Messaging.disco_3f >= p.Messaging.disco_1f))
    points;
  let last = List.nth points 2 in
  Alcotest.(check bool) "extrapolated point marked" true (not last.Messaging.pv_measured)

let test_overlay_comparison () =
  let stats = Messaging.overlay_comparison ~seed:3 ~n:256 () in
  match stats with
  | [ one; three ] ->
      Alcotest.(check int) "1 finger" 1 one.Messaging.fingers;
      Alcotest.(check int) "3 fingers" 3 three.Messaging.fingers;
      Alcotest.(check bool) "fewer hops with more fingers" true
        (three.Messaging.mean_announce_hops <= one.Messaging.mean_announce_hops);
      Alcotest.(check (float 1e-9)) "full coverage" 1.0 one.Messaging.coverage
  | _ -> Alcotest.fail "expected exactly two rows"

let test_figures_registry () =
  Alcotest.(check bool) "fig2 known" true (List.mem "fig2" Figures.all_ids);
  Alcotest.(check bool) "state known" true (List.mem "state" Figures.all_ids);
  Alcotest.(check int) "23 experiments" 23 (List.length Figures.all_ids);
  Alcotest.(check bool) "scale parse" true (Figures.scale_of_string "small" = Some Figures.Small);
  Alcotest.(check bool) "scale parse paper" true (Figures.scale_of_string "paper" = Some Figures.Paper);
  Alcotest.(check bool) "scale parse bad" true (Figures.scale_of_string "huge" = None)

let suite =
  [
    Alcotest.test_case "state shapes" `Quick test_state_shapes;
    Alcotest.test_case "stretch shapes" `Quick test_stretch_shapes;
    Alcotest.test_case "theorem bounds in harness" `Quick test_stretch_theorem_bounds_hold;
    Alcotest.test_case "congestion conservation" `Quick test_congestion_conservation;
    Alcotest.test_case "heuristic table ordering" `Quick test_heuristic_table_ordering;
    Alcotest.test_case "messaging sweep" `Slow test_messaging_sweep;
    Alcotest.test_case "overlay comparison" `Quick test_overlay_comparison;
    Alcotest.test_case "figures registry" `Quick test_figures_registry;
  ]
