(* disco-lint engine: each rule L1-L6 must fire on its positive fixture and
   stay quiet on its negative one; waivers suppress exactly the named rule;
   path scoping keeps the report/driver layers exempt. *)

module Driver = Lint.Driver
module Diagnostic = Lint.Diagnostic
module Rules = Lint.Rules

let fixture name =
  let ic = open_in_bin (Filename.concat "lint_fixtures" name) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Lint a fixture as if it lived at [path] (default: deep in protocol core,
   where every rule applies). *)
let lint ?(path = "lib/core/fixture.ml") name =
  Driver.lint_source ~path (fixture name)

let rules_of ds =
  List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.rule) ds)

let check_fires rule name () =
  let hit = rules_of (lint name) in
  Alcotest.(check bool)
    (rule ^ " fires on " ^ name)
    true
    (List.mem rule hit)

let check_quiet rule name () =
  let hit = rules_of (lint name) in
  Alcotest.(check bool)
    (rule ^ " quiet on " ^ name)
    false
    (List.mem rule hit)

let positive_counts () =
  (* Every banned construct in a positive fixture is reported individually. *)
  let count name = List.length (lint name) in
  Alcotest.(check int) "l1 count" 4 (count "l1_random_pos.ml");
  Alcotest.(check int) "l2 count" 5 (count "l2_polycompare_pos.ml");
  Alcotest.(check int) "l3 count" 2 (count "l3_catchall_pos.ml");
  Alcotest.(check int) "l4 count" 3 (count "l4_print_pos.ml");
  Alcotest.(check int) "l5 count" 4 (count "l5_obj_magic_pos.ml");
  Alcotest.(check int) "l6 count" 9 (count "l6_domain_pos.ml")

let waiver_suppresses () =
  let ds = lint "waiver.ml" in
  Alcotest.(check int) "only the unwaived violation survives" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check string) "surviving rule is L2" "L2" d.Diagnostic.rule;
  Alcotest.(check int) "at the wrong-rule-waiver line" 10 d.Diagnostic.line

let scoping () =
  (* The same stdout-printing source is an L4 error in a library module but
     legitimate in the report layer, the experiments harness and bin/. *)
  let src = fixture "l4_print_pos.ml" in
  let at path = rules_of (Driver.lint_source ~path src) in
  Alcotest.(check bool) "L4 in lib/util" true (List.mem "L4" (at "lib/util/x.ml"));
  Alcotest.(check bool)
    "no L4 in lib/experiments" false
    (List.mem "L4" (at "lib/experiments/report.ml"));
  Alcotest.(check bool) "no L4 in bin" false (List.mem "L4" (at "bin/driver.ml"));
  (* The clock allowlist exempts exactly the telemetry/report modules. *)
  let clock = "let t = Unix.gettimeofday ()" in
  Alcotest.(check bool)
    "L1 in core" true
    (List.mem "L1" (rules_of (Driver.lint_source ~path:"lib/core/x.ml" clock)));
  Alcotest.(check bool)
    "no L1 in telemetry" false
    (List.mem "L1"
       (rules_of (Driver.lint_source ~path:"lib/util/telemetry.ml" clock)));
  (* L2 only guards the hash-space-bearing libraries. *)
  let poly = "let f (a : int array) = Array.sort compare a" in
  Alcotest.(check bool)
    "L2 in hashing" true
    (List.mem "L2" (rules_of (Driver.lint_source ~path:"lib/hashing/x.ml" poly)));
  Alcotest.(check bool)
    "no L2 in experiments" false
    (List.mem "L2"
       (rules_of (Driver.lint_source ~path:"lib/experiments/x.ml" poly)));
  (* L6 exempts exactly the pool module. *)
  let spawn = "let d = Domain.spawn (fun () -> ())" in
  Alcotest.(check bool)
    "L6 in experiments" true
    (List.mem "L6" (rules_of (Driver.lint_source ~path:"lib/experiments/x.ml" spawn)));
  Alcotest.(check bool)
    "no L6 in the pool" false
    (List.mem "L6" (rules_of (Driver.lint_source ~path:"lib/util/pool.ml" spawn)))

let severity_override () =
  let ds =
    Driver.lint_source
      ~severity_overrides:[ ("L2", Diagnostic.Warning) ]
      ~path:"lib/core/fixture.ml"
      (fixture "l2_polycompare_pos.ml")
  in
  Alcotest.(check bool) "diagnostics still reported" true (ds <> []);
  List.iter
    (fun d ->
      Alcotest.(check string) "demoted to warning" "warning"
        (Diagnostic.severity_label d.Diagnostic.severity))
    ds;
  let summary = Driver.summarize ~files:1 ds in
  Alcotest.(check int) "no errors after demotion" 0 summary.Driver.errors;
  Alcotest.(check int) "all warnings" (List.length ds) summary.Driver.warnings

let parse_error_is_diagnosed () =
  let ds = Driver.lint_source ~path:"lib/core/bad.ml" "let = in +" in
  Alcotest.(check int) "one diagnostic" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check string) "parse-error rule" "P0" d.Diagnostic.rule;
  Alcotest.(check int) "counted as an error" 1
    (Driver.summarize ~files:1 ds).Driver.errors

let catalogue_sane () =
  Alcotest.(check int) "six rules" 6 (List.length Rules.catalogue);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("rule " ^ id ^ " registered") true
        (Option.is_some (Rules.find id)))
    [ "L1"; "L2"; "L3"; "L4"; "L5"; "L6" ]

let json_roundtrip () =
  let ds = lint "l1_random_pos.ml" in
  let s = Driver.summarize ~files:1 ds in
  let json = Driver.summary_to_json s in
  (* Not a full parser: check shape and that quoting survived. *)
  Alcotest.(check bool) "mentions rule id" true
    (Option.is_some (Lint.Waivers.find_sub json {|"rule":"L1"|}))

let suite =
  let test name fn = Alcotest.test_case name `Quick fn in
  [
    test "L1 fires" (check_fires "L1" "l1_random_pos.ml");
    test "L1 quiet" (check_quiet "L1" "l1_rng_neg.ml");
    test "L2 fires" (check_fires "L2" "l2_polycompare_pos.ml");
    test "L2 quiet" (check_quiet "L2" "l2_typed_neg.ml");
    test "L3 fires" (check_fires "L3" "l3_catchall_pos.ml");
    test "L3 quiet" (check_quiet "L3" "l3_explicit_neg.ml");
    test "L4 fires" (check_fires "L4" "l4_print_pos.ml");
    test "L4 quiet" (check_quiet "L4" "l4_sprintf_neg.ml");
    test "L5 fires" (check_fires "L5" "l5_obj_magic_pos.ml");
    test "L5 quiet" (check_quiet "L5" "l5_annotated_neg.ml");
    test "L6 fires" (check_fires "L6" "l6_domain_pos.ml");
    test "L6 quiet" (check_quiet "L6" "l6_pool_neg.ml");
    test "positive fixture counts" positive_counts;
    test "waiver suppresses named rule only" waiver_suppresses;
    test "path scoping" scoping;
    test "per-rule severity override" severity_override;
    test "parse error diagnosed" parse_error_is_diagnosed;
    test "catalogue sane" catalogue_sane;
    test "json summary" json_roundtrip;
  ]
