(* Counterexamples disco-check found on main, pinned by exact seed.

   The first sweep (disco-check --seed 7 --cases 10 --max-nodes 64)
   convicted S4 on eight scenarios: its first packet was held to the TZ
   stretch-3 bound, but S4 resolves flat names through the consistent-
   hashing resolution database, so the first packet detours via the hash
   owner and its stretch is unbounded (s4.mli, §5 of the paper). The fix
   was to the invariant catalog — S4's first_bound is None; stretch 3
   applies to route_later only.

   These scenarios pin both directions of that fix, replayed from the
   exact shrunk seeds the checker reported:
   - under the corrected catalog they pass (and must stay passing);
   - under the original, miscalibrated catalog the checker still convicts
     S4 with the very stretch values observed (4.0, 5.0, 4.33), proving a
     future bound drift of this class cannot slip through. *)

module Scenario = Disco_check.Scenario
module Spec = Disco_check.Spec
module Runner = Disco_check.Runner
module Violation = Disco_check.Violation
module Harness = Disco_check.Harness
module Protocol = Disco_experiments.Protocol
module Routers = Disco_experiments.Routers
module Testbed = Disco_experiments.Testbed
module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra

let scenario_exn desc =
  match Scenario.of_string desc with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "bad pinned scenario %S: %s" desc e

(* Shrunk counterexamples as reported by disco-check --seed 7 --cases 10. *)
let pinned =
  [
    "seed=1150299863866387076,family=gnm,n=16,pairs=16,workload=uniform,churn=0";
    "seed=1512986910920847295,family=gnm,n=16,pairs=4,workload=uniform,churn=0";
    "seed=619157119472769496,family=ring,n=16,pairs=7,workload=uniform,churn=0";
    "seed=1905278406105126106,family=geometric,n=17,pairs=6,workload=uniform,churn=0";
  ]

let test_pinned_scenarios_pass () =
  List.iter
    (fun desc ->
      let outcome = Runner.run (scenario_exn desc) in
      if Runner.failed outcome then
        Alcotest.failf "pinned scenario regressed: %s\n%s" desc
          (String.concat "\n"
             (List.map Violation.describe outcome.Runner.violations)))
    pinned

(* The catalog bug as it originally shipped: S4's first packet wrongly
   held to stretch 3. *)
let miscalibrated s =
  let spec = Spec.find s in
  if String.equal s "s4" then { spec with Spec.first_bound = Some 3.0 } else spec

let test_miscalibrated_bound_is_convicted () =
  let sc =
    scenario_exn "seed=1512986910920847295,family=gnm,n=16,pairs=4,workload=uniform,churn=0"
  in
  let outcome = Runner.run ~spec_of:miscalibrated sc in
  let s4_first_violation =
    List.exists
      (fun v ->
        String.equal v.Violation.scheme "s4"
        &&
        match v.Violation.kind with
        | Violation.Stretch_exceeded { phase; stretch; bound; _ } ->
            String.equal phase "first" && bound = 3.0 && stretch > 3.0
        | _ -> false)
      outcome.Runner.violations
  in
  Alcotest.(check bool) "s4 first-packet stretch > 3 detected" true
    s4_first_violation

(* --- fast≡typed differential regressions ---------------------------------

   The fastpath differential (Spec.fastpath) re-routes every sampled pair
   through the wire codec and the compiled forward and demands the typed
   walk's exact hop sequence and verdict.  Pinned both ways, like the S4
   bound above: scenarios that exercise the differential on the real
   registry stay green, and a router whose compiled face diverges from
   its typed forward is convicted, shrunk, and the shrunk scenario is
   pinned by its exact textual form. *)

(* Scenarios replayed on the full registry; all specs have
   [fastpath = true], so each of these runs the differential across all
   eight schemes (families chosen to reach seek/steer/resolution modes). *)
let pinned_fastpath =
  [
    "seed=1150299863866387076,family=gnm,n=16,pairs=16,workload=uniform,churn=0";
    "seed=1905278406105126106,family=geometric,n=17,pairs=6,workload=uniform,churn=0";
  ]

let test_pinned_fastpath_green () =
  List.iter
    (fun desc ->
      let outcome = Runner.run (scenario_exn desc) in
      if Runner.failed outcome then
        Alcotest.failf "pinned fastpath scenario regressed: %s\n%s" desc
          (String.concat "\n"
             (List.map Violation.describe outcome.Runner.violations)))
    pinned_fastpath

(* An honest typed carry router whose compiled face drops the final
   label: the fast walk stops one hop short of every delivery.  Only the
   fastpath differential can see this — oracle, stretch and walk checks
   all pass. *)
module Lame_fast_router = struct
  module D = Disco_core.Dataplane

  type t = { graph : Graph.t; ws : Dijkstra.workspace }

  let name = "lamefast"
  let flat_names = "test fixture"

  let build (tb : Testbed.t) =
    let graph = tb.Testbed.graph in
    { graph; ws = Dijkstra.make_workspace graph }

  let shortest t ~src ~dst =
    let sp = Dijkstra.sssp ~ws:t.ws t.graph src in
    if sp.Dijkstra.dist.(dst) = infinity then None
    else
      Some
        (Dijkstra.path_of_parents
           ~parent:(fun v -> sp.Dijkstra.parent.(v))
           ~src ~dst)

  let oracle_first t ~tel:_ ~src ~dst = shortest t ~src ~dst
  let oracle_later t ~tel:_ ~src ~dst = shortest t ~src ~dst
  let ttl_factor = 4

  let header_of ~dst = function
    | Some (_ :: rest) -> { (D.plain ~dst D.Carry) with D.labels = rest }
    | _ -> D.plain ~dst D.Carry

  let first_header t ~tel:_ ~src ~dst = header_of ~dst (shortest t ~src ~dst)
  let later_header t ~tel:_ ~src ~dst = header_of ~dst (shortest t ~src ~dst)

  let forward _ (h : D.header) ~at:u =
    match h.D.labels with
    | next :: rest -> D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
    | [] -> if u = h.D.dst then D.Deliver else D.Drop D.No_route

  let state_entries _ _ = 0
  let state_bytes _ _ = 0.0
  let fork t = { t with ws = Dijkstra.make_workspace t.graph }

  let compile _t =
    {
      D.fstep =
        (fun (pkt : D.packet) u ->
          if D.route_len pkt > 1 then D.route_next pkt
          else if u = pkt.D.pdst then D.fast_deliver
          else D.fast_no_route);
      D.fprime = (fun ~src:_ ~dst:_ -> ());
    }
end

let lame_routers () =
  [
    Routers.find_exn "pathvector";
    (module Lame_fast_router : Protocol.ROUTER);
  ]

(* The shrunk counterexample the harness reports for run_seed 11 — the
   smallest scenario the shrinker reaches must stay put, so the
   differential's shrinking path is covered end to end. *)
let pinned_lame_shrunk =
  "seed=1458419845239409703,family=gnm,n=16,pairs=1,workload=uniform,churn=0"

let test_divergent_compile_convicted () =
  let routers = lame_routers () in
  let s = Harness.run_cases ~routers ~run_seed:11 ~cases:3 ~max_nodes:32 () in
  Alcotest.(check bool) "run fails" false (Harness.passed s);
  let cx =
    match s.Harness.counterexamples with
    | [] -> Alcotest.fail "no counterexample reported"
    | cx :: _ -> cx
  in
  List.iter
    (fun v ->
      Alcotest.(check string) "convicted scheme" "lamefast" v.Violation.scheme;
      match v.Violation.kind with
      | Violation.Fastpath_divergence _ -> ()
      | k ->
          Alcotest.failf "unexpected violation kind %s"
            (Violation.describe { v with Violation.kind = k }))
    cx.Harness.violations;
  Alcotest.(check string) "shrunk scenario pinned" pinned_lame_shrunk
    (Scenario.to_string cx.Harness.minimized)

let test_pinned_lame_shrunk_still_fails () =
  let outcome = Runner.run ~routers:(lame_routers ()) (scenario_exn pinned_lame_shrunk) in
  Alcotest.(check bool) "pinned shrunk scenario convicts" true
    (Runner.failed outcome);
  Alcotest.(check bool) "as a fastpath divergence" true
    (List.exists
       (fun v ->
         match v.Violation.kind with
         | Violation.Fastpath_divergence _ ->
             String.equal v.Violation.scheme "lamefast"
         | _ -> false)
       outcome.Runner.violations);
  (* The honest registry passes the very same scenario. *)
  let clean = Runner.run (scenario_exn pinned_lame_shrunk) in
  Alcotest.(check bool) "registry clean on the same scenario" false
    (Runner.failed clean)

let suite =
  [
    Alcotest.test_case "pinned scenarios stay green" `Quick test_pinned_scenarios_pass;
    Alcotest.test_case "miscalibrated S4 bound convicted" `Quick
      test_miscalibrated_bound_is_convicted;
    Alcotest.test_case "pinned fastpath scenarios stay green" `Quick
      test_pinned_fastpath_green;
    Alcotest.test_case "divergent compile convicted and shrunk" `Quick
      test_divergent_compile_convicted;
    Alcotest.test_case "pinned shrunk fastpath scenario" `Quick
      test_pinned_lame_shrunk_still_fails;
  ]
