(* Counterexamples disco-check found on main, pinned by exact seed.

   The first sweep (disco-check --seed 7 --cases 10 --max-nodes 64)
   convicted S4 on eight scenarios: its first packet was held to the TZ
   stretch-3 bound, but S4 resolves flat names through the consistent-
   hashing resolution database, so the first packet detours via the hash
   owner and its stretch is unbounded (s4.mli, §5 of the paper). The fix
   was to the invariant catalog — S4's first_bound is None; stretch 3
   applies to route_later only.

   These scenarios pin both directions of that fix, replayed from the
   exact shrunk seeds the checker reported:
   - under the corrected catalog they pass (and must stay passing);
   - under the original, miscalibrated catalog the checker still convicts
     S4 with the very stretch values observed (4.0, 5.0, 4.33), proving a
     future bound drift of this class cannot slip through. *)

module Scenario = Disco_check.Scenario
module Spec = Disco_check.Spec
module Runner = Disco_check.Runner
module Violation = Disco_check.Violation

let scenario_exn desc =
  match Scenario.of_string desc with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "bad pinned scenario %S: %s" desc e

(* Shrunk counterexamples as reported by disco-check --seed 7 --cases 10. *)
let pinned =
  [
    "seed=1150299863866387076,family=gnm,n=16,pairs=16,workload=uniform,churn=0";
    "seed=1512986910920847295,family=gnm,n=16,pairs=4,workload=uniform,churn=0";
    "seed=619157119472769496,family=ring,n=16,pairs=7,workload=uniform,churn=0";
    "seed=1905278406105126106,family=geometric,n=17,pairs=6,workload=uniform,churn=0";
  ]

let test_pinned_scenarios_pass () =
  List.iter
    (fun desc ->
      let outcome = Runner.run (scenario_exn desc) in
      if Runner.failed outcome then
        Alcotest.failf "pinned scenario regressed: %s\n%s" desc
          (String.concat "\n"
             (List.map Violation.describe outcome.Runner.violations)))
    pinned

(* The catalog bug as it originally shipped: S4's first packet wrongly
   held to stretch 3. *)
let miscalibrated s =
  let spec = Spec.find s in
  if String.equal s "s4" then { spec with Spec.first_bound = Some 3.0 } else spec

let test_miscalibrated_bound_is_convicted () =
  let sc =
    scenario_exn "seed=1512986910920847295,family=gnm,n=16,pairs=4,workload=uniform,churn=0"
  in
  let outcome = Runner.run ~spec_of:miscalibrated sc in
  let s4_first_violation =
    List.exists
      (fun v ->
        String.equal v.Violation.scheme "s4"
        &&
        match v.Violation.kind with
        | Violation.Stretch_exceeded { phase; stretch; bound; _ } ->
            String.equal phase "first" && bound = 3.0 && stretch > 3.0
        | _ -> false)
      outcome.Runner.violations
  in
  Alcotest.(check bool) "s4 first-packet stretch > 3 detected" true
    s4_first_violation

let suite =
  [
    Alcotest.test_case "pinned scenarios stay green" `Quick test_pinned_scenarios_pass;
    Alcotest.test_case "miscalibrated S4 bound convicted" `Quick
      test_miscalibrated_bound_is_convicted;
  ]
