(* The scheme-agnostic walker itself: TTL exhaustion, loop detection,
   rewrite accounting at a proxy, the data-plane contract (neighbor hops
   only, deliver only at the destination), and header byte accounting. *)

module Graph = Disco_graph.Graph
module D = Disco_core.Dataplane

(* A weighted line 0 - 1 - ... - (n-1). *)
let line n =
  let b = Graph.Builder.create n in
  for v = 0 to n - 2 do
    Graph.Builder.add_edge b v (v + 1) 1.0
  done;
  Graph.Builder.build b

let test_ttl_exhaustion () =
  let g = line 3 in
  (* Ping-pong 0 <-> 1 forever, changing the header every hop so loop
     detection never fires: only the TTL stops the walk. *)
  let forward (h : D.header) ~at =
    let next = if at = 0 then 1 else 0 in
    D.Rewrite ({ h with D.extra_bytes = h.D.extra_bytes + 1 }, next, D.Hop next)
  in
  let tr = D.walk ~ttl:7 g ~forward ~src:0 (D.plain ~dst:2 D.Carry) in
  Alcotest.(check bool) "not delivered" false tr.D.delivered;
  Alcotest.(check bool) "ttl expired" true (tr.D.dropped = Some D.Ttl_expired);
  Alcotest.(check int) "stopped at the ttl" 7 tr.D.hops

let test_loop_detected () =
  let g = line 3 in
  (* The same ping-pong with an unchanged header: revisiting node 0 in an
     identical state is cut immediately, long before the TTL. *)
  let forward (_ : D.header) ~at = D.Forward (if at = 0 then 1 else 0) in
  let tr = D.walk g ~forward ~src:0 (D.plain ~dst:2 D.Carry) in
  Alcotest.(check bool) "loop detected" true (tr.D.dropped = Some D.Loop_detected);
  Alcotest.(check int) "cut at first state recurrence" 2 tr.D.hops

let test_rewrite_at_proxy () =
  let g = line 4 in
  (* Steer to waypoint 2 on explicit labels; the waypoint rewrites the
     header with the onward route — the shape of every lookup detour. *)
  let forward (h : D.header) ~at =
    match (h.D.phase, h.D.labels) with
    | D.Carry, [] -> if at = h.D.dst then D.Deliver else D.Drop D.No_route
    | (D.Steer _ | D.Carry), next :: rest ->
        D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
    | D.Steer _, [] ->
        D.Rewrite
          ( { h with D.phase = D.Carry; labels = []; waypoint = -1 },
            3,
            D.Address_rewrite )
    | _ -> D.Drop (D.Protocol_error "unexpected phase")
  in
  let header =
    { (D.plain ~dst:3 (D.Steer { tried_proxy = false })) with
      D.labels = [ 1; 2 ];
      waypoint = 2;
    }
  in
  let tr = D.walk g ~forward ~src:0 header in
  Alcotest.(check bool) "delivered" true tr.D.delivered;
  Alcotest.(check (list int)) "path rides through the proxy" [ 0; 1; 2; 3 ] tr.D.path;
  (* Two label hops, then the address rewrite at the proxy. *)
  Alcotest.(check int) "rewrites counted" 3 tr.D.rewrites;
  Alcotest.(check bool) "proxy rewrite recorded" true
    (List.exists
       (fun (s : D.step) -> s.D.at = 2 && s.D.action = D.Address_rewrite)
       tr.D.steps)

let test_non_neighbor_is_protocol_error () =
  let g = line 4 in
  let forward (_ : D.header) ~at:_ = D.Forward 3 (* 3 is not adjacent to 0 *) in
  let tr = D.walk g ~forward ~src:0 (D.plain ~dst:3 D.Carry) in
  Alcotest.(check bool) "dropped as protocol error" true
    (match tr.D.dropped with Some (D.Protocol_error _) -> true | _ -> false);
  Alcotest.(check int) "no hop taken" 0 tr.D.hops

let test_deliver_away_from_dst_is_protocol_error () =
  let g = line 4 in
  let forward (_ : D.header) ~at:_ = D.Deliver in
  let tr = D.walk g ~forward ~src:0 (D.plain ~dst:3 D.Carry) in
  Alcotest.(check bool) "not delivered" false tr.D.delivered;
  Alcotest.(check bool) "dropped as protocol error" true
    (match tr.D.dropped with Some (D.Protocol_error _) -> true | _ -> false)

let test_src_equals_dst () =
  let g = line 4 in
  let forward (h : D.header) ~at =
    if at = h.D.dst then D.Deliver else D.Drop D.No_route
  in
  let tr = D.walk g ~forward ~src:2 (D.plain ~dst:2 D.Carry) in
  Alcotest.(check bool) "delivered" true tr.D.delivered;
  Alcotest.(check (list int)) "stays put" [ 2 ] tr.D.path;
  Alcotest.(check int) "no hops" 0 tr.D.hops

let test_byte_accounting () =
  let g = line 4 in
  (* A plain header is just the self-certifying name. *)
  let plain = D.plain ~dst:3 D.Carry in
  Alcotest.(check int) "plain = name bytes" 20 (D.byte_size g ~at:0 plain);
  Alcotest.(check int) "name_bytes overridable" 8
    (D.byte_size ~name_bytes:8 g ~at:0 plain);
  (* Every optional field strictly grows the header. *)
  let grows label h =
    if D.byte_size g ~at:0 h <= D.byte_size g ~at:0 plain then
      Alcotest.failf "%s did not grow the header" label
  in
  grows "labels" { plain with D.labels = [ 1; 2; 3 ] };
  grows "waypoint" { plain with D.waypoint = 2 };
  grows "anchor" { plain with D.anchor = 2 };
  grows "fbound" { plain with D.fbound = 1.5 };
  grows "vbound" { plain with D.vbound = 7L };
  grows "extra bytes" { plain with D.extra_bytes = 4 };
  (* The walker sums per-hop sizes: three unit hops with a constant-size
     header give total = 3 * max. *)
  let forward (h : D.header) ~at =
    if at = h.D.dst then D.Deliver
    else
      match h.D.labels with
      | next :: rest -> D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
      | [] -> D.Drop D.No_route
  in
  let tr =
    D.walk g ~forward ~src:0 { (D.plain ~dst:3 D.Carry) with D.labels = [ 1; 2; 3 ] }
  in
  Alcotest.(check bool) "delivered" true tr.D.delivered;
  Alcotest.(check bool) "bytes accounted on every hop" true
    (tr.D.header_bytes_total >= tr.D.hops * 20
    && tr.D.header_bytes_max >= 20
    && tr.D.header_bytes_total <= tr.D.hops * tr.D.header_bytes_max)

let suite =
  [
    Alcotest.test_case "ttl exhaustion" `Quick test_ttl_exhaustion;
    Alcotest.test_case "loop detected" `Quick test_loop_detected;
    Alcotest.test_case "rewrite at proxy" `Quick test_rewrite_at_proxy;
    Alcotest.test_case "non-neighbor hop rejected" `Quick
      test_non_neighbor_is_protocol_error;
    Alcotest.test_case "deliver away from dst rejected" `Quick
      test_deliver_away_from_dst_is_protocol_error;
    Alcotest.test_case "src = dst" `Quick test_src_equals_dst;
    Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
  ]
