(* The throughput figure's engine at toy scale: `bench --figure
   throughput --json` must emit well-formed JSON naming all eight
   registered schemes, and the timed loop it reports on must actually
   route (hops > 0, packets = flows * reps) without per-hop allocation.
   Runs from `dune runtest` so the bench path cannot rot between bench
   invocations. *)

module Fastwalk = Disco_experiments.Fastwalk
module Routers = Disco_experiments.Routers

let rows = lazy (Fastwalk.measure ~seed:42 ~n:48 ~flows:8 ~reps:2)
let json = lazy (Fastwalk.json_of_rows ~seed:42 ~n:48 ~flows:8 ~reps:2 (Lazy.force rows))

(* Minimal recursive-descent JSON well-formedness check (objects, arrays,
   strings with escapes, numbers, literals) — no external parser dep. *)
let json_well_formed s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some ('t' | 'f' | 'n') -> literal ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elements ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elements ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      if !pos >= len then fail ();
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          pos := !pos + 2;
          chars ()
      | c when Char.code c < 0x20 -> fail ()
      | _ ->
          incr pos;
          chars ()
    in
    chars ()
  and number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < len && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then fail ()
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ())
  and literal () =
    let kw w =
      let l = String.length w in
      if !pos + l <= len && String.equal (String.sub s !pos l) w then
        pos := !pos + l
      else fail ()
    in
    match peek () with
    | Some 't' -> kw "true"
    | Some 'f' -> kw "false"
    | _ -> kw "null"
  in
  try
    value ();
    skip_ws ();
    !pos = len
  with Exit -> false

let test_json_well_formed () =
  Alcotest.(check bool) "parses end to end" true (json_well_formed (Lazy.force json))

let test_all_schemes_present () =
  let j = Lazy.force json in
  List.iter
    (fun scheme ->
      let needle = Printf.sprintf "\"scheme\": \"%s\"" scheme in
      Alcotest.(check bool) (scheme ^ " in JSON") true
        (Option.is_some (Lint.Waivers.find_sub j needle)))
    (Routers.names ());
  Alcotest.(check int) "two rows per scheme" (2 * List.length (Routers.names ()))
    (List.length (Lazy.force rows))

let test_rows_routed () =
  List.iter
    (fun (r : Fastwalk.row) ->
      let tag what = Printf.sprintf "%s/%s %s" r.Fastwalk.scheme r.Fastwalk.kind what in
      Alcotest.(check int) (tag "packets = flows * reps") (8 * 2) r.Fastwalk.packets;
      Alcotest.(check bool) (tag "routed some hops") true (r.Fastwalk.hops > 0);
      Alcotest.(check bool) (tag "delivered something") true (r.Fastwalk.delivered > 0);
      (* The zero-alloc contract, at runtime: the timed loop may not
         allocate per hop (tiny constant slack for the measurement
         scaffolding itself). *)
      Alcotest.(check bool) (tag "allocation-free hop loop") true
        (r.Fastwalk.minor_words < 64.0))
    (Lazy.force rows)

let test_kinds_and_order () =
  let expected =
    List.concat_map (fun s -> [ (s, "first"); (s, "later") ]) (Routers.names ())
  in
  Alcotest.(check (list (pair string string)))
    "registration order, first then later" expected
    (List.map (fun r -> (r.Fastwalk.scheme, r.Fastwalk.kind)) (Lazy.force rows))

let suite =
  [
    Alcotest.test_case "json well-formed" `Quick test_json_well_formed;
    Alcotest.test_case "all schemes present" `Quick test_all_schemes_present;
    Alcotest.test_case "rows actually routed" `Quick test_rows_routed;
    Alcotest.test_case "row order pinned" `Quick test_kinds_and_order;
  ]
