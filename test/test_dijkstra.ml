module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra

(* A weighted diamond:  0 -1- 1 -1- 3,  0 -5- 2 -1- 3. *)
let diamond () =
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_edge b 0 1 1.0;
  Graph.Builder.add_edge b 1 3 1.0;
  Graph.Builder.add_edge b 0 2 5.0;
  Graph.Builder.add_edge b 2 3 1.0;
  Graph.Builder.build b

let test_sssp_diamond () =
  let g = diamond () in
  let r = Dijkstra.sssp g 0 in
  Alcotest.(check (array (float 1e-9))) "distances" [| 0.0; 1.0; 3.0; 2.0 |] r.Dijkstra.dist;
  Alcotest.(check int) "parent of 2 is 3 (via short side)" 3 r.Dijkstra.parent.(2);
  Alcotest.(check int) "source parent" (-1) r.Dijkstra.parent.(0)

let test_distance_early_exit () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "0->3" 2.0 (Dijkstra.distance g 0 3);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Dijkstra.distance g 2 2)

let test_unreachable () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_edge b 0 1 1.0;
  let g = Graph.Builder.build b in
  let r = Dijkstra.sssp g 0 in
  Alcotest.(check (float 1e-9)) "infinite" infinity r.Dijkstra.dist.(2);
  Alcotest.(check (float 1e-9)) "distance inf" infinity (Dijkstra.distance g 0 2)

let test_k_closest () =
  let g = diamond () in
  let t = Dijkstra.k_closest g 0 3 in
  Alcotest.(check (array int)) "settle order" [| 0; 1; 3 |] t.Dijkstra.order;
  Alcotest.(check (array (float 1e-9))) "distances" [| 0.0; 1.0; 2.0 |] t.Dijkstra.tdist;
  Alcotest.(check int) "parent of 1" 0 t.Dijkstra.tparent.(1);
  Alcotest.(check int) "parent of 3" 1 t.Dijkstra.tparent.(2)

let test_k_closest_caps_at_n () =
  let g = diamond () in
  let t = Dijkstra.k_closest g 0 100 in
  Alcotest.(check int) "all nodes" 4 (Array.length t.Dijkstra.order)

let test_within_radius_strict () =
  let g = diamond () in
  let t = Dijkstra.within_radius g 0 2.0 in
  (* Strictly less than 2.0: nodes 0 (0.0) and 1 (1.0) only. *)
  Alcotest.(check (array int)) "strict ball" [| 0; 1 |] t.Dijkstra.order

let test_multi_source () =
  let g = diamond () in
  let m = Dijkstra.multi_source g [| 1; 2 |] in
  Alcotest.(check (float 1e-9)) "node 0" 1.0 m.Dijkstra.mdist.(0);
  Alcotest.(check int) "node 0 source" 1 m.Dijkstra.msource.(0);
  Alcotest.(check (float 1e-9)) "node 3" 1.0 m.Dijkstra.mdist.(3);
  Alcotest.(check int) "source at source" 2 m.Dijkstra.msource.(2);
  Alcotest.(check (float 1e-9)) "source dist" 0.0 m.Dijkstra.mdist.(2)

let test_path_of_parents () =
  let g = diamond () in
  let r = Dijkstra.sssp g 0 in
  let p = Dijkstra.path_of_parents ~parent:(fun v -> r.Dijkstra.parent.(v)) ~src:0 ~dst:3 in
  Alcotest.(check (list int)) "path" [ 0; 1; 3 ] p

let test_path_length () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "length" 7.0 (Dijkstra.path_length g [ 2; 0; 1; 3 ]);
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Dijkstra.path_length g [ 1 ]);
  Alcotest.check_raises "non-path" (Invalid_argument "Dijkstra.path_length: not a path")
    (fun () -> ignore (Dijkstra.path_length g [ 0; 3 ]))

let test_truncated_lookup () =
  let g = diamond () in
  let t = Dijkstra.k_closest g 0 3 in
  let lookup = Dijkstra.truncated_lookup t in
  Alcotest.(check bool) "settled found" true (lookup 1 = Some (1.0, 0));
  Alcotest.(check bool) "unsettled absent" true (lookup 2 = None)

let test_workspace_reuse () =
  let g = diamond () in
  let ws = Dijkstra.make_workspace g in
  let r1 = Dijkstra.sssp ~ws g 0 in
  let r2 = Dijkstra.sssp ~ws g 2 in
  let r1' = Dijkstra.sssp ~ws g 0 in
  Alcotest.(check (array (float 1e-9))) "idempotent" r1.Dijkstra.dist r1'.Dijkstra.dist;
  Alcotest.(check (float 1e-9)) "second run correct" 1.0 r2.Dijkstra.dist.(3)

let prop_matches_floyd =
  Helpers.qtest "sssp matches Floyd-Warshall" ~count:20 Helpers.seed_arb (fun seed ->
      let g = Helpers.random_graph ~n_min:8 ~n_max:24 seed in
      let oracle = Helpers.floyd g in
      let ok = ref true in
      for s = 0 to Graph.n g - 1 do
        let r = Dijkstra.sssp g s in
        for t = 0 to Graph.n g - 1 do
          if Float.abs (r.Dijkstra.dist.(t) -. oracle.(s).(t)) > 1e-9 then ok := false
        done
      done;
      !ok)

let prop_weighted_matches_floyd =
  Helpers.qtest "sssp matches Floyd on weighted graphs" ~count:10 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let oracle = Helpers.floyd g in
      let ok = ref true in
      for s = 0 to min 7 (Graph.n g - 1) do
        let r = Dijkstra.sssp g s in
        for t = 0 to Graph.n g - 1 do
          if
            r.Dijkstra.dist.(t) < infinity
            && Float.abs (r.Dijkstra.dist.(t) -. oracle.(s).(t)) > 1e-9
          then ok := false
        done
      done;
      !ok)

let prop_k_closest_agrees_with_sssp =
  Helpers.qtest "k_closest = k smallest sssp distances" ~count:30 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_graph seed in
      let src = seed mod Graph.n g in
      let k = 1 + (seed mod 10) in
      let t = Dijkstra.k_closest g src k in
      let r = Dijkstra.sssp g src in
      let all = Array.init (Graph.n g) (fun v -> r.Dijkstra.dist.(v)) in
      Array.sort compare all;
      let ok = ref (Array.length t.Dijkstra.order = min k (Graph.n g)) in
      Array.iteri
        (fun i v ->
          (* The i-th settled distance equals the i-th smallest distance
             (ties may swap nodes, never distances). *)
          if Float.abs (t.Dijkstra.tdist.(i) -. all.(i)) > 1e-9 then ok := false;
          if Float.abs (t.Dijkstra.tdist.(i) -. r.Dijkstra.dist.(v)) > 1e-9 then
            ok := false)
        t.Dijkstra.order;
      !ok)

let prop_within_radius_agrees_with_sssp =
  Helpers.qtest "within_radius = full sssp restricted to the open ball" ~count:30
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let src = seed mod Graph.n g in
      let r = Dijkstra.sssp g src in
      (* Radii straddling the distance spectrum, including 0 (empty-but-src
         ball is impossible: d(src,src) = 0 < r fails, so 0 settles nothing
         only if r <= 0; use strictly positive radii plus one exact
         distance value to exercise the strict-< boundary). *)
      let some_dist =
        r.Dijkstra.dist.((src + 1) mod Graph.n g)
      in
      let radii = [ 0.0; some_dist; some_dist +. 1e-9; max 1.0 (2.0 *. some_dist) ] in
      List.for_all
        (fun radius ->
          let t = Dijkstra.within_radius g src radius in
          let lookup = Dijkstra.truncated_lookup t in
          let ok = ref true in
          for v = 0 to Graph.n g - 1 do
            let inside = r.Dijkstra.dist.(v) < radius in
            match lookup v with
            | Some (d, _) ->
                if not inside then ok := false;
                if Float.abs (d -. r.Dijkstra.dist.(v)) > 1e-9 then ok := false
            | None -> if inside then ok := false
          done;
          !ok)
        radii)

let prop_k_closest_weighted_parents =
  Helpers.qtest "truncated parent chains realize full-sssp distances" ~count:30
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let src = seed mod Graph.n g in
      let k = 1 + (seed mod Graph.n g) in
      let t = Dijkstra.k_closest g src k in
      let r = Dijkstra.sssp g src in
      let lookup = Dijkstra.truncated_lookup t in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if Float.abs (t.Dijkstra.tdist.(i) -. r.Dijkstra.dist.(v)) > 1e-9 then
            ok := false;
          if v <> src then begin
            (* Predecessors are settled earlier, so the lookup-based parent
               walk must reach src realizing exactly tdist. *)
            let parent w = match lookup w with Some (_, p) -> p | None -> -2 in
            let p = Dijkstra.path_of_parents ~parent ~src ~dst:v in
            if Float.abs (Dijkstra.path_length g p -. t.Dijkstra.tdist.(i)) > 1e-9 then
              ok := false
          end)
        t.Dijkstra.order;
      !ok)

let prop_parents_form_shortest_paths =
  Helpers.qtest "parent chains realize dist" ~count:20 Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let src = seed mod Graph.n g in
      let r = Dijkstra.sssp g src in
      let ok = ref true in
      for t = 0 to Graph.n g - 1 do
        if r.Dijkstra.dist.(t) < infinity && t <> src then begin
          let p =
            Dijkstra.path_of_parents ~parent:(fun v -> r.Dijkstra.parent.(v)) ~src ~dst:t
          in
          if Float.abs (Dijkstra.path_length g p -. r.Dijkstra.dist.(t)) > 1e-9 then
            ok := false
        end
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "sssp diamond" `Quick test_sssp_diamond;
    Alcotest.test_case "distance early exit" `Quick test_distance_early_exit;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "k_closest" `Quick test_k_closest;
    Alcotest.test_case "k_closest caps at n" `Quick test_k_closest_caps_at_n;
    Alcotest.test_case "within_radius strict" `Quick test_within_radius_strict;
    Alcotest.test_case "multi_source" `Quick test_multi_source;
    Alcotest.test_case "path_of_parents" `Quick test_path_of_parents;
    Alcotest.test_case "path_length" `Quick test_path_length;
    Alcotest.test_case "truncated_lookup" `Quick test_truncated_lookup;
    Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
    prop_matches_floyd;
    prop_weighted_matches_floyd;
    prop_k_closest_agrees_with_sssp;
    prop_within_radius_agrees_with_sssp;
    prop_k_closest_weighted_parents;
    prop_parents_form_shortest_paths;
  ]
