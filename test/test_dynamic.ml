(* The dynamic, event-driven protocol: cold-start convergence, join,
   fail-stop leave, landmark loss, and estimate-driven landmark churn —
   the "dynamic distributed setting" of the paper's title, including the
   continuous-churn behaviour §5 defers to future work. *)

module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Network = Disco_dynamic.Network

let make ?(n = 64) ?(seed = 3) () =
  let rng = Rng.create seed in
  let graph = Disco_graph.Gen.gnm ~rng ~n ~m:(4 * n) in
  let net = Network.create ~rng ~graph ~n_estimate:n () in
  (graph, net)

let sample_pairs ?(count = 60) ~n seed =
  let rng = Rng.create (seed * 77) in
  List.init count (fun _ ->
      let s = Rng.int rng n and d = Rng.int rng n in
      (s, d))
  |> List.filter (fun (s, d) -> s <> d)

let converge net at = Network.run_until net at

let test_cold_start_full_reachability () =
  let graph, net = make () in
  Network.activate_all net;
  converge net 400.0;
  let n = Graph.n graph in
  let pairs = sample_pairs ~n 1 in
  let frac = Network.reachable_fraction net ~pairs in
  Alcotest.(check (float 1e-9)) "all sampled pairs deliverable" 1.0 frac

let test_cold_start_routes_valid () =
  let graph, net = make ~seed:5 () in
  Network.activate_all net;
  converge net 400.0;
  let n = Graph.n graph in
  List.iter
    (fun (s, d) ->
      match Network.route net ~src:s ~dst:d with
      | None -> Alcotest.failf "%d -> %d unroutable" s d
      | Some p -> Helpers.check_path graph ~src:s ~dst:d p)
    (sample_pairs ~n 2)

let test_stretch_bounded () =
  let graph, net = make ~seed:7 () in
  Network.activate_all net;
  converge net 400.0;
  let n = Graph.n graph in
  let ws = Dijkstra.make_workspace graph in
  List.iter
    (fun (s, d) ->
      match Network.route net ~src:s ~dst:d with
      | None -> Alcotest.failf "%d -> %d unroutable" s d
      | Some p ->
          let shortest = (Dijkstra.sssp ~ws graph s).Dijkstra.dist.(d) in
          let stretch = Helpers.path_len graph p /. shortest in
          if stretch > 7.0 +. 1e-9 then
            Alcotest.failf "%d -> %d stretch %.2f" s d stretch)
    (sample_pairs ~n 3)

let test_state_bounded () =
  let graph, net = make ~seed:9 () in
  Network.activate_all net;
  converge net 400.0;
  let n = Graph.n graph in
  let k = Disco_core.Params.vicinity_size Disco_core.Params.default ~n in
  let landmarks = Network.landmark_count net in
  Alcotest.(check bool)
    (Printf.sprintf "landmark count %d plausible" landmarks)
    true
    (landmarks >= 3 && landmarks < n / 2);
  for v = 0 to n - 1 do
    let size = Network.route_table_size net v in
    (* routes (k + landmarks) + group addresses (<= group size) +
       resolution share; generous upper bound that still excludes
       anything O(n)-ish at this scale. *)
    let bound = k + landmarks + n / 2 + 10 in
    if size > bound then Alcotest.failf "node %d holds %d > %d entries" v size bound
  done

let test_addresses_present () =
  let graph, net = make ~seed:11 () in
  Network.activate_all net;
  converge net 400.0;
  for v = 0 to Graph.n graph - 1 do
    match Network.address_of net v with
    | None -> Alcotest.failf "node %d has no address" v
    | Some addr ->
        let path = addr.Disco_dynamic.Msg.lm_path in
        Alcotest.(check bool) "address route ends at node" true
          (List.nth path (List.length path - 1) = v);
        Alcotest.(check int) "address route starts at landmark"
          addr.Disco_dynamic.Msg.lm (List.hd path)
  done

let test_late_join () =
  let graph, net = make ~seed:13 () in
  let n = Graph.n graph in
  let newcomer = 17 in
  for v = 0 to n - 1 do
    if v <> newcomer then Network.activate net v
  done;
  converge net 400.0;
  Alcotest.(check bool) "inactive unroutable" true
    (Network.route net ~src:0 ~dst:newcomer = None);
  Network.activate net newcomer;
  converge net 800.0;
  (match Network.route net ~src:0 ~dst:newcomer with
  | None -> Alcotest.fail "newcomer unreachable after join"
  | Some p -> Helpers.check_path graph ~src:0 ~dst:newcomer p);
  match Network.route net ~src:newcomer ~dst:(n - 1) with
  | None -> Alcotest.fail "newcomer cannot send"
  | Some p -> Helpers.check_path graph ~src:newcomer ~dst:(n - 1) p

let test_fail_stop_leave () =
  let graph, net = make ~seed:15 () in
  let n = Graph.n graph in
  Network.activate_all net;
  converge net 400.0;
  (* Pick a non-landmark casualty so this test isolates route repair from
     landmark re-selection (covered by the next test). *)
  let casualty =
    let rec find v = if Network.is_landmark net v then find (v + 1) else v in
    find 20
  in
  Network.deactivate net casualty;
  converge net 900.0; (* past hello + route + address expiry *)
  Alcotest.(check bool) "dead node unroutable" true
    (Network.route net ~src:0 ~dst:casualty = None);
  let pairs =
    sample_pairs ~n 4 |> List.filter (fun (s, d) -> s <> casualty && d <> casualty)
  in
  let frac = Network.reachable_fraction net ~pairs in
  Alcotest.(check (float 1e-9)) "survivors fully connected" 1.0 frac

let test_landmark_failure () =
  let graph, net = make ~seed:17 () in
  let n = Graph.n graph in
  Network.activate_all net;
  converge net 400.0;
  (* Kill a landmark: addresses anchored at it must re-anchor. *)
  let lm =
    let rec find v = if Network.is_landmark net v then v else find (v + 1) in
    find 0
  in
  Network.deactivate net lm;
  converge net 1000.0;
  for v = 0 to min 20 (n - 1) do
    if v <> lm then begin
      match Network.address_of net v with
      | None -> Alcotest.failf "node %d lost its address" v
      | Some addr ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d re-anchored off dead landmark" v)
            true
            (addr.Disco_dynamic.Msg.lm <> lm)
    end
  done;
  let pairs = sample_pairs ~n 5 |> List.filter (fun (s, d) -> s <> lm && d <> lm) in
  Alcotest.(check (float 1e-9)) "reachability restored" 1.0
    (Network.reachable_fraction net ~pairs)

let test_estimate_hysteresis () =
  let graph, net = make ~seed:19 () in
  let n = Graph.n graph in
  Network.activate_all net;
  converge net 200.0;
  let before = Network.landmark_count net in
  (* Small drift: no landmark may flip. *)
  for v = 0 to n - 1 do
    Network.set_estimate net v ~n:(n + (n / 4))
  done;
  Alcotest.(check int) "no flips within factor 2" before (Network.landmark_count net);
  (* Big jump: re-draws happen (counts change with overwhelming
     probability for 64 nodes; equality would mean zero redraws). *)
  for v = 0 to n - 1 do
    Network.set_estimate net v ~n:(n * 8)
  done;
  converge net 600.0;
  let pairs = sample_pairs ~n 6 in
  Alcotest.(check (float 1e-9)) "still fully routable after churn" 1.0
    (Network.reachable_fraction net ~pairs)

let test_messages_flow () =
  let _, net = make ~seed:21 () in
  Network.activate_all net;
  converge net 100.0;
  Alcotest.(check bool) "protocol chatter happened" true (Network.messages_sent net > 0)

let prop_cold_start_converges =
  Helpers.qtest "cold start converges on random topologies" ~count:5
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 48 + (seed mod 32) in
      let graph = Disco_graph.Gen.gnm ~rng ~n ~m:(4 * n) in
      let net = Network.create ~rng ~graph ~n_estimate:n () in
      Network.activate_all net;
      Network.run_until net 400.0;
      let pairs = sample_pairs ~count:25 ~n seed in
      Network.reachable_fraction net ~pairs = 1.0)

(* Component labels of the graph with [casualty] removed: a fail-stop may
   physically partition the topology (e.g. the casualty was a leaf's only
   neighbour), and no protocol repairs a partition — only pairs still
   connected in the residual graph are judged. *)
let residual_components graph ~casualty =
  let n = Graph.n graph in
  let comp = Array.make n (-1) in
  let q = Queue.create () in
  for root = 0 to n - 1 do
    if root <> casualty && comp.(root) < 0 then begin
      comp.(root) <- root;
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_neighbors graph u (fun w _ ->
            if w <> casualty && comp.(w) < 0 then begin
              comp.(w) <- root;
              Queue.add w q
            end)
      done
    end
  done;
  comp

let prop_survives_one_failure =
  Helpers.qtest "any single fail-stop is repaired" ~count:5
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 48 in
      let graph = Disco_graph.Gen.gnm ~rng ~n ~m:(4 * n) in
      let net = Network.create ~rng ~graph ~n_estimate:n () in
      Network.activate_all net;
      Network.run_until net 400.0;
      let casualty = seed mod n in
      Network.deactivate net casualty;
      Network.run_until net 1200.0;
      let comp = residual_components graph ~casualty in
      let pairs =
        sample_pairs ~count:25 ~n seed
        |> List.filter (fun (s, d) ->
               s <> casualty && d <> casualty && comp.(s) = comp.(d))
      in
      Network.reachable_fraction net ~pairs = 1.0)

let suite =
  [
    Alcotest.test_case "cold start reaches all pairs" `Slow test_cold_start_full_reachability;
    prop_cold_start_converges;
    prop_survives_one_failure;
    Alcotest.test_case "routes are valid paths" `Slow test_cold_start_routes_valid;
    Alcotest.test_case "stretch bounded" `Slow test_stretch_bounded;
    Alcotest.test_case "state bounded" `Slow test_state_bounded;
    Alcotest.test_case "addresses present" `Slow test_addresses_present;
    Alcotest.test_case "late join" `Slow test_late_join;
    Alcotest.test_case "fail-stop leave" `Slow test_fail_stop_leave;
    Alcotest.test_case "landmark failure" `Slow test_landmark_failure;
    Alcotest.test_case "estimate hysteresis" `Slow test_estimate_hysteresis;
    Alcotest.test_case "messages flow" `Quick test_messages_flow;
  ]
