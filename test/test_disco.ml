(* Test runner: all suites, grouped per module. *)

let () =
  Alcotest.run "disco"
    [
      ("rng", Test_rng.suite);
      ("bits", Test_bits.suite);
      ("heap", Test_heap.suite);
      ("union-find", Test_union_find.suite);
      ("json", Test_json.suite);
      ("packed", Test_packed.suite);
      ("stats", Test_stats.suite);
      ("sha256", Test_sha256.suite);
      ("hashing", Test_hashing.suite);
      ("graph", Test_graph.suite);
      ("dijkstra", Test_dijkstra.suite);
      ("generators", Test_gen.suite);
      ("graph-io", Test_graph_io.suite);
      ("sim", Test_sim.suite);
      ("pathvector", Test_pathvector.suite);
      ("synopsis", Test_synopsis.suite);
      ("params", Test_params.suite);
      ("address", Test_address.suite);
      ("landmarks", Test_landmarks.suite);
      ("vicinity", Test_vicinity.suite);
      ("shortcut", Test_shortcut.suite);
      ("nddisco", Test_nddisco.suite);
      ("tree-address", Test_tree_address.suite);
      ("landmark-churn", Test_landmark_churn.suite);
      ("landmark-coverage", Test_coverage.suite);
      ("groups", Test_groups.suite);
      ("overlay", Test_overlay.suite);
      ("resolution", Test_resolution.suite);
      ("disco-core", Test_disco_core.suite);
      ("dataplane", Test_dataplane.suite);
      ("forwarding", Test_forwarding.suite);
      ("dataplane-differential", Test_dataplane_differential.suite);
      ("header", Test_header.suite);
      ("wire-codec", Test_wire_codec.suite);
      ("throughput", Test_throughput.suite);
      ("s4", Test_s4.suite);
      ("vrr", Test_vrr.suite);
      ("tz-hierarchy", Test_tz_hierarchy.suite);
      ("bvr-seattle", Test_bvr_seattle.suite);
      ("integration", Test_integration.suite);
      ("dynamic", Test_dynamic.suite);
      ("pool", Test_pool.suite);
      ("experiments", Test_experiments.suite);
      ("engine-parallel", Test_engine_parallel.suite);
      ("router-registry", Test_router_registry.suite);
      ("disco-check", Test_check.suite);
      ("disco-check-regressions", Test_check_regressions.suite);
      ("lint", Test_lint.suite);
      ("lint-typed", Test_lint_typed.suite);
    ]
