module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Core = Disco_core
module Header = Disco_core.Header

let build seed =
  let g = Helpers.random_weighted_graph seed in
  (g, Core.Disco.build ~rng:(Rng.create seed) g)

let test_components_sum () =
  let _, d = build 3 in
  let c =
    Header.first_packet d ~heuristic:Core.Shortcut.No_path_knowledge ~name_bytes:20
      ~src:0 ~dst:7
  in
  Alcotest.(check int) "total = parts"
    (c.Header.name_bytes + c.Header.label_bytes + c.Header.id_list_bytes)
    c.Header.total;
  Alcotest.(check int) "name bytes" 20 c.Header.name_bytes

let test_no_ids_without_path_knowledge () =
  let _, d = build 5 in
  List.iter
    (fun h ->
      let c = Header.first_packet d ~heuristic:h ~name_bytes:20 ~src:1 ~dst:9 in
      Alcotest.(check int) (Core.Shortcut.name h ^ " carries no id list") 0
        c.Header.id_list_bytes)
    [ Core.Shortcut.No_shortcut; Core.Shortcut.To_destination;
      Core.Shortcut.No_path_knowledge ]

let test_path_knowledge_pays_for_ids () =
  let g, d = build 7 in
  let n = Graph.n g in
  let some_positive = ref false in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t then begin
        let c =
          Header.first_packet d ~heuristic:Core.Shortcut.Path_knowledge ~name_bytes:20
            ~src:s ~dst:t
        in
        let route = Core.Disco.route_first ~heuristic:Core.Shortcut.Path_knowledge d ~src:s ~dst:t in
        let bits = Disco_util.Bits.width_for n in
        Alcotest.(check int) "id list sized to route"
          ((List.length route * bits + 7) / 8)
          c.Header.id_list_bytes;
        if c.Header.id_list_bytes > 0 then some_positive := true
      end
    done
  done;
  Alcotest.(check bool) "ids actually cost bytes" true !some_positive

let test_later_packet_no_ids () =
  let _, d = build 9 in
  let c = Header.later_packet d ~name_bytes:16 ~src:0 ~dst:5 in
  Alcotest.(check int) "no ids" 0 c.Header.id_list_bytes;
  Alcotest.(check int) "ipv6-sized name" 16 c.Header.name_bytes

let test_label_bytes_match_route () =
  (* The label encoding in the header equals Address-style packing of the
     actual route. *)
  let g, d = build 11 in
  let route = Core.Disco.route_later d ~src:2 ~dst:8 in
  let addr = Core.Address.make g ~route in
  let c = Header.later_packet d ~name_bytes:20 ~src:2 ~dst:8 in
  Alcotest.(check int) "label bytes" (Core.Address.route_byte_size addr) c.Header.label_bytes

(* --- encode_labels / decode_labels round-trips --- *)

let roundtrip g path =
  match path with
  | [] -> ()
  | src :: _ ->
      let labels, bits = Header.encode_labels g path in
      let hops = List.length path - 1 in
      Alcotest.(check (list int)) "decode inverts encode" path
        (Header.decode_labels g ~src ~hops labels);
      let expected_bits =
        (* One label per hop, sized by the forwarding node's degree. *)
        let rec widths = function
          | [] | [ _ ] -> 0
          | u :: (_ :: _ as rest) ->
              Disco_util.Bits.width_for (Graph.degree g u) + widths rest
        in
        widths path
      in
      Alcotest.(check int) "bit length is sum of hop widths" expected_bits bits

let test_labels_roundtrip_boundary_widths () =
  (* A path graph: interior degree 2 (1-bit labels), endpoints degree 1
     (0-bit labels) — the first hop of [0; 1; ...] costs zero bits. *)
  let line n =
    let b = Graph.Builder.create n in
    for v = 0 to n - 2 do
      Graph.Builder.add_edge b v (v + 1) 1.0
    done;
    Graph.Builder.build b
  in
  let g = line 9 in
  roundtrip g [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
  roundtrip g [ 4; 3; 2; 1; 0 ];
  roundtrip g [ 0; 1 ];
  (* Star with a power-of-two degree hub: hub labels are exactly
     width_for 16 = 4 bits, leaf labels 0 bits. *)
  let hub = Graph.Builder.create 17 in
  for leaf = 1 to 16 do
    Graph.Builder.add_edge hub 0 leaf 1.0
  done;
  let g = Graph.Builder.build hub in
  roundtrip g [ 3; 0; 16 ];
  roundtrip g [ 0; 7 ];
  (* Degree 17 = power of two + 1 pushes the width to 5 bits. *)
  let hub = Graph.Builder.create 18 in
  for leaf = 1 to 17 do
    Graph.Builder.add_edge hub 0 leaf 1.0
  done;
  let g = Graph.Builder.build hub in
  let labels, bits = Header.encode_labels g [ 17; 0; 1 ] in
  Alcotest.(check int) "0 + 5 bits" 5 bits;
  Alcotest.(check (list int)) "roundtrip" [ 17; 0; 1 ]
    (Header.decode_labels g ~src:17 ~hops:2 labels)

let test_labels_single_node_path () =
  let g, _ = build 13 in
  let labels, bits = Header.encode_labels g [ 0 ] in
  Alcotest.(check int) "no hops, no bits" 0 bits;
  Alcotest.(check (list int)) "decodes to itself" [ 0 ]
    (Header.decode_labels g ~src:0 ~hops:0 labels)

let test_labels_reject_non_path () =
  let g = Helpers.random_weighted_graph 21 in
  let non_edge =
    let n = Graph.n g in
    let found = ref None in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if !found = None && u <> v && Graph.edge_weight g u v = None then
          found := Some (u, v)
      done
    done;
    !found
  in
  match non_edge with
  | None -> () (* complete graph; nothing to reject *)
  | Some (u, v) ->
      Alcotest.check_raises "non-path rejected"
        (Invalid_argument "Header: route is not a path")
        (fun () -> ignore (Header.encode_labels g [ u; v ]))

let prop_labels_roundtrip_on_routes =
  Helpers.qtest "route labels round-trip through the bit codec" ~count:30
    Helpers.seed_arb (fun seed ->
      let g, d = build seed in
      let n = Graph.n g in
      let src = seed mod n and dst = (seed * 7 + 1) mod n in
      let check route =
        match route with
        | [] -> true
        | first :: _ ->
            let labels, _ = Header.encode_labels g route in
            Header.decode_labels g ~src:first ~hops:(List.length route - 1) labels
            = route
      in
      check (Core.Disco.route_first d ~src ~dst)
      && check (Core.Disco.route_later d ~src ~dst))

let suite =
  [
    Alcotest.test_case "components sum" `Quick test_components_sum;
    Alcotest.test_case "no ids without path knowledge" `Quick test_no_ids_without_path_knowledge;
    Alcotest.test_case "path knowledge pays for ids" `Quick test_path_knowledge_pays_for_ids;
    Alcotest.test_case "later packet no ids" `Quick test_later_packet_no_ids;
    Alcotest.test_case "label bytes match route" `Quick test_label_bytes_match_route;
    Alcotest.test_case "label roundtrip at boundary widths" `Quick
      test_labels_roundtrip_boundary_widths;
    Alcotest.test_case "single-node path" `Quick test_labels_single_node_path;
    Alcotest.test_case "non-path rejected" `Quick test_labels_reject_non_path;
    prop_labels_roundtrip_on_routes;
  ]
