(* The typed pass (L7/L8/L9) against the fixture project in
   typed_fixtures/: each rule fires on its positive fixture, stays quiet on
   the negative one, respects inline waivers, and crosses function
   boundaries.  Plus the manifest pin: Hot_manifest must name exactly one
   data-plane forward per scheme in the live router registry, so adding a
   scheme without extending the alloc discipline fails here. *)

module Driver = Lint.Driver
module Diagnostic = Lint.Diagnostic

(* The fixture library is linked into this test binary, so dune has built
   its .cmt files next to us (cwd is _build/default/test). *)
let summary =
  lazy
    (match
       Lint.Typed_driver.run ~check_manifest:false
         ~build_dir:"typed_fixtures" ~source_root:".."
         ~roots:[ "test/typed_fixtures" ] ()
     with
    | Error e -> failwith ("typed fixture load failed: " ^ e)
    | Ok (_units, s) -> s)

let diags_in file =
  List.filter
    (fun d -> String.equal (Filename.basename d.Diagnostic.file) file)
    (Lazy.force summary).Driver.diagnostics

let rules_in file =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Diagnostic.rule) (diags_in file))

let fires rule file () =
  Alcotest.(check bool)
    (rule ^ " fires on " ^ file)
    true
    (List.mem rule (rules_in file))

let quiet file () =
  Alcotest.(check (list string)) ("no findings in " ^ file) [] (rules_in file)

let transitive_names_chain () =
  (* The l7_trans finding must point at the hot entry and blame the helper. *)
  match diags_in "l7_trans.ml" with
  | [] -> Alcotest.fail "expected a transitive L7 finding"
  | d :: _ ->
      Alcotest.(check bool)
        "message blames the helper" true
        (Option.is_some (Lint.Waivers.find_sub d.Diagnostic.message "build"))

let every_positive_is_error () =
  let s = Lazy.force summary in
  Alcotest.(check bool) "positives reported" true (s.Driver.errors >= 4);
  Alcotest.(check int) "nothing demoted" 0 s.Driver.warnings

let manifest_pins_registry () =
  let schemes = List.sort String.compare (Disco_experiments.Routers.names ()) in
  let manifest =
    List.sort String.compare
      (List.map fst Lint.Hot_manifest.forward_of_scheme)
  in
  Alcotest.(check (list string))
    "one manifest forward per registered scheme" schemes manifest;
  Alcotest.(check int) "eight registered schemes" 8 (List.length schemes)

let manifest_pins_fast_registry () =
  (* The compiled face carries the same discipline: every registered
     scheme must name its fast_step on the hot manifest, so a scheme
     gaining [compile] without the alloc proof fails here. *)
  let schemes = List.sort String.compare (Disco_experiments.Routers.names ()) in
  let manifest =
    List.sort String.compare (List.map fst Lint.Hot_manifest.fast_of_scheme)
  in
  Alcotest.(check (list string))
    "one manifest fast step per registered scheme" schemes manifest;
  List.iter
    (fun (_, path) ->
      Alcotest.(check bool) (path ^ " names a fast step") true
        (Option.is_some (Lint.Waivers.find_sub path "fast_step")))
    Lint.Hot_manifest.fast_of_scheme

let typed_catalogue_sane () =
  let ids = List.map (fun r -> r.Lint.Rules.id) Lint.Typed_rules.catalogue in
  Alcotest.(check (list string)) "typed rules" [ "L7"; "L8"; "L9"; "H0" ] ids

let suite =
  let test name fn = Alcotest.test_case name `Quick fn in
  [
    test "L7 fires on direct allocation" (fires "L7" "l7_pos.ml");
    test "L7 quiet on clean hot code" (quiet "l7_neg.ml");
    test "L7 waiver suppresses the finding" (quiet "l7_waived.ml");
    test "L7 crosses function boundaries" (fires "L7" "l7_trans.ml");
    test "L7 fires on an allocating fast step" (fires "L7" "l7_fastpath_pos.ml");
    test "L7 transitive finding blames the helper" transitive_names_chain;
    test "L9 fires on raising hot code" (fires "L9" "l9_pos.ml");
    test "L9 quiet when wrapped in try" (quiet "l9_neg.ml");
    test "L8 fires on task-reachable mutable state" (fires "L8" "l8_pos.ml");
    test "L8 quiet under Pool.Memo / task-local state" (quiet "l8_neg.ml");
    test "positives are errors" every_positive_is_error;
    test "manifest pins the router registry" manifest_pins_registry;
    test "manifest pins the fast registry" manifest_pins_fast_registry;
    test "typed catalogue sane" typed_catalogue_sane;
  ]
