module Bits = Disco_util.Bits

let test_width_for () =
  List.iter
    (fun (d, w) -> Alcotest.(check int) (Printf.sprintf "width_for %d" d) w (Bits.width_for d))
    [ (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10) ]

let test_simple_roundtrip () =
  let w = Bits.Writer.create () in
  Bits.Writer.put w 5 ~width:3;
  Bits.Writer.put w 0 ~width:1;
  Bits.Writer.put w 1023 ~width:10;
  Alcotest.(check int) "bit length" 14 (Bits.Writer.bit_length w);
  Alcotest.(check int) "byte length" 2 (Bits.Writer.byte_length w);
  let r = Bits.Reader.of_bytes (Bits.Writer.to_bytes w) in
  Alcotest.(check int) "read 3 bits" 5 (Bits.Reader.get r ~width:3);
  Alcotest.(check int) "read 1 bit" 0 (Bits.Reader.get r ~width:1);
  Alcotest.(check int) "read 10 bits" 1023 (Bits.Reader.get r ~width:10)

let test_zero_width () =
  let w = Bits.Writer.create () in
  Bits.Writer.put w 0 ~width:0;
  Alcotest.(check int) "no bits" 0 (Bits.Writer.bit_length w)

let test_out_of_range_rejected () =
  let w = Bits.Writer.create () in
  Alcotest.check_raises "value too wide" (Invalid_argument "Bits.Writer.put: value out of range")
    (fun () -> Bits.Writer.put w 4 ~width:2)

let test_underflow_rejected () =
  let r = Bits.Reader.of_bytes (Bytes.make 1 '\255') in
  ignore (Bits.Reader.get r ~width:8);
  Alcotest.check_raises "underflow" (Invalid_argument "Bits.Reader.get: underflow")
    (fun () -> ignore (Bits.Reader.get r ~width:1))

let test_max_width_roundtrip () =
  (* Width 30 is the documented ceiling; the extreme values must survive,
     packed back to back across byte boundaries. *)
  let w = Bits.Writer.create () in
  Bits.Writer.put w ((1 lsl 30) - 1) ~width:30;
  Bits.Writer.put w 0 ~width:30;
  Bits.Writer.put w 1 ~width:30;
  Alcotest.(check int) "bit length" 90 (Bits.Writer.bit_length w);
  let r = Bits.Reader.of_bytes (Bits.Writer.to_bytes w) in
  Alcotest.(check int) "all ones" ((1 lsl 30) - 1) (Bits.Reader.get r ~width:30);
  Alcotest.(check int) "all zeros" 0 (Bits.Reader.get r ~width:30);
  Alcotest.(check int) "one" 1 (Bits.Reader.get r ~width:30)

let prop_roundtrip =
  Helpers.qtest "random field roundtrip" ~count:200
    QCheck.(list (pair (int_range 0 20) (int_range 0 1_000_000)))
    (fun fields ->
      let fields =
        List.map (fun (w, v) -> (w, if w = 0 then 0 else v land ((1 lsl w) - 1))) fields
      in
      let writer = Bits.Writer.create () in
      List.iter (fun (w, v) -> Bits.Writer.put writer v ~width:w) fields;
      let reader = Bits.Reader.of_bytes (Bits.Writer.to_bytes writer) in
      List.for_all (fun (w, v) -> Bits.Reader.get reader ~width:w = v) fields)

let prop_bit_length =
  Helpers.qtest "bit length is sum of widths" ~count:100
    QCheck.(list (int_range 0 20))
    (fun widths ->
      let writer = Bits.Writer.create () in
      List.iter (fun w -> Bits.Writer.put writer 0 ~width:w) widths;
      Bits.Writer.bit_length writer = List.fold_left ( + ) 0 widths)

let suite =
  [
    Alcotest.test_case "width_for" `Quick test_width_for;
    Alcotest.test_case "simple roundtrip" `Quick test_simple_roundtrip;
    Alcotest.test_case "zero width" `Quick test_zero_width;
    Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
    Alcotest.test_case "underflow rejected" `Quick test_underflow_rejected;
    Alcotest.test_case "max width roundtrip" `Quick test_max_width_roundtrip;
    prop_roundtrip;
    prop_bit_length;
  ]
