(* L9 positive: hot code that can raise, directly (failwith) and
   transitively (Hashtbl.find via a helper). *)
let pick tbl k = Hashtbl.find tbl k
let[@hot] lookup tbl k = pick tbl k
let[@hot] checked x = if x < 0 then failwith "negative" else x
