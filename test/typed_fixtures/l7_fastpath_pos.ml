(* L7 positive, fast-path flavour: a compiled per-hop step function that
   allocates — the exact mistake the manifest's fast_step entries exist
   to catch.  A real compiled forward is array indexing only; this one
   rebuilds the route as a list every hop. *)
type packet = { mutable pos : int; route : int array }

let[@hot] fast_step (pkt : packet) u =
  let remaining = Array.to_list pkt.route in
  match remaining with
  | [] -> -2
  | _ :: _ ->
      pkt.pos <- pkt.pos + 1;
      u + 1
