(* L8 positive: a Pool task body mutates top-level state. *)
let hits = ref 0

let tally pool xs =
  Disco_util.Pool.run pool xs (fun x ->
      hits := !hits + x;
      x)
