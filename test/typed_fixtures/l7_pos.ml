(* L7 positive: [@hot] functions that allocate on their fast path. *)
let[@hot] boxes x = Some (x + 1)
let[@hot] pairs x y = (x, y)
