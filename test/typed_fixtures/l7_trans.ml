(* L7 transitive: the hot entry is clean itself but calls a list-building
   helper, so the finding must cross the function boundary. *)
let build x = [ x; x + 1 ]
let[@hot] entry x = build x
