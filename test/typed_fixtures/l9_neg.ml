(* L9 negative: the only raise is wrapped in try/with at the boundary. *)
let[@hot] guarded x =
  try if x < 0 then raise Not_found else x with Not_found -> 0
