(* L8 negative: shared state is behind Pool.Memo; the other task touches
   only its own arguments. *)
let memo : (int, int) Disco_util.Pool.Memo.t = Disco_util.Pool.Memo.create ()

let squares pool xs =
  Disco_util.Pool.run pool xs (fun x ->
      Disco_util.Pool.Memo.find_or_add memo x (fun () -> x * x))

let sums pool xs = Disco_util.Pool.run pool xs (fun x -> x + 1)
