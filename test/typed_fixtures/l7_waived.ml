(* L7 waived: the same allocation as the positive fixture, justified
   inline, so the typed pass reports nothing. *)
let[@hot] boxed x =
  (* disco-lint: allow L7 fixture: documented one-off allocation *)
  Some (x + 1)
