(* L7 negative: hot arithmetic and array access allocate nothing. *)
let[@hot] add x y = x + y
let[@hot] nth a i = Array.get a i
let[@hot] clamp lo hi x = if x < lo then lo else if x > hi then hi else x
