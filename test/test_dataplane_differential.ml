(* Walk ≡ oracle, for every registered scheme, across topology families
   and seeds: the hop-by-hop data plane and the closed-form route
   computation must agree on the delivery verdict; delivered walks must
   reproduce the oracle's node sequence (schemes whose forwarding replays
   the oracle step for step) or its weighted length (the shortcut schemes,
   whose walks may divert at a different-but-equivalent point). *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Telemetry = Disco_util.Telemetry
module D = Disco_core.Dataplane
module Protocol = Disco_experiments.Protocol
module Testbed = Disco_experiments.Testbed
module Routers = Disco_experiments.Routers
module Walk = Disco_experiments.Walk
module Spec = Disco_check.Spec

let pairs_per_world = 40

let check_pair (module R : Protocol.ROUTER) ~spec ~g ~phase ~oracle
    (tr : D.trace) ~src ~dst =
  let ctx = Printf.sprintf "%s %s %d->%d" R.name phase src dst in
  (match tr.D.dropped with
  | Some (D.Protocol_error e) -> Alcotest.failf "%s: protocol error: %s" ctx e
  | _ -> ());
  match (oracle, tr.D.delivered) with
  | None, false -> ()
  | None, true -> Alcotest.failf "%s: walk delivered, oracle found no route" ctx
  | Some _, false -> Alcotest.failf "%s: oracle routes, walk dropped" ctx
  | Some path, true ->
      Helpers.check_path g ~src ~dst tr.D.path;
      if spec.Spec.walk_exact then begin
        if tr.D.path <> path then
          Alcotest.failf "%s: walk path differs from the oracle's" ctx
      end
      else begin
        let lw = Helpers.path_len g tr.D.path
        and lo = Helpers.path_len g path in
        if Float.abs (lw -. lo) > 1e-6 then
          Alcotest.failf "%s: walk length %.6f, oracle length %.6f" ctx lw lo
      end

let check_world kind seed () =
  let tb = Testbed.make ~seed kind ~n:64 in
  let g = tb.Testbed.graph in
  let n = Graph.n g in
  let rng = Rng.create (seed + 1000) in
  let worklist =
    List.init pairs_per_world (fun _ -> (Rng.int rng n, Rng.int rng n))
    |> List.filter (fun (s, t) -> s <> t)
  in
  List.iter
    (fun packed ->
      let module R = (val packed : Protocol.ROUTER) in
      let spec = Spec.find R.name in
      let rt = R.build tb in
      let tel = Telemetry.create () in
      List.iter
        (fun (src, dst) ->
          check_pair (module R) ~spec ~g ~phase:"first"
            ~oracle:(R.oracle_first rt ~tel ~src ~dst)
            (Walk.first_trace (module R) rt ~tel ~graph:g ~src ~dst)
            ~src ~dst;
          check_pair (module R) ~spec ~g ~phase:"later"
            ~oracle:(R.oracle_later rt ~tel ~src ~dst)
            (Walk.later_trace (module R) rt ~tel ~graph:g ~src ~dst)
            ~src ~dst)
        worklist;
      (* The walker genuinely ran this scheme's data plane. *)
      if tel.Telemetry.packets_walked = 0 then
        Alcotest.failf "%s: no packet walked" R.name)
    (Routers.all ())

let suite =
  List.concat_map
    (fun kind ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "walk = oracle on %s seed %d" (Gen.kind_name kind)
               seed)
            `Quick (check_world kind seed))
        [ 3; 11 ])
    [ Gen.Gnm; Gen.Geometric; Gen.As_level ]
