(* The bench-gate JSON reader: structural parsing, member-order
   independence (the bug that motivated it), escapes, and error cases. *)

module Json = Disco_util.Json

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_scalars () =
  Alcotest.(check bool) "null" true (parse_exn "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_exn "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_exn " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_exn "42" = Json.Num 42.0);
  Alcotest.(check bool) "neg float" true (parse_exn "-1.5e2" = Json.Num (-150.0));
  Alcotest.(check bool) "string" true (parse_exn {|"hi"|} = Json.Str "hi")

let test_escapes () =
  Alcotest.(check bool) "quote+backslash" true
    (parse_exn {|"a\"b\\c"|} = Json.Str "a\"b\\c");
  Alcotest.(check bool) "controls" true
    (parse_exn {|"x\n\t\r"|} = Json.Str "x\n\t\r");
  Alcotest.(check bool) "unicode ascii" true (parse_exn {|"A"|} = Json.Str "A");
  Alcotest.(check bool) "unicode 2-byte" true
    (parse_exn {|"é"|} = Json.Str "\xc3\xa9")

let test_containers () =
  Alcotest.(check bool) "empty obj" true (parse_exn "{}" = Json.Obj []);
  Alcotest.(check bool) "empty arr" true (parse_exn "[]" = Json.Arr []);
  let v = parse_exn {|{"a": [1, 2], "b": {"c": "d"}}|} in
  Alcotest.(check bool) "nested arr" true
    (Json.member "a" v = Some (Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]));
  Alcotest.(check bool) "nested obj" true
    (Option.bind (Json.member "b" v) (Json.string_member "c") = Some "d")

(* The regression the reader fixes: the old alloc-baseline scanner located
   values by byte offset from the key, so any member order other than the
   writer's exact layout mis-parsed.  The same row must read back
   identically under every permutation. *)
let test_member_order_independent () =
  let layouts =
    [
      {|{"scheme": "disco", "kind": "first", "words_per_hop": 150.0}|};
      {|{"words_per_hop": 150.0, "scheme": "disco", "kind": "first"}|};
      {|{"kind": "first", "words_per_hop": 150.0, "scheme": "disco"}|};
    ]
  in
  List.iter
    (fun s ->
      let v = parse_exn s in
      Alcotest.(check (option string)) "scheme" (Some "disco")
        (Json.string_member "scheme" v);
      Alcotest.(check (option string)) "kind" (Some "first")
        (Json.string_member "kind" v);
      Alcotest.(check bool) "wph" true
        (Json.float_member "words_per_hop" v = Some 150.0))
    layouts

let test_accessors () =
  let v = parse_exn {|{"i": 3, "f": 2.5, "s": "x", "l": [1]}|} in
  Alcotest.(check (option int)) "int member" (Some 3) (Json.int_member "i" v);
  Alcotest.(check (option int)) "non-integral" None (Json.int_member "f" v);
  Alcotest.(check bool) "float member" true (Json.float_member "f" v = Some 2.5);
  Alcotest.(check (option string)) "missing" None (Json.string_member "zz" v);
  Alcotest.(check int) "list member" 1 (List.length (Json.list_member "l" v));
  Alcotest.(check int) "list default" 0 (List.length (Json.list_member "s" v))

let test_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "expected failure on %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad {|{"a" 1}|};
  bad "[1, 2,]";
  bad {|"unterminated|};
  bad "nulL";
  bad "{} trailing"

let test_of_file_round_trip () =
  let path = Filename.temp_file "disco_json" ".json" in
  let oc = open_out path in
  output_string oc {|{"rows": [{"n": 10}, {"n": 20}]}|};
  close_out oc;
  (match Json.of_file path with
  | Error e -> Alcotest.failf "of_file: %s" e
  | Ok v ->
      let ns = List.filter_map (Json.int_member "n") (Json.list_member "rows" v) in
      Alcotest.(check (list int)) "rows" [ 10; 20 ] ns);
  Sys.remove path;
  Alcotest.(check bool) "missing file is Error" true
    (match Json.of_file path with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "containers" `Quick test_containers;
    Alcotest.test_case "member order independent" `Quick
      test_member_order_independent;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "of_file round trip" `Quick test_of_file_round_trip;
  ]
