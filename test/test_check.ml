(* The disco-check harness itself: a bounded all-scheme run stays clean,
   a deliberately broken router is caught and shrunk to a replayable
   counterexample, and scenarios replay bit-for-bit. *)

module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Protocol = Disco_experiments.Protocol
module Testbed = Disco_experiments.Testbed
module Routers = Disco_experiments.Routers
module Scenario = Disco_check.Scenario
module Spec = Disco_check.Spec
module Runner = Disco_check.Runner
module Harness = Disco_check.Harness
module Violation = Disco_check.Violation

let test_bounded_run_passes () =
  let s = Harness.run_cases ~run_seed:42 ~cases:15 ~max_nodes:48 () in
  if not (Harness.passed s) then Alcotest.fail (Harness.report s);
  Alcotest.(check int) "all schemes ran"
    (List.length (Routers.names ()))
    (List.length s.Harness.schemes)

(* A router that routes correctly but takes a pointless neighbor bounce on
   the first packet, paired with a spec that (correctly) brands it
   stretch-1: disco-check must convict it. Its data plane replays the
   oracle route label by label (delivering only when the labels run out,
   so the bounce is walked in full), keeping walk ≡ oracle clean — the
   stretch bound is the only invariant it breaks. *)
module Detour_router = struct
  module D = Disco_core.Dataplane

  type t = { graph : Graph.t; ws : Dijkstra.workspace }

  let name = "detour"
  let flat_names = "test fixture"

  let build (tb : Testbed.t) =
    let graph = tb.Testbed.graph in
    { graph; ws = Dijkstra.make_workspace graph }

  let shortest t ~src ~dst =
    let sp = Dijkstra.sssp ~ws:t.ws t.graph src in
    if sp.Dijkstra.dist.(dst) = infinity then None
    else
      Some
        (Dijkstra.path_of_parents
           ~parent:(fun v -> sp.Dijkstra.parent.(v))
           ~src ~dst)

  let detour t ~src ~dst =
    match shortest t ~src ~dst with
    | None -> None
    | Some path ->
        let nbr, _ = Graph.nth_neighbor t.graph src 0 in
        Some (src :: nbr :: path)

  let oracle_first t ~tel:_ ~src ~dst = detour t ~src ~dst
  let oracle_later t ~tel:_ ~src ~dst = shortest t ~src ~dst
  let ttl_factor = 4

  let header_of ~dst = function
    | Some (_ :: rest) -> { (D.plain ~dst D.Carry) with D.labels = rest }
    | _ -> D.plain ~dst D.Carry

  let first_header t ~tel:_ ~src ~dst = header_of ~dst (detour t ~src ~dst)
  let later_header t ~tel:_ ~src ~dst = header_of ~dst (shortest t ~src ~dst)

  let forward _ (h : D.header) ~at:u =
    match h.D.labels with
    | next :: rest -> D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
    | [] -> if u = h.D.dst then D.Deliver else D.Drop D.No_route

  let state_entries _ _ = 0
  let state_bytes _ _ = 0.0
  let fork t = { t with ws = Dijkstra.make_workspace t.graph }

  (* Same order as [forward]: consume labels before the deliver check, so
     the detour bounce is walked in full on the fast path too. *)
  let compile _t =
    {
      D.fstep =
        (fun (pkt : D.packet) u ->
          if D.route_len pkt > 0 then D.route_next pkt
          else if u = pkt.D.pdst then D.fast_deliver
          else D.fast_no_route);
      D.fprime = (fun ~src:_ ~dst:_ -> ());
    }
end

let detour_spec =
  {
    (Spec.permissive "detour") with
    Spec.guaranteed_delivery = true;
    first_bound = Some 1.0;
    later_bound = Some 1.0;
  }

let fixture_spec_of s = if String.equal s "detour" then detour_spec else Spec.find s

let test_broken_router_caught () =
  let routers = [ Routers.find_exn "pathvector"; (module Detour_router : Protocol.ROUTER) ] in
  let s =
    Harness.run_cases ~routers ~spec_of:fixture_spec_of ~run_seed:5 ~cases:3
      ~max_nodes:32 ()
  in
  Alcotest.(check bool) "run fails" false (Harness.passed s);
  let cx =
    match s.Harness.counterexamples with
    | [] -> Alcotest.fail "no counterexample reported"
    | cx :: _ -> cx
  in
  (* Every violation belongs to the broken router; the honest reference
     scheme in the same run stays clean. *)
  Alcotest.(check bool) "violations exist" true (cx.Harness.violations <> []);
  List.iter
    (fun v ->
      Alcotest.(check string) "convicted scheme" "detour" v.Violation.scheme;
      match v.Violation.kind with
      | Violation.Stretch_exceeded { phase; _ } ->
          Alcotest.(check string) "first-packet bound" "first" phase
      | k -> Alcotest.failf "unexpected violation kind %s" (Violation.describe { v with Violation.kind = k }))
    cx.Harness.violations;
  (* Shrinking made progress and the result replays bit-for-bit. *)
  let orig = cx.Harness.original and min_ = cx.Harness.minimized in
  Alcotest.(check bool) "shrunk no larger" true
    (min_.Scenario.n <= orig.Scenario.n && min_.Scenario.pairs <= orig.Scenario.pairs);
  Alcotest.(check int) "seed preserved" orig.Scenario.seed min_.Scenario.seed;
  (match Scenario.of_string (Scenario.to_string min_) with
  | Ok rt -> Alcotest.(check bool) "textual form replays" true (rt = min_)
  | Error e -> Alcotest.failf "minimized scenario does not parse: %s" e);
  let rerun = Runner.run ~routers ~spec_of:fixture_spec_of min_ in
  Alcotest.(check bool) "minimized scenario still fails" true (Runner.failed rerun)

let prop_scenario_string_roundtrip =
  Helpers.qtest "scenario text form round-trips" ~count:100 Helpers.seed_arb
    (fun seed ->
      let sc = Scenario.generate ~run_seed:seed ~case:(seed mod 17) ~max_nodes:200 in
      Scenario.of_string (Scenario.to_string sc) = Ok sc)

let test_coverage_exercised () =
  (* The Disco/NDDisco stretch bounds only fire under coverage; make sure
     generated scenarios actually reach that state, or the harness would
     vacuously pass. *)
  let covered = ref 0 in
  for case = 0 to 9 do
    let sc = Scenario.generate ~run_seed:424242 ~case ~max_nodes:48 in
    let g = Scenario.graph sc in
    let tb = Testbed.of_graph ~seed:sc.Scenario.seed g in
    if Runner.coverage (Testbed.nd tb) then incr covered
  done;
  Alcotest.(check bool) "some scenarios have landmark coverage" true (!covered > 0)

let test_summary_deterministic () =
  let run () = Harness.run_cases ~run_seed:9 ~cases:5 ~max_nodes:40 () in
  Alcotest.(check string) "same seed, same JSON summary"
    (Harness.to_json (run ()))
    (Harness.to_json (run ()))

let suite =
  [
    Alcotest.test_case "bounded run passes" `Slow test_bounded_run_passes;
    Alcotest.test_case "broken router caught and shrunk" `Quick test_broken_router_caught;
    prop_scenario_string_roundtrip;
    Alcotest.test_case "coverage exercised" `Quick test_coverage_exercised;
    Alcotest.test_case "summary deterministic" `Quick test_summary_deterministic;
  ]
