module Graph = Disco_graph.Graph
module Sim = Disco_sim.Sim

let line () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_edge b 0 1 1.0;
  Graph.Builder.add_edge b 1 2 2.0;
  Graph.Builder.build b

let test_delivery_and_latency () =
  let g = line () in
  let sim = Sim.create ~graph:g () in
  let log = ref [] in
  Sim.set_handler sim (fun node ~src msg -> log := (node, src, msg, Sim.time sim) :: !log);
  Sim.send sim ~src:0 ~dst:1 "hello";
  Sim.run sim;
  Alcotest.(check int) "one delivery" 1 (List.length !log);
  let node, src, msg, at = List.hd !log in
  Alcotest.(check int) "dst" 1 node;
  Alcotest.(check int) "src" 0 src;
  Alcotest.(check string) "payload" "hello" msg;
  Alcotest.(check (float 1e-9)) "latency" 1.0 at

let test_non_adjacent_rejected () =
  let sim = Sim.create ~graph:(line ()) () in
  Sim.set_handler sim (fun _ ~src:_ _ -> ());
  Alcotest.check_raises "not adjacent" (Invalid_argument "Sim.send: src and dst are not adjacent")
    (fun () -> Sim.send sim ~src:0 ~dst:2 "x")

let test_send_direct () =
  let sim = Sim.create ~graph:(line ()) () in
  let got = ref false in
  Sim.set_handler sim (fun node ~src:_ _ -> if node = 2 then got := true);
  Sim.send_direct sim ~src:0 ~dst:2 ~latency:5.0 "overlay";
  Sim.run sim;
  Alcotest.(check bool) "delivered" true !got;
  Alcotest.(check (float 1e-9)) "time" 5.0 (Sim.time sim)

let test_ordering () =
  let sim = Sim.create ~graph:(line ()) () in
  let order = ref [] in
  Sim.set_handler sim (fun _ ~src:_ msg -> order := msg :: !order);
  Sim.send_direct sim ~src:0 ~dst:1 ~latency:3.0 "late";
  Sim.send_direct sim ~src:0 ~dst:1 ~latency:1.0 "early";
  Sim.send_direct sim ~src:0 ~dst:1 ~latency:3.0 "late2";
  Sim.run sim;
  Alcotest.(check (list string)) "time order, FIFO ties" [ "early"; "late"; "late2" ]
    (List.rev !order)

let test_message_accounting () =
  let sim = Sim.create ~graph:(line ()) () in
  Sim.set_handler sim (fun _ ~src:_ _ -> ());
  Sim.send sim ~src:0 ~dst:1 "a";
  Sim.send sim ~src:1 ~dst:2 "b";
  Sim.send sim ~src:1 ~dst:0 "c";
  Sim.run sim;
  Alcotest.(check int) "total" 3 (Sim.messages_sent sim);
  Alcotest.(check (array int)) "per node" [| 1; 2; 0 |] (Sim.messages_by_node sim)

let test_cascade () =
  (* Handler that relays along the line; checks handlers can send. *)
  let g = line () in
  let sim = Sim.create ~graph:g () in
  let reached = ref (-1) in
  Sim.set_handler sim (fun node ~src:_ msg ->
      reached := node;
      if node = 1 then Sim.send sim ~src:1 ~dst:2 msg);
  Sim.send sim ~src:0 ~dst:1 "relay";
  Sim.run sim;
  Alcotest.(check int) "reached end" 2 !reached;
  Alcotest.(check (float 1e-9)) "accumulated latency" 3.0 (Sim.time sim)

let test_schedule_timer () =
  let sim = Sim.create ~graph:(line ()) () in
  Sim.set_handler sim (fun _ ~src:_ _ -> ());
  let fired = ref 0.0 in
  Sim.schedule sim ~delay:7.5 (fun () -> fired := Sim.time sim);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "timer time" 7.5 !fired

let test_until () =
  let sim = Sim.create ~graph:(line ()) () in
  Sim.set_handler sim (fun _ ~src:_ _ -> ());
  let fired = ref false in
  Sim.schedule sim ~delay:10.0 (fun () -> fired := true);
  Sim.run ~until:5.0 sim;
  Alcotest.(check bool) "not yet" false !fired;
  Sim.run sim;
  Alcotest.(check bool) "eventually" true !fired

let test_no_handler_rejected () =
  let sim = Sim.create ~graph:(line ()) () in
  Alcotest.check_raises "no handler" (Invalid_argument "Sim.run: no handler installed")
    (fun () -> Sim.run sim)

let suite =
  [
    Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
    Alcotest.test_case "non-adjacent rejected" `Quick test_non_adjacent_rejected;
    Alcotest.test_case "send direct" `Quick test_send_direct;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "cascade" `Quick test_cascade;
    Alcotest.test_case "schedule timer" `Quick test_schedule_timer;
    Alcotest.test_case "run until" `Quick test_until;
    Alcotest.test_case "no handler rejected" `Quick test_no_handler_rejected;
  ]
