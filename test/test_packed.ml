module Packed = Disco_core.Packed
module Rng = Disco_util.Rng
module Hash_space = Disco_hash.Hash_space

(* Deterministic pseudo-random (hi, lo) key halves from real name hashes,
   the same population Othello serves in the routers. *)
let key_halves n salt =
  let hi = Array.make n 0 and lo = Array.make n 0 in
  for i = 0 to n - 1 do
    let h, l = Packed.split64 (Hash_space.of_name (Printf.sprintf "k%d-%d" salt i)) in
    hi.(i) <- h;
    lo.(i) <- l
  done;
  (hi, lo)

let test_csr_layout () =
  let t = Packed.Csr.of_rows [| [| 3; 5; 9 |]; [||]; [| 1 |] |] in
  Alcotest.(check int) "rows" 3 (Packed.Csr.rows t);
  Alcotest.(check int) "total" 4 (Packed.Csr.total t);
  Alcotest.(check int) "row 0 len" 3 (Packed.Csr.row_len t 0);
  Alcotest.(check int) "row 1 empty" 0 (Packed.Csr.row_len t 1);
  Alcotest.(check int) "get" 9 (Packed.Csr.get t 0 2);
  Alcotest.(check int) "find present" 1 (Packed.Csr.find_sorted t 0 5);
  Alcotest.(check int) "find absent" (-1) (Packed.Csr.find_sorted t 0 4);
  Alcotest.(check int) "find in empty row" (-1) (Packed.Csr.find_sorted t 1 5);
  let acc = ref [] in
  Packed.Csr.iter_row t 0 (fun x -> acc := x :: !acc);
  Alcotest.(check (list int)) "iter order" [ 9; 5; 3 ] !acc

let test_csr_of_fn () =
  let t =
    Packed.Csr.of_fn ~n:4 ~row_len:(fun i -> i)
      ~fill:(fun i data off ->
        for j = 0 to i - 1 do
          data.(off + j) <- (10 * i) + j
        done)
  in
  Alcotest.(check int) "total" 6 (Packed.Csr.total t);
  Alcotest.(check int) "value" 31 (Packed.Csr.get t 3 1)

let test_kv64 () =
  let pairs = [| (5L, 50); (1L, 10); (-1L, 99); (3L, 30) |] in
  (* -1L is the largest unsigned key; it must sort last. *)
  let t = Packed.Kv64.of_pairs pairs in
  Alcotest.(check int) "len" 4 (Packed.Kv64.length t);
  Alcotest.(check int) "first value" 10 (Packed.Kv64.value t 0);
  Alcotest.(check int) "unsigned max last" 99 (Packed.Kv64.value t 3);
  Alcotest.(check int) "find present" 30 (Packed.Kv64.find t 3L);
  Alcotest.(check int) "find absent" (-1) (Packed.Kv64.find t 4L);
  Alcotest.(check int) "rank_geq mid" 1 (Packed.Kv64.rank_geq t 2L);
  Alcotest.(check int) "rank_geq past end" 4 (Packed.Kv64.rank_geq t (-1L) + 1)

let test_bitvec_roundtrip () =
  let t = Packed.Bitvec.create ~width:7 ~len:200 in
  for i = 0 to 199 do
    Packed.Bitvec.set t i (i * 37 mod 128)
  done;
  let ok = ref true in
  for i = 0 to 199 do
    if Packed.Bitvec.get t i <> i * 37 mod 128 then ok := false
  done;
  Alcotest.(check bool) "all values survive" true !ok;
  (* Overwrites must not leak into neighbors. *)
  Packed.Bitvec.set t 100 0;
  Alcotest.(check int) "overwrite" 0 (Packed.Bitvec.get t 100);
  Alcotest.(check int) "left neighbor intact" (99 * 37 mod 128) (Packed.Bitvec.get t 99);
  Alcotest.(check int) "right neighbor intact" (101 * 37 mod 128) (Packed.Bitvec.get t 101)

let test_othello_empty () =
  let t = Packed.Othello.build ~hi:[||] ~lo:[||] ~values:[||] in
  Alcotest.(check int) "no keys" 0 (Packed.Othello.length t);
  (* Queries on an empty map are defined (arbitrary in-range value). *)
  Alcotest.(check bool) "query total" true (Packed.Othello.query t ~hi:7 ~lo:9 >= 0)

let test_othello_single () =
  let t = Packed.Othello.build ~hi:[| 123 |] ~lo:[| 456 |] ~values:[| 17 |] in
  Alcotest.(check int) "single key" 17 (Packed.Othello.query t ~hi:123 ~lo:456)

let test_othello_duplicate_rejected () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Packed.Othello.build: duplicate key") (fun () ->
      ignore
        (Packed.Othello.build ~hi:[| 1; 2; 1 |] ~lo:[| 9; 9; 9 |]
           ~values:[| 0; 1; 2 |]))

let test_othello_exact_map () =
  let n = 500 in
  let hi, lo = key_halves n 1 in
  let values = Array.init n (fun i -> i * 13 mod 1000) in
  let t = Packed.Othello.build ~hi ~lo ~values in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Packed.Othello.query t ~hi:hi.(i) ~lo:lo.(i) <> values.(i) then ok := false
  done;
  Alcotest.(check bool) "all keys map" true !ok;
  Alcotest.(check bool) "a few bits per key"
    true
    (Packed.Othello.bits_per_key t <= 64.0)

let test_othello_rebuild_on_collision () =
  (* Scan key-set salts until one first draw is cyclic; the build must
     retry with a bumped seed and still answer every key correctly. *)
  let found = ref None in
  let salt = ref 100 in
  while !found = None && !salt < 2000 do
    let n = 24 in
    let hi, lo = key_halves n !salt in
    let values = Array.init n (fun i -> i) in
    let t = Packed.Othello.build ~hi ~lo ~values in
    if Packed.Othello.seed t > 0 then found := Some (t, hi, lo, values);
    incr salt
  done;
  match !found with
  | None -> Alcotest.fail "no cyclic first draw in 1900 key sets"
  | Some (t, hi, lo, values) ->
      Alcotest.(check bool) "rebuilt" true (Packed.Othello.seed t > 0);
      Array.iteri
        (fun i v ->
          Alcotest.(check int) "value after rebuild" v
            (Packed.Othello.query t ~hi:hi.(i) ~lo:lo.(i)))
        values

let test_othello_absent_keys () =
  let n = 64 in
  let hi, lo = key_halves n 7 in
  let values = Array.init n (fun i -> i) in
  let t = Packed.Othello.build ~hi ~lo ~values in
  (* Absent keys return some arbitrary but in-range, crash-free value:
     callers only ever probe live names. *)
  let ahi, alo = key_halves 32 9999 in
  for i = 0 to 31 do
    let v = Packed.Othello.query t ~hi:ahi.(i) ~lo:alo.(i) in
    Alcotest.(check bool) "in width range" true (v >= 0 && v < 64)
  done

let prop_othello_vs_hashtbl =
  Helpers.qtest "othello round-trip vs Hashtbl" ~count:30
    QCheck.(pair (int_range 0 300) (int_range 1 1_000_000))
    (fun (n, salt) ->
      let hi, lo = key_halves n salt in
      let values = Array.init n (fun i -> (i * salt) land 0xFFFF) in
      let reference = Hashtbl.create 64 in
      Array.iteri (fun i v -> Hashtbl.replace reference (hi.(i), lo.(i)) v) values;
      let t = Packed.Othello.build ~hi ~lo ~values in
      let ok = ref true in
      Hashtbl.iter
        (fun (h, l) v -> if Packed.Othello.query t ~hi:h ~lo:l <> v then ok := false)
        reference;
      !ok)

let prop_csr_vs_rows =
  Helpers.qtest "csr round-trip vs source rows" ~count:50
    QCheck.(pair Helpers.seed_arb (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let rows =
        Array.init n (fun _ ->
            let len = Rng.int rng 9 in
            let r = Array.init len (fun _ -> Rng.int rng 1000) in
            Array.sort compare r;
            r)
      in
      let t = Packed.Csr.of_rows rows in
      let ok = ref true in
      Array.iteri
        (fun i row ->
          if Packed.Csr.row_len t i <> Array.length row then ok := false;
          Array.iteri (fun j x -> if Packed.Csr.get t i j <> x then ok := false) row;
          (* Sorted-row membership agrees with linear scan. *)
          for probe = 0 to 4 do
            let x = Rng.int rng 1000 in
            ignore probe;
            let linear = ref (-1) in
            Array.iteri (fun j y -> if y = x && !linear < 0 then linear := j) row;
            if Packed.Csr.find_sorted t i x <> !linear then ok := false
          done)
        rows;
      !ok)

let test_fenwick_ring () =
  let n = 200 in
  let fw = Packed.Fenwick.create n in
  let present = Array.make n false in
  let rng = Rng.create 99 in
  for _ = 1 to 120 do
    let i = Rng.int rng n in
    if not present.(i) then begin
      present.(i) <- true;
      Packed.Fenwick.add fw i 1
    end
  done;
  let members = ref [] in
  for i = n - 1 downto 0 do
    if present.(i) then members := i :: !members
  done;
  let members = Array.of_list !members in
  Alcotest.(check int) "total" (Array.length members) (Packed.Fenwick.total fw);
  Array.iteri
    (fun rank v ->
      Alcotest.(check int) "kth select" v (Packed.Fenwick.kth fw rank);
      Alcotest.(check int) "prefix rank" rank (Packed.Fenwick.prefix fw v))
    members;
  Alcotest.check_raises "kth out of range"
    (Invalid_argument "Packed.Fenwick.kth") (fun () ->
      ignore (Packed.Fenwick.kth fw (Array.length members)))

let test_split64 () =
  let hi, lo = Packed.split64 0x0123456789ABCDEFL in
  Alcotest.(check int) "hi" 0x01234567 hi;
  Alcotest.(check int) "lo" 0x89ABCDEF lo;
  let hi, lo = Packed.split64 (-1L) in
  Alcotest.(check bool) "unsigned halves" true (hi = 0xFFFFFFFF && lo = 0xFFFFFFFF)

let suite =
  [
    Alcotest.test_case "csr layout" `Quick test_csr_layout;
    Alcotest.test_case "csr of_fn" `Quick test_csr_of_fn;
    Alcotest.test_case "kv64 sorted map" `Quick test_kv64;
    Alcotest.test_case "bitvec round-trip" `Quick test_bitvec_roundtrip;
    Alcotest.test_case "othello empty" `Quick test_othello_empty;
    Alcotest.test_case "othello single key" `Quick test_othello_single;
    Alcotest.test_case "othello duplicate rejected" `Quick
      test_othello_duplicate_rejected;
    Alcotest.test_case "othello exact map" `Quick test_othello_exact_map;
    Alcotest.test_case "othello rebuild on collision" `Quick
      test_othello_rebuild_on_collision;
    Alcotest.test_case "othello absent keys" `Quick test_othello_absent_keys;
    prop_othello_vs_hashtbl;
    prop_csr_vs_rows;
    Alcotest.test_case "fenwick ring" `Quick test_fenwick_ring;
    Alcotest.test_case "split64" `Quick test_split64;
  ]
