(* The fast-path wire codec against the typed header: encode_header /
   decode_header / decode_into / load_packet must agree bit-for-bit on
   every field — at boundary label widths (0-, 1-, 4- and 5-bit
   neighbor-rank labels), at the field maxima (anchor/waypoint at n-1,
   extra_bytes at 0xFFFF, fbound at infinity / max_float / the smallest
   denormal, vbound at the unsigned-64 extremes) and on Gen-driven random
   headers (seeded via QCheck, so every failure is replayable). *)

module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module D = Disco_core.Dataplane

let line n =
  let b = Graph.Builder.create n in
  for v = 0 to n - 2 do
    Graph.Builder.add_edge b v (v + 1) 1.0
  done;
  Graph.Builder.build b

let star leaves =
  let b = Graph.Builder.create (leaves + 1) in
  for leaf = 1 to leaves do
    Graph.Builder.add_edge b 0 leaf 1.0
  done;
  Graph.Builder.build b

(* Field-wise header equality; floats compared by IEEE bit pattern so
   -0.0, denormals and infinities are all exact. *)
let header_eq (a : D.header) (b : D.header) =
  a.D.dst = b.D.dst && a.D.phase = b.D.phase && a.D.labels = b.D.labels
  && a.D.waypoint = b.D.waypoint
  && a.D.anchor = b.D.anchor
  && Int64.bits_of_float a.D.fbound = Int64.bits_of_float b.D.fbound
  && Int64.equal a.D.vbound b.D.vbound
  && a.D.extra_bytes = b.D.extra_bytes

let pp_header h =
  Printf.sprintf
    "{dst=%d mode=%d labels=[%s] way=%d anchor=%d fbound=%h vbound=%Ld \
     extra=%d}"
    h.D.dst (D.mode_of_phase h.D.phase)
    (String.concat ";" (List.map string_of_int h.D.labels))
    h.D.waypoint h.D.anchor h.D.fbound h.D.vbound h.D.extra_bytes

(* One round trip at an arbitrary arena offset: size accounting, typed
   decode, and the scratch-packet decode against a direct load. *)
let roundtrip ?(pos = 0) g ~src (h : D.header) =
  let size = D.encoded_size g ~src h in
  let buf = Bytes.make (pos + size) '\xAA' in
  let written = D.encode_header g ~src h buf ~pos in
  Alcotest.(check int) "encoded_size = bytes written" size written;
  let back = D.decode_header g ~src buf ~pos in
  if not (header_eq h back) then
    Alcotest.failf "typed decode diverges:\n  sent %s\n  got  %s" (pp_header h)
      (pp_header back);
  let wire = D.packet_create g in
  let direct = D.packet_create g in
  D.decode_into g wire buf ~pos ~src;
  D.load_packet direct h;
  Alcotest.(check int) "mode" direct.D.pmode wire.D.pmode;
  Alcotest.(check int) "dst" direct.D.pdst wire.D.pdst;
  Alcotest.(check int) "waypoint" direct.D.pway wire.D.pway;
  Alcotest.(check int) "anchor" direct.D.panchor wire.D.panchor;
  Alcotest.(check int64) "fbound bits"
    (Int64.bits_of_float direct.D.pfs.(D.fs_fbound))
    (Int64.bits_of_float wire.D.pfs.(D.fs_fbound));
  Alcotest.(check int) "vbound hi" direct.D.pvb_hi wire.D.pvb_hi;
  Alcotest.(check int) "vbound lo" direct.D.pvb_lo wire.D.pvb_lo;
  Alcotest.(check int) "extra" direct.D.pextra wire.D.pextra;
  Alcotest.(check int) "route pos" direct.D.proute_pos wire.D.proute_pos;
  Alcotest.(check int) "route end" direct.D.proute_end wire.D.proute_end;
  for i = wire.D.proute_pos to wire.D.proute_end - 1 do
    Alcotest.(check int)
      (Printf.sprintf "route label %d" i)
      direct.D.proute.(i) wire.D.proute.(i)
  done

let mk ?(labels = []) ?(phase = D.Carry) ?(waypoint = -1) ?(anchor = -1)
    ?(fbound = infinity) ?(vbound = Int64.minus_one) ?(extra_bytes = 0) dst =
  { D.dst; phase; labels; waypoint; anchor; fbound; vbound; extra_bytes }

(* A valid label chain is a walk along edges: draw one by random steps. *)
let random_chain g rng src len =
  let rec go u k acc =
    if k = 0 then List.rev acc
    else
      let deg = Graph.degree g u in
      if deg = 0 then List.rev acc
      else
        let v = Graph.neighbor_at g u (Rng.int rng deg) in
        go v (k - 1) (v :: acc)
  in
  go src len []

let test_boundary_label_widths () =
  (* Line: interior labels cost 1 bit, the endpoints' cost 0 bits — the
     degree-1 edge case where a hop is encoded in no bits at all. *)
  let g = line 9 in
  roundtrip g ~src:0 (mk ~labels:[ 1; 2; 3; 4; 5; 6; 7; 8 ] 8);
  roundtrip g ~src:4 (mk ~labels:[ 3; 2; 1; 0 ] 0);
  roundtrip g ~src:0 (mk ~labels:[ 1 ] 1);
  roundtrip g ~src:3 (mk 3);
  (* Star with 16 leaves: hub labels exactly 4 bits (power of two). *)
  let g = star 16 in
  roundtrip g ~src:3 (mk ~labels:[ 0; 16 ] 16);
  (* 17 leaves pushes hub labels to 5 bits. *)
  let g = star 17 in
  roundtrip g ~src:17 (mk ~labels:[ 0; 1 ] 1);
  (* Label bits straddling byte boundaries: 3 hub visits = 15 bits. *)
  roundtrip g ~src:17 (mk ~labels:[ 0; 4; 0; 9; 0; 2 ] 2)

let test_field_maxima () =
  let g = line 16 in
  let n = Graph.n g in
  roundtrip g ~src:0
    (mk
       ~labels:[ 1; 2; 3 ]
       ~phase:(D.Steer { tried_proxy = true })
       ~waypoint:(n - 1) ~anchor:(n - 1) ~fbound:max_float
       ~vbound:Int64.minus_one (* max unsigned 64: the VRR "no bound" *)
       ~extra_bytes:0xFFFF 3);
  roundtrip g ~src:5
    (mk ~fbound:(Float.ldexp 1.0 (-1074)) (* smallest denormal *)
       ~vbound:Int64.min_int 9);
  roundtrip g ~src:5 (mk ~fbound:(-0.0) ~vbound:Int64.max_int 9);
  roundtrip g ~src:5 (mk ~fbound:infinity ~vbound:0L 0);
  (* Longest chain the line affords: n-1 labels through the codec. *)
  let g = line 300 in
  roundtrip g ~src:0 (mk ~labels:(List.init 299 (fun i -> i + 1)) 299)

let test_every_phase_mode () =
  let g = star 5 in
  for mode = 0 to 6 do
    roundtrip g ~src:2 (mk ~phase:(D.phase_of_mode mode) ~labels:[ 0; 4 ] 4)
  done

let test_arena_packing () =
  (* Two headers back to back in one buffer, decoded independently — the
     batched walker's arena discipline. *)
  let g = star 17 in
  let h1 = mk ~labels:[ 0; 9 ] ~extra_bytes:7 9 in
  let h2 = mk ~labels:[ 0; 1; 0; 16 ] ~fbound:2.5 16 in
  let s1 = D.encoded_size g ~src:3 h1 in
  let s2 = D.encoded_size g ~src:5 h2 in
  let buf = Bytes.make (s1 + s2) '\x00' in
  ignore (D.encode_header g ~src:3 h1 buf ~pos:0 : int);
  ignore (D.encode_header g ~src:5 h2 buf ~pos:s1 : int);
  let b1 = D.decode_header g ~src:3 buf ~pos:0 in
  let b2 = D.decode_header g ~src:5 buf ~pos:s1 in
  Alcotest.(check bool) "first header intact" true (header_eq h1 b1);
  Alcotest.(check bool) "second header intact" true (header_eq h2 b2)

let test_non_neighbor_label_rejected () =
  let g = line 4 in
  let h = mk ~labels:[ 3 ] 3 in
  (* 3 is not adjacent to 0: the encoder must refuse rather than emit a
     rank the decoder would misresolve. *)
  let buf = Bytes.create 64 in
  Alcotest.(check bool) "encode_header rejects non-neighbor label" true
    (try
       ignore (D.encode_header g ~src:0 h buf ~pos:0 : int);
       false
     with Invalid_argument _ -> true)

(* Gen-driven fuzz: random graph, random walk chain, random field soup —
   seeded through QCheck, so a failure prints the replayable seed. *)
let prop_random_headers =
  Helpers.qtest "random headers round-trip through the wire codec" ~count:100
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let rng = Rng.create (Rng.derive seed 91) in
      let n = Graph.n g in
      let pick_special_float r =
        match Rng.int r 6 with
        | 0 -> infinity
        | 1 -> 0.0
        | 2 -> max_float
        | 3 -> Float.ldexp 1.0 (-1074)
        | 4 -> -0.0
        | _ -> Rng.float r 1e12
      in
      let pick_vbound r =
        match Rng.int r 5 with
        | 0 -> Int64.minus_one
        | 1 -> 0L
        | 2 -> Int64.max_int
        | 3 -> Int64.min_int
        | _ -> Rng.bits64 r
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let src = Rng.int rng n in
        let h =
          mk
            ~labels:(random_chain g rng src (Rng.int rng 9))
            ~phase:(D.phase_of_mode (Rng.int rng 7))
            ~waypoint:(Rng.int rng (n + 1) - 1)
            ~anchor:(Rng.int rng (n + 1) - 1)
            ~fbound:(pick_special_float rng) ~vbound:(pick_vbound rng)
            ~extra_bytes:(Rng.int rng 0x10000)
            (Rng.int rng n)
        in
        let pos = Rng.int rng 32 in
        (try roundtrip ~pos g ~src h
         with _ ->
           ok := false;
           Printf.eprintf "codec roundtrip failed (seed %d): %s\n" seed
             (pp_header h))
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "boundary label widths" `Quick test_boundary_label_widths;
    Alcotest.test_case "field maxima" `Quick test_field_maxima;
    Alcotest.test_case "every phase mode" `Quick test_every_phase_mode;
    Alcotest.test_case "arena packing" `Quick test_arena_packing;
    Alcotest.test_case "non-neighbor label rejected" `Quick
      test_non_neighbor_label_rejected;
    prop_random_headers;
  ]
