(* The ROUTER contract, enforced on every registered scheme at once: valid
   paths (start at src, end at dst, hop along edges), stretch >= 1 against
   the Dijkstra oracle, and non-negative per-node state. *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Telemetry = Disco_util.Telemetry
module Routers = Disco_experiments.Routers
module Protocol = Disco_experiments.Protocol
module Testbed = Disco_experiments.Testbed

let testbed =
  lazy (Testbed.make ~seed:7 Gen.Geometric ~n:96)

let expected_names =
  [ "pathvector"; "seattle"; "bvr"; "vrr"; "s4"; "nddisco"; "disco"; "tz" ]

let test_registry_contents () =
  let names = Routers.names () in
  Alcotest.(check (list string)) "all built-in schemes registered" expected_names names;
  List.iter
    (fun name ->
      match Routers.find name with
      | Some p -> Alcotest.(check string) "find returns the right module" name (Protocol.name_of p)
      | None -> Alcotest.failf "Routers.find %S returned None" name)
    names;
  Alcotest.(check bool) "find on a junk name misses" true (Routers.find "nonesuch" = None)

let test_duplicate_rejected () =
  let disco = Routers.find_exn "disco" in
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Protocol.register: duplicate router \"disco\"")
    (fun () -> Protocol.register disco)

(* One pass over sampled pairs per router, through both faces of the
   contract: walked data-plane paths and oracle routes are all valid and
   no faster than the shortest path. *)
let check_router packed () =
  let module R = (val packed : Protocol.ROUTER) in
  let module Walk = Disco_experiments.Walk in
  let tb = Lazy.force testbed in
  let g = tb.Testbed.graph in
  let n = Graph.n g in
  let router = R.build tb in
  let tel = Telemetry.create () in
  for v = 0 to n - 1 do
    if R.state_entries router v < 0 then
      Alcotest.failf "%s: negative state at node %d" R.name v
  done;
  let rng = Rng.create 123 in
  let ws = Dijkstra.make_workspace g in
  let routed = ref 0 in
  for _ = 1 to 40 do
    let src = Rng.int rng n in
    let sp = Dijkstra.sssp ~ws g src in
    for _ = 1 to 3 do
      let dst = Rng.int rng n in
      let dist = sp.Dijkstra.dist.(dst) in
      if src <> dst && dist > 0.0 && dist < infinity then
        List.iter
          (fun (label, route) ->
            match route router ~tel ~src ~dst with
            | None -> () (* a failure is legal (BVR local minima); counted via tel *)
            | Some path ->
                incr routed;
                Helpers.check_path g ~src ~dst path;
                let stretch = Helpers.path_len g path /. dist in
                if stretch < 1.0 -. 1e-9 then
                  Alcotest.failf "%s %s: stretch %.4f < 1 for %d->%d" R.name label
                    stretch src dst)
          [
            ("walk-first", fun rt -> Walk.first (module R) rt ~graph:g);
            ("walk-later", fun rt -> Walk.later (module R) rt ~graph:g);
            ("oracle-first", R.oracle_first);
            ("oracle-later", R.oracle_later);
          ]
    done
  done;
  if !routed = 0 then Alcotest.failf "%s: no pair routed at all" R.name;
  (* The walker really ran: the per-hop counters moved. *)
  if tel.Telemetry.packets_walked = 0 || tel.Telemetry.hops_forwarded = 0 then
    Alcotest.failf "%s: data-plane counters never moved" R.name

let suite =
  [
    Alcotest.test_case "registry contents" `Quick test_registry_contents;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
  ]
  @ List.map
      (fun p ->
        Alcotest.test_case
          (Printf.sprintf "contract: %s" (Protocol.name_of p))
          `Quick (check_router p))
      (Routers.all ())
