module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Core = Disco_core
module Disco = Disco_core.Disco
module Forwarding = Disco_core.Forwarding
module D = Disco_core.Dataplane

let build seed =
  let g = Helpers.random_weighted_graph seed in
  (g, Disco.build ~rng:(Rng.create seed) g)

let test_delivery_all_pairs () =
  let g, d = build 3 in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then begin
        let tr = Forwarding.first_packet d ~src:s ~dst:t in
        Alcotest.(check bool) (Printf.sprintf "%d->%d delivered" s t) true tr.Forwarding.walk.D.delivered;
        Helpers.check_path g ~src:s ~dst:t tr.Forwarding.walk.D.path;
        let tr' = Forwarding.later_packet d ~src:s ~dst:t in
        Alcotest.(check bool) "later delivered" true tr'.Forwarding.walk.D.delivered;
        Helpers.check_path g ~src:s ~dst:t tr'.Forwarding.walk.D.path
      end
    done
  done

let test_matches_control_plane () =
  (* The data-plane walk and the static route computation must produce
     routes of identical length under the same (to-destination)
     heuristic — tie-breaking may pick different equal-length paths. *)
  let g, d = build 5 in
  let n = Graph.n g in
  for s = 0 to min 20 (n - 1) do
    for t = 0 to min 20 (n - 1) do
      if s <> t then begin
        let tr = Forwarding.first_packet d ~src:s ~dst:t in
        let route =
          Disco.route_first ~heuristic:Core.Shortcut.To_destination d ~src:s ~dst:t
        in
        let lf = Helpers.path_len g tr.Forwarding.walk.D.path in
        let lc = Helpers.path_len g route in
        if Float.abs (lf -. lc) > 1e-9 then
          Alcotest.failf "%d->%d: forwarded %.6f vs computed %.6f" s t lf lc
      end
    done
  done

let test_later_matches_control_plane () =
  let g, d = build 7 in
  let n = Graph.n g in
  for s = 0 to min 20 (n - 1) do
    for t = 0 to min 20 (n - 1) do
      if s <> t then begin
        let tr = Forwarding.later_packet d ~src:s ~dst:t in
        let route =
          Disco.route_later ~heuristic:Core.Shortcut.To_destination d ~src:s ~dst:t
        in
        let lf = Helpers.path_len g tr.Forwarding.walk.D.path in
        let lc = Helpers.path_len g route in
        if lf > lc +. 1e-9 then
          Alcotest.failf "%d->%d: forwarded %.6f worse than computed %.6f" s t lf lc
      end
    done
  done

let test_handshake_iff_in_vicinity () =
  let g, d = build 9 in
  let nd = d.Disco.nd in
  let n = Graph.n g in
  for s = 0 to min 15 (n - 1) do
    for t = 0 to min 15 (n - 1) do
      if s <> t then begin
        let tr = Forwarding.first_packet d ~src:s ~dst:t in
        let expect = Core.Vicinity.mem nd.Core.Nddisco.vicinity t s in
        Alcotest.(check bool)
          (Printf.sprintf "handshake %d->%d" s t)
          expect
          (tr.Forwarding.handshake <> None);
        match tr.Forwarding.handshake with
        | Some p ->
            Helpers.check_path g ~src:s ~dst:t p;
            (* The revealed path is exact. *)
            let sp = Disco_graph.Dijkstra.distance g s t in
            Alcotest.(check bool) "handshake path is shortest" true
              (Float.abs (Helpers.path_len g p -. sp) < 1e-9)
        | None -> ()
      end
    done
  done

let test_steps_recorded () =
  let _, d = build 11 in
  let tr = Forwarding.first_packet d ~src:0 ~dst:7 in
  let steps = tr.Forwarding.walk.D.steps in
  Alcotest.(check bool) "has decisions" true (List.length steps > 0);
  let last = List.nth steps (List.length steps - 1) in
  (* Typed action, not a string to pattern-match on. *)
  Alcotest.(check bool) "last is deliver" true (last.D.action = D.Delivered);
  Alcotest.(check int) "deliver at destination" 7 last.D.at

let test_trivial () =
  let _, d = build 13 in
  let tr = Forwarding.first_packet d ~src:4 ~dst:4 in
  Alcotest.(check bool) "delivered" true tr.Forwarding.walk.D.delivered;
  Alcotest.(check (list int)) "stays put" [ 4 ] tr.Forwarding.walk.D.path;
  Alcotest.(check int) "no hops" 0 tr.Forwarding.walk.D.hops

let test_pp_trace () =
  let _, d = build 15 in
  let tr = Forwarding.first_packet d ~src:0 ~dst:9 in
  let s = Format.asprintf "%a" Forwarding.pp_trace tr in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let prop_first_packet_stretch_bound =
  Helpers.qtest "forwarded first packets respect stretch 7 w.h.p." ~count:10
    Helpers.seed_arb (fun seed ->
      let g, d = build seed in
      let nd = d.Disco.nd in
      (* Theorem precondition, as in test_disco_core. *)
      let precondition =
        let ok = ref true in
        for v = 0 to Graph.n g - 1 do
          if not nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(v) then begin
            let vw = Core.Vicinity.view nd.Core.Nddisco.vicinity v in
            if
              not
                (Array.exists
                   (fun w -> nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(w))
                   vw.Core.Vicinity.members)
            then ok := false
          end
        done;
        !ok
      in
      QCheck.assume precondition;
      let ws = Disco_graph.Dijkstra.make_workspace g in
      let ok = ref true in
      for s = 0 to min 10 (Graph.n g - 1) do
        let sp = Disco_graph.Dijkstra.sssp ~ws g s in
        for t = 0 to Graph.n g - 1 do
          if
            s <> t
            && sp.Disco_graph.Dijkstra.dist.(t) > 0.0
            && sp.Disco_graph.Dijkstra.dist.(t) < infinity
          then begin
            let tr = Forwarding.first_packet d ~src:s ~dst:t in
            (match Disco.classify_first d ~src:s ~dst:t with
            | Disco.Resolution_fallback -> () (* no bound in the fallback *)
            | _ ->
                if
                  Helpers.path_len g tr.Forwarding.walk.D.path
                  /. sp.Disco_graph.Dijkstra.dist.(t)
                  > 7.0 +. 1e-9
                then ok := false);
            if not tr.Forwarding.walk.D.delivered then ok := false
          end
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "delivery between all pairs" `Quick test_delivery_all_pairs;
    Alcotest.test_case "first packet matches control plane" `Quick test_matches_control_plane;
    Alcotest.test_case "later packet matches control plane" `Quick test_later_matches_control_plane;
    Alcotest.test_case "handshake iff in vicinity" `Quick test_handshake_iff_in_vicinity;
    Alcotest.test_case "steps recorded" `Quick test_steps_recorded;
    Alcotest.test_case "trivial" `Quick test_trivial;
    Alcotest.test_case "pp_trace" `Quick test_pp_trace;
    prop_first_packet_stretch_bound;
  ]
