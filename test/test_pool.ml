(* Disco_util.Pool: the one concurrency primitive in the tree (lint L6).
   The contract under test is the determinism argument of DESIGN.md §5d:
   [run] returns results in input index order, identical to the sequential
   map, for every jobs value; exceptions propagate (lowest failing index
   wins); pools are reusable across batches. *)

module Pool = Disco_util.Pool

exception Boom of int

let squares n = Array.init n (fun i -> i * i)

let test_sequential_jobs1 () =
  Pool.with_pool ~jobs:1 (fun p ->
      let out = Pool.run p (Array.init 17 Fun.id) (fun i -> i * i) in
      Alcotest.(check (array int)) "jobs=1 maps in order" (squares 17) out)

let test_order_preserved () =
  (* Skewed per-task cost, so late indices finish first if the pool ran
     them in parallel; the output must still land in input order. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let n = 64 in
      let work i =
        let spin = (n - i) * 2000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := (!acc + k) land 0xFFFF
        done;
        ignore (Sys.opaque_identity !acc);
        i * i
      in
      let out = Pool.run p (Array.init n Fun.id) work in
      Alcotest.(check (array int)) "jobs=4 preserves index order" (squares n) out)

let test_matches_sequential () =
  let input = Array.init 33 (fun i -> (i * 7919) mod 101) in
  let f x = (x * x) + (3 * x) + 1 in
  let seq = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals jobs=1" jobs)
            seq (Pool.run p input f)))
    [ 1; 2; 4 ]

let test_exception_propagates () =
  Pool.with_pool ~jobs:3 (fun p ->
      let raised =
        match
          Pool.run p (Array.init 20 Fun.id) (fun i ->
              if i mod 7 = 3 then raise (Boom i) else i)
        with
        | _ -> None
        | exception Boom i -> Some i
      in
      (* Indices 3, 10 and 17 all fail; the re-raise is the lowest one, so
         the error a caller sees does not depend on scheduling. *)
      Alcotest.(check (option int)) "lowest failing index wins" (Some 3) raised);
  (* The pool variable is scoped inside with_pool; a failed batch must not
     poison the next one. *)
  Pool.with_pool ~jobs:3 (fun p ->
      (match Pool.run p [| 0; 1 |] (fun _ -> raise Exit) with
      | _ -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      let out = Pool.run p [| 2; 3 |] (fun x -> x + 1) in
      Alcotest.(check (array int)) "pool survives a failed batch" [| 3; 4 |] out)

let test_reuse_and_empty () =
  Pool.with_pool ~jobs:2 (fun p ->
      Alcotest.(check (array int)) "empty input" [||] (Pool.run p [||] (fun x -> x));
      Alcotest.(check (array int)) "singleton input" [| 9 |]
        (Pool.run p [| 3 |] (fun x -> x * x));
      for round = 1 to 5 do
        let out = Pool.run p (Array.init 8 Fun.id) (fun i -> i + round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 8 (fun i -> i + round))
          out
      done)

let test_resolve_jobs () =
  Alcotest.(check int) "positive passes through" 3 (Pool.resolve_jobs 3);
  Alcotest.(check int) "zero resolves to default"
    (Pool.default_jobs ()) (Pool.resolve_jobs 0);
  Alcotest.(check bool) "default is at least 1" true (Pool.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "jobs=1 is a plain map" `Quick test_sequential_jobs1;
    Alcotest.test_case "index order preserved under skew" `Quick test_order_preserved;
    Alcotest.test_case "jobs=N equals jobs=1" `Quick test_matches_sequential;
    Alcotest.test_case "lowest-index exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "reuse, empty and singleton batches" `Quick test_reuse_and_empty;
    Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
  ]
