(* The ISSUE's determinism acceptance criterion: the parallel engine must be
   bit-identical to the sequential one. Same seed, jobs=1 vs jobs=4 —
   same samples in the same order, same merged telemetry, and byte-equal
   Results JSON (with wall-clock nulled out; elapsed_s is the one field
   allowed to differ).

   Since the engine queries routers through the shared walker, the
   telemetry equality below also pins the data plane's walker counters
   (packets walked, hops, rewrites, header bytes) across fork boundaries:
   forked handles may alias converged state, but per-packet walker
   scratch is local to each Walk call, so parallel walks can never bleed
   into each other's accounting. *)

module Gen = Disco_graph.Gen
module Telemetry = Disco_util.Telemetry
module Testbed = Disco_experiments.Testbed
module Engine = Disco_experiments.Engine
module Metrics = Disco_experiments.Metrics
module Routers = Disco_experiments.Routers
module Results = Disco_experiments.Results
module Harness = Disco_check.Harness

let tb = lazy (Testbed.make ~seed:7 Gen.Gnm ~n:160)

let sample ~jobs =
  let tb = Lazy.force tb in
  Results.reset ();
  Results.set_figure "test-parallel";
  let tel = Telemetry.create () in
  let samples =
    Engine.sample_pairs ~pairs:200 ~dests_per_src:4 ~jobs ~tel
      ~routers:(Routers.all ()) tb
  in
  let json = Results.to_json ~timings:false () in
  Results.reset ();
  (samples, Telemetry.snapshot tel, json)

let test_sample_pairs_jobs_invariant () =
  let seq, seq_tel, seq_json = sample ~jobs:1 in
  List.iter
    (fun jobs ->
      let par, par_tel, par_json = sample ~jobs in
      let tag fmt = Printf.sprintf ("jobs=%d: " ^^ fmt) jobs in
      Alcotest.(check int) (tag "router count") (List.length seq) (List.length par);
      List.iter2
        (fun (s : Engine.sampled) (p : Engine.sampled) ->
          Alcotest.(check string) (tag "router order") s.Engine.router p.Engine.router;
          Alcotest.(check (array (float 0.0)))
            (tag "%s first samples" s.Engine.router)
            s.Engine.first p.Engine.first;
          Alcotest.(check (array (float 0.0)))
            (tag "%s later samples" s.Engine.router)
            s.Engine.later p.Engine.later;
          Alcotest.(check int) (tag "first failures") s.Engine.first_failures
            p.Engine.first_failures;
          Alcotest.(check int) (tag "later failures") s.Engine.later_failures
            p.Engine.later_failures;
          Alcotest.(check string)
            (tag "%s telemetry" s.Engine.router)
            (Telemetry.snapshot_to_string s.Engine.tel)
            (Telemetry.snapshot_to_string p.Engine.tel))
        seq par;
      Alcotest.(check string) (tag "merged telemetry")
        (Telemetry.snapshot_to_string seq_tel)
        (Telemetry.snapshot_to_string par_tel);
      Alcotest.(check string) (tag "Results JSON byte-equal") seq_json par_json)
    [ 2; 4 ]

let test_map_groups_jobs_invariant () =
  let tb = Lazy.force tb in
  let graph = tb.Testbed.graph in
  let groups = [ (0, [ 3; 9; 17 ]); (5, [ 1; 2 ]); (12, [ 4; 8; 11; 30 ]) ]
  in
  let run ~jobs =
    let tel = Telemetry.create () in
    let out =
      Engine.map_groups ~jobs ~tel ~seed:99 graph groups
        (fun ~src ~dst ~dist -> (src, dst, dist))
    in
    (out, Telemetry.snapshot_to_string (Telemetry.snapshot tel))
  in
  let seq, seq_tel = run ~jobs:1 in
  let par, par_tel = run ~jobs:4 in
  Alcotest.(check int) "same sample count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (s, d, dist) ->
      let s', d', dist' = par.(i) in
      Alcotest.(check bool) "same visit in same position" true
        (s = s' && d = d' && Float.equal dist dist'))
    seq;
  Alcotest.(check string) "same telemetry" seq_tel par_tel

let test_metrics_stretch_jobs_invariant () =
  let tb = Lazy.force tb in
  let run ~jobs = Metrics.stretch ~jobs ~pairs:120 ~with_vrr:true tb in
  let seq = run ~jobs:1 and par = run ~jobs:4 in
  let check name (a : float array) (b : float array) =
    Alcotest.(check (array (float 0.0))) name a b
  in
  check "disco first" seq.Metrics.s_disco.Metrics.first par.Metrics.s_disco.Metrics.first;
  check "disco later" seq.Metrics.s_disco.Metrics.later par.Metrics.s_disco.Metrics.later;
  check "nddisco later" seq.Metrics.s_nddisco.Metrics.later par.Metrics.s_nddisco.Metrics.later;
  check "s4 first" seq.Metrics.s_s4.Metrics.first par.Metrics.s_s4.Metrics.first;
  (match (seq.Metrics.s_vrr, par.Metrics.s_vrr) with
  | Some a, Some b -> check "vrr" a b
  | None, None -> ()
  | _ -> Alcotest.fail "vrr presence differs across jobs")

let test_disco_check_jobs_invariant () =
  let run ~jobs = Harness.run_cases ~jobs ~run_seed:11 ~cases:6 ~max_nodes:40 () in
  Alcotest.(check string) "summary JSON byte-equal across jobs"
    (Harness.to_json (run ~jobs:1))
    (Harness.to_json (run ~jobs:4))

let suite =
  [
    Alcotest.test_case "sample_pairs: jobs 1 = jobs 2 = jobs 4" `Slow
      test_sample_pairs_jobs_invariant;
    Alcotest.test_case "map_groups: jobs 1 = jobs 4" `Quick
      test_map_groups_jobs_invariant;
    Alcotest.test_case "Metrics.stretch: jobs 1 = jobs 4" `Slow
      test_metrics_stretch_jobs_invariant;
    Alcotest.test_case "disco-check harness: jobs 1 = jobs 4" `Slow
      test_disco_check_jobs_invariant;
  ]
