(* Scaling sweep (`--figure scaling`): build every registered scheme on a
   GLP topology decade by decade (10^3 up to 10^6 at `--scale paper`) and
   record exact per-node state bytes (sampled nodes), sampled-pair typed
   walks (delivery + stretch against a Dijkstra oracle), build time, and
   peak RSS.  This is the empirical check of the paper's Õ(√n) state
   claim: the run ends with a log-log least-squares fit of state bytes
   vs n per scheme and fails (nonzero exit) if disco or nddisco grow
   with a fitted exponent above 0.6.

   Rows checkpoint to BENCH_scaling.json (`--json` overrides the path)
   after every scheme of every decade; re-running with the same file
   resumes, skipping (scheme, n) pairs already present — million-node
   builds are slow enough that losing a decade to an interrupt would
   hurt.  The checkpoint is read back with {!Disco_util.Json}, the same
   structural reader the alloc gate uses. *)

module Testbed = Disco_experiments.Testbed
module Routers = Disco_experiments.Routers
module Protocol = Disco_experiments.Protocol
module Scale = Disco_experiments.Scale
module Telemetry = Disco_util.Telemetry
module Json = Disco_util.Json
module Rng = Disco_util.Rng
module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module D = Disco_core.Dataplane

type row = {
  scheme : string;
  n : int;
  state_nodes : int; (* nodes sampled for the state columns *)
  state_mean : float; (* bytes per node over the sample *)
  state_max : float;
  walks : int;
  delivered : int;
  stretch_mean : float; (* over delivered walks; nan when none *)
  build_s : float;
  vmhwm_kb : float; (* process peak RSS when the row finished *)
}

let decades scale =
  match scale with
  | Scale.Small -> [ 1_000; 10_000; 100_000 ]
  | Scale.Paper -> [ 1_000; 10_000; 100_000; 1_000_000 ]

let state_sample_cap = 64
let walk_count = 32

let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0 (* not Linux; the column reads 0 *)
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line ->
            let acc =
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                String.sub line 6 (String.length line - 6)
                |> String.to_seq
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
                |> fun digits -> float_of_string ("0" ^ digits)
              else acc
            in
            go acc
      in
      let r = go 0.0 in
      close_in ic;
      r

(* --- one (scheme, decade) measurement ------------------------------- *)

let measure_scheme tb ~ws (p : Protocol.packed) =
  let (module R) = p in
  let graph = tb.Testbed.graph in
  let n = Graph.n graph in
  let t0 = Unix.gettimeofday () in
  let rt = R.build tb in
  let build_s = Unix.gettimeofday () -. t0 in
  (* State: exact packed bytes on a deterministic node sample — 64 nodes
     bound the cost of per-node accounting at n = 10^6 without hiding the
     tail (max over the sample is reported alongside the mean). *)
  let sample =
    Rng.sample_without_replacement
      (Testbed.rng tb ~purpose:73)
      (min state_sample_cap n) n
  in
  let state_sum = ref 0.0 and state_max = ref 0.0 in
  Array.iter
    (fun v ->
      let b = R.state_bytes rt v in
      state_sum := !state_sum +. b;
      if b > !state_max then state_max := b)
    sample;
  (* Walks: typed-face hop-by-hop delivery over sampled pairs, stretch
     against an early-stopped Dijkstra oracle. *)
  let tel = Telemetry.create () in
  let ttl = R.ttl_factor * n in
  let rng = Testbed.rng tb ~purpose:74 in
  let delivered = ref 0 and stretch_sum = ref 0.0 in
  for _ = 1 to walk_count do
    let src = Rng.int rng n in
    let dst =
      let rec draw () =
        let d = Rng.int rng n in
        if d = src then draw () else d
      in
      draw ()
    in
    let tr =
      D.walk ~ttl graph ~forward:(R.forward rt) ~src
        (R.first_header rt ~tel ~src ~dst)
    in
    if tr.D.delivered then begin
      incr delivered;
      let walked = Dijkstra.path_length graph tr.D.path in
      let shortest = (Dijkstra.sssp ~ws ~until:dst graph src).Dijkstra.dist.(dst) in
      if shortest > 0.0 then stretch_sum := !stretch_sum +. (walked /. shortest)
    end
  done;
  {
    scheme = R.name;
    n;
    state_nodes = Array.length sample;
    state_mean = !state_sum /. float_of_int (Array.length sample);
    state_max = !state_max;
    walks = walk_count;
    delivered = !delivered;
    stretch_mean =
      (if !delivered = 0 then Float.nan
       else !stretch_sum /. float_of_int !delivered);
    build_s;
    vmhwm_kb = vmhwm_kb ();
  }

(* --- checkpoint file ------------------------------------------------- *)

let json_of_rows ~seed rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"figure\": \"scaling\",\n  \"seed\": %d,\n  \"topology\": \
        \"glp\",\n  \"rows\": [\n" seed);
  List.iteri
    (fun i r ->
      let stretch =
        (* bare nan is not JSON; a row with no delivered walk omits the
           member and [read_checkpoint] restores the nan *)
        if Float.is_nan r.stretch_mean then ""
        else Printf.sprintf "\"stretch_mean\": %.4f, " r.stretch_mean
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": %S, \"n\": %d, \"state_nodes\": %d, \
            \"state_mean_bytes\": %.1f, \"state_max_bytes\": %.1f, \
            \"walks\": %d, \"delivered\": %d, %s\"build_s\": %.2f, \
            \"vmhwm_kb\": %.0f}%s\n"
           r.scheme r.n r.state_nodes r.state_mean r.state_max r.walks
           r.delivered stretch r.build_s r.vmhwm_kb
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let checkpoint ~seed ~path rows =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (json_of_rows ~seed rows);
  close_out oc;
  Sys.rename tmp path

(* Rows already in the checkpoint, oldest first.  [stretch_mean] may be
   the literal [nan] when no walk delivered; our reader rejects bare nan
   (it is not JSON), so those resume rows drop the field and re-read as
   nan here. *)
let read_checkpoint path =
  if not (Sys.file_exists path) then []
  else
    match Json.of_file path with
    | Error e ->
        Printf.printf "  (ignoring unreadable checkpoint %s: %s)\n" path e;
        []
    | Ok doc ->
        List.filter_map
          (fun r ->
            match
              ( Json.string_member "scheme" r,
                Json.int_member "n" r,
                Json.float_member "state_mean_bytes" r,
                Json.float_member "state_max_bytes" r )
            with
            | Some scheme, Some n, Some state_mean, Some state_max ->
                Some
                  {
                    scheme;
                    n;
                    state_nodes =
                      Option.value ~default:0 (Json.int_member "state_nodes" r);
                    state_mean;
                    state_max;
                    walks = Option.value ~default:0 (Json.int_member "walks" r);
                    delivered =
                      Option.value ~default:0 (Json.int_member "delivered" r);
                    stretch_mean =
                      Option.value ~default:Float.nan
                        (Json.float_member "stretch_mean" r);
                    build_s =
                      Option.value ~default:0.0 (Json.float_member "build_s" r);
                    vmhwm_kb =
                      Option.value ~default:0.0 (Json.float_member "vmhwm_kb" r);
                  }
            | _ -> None)
          (Json.list_member "rows" doc)

(* --- exponent fit and gate ------------------------------------------- *)

(* Least-squares slope of ln(state_mean) over ln(n): the fitted growth
   exponent.  Needs two distinct decades. *)
let fit_exponent rows =
  let pts =
    List.filter_map
      (fun r ->
        if r.state_mean > 0.0 then Some (log (float_of_int r.n), log r.state_mean)
        else None)
      rows
  in
  let distinct_x = List.sort_uniq compare (List.map fst pts) in
  if List.length distinct_x < 2 then None
  else begin
    let m = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    Some (((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx)))
  end

let exponent_cap = 0.6
let gated_schemes = [ "disco"; "nddisco" ]

let gate_exponents rows =
  let schemes = List.sort_uniq compare (List.map (fun r -> r.scheme) rows) in
  Printf.printf "\n  %-12s %10s\n" "scheme" "exponent";
  let violations =
    List.filter_map
      (fun scheme ->
        let own = List.filter (fun r -> r.scheme = scheme) rows in
        match fit_exponent own with
        | None ->
            Printf.printf "  %-12s %10s\n" scheme "-";
            None
        | Some e ->
            let gated = List.mem scheme gated_schemes in
            Printf.printf "  %-12s %10.3f%s\n" scheme e
              (if gated then Printf.sprintf "  (gate: <= %.1f)" exponent_cap
               else "");
            if gated && e > exponent_cap then
              Some
                (Printf.sprintf "%s state grows as n^%.3f > n^%.1f" scheme e
                   exponent_cap)
            else None)
      schemes
  in
  match violations with
  | [] -> Printf.printf "scaling gate: state exponents within bounds\n"
  | vs ->
      raise
        (Sys_error
           (Printf.sprintf "scaling regression:\n  %s" (String.concat "\n  " vs)))

(* --- driver ----------------------------------------------------------- *)

let print_row r =
  Printf.printf
    "  %-12s %9d %12.1f %12.1f %5d/%d %8s %9.1fs %9.0f\n%!" r.scheme r.n
    r.state_mean r.state_max r.delivered r.walks
    (if Float.is_nan r.stretch_mean then "-"
     else Printf.sprintf "%.3f" r.stretch_mean)
    r.build_s r.vmhwm_kb

let run ?json ~seed scale =
  let path = Option.value json ~default:"BENCH_scaling.json" in
  let resumed = read_checkpoint path in
  if resumed <> [] then
    Printf.printf "resuming: %d rows already in %s\n" (List.length resumed) path;
  let have = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace have (r.scheme, r.n) ()) resumed;
  Printf.printf
    "\n== scaling: state bytes and sampled walks per decade (GLP, seed %d) ==\n\
     %!"
    seed;
  Printf.printf "  %-12s %9s %12s %12s %7s %8s %10s %9s\n" "scheme" "n"
    "state-mean-B" "state-max-B" "deliv" "stretch" "build" "VmHWM-kB";
  let rows = ref (List.rev resumed) in
  (* newest first; reversed at output *)
  List.iter
    (fun n ->
      let todo =
        List.filter
          (fun p -> not (Hashtbl.mem have (Protocol.name_of p, n)))
          (Routers.all ())
      in
      if todo <> [] then begin
        let t0 = Unix.gettimeofday () in
        let tb = Testbed.make ~seed Gen.Glp ~n in
        Printf.printf "  -- n=%d: topology + shared protocols in %.1fs\n%!" n
          (Unix.gettimeofday () -. t0);
        let ws = Dijkstra.make_workspace tb.Testbed.graph in
        List.iter
          (fun p ->
            let r = measure_scheme tb ~ws p in
            print_row r;
            rows := r :: !rows;
            checkpoint ~seed ~path (List.rev !rows))
          todo
      end)
    (decades scale);
  let rows = List.rev !rows in
  (* Plot-ready CSV block (README shows the gnuplot/py one-liner). *)
  Printf.printf "\n-- csv --\n";
  Printf.printf "scheme,n,state_mean_bytes,state_max_bytes,delivered,walks,stretch_mean,build_s,vmhwm_kb\n";
  List.iter
    (fun r ->
      Printf.printf "%s,%d,%.1f,%.1f,%d,%d,%.4f,%.2f,%.0f\n" r.scheme r.n
        r.state_mean r.state_max r.delivered r.walks r.stretch_mean r.build_s
        r.vmhwm_kb)
    rows;
  Printf.printf "wrote %s\n" path;
  gate_exponents rows
