(* Allocs-per-hop microbenchmark (`--figure alloc`): Gc.minor_words around
   hop-by-hop walks, per registered scheme, for first (resolving) and later
   (converged) packets.  This is the measured counterpart of disco-lint's
   L7 discipline: the typed pass proves the hop loop calls no allocating
   helper it didn't waive; this reports what the waived allocations —
   trace recording, per-walk setup, the schemes' header rewrites — cost in
   minor words per hop.  `--json FILE` snapshots the table (BENCH_alloc.json
   keeps the committed baseline). *)

module Testbed = Disco_experiments.Testbed
module Routers = Disco_experiments.Routers
module Protocol = Disco_experiments.Protocol
module Scale = Disco_experiments.Scale
module Telemetry = Disco_util.Telemetry
module Graph = Disco_graph.Graph
module D = Disco_core.Dataplane

type row = {
  scheme : string;
  kind : string; (* "first" | "later" *)
  walks : int;
  hops : int;
  minor_words : float;
  words_per_hop : float;
  words_per_walk : float;
}

(* Sampled source-destination pairs, deterministic in the testbed seed. *)
let sample_pairs tb ~count =
  let rng = Testbed.rng tb ~purpose:71 in
  let n = Graph.n tb.Testbed.graph in
  List.init count (fun _ ->
      let s = Disco_util.Rng.int rng n in
      let rec draw () =
        let d = Disco_util.Rng.int rng n in
        if d = s then draw () else d
      in
      (s, draw ()))

let measure_kind (type a) (module R : Protocol.ROUTER with type t = a) (rt : a)
    ~graph ~kind ~pairs =
  let tel = Telemetry.create () in
  let ttl = R.ttl_factor * Graph.n graph in
  let header =
    match kind with
    | "first" -> fun ~src ~dst -> R.first_header rt ~tel ~src ~dst
    | _ -> fun ~src ~dst -> R.later_header rt ~tel ~src ~dst
  in
  let one acc (src, dst) =
    let tr = D.walk ~ttl graph ~forward:(R.forward rt) ~src (header ~src ~dst) in
    acc + tr.D.hops
  in
  (* Warm-up pass: populate lazy per-scheme caches (pivot trees, resolver
     state) so the measured pass sees steady-state allocation only. *)
  ignore (List.fold_left one 0 pairs : int);
  Gc.full_major ();
  let before = Gc.minor_words () in
  let hops = List.fold_left one 0 pairs in
  let minor_words = Gc.minor_words () -. before in
  let walks = List.length pairs in
  {
    scheme = R.name;
    kind;
    walks;
    hops;
    minor_words;
    words_per_hop = (if hops = 0 then 0.0 else minor_words /. float_of_int hops);
    words_per_walk = minor_words /. float_of_int walks;
  }

let measure_scheme tb ~pairs (p : Protocol.packed) =
  let (module R) = p in
  let rt = R.build tb in
  let graph = tb.Testbed.graph in
  [
    measure_kind (module R) rt ~graph ~kind:"first" ~pairs;
    measure_kind (module R) rt ~graph ~kind:"later" ~pairs;
  ]

let json_of_rows ~seed ~n ~walks rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"figure\": \"alloc\",\n  \"seed\": %d,\n  \"n\": %d,\n  \
        \"walks_per_row\": %d,\n  \"rows\": [\n" seed n walks);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": %S, \"kind\": %S, \"walks\": %d, \"hops\": %d, \
            \"minor_words\": %.0f, \"words_per_hop\": %.1f, \
            \"words_per_walk\": %.1f}%s\n"
           r.scheme r.kind r.walks r.hops r.minor_words r.words_per_hop
           r.words_per_walk
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* --- baseline gate (--baseline FILE) --------------------------------

   Structural parse of the committed BENCH_alloc.json via
   {!Disco_util.Json} (shared with the scaling bench's checkpoints).
   This replaced a per-line string scanner that located values by byte
   offset from the key — it silently mis-read rows whose members were
   reordered from the exact [json_of_rows] layout.  Allocation counts
   are deterministic for a fixed seed and build, so the 20% headroom is
   for compiler-version drift, not noise. *)

module Json = Disco_util.Json

let parse_baseline path =
  match Json.of_file path with
  | Error e -> raise (Sys_error (Printf.sprintf "%s: %s" path e))
  | Ok doc ->
      List.filter_map
        (fun row ->
          match
            ( Json.string_member "scheme" row,
              Json.string_member "kind" row,
              Json.float_member "words_per_hop" row )
          with
          | Some scheme, Some kind, Some wph -> Some ((scheme, kind), wph)
          | _ -> None)
        (Json.list_member "rows" doc)

(* Fail (Sys_error, so the CLI exits nonzero) on any row whose words/hop
   regressed more than 20% over the committed baseline.  Rows without a
   baseline entry (a newly registered scheme) pass with a notice — they
   gate once the baseline is regenerated. *)
let gate ~baseline rows =
  let base = parse_baseline baseline in
  let regressions =
    List.filter_map
      (fun r ->
        match List.assoc_opt (r.scheme, r.kind) base with
        | None ->
            Printf.printf "  (no baseline for %s/%s; skipped)\n" r.scheme r.kind;
            None
        | Some b ->
            if r.words_per_hop > b *. 1.2 then
              Some
                (Printf.sprintf "%s/%s: %.1f words/hop > %.1f (baseline %.1f +20%%)"
                   r.scheme r.kind r.words_per_hop (b *. 1.2) b)
            else None)
      rows
  in
  match regressions with
  | [] -> Printf.printf "alloc gate: all rows within 20%% of %s\n" baseline
  | rs ->
      raise
        (Sys_error
           (Printf.sprintf "alloc regression vs %s:\n  %s" baseline
              (String.concat "\n  " rs)))

let run ?json ?baseline ~seed scale =
  let n = match scale with Scale.Small -> 512 | Scale.Paper -> 4096 in
  let walks = match scale with Scale.Small -> 200 | Scale.Paper -> 500 in
  Printf.printf
    "\n== alloc: minor words per hop (Gc.minor_words, n=%d, %d walks/row) ==\n%!"
    n walks;
  let tb = Testbed.make ~seed Disco_graph.Gen.Geometric ~n in
  let pairs = sample_pairs tb ~count:walks in
  let rows = List.concat_map (measure_scheme tb ~pairs) (Routers.all ()) in
  Printf.printf "  %-12s %-6s %8s %10s %14s %15s\n" "scheme" "kind" "walks"
    "hops" "words/hop" "words/walk";
  List.iter
    (fun r ->
      Printf.printf "  %-12s %-6s %8d %10d %14.1f %15.1f\n" r.scheme r.kind
        r.walks r.hops r.words_per_hop r.words_per_walk)
    rows;
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of_rows ~seed ~n ~walks rows);
      close_out oc;
      Printf.printf "wrote %s\n" path);
  match baseline with None -> () | Some b -> gate ~baseline:b rows
