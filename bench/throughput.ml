(* Fast-path throughput figure (`--figure throughput`): packets/sec and
   hops/sec through the compiled zero-alloc walker, per scheme, for first
   (resolving) and later (converged) headers.  The engine lives in
   Disco_experiments.Fastwalk; this is the CLI face: scale mapping, the
   table, and the BENCH_throughput.json snapshot via `--json FILE`. *)

module Fastwalk = Disco_experiments.Fastwalk
module Scale = Disco_experiments.Scale

let run ?json ~seed scale =
  let n = match scale with Scale.Small -> 512 | Scale.Paper -> 4096 in
  let flows = match scale with Scale.Small -> 512 | Scale.Paper -> 1024 in
  let reps = 25 in
  Printf.printf
    "\n== throughput: batched fast-path walker (n=%d, %d flows x %d reps \
     per row) ==\n%!"
    n flows reps;
  let rows = Fastwalk.measure ~seed ~n ~flows ~reps in
  let total_hops =
    List.fold_left (fun acc r -> acc + r.Fastwalk.hops) 0 rows
  in
  Printf.printf "  %-12s %-6s %9s %10s %12s %12s %10s\n" "scheme" "kind"
    "packets" "hops" "pkts/sec" "hops/sec" "words/hop";
  List.iter
    (fun r ->
      Printf.printf "  %-12s %-6s %9d %10d %12.0f %12.0f %10.4f\n"
        r.Fastwalk.scheme r.Fastwalk.kind r.Fastwalk.packets r.Fastwalk.hops
        r.Fastwalk.packets_per_sec r.Fastwalk.hops_per_sec
        r.Fastwalk.words_per_hop)
    rows;
  Printf.printf "  total flow-hops routed: %d\n" total_hops;
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Fastwalk.json_of_rows ~seed ~n ~flows ~reps rows);
      close_out oc;
      Printf.printf "wrote %s\n" path
