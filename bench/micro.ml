(* Bechamel micro-benchmarks over the core primitives: one Test.make per
   operation the protocols lean on. Reported as ns/run (OLS fit against the
   run count on the monotonic clock). *)

open Bechamel
open Toolkit

let make_graph n =
  let rng = Disco_util.Rng.create 9 in
  Disco_graph.Gen.gnm ~rng ~n ~m:(4 * n)

let tests () =
  let g = make_graph 1024 in
  let ws = Disco_graph.Dijkstra.make_workspace g in
  let rng = Disco_util.Rng.create 17 in
  let nd = Disco_core.Nddisco.build ~rng g in
  let disco = Disco_core.Disco.of_nddisco ~rng nd in
  let counter = ref 0 in
  let next_pair () =
    incr counter;
    let s = 37 * !counter mod 1024 and t = (53 * !counter) + 7 in
    (s, t mod 1024)
  in
  let payload = String.init 256 (fun i -> Char.chr (i mod 256)) in
  [
    Test.make ~name:"sha256/256B"
      (Staged.stage (fun () -> ignore (Disco_hash.Sha256.digest payload : string)));
    Test.make ~name:"dijkstra/sssp-1024"
      (Staged.stage (fun () ->
           ignore (Disco_graph.Dijkstra.sssp ~ws g 0 : Disco_graph.Dijkstra.sssp)));
    Test.make ~name:"dijkstra/k-closest-100"
      (Staged.stage (fun () ->
           let s, _ = next_pair () in
           ignore
             (Disco_graph.Dijkstra.k_closest ~ws g s 100
               : Disco_graph.Dijkstra.truncated)));
    Test.make ~name:"address/encode"
      (Staged.stage (fun () ->
           let v = fst (next_pair ()) in
           ignore
             (Disco_core.Address.make g
                ~route:
                  (Disco_core.Landmarks.address_route
                     nd.Disco_core.Nddisco.landmarks v)
               : Disco_core.Address.t)));
    Test.make ~name:"disco/route-first"
      (Staged.stage (fun () ->
           let s, t = next_pair () in
           if s <> t then
             ignore (Disco_core.Disco.route_first disco ~src:s ~dst:t : int list)));
    Test.make ~name:"disco/route-later"
      (Staged.stage (fun () ->
           let s, t = next_pair () in
           if s <> t then
             ignore (Disco_core.Disco.route_later disco ~src:s ~dst:t : int list)));
  ]

let run () =
  Printf.printf "\n== micro: Bechamel benchmarks (ns/run, OLS fit) ==\n%!";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"disco" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, fit) ->
      match Analyze.OLS.estimates fit with
      | Some (t :: _) -> Printf.printf "  %-28s %12.1f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows)
