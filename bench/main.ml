(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
   for paper-vs-measured). Usage:

     dune exec bench/main.exe                        # all figures, small scale
     dune exec bench/main.exe -- --figure fig3       # one figure
     dune exec bench/main.exe -- --scale paper       # paper-size topologies
     dune exec bench/main.exe -- --figure micro      # Bechamel micro-benches
     dune exec bench/main.exe -- --json out.json     # machine-readable summary
*)

open Cmdliner
module Figures = Disco_experiments.Figures
module Results = Disco_experiments.Results
module Cli = Disco_experiments.Cli

let run figure scale seed jobs json baseline =
  Results.reset ();
  match figure with
  | "alloc" -> (
      (* Alloc mode owns its output: --json snapshots the alloc table
         (BENCH_alloc.json), not the per-figure Results summary;
         --baseline gates words/hop against a committed snapshot. *)
      try
        Alloc.run ?json ?baseline ~seed scale;
        `Ok ()
      with Sys_error e -> `Error (false, e))
  | "throughput" -> (
      (* Same ownership: --json snapshots BENCH_throughput.json. *)
      try
        Throughput.run ?json ~seed scale;
        `Ok ()
      with Sys_error e -> `Error (false, e))
  | "scaling" -> (
      (* Decade sweep with its own checkpoint file: --json names it
         (default BENCH_scaling.json); an existing file resumes the
         sweep.  Exits nonzero if disco/nddisco state outgrows ~sqrt n. *)
      try
        Scaling.run ?json ~seed scale;
        `Ok ()
      with Sys_error e -> `Error (false, e))
  | _ -> (
      (match figure with
      | "all" ->
          Figures.run_all ~seed ~jobs scale;
          Micro.run ()
      | "micro" -> Micro.run ()
      | id -> Figures.run ~seed ~jobs scale id);
      match json with
      | Some path -> (
          try
            Results.write_json path;
            Printf.printf "wrote %s\n" path;
            `Ok ()
          with Sys_error e -> `Error (false, e))
      | None -> `Ok ())

let json =
  let doc = "Write per-figure/per-router summary statistics as JSON." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let baseline =
  let doc =
    "Committed BENCH_alloc.json to gate against (alloc figure only): exit \
     nonzero if any row's words/hop regresses more than 20%."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "Regenerate the Disco paper's evaluation figures and tables" in
  let info = Cmd.info "disco-bench" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run
        $ Cli.figure_term
            ~extra:[ "all"; "micro"; "alloc"; "throughput"; "scaling" ]
            ~default:"all" ()
        $ Cli.scale_term $ Cli.seed_term $ Cli.jobs_term $ json $ baseline))

let () = exit (Cmd.eval cmd)
