(* Landmark-coverage repair: §6 says the guarantees only need a landmark
   in every vicinity; with ensure_coverage the stretch theorems become
   deterministic (no QCheck.assume needed). *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module Landmarks = Disco_core.Landmarks
module Vicinity = Disco_core.Vicinity

let covered g ~k (lm : Landmarks.t) =
  let vic = Vicinity.create g ~k in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if not lm.Landmarks.is_landmark.(v) then begin
      let vw = Vicinity.view vic v in
      if not (Array.exists (fun w -> lm.Landmarks.is_landmark.(w)) vw.Vicinity.members)
      then ok := false
    end
  done;
  !ok

let test_repairs_pathological_set () =
  (* A single far-corner landmark cannot cover a big ring's vicinities. *)
  let g = Gen.ring ~n:128 in
  let k = 6 in
  let lm = Landmarks.of_ids g [| 0 |] in
  Alcotest.(check bool) "initially uncovered" false (covered g ~k lm);
  let repaired, promotions = Landmarks.ensure_coverage g ~k lm in
  Alcotest.(check bool) "covered after repair" true (covered g ~k repaired);
  Alcotest.(check bool)
    (Printf.sprintf "promotions (%d) > 0" promotions)
    true (promotions > 0)

let test_noop_when_covered () =
  let rng = Rng.create 5 in
  let g = Gen.gnm ~rng ~n:256 ~m:1024 in
  let k = Core.Params.vicinity_size Core.Params.default ~n:256 in
  let lm = Landmarks.build ~rng ~params:Core.Params.default g in
  if covered g ~k lm then begin
    let repaired, promotions = Landmarks.ensure_coverage g ~k lm in
    Alcotest.(check int) "no promotions needed" 0 promotions;
    Alcotest.(check int) "same landmark count" (Landmarks.count lm)
      (Landmarks.count repaired)
  end

let prop_deterministic_stretch_bounds =
  (* With guarantee_coverage the NDDisco bounds need no assume: they hold
     on EVERY random graph and landmark draw. *)
  Helpers.qtest "stretch 5/3 deterministic under coverage repair" ~count:15
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let nd =
        Core.Nddisco.build ~guarantee_coverage:true ~rng:(Rng.create seed) g
      in
      let ws = Dijkstra.make_workspace g in
      let ok = ref true in
      for s = 0 to min 12 (Graph.n g - 1) do
        let sp = Dijkstra.sssp ~ws g s in
        for t = 0 to Graph.n g - 1 do
          if t <> s && sp.Dijkstra.dist.(t) > 0.0 && sp.Dijkstra.dist.(t) < infinity
          then begin
            let first =
              Core.Nddisco.route_first ~heuristic:Core.Shortcut.No_shortcut nd ~src:s
                ~dst:t
            in
            let later =
              Core.Nddisco.route_later ~heuristic:Core.Shortcut.No_shortcut nd ~src:s
                ~dst:t
            in
            let d = sp.Dijkstra.dist.(t) in
            if Helpers.path_len g first /. d > 5.0 +. 1e-9 then ok := false;
            if Helpers.path_len g later /. d > 3.0 +. 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_star_coverage () =
  (* Star-of-stars with a bad landmark draw gets repaired too. *)
  let g = Gen.star_of_stars ~branch:8 in
  let k = 5 in
  let lm = Landmarks.of_ids g [| Graph.n g - 1 |] in
  let repaired, _ = Landmarks.ensure_coverage g ~k lm in
  Alcotest.(check bool) "covered" true (covered g ~k repaired)

let suite =
  [
    Alcotest.test_case "repairs pathological set" `Quick test_repairs_pathological_set;
    Alcotest.test_case "noop when covered" `Quick test_noop_when_covered;
    prop_deterministic_stretch_bounds;
    Alcotest.test_case "star coverage" `Quick test_star_coverage;
  ]
