module Hash_space = Disco_hash.Hash_space
module Groups = Disco_core.Groups
module Name = Disco_core.Name

let hashes n = Name.hash_array (Name.default_array n)

let test_same_group_reflexive_symmetric () =
  let g = Groups.build ~hashes:(hashes 64) ~bits:2 in
  for v = 0 to 63 do
    Alcotest.(check bool) "reflexive" true (Groups.same_group g v v);
    for w = 0 to 63 do
      Alcotest.(check bool) "symmetric" (Groups.same_group g v w) (Groups.same_group g w v)
    done
  done

let test_group_id_matches_prefix () =
  let h = hashes 32 in
  let g = Groups.build ~hashes:h ~bits:3 in
  for v = 0 to 31 do
    Alcotest.(check int) "prefix" (Hash_space.prefix_bits h.(v) ~width:3) (Groups.group_id g v)
  done

let test_members_partition () =
  let n = 128 in
  let g = Groups.build ~hashes:(hashes n) ~bits:2 in
  let total = ref 0 in
  let seen = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    let gid = Groups.group_id g v in
    if not (Hashtbl.mem seen gid) then begin
      Hashtbl.add seen gid ();
      total := !total + Array.length (Groups.members g v)
    end
  done;
  Alcotest.(check int) "members partition all nodes" n !total

let test_members_contain_self () =
  let g = Groups.build ~hashes:(hashes 50) ~bits:2 in
  for v = 0 to 49 do
    Alcotest.(check bool) "self in members" true (Array.mem v (Groups.members g v))
  done

let test_state_entries_exact () =
  let n = 100 in
  let g = Groups.build ~hashes:(hashes n) ~bits:1 in
  for v = 0 to n - 1 do
    Alcotest.(check int) "entries = |G(v)|-1"
      (Array.length (Groups.members g v) - 1)
      (Groups.state_entries g v)
  done

let test_bits_zero_single_group () =
  let n = 20 in
  let g = Groups.build ~hashes:(hashes n) ~bits:0 in
  Alcotest.(check int) "one group" 1 (Groups.group_count g);
  Alcotest.(check int) "everyone" n (Array.length (Groups.members g 0));
  Alcotest.(check bool) "all same" true (Groups.same_group g 3 17)

let test_group_count () =
  let g = Groups.build ~hashes:(hashes 2000) ~bits:3 in
  Alcotest.(check int) "2^3 groups at this size" 8 (Groups.group_count g)

let test_estimates_disagreement () =
  let n = 256 in
  let h = hashes n in
  (* Half the nodes believe n is tiny (coarse groups), half exact. *)
  let estimates = Array.init n (fun v -> if v mod 2 = 0 then 8 else n) in
  let g = Groups.build_with_estimates ~hashes:h ~n_estimates:estimates in
  (* Mutual membership requires both to agree; a coarse-grouped node may
     accept a fine-grouped node that rejects it back. *)
  let asym = ref 0 in
  for v = 0 to n - 1 do
    for w = 0 to n - 1 do
      if Groups.believes g v w && not (Groups.believes g w v) then incr asym
    done
  done;
  Alcotest.(check bool) "asymmetry exists under disagreement" true (!asym > 0);
  for v = 0 to n - 1 do
    for w = 0 to n - 1 do
      Alcotest.(check bool) "same_group still symmetric"
        (Groups.same_group g v w) (Groups.same_group g w v)
    done
  done

let test_storers_subset_members () =
  let n = 200 in
  let h = hashes n in
  let estimates = Array.init n (fun v -> if v mod 3 = 0 then 32 else n) in
  let g = Groups.build_with_estimates ~hashes:h ~n_estimates:estimates in
  for v = 0 to n - 1 do
    let members = Groups.members g v in
    Array.iter
      (fun s -> Alcotest.(check bool) "storer is member" true (Array.mem s members))
      (Groups.storers g v)
  done

let prop_same_prefix_same_group =
  Helpers.qtest "same group iff equal prefixes" ~count:50
    QCheck.(pair (int_range 0 8) (int_range 2 300))
    (fun (bits, n) ->
      let h = hashes n in
      let g = Groups.build ~hashes:h ~bits in
      let ok = ref true in
      for i = 0 to 30 do
        let v = i * 7 mod n and w = (i * 13) + 1 in
        let w = w mod n in
        let expected =
          Hash_space.prefix_bits h.(v) ~width:bits = Hash_space.prefix_bits h.(w) ~width:bits
        in
        if Groups.same_group g v w <> expected then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "same_group reflexive+symmetric" `Quick test_same_group_reflexive_symmetric;
    Alcotest.test_case "group id = hash prefix" `Quick test_group_id_matches_prefix;
    Alcotest.test_case "members partition" `Quick test_members_partition;
    Alcotest.test_case "members contain self" `Quick test_members_contain_self;
    Alcotest.test_case "state entries exact" `Quick test_state_entries_exact;
    Alcotest.test_case "bits=0 single group" `Quick test_bits_zero_single_group;
    Alcotest.test_case "group count" `Quick test_group_count;
    Alcotest.test_case "estimate disagreement" `Quick test_estimates_disagreement;
    Alcotest.test_case "storers subset of members" `Quick test_storers_subset_members;
    prop_same_prefix_same_group;
  ]
