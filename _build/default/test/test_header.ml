module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Core = Disco_core
module Header = Disco_core.Header

let build seed =
  let g = Helpers.random_weighted_graph seed in
  (g, Core.Disco.build ~rng:(Rng.create seed) g)

let test_components_sum () =
  let _, d = build 3 in
  let c =
    Header.first_packet d ~heuristic:Core.Shortcut.No_path_knowledge ~name_bytes:20
      ~src:0 ~dst:7
  in
  Alcotest.(check int) "total = parts"
    (c.Header.name_bytes + c.Header.label_bytes + c.Header.id_list_bytes)
    c.Header.total;
  Alcotest.(check int) "name bytes" 20 c.Header.name_bytes

let test_no_ids_without_path_knowledge () =
  let _, d = build 5 in
  List.iter
    (fun h ->
      let c = Header.first_packet d ~heuristic:h ~name_bytes:20 ~src:1 ~dst:9 in
      Alcotest.(check int) (Core.Shortcut.name h ^ " carries no id list") 0
        c.Header.id_list_bytes)
    [ Core.Shortcut.No_shortcut; Core.Shortcut.To_destination;
      Core.Shortcut.No_path_knowledge ]

let test_path_knowledge_pays_for_ids () =
  let g, d = build 7 in
  let n = Graph.n g in
  let some_positive = ref false in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t then begin
        let c =
          Header.first_packet d ~heuristic:Core.Shortcut.Path_knowledge ~name_bytes:20
            ~src:s ~dst:t
        in
        let route = Core.Disco.route_first ~heuristic:Core.Shortcut.Path_knowledge d ~src:s ~dst:t in
        let bits = Disco_util.Bits.width_for n in
        Alcotest.(check int) "id list sized to route"
          ((List.length route * bits + 7) / 8)
          c.Header.id_list_bytes;
        if c.Header.id_list_bytes > 0 then some_positive := true
      end
    done
  done;
  Alcotest.(check bool) "ids actually cost bytes" true !some_positive

let test_later_packet_no_ids () =
  let _, d = build 9 in
  let c = Header.later_packet d ~name_bytes:16 ~src:0 ~dst:5 in
  Alcotest.(check int) "no ids" 0 c.Header.id_list_bytes;
  Alcotest.(check int) "ipv6-sized name" 16 c.Header.name_bytes

let test_label_bytes_match_route () =
  (* The label encoding in the header equals Address-style packing of the
     actual route. *)
  let g, d = build 11 in
  let route = Core.Disco.route_later d ~src:2 ~dst:8 in
  let addr = Core.Address.make g ~route in
  let c = Header.later_packet d ~name_bytes:20 ~src:2 ~dst:8 in
  Alcotest.(check int) "label bytes" (Core.Address.route_byte_size addr) c.Header.label_bytes

let suite =
  [
    Alcotest.test_case "components sum" `Quick test_components_sum;
    Alcotest.test_case "no ids without path knowledge" `Quick test_no_ids_without_path_knowledge;
    Alcotest.test_case "path knowledge pays for ids" `Quick test_path_knowledge_pays_for_ids;
    Alcotest.test_case "later packet no ids" `Quick test_later_packet_no_ids;
    Alcotest.test_case "label bytes match route" `Quick test_label_bytes_match_route;
  ]
