module Uf = Disco_util.Union_find

let test_initial_singletons () =
  let uf = Uf.create 5 in
  Alcotest.(check int) "count" 5 (Uf.count uf);
  Alcotest.(check bool) "0 != 1" false (Uf.same uf 0 1)

let test_union_merges () =
  let uf = Uf.create 4 in
  Alcotest.(check bool) "new union" true (Uf.union uf 0 1);
  Alcotest.(check bool) "same set" true (Uf.same uf 0 1);
  Alcotest.(check bool) "repeat is no-op" false (Uf.union uf 1 0);
  Alcotest.(check int) "count" 3 (Uf.count uf)

let test_transitivity () =
  let uf = Uf.create 6 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 1 2);
  ignore (Uf.union uf 3 4);
  Alcotest.(check bool) "0 ~ 2" true (Uf.same uf 0 2);
  Alcotest.(check bool) "3 ~ 4" true (Uf.same uf 3 4);
  Alcotest.(check bool) "0 !~ 3" false (Uf.same uf 0 3);
  Alcotest.(check int) "count" 3 (Uf.count uf)

let test_find_canonical () =
  let uf = Uf.create 8 in
  for i = 0 to 6 do
    ignore (Uf.union uf i (i + 1))
  done;
  let root = Uf.find uf 0 in
  for i = 0 to 7 do
    Alcotest.(check int) "one root" root (Uf.find uf i)
  done;
  Alcotest.(check int) "single set" 1 (Uf.count uf)

let prop_count =
  Helpers.qtest "count = n - successful unions" ~count:100
    QCheck.(pair (int_range 2 40) (list (pair (int_range 0 39) (int_range 0 39))))
    (fun (n, unions) ->
      let uf = Uf.create n in
      let successes =
        List.fold_left
          (fun acc (a, b) ->
            let a = a mod n and b = b mod n in
            if Uf.union uf a b then acc + 1 else acc)
          0 unions
      in
      Uf.count uf = n - successes)

let suite =
  [
    Alcotest.test_case "initial singletons" `Quick test_initial_singletons;
    Alcotest.test_case "union merges" `Quick test_union_merges;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    Alcotest.test_case "find canonical" `Quick test_find_canonical;
    prop_count;
  ]
