module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Bvr = Disco_baselines.Bvr
module Seattle = Disco_baselines.Seattle
module Name = Disco_core.Name

(* --- BVR ----------------------------------------------------------------- *)

let bvr_build ?(weighted = true) seed =
  let g =
    if weighted then Helpers.random_weighted_graph seed
    else Helpers.random_graph ~n_min:40 ~n_max:80 seed
  in
  (g, Bvr.build ~rng:(Rng.create seed) g)

let test_bvr_coordinates () =
  let g, bvr = bvr_build 3 in
  let r = Bvr.beacon_count bvr in
  Alcotest.(check bool) "some beacons" true (r >= 1);
  for v = 0 to Graph.n g - 1 do
    let c = Bvr.coordinate bvr v in
    Alcotest.(check int) "coordinate dimension" r (Array.length c);
    Array.iter (fun d -> Alcotest.(check bool) "finite" true (d < infinity)) c
  done

let test_bvr_coordinates_are_distances () =
  let g, bvr = bvr_build 5 in
  (* Coordinate component 0 must equal the true distance to some beacon:
     verify via a node that IS a beacon (distance 0 to itself). *)
  let zeroes = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let c = Bvr.coordinate bvr v in
    if Array.exists (fun d -> d = 0.0) c then incr zeroes
  done;
  Alcotest.(check int) "exactly the beacons have a zero component"
    (Bvr.beacon_count bvr) !zeroes

let test_bvr_routes_valid () =
  let g, bvr = bvr_build 7 in
  let n = Graph.n g in
  let delivered = ref 0 and total = ref 0 in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then begin
        incr total;
        match Bvr.route bvr ~src:s ~dst:t with
        | Some p ->
            incr delivered;
            Helpers.check_path g ~src:s ~dst:t p
        | None -> ()
      end
    done
  done;
  (* Greedy + fallback delivers the vast majority (BVR floods the rest). *)
  Alcotest.(check bool)
    (Printf.sprintf "delivery %d/%d" !delivered !total)
    true
    (float_of_int !delivered /. float_of_int !total > 0.9)

let test_bvr_state_small () =
  (* Sub-linear state needs a graph big enough for 2*sqrt(n log n) << n. *)
  let rng = Rng.create 9 in
  let g = Disco_graph.Gen.gnm ~rng ~n:512 ~m:2048 in
  let bvr = Bvr.build ~rng g in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check bool) "state << n" true (Bvr.state_entries bvr v < Graph.n g / 2)
  done

let test_bvr_self_route () =
  let _, bvr = bvr_build 11 in
  Alcotest.(check bool) "self" true (Bvr.route bvr ~src:4 ~dst:4 = Some [ 4 ])

(* --- SEATTLE -------------------------------------------------------------- *)

let seattle_build seed =
  let g = Helpers.random_weighted_graph seed in
  let names = Name.default_array (Graph.n g) in
  (g, Seattle.build g ~names)

let test_seattle_later_is_shortest () =
  let g, st = seattle_build 13 in
  let oracle = Helpers.floyd g in
  let n = Graph.n g in
  for s = 0 to min 12 (n - 1) do
    for t = 0 to min 12 (n - 1) do
      if s <> t then begin
        let p = Seattle.route_later st ~src:s ~dst:t in
        Helpers.check_path g ~src:s ~dst:t p;
        Alcotest.(check bool) "shortest" true
          (Float.abs (Helpers.path_len g p -. oracle.(s).(t)) < 1e-9)
      end
    done
  done

let test_seattle_first_via_resolver () =
  let g, st = seattle_build 15 in
  let oracle = Helpers.floyd g in
  let n = Graph.n g in
  for s = 0 to min 12 (n - 1) do
    for t = 0 to min 12 (n - 1) do
      if s <> t then begin
        let p = Seattle.route_first st ~src:s ~dst:t in
        Helpers.check_path g ~src:s ~dst:t p;
        let r = Seattle.resolver_of st t in
        let expected =
          if r = s || r = t then oracle.(s).(t) else oracle.(s).(r) +. oracle.(r).(t)
        in
        Alcotest.(check bool) "detour length" true
          (Float.abs (Helpers.path_len g p -. expected) < 1e-9)
      end
    done
  done

let test_seattle_state_linear () =
  let g, st = seattle_build 17 in
  let n = Graph.n g in
  let total_directory = ref 0 in
  for v = 0 to n - 1 do
    let e = Seattle.state_entries st v in
    Alcotest.(check bool) "at least n-1" true (e >= n - 1);
    total_directory := !total_directory + (e - (n - 1))
  done;
  Alcotest.(check int) "directory covers all names" n !total_directory

let test_seattle_first_stretch_unbounded_somewhere () =
  (* The resolver detour must exceed stretch 3 for some pair in a
     latency-weighted graph — SEATTLE's Fig 1 weakness. *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed < 20 do
    let g, st = seattle_build !seed in
    let oracle = Helpers.floyd g in
    let n = Graph.n g in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if s <> t && oracle.(s).(t) > 0.0 then begin
          let p = Seattle.route_first st ~src:s ~dst:t in
          if Helpers.path_len g p /. oracle.(s).(t) > 3.0 then found := true
        end
      done
    done;
    incr seed
  done;
  Alcotest.(check bool) "stretch > 3 exists" true !found

let suite =
  [
    Alcotest.test_case "bvr coordinates" `Quick test_bvr_coordinates;
    Alcotest.test_case "bvr beacon zero components" `Quick test_bvr_coordinates_are_distances;
    Alcotest.test_case "bvr routes valid, high delivery" `Quick test_bvr_routes_valid;
    Alcotest.test_case "bvr state small" `Quick test_bvr_state_small;
    Alcotest.test_case "bvr self route" `Quick test_bvr_self_route;
    Alcotest.test_case "seattle later = shortest" `Quick test_seattle_later_is_shortest;
    Alcotest.test_case "seattle first via resolver" `Quick test_seattle_first_via_resolver;
    Alcotest.test_case "seattle state linear" `Quick test_seattle_state_linear;
    Alcotest.test_case "seattle first stretch unbounded" `Quick test_seattle_first_stretch_unbounded_somewhere;
  ]
