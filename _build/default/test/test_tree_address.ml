module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Landmarks = Disco_core.Landmarks
module Tree_address = Disco_core.Tree_address

let build seed =
  let g = Helpers.random_weighted_graph seed in
  let rng = Rng.create seed in
  let lms = Landmarks.build ~rng ~params:Disco_core.Params.default g in
  (g, lms, Tree_address.build g lms)

let test_labels_unique_per_tree () =
  let g, lms, ta = build 3 in
  let per_tree = Hashtbl.create 8 in
  for v = 0 to Graph.n g - 1 do
    let lm = lms.Landmarks.nearest.(v) in
    let key = (lm, Tree_address.label_of ta v) in
    if Hashtbl.mem per_tree key then Alcotest.failf "duplicate label in tree %d" lm;
    Hashtbl.add per_tree key ()
  done

let test_route_matches_forest () =
  let g, lms, ta = build 5 in
  for v = 0 to Graph.n g - 1 do
    let via_labels = Tree_address.route ta v in
    let via_forest = Landmarks.address_route lms v in
    Alcotest.(check (list int))
      (Printf.sprintf "node %d" v)
      via_forest via_labels
  done

let test_bits_is_log_n () =
  let g, _, ta = build 7 in
  let n = Graph.n g in
  Alcotest.(check bool) "2^bits >= n" true (1 lsl Tree_address.bits ta >= n);
  Alcotest.(check bool) "2^(bits-1) < n" true (1 lsl (Tree_address.bits ta - 1) < n)

let test_byte_size () =
  let _, _, ta = build 9 in
  Alcotest.(check int) "ipv4 + label bytes"
    (4 + ((Tree_address.bits ta + 7) / 8))
    (Tree_address.byte_size ~name_bytes:4 ta)

let test_landmark_root_label () =
  let g, lms, ta = build 11 in
  Array.iter
    (fun lm -> Alcotest.(check int) "root gets block start" 0 (Tree_address.label_of ta lm))
    lms.Landmarks.ids;
  ignore g

let test_ring_topology () =
  (* On a ring the explicit route needs n/2 bits but the tree address stays
     at log2 n — the §4.2 trade-off in the extreme case. *)
  let n = 64 in
  let g = Gen.ring ~n in
  let lms = Landmarks.of_ids g [| 0 |] in
  let ta = Tree_address.build g lms in
  Alcotest.(check int) "log2 n bits" 6 (Tree_address.bits ta);
  for v = 0 to n - 1 do
    let r = Tree_address.route ta v in
    Alcotest.(check int) "route reaches v" v (List.nth r (List.length r - 1))
  done

let suite =
  [
    Alcotest.test_case "labels unique per tree" `Quick test_labels_unique_per_tree;
    Alcotest.test_case "route matches forest" `Quick test_route_matches_forest;
    Alcotest.test_case "bits = ceil log2 n" `Quick test_bits_is_log_n;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "landmark root label" `Quick test_landmark_root_label;
    Alcotest.test_case "ring topology" `Quick test_ring_topology;
  ]
