test/test_sha256.ml: Alcotest Bytes Disco_hash Helpers List Printf QCheck String
