test/test_dynamic.ml: Alcotest Array Disco_core Disco_dynamic Disco_graph Disco_util Helpers List Printf QCheck
