test/test_heap.ml: Alcotest Disco_util Helpers List QCheck
