test/test_stats.ml: Alcotest Array Disco_util Gen Helpers List QCheck
