test/test_address.ml: Alcotest Array Disco_core Disco_graph Disco_util Helpers List
