test/test_bvr_seattle.ml: Alcotest Array Disco_baselines Disco_core Disco_graph Disco_util Float Helpers Printf
