test/test_resolution.ml: Alcotest Array Digest Disco_core Disco_graph Disco_hash Disco_util Helpers Int64 List Printf
