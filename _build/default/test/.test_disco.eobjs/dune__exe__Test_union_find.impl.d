test/test_union_find.ml: Alcotest Disco_util Helpers List QCheck
