test/test_disco_core.ml: Alcotest Array Disco_core Disco_graph Disco_util Helpers List QCheck
