test/test_pathvector.ml: Alcotest Array Disco_graph Disco_pathvector Float Fun Hashtbl Helpers List
