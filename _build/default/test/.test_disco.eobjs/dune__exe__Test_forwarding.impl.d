test/test_forwarding.ml: Alcotest Array Disco_core Disco_graph Disco_util Float Format Helpers List Printf QCheck String
