test/test_gen.ml: Alcotest Array Disco_graph Disco_util Helpers List Printf
