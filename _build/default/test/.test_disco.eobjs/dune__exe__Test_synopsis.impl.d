test/test_synopsis.ml: Alcotest Array Disco_core Disco_graph Disco_synopsis Disco_util Float List Printf
