test/test_graph.ml: Alcotest Disco_graph Helpers List
