test/test_vrr.ml: Alcotest Array Disco_baselines Disco_core Disco_graph Disco_hash Disco_util Fun Helpers List Printf
