test/test_graph_io.ml: Alcotest Disco_graph Filename Float Fun Helpers List String Sys
