test/test_vicinity.ml: Alcotest Array Disco_core Disco_graph Float Fun Helpers List
