test/test_rng.ml: Alcotest Array Disco_util Fun
