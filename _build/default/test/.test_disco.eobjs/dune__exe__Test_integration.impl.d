test/test_integration.ml: Alcotest Array Disco_core Disco_graph Disco_pathvector Disco_util Float Hashtbl Helpers List Printf
