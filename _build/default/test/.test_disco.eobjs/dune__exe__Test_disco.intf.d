test/test_disco.mli:
