test/test_nddisco.ml: Alcotest Array Disco_core Disco_graph Disco_util Float Helpers Printf QCheck
