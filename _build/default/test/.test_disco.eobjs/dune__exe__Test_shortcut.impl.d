test/test_shortcut.ml: Alcotest Array Disco_core Disco_graph Helpers List
