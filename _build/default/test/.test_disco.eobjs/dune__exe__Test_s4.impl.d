test/test_s4.ml: Alcotest Array Disco_baselines Disco_core Disco_graph Disco_util Float Helpers Printf
