test/test_tz_hierarchy.ml: Alcotest Array Disco_baselines Disco_graph Disco_util Float Helpers Printf
