test/test_groups.ml: Alcotest Array Disco_core Disco_hash Hashtbl Helpers QCheck
