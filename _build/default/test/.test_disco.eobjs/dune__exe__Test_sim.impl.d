test/test_sim.ml: Alcotest Disco_graph Disco_sim List
