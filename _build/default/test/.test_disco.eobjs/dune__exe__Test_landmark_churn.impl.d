test/test_landmark_churn.ml: Alcotest Disco_core Disco_util List Printf
