test/test_bits.ml: Alcotest Bytes Disco_util Helpers List Printf QCheck
