test/test_dijkstra.ml: Alcotest Array Disco_graph Float Helpers
