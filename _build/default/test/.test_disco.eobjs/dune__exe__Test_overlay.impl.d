test/test_overlay.ml: Alcotest Array Disco_core Disco_graph Disco_util Helpers Printf
