test/test_params.ml: Alcotest Array Disco_core List Printf
