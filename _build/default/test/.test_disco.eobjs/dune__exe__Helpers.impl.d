test/helpers.ml: Alcotest Array Disco_graph Disco_util List QCheck QCheck_alcotest
