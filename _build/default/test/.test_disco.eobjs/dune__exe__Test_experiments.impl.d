test/test_experiments.ml: Alcotest Array Disco_core Disco_experiments Disco_graph Disco_util Lazy List
