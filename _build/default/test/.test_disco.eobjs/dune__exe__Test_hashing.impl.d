test/test_hashing.ml: Alcotest Array Disco_hash Fun Int64 List Printf
