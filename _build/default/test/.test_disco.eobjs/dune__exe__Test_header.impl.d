test/test_header.ml: Alcotest Disco_core Disco_graph Disco_util Helpers List
