test/test_tree_address.ml: Alcotest Array Disco_core Disco_graph Disco_util Hashtbl Helpers List Printf
