test/test_landmarks.ml: Alcotest Array Disco_core Disco_graph Disco_util Float Fun Helpers List Printf
