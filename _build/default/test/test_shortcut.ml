module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Shortcut = Disco_core.Shortcut
module Vicinity = Disco_core.Vicinity
module Dijkstra = Disco_graph.Dijkstra

(* A 6-cycle: the long way round 0->3 is 0-1-2-3; nodes also know vicinity
   paths, so shortcutting can cut across. *)
let cycle6 () = Gen.ring ~n:6

let knowledge_from_vicinity g k =
  let vic = Vicinity.create g ~k in
  fun u x -> if u = x then Some [ u ] else Vicinity.path vic u x

let test_to_destination_diverts () =
  let g = cycle6 () in
  (* Node 2 knows a direct 2-hop path to 0 across the ring. *)
  let knows u x = if u = 2 && x = 0 then Some [ 2; 1; 0 ] else None in
  let r = Shortcut.to_destination ~graph:g ~knows ~dst:0 [ 4; 3; 2; 1; 0 ] in
  Alcotest.(check (list int)) "prefix kept, divert path appended" [ 4; 3; 2; 1; 0 ] r;
  (* With a genuinely different divert path the tail is replaced. *)
  let knows' u x = if u = 3 && x = 0 then Some [ 3; 4; 5; 0 ] else None in
  let r' = Shortcut.to_destination ~graph:g ~knows:knows' ~dst:0 [ 2; 3; 4; 5; 0 ] in
  Alcotest.(check (list int)) "diverted at 3" [ 2; 3; 4; 5; 0 ] r'

let test_to_destination_noop_when_unknown () =
  let g = cycle6 () in
  let knows _ _ = None in
  let route = [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "unchanged" route
    (Shortcut.to_destination ~graph:g ~knows ~dst:3 route)

let test_to_destination_src_knows () =
  let g = cycle6 () in
  let knows u x = if u = 0 && x = 2 then Some [ 0; 1; 2 ] else None in
  Alcotest.(check (list int)) "replaced from source" [ 0; 1; 2 ]
    (Shortcut.to_destination ~graph:g ~knows ~dst:2 [ 0; 5; 4; 3; 2 ])

let test_up_down_stream_splices () =
  let g = cycle6 () in
  (* Route goes the long way 0->1->2->3; node 0 knows 3 via [0;5;4;3]
     which is NOT shorter (3 hops vs 3 hops) so no splice; but node 1
     knows 3 via [1;2;3]... same. Make a genuinely longer route with a
     repeated detour: 0-1-2-3-4 with dst 4, and node 0 knows 4 via
     [0;5;4] (2 < 4 hops). *)
  let knows u x = if u = 0 && x = 4 then Some [ 0; 5; 4 ] else None in
  let r = Shortcut.up_down_stream ~graph:g ~knows [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "spliced" [ 0; 5; 4 ] r

let test_up_down_stream_prefers_farthest () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  (* Route 0-1-2-5-8; node 0 knows both 2 (not shorter) and 8 via a
     shorter path 0-3-6-7-8 (4 hops = same)... choose a real improvement:
     give 0 a fake shorter knowledge to 5: 0-4? no edge. Use knowledge to
     node 5 via [0;3;4;5] (3 hops) vs route segment 0..5 (3 hops) equal —
     no. Give node 1 knowledge to 8 via [1;4;7;8] (3 hops) vs segment
     1-2-5-8 (3 hops) equal, not shorter. So instead test that equal-length
     knowledge does NOT trigger a splice. *)
  let knows u x = if u = 1 && x = 8 then Some [ 1; 4; 7; 8 ] else None in
  let route = [ 0; 1; 2; 5; 8 ] in
  Alcotest.(check (list int)) "no splice on equal length" route
    (Shortcut.up_down_stream ~graph:g ~knows route)

let test_up_down_stream_result_is_path () =
  let g = Helpers.random_weighted_graph 31 in
  let knows = knowledge_from_vicinity g 6 in
  let sp = Dijkstra.sssp g 0 in
  for dst = 1 to min 10 (Graph.n g - 1) do
    if sp.Dijkstra.dist.(dst) < infinity then begin
      let route =
        Dijkstra.path_of_parents ~parent:(fun v -> sp.Dijkstra.parent.(v)) ~src:0 ~dst
      in
      let r = Shortcut.up_down_stream ~graph:g ~knows route in
      Helpers.check_path g ~src:0 ~dst r;
      Alcotest.(check bool) "no longer than original" true
        (Helpers.path_len g r <= Helpers.path_len g route +. 1e-9)
    end
  done

let test_apply_reverse_choice () =
  let g = cycle6 () in
  let knows _ _ = None in
  let fwd = [ 0; 1; 2; 3 ] in
  let rev = [ 3; 4; 5; 0 ] in
  (* Both 3 hops; forward kept on ties. *)
  Alcotest.(check (list int)) "tie keeps forward" fwd
    (Shortcut.apply ~graph:g ~knows Shortcut.Shorter_fwd_rev ~fwd ~rev:(Some rev));
  (* A strictly shorter reverse route wins and is re-oriented src -> dst:
     forward takes 4 of the 6 ring hops, reverse only 2. *)
  let fwd_long = [ 0; 5; 4; 3; 2 ] in
  let rev_short = [ 2; 1; 0 ] in
  Alcotest.(check (list int)) "shorter reverse wins" [ 0; 1; 2 ]
    (Shortcut.apply ~graph:g ~knows Shortcut.Shorter_fwd_rev ~fwd:fwd_long
       ~rev:(Some rev_short))

let prop_apply_never_longer =
  Helpers.qtest "heuristics never lengthen the route" ~count:25 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let knows = knowledge_from_vicinity g 6 in
      let n = Graph.n g in
      let src = seed mod n and dst = (seed * 17 + 1) mod n in
      if src = dst then true
      else begin
        let sp = Dijkstra.sssp g src in
        if sp.Dijkstra.dist.(dst) = infinity then true
        else begin
          let fwd =
            Dijkstra.path_of_parents ~parent:(fun v -> sp.Dijkstra.parent.(v)) ~src ~dst
          in
          let sp_r = Dijkstra.sssp g dst in
          let rev =
            Dijkstra.path_of_parents
              ~parent:(fun v -> sp_r.Dijkstra.parent.(v))
              ~src:dst ~dst:src
          in
          let base = Helpers.path_len g fwd in
          List.for_all
            (fun h ->
              let r = Shortcut.apply ~graph:g ~knows h ~fwd ~rev:(Some rev) in
              List.hd r = src
              && List.nth r (List.length r - 1) = dst
              && Helpers.path_len g r <= base +. 1e-9)
            Shortcut.all
        end
      end)

let test_names_unique () =
  let names = List.map Shortcut.name Shortcut.all in
  Alcotest.(check int) "6 distinct heuristics" 6 (List.length (List.sort_uniq compare names))

let test_uses_reverse () =
  Alcotest.(check bool) "no-shortcut" false (Shortcut.uses_reverse Shortcut.No_shortcut);
  Alcotest.(check bool) "no-path-knowledge" true
    (Shortcut.uses_reverse Shortcut.No_path_knowledge);
  Alcotest.(check bool) "path-knowledge" true (Shortcut.uses_reverse Shortcut.Path_knowledge);
  Alcotest.(check bool) "up-down-stream" false (Shortcut.uses_reverse Shortcut.Up_down_stream)

let suite =
  [
    Alcotest.test_case "to-destination diverts" `Quick test_to_destination_diverts;
    Alcotest.test_case "to-destination noop" `Quick test_to_destination_noop_when_unknown;
    Alcotest.test_case "to-destination at source" `Quick test_to_destination_src_knows;
    Alcotest.test_case "up-down-stream splices" `Quick test_up_down_stream_splices;
    Alcotest.test_case "no splice on equal length" `Quick test_up_down_stream_prefers_farthest;
    Alcotest.test_case "up-down-stream yields valid path" `Quick test_up_down_stream_result_is_path;
    Alcotest.test_case "apply reverse choice" `Quick test_apply_reverse_choice;
    prop_apply_never_longer;
    Alcotest.test_case "heuristic names unique" `Quick test_names_unique;
    Alcotest.test_case "uses_reverse" `Quick test_uses_reverse;
  ]
