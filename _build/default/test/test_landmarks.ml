module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Landmarks = Disco_core.Landmarks
module Params = Disco_core.Params
module Rng = Disco_util.Rng

let test_select_count () =
  let rng = Rng.create 3 in
  let n = 4096 in
  let flags = Landmarks.select ~rng ~params:Params.default ~n in
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags in
  (* E[count] = sqrt(n log2 n) ~ 222; allow generous slack. *)
  Alcotest.(check bool) (Printf.sprintf "count=%d near 222" count) true
    (count > 140 && count < 320)

let test_select_never_empty () =
  for seed = 1 to 50 do
    let rng = Rng.create seed in
    let flags = Landmarks.select ~rng ~params:Params.default ~n:4 in
    Alcotest.(check bool) "at least one" true (Array.exists Fun.id flags)
  done

let test_assign_nearest () =
  let g = Helpers.random_weighted_graph 9 in
  let n = Graph.n g in
  let ids = [| 0; n / 2 |] in
  let lm = Landmarks.of_ids g ids in
  for v = 0 to n - 1 do
    let d0 = Dijkstra.distance g v 0 in
    let d1 = Dijkstra.distance g v (n / 2) in
    let want = min d0 d1 in
    Alcotest.(check bool)
      (Printf.sprintf "node %d nearest dist" v)
      true
      (Float.abs (lm.Landmarks.dist.(v) -. want) < 1e-9);
    Alcotest.(check bool) "nearest is a landmark" true
      lm.Landmarks.is_landmark.(lm.Landmarks.nearest.(v))
  done

let test_address_route_endpoints () =
  let g = Helpers.random_graph 11 in
  let lm = Landmarks.of_ids g [| 0 |] in
  for v = 0 to Graph.n g - 1 do
    let route = Landmarks.address_route lm v in
    Alcotest.(check int) "starts at landmark" lm.Landmarks.nearest.(v) (List.hd route);
    Alcotest.(check int) "ends at node" v (List.nth route (List.length route - 1));
    Helpers.check_path g ~src:lm.Landmarks.nearest.(v) ~dst:v route;
    Alcotest.(check bool) "length = landmark dist" true
      (Float.abs (Helpers.path_len g route -. lm.Landmarks.dist.(v)) < 1e-9)
  done

let test_landmark_self () =
  let g = Helpers.random_graph 13 in
  let lm = Landmarks.of_ids g [| 2 |] in
  Alcotest.(check int) "own nearest" 2 lm.Landmarks.nearest.(2);
  Alcotest.(check (float 1e-9)) "zero distance" 0.0 lm.Landmarks.dist.(2);
  Alcotest.(check (list int)) "trivial route" [ 2 ] (Landmarks.address_route lm 2)

let test_count () =
  let g = Helpers.random_graph 15 in
  let lm = Landmarks.of_ids g [| 0; 1; 2 |] in
  Alcotest.(check int) "count" 3 (Landmarks.count lm)

let prop_nearest_is_min =
  Helpers.qtest "nearest landmark minimizes distance" ~count:20 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let n = Graph.n g in
      let rng = Rng.create seed in
      let ids =
        Rng.sample_without_replacement rng (1 + (seed mod 4)) n
      in
      let lm = Landmarks.of_ids g ids in
      let ok = ref true in
      for v = 0 to n - 1 do
        Array.iter
          (fun l ->
            if Dijkstra.distance g v l < lm.Landmarks.dist.(v) -. 1e-9 then ok := false)
          ids
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "select count" `Quick test_select_count;
    Alcotest.test_case "select never empty" `Quick test_select_never_empty;
    Alcotest.test_case "assign nearest" `Quick test_assign_nearest;
    Alcotest.test_case "address route endpoints" `Quick test_address_route_endpoints;
    Alcotest.test_case "landmark self" `Quick test_landmark_self;
    Alcotest.test_case "count" `Quick test_count;
    prop_nearest_is_min;
  ]
