module Params = Disco_core.Params
module Name = Disco_core.Name

let test_landmark_probability_bounds () =
  List.iter
    (fun n ->
      let p = Params.landmark_probability Params.default ~n in
      Alcotest.(check bool) (Printf.sprintf "p(%d) in (0,1]" n) true (p > 0.0 && p <= 1.0))
    [ 2; 10; 1024; 1_000_000 ];
  Alcotest.(check (float 1e-9)) "n=1 degenerate" 1.0
    (Params.landmark_probability Params.default ~n:1)

let test_landmark_probability_decreasing () =
  let p n = Params.landmark_probability Params.default ~n in
  Alcotest.(check bool) "decreasing" true (p 100 > p 10_000 && p 10_000 > p 1_000_000)

let test_expected_landmarks_sqrt () =
  (* n * p = sqrt(n log2 n). *)
  let n = 16384 in
  let expected = float_of_int n *. Params.landmark_probability Params.default ~n in
  Alcotest.(check bool)
    (Printf.sprintf "expected %f near 479" expected)
    true
    (expected > 450.0 && expected < 510.0)

let test_vicinity_size () =
  let k = Params.vicinity_size Params.default ~n:16384 in
  Alcotest.(check bool) (Printf.sprintf "k=%d near 479" k) true (k > 450 && k < 510);
  Alcotest.(check int) "n=1" 0 (Params.vicinity_size Params.default ~n:1);
  (* Never exceeds the number of other nodes. *)
  Alcotest.(check bool) "capped" true (Params.vicinity_size Params.default ~n:4 <= 3)

let test_factors_scale () =
  let double = { Params.default with Params.vicinity_factor = 2.0 } in
  Alcotest.(check bool) "factor scales k" true
    (Params.vicinity_size double ~n:4096 > Params.vicinity_size Params.default ~n:4096)

let test_name_defaults () =
  Alcotest.(check string) "default name" "node:17" (Name.default 17);
  let names = Name.default_array 5 in
  Alcotest.(check int) "array" 5 (Array.length names);
  Alcotest.(check bool) "hash differs" true (Name.hash names.(0) <> Name.hash names.(1));
  Alcotest.(check int) "byte size" 7 (Name.byte_size "node:17")

let suite =
  [
    Alcotest.test_case "landmark probability bounds" `Quick test_landmark_probability_bounds;
    Alcotest.test_case "landmark probability decreasing" `Quick test_landmark_probability_decreasing;
    Alcotest.test_case "expected landmarks ~ sqrt(n log n)" `Quick test_expected_landmarks_sqrt;
    Alcotest.test_case "vicinity size" `Quick test_vicinity_size;
    Alcotest.test_case "factors scale" `Quick test_factors_scale;
    Alcotest.test_case "name defaults" `Quick test_name_defaults;
  ]
