module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Nddisco = Disco_core.Nddisco
module Groups = Disco_core.Groups
module Overlay = Disco_core.Overlay

let build ?(n = 200) ?(fingers = 1) seed =
  let g = Helpers.random_graph ~n_min:n ~n_max:(n + 1) seed in
  let nd = Nddisco.build ~rng:(Rng.create seed) g in
  let groups = Groups.of_nddisco nd in
  (nd, groups, Overlay.build ~rng:(Rng.create (seed + 1)) ~fingers nd groups)

let test_neighbors_symmetric () =
  let _, _, ov = build 3 in
  for v = 0 to 199 do
    Array.iter
      (fun w ->
        Alcotest.(check bool)
          (Printf.sprintf "%d <-> %d" v w)
          true
          (Array.mem v (Overlay.neighbors ov w)))
      (Overlay.neighbors ov v)
  done

let test_neighbors_in_group () =
  let _, groups, ov = build 5 in
  for v = 0 to 199 do
    Array.iter
      (fun w ->
        Alcotest.(check bool) "overlay neighbor in same group" true
          (Groups.same_group groups v w))
      (Overlay.neighbors ov v)
  done

let test_full_coverage () =
  let _, _, ov = build 7 in
  let d = Overlay.disseminate ov in
  Alcotest.(check int) "everyone reached" d.Overlay.expected d.Overlay.reached;
  Alcotest.(check bool) "messages flowed" true (d.Overlay.messages > 0);
  Alcotest.(check bool) "hops positive" true (d.Overlay.mean_hops >= 1.0)

let test_more_fingers_fewer_hops () =
  let _, _, ov1 = build ~n:400 ~fingers:1 11 in
  let _, _, ov3 = build ~n:400 ~fingers:3 11 in
  let d1 = Overlay.disseminate ov1 in
  let d3 = Overlay.disseminate ov3 in
  Alcotest.(check bool)
    (Printf.sprintf "mean hops shrink (%.2f -> %.2f)" d1.Overlay.mean_hops d3.Overlay.mean_hops)
    true
    (d3.Overlay.mean_hops < d1.Overlay.mean_hops);
  Alcotest.(check bool) "more fingers, more messages" true
    (d3.Overlay.messages > d1.Overlay.messages)

let test_announcement_reaches_group () =
  let _, groups, ov = build 13 in
  let src = 0 in
  Array.iter
    (fun w ->
      if w <> src then
        Alcotest.(check bool)
          (Printf.sprintf "announcement %d -> %d" src w)
          true
          (Overlay.announcement_reaches ov ~src ~dst:w))
    (Groups.storers groups src)

let test_mean_degree_small () =
  let _, _, ov = build ~fingers:1 17 in
  (* ~2 ring links + ~2 finger ends on average: constant, not O(n). *)
  Alcotest.(check bool)
    (Printf.sprintf "mean degree %.2f < 10" (Overlay.mean_degree ov))
    true
    (Overlay.mean_degree ov < 10.0)

let test_out_fingers_recorded () =
  let _, _, ov = build ~n:300 ~fingers:2 19 in
  let total = ref 0 in
  for v = 0 to 299 do
    let f = Overlay.out_fingers ov v in
    total := !total + Array.length f;
    Array.iter
      (fun w -> Alcotest.(check bool) "finger is neighbor" true (Array.mem w (Overlay.neighbors ov v)))
      f
  done;
  Alcotest.(check bool) "fingers chosen" true (!total > 0)

let suite =
  [
    Alcotest.test_case "neighbors symmetric" `Quick test_neighbors_symmetric;
    Alcotest.test_case "neighbors in group" `Quick test_neighbors_in_group;
    Alcotest.test_case "full coverage" `Quick test_full_coverage;
    Alcotest.test_case "more fingers, fewer hops" `Quick test_more_fingers_fewer_hops;
    Alcotest.test_case "announcement reaches group" `Quick test_announcement_reaches_group;
    Alcotest.test_case "constant mean degree" `Quick test_mean_degree_small;
    Alcotest.test_case "out fingers recorded" `Quick test_out_fingers_recorded;
  ]
