module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Address = Disco_core.Address
module Landmarks = Disco_core.Landmarks

let test_make_and_fields () =
  let g = Gen.ring ~n:6 in
  let addr = Address.make g ~route:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "landmark" 0 addr.Address.landmark;
  Alcotest.(check int) "hops" 3 (Address.hops addr);
  Alcotest.(check int) "destination" 3 (Address.destination addr);
  (* Ring: degree 2 everywhere, 1 bit per hop. *)
  Alcotest.(check int) "label bits" 3 addr.Address.label_bits;
  Alcotest.(check int) "route bytes" 1 (Address.route_byte_size addr);
  Alcotest.(check int) "byte size ipv4" 5 (Address.byte_size ~name_bytes:4 addr)

let test_trivial_route () =
  let g = Gen.ring ~n:4 in
  let addr = Address.make g ~route:[ 2 ] in
  Alcotest.(check int) "no hops" 0 (Address.hops addr);
  Alcotest.(check int) "no bits" 0 addr.Address.label_bits;
  Alcotest.(check int) "route bytes" 0 (Address.route_byte_size addr)

let test_non_path_rejected () =
  let g = Gen.ring ~n:6 in
  Alcotest.check_raises "not a path" (Invalid_argument "Address.make: route is not a path")
    (fun () -> ignore (Address.make g ~route:[ 0; 3 ]))

let test_empty_rejected () =
  let g = Gen.ring ~n:4 in
  Alcotest.check_raises "empty" (Invalid_argument "Address.make: empty route") (fun () ->
      ignore (Address.make g ~route:[]))

let test_decode_roundtrip_ring () =
  let g = Gen.ring ~n:8 in
  let route = [ 1; 2; 3; 4; 5 ] in
  let addr = Address.make g ~route in
  let decoded =
    Address.decode g ~landmark:addr.Address.landmark ~labels:addr.Address.labels
      ~hops:(Address.hops addr)
  in
  Alcotest.(check (list int)) "roundtrip" route decoded

let prop_roundtrip_random =
  Helpers.qtest "encode/decode roundtrip on random shortest paths" ~count:40
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_graph seed in
      let n = Graph.n g in
      let src = seed mod n and dst = (seed * 31) mod n in
      let sp = Dijkstra.sssp g src in
      if sp.Dijkstra.dist.(dst) = infinity then true
      else begin
        let route =
          Dijkstra.path_of_parents ~parent:(fun v -> sp.Dijkstra.parent.(v)) ~src ~dst
        in
        let addr = Address.make g ~route in
        Address.decode g ~landmark:src ~labels:addr.Address.labels
          ~hops:(Address.hops addr)
        = route
      end)

let prop_size_bound =
  Helpers.qtest "bits <= sum of ceil(log2 degree)" ~count:30 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_graph seed in
      let src = seed mod Graph.n g in
      let sp = Dijkstra.sssp g src in
      let ok = ref true in
      for dst = 0 to Graph.n g - 1 do
        if sp.Dijkstra.dist.(dst) < infinity then begin
          let route =
            Dijkstra.path_of_parents ~parent:(fun v -> sp.Dijkstra.parent.(v)) ~src ~dst
          in
          let addr = Address.make g ~route in
          let bound =
            List.fold_left ( + ) 0
              (List.filteri
                 (fun i _ -> i < List.length route - 1)
                 (List.map (fun u -> Disco_util.Bits.width_for (Graph.degree g u)) route))
          in
          if addr.Address.label_bits <> bound then ok := false
        end
      done;
      !ok)

let test_ring_worst_case () =
  (* §4.2: in a ring the explicit route is as long as the network — the
     worst case for address size. 1 bit per hop on a degree-2 cycle. *)
  let n = 64 in
  let g = Gen.ring ~n in
  let lms = Landmarks.of_ids g [| 0 |] in
  let route = Landmarks.address_route lms (n / 2) in
  let addr = Address.make g ~route in
  Alcotest.(check int) "n/2 bits" (n / 2) addr.Address.label_bits;
  Alcotest.(check int) "bytes" (n / 2 / 8) (Address.route_byte_size addr)

let suite =
  [
    Alcotest.test_case "make and fields" `Quick test_make_and_fields;
    Alcotest.test_case "trivial route" `Quick test_trivial_route;
    Alcotest.test_case "non-path rejected" `Quick test_non_path_rejected;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "decode roundtrip ring" `Quick test_decode_roundtrip_ring;
    prop_roundtrip_random;
    prop_size_bound;
    Alcotest.test_case "ring worst case" `Quick test_ring_worst_case;
  ]
