module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Vrr = Disco_baselines.Vrr
module Hash_space = Disco_hash.Hash_space
module Name = Disco_core.Name

let build ?(seed = 3) ?(n = 64) () =
  let g = Helpers.random_graph ~n_min:n ~n_max:(n + 1) seed in
  (g, Vrr.build ~rng:(Rng.create seed) g)

let test_vset_size () =
  let g, v = build () in
  for x = 0 to Graph.n g - 1 do
    let vs = Vrr.vset v x in
    Alcotest.(check bool)
      (Printf.sprintf "vset size %d" (Array.length vs))
      true
      (Array.length vs >= 2 && Array.length vs <= 4);
    Array.iter (fun y -> Alcotest.(check bool) "not self" true (y <> x)) vs
  done

let test_vset_is_ring_neighborhood () =
  let g, v = build ~seed:5 () in
  let n = Graph.n g in
  let vids = Array.init n (fun i -> Hash_space.of_name (Name.default i)) in
  (* Sort all nodes on the virtual ring; each node's vset must be exactly
     its 2 successors and 2 predecessors. *)
  let ring = Array.init n Fun.id in
  Array.sort (fun a b -> Hash_space.compare_unsigned vids.(a) vids.(b)) ring;
  let index_of = Array.make n 0 in
  Array.iteri (fun i x -> index_of.(x) <- i) ring;
  for x = 0 to n - 1 do
    let i = index_of.(x) in
    let expect =
      List.sort_uniq compare
        [
          ring.((i + 1) mod n);
          ring.((i + 2) mod n);
          ring.((i + n - 1) mod n);
          ring.((i + n - 2) mod n);
        ]
    in
    let got = List.sort compare (Array.to_list (Vrr.vset v x)) in
    Alcotest.(check (list int)) (Printf.sprintf "vset of %d" x) expect got
  done

let test_ring_invariant () =
  let _, v = build ~seed:7 () in
  Alcotest.(check bool) "every final pair has a path" true (Vrr.ring_distance_ok v)

let test_routing_succeeds () =
  let g, v = build ~seed:9 ~n:80 () in
  let n = Graph.n g in
  let failures = ref 0 in
  for s = 0 to n - 1 do
    let t = (s + 17) mod n in
    if s <> t then begin
      match Vrr.route v ~src:s ~dst:t with
      | Some p -> Helpers.check_path g ~src:s ~dst:t p
      | None -> incr failures
    end
  done;
  Alcotest.(check int) "no failures" 0 !failures

let test_route_self () =
  let _, v = build ~seed:11 () in
  Alcotest.(check bool) "self" true (Vrr.route v ~src:5 ~dst:5 = Some [ 5 ])

let test_state_entries_floor () =
  let g, v = build ~seed:13 () in
  let st = Vrr.state_entries v in
  for x = 0 to Graph.n g - 1 do
    (* At minimum: pset + the entries of x's own vset paths. *)
    Alcotest.(check bool) "at least pset + own paths" true
      (st.(x) >= Graph.degree g x + Array.length (Vrr.vset v x))
  done

let test_no_fallbacks_on_connected_graph () =
  let _, v = build ~seed:15 ~n:128 () in
  Alcotest.(check int) "greedy setup never fell back" 0 (Vrr.setup_fallbacks v)

let test_join_order_affects_state () =
  (* Same graph, different join orders (different rng): converged totals
     differ — the paper's point about join-order dependence. *)
  let g = Helpers.random_graph ~n_min:64 ~n_max:65 17 in
  let total seed =
    Array.fold_left ( + ) 0 (Vrr.state_entries (Vrr.build ~rng:(Rng.create seed) g))
  in
  Alcotest.(check bool) "join order matters" true (total 1 <> total 2)

let test_state_unbalanced_on_power_law () =
  let rng = Rng.create 19 in
  let g = Gen.internet_as ~rng ~n:256 in
  let v = Vrr.build ~rng g in
  let st = Array.map float_of_int (Vrr.state_entries v) in
  let s = Disco_util.Stats.summarize st in
  Alcotest.(check bool)
    (Printf.sprintf "max %.0f >> mean %.1f" s.Disco_util.Stats.max s.Disco_util.Stats.mean)
    true
    (s.Disco_util.Stats.max > 4.0 *. s.Disco_util.Stats.mean)

let suite =
  [
    Alcotest.test_case "vset size" `Quick test_vset_size;
    Alcotest.test_case "vset = ring neighborhood" `Quick test_vset_is_ring_neighborhood;
    Alcotest.test_case "ring invariant" `Quick test_ring_invariant;
    Alcotest.test_case "routing succeeds" `Quick test_routing_succeeds;
    Alcotest.test_case "route to self" `Quick test_route_self;
    Alcotest.test_case "state entries floor" `Quick test_state_entries_floor;
    Alcotest.test_case "no setup fallbacks" `Quick test_no_fallbacks_on_connected_graph;
    Alcotest.test_case "join order affects state" `Quick test_join_order_affects_state;
    Alcotest.test_case "unbalanced state on power law" `Quick test_state_unbalanced_on_power_law;
  ]
