(* Shared assertions and generators for the test suite. *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng

let check_path graph ~src ~dst path =
  (match path with
  | [] -> Alcotest.fail "empty path"
  | first :: _ ->
      Alcotest.(check int) "path starts at src" src first;
      Alcotest.(check int) "path ends at dst" dst (List.nth path (List.length path - 1)));
  let rec edges = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        if Graph.edge_weight graph u v = None then
          Alcotest.failf "path uses non-edge %d-%d" u v;
        edges rest
  in
  edges path

let path_len graph path = Dijkstra.path_length graph path

(* Small random connected graph for property tests. *)
let random_graph ?(n_min = 8) ?(n_max = 64) seed =
  let rng = Rng.create seed in
  let n = n_min + Rng.int rng (n_max - n_min) in
  Gen.gnm ~rng ~n ~m:(3 * n)

let random_weighted_graph seed =
  let rng = Rng.create seed in
  let n = 16 + Rng.int rng 48 in
  Gen.geometric ~rng ~n ~avg_degree:8.0

(* Brute-force all-pairs shortest distances (Floyd-Warshall) for oracles. *)
let floyd graph =
  let n = Graph.n graph in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.0
  done;
  List.iter
    (fun (u, v, w) ->
      if w < d.(u).(v) then begin
        d.(u).(v) <- w;
        d.(v).(u) <- w
      end)
    (Graph.edges graph);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

let qtest name ?(count = 50) arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary prop)

let seed_arb = QCheck.int_range 1 1_000_000
