module Rng = Disco_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" false (Rng.bits64 a = Rng.bits64 b)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let rng = Rng.create 9 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 15 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_shuffle_is_permutation () =
  let rng = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 19 in
  let s = Rng.sample_without_replacement rng 10 1000 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 0 to 8 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i + 1))
  done;
  Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 1000)) s

let test_sample_dense () =
  let rng = Rng.create 21 in
  let s = Rng.sample_without_replacement rng 9 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check int) "size" 9 (Array.length s);
  for i = 0 to 7 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i + 1))
  done

let test_split_independent () =
  let parent = Rng.create 23 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "streams differ" true (c1 <> p1)

let test_copy_freezes_state () =
  let a = Rng.create 25 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_exponential_positive () =
  let rng = Rng.create 27 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 2.0 >= 0.0)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample dense case" `Quick test_sample_dense;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy freezes state" `Quick test_copy_freezes_state;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
  ]
