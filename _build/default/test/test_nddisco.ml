module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Nddisco = Disco_core.Nddisco
module Vicinity = Disco_core.Vicinity
module Landmarks = Disco_core.Landmarks
module Shortcut = Disco_core.Shortcut

let build seed =
  let g = Helpers.random_weighted_graph seed in
  (g, Nddisco.build ~rng:(Rng.create seed) g)

let test_addresses_decode () =
  let g, nd = build 3 in
  for v = 0 to Graph.n g - 1 do
    let addr = Nddisco.address nd v in
    Alcotest.(check int) "address ends at v" v (Disco_core.Address.destination addr);
    let decoded =
      Disco_core.Address.decode g ~landmark:addr.Disco_core.Address.landmark
        ~labels:addr.Disco_core.Address.labels
        ~hops:(Disco_core.Address.hops addr)
    in
    Alcotest.(check (list int)) "labels decode to route" (Array.to_list addr.Disco_core.Address.route) decoded
  done

let test_routes_are_paths () =
  let g, nd = build 5 in
  let n = Graph.n g in
  for s = 0 to min 12 (n - 1) do
    for t = 0 to min 12 (n - 1) do
      if s <> t then begin
        Helpers.check_path g ~src:s ~dst:t (Nddisco.route_first nd ~src:s ~dst:t);
        Helpers.check_path g ~src:s ~dst:t (Nddisco.route_later nd ~src:s ~dst:t)
      end
    done
  done

(* Theorem precondition: every node has a landmark in its vicinity. *)
let landmark_in_every_vicinity (nd : Nddisco.t) =
  let n = Graph.n nd.Nddisco.graph in
  let ok = ref true in
  for v = 0 to n - 1 do
    if not nd.Nddisco.landmarks.Landmarks.is_landmark.(v) then begin
      let vw = Vicinity.view nd.Nddisco.vicinity v in
      if
        not
          (Array.exists
             (fun w -> nd.Nddisco.landmarks.Landmarks.is_landmark.(w))
             vw.Vicinity.members)
      then ok := false
    end
  done;
  !ok

let stretch_bound_holds g route_fn bound =
  let n = Graph.n g in
  let ws = Dijkstra.make_workspace g in
  let worst = ref 0.0 in
  for s = 0 to min 15 (n - 1) do
    let sp = Dijkstra.sssp ~ws g s in
    for t = 0 to n - 1 do
      if t <> s && sp.Dijkstra.dist.(t) < infinity && sp.Dijkstra.dist.(t) > 0.0 then begin
        let r = route_fn ~src:s ~dst:t in
        let stretch = Helpers.path_len g r /. sp.Dijkstra.dist.(t) in
        if stretch > !worst then worst := stretch
      end
    done
  done;
  !worst <= bound +. 1e-9

let prop_first_packet_stretch_5 =
  Helpers.qtest "first packet stretch <= 5 (given landmark in vicinity)" ~count:15
    Helpers.seed_arb (fun seed ->
      let g, nd = build seed in
      QCheck.assume (landmark_in_every_vicinity nd);
      stretch_bound_holds g
        (fun ~src ~dst -> Nddisco.route_first ~heuristic:Shortcut.No_shortcut nd ~src ~dst)
        5.0)

let prop_later_packet_stretch_3 =
  Helpers.qtest "later packets stretch <= 3 (given landmark in vicinity)" ~count:15
    Helpers.seed_arb (fun seed ->
      let g, nd = build seed in
      QCheck.assume (landmark_in_every_vicinity nd);
      stretch_bound_holds g
        (fun ~src ~dst -> Nddisco.route_later ~heuristic:Shortcut.No_shortcut nd ~src ~dst)
        3.0)

let test_handshake_gives_shortest () =
  let g, nd = build 7 in
  let n = Graph.n g in
  let ws = Dijkstra.make_workspace g in
  for t = 0 to min 10 (n - 1) do
    let vw = Vicinity.view nd.Nddisco.vicinity t in
    Array.iter
      (fun s ->
        (* s in V(t): later packets follow the exact shortest path. *)
        let r = Nddisco.route_later nd ~src:s ~dst:t in
        let sp = Dijkstra.sssp ~ws g s in
        Alcotest.(check bool)
          (Printf.sprintf "s=%d t=%d shortest" s t)
          true
          (Float.abs (Helpers.path_len g r -. sp.Dijkstra.dist.(t)) < 1e-9))
      vw.Vicinity.members
  done

let test_landmark_destination_shortest () =
  let g, nd = build 9 in
  let lm = nd.Nddisco.landmarks.Landmarks.ids.(0) in
  let ws = Dijkstra.make_workspace g in
  for s = 0 to min 10 (Graph.n g - 1) do
    if s <> lm then begin
      let r = Nddisco.route_first nd ~src:s ~dst:lm in
      let sp = Dijkstra.sssp ~ws g s in
      Alcotest.(check bool) "landmark route shortest" true
        (Float.abs (Helpers.path_len g r -. sp.Dijkstra.dist.(lm)) < 1e-9)
    end
  done

let test_knows () =
  let _, nd = build 11 in
  let lm = nd.Nddisco.landmarks.Landmarks.ids.(0) in
  Alcotest.(check bool) "knows landmark" true (Nddisco.knows nd 0 lm <> None);
  Alcotest.(check bool) "knows self" true (Nddisco.knows nd 3 3 = Some [ 3 ])

let test_state_entries () =
  let g, nd = build 13 in
  let d = Nddisco.state_entries ~resolution_entries:7 nd 0 in
  Alcotest.(check int) "vicinity k" (Vicinity.k nd.Nddisco.vicinity) d.Nddisco.vicinity_entries;
  Alcotest.(check int) "landmarks" (Landmarks.count nd.Nddisco.landmarks) d.Nddisco.landmark_entries;
  Alcotest.(check int) "resolution" 7 d.Nddisco.resolution_entries;
  Alcotest.(check bool) "labels <= degree" true (d.Nddisco.label_mappings <= Graph.degree g 0);
  Alcotest.(check int) "total sums"
    (d.Nddisco.vicinity_entries + d.Nddisco.landmark_entries + d.Nddisco.label_mappings + 7)
    (Nddisco.total_entries d)

let test_custom_landmarks () =
  let g = Helpers.random_graph 15 in
  let nd = Nddisco.build ~landmark_ids:[| 0; 1 |] ~rng:(Rng.create 1) g in
  Alcotest.(check int) "two landmarks" 2 (Landmarks.count nd.Nddisco.landmarks)

let test_trivial_route () =
  let _, nd = build 17 in
  Alcotest.(check (list int)) "self route" [ 4 ] (Nddisco.route_first nd ~src:4 ~dst:4)

let suite =
  [
    Alcotest.test_case "addresses decode" `Quick test_addresses_decode;
    Alcotest.test_case "routes are paths" `Quick test_routes_are_paths;
    prop_first_packet_stretch_5;
    prop_later_packet_stretch_3;
    Alcotest.test_case "handshake gives shortest" `Quick test_handshake_gives_shortest;
    Alcotest.test_case "landmark destination shortest" `Quick test_landmark_destination_shortest;
    Alcotest.test_case "knows" `Quick test_knows;
    Alcotest.test_case "state entries" `Quick test_state_entries;
    Alcotest.test_case "custom landmarks" `Quick test_custom_landmarks;
    Alcotest.test_case "trivial route" `Quick test_trivial_route;
  ]
