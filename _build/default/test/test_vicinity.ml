module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Vicinity = Disco_core.Vicinity

let test_members_are_k_closest () =
  let g = Helpers.random_weighted_graph 7 in
  let k = 6 in
  let vic = Vicinity.create g ~k in
  let n = Graph.n g in
  for v = 0 to n - 1 do
    let vw = Vicinity.view vic v in
    Alcotest.(check int) "size" (min k (n - 1)) (Array.length vw.Vicinity.members);
    let sp = Dijkstra.sssp g v in
    let dists =
      List.init n Fun.id
      |> List.filter (fun t -> t <> v)
      |> List.map (fun t -> sp.Dijkstra.dist.(t))
      |> List.sort compare
    in
    let got = Array.to_list vw.Vicinity.dists |> List.sort compare in
    List.iteri
      (fun i d ->
        Alcotest.(check bool) "distance multiset" true
          (Float.abs (d -. List.nth dists i) < 1e-9))
      got
  done

let test_excludes_owner () =
  let g = Helpers.random_graph 9 in
  let vic = Vicinity.create g ~k:5 in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check bool) "not own member" false (Vicinity.mem vic v v)
  done

let test_paths_valid_and_shortest () =
  let g = Helpers.random_weighted_graph 11 in
  let vic = Vicinity.create g ~k:8 in
  for v = 0 to min 9 (Graph.n g - 1) do
    let vw = Vicinity.view vic v in
    Array.iteri
      (fun i w ->
        match Vicinity.path vic v w with
        | None -> Alcotest.fail "member has no path"
        | Some p ->
            Helpers.check_path g ~src:v ~dst:w p;
            Alcotest.(check bool) "path length = dist" true
              (Float.abs (Helpers.path_len g p -. vw.Vicinity.dists.(i)) < 1e-9))
      vw.Vicinity.members
  done

let test_mem_dist_path_agree () =
  let g = Helpers.random_graph 13 in
  let vic = Vicinity.create g ~k:4 in
  for v = 0 to Graph.n g - 1 do
    for w = 0 to Graph.n g - 1 do
      let m = Vicinity.mem vic v w in
      Alcotest.(check bool) "dist agrees" m (Vicinity.dist vic v w <> None);
      Alcotest.(check bool) "path agrees" m (Vicinity.path vic v w <> None)
    done
  done

let test_radius () =
  let g = Helpers.random_weighted_graph 15 in
  let vic = Vicinity.create g ~k:5 in
  let vw = Vicinity.view vic 0 in
  let max_d = Array.fold_left max 0.0 vw.Vicinity.dists in
  Alcotest.(check (float 1e-9)) "radius = max member dist" max_d vw.Vicinity.radius

let test_first_hop_count () =
  let g = Helpers.random_graph 17 in
  let vic = Vicinity.create g ~k:8 in
  for v = 0 to Graph.n g - 1 do
    let fh = Vicinity.first_hop_count vic v in
    Alcotest.(check bool) "at least one" true (fh >= 1);
    Alcotest.(check bool) "at most degree" true (fh <= Graph.degree g v)
  done

let test_cache () =
  let g = Helpers.random_graph 19 in
  let vic = Vicinity.create g ~k:3 in
  Alcotest.(check int) "empty cache" 0 (Vicinity.cached_count vic);
  ignore (Vicinity.view vic 0);
  Alcotest.(check int) "one cached" 1 (Vicinity.cached_count vic);
  Vicinity.precompute_all vic;
  Alcotest.(check int) "all cached" (Graph.n g) (Vicinity.cached_count vic)

let test_k_zero () =
  let g = Helpers.random_graph 21 in
  let vic = Vicinity.create g ~k:0 in
  let vw = Vicinity.view vic 0 in
  Alcotest.(check int) "no members" 0 (Array.length vw.Vicinity.members)

let prop_vicinity_asymmetric_ok =
  Helpers.qtest "membership need not be symmetric but dist is" ~count:20
    Helpers.seed_arb (fun seed ->
      let g = Helpers.random_weighted_graph seed in
      let vic = Vicinity.create g ~k:5 in
      let ok = ref true in
      for v = 0 to min 9 (Graph.n g - 1) do
        for w = 0 to min 9 (Graph.n g - 1) do
          match (Vicinity.dist vic v w, Vicinity.dist vic w v) with
          | Some a, Some b -> if Float.abs (a -. b) > 1e-9 then ok := false
          | _ -> ()
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "members are k closest" `Quick test_members_are_k_closest;
    Alcotest.test_case "excludes owner" `Quick test_excludes_owner;
    Alcotest.test_case "paths valid and shortest" `Quick test_paths_valid_and_shortest;
    Alcotest.test_case "mem/dist/path agree" `Quick test_mem_dist_path_agree;
    Alcotest.test_case "radius" `Quick test_radius;
    Alcotest.test_case "first hop count" `Quick test_first_hop_count;
    Alcotest.test_case "cache" `Quick test_cache;
    Alcotest.test_case "k = 0" `Quick test_k_zero;
    prop_vicinity_asymmetric_ok;
  ]
