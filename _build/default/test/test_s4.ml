module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module S4 = Disco_baselines.S4
module Core = Disco_core

let build ?landmark_ids seed =
  let g = Helpers.random_weighted_graph seed in
  (g, S4.build ?landmark_ids ~rng:(Rng.create seed) g)

let test_cluster_definition () =
  (* Brute-force check: w in cluster(v) iff d(v,w) < d(w, l_w). *)
  let g, s4 = build 3 in
  let n = Graph.n g in
  let oracle = Helpers.floyd g in
  for v = 0 to n - 1 do
    for w = 0 to n - 1 do
      if v <> w then begin
        let expected = oracle.(v).(w) < S4.radius s4 w in
        Alcotest.(check bool)
          (Printf.sprintf "cluster v=%d w=%d" v w)
          expected
          (S4.in_cluster s4 ~node:v ~target:w)
      end
    done
  done

let test_cluster_sizes_match_membership () =
  let g, s4 = build 5 in
  let n = Graph.n g in
  let sizes = S4.cluster_sizes s4 in
  for v = 0 to n - 1 do
    let count = ref 0 in
    for w = 0 to n - 1 do
      if v <> w && S4.in_cluster s4 ~node:v ~target:w then incr count
    done;
    Alcotest.(check int) (Printf.sprintf "size at %d" v) !count sizes.(v)
  done

let test_star_of_stars_worst_case () =
  (* Footnote 6: with random landmarks on the star-of-stars, the root's
     cluster is Theta(n) while Disco's vicinity state stays fixed at k. *)
  let branch = 16 in
  let g = Gen.star_of_stars ~branch in
  let n = Graph.n g in
  (* Pick one grandchild as the only landmark: every other grandchild has
     d(g, l_g) = 8 > 3 = d(root, g), so the root clusters ~all of them. *)
  let grandchild = 1 + branch in
  let s4 = S4.build ~landmark_ids:[| grandchild |] ~rng:(Rng.create 1) g in
  let sizes = S4.cluster_sizes s4 in
  Alcotest.(check bool)
    (Printf.sprintf "root cluster %d ~ n=%d" sizes.(0) n)
    true
    (sizes.(0) > (2 * n) / 3);
  (* Disco on the same topology and landmark set: state bounded by k. *)
  let nd =
    Core.Nddisco.build ~landmark_ids:[| grandchild |] ~rng:(Rng.create 1) g
  in
  let k = Core.Vicinity.k nd.Core.Nddisco.vicinity in
  let det = Core.Nddisco.state_entries nd 0 in
  Alcotest.(check int) "Disco root vicinity fixed at k" k det.Core.Nddisco.vicinity_entries;
  Alcotest.(check bool) "Disco root state below S4's" true
    (det.Core.Nddisco.vicinity_entries < sizes.(0))

let test_routes_are_paths () =
  let g, s4 = build 7 in
  let n = Graph.n g in
  for s = 0 to min 12 (n - 1) do
    for t = 0 to min 12 (n - 1) do
      if s <> t then begin
        Helpers.check_path g ~src:s ~dst:t (S4.route_first s4 ~src:s ~dst:t);
        Helpers.check_path g ~src:s ~dst:t (S4.route_later s4 ~src:s ~dst:t)
      end
    done
  done

let test_later_stretch_3 () =
  (* TZ: routing via l_t with cluster shortcutting has stretch <= 3,
     unconditionally (unlike Disco's w.h.p. bound). *)
  let g, s4 = build 9 in
  let n = Graph.n g in
  let ws = Dijkstra.make_workspace g in
  for s = 0 to min 20 (n - 1) do
    let sp = Dijkstra.sssp ~ws g s in
    for t = 0 to n - 1 do
      if s <> t && sp.Dijkstra.dist.(t) > 0.0 then begin
        let r = S4.route_later s4 ~src:s ~dst:t in
        let stretch = Helpers.path_len g r /. sp.Dijkstra.dist.(t) in
        if stretch > 3.0 +. 1e-9 then
          Alcotest.failf "stretch %.3f > 3 for %d->%d" stretch s t
      end
    done
  done

let test_first_packet_can_exceed_3 () =
  (* The resolution detour breaks the bound on at least some pair in a
     latency-weighted graph (this is Fig 3's S4-First tail). Scan seeds:
     at least one must exhibit stretch > 3. *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed < 30 do
    let g, s4 = build !seed in
    let n = Graph.n g in
    let ws = Dijkstra.make_workspace g in
    for s = 0 to n - 1 do
      let sp = Dijkstra.sssp ~ws g s in
      for t = 0 to n - 1 do
        if s <> t && sp.Dijkstra.dist.(t) > 0.0 then begin
          let r = S4.route_first s4 ~src:s ~dst:t in
          if Helpers.path_len g r /. sp.Dijkstra.dist.(t) > 3.0 then found := true
        end
      done
    done;
    incr seed
  done;
  Alcotest.(check bool) "first-packet stretch exceeds 3 somewhere" true !found

let test_cluster_path_is_shortest () =
  let g, s4 = build 11 in
  let n = Graph.n g in
  let oracle = Helpers.floyd g in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t && S4.in_cluster s4 ~node:s ~target:t then begin
        match S4.knows s4 s t with
        | None -> Alcotest.fail "in_cluster but no path"
        | Some p ->
            Helpers.check_path g ~src:s ~dst:t p;
            Alcotest.(check bool) "path is shortest" true
              (Float.abs (Helpers.path_len g p -. oracle.(s).(t)) < 1e-9)
      end
    done
  done

let test_state_entries () =
  let g, s4 = build 13 in
  let sizes = S4.cluster_sizes s4 in
  let loads = S4.resolution_loads s4 in
  Alcotest.(check int) "resolution loads sum to n" (Graph.n g)
    (Array.fold_left ( + ) 0 loads);
  for v = 0 to Graph.n g - 1 do
    let e = S4.state_entries s4 ~cluster_sizes:sizes ~resolution_loads:loads v in
    Alcotest.(check bool) "at least cluster + landmarks" true
      (e >= sizes.(v) + Core.Landmarks.count (S4.landmarks s4))
  done

let suite =
  [
    Alcotest.test_case "cluster definition" `Quick test_cluster_definition;
    Alcotest.test_case "cluster sizes" `Quick test_cluster_sizes_match_membership;
    Alcotest.test_case "star-of-stars worst case (footnote 6)" `Quick test_star_of_stars_worst_case;
    Alcotest.test_case "routes are paths" `Quick test_routes_are_paths;
    Alcotest.test_case "later packets stretch <= 3" `Quick test_later_stretch_3;
    Alcotest.test_case "first packet can exceed 3" `Quick test_first_packet_can_exceed_3;
    Alcotest.test_case "cluster paths shortest" `Quick test_cluster_path_is_shortest;
    Alcotest.test_case "state entries" `Quick test_state_entries;
  ]
