module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Tz = Disco_baselines.Tz_hierarchy

let build ?(k = 2) seed =
  let g = Helpers.random_weighted_graph seed in
  (g, Tz.build ~rng:(Rng.create seed) ~k g)

let test_levels_nested () =
  let g, tz = build ~k:3 5 in
  let sizes = Tz.level_sizes tz in
  Alcotest.(check int) "A_0 is everyone" (Graph.n g) sizes.(0);
  for i = 0 to Array.length sizes - 2 do
    Alcotest.(check bool) "nested" true (sizes.(i) >= sizes.(i + 1))
  done;
  Alcotest.(check bool) "top level nonempty" true (sizes.(Array.length sizes - 1) >= 1)

let test_k1_is_shortest_path () =
  (* One level: every node's bunch is the whole graph, routes are exact. *)
  let g, tz = build ~k:1 7 in
  let oracle = Helpers.floyd g in
  let n = Graph.n g in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t then
        Alcotest.(check bool)
          (Printf.sprintf "%d-%d exact" s t)
          true
          (Float.abs (Tz.route_length tz ~src:s ~dst:t -. oracle.(s).(t)) < 1e-9)
    done
  done;
  for v = 0 to n - 1 do
    Alcotest.(check int) "full state" (n - 1 + 1) (Tz.state tz v)
  done

let stretch_ok k seed =
  let g = Helpers.random_weighted_graph seed in
  let tz = Tz.build ~rng:(Rng.create seed) ~k g in
  let oracle = Helpers.floyd g in
  let n = Graph.n g in
  let ok = ref true in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && oracle.(s).(t) < infinity then begin
        let r = Tz.route_length tz ~src:s ~dst:t in
        if r < oracle.(s).(t) -. 1e-9 then ok := false (* impossible: shorter than shortest *)
        ;
        if r > (Tz.stretch_bound tz *. oracle.(s).(t)) +. 1e-9 then ok := false
      end
    done
  done;
  !ok

let prop_stretch_k2 =
  Helpers.qtest "k=2 stretch <= 3" ~count:15 Helpers.seed_arb (fun seed -> stretch_ok 2 seed)

let prop_stretch_k3 =
  Helpers.qtest "k=3 stretch <= 5" ~count:15 Helpers.seed_arb (fun seed -> stretch_ok 3 seed)

let prop_stretch_k4 =
  Helpers.qtest "k=4 stretch <= 7" ~count:10 Helpers.seed_arb (fun seed -> stretch_ok 4 seed)

let test_state_shrinks_with_k () =
  (* On a larger graph, mean state must drop as k grows (the tradeoff). *)
  let rng = Rng.create 11 in
  let g = Disco_graph.Gen.gnm ~rng ~n:512 ~m:2048 in
  let mean_state k =
    let tz = Tz.build ~rng:(Rng.create 13) ~k g in
    let total = ref 0 in
    for v = 0 to Graph.n g - 1 do
      total := !total + Tz.state tz v
    done;
    float_of_int !total /. 512.0
  in
  let s2 = mean_state 2 and s3 = mean_state 3 in
  Alcotest.(check bool)
    (Printf.sprintf "state(k=3)=%.0f < state(k=2)=%.0f" s3 s2)
    true (s3 < s2)

let test_bunch_definition () =
  (* w in B(v) iff d(v,w) < d(v, A_{i(w)+1}) for w's level — spot-check
     with the oracle on a small graph. *)
  let g, tz = build ~k:2 15 in
  let oracle = Helpers.floyd g in
  let n = Graph.n g in
  for v = 0 to min 14 (n - 1) do
    for w = 0 to min 14 (n - 1) do
      if v <> w && Tz.in_bunch tz ~node:v ~target:w then
        (* Being in the bunch means the stored distance is the true one;
           verified indirectly: route via w's own bunch entry is >= true
           shortest and route_length never undercuts (checked above). *)
        Alcotest.(check bool) "bunch dist sanity" true (oracle.(v).(w) < infinity)
    done
  done

let suite =
  [
    Alcotest.test_case "levels nested" `Quick test_levels_nested;
    Alcotest.test_case "k=1 is shortest path" `Quick test_k1_is_shortest_path;
    prop_stretch_k2;
    prop_stretch_k3;
    prop_stretch_k4;
    Alcotest.test_case "state shrinks with k" `Quick test_state_shrinks_with_k;
    Alcotest.test_case "bunch definition" `Quick test_bunch_definition;
  ]
