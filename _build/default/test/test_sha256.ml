module Sha256 = Disco_hash.Sha256

(* FIPS 180-4 / NIST CAVP test vectors. *)
let vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_vectors () =
  List.iter
    (fun (msg, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256(%S)" (String.sub msg 0 (min 16 (String.length msg))))
        expected (Sha256.hex msg))
    vectors

let test_million_a () =
  let msg = String.make 1_000_000 'a' in
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex msg)

let test_digest_length () =
  Alcotest.(check int) "32 bytes" 32 (String.length (Sha256.digest "anything"))

let test_block_boundaries () =
  (* Padding edge cases: lengths 55, 56, 63, 64, 65 straddle the block and
     length-field boundaries. Cross-check against a second computation of
     the same input to guard determinism, and distinctness across sizes. *)
  let digests =
    List.map (fun len -> Sha256.digest (String.make len 'x')) [ 55; 56; 63; 64; 65 ]
  in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length distinct);
  Alcotest.(check string) "deterministic"
    (Sha256.hex (String.make 56 'x'))
    (Sha256.hex (String.make 56 'x'))

let test_digest_bytes_matches_string () =
  let s = "flat names" in
  Alcotest.(check string) "bytes = string"
    (Sha256.digest s)
    (Sha256.digest_bytes (Bytes.of_string s))

let prop_avalanche =
  Helpers.qtest "different inputs, different digests" ~count:100
    QCheck.(pair small_string small_string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let suite =
  [
    Alcotest.test_case "FIPS vectors" `Quick test_vectors;
    Alcotest.test_case "million 'a'" `Slow test_million_a;
    Alcotest.test_case "digest length" `Quick test_digest_length;
    Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
    Alcotest.test_case "digest_bytes" `Quick test_digest_bytes_matches_string;
    prop_avalanche;
  ]
