module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng

let test_gnm_shape () =
  let rng = Rng.create 1 in
  let g = Gen.gnm ~rng ~n:200 ~m:800 in
  Alcotest.(check int) "n" 200 (Graph.n g);
  Alcotest.(check bool) "m >= requested (stitching may add)" true (Graph.m g >= 800);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  List.iter
    (fun (_, _, w) -> Alcotest.(check (float 1e-9)) "unit weight" 1.0 w)
    (Graph.edges g)

let test_gnm_deterministic () =
  let g1 = Gen.gnm ~rng:(Rng.create 5) ~n:100 ~m:300 in
  let g2 = Gen.gnm ~rng:(Rng.create 5) ~n:100 ~m:300 in
  Alcotest.(check bool) "same edges" true (Graph.edges g1 = Graph.edges g2)

let test_geometric () =
  let rng = Rng.create 2 in
  let g = Gen.geometric ~rng ~n:300 ~avg_degree:8.0 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  let degrees = Array.init 300 (Graph.degree g) in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 degrees) /. 300.0
  in
  Alcotest.(check bool) "roughly avg degree 8" true (mean > 4.0 && mean < 14.0);
  List.iter
    (fun (_, _, w) ->
      Alcotest.(check bool) "euclidean weight in (0, sqrt 2]" true (w > 0.0 && w <= sqrt 2.0))
    (Graph.edges g)

let test_ring () =
  let g = Gen.ring ~n:10 in
  Alcotest.(check int) "m" 10 (Graph.m g);
  for v = 0 to 9 do
    Alcotest.(check int) "degree 2" 2 (Graph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_grid () =
  let g = Gen.grid ~rows:4 ~cols:5 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check int) "m" ((3 * 5) + (4 * 4)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_star_of_stars () =
  let g = Gen.star_of_stars ~branch:5 in
  Alcotest.(check int) "n" 31 (Graph.n g);
  Alcotest.(check int) "root degree" 5 (Graph.degree g 0);
  (* Grandchildren hang off children at distance 2. *)
  Alcotest.(check (option (float 1e-9))) "child link" (Some 1.0) (Graph.edge_weight g 0 1);
  Alcotest.(check (option (float 1e-9))) "grandchild link" (Some 2.0) (Graph.edge_weight g 1 6)

let test_power_law_tail () =
  let rng = Rng.create 3 in
  let g = Gen.power_law ~rng ~n:1000 ~attach:2 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  let max_deg = Graph.max_degree g in
  (* Preferential attachment must grow hubs far above the mean (~4). *)
  Alcotest.(check bool) (Printf.sprintf "heavy tail (max=%d)" max_deg) true (max_deg > 25)

let test_internet_kinds () =
  List.iter
    (fun kind ->
      let rng = Rng.create 4 in
      let g = Gen.by_kind ~rng kind ~n:500 in
      Alcotest.(check int) (Gen.kind_name kind ^ " n") 500 (Graph.n g);
      Alcotest.(check bool) (Gen.kind_name kind ^ " connected") true (Graph.is_connected g))
    [ Gen.As_level; Gen.Router_level; Gen.Gnm; Gen.Geometric ]

let test_kind_names_distinct () =
  let names = List.map Gen.kind_name [ Gen.As_level; Gen.Router_level; Gen.Gnm; Gen.Geometric ] in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare names))

let prop_generators_connected =
  Helpers.qtest "all generators produce connected graphs" ~count:20 Helpers.seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let n = 32 + (seed mod 100) in
      Graph.is_connected (Gen.gnm ~rng ~n ~m:(2 * n))
      && Graph.is_connected (Gen.geometric ~rng ~n ~avg_degree:6.0)
      && Graph.is_connected (Gen.power_law ~rng ~n ~attach:2))

let suite =
  [
    Alcotest.test_case "gnm shape" `Quick test_gnm_shape;
    Alcotest.test_case "gnm deterministic" `Quick test_gnm_deterministic;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "star of stars" `Quick test_star_of_stars;
    Alcotest.test_case "power law tail" `Quick test_power_law_tail;
    Alcotest.test_case "internet kinds" `Quick test_internet_kinds;
    Alcotest.test_case "kind names distinct" `Quick test_kind_names_distinct;
    prop_generators_connected;
  ]
