module Rng = Disco_util.Rng
module Churn = Disco_core.Landmark_churn
module Params = Disco_core.Params

let create ?(hysteresis = true) ?(n0 = 1024) seed =
  Churn.create ~rng:(Rng.create seed) ~params:Params.default ~hysteresis ~n0

let test_initial_population () =
  let c = create 3 in
  Alcotest.(check int) "population" 1024 (Churn.population c);
  let lm = Churn.landmark_count c in
  (* E[landmarks] = sqrt(n log2 n) ~ 101. *)
  Alcotest.(check bool) (Printf.sprintf "count %d plausible" lm) true (lm > 40 && lm < 200)

let test_no_flips_within_factor_2 () =
  let c = create 5 in
  let flips = Churn.observe c ~n:1500 in
  (* Existing nodes are within 2x of their reference; only the ~476 new
     arrivals draw coins (which is not a status flip). *)
  Alcotest.(check int) "no flips" 0 flips;
  Alcotest.(check int) "grown" 1500 (Churn.population c)

let test_flips_after_doubling () =
  let c = create 7 in
  let flips = Churn.observe c ~n:2048 in
  Alcotest.(check bool) (Printf.sprintf "some flips (%d)" flips) true (flips > 0)

let test_hysteresis_reduces_churn () =
  (* Same growth trajectory under both policies: +10% per step for 20
     steps (about 7x total growth). *)
  let trajectory =
    let rec go acc n k = if k = 0 then List.rev acc else go ((n * 11 / 10) :: acc) (n * 11 / 10) (k - 1) in
    go [] 1024 20
  in
  let run hysteresis =
    let c = create ~hysteresis 9 in
    List.iter (fun n -> ignore (Churn.observe c ~n)) trajectory;
    Churn.total_flips c
  in
  let lazy_flips = run true and eager_flips = run false in
  Alcotest.(check bool)
    (Printf.sprintf "hysteresis %d < naive %d flips" lazy_flips eager_flips)
    true (lazy_flips < eager_flips)

let test_shrink () =
  let c = create 11 in
  ignore (Churn.observe c ~n:512);
  Alcotest.(check int) "shrunk" 512 (Churn.population c)

let test_landmark_rate_tracks_n () =
  let c = create 13 in
  ignore (Churn.observe c ~n:8192);
  ignore (Churn.observe c ~n:8192);
  let lm = Churn.landmark_count c in
  (* sqrt(8192 * 13) ~ 326. *)
  Alcotest.(check bool) (Printf.sprintf "count %d tracks n" lm) true (lm > 180 && lm < 500)

let suite =
  [
    Alcotest.test_case "initial population" `Quick test_initial_population;
    Alcotest.test_case "no flips within factor 2" `Quick test_no_flips_within_factor_2;
    Alcotest.test_case "flips after doubling" `Quick test_flips_after_doubling;
    Alcotest.test_case "hysteresis reduces churn" `Quick test_hysteresis_reduces_churn;
    Alcotest.test_case "shrink" `Quick test_shrink;
    Alcotest.test_case "landmark rate tracks n" `Quick test_landmark_rate_tracks_n;
  ]
