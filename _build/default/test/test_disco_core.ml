module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module Disco = Disco_core.Disco

let build ?(weighted = true) seed =
  let g =
    if weighted then Helpers.random_weighted_graph seed
    else Helpers.random_graph ~n_min:30 ~n_max:80 seed
  in
  (g, Disco.build ~rng:(Rng.create seed) g)

let test_routes_are_paths () =
  let g, d = build 3 in
  let n = Graph.n g in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t then begin
        Helpers.check_path g ~src:s ~dst:t (Disco.route_first d ~src:s ~dst:t);
        Helpers.check_path g ~src:s ~dst:t (Disco.route_later d ~src:s ~dst:t)
      end
    done
  done

let landmark_in_every_vicinity (d : Disco.t) =
  let nd = d.Disco.nd in
  let n = Graph.n nd.Core.Nddisco.graph in
  let ok = ref true in
  for v = 0 to n - 1 do
    if not nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(v) then begin
      let vw = Core.Vicinity.view nd.Core.Nddisco.vicinity v in
      if
        not
          (Array.exists
             (fun w -> nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(w))
             vw.Core.Vicinity.members)
      then ok := false
    end
  done;
  !ok

(* The w.h.p. precondition of Theorem 1: the routing step finds a group
   member in the vicinity for every pair (no resolution fallback). *)
let no_fallbacks (d : Disco.t) g =
  let ok = ref true in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then begin
        match Disco.classify_first d ~src:s ~dst:t with
        | Disco.Resolution_fallback -> ok := false
        | _ -> ()
      end
    done
  done;
  !ok

let prop_theorem1_first_packet =
  Helpers.qtest "Theorem 1: first packet stretch <= 7" ~count:12 Helpers.seed_arb
    (fun seed ->
      let g, d = build seed in
      QCheck.assume (landmark_in_every_vicinity d);
      QCheck.assume (no_fallbacks d g);
      let ws = Dijkstra.make_workspace g in
      let ok = ref true in
      for s = 0 to min 15 (Graph.n g - 1) do
        let sp = Dijkstra.sssp ~ws g s in
        for t = 0 to Graph.n g - 1 do
          if t <> s && sp.Dijkstra.dist.(t) > 0.0 && sp.Dijkstra.dist.(t) < infinity
          then begin
            let r =
              Disco.route_first ~heuristic:Core.Shortcut.No_shortcut d ~src:s ~dst:t
            in
            if Helpers.path_len g r /. sp.Dijkstra.dist.(t) > 7.0 +. 1e-9 then ok := false
          end
        done
      done;
      !ok)

let prop_theorem1_later_packets =
  Helpers.qtest "Theorem 1: later packets stretch <= 3" ~count:12 Helpers.seed_arb
    (fun seed ->
      let g, d = build seed in
      QCheck.assume (landmark_in_every_vicinity d);
      let ws = Dijkstra.make_workspace g in
      let ok = ref true in
      for s = 0 to min 15 (Graph.n g - 1) do
        let sp = Dijkstra.sssp ~ws g s in
        for t = 0 to Graph.n g - 1 do
          if t <> s && sp.Dijkstra.dist.(t) > 0.0 && sp.Dijkstra.dist.(t) < infinity
          then begin
            let r =
              Disco.route_later ~heuristic:Core.Shortcut.No_shortcut d ~src:s ~dst:t
            in
            if Helpers.path_len g r /. sp.Dijkstra.dist.(t) > 3.0 +. 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_classify_cases () =
  let g, d = build 7 in
  let nd = d.Disco.nd in
  let n = Graph.n g in
  for s = 0 to min 15 (n - 1) do
    for t = 0 to min 15 (n - 1) do
      if s <> t then begin
        match Disco.classify_first d ~src:s ~dst:t with
        | Disco.Trivial -> Alcotest.fail "trivial only for s = t"
        | Disco.Direct_landmark ->
            Alcotest.(check bool) "is landmark" true
              nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(t)
        | Disco.Direct_vicinity ->
            Alcotest.(check bool) "in vicinity" true
              (Core.Vicinity.mem nd.Core.Nddisco.vicinity s t)
        | Disco.Known_address ->
            Alcotest.(check bool) "same group" true (Core.Groups.same_group d.Disco.groups s t)
        | Disco.Via_group_member w ->
            Alcotest.(check bool) "w in vicinity" true
              (Core.Vicinity.mem nd.Core.Nddisco.vicinity s w);
            Alcotest.(check bool) "w stores t" true (Core.Groups.same_group d.Disco.groups w t)
        | Disco.Resolution_fallback -> ()
      end
    done
  done;
  Alcotest.(check bool) "self trivial" true (Disco.classify_first d ~src:3 ~dst:3 = Disco.Trivial)

let test_first_packet_case_consistency () =
  let g, d = build 9 in
  ignore g;
  let _, case = Disco.route_first_case d ~src:0 ~dst:1 in
  Alcotest.(check bool) "case matches classify" true (case = Disco.classify_first d ~src:0 ~dst:1)

let test_state_entries_parts () =
  let g, d = build 11 in
  let nd = d.Disco.nd in
  for v = 0 to min 20 (Graph.n g - 1) do
    let det = Disco.state_entries d v in
    Alcotest.(check int) "group entries" (Core.Groups.state_entries d.Disco.groups v)
      det.Disco.group_entries;
    Alcotest.(check int) "overlay neighbors" (Core.Overlay.degree d.Disco.overlay v)
      det.Disco.overlay_neighbors;
    Alcotest.(check bool) "total >= nd total" true
      (Disco.total_entries det >= Core.Nddisco.total_entries det.Disco.nd_detail);
    if not nd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark.(v) then
      Alcotest.(check int) "no resolution load off landmarks" 0
        det.Disco.nd_detail.Core.Nddisco.resolution_entries
  done

let test_state_bytes_positive_and_ordered () =
  let g, d = build 13 in
  for v = 0 to min 10 (Graph.n g - 1) do
    let b4 = Disco.state_bytes d ~name_bytes:4 v in
    let b16 = Disco.state_bytes d ~name_bytes:16 v in
    Alcotest.(check bool) "positive" true (b4 > 0.0);
    Alcotest.(check bool) "ipv6 names cost more" true (b16 > b4)
  done

let test_fallback_routes_correctly () =
  (* Force fallbacks by giving every node a wildly wrong estimate of n so
     groups shatter; routing must still succeed via the resolution DB. *)
  let g = Helpers.random_graph ~n_min:60 ~n_max:61 15 in
  let n = Graph.n g in
  let rng = Rng.create 15 in
  let nd = Core.Nddisco.build ~rng g in
  let groups =
    Core.Groups.build_with_estimates ~hashes:nd.Core.Nddisco.hashes
      ~n_estimates:(Array.init n (fun v -> if v mod 2 = 0 then 4 else 1 lsl 20))
  in
  let d = Disco.of_nddisco ~rng ~groups nd in
  for s = 0 to min 15 (n - 1) do
    for t = 0 to min 15 (n - 1) do
      if s <> t then Helpers.check_path g ~src:s ~dst:t (Disco.route_first d ~src:s ~dst:t)
    done
  done

let test_heuristics_all_valid () =
  let g, d = build 17 in
  List.iter
    (fun h ->
      for s = 0 to min 6 (Graph.n g - 1) do
        for t = 0 to min 6 (Graph.n g - 1) do
          if s <> t then
            Helpers.check_path g ~src:s ~dst:t (Disco.route_first ~heuristic:h d ~src:s ~dst:t)
        done
      done)
    Core.Shortcut.all

let suite =
  [
    Alcotest.test_case "routes are paths" `Quick test_routes_are_paths;
    prop_theorem1_first_packet;
    prop_theorem1_later_packets;
    Alcotest.test_case "classify cases" `Quick test_classify_cases;
    Alcotest.test_case "route_first_case consistent" `Quick test_first_packet_case_consistency;
    Alcotest.test_case "state entry parts" `Quick test_state_entries_parts;
    Alcotest.test_case "state bytes ordered" `Quick test_state_bytes_positive_and_ordered;
    Alcotest.test_case "fallback routes correctly" `Quick test_fallback_routes_correctly;
    Alcotest.test_case "all heuristics valid" `Quick test_heuristics_all_valid;
  ]
