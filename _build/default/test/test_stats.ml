module Stats = Disco_util.Stats

let test_summarize_basic () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Stats.p50;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.0) s.Stats.stddev

let test_summarize_constant () =
  let s = Stats.summarize (Array.make 10 7.0) in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "p95" 7.0 s.Stats.p95

let test_summarize_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize [||]))

let test_percentile () =
  let sorted = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile sorted 0.5);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile sorted 0.95);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile sorted 1.0)

let test_cdf_points_monotone () =
  let samples = [| 5.0; 1.0; 3.0; 3.0; 2.0; 9.0; 0.5 |] in
  let pts = Stats.cdf_points samples 5 in
  let rec check_mono = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
        Alcotest.(check bool) "values nondecreasing" true (v2 >= v1);
        Alcotest.(check bool) "fractions increasing" true (f2 > f1);
        check_mono rest
    | _ -> ()
  in
  check_mono pts;
  Alcotest.(check (float 1e-9)) "last fraction is 1" 1.0 (snd (List.nth pts (List.length pts - 1)))

let test_cdf_empty () = Alcotest.(check bool) "empty" true (Stats.cdf_points [||] 5 = [])

let test_histogram () =
  let h = Stats.histogram [| 0.0; 0.1; 0.9; 1.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples counted" 4 total

let test_mean_empty () = Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [||])

let prop_percentile_bounds =
  Helpers.qtest "percentiles within min..max" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      let s = Stats.summarize a in
      s.Stats.p50 >= s.Stats.min && s.Stats.p50 <= s.Stats.max
      && s.Stats.p95 >= s.Stats.p50 && s.Stats.p99 >= s.Stats.p95)

let suite =
  [
    Alcotest.test_case "summarize basic" `Quick test_summarize_basic;
    Alcotest.test_case "summarize constant" `Quick test_summarize_constant;
    Alcotest.test_case "summarize empty rejected" `Quick test_summarize_empty_rejected;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "cdf monotone" `Quick test_cdf_points_monotone;
    Alcotest.test_case "cdf empty" `Quick test_cdf_empty;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    prop_percentile_bounds;
  ]
