module Fm = Disco_synopsis.Fm_sketch
module Diffusion = Disco_synopsis.Diffusion
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng

let test_empty_estimate_small () =
  let s = Fm.create ~buckets:32 in
  Alcotest.(check bool) "near zero" true (Fm.estimate s < 64.0)

let test_estimate_accuracy () =
  List.iter
    (fun n ->
      let s = Fm.create ~buckets:64 in
      for i = 1 to n do
        Fm.add s (Printf.sprintf "element-%d" i)
      done;
      let e = Fm.estimate s in
      let err = Float.abs (e -. float_of_int n) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d estimate=%.0f err=%.2f" n e err)
        true (err < 0.5))
    [ 256; 1024; 8192 ]

let test_duplicate_insensitive () =
  let a = Fm.create ~buckets:32 in
  let b = Fm.create ~buckets:32 in
  for i = 1 to 100 do
    Fm.add a (string_of_int i);
    Fm.add b (string_of_int i);
    Fm.add b (string_of_int i) (* duplicates *)
  done;
  Alcotest.(check bool) "identical sketches" true (Fm.equal a b)

let test_merge_is_union () =
  let a = Fm.create ~buckets:32 and b = Fm.create ~buckets:32 in
  let full = Fm.create ~buckets:32 in
  for i = 1 to 200 do
    Fm.add (if i mod 2 = 0 then a else b) (string_of_int i);
    Fm.add full (string_of_int i)
  done;
  Fm.merge_into a b;
  Alcotest.(check bool) "merge = union" true (Fm.equal a full)

let test_merge_idempotent_commutative () =
  let mk elems =
    let s = Fm.create ~buckets:32 in
    List.iter (Fm.add s) elems;
    s
  in
  let a = mk [ "x"; "y" ] and b = mk [ "y"; "z" ] in
  let ab = Fm.copy a in
  Fm.merge_into ab b;
  let ba = Fm.copy b in
  Fm.merge_into ba a;
  Alcotest.(check bool) "commutative" true (Fm.equal ab ba);
  let abb = Fm.copy ab in
  Fm.merge_into abb b;
  Alcotest.(check bool) "idempotent" true (Fm.equal abb ab)

let test_power_of_two_required () =
  Alcotest.check_raises "buckets" (Invalid_argument "Fm_sketch.create: buckets must be a power of two")
    (fun () -> ignore (Fm.create ~buckets:33))

let test_size_mismatch_rejected () =
  let a = Fm.create ~buckets:32 and b = Fm.create ~buckets:64 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Fm_sketch.merge_into: size mismatch")
    (fun () -> Fm.merge_into a b)

let test_byte_size () =
  Alcotest.(check int) "256B at 64 buckets (the paper's synopsis size)" 256
    (Fm.byte_size (Fm.create ~buckets:64))

let test_diffusion_converges () =
  let rng = Rng.create 5 in
  let n = 256 in
  let graph = Gen.gnm ~rng ~n ~m:(3 * n) in
  let o = Diffusion.estimate_n ~graph ~node_name:Disco_core.Name.default ~buckets:64 () in
  (* After enough rounds every node holds the global sketch: all estimates
     equal, and within FM accuracy of the truth. *)
  let first = o.Diffusion.estimates.(0) in
  Array.iter
    (fun e -> Alcotest.(check (float 1e-9)) "all nodes agree" first e)
    o.Diffusion.estimates;
  let err = Float.abs (first -. float_of_int n) /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "estimate %.0f within 40%%" first) true (err < 0.4);
  Alcotest.(check bool) "messages counted" true (o.Diffusion.messages > 0)

let test_diffusion_few_rounds_incomplete () =
  let rng = Rng.create 7 in
  let n = 256 in
  (* On a ring, 1 round cannot reach everyone: estimates must disagree. *)
  ignore rng;
  let graph = Gen.ring ~n in
  let o = Diffusion.estimate_n ~graph ~node_name:Disco_core.Name.default ~buckets:32 ~rounds:1 () in
  let distinct =
    Array.to_list o.Diffusion.estimates |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "not yet converged" true (distinct > 1)

let suite =
  [
    Alcotest.test_case "empty estimate small" `Quick test_empty_estimate_small;
    Alcotest.test_case "estimate accuracy" `Quick test_estimate_accuracy;
    Alcotest.test_case "duplicate insensitive" `Quick test_duplicate_insensitive;
    Alcotest.test_case "merge is union" `Quick test_merge_is_union;
    Alcotest.test_case "merge idempotent+commutative" `Quick test_merge_idempotent_commutative;
    Alcotest.test_case "power of two required" `Quick test_power_of_two_required;
    Alcotest.test_case "size mismatch rejected" `Quick test_size_mismatch_rejected;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "diffusion converges" `Quick test_diffusion_converges;
    Alcotest.test_case "few rounds incomplete" `Quick test_diffusion_few_rounds_incomplete;
  ]
