module Graph = Disco_graph.Graph

let triangle () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_edge b 0 1 1.0;
  Graph.Builder.add_edge b 1 2 2.0;
  Graph.Builder.add_edge b 0 2 4.0;
  Graph.Builder.build b

let test_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "arcs" 6 (Graph.arc_count g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0)

let test_self_loop_rejected () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.Builder.add_edge: self-loop")
    (fun () -> Graph.Builder.add_edge b 1 1 1.0)

let test_bad_weight_rejected () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "zero weight" (Invalid_argument "Graph.Builder.add_edge: weight <= 0")
    (fun () -> Graph.Builder.add_edge b 0 1 0.0)

let test_duplicate_keeps_min () =
  let b = Graph.Builder.create 2 in
  Graph.Builder.add_edge b 0 1 5.0;
  Graph.Builder.add_edge b 1 0 2.0;
  Graph.Builder.add_edge b 0 1 9.0;
  let g = Graph.Builder.build b in
  Alcotest.(check int) "single edge" 1 (Graph.m g);
  Alcotest.(check (option (float 1e-9))) "min weight" (Some 2.0) (Graph.edge_weight g 0 1)

let test_neighbors_sorted () =
  let b = Graph.Builder.create 5 in
  Graph.Builder.add_edge b 2 4 1.0;
  Graph.Builder.add_edge b 2 0 1.0;
  Graph.Builder.add_edge b 2 3 1.0;
  let g = Graph.Builder.build b in
  Alcotest.(check (list int)) "sorted" [ 0; 3; 4 ] (List.map fst (Graph.neighbors g 2))

let test_neighbor_rank_inverse () =
  let g = triangle () in
  for u = 0 to 2 do
    for i = 0 to Graph.degree g u - 1 do
      let v, _ = Graph.nth_neighbor g u i in
      Alcotest.(check (option int)) "rank(nth) = i" (Some i) (Graph.neighbor_rank g u v)
    done
  done

let test_neighbor_rank_missing () =
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_edge b 0 1 1.0;
  let g = Graph.Builder.build b in
  Alcotest.(check (option int)) "no edge" None (Graph.neighbor_rank g 0 3)

let test_edge_weight_symmetric () =
  let g = triangle () in
  Alcotest.(check (option (float 1e-9))) "0-2" (Some 4.0) (Graph.edge_weight g 0 2);
  Alcotest.(check (option (float 1e-9))) "2-0" (Some 4.0) (Graph.edge_weight g 2 0)

let test_edges_once () =
  let g = triangle () in
  let es = Graph.edges g in
  Alcotest.(check int) "3 edges" 3 (List.length es);
  List.iter (fun (u, v, _) -> Alcotest.(check bool) "u < v" true (u < v)) es

let test_arc_endpoints_inverse () =
  let g = triangle () in
  for u = 0 to 2 do
    Graph.iter_neighbors g u (fun v _ ->
        match Graph.edge_index g u v with
        | None -> Alcotest.fail "edge_index missing"
        | Some idx ->
            Alcotest.(check (pair int int)) "inverse" (u, v) (Graph.arc_endpoints g idx))
  done

let test_connectivity () =
  let g = triangle () in
  Alcotest.(check bool) "triangle connected" true (Graph.is_connected g);
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_edge b 0 1 1.0;
  Graph.Builder.add_edge b 2 3 1.0;
  Alcotest.(check bool) "two components" false (Graph.is_connected (Graph.Builder.build b))

let test_total_weight () =
  Alcotest.(check (float 1e-9)) "sum" 7.0 (Graph.total_weight (triangle ()))

let test_fold_neighbors () =
  let g = triangle () in
  let sum = Graph.fold_neighbors g 0 ~init:0.0 ~f:(fun acc _ w -> acc +. w) in
  Alcotest.(check (float 1e-9)) "weights at 0" 5.0 sum

let prop_degree_sum =
  Helpers.qtest "sum of degrees = 2m" ~count:50 Helpers.seed_arb (fun seed ->
      let g = Helpers.random_graph seed in
      let sum = ref 0 in
      for u = 0 to Graph.n g - 1 do
        sum := !sum + Graph.degree g u
      done;
      !sum = 2 * Graph.m g)

let prop_rank_roundtrip =
  Helpers.qtest "neighbor_rank inverts nth_neighbor" ~count:30 Helpers.seed_arb
    (fun seed ->
      let g = Helpers.random_graph seed in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        for i = 0 to Graph.degree g u - 1 do
          let v, _ = Graph.nth_neighbor g u i in
          if Graph.neighbor_rank g u v <> Some i then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "bad weight rejected" `Quick test_bad_weight_rejected;
    Alcotest.test_case "duplicate keeps min weight" `Quick test_duplicate_keeps_min;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "neighbor rank inverse" `Quick test_neighbor_rank_inverse;
    Alcotest.test_case "neighbor rank missing" `Quick test_neighbor_rank_missing;
    Alcotest.test_case "edge weight symmetric" `Quick test_edge_weight_symmetric;
    Alcotest.test_case "edges listed once" `Quick test_edges_once;
    Alcotest.test_case "arc endpoints inverse" `Quick test_arc_endpoints_inverse;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "total weight" `Quick test_total_weight;
    Alcotest.test_case "fold neighbors" `Quick test_fold_neighbors;
    prop_degree_sum;
    prop_rank_roundtrip;
  ]
