module Heap = Disco_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = List.init 5 (fun _ -> match Heap.pop h with Some (p, _) -> p | None -> nan) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] out

let test_tie_break_fifo () =
  let h = Heap.create () in
  Heap.push h 1.0 "first";
  Heap.push h 1.0 "second";
  Heap.push h 1.0 "third";
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "fifo 1" "first" (pop ());
  Alcotest.(check string) "fifo 2" "second" (pop ());
  Alcotest.(check string) "fifo 3" "third" (pop ())

let test_peek_not_destructive () =
  let h = Heap.create () in
  Heap.push h 2.0 'a';
  Alcotest.(check bool) "peek" true (Heap.peek h = Some (2.0, 'a'));
  Alcotest.(check int) "size unchanged" 1 (Heap.size h)

let test_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h (float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.push h 1.0 1;
  Alcotest.(check bool) "usable after clear" true (Heap.pop h = Some (1.0, 1))

let prop_sorted =
  Helpers.qtest "pops come out sorted" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) priorities;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_size =
  Helpers.qtest "size tracks pushes and pops" ~count:100
    QCheck.(list (float_range 0.0 10.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) priorities;
      let n = List.length priorities in
      Heap.size h = n
      &&
      (ignore (Heap.pop h);
       Heap.size h = max 0 (n - 1)))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "tie break is FIFO" `Quick test_tie_break_fifo;
    Alcotest.test_case "peek not destructive" `Quick test_peek_not_destructive;
    Alcotest.test_case "clear" `Quick test_clear;
    prop_sorted;
    prop_size;
  ]
