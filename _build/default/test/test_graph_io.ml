module Graph = Disco_graph.Graph
module Graph_io = Disco_graph.Graph_io

let test_roundtrip_string () =
  let g = Helpers.random_weighted_graph 17 in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g');
  Alcotest.(check int) "m" (Graph.m g) (Graph.m g');
  List.iter2
    (fun (u, v, w) (u', v', w') ->
      Alcotest.(check int) "u" u u';
      Alcotest.(check int) "v" v v';
      Alcotest.(check bool) "w" true (Float.abs (w -. w') < 1e-6))
    (Graph.edges g) (Graph.edges g')

let test_roundtrip_file () =
  let g = Helpers.random_graph 23 in
  let path = Filename.temp_file "disco" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.to_file path g;
      let g' = Graph_io.of_file path in
      Alcotest.(check bool) "same edges" true (Graph.edges g = Graph.edges g'))

let test_comments_and_blanks () =
  let g = Graph_io.of_string "# header\n\nn 3\n0 1 1.5\n# middle\n1 2 2.5\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g)

let test_missing_header () =
  Alcotest.(check bool) "fails" true
    (try
       ignore (Graph_io.of_string "0 1 1.0\n");
       false
     with Failure _ -> true)

let test_bad_edge () =
  Alcotest.(check bool) "fails" true
    (try
       ignore (Graph_io.of_string "n 2\n0 x 1.0\n");
       false
     with Failure _ -> true)

let test_empty_input () =
  Alcotest.(check bool) "fails" true
    (try
       ignore (Graph_io.of_string "");
       false
     with Failure _ -> true)

let test_to_dot () =
  let g = Helpers.random_graph ~n_min:8 ~n_max:9 31 in
  let dot = Graph_io.to_dot ~highlight:[ 0; 1 ] g in
  Alcotest.(check bool) "has header" true (String.length dot > 20);
  Alcotest.(check bool) "is a graph" true
    (String.sub dot 0 11 = "graph disco");
  (* Highlighted nodes are filled. *)
  Alcotest.(check bool) "highlight present" true
    (let re = "salmon" in
     let rec find i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || find (i + 1))
     in
     find 0)

let suite =
  [
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "roundtrip string" `Quick test_roundtrip_string;
    Alcotest.test_case "roundtrip file" `Quick test_roundtrip_file;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "missing header" `Quick test_missing_header;
    Alcotest.test_case "bad edge" `Quick test_bad_edge;
    Alcotest.test_case "empty input" `Quick test_empty_input;
  ]
