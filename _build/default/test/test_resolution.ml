module Graph = Disco_graph.Graph
module Rng = Disco_util.Rng
module Nddisco = Disco_core.Nddisco
module Resolution = Disco_core.Resolution
module Landmarks = Disco_core.Landmarks
module Name = Disco_core.Name
module Hash_space = Disco_hash.Hash_space

let build seed =
  let g = Helpers.random_weighted_graph seed in
  let nd = Nddisco.build ~rng:(Rng.create seed) g in
  (g, nd, Resolution.build nd)

let test_owner_is_landmark () =
  let _, nd, res = build 3 in
  Array.iter
    (fun name ->
      let o = Resolution.owner res name in
      Alcotest.(check bool) "owner is landmark" true
        nd.Nddisco.landmarks.Landmarks.is_landmark.(o))
    nd.Nddisco.names

let test_entries_sum_to_n () =
  let g, _, res = build 5 in
  let loads = Resolution.entries_per_landmark res in
  Alcotest.(check int) "all names stored" (Graph.n g)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 loads)

let test_entries_at_consistent () =
  let g, nd, res = build 7 in
  let loads = Resolution.entries_per_landmark res in
  List.iter
    (fun (lm, c) -> Alcotest.(check int) "entries_at agrees" c (Resolution.entries_at res lm))
    loads;
  for v = 0 to Graph.n g - 1 do
    if not nd.Nddisco.landmarks.Landmarks.is_landmark.(v) then
      Alcotest.(check int) "non-landmark stores nothing" 0 (Resolution.entries_at res v)
  done

let test_owners_by_node () =
  let g, nd, res = build 9 in
  let owners = Resolution.owners_by_node res in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "cache matches owner()" (Resolution.owner res nd.Nddisco.names.(v)) owners.(v)
  done

let test_resolve_route_valid () =
  let g, _, res = build 11 in
  let n = Graph.n g in
  for s = 0 to min 10 (n - 1) do
    for t = 0 to min 10 (n - 1) do
      if s <> t then
        Helpers.check_path g ~src:s ~dst:t (Resolution.resolve_then_route res ~src:s ~dst:t)
    done
  done

let test_find_closest_hash () =
  let _, nd, res = build 13 in
  (* Querying a node's exact hash returns that node. *)
  for v = 0 to min 20 (Array.length nd.Nddisco.hashes - 1) do
    Alcotest.(check int) "exact hash" v (Resolution.find_closest_hash res nd.Nddisco.hashes.(v))
  done

let test_find_closest_hash_nearest () =
  let _, nd, res = build 15 in
  (* For arbitrary keys, the returned node minimizes ring distance. *)
  let keys = [ 0L; Int64.min_int; 0x123456789ABCDEFL; -1L ] in
  List.iter
    (fun key ->
      let got = Resolution.find_closest_hash res key in
      let d_got = Hash_space.ring_distance key nd.Nddisco.hashes.(got) in
      Array.iter
        (fun h ->
          Alcotest.(check bool) "no closer node" true
            (Hash_space.compare_unsigned d_got (Hash_space.ring_distance key h) <= 0))
        nd.Nddisco.hashes)
    keys

let test_flat_names_arbitrary () =
  (* Any string works as a name: resolution treats names opaquely. *)
  let g = Helpers.random_graph ~n_min:20 ~n_max:21 17 in
  let names =
    Array.init (Graph.n g) (fun i ->
        match i mod 3 with
        | 0 -> Printf.sprintf "host-%d.example.com" i
        | 1 -> Printf.sprintf "00:1b:44:11:3a:%02x" i
        | _ -> Digest.to_hex (Digest.string (string_of_int i)))
  in
  let nd = Nddisco.build ~names ~rng:(Rng.create 17) g in
  let res = Resolution.build nd in
  Array.iter
    (fun name ->
      Alcotest.(check bool) "owner exists" true (Resolution.owner res name >= 0))
    names;
  ignore (Name.byte_size names.(0))

let suite =
  [
    Alcotest.test_case "owner is landmark" `Quick test_owner_is_landmark;
    Alcotest.test_case "entries sum to n" `Quick test_entries_sum_to_n;
    Alcotest.test_case "entries_at consistent" `Quick test_entries_at_consistent;
    Alcotest.test_case "owners_by_node cache" `Quick test_owners_by_node;
    Alcotest.test_case "resolve route valid" `Quick test_resolve_route_valid;
    Alcotest.test_case "find_closest_hash exact" `Quick test_find_closest_hash;
    Alcotest.test_case "find_closest_hash nearest" `Quick test_find_closest_hash_nearest;
    Alcotest.test_case "arbitrary flat names" `Quick test_flat_names_arbitrary;
  ]
