module Fnv = Disco_hash.Fnv
module Hash_space = Disco_hash.Hash_space
module Consistent_hash = Disco_hash.Consistent_hash

let test_fnv_vectors () =
  (* Published FNV-1a 64-bit vectors. *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Fnv.hash "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Fnv.hash "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L (Fnv.hash "foobar")

let test_fnv_seeded () =
  Alcotest.(check bool) "seeds differ" true
    (Fnv.hash_with_seed 1 "x" <> Fnv.hash_with_seed 2 "x")

let test_prefix_bits () =
  let h = 0xF000000000000000L in
  Alcotest.(check int) "top 4 bits" 0xF (Hash_space.prefix_bits h ~width:4);
  Alcotest.(check int) "width 0" 0 (Hash_space.prefix_bits h ~width:0);
  Alcotest.(check int) "top 1 bit" 1 (Hash_space.prefix_bits h ~width:1)

let test_common_prefix_len () =
  Alcotest.(check int) "identical" 64 (Hash_space.common_prefix_len 5L 5L);
  Alcotest.(check int) "differ at top" 0
    (Hash_space.common_prefix_len 0L Int64.min_int);
  Alcotest.(check int) "63 shared" 63 (Hash_space.common_prefix_len 0L 1L)

let test_ring_distance () =
  Alcotest.(check int64) "self" 0L (Hash_space.ring_distance 10L 10L);
  Alcotest.(check int64) "forward" 5L (Hash_space.ring_distance 10L 15L);
  Alcotest.(check int64) "symmetric" (Hash_space.ring_distance 15L 10L)
    (Hash_space.ring_distance 10L 15L);
  (* Wraparound: distance between 0 and 2^64-1 is 1. *)
  Alcotest.(check int64) "wraparound" 1L (Hash_space.ring_distance 0L (-1L))

let test_group_size_bits_monotone () =
  let k1 = Hash_space.group_size_bits ~n_estimate:1024 in
  let k2 = Hash_space.group_size_bits ~n_estimate:16384 in
  let k3 = Hash_space.group_size_bits ~n_estimate:192_244 in
  Alcotest.(check bool) "monotone in n" true (k1 <= k2 && k2 <= k3);
  Alcotest.(check int) "tiny n" 0 (Hash_space.group_size_bits ~n_estimate:2);
  (* Values the evaluation relies on (see EXPERIMENTS.md); 192,244 is the
     paper's router-level map size, where the measured group state implies
     64 groups. *)
  Alcotest.(check int) "n=1024" 3 k1;
  Alcotest.(check int) "n=16384" 5 k2;
  Alcotest.(check int) "n=192244" 6 k3

let test_of_name_deterministic () =
  Alcotest.(check int64) "deterministic" (Hash_space.of_name "n1") (Hash_space.of_name "n1");
  Alcotest.(check bool) "names differ" true
    (Hash_space.of_name "n1" <> Hash_space.of_name "n2")

let make_ring ?(replicas = 1) k =
  let owners = Array.init k Fun.id in
  Consistent_hash.create ~replicas ~owners ~owner_name:(fun o -> Printf.sprintf "lm%d" o) ()

let test_ch_owner_is_member () =
  let ring = make_ring 7 in
  for i = 0 to 200 do
    let o = Consistent_hash.owner_of_name ring (Printf.sprintf "key%d" i) in
    Alcotest.(check bool) "owner in set" true (o >= 0 && o < 7)
  done

let test_ch_deterministic () =
  let r1 = make_ring 7 and r2 = make_ring 7 in
  for i = 0 to 50 do
    let k = Printf.sprintf "key%d" i in
    Alcotest.(check int) "same owner" (Consistent_hash.owner_of_name r1 k)
      (Consistent_hash.owner_of_name r2 k)
  done

let test_ch_all_owners_used () =
  let ring = make_ring 4 in
  let keys = Array.init 2000 (fun i -> Hash_space.of_name (Printf.sprintf "k%d" i)) in
  let loads = Consistent_hash.load_counts ring ~keys in
  List.iter
    (fun (o, c) ->
      Alcotest.(check bool) (Printf.sprintf "owner %d used" o) true (c > 0))
    loads;
  Alcotest.(check int) "loads sum to keys" 2000
    (List.fold_left (fun acc (_, c) -> acc + c) 0 loads)

let test_ch_replicas_balance () =
  let keys = Array.init 4000 (fun i -> Hash_space.of_name (Printf.sprintf "k%d" i)) in
  let imbalance replicas =
    let ring = make_ring ~replicas 8 in
    let loads = Consistent_hash.load_counts ring ~keys in
    let max_load = List.fold_left (fun acc (_, c) -> max acc c) 0 loads in
    float_of_int max_load /. (4000.0 /. 8.0)
  in
  (* Theorem 2: multiple hash functions reduce the load imbalance. *)
  Alcotest.(check bool) "more replicas, flatter" true (imbalance 32 < imbalance 1)

let test_ch_consistency_under_removal () =
  (* Removing one owner must only remap that owner's keys. *)
  let owners_full = Array.init 6 Fun.id in
  let owners_less = Array.of_list [ 0; 1; 2; 3; 4 ] in
  let name o = Printf.sprintf "lm%d" o in
  let full = Consistent_hash.create ~owners:owners_full ~owner_name:name () in
  let less = Consistent_hash.create ~owners:owners_less ~owner_name:name () in
  for i = 0 to 500 do
    let key = Hash_space.of_name (Printf.sprintf "key%d" i) in
    let before = Consistent_hash.owner_of full key in
    if before <> 5 then
      Alcotest.(check int) "stable key" before (Consistent_hash.owner_of less key)
  done

let suite =
  [
    Alcotest.test_case "fnv vectors" `Quick test_fnv_vectors;
    Alcotest.test_case "fnv seeded" `Quick test_fnv_seeded;
    Alcotest.test_case "prefix bits" `Quick test_prefix_bits;
    Alcotest.test_case "common prefix length" `Quick test_common_prefix_len;
    Alcotest.test_case "ring distance" `Quick test_ring_distance;
    Alcotest.test_case "group size bits" `Quick test_group_size_bits_monotone;
    Alcotest.test_case "of_name deterministic" `Quick test_of_name_deterministic;
    Alcotest.test_case "consistent hash: owner valid" `Quick test_ch_owner_is_member;
    Alcotest.test_case "consistent hash: deterministic" `Quick test_ch_deterministic;
    Alcotest.test_case "consistent hash: all owners used" `Quick test_ch_all_owners_used;
    Alcotest.test_case "consistent hash: replicas balance" `Quick test_ch_replicas_balance;
    Alcotest.test_case "consistent hash: removal is local" `Quick test_ch_consistency_under_removal;
  ]
