(* The dynamic protocol under churn: nodes come, go, and fail, and the
   network repairs itself through soft state alone — no operator action,
   no renumbering, names keep working.

   Run with: dune exec examples/churn.exe *)

module Rng = Disco_util.Rng
module Network = Disco_dynamic.Network
module Msg = Disco_dynamic.Msg

let () =
  let n = 96 in
  let rng = Rng.create 2026 in
  let graph = Disco_graph.Gen.gnm ~rng ~n ~m:(4 * n) in
  let net = Network.create ~rng ~graph ~n_estimate:n () in
  let probe = (5, 71) in

  let status label =
    let s, d = probe in
    let route =
      match Network.route net ~src:s ~dst:d with
      | Some p -> Printf.sprintf "%d hops" (List.length p - 1)
      | None -> "UNREACHABLE"
    in
    Printf.printf "%-34s t=%6.0f  landmarks=%2d  msgs=%8d  %d->%d: %s\n" label
      (Network.now net) (Network.landmark_count net) (Network.messages_sent net)
      s d route
  in

  (* Cold start: everyone boots at once; path vector + gossip converge. *)
  Network.activate_all net;
  Network.run_until net 300.0;
  status "cold start converged";

  (* A node's address is protocol-internal and changes with the topology;
     the name does not. *)
  (match Network.address_of net 71 with
  | Some a ->
      Printf.printf "  node 71 address: landmark %d, %d-hop explicit route\n"
        a.Msg.lm (List.length a.Msg.lm_path - 1)
  | None -> ());

  (* Fail-stop a landmark: the hardest single failure — its own routes,
     the addresses anchored at it, and its resolution shard all die. *)
  let victim =
    let rec find v = if Network.is_landmark net v then v else find (v + 1) in
    find 0
  in
  Network.deactivate net victim;
  Printf.printf "\n-- landmark %d fails silently --\n" victim;
  Network.run_until net (Network.now net +. 40.0);
  status "shortly after the failure";
  Network.run_until net (Network.now net +. 600.0);
  status "after soft-state repair";

  (* Mass churn: 10% of nodes leave, 10 minutes later they come back. *)
  let leavers = List.init (n / 10) (fun i -> (7 * i) + 3) in
  let leavers = List.filter (fun v -> v <> fst probe && v <> snd probe) leavers in
  List.iter (Network.deactivate net) leavers;
  Printf.printf "\n-- %d nodes leave --\n" (List.length leavers);
  Network.run_until net (Network.now net +. 600.0);
  status "after the exodus";
  List.iter (Network.activate net) leavers;
  Printf.printf "-- they all rejoin --\n";
  Network.run_until net (Network.now net +. 600.0);
  status "after the rejoin";

  (* Full sweep at the end: every active pair must route. *)
  let pairs =
    List.concat_map (fun s -> List.init 4 (fun i -> (s, (s + (17 * (i + 1))) mod n))) (List.init n Fun.id)
    |> List.filter (fun (s, d) -> s <> d && Network.is_active net s && Network.is_active net d)
  in
  Printf.printf "\nfinal reachability over %d pairs: %.4f\n" (List.length pairs)
    (Network.reachable_fraction net ~pairs)
