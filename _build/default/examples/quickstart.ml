(* Quickstart: build a network, run Disco over it, route on flat names.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Disco = Disco_core.Disco

let () =
  (* 1. A 256-node random network with average degree 8 (any connected
     weighted graph works; see Disco_graph.Graph.Builder to hand-build). *)
  let rng = Rng.create 2024 in
  let graph = Gen.gnm ~rng ~n:256 ~m:1024 in
  Printf.printf "network: %d nodes, %d links\n" (Graph.n graph) (Graph.m graph);

  (* 2. Converged Disco state: landmarks, vicinities, addresses, sloppy
     groups, dissemination overlay, resolution database. *)
  let disco = Disco.build ~rng graph in
  let nd = disco.Disco.nd in
  Printf.printf "landmarks: %d, vicinity size: %d, sloppy groups: %d\n"
    (Disco_core.Landmarks.count nd.Disco_core.Nddisco.landmarks)
    (Disco_core.Vicinity.k nd.Disco_core.Nddisco.vicinity)
    (Disco_core.Groups.group_count disco.Disco.groups);

  (* 3. Nodes carry flat names; the routing layer only ever hashes them. *)
  let src = 3 and dst = 200 in
  Printf.printf "\nrouting %S -> %S\n" nd.Disco_core.Nddisco.names.(src)
    nd.Disco_core.Nddisco.names.(dst);
  Printf.printf "destination's address (internal, not its name): %s\n"
    (Format.asprintf "%a" Disco_core.Address.pp (Disco_core.Nddisco.address nd dst));

  (* 4. First packet: the source finds a vicinity node in the destination's
     sloppy group, which supplies the address. Stretch <= 7. *)
  let first = Disco.route_first disco ~src ~dst in
  let shortest = Dijkstra.distance graph src dst in
  let len path = Dijkstra.path_length graph path in
  Printf.printf "first packet : %d hops (stretch %.2f) via %s\n"
    (List.length first - 1)
    (len first /. shortest)
    (String.concat "-" (List.map string_of_int first));

  (* 5. Later packets: the handshake brings worst-case stretch down to 3. *)
  let later = Disco.route_later disco ~src ~dst in
  Printf.printf "later packets: %d hops (stretch %.2f) via %s\n"
    (List.length later - 1)
    (len later /. shortest)
    (String.concat "-" (List.map string_of_int later));

  (* 6. Per-node state stays around sqrt(n log n) entries — far below the
     n-1 a shortest-path protocol would need. *)
  let d = Disco.state_entries disco src in
  Printf.printf "\nstate at node %d: %d entries (path vector would need %d)\n" src
    (Disco.total_entries d)
    (Graph.n graph - 1)
