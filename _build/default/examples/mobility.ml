(* Mobility on flat names (§2: "the location-independence of flat names
   aids mobility").

   A node detaches from one part of the network and re-attaches somewhere
   else. Its NAME — what applications address — never changes; only its
   internal Disco address (closest landmark + explicit route) does. After
   the protocol reconverges, the same name routes to the new location with
   the same stretch guarantees. An IP-style locator would have had to be
   renumbered.

   Run with: dune exec examples/mobility.exe *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module Disco = Disco_core.Disco

let rebuild_with_attachment ~rng ~names ~base_edges ~n ~mobile ~attach_to =
  let b = Graph.Builder.create n in
  List.iter
    (fun (u, v, w) -> if u <> mobile && v <> mobile then Graph.Builder.add_edge b u v w)
    base_edges;
  List.iter (fun v -> Graph.Builder.add_edge b mobile v 1.0) attach_to;
  let graph = Graph.Builder.build b in
  (graph, Disco.build ~names ~rng graph)

let show_route label graph disco ~src ~dst =
  let route = Disco.route_first disco ~src ~dst in
  let shortest = Dijkstra.distance graph src dst in
  Printf.printf "  %s: %d hops, stretch %.2f\n" label
    (List.length route - 1)
    (Dijkstra.path_length graph route /. shortest)

let () =
  let n = 512 in
  let rng = Rng.create 11 in
  let base = Gen.gnm ~rng ~n ~m:(4 * n) in
  let base_edges = Graph.edges base in
  let names = Core.Name.default_array n in
  let mobile = 100 and correspondent = 400 in
  Printf.printf "mobile node is %S; correspondent is %S\n\n" names.(mobile)
    names.(correspondent);

  (* Original attachment: wherever the random graph put it. *)
  let home_links =
    Graph.neighbors base mobile |> List.map fst
  in
  let g0, d0 =
    rebuild_with_attachment ~rng ~names ~base_edges ~n ~mobile ~attach_to:home_links
  in
  let addr0 = Core.Nddisco.address d0.Disco.nd mobile in
  Printf.printf "at home, its address is %s\n"
    (Format.asprintf "%a" Core.Address.pp addr0);
  show_route "route to it" g0 d0 ~src:correspondent ~dst:mobile;

  (* The node moves: re-attach to three random nodes elsewhere. *)
  let away = [ 7; 13; 21 ] in
  Printf.printf "\n-- node %d moves across the network (new links: %s) --\n\n" mobile
    (String.concat ", " (List.map string_of_int away));
  let g1, d1 = rebuild_with_attachment ~rng ~names ~base_edges ~n ~mobile ~attach_to:away in
  let addr1 = Core.Nddisco.address d1.Disco.nd mobile in
  Printf.printf "after reconvergence its address is %s\n"
    (Format.asprintf "%a" Core.Address.pp addr1);
  Printf.printf "(the name %S is unchanged; only protocol-internal state moved)\n"
    names.(mobile);
  show_route "route to it" g1 d1 ~src:correspondent ~dst:mobile;

  (* The sloppy group storing the address is determined by the hash of the
     name, so it is the same set of hash-prefix peers before and after. *)
  let gid g = Core.Groups.group_id g.Disco.groups mobile in
  Printf.printf "\nsloppy group of the name: %d before, %d after (same: %b)\n" (gid d0)
    (gid d1)
    (gid d0 = gid d1)
