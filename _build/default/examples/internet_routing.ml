(* Internet-scale routing scenario (the paper's motivating workload).

   Builds an Internet-like (heavy-tailed, AS-level) topology and compares
   Disco against S4 and plain path vector on the two axes the paper cares
   about: per-node routing state and path stretch. Shows why bounding
   vicinity size matters: S4's cluster state explodes at hub nodes.

   Run with: dune exec examples/internet_routing.exe *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Stats = Disco_util.Stats
module Testbed = Disco_experiments.Testbed
module Metrics = Disco_experiments.Metrics

let () =
  let n = 2048 in
  Printf.printf "building a %d-node Internet-like (AS-level) topology...\n%!" n;
  let tb = Testbed.make ~seed:7 Gen.As_level ~n in
  Printf.printf "max degree %d (heavy tail), %d links\n\n"
    (Graph.max_degree tb.Testbed.graph)
    (Graph.m tb.Testbed.graph);

  Printf.printf "routing state (entries per node):\n%!";
  let st = Metrics.state tb in
  let row name samples =
    let s = Stats.summarize samples in
    Printf.printf "  %-12s mean %8.1f   p95 %8.1f   max %8.1f\n" name s.Stats.mean
      s.Stats.p95 s.Stats.max
  in
  row "disco" st.Metrics.disco;
  row "nddisco" st.Metrics.nddisco;
  row "s4" st.Metrics.s4;
  row "path-vector" st.Metrics.pathvector;
  let disco_max = (Stats.summarize st.Metrics.disco).Stats.max in
  let s4_max = (Stats.summarize st.Metrics.s4).Stats.max in
  Printf.printf "\n  -> S4's worst node holds %.1fx its mean state; Disco %.1fx.\n"
    (s4_max /. (Stats.summarize st.Metrics.s4).Stats.mean)
    (disco_max /. (Stats.summarize st.Metrics.disco).Stats.mean);

  Printf.printf "\npath stretch (1000 sampled pairs):\n%!";
  let sr = Metrics.stretch ~pairs:1000 tb in
  let srow name samples =
    let s = Stats.summarize samples in
    Printf.printf "  %-14s mean %.3f   p95 %.3f   max %.3f\n" name s.Stats.mean
      s.Stats.p95 s.Stats.max
  in
  srow "disco first" sr.Metrics.s_disco.Metrics.first;
  srow "disco later" sr.Metrics.s_disco.Metrics.later;
  srow "s4 first" sr.Metrics.s_s4.Metrics.first;
  srow "s4 later" sr.Metrics.s_s4.Metrics.later;
  Printf.printf
    "\n  -> Disco's first packet is bounded (<= 7) because sloppy groups keep\n\
    \     name lookup local; S4's resolution detour is unbounded.\n"
