(* Inside the flat-name machinery: sloppy groups, the Symphony-style
   dissemination overlay, and what happens when nodes disagree about n.

   Run with: dune exec examples/overlay_demo.exe *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core
module Hash_space = Disco_hash.Hash_space

let () =
  let n = 1024 in
  let rng = Rng.create 5 in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in

  (* Every node first estimates n by synopsis diffusion — the only global
     quantity Disco needs (§4.1). *)
  Printf.printf "estimating n = %d by synopsis diffusion...\n%!" n;
  let est =
    Disco_synopsis.Diffusion.estimate_n ~graph ~node_name:Core.Name.default ~buckets:64 ()
  in
  let errors =
    Array.map
      (fun e -> 100.0 *. Float.abs (e -. float_of_int n) /. float_of_int n)
      est.Disco_synopsis.Diffusion.estimates
  in
  Printf.printf "  mean estimate %.0f (|error| %.1f%%), %dB synopses, %d gossip messages\n\n"
    (Stats.mean est.Disco_synopsis.Diffusion.estimates)
    (Stats.mean errors) est.Disco_synopsis.Diffusion.sketch_bytes
    est.Disco_synopsis.Diffusion.messages;

  let nd = Core.Nddisco.build ~rng graph in
  let groups = Core.Groups.of_nddisco nd in
  let node = 42 in
  Printf.printf "sloppy groups use the first %d bits of SHA-256(name):\n"
    (Core.Groups.bits_of groups node);
  Printf.printf "  h(%S) = %s...\n" nd.Core.Nddisco.names.(node)
    (String.sub (Hash_space.to_hex nd.Core.Nddisco.hashes.(node)) 0 8);
  Printf.printf "  node %d's group has %d members; it stores all their addresses\n\n"
    node
    (Array.length (Core.Groups.members groups node));

  (* The overlay: ring links + fingers, announcements flow directionally. *)
  List.iter
    (fun fingers ->
      let overlay = Core.Overlay.build ~rng ~fingers nd groups in
      let d = Core.Overlay.disseminate overlay in
      Printf.printf
        "%d finger(s): mean overlay degree %.1f; announcements travel %.2f hops on \
         average (max %d); %d messages; coverage %d/%d\n"
        fingers
        (Core.Overlay.mean_degree overlay)
        d.Core.Overlay.mean_hops d.Core.Overlay.max_hops d.Core.Overlay.messages
        d.Core.Overlay.reached d.Core.Overlay.expected)
    [ 1; 3 ];

  (* Failure injection: 60% error in the estimate of n (§5). Mutually
     mis-grouped pairs fall back to the landmark resolution database. *)
  Printf.printf "\ninjecting ±60%% error into every node's estimate of n...\n";
  let err_rng = Rng.create 99 in
  let estimates =
    Array.init n (fun _ ->
        let f = 0.4 +. Rng.float err_rng 1.2 in
        max 2 (int_of_float (float_of_int n *. f)))
  in
  let noisy = Core.Groups.build_with_estimates ~hashes:nd.Core.Nddisco.hashes ~n_estimates:estimates in
  let disco = Core.Disco.of_nddisco ~rng ~groups:noisy nd in
  let fallbacks = ref 0 and total = ref 0 in
  for s = 0 to 199 do
    for t = 200 to 399 do
      incr total;
      match Core.Disco.classify_first disco ~src:s ~dst:t with
      | Core.Disco.Resolution_fallback -> incr fallbacks
      | _ -> ()
    done
  done;
  Printf.printf "  %d of %d sampled pairs needed the resolution fallback (%.2f%%)\n"
    !fallbacks !total
    (100.0 *. float_of_int !fallbacks /. float_of_int !total);
  Printf.printf "  (routing still succeeds for them — just without the stretch-7 bound)\n"
