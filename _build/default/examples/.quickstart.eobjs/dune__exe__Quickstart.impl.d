examples/quickstart.ml: Array Disco_core Disco_graph Disco_util Format List Printf String
