examples/internet_routing.mli:
