examples/churn.ml: Disco_dynamic Disco_graph Disco_util Fun List Printf
