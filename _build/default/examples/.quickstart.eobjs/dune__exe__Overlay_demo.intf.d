examples/overlay_demo.mli:
