examples/overlay_demo.ml: Array Disco_core Disco_graph Disco_hash Disco_synopsis Disco_util Float List Printf String
