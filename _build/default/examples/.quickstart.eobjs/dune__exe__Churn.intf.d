examples/churn.mli:
