examples/mobility.mli:
