examples/quickstart.mli:
