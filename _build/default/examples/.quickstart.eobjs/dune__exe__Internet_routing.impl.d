examples/internet_routing.ml: Disco_experiments Disco_graph Disco_util Printf
