lib/sim/sim.mli: Disco_graph
