lib/sim/sim.ml: Array Disco_graph Disco_util
