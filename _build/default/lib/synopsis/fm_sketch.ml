type t = { bitmaps : int64 array }

let phi = 0.77351

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let create ~buckets =
  if not (is_power_of_two buckets) then
    invalid_arg "Fm_sketch.create: buckets must be a power of two";
  { bitmaps = Array.make buckets 0L }

let copy t = { bitmaps = Array.copy t.bitmaps }

(* Count trailing zeros of a 64-bit value (position of lowest set bit). *)
let trailing_zeros v =
  if v = 0L then 64
  else begin
    let rec go i =
      if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then i else go (i + 1)
    in
    go 0
  end

let add t name =
  let h = Disco_hash.Hash_space.of_name name in
  let buckets = Array.length t.bitmaps in
  let bucket = Int64.to_int (Int64.logand h (Int64.of_int (buckets - 1))) in
  (* Geometric position: trailing zeros of the remaining hash bits. A
     31-bit bitmap suffices for any population this library simulates, so
     a bucket serializes to 4 bytes. *)
  let rest = Int64.shift_right_logical h 20 in
  let pos = min 31 (trailing_zeros rest) in
  t.bitmaps.(bucket) <-
    Int64.logor t.bitmaps.(bucket) (Int64.shift_left 1L pos)

let merge_into dst src =
  if Array.length dst.bitmaps <> Array.length src.bitmaps then
    invalid_arg "Fm_sketch.merge_into: size mismatch";
  Array.iteri
    (fun i b -> dst.bitmaps.(i) <- Int64.logor dst.bitmaps.(i) b)
    src.bitmaps

let equal a b = a.bitmaps = b.bitmaps

let lowest_zero bitmap =
  let rec go i =
    if i >= 32 then 32
    else if Int64.logand (Int64.shift_right_logical bitmap i) 1L = 0L then i
    else go (i + 1)
  in
  go 0

let estimate t =
  let buckets = Array.length t.bitmaps in
  let sum =
    Array.fold_left (fun acc b -> acc + lowest_zero b) 0 t.bitmaps
  in
  let mean = float_of_int sum /. float_of_int buckets in
  float_of_int buckets /. phi *. (2.0 ** mean)

let byte_size t = 4 * Array.length t.bitmaps
