(** Flajolet–Martin duplicate-insensitive cardinality sketches.

    Synopsis diffusion (Nath et al., SenSys 2004) aggregates
    order-and-duplicate-insensitive synopses by gossip; Disco uses it to
    let every node estimate n (§4.1: "robust, accurate estimates, e.g.,
    within 10% on average using 256-byte synopses").

    A sketch is [buckets] bitmaps; inserting an element sets, in one
    hash-selected bitmap, the bit at a geometrically distributed position.
    Union is bitwise OR, so re-insertion and re-aggregation are harmless —
    exactly what unstructured gossip needs. *)

type t

val create : buckets:int -> t
(** Fresh empty sketch. [buckets] must be a power of two (the standard
    sizes 32/64/128 keep the estimate's variance at ~1.3/sqrt buckets). *)

val add : t -> string -> unit
(** Insert an element by name (hashed with SHA-256; deterministic). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] ORs [src] into [dst]. *)

val equal : t -> t -> bool
val copy : t -> t

val estimate : t -> float
(** Flajolet–Martin estimate of the number of distinct inserted elements:
    [buckets / phi * 2^(mean lowest-zero-bit position)]. *)

val byte_size : t -> int
(** Wire size of the synopsis: 4 bytes per bucket (bitmaps are 31-bit, so
    64 buckets give the paper's 256-byte synopsis). *)
