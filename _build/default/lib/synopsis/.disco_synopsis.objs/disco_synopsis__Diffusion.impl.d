lib/synopsis/diffusion.ml: Array Disco_graph Disco_sim Fm_sketch Queue
