lib/synopsis/fm_sketch.mli:
