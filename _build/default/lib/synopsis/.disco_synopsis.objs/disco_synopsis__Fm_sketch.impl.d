lib/synopsis/fm_sketch.ml: Array Disco_hash Int64
