lib/synopsis/diffusion.mli: Disco_graph
