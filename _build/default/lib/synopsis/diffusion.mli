(** Gossip-based synopsis diffusion over a network graph.

    Every node starts with a sketch containing only itself and repeatedly
    exchanges synopses with neighbors (unstructured gossip over the event
    simulator). Because FM sketches are duplicate-insensitive, the gossip
    converges to the global sketch at every node in O(diameter) rounds,
    after which each node's estimate of n is within the sketch's accuracy. *)

type outcome = {
  estimates : float array;  (** per-node estimate of n after gossip *)
  rounds_run : int;
  messages : int;
  sketch_bytes : int;
}

val estimate_n :
  graph:Disco_graph.Graph.t ->
  node_name:(int -> string) ->
  ?buckets:int ->
  ?rounds:int ->
  unit ->
  outcome
(** [estimate_n ~graph ~node_name ()] runs gossip with [buckets] bitmaps
    (default 64, i.e. 256-byte synopses as in §4.1) for [rounds] rounds
    (default: enough for any graph we generate — 2 * a BFS-diameter
    estimate + 2). *)
