(** Plain-text edge-list serialization.

    Format: first line [n <nodes>], then one line [u v w] per undirected
    edge. Lines starting with [#] are comments. Lets users run the harness
    on their own topologies (e.g. a real CAIDA snapshot if they have one). *)

val to_channel : out_channel -> Graph.t -> unit
val to_file : string -> Graph.t -> unit

val of_channel : in_channel -> Graph.t
(** @raise Failure on malformed input. *)

val of_file : string -> Graph.t

val of_string : string -> Graph.t
val to_string : Graph.t -> string

val to_dot :
  ?highlight:int list -> ?label:(int -> string) -> Graph.t -> string
(** Graphviz rendering: [highlight] paints a route (consecutive nodes get
    red edges), [label] overrides node labels. Useful with the
    [disco-sim trace] output for visual debugging. *)
