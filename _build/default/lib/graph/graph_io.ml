let to_buffer buf g =
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "%d %d %.9g\n" u v w))
    (Graph.edges g)

let to_string g =
  let buf = Buffer.create 4096 in
  to_buffer buf g;
  Buffer.contents buf

let to_channel oc g = output_string oc (to_string g)

let to_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)

let of_lines lines =
  let builder = ref None in
  let line_no = ref 0 in
  Seq.iter
    (fun line ->
      incr line_no;
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match (!builder, String.split_on_char ' ' line) with
        | None, [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some n when n > 0 -> builder := Some (Graph.Builder.create n)
            | _ -> failwith (Printf.sprintf "line %d: bad node count" !line_no))
        | None, _ ->
            failwith (Printf.sprintf "line %d: expected 'n <count>' header" !line_no)
        | Some b, [ u; v; w ] -> (
            match
              (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w)
            with
            | Some u, Some v, Some w -> Graph.Builder.add_edge b u v w
            | _ -> failwith (Printf.sprintf "line %d: bad edge" !line_no))
        | Some _, _ -> failwith (Printf.sprintf "line %d: bad edge line" !line_no))
    lines;
  match !builder with
  | None -> failwith "empty graph file"
  | Some b -> Graph.Builder.build b

let of_string s = of_lines (String.split_on_char '\n' s |> List.to_seq)

let of_channel ic =
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (List.to_seq (read []))

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let to_dot ?(highlight = []) ?label g =
  let buf = Buffer.create 4096 in
  let label v =
    match label with Some f -> f v | None -> string_of_int v
  in
  let hot = Hashtbl.create 16 in
  let rec mark = function
    | u :: (v :: _ as rest) ->
        Hashtbl.replace hot (min u v, max u v) ();
        mark rest
    | _ -> ()
  in
  mark highlight;
  let on_route = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace on_route v ()) highlight;
  Buffer.add_string buf "graph disco {\n  node [shape=circle fontsize=10];\n";
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (label v)
         (if Hashtbl.mem on_route v then " style=filled fillcolor=salmon" else ""))
  done;
  List.iter
    (fun (u, v, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%.3g\"%s];\n" u v w
           (if Hashtbl.mem hot (u, v) then " color=red penwidth=2" else "")))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
