lib/graph/dijkstra.ml: Array Disco_util Graph Hashtbl List
