lib/graph/gen.ml: Array Disco_util Float Graph Hashtbl List
