lib/graph/graph.mli:
