lib/graph/graph_io.ml: Buffer Fun Graph Hashtbl List Printf Seq String
