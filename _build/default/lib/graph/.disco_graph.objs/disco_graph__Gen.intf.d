lib/graph/gen.mli: Disco_util Graph
