lib/graph/graph.ml: Array Hashtbl List Option
