lib/util/heap.mli:
