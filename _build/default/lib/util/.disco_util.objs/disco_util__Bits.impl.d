lib/util/bits.ml: Bytes Char
