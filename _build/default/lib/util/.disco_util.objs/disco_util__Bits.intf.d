lib/util/bits.mli:
