lib/util/rng.mli:
