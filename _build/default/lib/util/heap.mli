(** Binary min-heap keyed by float priority.

    Used as the frontier in Dijkstra's algorithm (with lazy deletion: stale
    entries are pushed again and skipped on pop) and as the pending-event
    queue of the discrete event simulator. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v] with the given priority. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. Ties are broken by
    insertion order (earlier insertions first), which keeps simulations
    deterministic. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
