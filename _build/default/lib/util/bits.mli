(** Bit-granular writers and readers.

    Disco addresses embed explicit routes where each hop at a degree-[d]
    node costs [ceil(log2 d)] bits (§4.2 of the paper, following the
    pathlet-routing label format). This module provides the MSB-first bit
    streams used by that encoding. *)

module Writer : sig
  type t

  val create : unit -> t

  val put : t -> int -> width:int -> unit
  (** [put w v ~width] appends the low [width] bits of [v], MSB first.
      Requires [0 <= width <= 30] and [0 <= v < 2^width]. *)

  val bit_length : t -> int
  (** Number of bits written so far. *)

  val byte_length : t -> int
  (** [ceil (bit_length / 8)]: size if serialized into whole bytes. *)

  val to_bytes : t -> bytes
  (** Serialize; the final partial byte is zero-padded. *)
end

module Reader : sig
  type t

  val of_bytes : bytes -> t

  val get : t -> width:int -> int
  (** [get r ~width] reads the next [width] bits, MSB first.
      @raise Invalid_argument if fewer than [width] bits remain. *)

  val remaining_bits : t -> int
end

val width_for : int -> int
(** [width_for d] is the number of bits needed to address one of [d]
    alternatives: [ceil(log2 d)], with [width_for 1 = 0] and
    [width_for 0 = 0]. *)
