(** Disjoint-set forest with path compression and union by rank.

    Used to check graph connectivity and to stitch random-graph generators
    into a single connected component. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [true] if they were previously distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
