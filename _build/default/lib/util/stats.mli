(** Summary statistics and CDFs for the evaluation harness.

    The paper reports results as CDFs over nodes / source-destination pairs /
    edges, plus mean/max tables. These helpers compute those summaries from
    raw samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Full summary of a non-empty sample array (the array is not modified). *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]; nearest-rank on a sorted
    array. *)

val mean : float array -> float

val cdf_points : float array -> int -> (float * float) list
(** [cdf_points samples k] returns up to [k] [(value, fraction <= value)]
    points of the empirical CDF, suitable for printing a figure series. *)

val histogram : float array -> bins:int -> (float * int) array
(** Equal-width histogram: [(bin_left_edge, count)] per bin. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_cdf :
  Format.formatter -> label:string -> (float * float) list -> unit
(** Print a CDF as gnuplot-style rows: [label value fraction]. *)
