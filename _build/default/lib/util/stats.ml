type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int n
  in
  {
    count = n;
    mean = m;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let cdf_points samples k =
  let n = Array.length samples in
  if n = 0 then []
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let k = max 1 (min k n) in
    let pick = List.init k (fun i -> (i + 1) * n / k) in
    List.map
      (fun rank ->
        let idx = max 0 (rank - 1) in
        (sorted.(idx), float_of_int rank /. float_of_int n))
      pick
  end

let histogram a ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins";
  let s = summarize a in
  let lo = s.min and hi = s.max in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    a;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

let pp_cdf ppf ~label points =
  List.iter
    (fun (v, f) -> Format.fprintf ppf "%s %.6g %.4f@." label v f)
    points
