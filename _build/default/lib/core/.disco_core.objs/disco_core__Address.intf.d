lib/core/address.mli: Disco_graph Format
