lib/core/disco.ml: Address Array Disco_graph Disco_hash Groups List Nddisco Overlay Resolution Shortcut Vicinity
