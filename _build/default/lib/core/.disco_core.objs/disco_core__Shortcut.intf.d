lib/core/shortcut.mli: Disco_graph
