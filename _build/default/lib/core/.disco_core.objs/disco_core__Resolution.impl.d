lib/core/resolution.ml: Array Disco_hash Landmark_trees List Nddisco Shortcut Vicinity
