lib/core/name.ml: Array Disco_hash Printf String
