lib/core/vicinity.mli: Disco_graph
