lib/core/header.ml: Disco Disco_graph Disco_util List Nddisco Shortcut
