lib/core/landmark_churn.mli: Disco_util Params
