lib/core/shortcut.ml: Array Disco_graph List
