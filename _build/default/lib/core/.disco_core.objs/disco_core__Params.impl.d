lib/core/params.ml: Disco_hash
