lib/core/nddisco.mli: Address Disco_graph Disco_hash Disco_util Landmark_trees Landmarks Name Params Shortcut Vicinity
