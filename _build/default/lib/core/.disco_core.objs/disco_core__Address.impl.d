lib/core/address.ml: Array Disco_graph Disco_util Format List String
