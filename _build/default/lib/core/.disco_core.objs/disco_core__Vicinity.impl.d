lib/core/vicinity.ml: Array Disco_graph Fun Hashtbl Option
