lib/core/overlay.ml: Array Disco_hash Disco_util Float Groups Hashtbl Int64 List Nddisco Params Queue
