lib/core/params.mli:
