lib/core/landmarks.mli: Disco_graph Disco_util Params
