lib/core/disco.mli: Disco_graph Disco_util Groups Name Nddisco Overlay Params Resolution Shortcut
