lib/core/resolution.mli: Disco_hash Name Nddisco Shortcut
