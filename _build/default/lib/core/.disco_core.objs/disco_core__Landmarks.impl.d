lib/core/landmarks.ml: Array Disco_graph Disco_util Fun List Params
