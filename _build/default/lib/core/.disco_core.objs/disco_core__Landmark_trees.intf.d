lib/core/landmark_trees.mli: Disco_graph
