lib/core/landmark_trees.ml: Array Disco_graph Hashtbl List
