lib/core/nddisco.ml: Address Array Disco_graph Disco_hash Landmark_trees Landmarks List Name Params Shortcut Vicinity
