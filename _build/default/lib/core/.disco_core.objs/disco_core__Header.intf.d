lib/core/header.mli: Disco Shortcut
