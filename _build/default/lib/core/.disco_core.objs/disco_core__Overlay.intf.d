lib/core/overlay.mli: Disco_util Groups Nddisco
