lib/core/name.mli: Disco_hash
