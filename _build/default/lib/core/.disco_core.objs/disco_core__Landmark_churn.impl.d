lib/core/landmark_churn.ml: Array Disco_util Params
