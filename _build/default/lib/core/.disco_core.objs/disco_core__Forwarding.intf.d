lib/core/forwarding.mli: Disco Format
