lib/core/tree_address.mli: Disco_graph Landmarks
