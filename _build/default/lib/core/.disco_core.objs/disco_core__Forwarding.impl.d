lib/core/forwarding.ml: Address Array Disco Disco_graph Format Groups Landmark_trees Landmarks List Nddisco Printf Resolution String Vicinity
