lib/core/groups.mli: Disco_hash Nddisco
