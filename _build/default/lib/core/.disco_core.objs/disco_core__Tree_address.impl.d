lib/core/tree_address.ml: Array Disco_graph Landmarks List
