lib/core/groups.ml: Array Disco_hash Fun Hashtbl Int64 List Nddisco Params
