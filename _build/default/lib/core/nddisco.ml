module Graph = Disco_graph.Graph

type t = {
  graph : Graph.t;
  params : Params.t;
  names : Name.t array;
  hashes : Disco_hash.Hash_space.id array;
  landmarks : Landmarks.t;
  vicinity : Vicinity.t;
  trees : Landmark_trees.t;
  addresses : Address.t array;
}

let build ?(params = Params.default) ?names ?landmark_ids ?(guarantee_coverage = false)
    ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Name.default_array n in
  if Array.length names <> n then invalid_arg "Nddisco.build: names size";
  let landmarks =
    match landmark_ids with
    | Some ids -> Landmarks.of_ids graph ids
    | None -> Landmarks.build ~rng ~params graph
  in
  let k = Params.vicinity_size params ~n in
  let landmarks =
    if guarantee_coverage then fst (Landmarks.ensure_coverage graph ~k landmarks)
    else landmarks
  in
  let vicinity = Vicinity.create graph ~k in
  let trees = Landmark_trees.create graph in
  let addresses =
    Array.init n (fun v -> Address.make graph ~route:(Landmarks.address_route landmarks v))
  in
  {
    graph;
    params;
    names;
    hashes = Name.hash_array names;
    landmarks;
    vicinity;
    trees;
    addresses;
  }

let n t = Graph.n t.graph
let address t v = t.addresses.(v)

let knows t u x =
  if u = x then Some [ u ]
  else if t.landmarks.is_landmark.(x) then
    Some (Landmark_trees.path_to t.trees u ~lm:x)
  else Vicinity.path t.vicinity u x

let raw_route t ~src ~dst =
  if src = dst then [ src ]
  else if t.landmarks.is_landmark.(dst) then
    Landmark_trees.path_to t.trees src ~lm:dst
  else begin
    match Vicinity.path t.vicinity src dst with
    | Some p -> p
    | None ->
        let lm = (address t dst).landmark in
        let to_landmark = Landmark_trees.path_to t.trees src ~lm in
        let from_landmark = Array.to_list (address t dst).route in
        (* Both segments contain the landmark; drop one copy. *)
        to_landmark @ List.tl from_landmark
  end

let shortcut_route t heuristic ~src ~dst =
  let fwd = raw_route t ~src ~dst in
  match fwd with
  | [ _ ] | [ _; _ ] -> fwd (* nothing to shorten *)
  | _ ->
      let rev =
        if Shortcut.uses_reverse heuristic then Some (raw_route t ~src:dst ~dst:src)
        else None
      in
      Shortcut.apply ~graph:t.graph ~knows:(knows t) heuristic ~fwd ~rev

let route_first ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  shortcut_route t heuristic ~src ~dst

let route_later ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  (* Handshake: if src is in V(dst), dst reveals the exact shortest path
     (the reverse of its vicinity path to src). *)
  match Vicinity.path t.vicinity dst src with
  | Some p when src <> dst -> List.rev p
  | _ -> shortcut_route t heuristic ~src ~dst

type state_detail = {
  vicinity_entries : int;
  landmark_entries : int;
  label_mappings : int;
  resolution_entries : int;
}

let state_entries ?(resolution_entries = 0) t v =
  let vicinity_entries = Vicinity.k t.vicinity in
  let landmark_entries = Landmarks.count t.landmarks in
  (* Forwarding-label mappings: one per neighbor that actually carries a
     shortest path toward a landmark or vicinity member (Theorem 2). We
     bound it by degree and by the routes available. *)
  let label_mappings =
    min (Graph.degree t.graph v) (vicinity_entries + landmark_entries)
  in
  { vicinity_entries; landmark_entries; label_mappings; resolution_entries }

let total_entries d =
  d.vicinity_entries + d.landmark_entries + d.label_mappings + d.resolution_entries
