(** Shortcutting heuristics (§4.2 "Shortcutting heuristics", Fig 6).

    A route produced by compact routing (s ~> l_t ~> t) can be shortened in
    flight by nodes that happen to know better paths. The paper evaluates
    six strategies; all results in its figures use {!No_path_knowledge}
    unless stated. The heuristics compose two primitives:

    - {e to-destination}: the first node on the route that knows a direct
      path to the destination diverts along it (S4's behaviour);
    - {e up-down-stream}: every node inspects the remaining route and
      splices in a shorter vicinity path to {e any} downstream node (this
      requires the packet to carry the route's global identifiers);

    optionally combined with trying the reverse-direction route and keeping
    the shorter of the two. *)

type heuristic =
  | No_shortcut
  | To_destination  (** divert at the first node knowing the destination *)
  | Shorter_fwd_rev  (** min(forward route, reverse route), no diversion *)
  | No_path_knowledge  (** to-destination + shorter-of-fwd/rev (default) *)
  | Up_down_stream  (** splice to any downstream node, forward route only *)
  | Path_knowledge  (** up-down-stream + shorter-of-fwd/rev *)

val all : heuristic list
val name : heuristic -> string
val uses_reverse : heuristic -> bool

type knowledge = int -> int -> int list option
(** [knows u x] is the direct path [u; ...; x] if node [u]'s local state
    (vicinity or cluster) holds a route to [x]. *)

val to_destination :
  graph:Disco_graph.Graph.t -> knows:knowledge -> dst:int -> int list -> int list
(** Apply the to-destination primitive to a route ending at [dst]. *)

val up_down_stream :
  graph:Disco_graph.Graph.t -> knows:knowledge -> int list -> int list
(** One pass of downstream splicing: nodes are visited in order; each may
    replace the remainder of the route if it knows a strictly shorter path
    to a downstream node (farthest such improvement wins). *)

val apply :
  graph:Disco_graph.Graph.t ->
  knows:knowledge ->
  heuristic ->
  fwd:int list ->
  rev:int list option ->
  int list
(** [apply ... ~fwd ~rev] runs a heuristic over the forward route
    [s; ...; t] and, when the heuristic calls for it, the independently
    constructed reverse route [t; ...; s] ([rev] is ignored otherwise and
    may be [None], in which case only the forward route is used). The
    result always runs s -> t. *)
