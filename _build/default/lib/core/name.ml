type t = string

let default i = Printf.sprintf "node:%d" i
let default_array n = Array.init n default
let hash name = Disco_hash.Hash_space.of_name name
let hash_array names = Array.map hash names
let byte_size = String.length
