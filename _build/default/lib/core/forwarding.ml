module Graph = Disco_graph.Graph

type step = { at : int; action : string }

type trace = {
  path : int list;
  steps : step list;
  delivered : bool;
  handshake : int list option;
}

(* In-flight packet state. [Seek] carries only the destination's flat
   name (represented by its node id; forwarding code only consults data
   the current node legitimately stores about that name). [Carry] follows
   a concrete remaining path. [tried_proxy] stops proxy ping-pong: after
   one optimistic group-proxy hop the fallback is the resolution DB. *)
type packet =
  | Seek of { tried_proxy : bool }
  | Carry of { rest : int list }

let deliver_check (d : Disco.t) ~src ~dst =
  match Vicinity.path d.Disco.nd.Nddisco.vicinity dst src with
  | Some p when src <> dst -> Some (List.rev p)
  | _ -> None

(* The node's local route to [dst] if it stores one: landmark table or
   vicinity; mirrors Nddisco.knows but is written from the node's view. *)
let local_route (d : Disco.t) u dst =
  let nd = d.Disco.nd in
  if nd.Nddisco.landmarks.Landmarks.is_landmark.(dst) then
    Some (Landmark_trees.path_to nd.Nddisco.trees u ~lm:dst)
  else Vicinity.path nd.Nddisco.vicinity u dst

(* Rewrite at a node that holds [dst]'s address: the route to the
   destination's landmark from the node's own landmark table, then the
   explicit label route. *)
let address_route (d : Disco.t) u dst =
  let nd = d.Disco.nd in
  let addr = Nddisco.address nd dst in
  let lm = addr.Address.landmark in
  let label_path =
    Address.decode nd.Nddisco.graph ~landmark:lm ~labels:addr.Address.labels
      ~hops:(Address.hops addr)
  in
  if u = lm then label_path
  else Landmark_trees.path_to nd.Nddisco.trees u ~lm @ List.tl label_path

let run (d : Disco.t) ~src ~dst ~initial =
  let nd = d.Disco.nd in
  let n = Graph.n nd.Nddisco.graph in
  let steps = ref [] and path = ref [ src ] in
  let log at action = steps := { at; action } :: !steps in
  let rec go u packet ttl =
    if ttl = 0 then (false, List.rev !path, List.rev !steps)
    else if u = dst then begin
      log u "deliver";
      (true, List.rev !path, List.rev !steps)
    end
    else begin
      match packet with
      | Seek { tried_proxy } -> (
          match local_route d u dst with
          | Some (_ :: rest) ->
              log u "direct route in local tables";
              go u (Carry { rest }) ttl
          | Some [] | None ->
              if Groups.same_group d.Disco.groups u dst then begin
                log u "group store hit: rewriting with destination address";
                match address_route d u dst with
                | _ :: rest -> go u (Carry { rest }) ttl
                | [] -> (false, List.rev !path, List.rev !steps)
              end
              else if not tried_proxy then begin
                match Disco.classify_first d ~src:u ~dst with
                | Disco.Via_group_member w -> (
                    log u (Printf.sprintf "forwarding to group proxy %d" w);
                    match Vicinity.path nd.Nddisco.vicinity u w with
                    | Some (_ :: rest) ->
                        carry_seek u rest (Seek { tried_proxy = true }) ttl
                    | _ -> (false, List.rev !path, List.rev !steps))
                | _ -> resolution u ttl
              end
              else resolution u ttl)
      | Carry { rest } -> (
          (* To-destination shortcutting: the first node holding a direct
             route diverts along it (its route is a shortest path, so the
             remaining distance strictly decreases; no loops). *)
          match local_route d u dst with
          | Some (_ :: direct) when direct <> rest ->
              log u "to-destination shortcut";
              forward u direct ttl
          | _ -> forward u rest ttl)
    end
  (* Forward one hop along [rest], staying in Carry. *)
  and forward u rest ttl =
    match rest with
    | [] -> (false, List.rev !path, List.rev !steps)
    | next :: rest' ->
        assert (Graph.edge_weight nd.Nddisco.graph u next <> None);
        path := next :: !path;
        go next (Carry { rest = rest' }) (ttl - 1)
  (* Walk a fixed path but resume [resume] at its end (used for the proxy
     and resolution legs: the packet still only carries the name).
     To-destination shortcutting applies here too — any node on the way
     holding a direct route diverts immediately. *)
  and carry_seek u rest resume ttl =
    match local_route d u dst with
    | Some (_ :: direct) ->
        if rest <> direct then log u "to-destination shortcut";
        forward u direct ttl
    | _ -> (
        match rest with
        | [] -> go u resume ttl
        | next :: rest' ->
            assert (Graph.edge_weight nd.Nddisco.graph u next <> None);
            path := next :: !path;
            if rest' = [] then go next resume (ttl - 1)
            else carry_seek next rest' resume (ttl - 1))
  and resolution u ttl =
    let owner = Resolution.owner d.Disco.resolution nd.Nddisco.names.(dst) in
    log u (Printf.sprintf "resolution fallback via landmark %d" owner);
    if u = owner then begin
      match address_route d u dst with
      | _ :: rest -> go u (Carry { rest }) ttl
      | [] -> (false, List.rev !path, List.rev !steps)
    end
    else begin
      match Landmark_trees.path_to nd.Nddisco.trees u ~lm:owner with
      | _ :: rest ->
          (* At the owner, the store supplies the address. *)
          carry_seek u rest (Seek { tried_proxy = true }) ttl
      | [] -> (false, List.rev !path, List.rev !steps)
    end
  in
  let delivered, p, s = go src initial (4 * n) in
  {
    path = p;
    steps = s;
    delivered;
    handshake = (if delivered then deliver_check d ~src ~dst else None);
  }

let first_packet d ~src ~dst =
  if src = dst then
    { path = [ src ]; steps = [ { at = src; action = "local" } ]; delivered = true;
      handshake = None }
  else run d ~src ~dst ~initial:(Seek { tried_proxy = false })

let later_packet d ~src ~dst =
  if src = dst then
    { path = [ src ]; steps = [ { at = src; action = "local" } ]; delivered = true;
      handshake = None }
  else begin
    (* The source now holds the address (and the handshake path when the
       destination sent one). *)
    match deliver_check d ~src ~dst with
    | Some exact ->
        (* src in V(dst): the destination revealed the exact path. *)
        run d ~src ~dst ~initial:(Carry { rest = List.tl exact })
    | None -> (
        match address_route d src dst with
        | _ :: rest -> run d ~src ~dst ~initial:(Carry { rest })
        | [] -> first_packet d ~src ~dst)
  end

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>path: %s%s@,%a@]"
    (String.concat "-" (List.map string_of_int t.path))
    (if t.delivered then "" else "  (NOT DELIVERED)")
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  @[at %d: %s@]" s.at s.action))
    t.steps
