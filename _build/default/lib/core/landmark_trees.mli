(** Shortest-path trees rooted at landmarks.

    Path-vector convergence leaves every node with a shortest path to every
    landmark; statically that is the landmark's single-source tree. Trees
    are computed lazily and cached — a stretch experiment touches only the
    landmarks involved in its sampled routes. *)

type t

val create : Disco_graph.Graph.t -> t

val dist : t -> lm:int -> int -> float
(** [d(lm, v)] (= [d(v, lm)], the graph is undirected). *)

val path_from : t -> lm:int -> int -> int list
(** Shortest path [lm; ...; v].
    @raise Invalid_argument if [v] is unreachable. *)

val path_to : t -> int -> lm:int -> int list
(** Shortest path [v; ...; lm]: the reverse walk (§6 notes Disco relies on
    route reversibility). *)

val cached_count : t -> int
