(** Wire-format packet headers.

    What a Disco packet actually carries, and what it costs. A first
    packet ships the destination's flat name plus, once an address is
    known, the remaining explicit route (compact per-hop labels). The
    Up-Down-Stream / Path-Knowledge heuristics additionally require
    "listing the global identifiers of every node along the path ...
    on a single initial packet" (§4.2) — an O(route · log n) surcharge
    this module makes measurable (the [header] experiment). *)

type cost = {
  name_bytes : int;  (** the flat name carried end-to-end *)
  label_bytes : int;  (** packed explicit-route labels at the source *)
  id_list_bytes : int;
      (** global node ids of the route (0 unless the heuristic needs them) *)
  total : int;
}

val first_packet :
  Disco.t ->
  heuristic:Shortcut.heuristic ->
  name_bytes:int ->
  src:int ->
  dst:int ->
  cost
(** Header of the first packet as it leaves the source, for the route the
    given heuristic produces. A self-certifying SHA-1-sized identifier is
    [name_bytes = 20]. *)

val later_packet : Disco.t -> name_bytes:int -> src:int -> dst:int -> cost
(** Later packets carry the name plus the explicit route only. *)
