(** The address-dissemination overlay (§4.4).

    Within each sloppy group, members form a Symphony-like small world:
    every node connects to its successor and predecessor in hash order,
    plus a few long-distance "fingers" drawn with probability inversely
    proportional to hash distance (bootstrapped by querying the resolution
    database for the node closest to a target hash). Address announcements
    flow through this overlay by a directional distance-vector rule —
    received from a higher hash, forwarded only to lower hashes, and vice
    versa — which kills count-to-infinity because hash distance from the
    origin strictly increases.

    {!disseminate} statically simulates one announcement per node and
    reports the Fig-8-style costs: messages, and the in-text §5 metrics
    (mean/max overlay hops an announcement travels, which the paper reports
    as 5.77/24 with 1 finger and 3.04/16 with 3 on a 1,024-node G(n,m)). *)

type t

val build :
  rng:Disco_util.Rng.t -> ?fingers:int -> Nddisco.t -> Groups.t -> t
(** [fingers] defaults to the NDDisco instance's [params.fingers]. *)

val neighbors : t -> int -> int array
(** Overlay neighbors of a node (successor, predecessor, out- and
    in-fingers) — the TCP connections it maintains. *)

val out_fingers : t -> int -> int array
(** The fingers this node chose (it paid the bootstrap queries for them). *)

val degree : t -> int -> int

val mean_degree : t -> float

type dissemination = {
  messages : int;  (** overlay messages for every node to announce once *)
  mean_hops : float;  (** average overlay hops to reach a group member *)
  max_hops : int;
  reached : int;  (** (origin, member) pairs reached *)
  expected : int;  (** (origin, member) pairs that should be reached *)
}

val disseminate : t -> dissemination
(** Simulate the directional flooding of one address announcement from
    every node to its group. *)

val announcement_reaches : t -> src:int -> dst:int -> bool
(** Does [src]'s announcement reach [dst] under directional forwarding?
    (Used by failure-injection tests and the n-error experiment.) *)
