module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra

type heuristic =
  | No_shortcut
  | To_destination
  | Shorter_fwd_rev
  | No_path_knowledge
  | Up_down_stream
  | Path_knowledge

let all =
  [
    No_shortcut;
    To_destination;
    Shorter_fwd_rev;
    No_path_knowledge;
    Up_down_stream;
    Path_knowledge;
  ]

let name = function
  | No_shortcut -> "no-shortcutting"
  | To_destination -> "to-destination"
  | Shorter_fwd_rev -> "shorter{fwd,rev}"
  | No_path_knowledge -> "no-path-knowledge"
  | Up_down_stream -> "up-down-stream"
  | Path_knowledge -> "path-knowledge"

let uses_reverse = function
  | Shorter_fwd_rev | No_path_knowledge | Path_knowledge -> true
  | No_shortcut | To_destination | Up_down_stream -> false

type knowledge = int -> int -> int list option

let to_destination ~graph ~knows ~dst route =
  ignore graph;
  let rec walk prefix_rev = function
    | [] -> List.rev prefix_rev
    | u :: rest -> (
        if u = dst then List.rev (u :: prefix_rev)
        else
          match knows u dst with
          | Some direct -> List.rev_append prefix_rev direct
          | None -> walk (u :: prefix_rev) rest)
  in
  walk [] route

(* Length of a consecutive segment of a route, by edge weights. *)
let segment_length graph route_arr i j =
  let len = ref 0.0 in
  for idx = i to j - 1 do
    match Graph.edge_weight graph route_arr.(idx) route_arr.(idx + 1) with
    | Some w -> len := !len +. w
    | None -> invalid_arg "Shortcut: route is not a path"
  done;
  !len

let up_down_stream ~graph ~knows route =
  (* The packet visits nodes in order; each visited node may rewrite the
     remaining route (splice a known shorter path to the farthest
     improvable downstream node), then forwards one hop. *)
  let rec advance visited_rev current =
    match current with
    | [] -> List.rev visited_rev
    | [ last ] -> List.rev (last :: visited_rev)
    | u :: _ ->
        let arr = Array.of_list current in
        let len = Array.length arr in
        let best = ref None in
        let j = ref (len - 1) in
        while !best = None && !j >= 1 do
          (match knows u arr.(!j) with
          | Some direct ->
              let direct_len = Dijkstra.path_length graph direct in
              if direct_len < segment_length graph arr 0 !j -. 1e-12 then
                best := Some (!j, direct)
          | None -> ());
          decr j
        done;
        let current' =
          match !best with
          | Some (j, direct) ->
              let tail = Array.to_list (Array.sub arr (j + 1) (len - j - 1)) in
              direct @ tail
          | None -> current
        in
        (* current' still starts at u; consume it and move on. *)
        advance (u :: visited_rev) (List.tl current')
  in
  advance [] route

let route_length graph route = Dijkstra.path_length graph route

let apply ~graph ~knows heuristic ~fwd ~rev =
  let dst = List.nth fwd (List.length fwd - 1) in
  let src = List.hd fwd in
  let forward_variant () =
    match heuristic with
    | No_shortcut | Shorter_fwd_rev -> fwd
    | To_destination | No_path_knowledge -> to_destination ~graph ~knows ~dst fwd
    | Up_down_stream | Path_knowledge -> up_down_stream ~graph ~knows fwd
  in
  let reverse_variant () =
    match rev with
    | None -> None
    | Some r -> (
        match heuristic with
        | No_shortcut | To_destination | Up_down_stream -> None
        | Shorter_fwd_rev -> Some (List.rev r)
        | No_path_knowledge ->
            Some (List.rev (to_destination ~graph ~knows ~dst:src r))
        | Path_knowledge -> Some (List.rev (up_down_stream ~graph ~knows r)))
  in
  let f = forward_variant () in
  match reverse_variant () with
  | None -> f
  | Some r -> if route_length graph r < route_length graph f then r else f
