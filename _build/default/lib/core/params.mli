(** Protocol parameters derived from (an estimate of) the network size.

    All of Disco's state bounds flow from three quantities (§4.2, §4.4):
    the landmark sampling probability, the vicinity size, and the
    sloppy-group prefix width. Multipliers are exposed so experiments can
    ablate the constants; defaults follow the paper. *)

type t = {
  landmark_factor : float;
      (** landmark probability = [landmark_factor * sqrt (log2 n / n)] *)
  vicinity_factor : float;
      (** vicinity size = [ceil (vicinity_factor * sqrt (n * log2 n))] *)
  fingers : int;  (** outgoing overlay fingers per node (paper tests 1, 3) *)
  resolution_replicas : int;
      (** virtual points per landmark in the consistent-hash resolution
          database (1 = the paper's "simplest form") *)
}

val default : t

val landmark_probability : t -> n:int -> float
val vicinity_size : t -> n:int -> int
val group_bits : n:int -> int
(** Re-export of {!Disco_hash.Hash_space.group_size_bits}. *)
