module Rng = Disco_util.Rng

type node = { mutable is_landmark : bool; mutable ref_n : int }

type t = {
  rng : Rng.t;
  params : Params.t;
  hysteresis : bool;
  mutable nodes : node array;
  mutable flips : int;
}

let draw t ~n = Rng.bernoulli t.rng (Params.landmark_probability t.params ~n)

let fresh_node t ~n = { is_landmark = draw t ~n; ref_n = n }

let create ~rng ~params ~hysteresis ~n0 =
  let t = { rng; params; hysteresis; nodes = [||]; flips = 0 } in
  t.nodes <- Array.init n0 (fun _ -> fresh_node t ~n:n0);
  t

let resize t ~n =
  let cur = Array.length t.nodes in
  if n > cur then
    t.nodes <- Array.append t.nodes (Array.init (n - cur) (fun _ -> fresh_node t ~n))
  else if n < cur then t.nodes <- Array.sub t.nodes 0 n

let observe t ~n =
  resize t ~n;
  let flipped = ref 0 in
  Array.iter
    (fun node ->
      let ratio =
        float_of_int (max n node.ref_n) /. float_of_int (max 1 (min n node.ref_n))
      in
      let due = (not t.hysteresis) || ratio >= 2.0 in
      if due then begin
        let status = draw t ~n in
        if t.hysteresis then node.ref_n <- n;
        if status <> node.is_landmark then begin
          node.is_landmark <- status;
          incr flipped
        end
      end)
    t.nodes;
  t.flips <- t.flips + !flipped;
  !flipped

let landmark_count t =
  Array.fold_left (fun acc node -> if node.is_landmark then acc + 1 else acc) 0 t.nodes

let total_flips t = t.flips
let population t = Array.length t.nodes
