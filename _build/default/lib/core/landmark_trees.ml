module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra

type t = {
  graph : Graph.t;
  cache : (int, Dijkstra.sssp) Hashtbl.t;
  ws : Dijkstra.workspace;
}

let create graph =
  { graph; cache = Hashtbl.create 64; ws = Dijkstra.make_workspace graph }

let tree t lm =
  match Hashtbl.find_opt t.cache lm with
  | Some s -> s
  | None ->
      let s = Dijkstra.sssp ~ws:t.ws t.graph lm in
      Hashtbl.add t.cache lm s;
      s

let dist t ~lm v = (tree t lm).dist.(v)

let path_from t ~lm v =
  let s = tree t lm in
  if s.dist.(v) = infinity then invalid_arg "Landmark_trees.path_from: unreachable";
  Dijkstra.path_of_parents
    ~parent:(fun u -> s.parent.(u))
    ~src:lm ~dst:v

let path_to t v ~lm = List.rev (path_from t ~lm v)

let cached_count t = Hashtbl.length t.cache
