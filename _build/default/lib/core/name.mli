(** Flat, location-independent node names (§2, §4.1).

    A name is an arbitrary bit string — a DNS name, MAC address, or
    self-certifying identifier. The protocol never interprets names except
    by hashing them. Simulations assign each graph node a default name, but
    any string works (the test suite exercises arbitrary names). *)

type t = string

val default : int -> t
(** The simulator's default flat name for graph node [i] ("node:<i>"); the
    mapping carries no topological information — hashes are what matter. *)

val default_array : int -> t array

val hash : t -> Disco_hash.Hash_space.id
(** Position in hash space: first 64 bits of SHA-256(name). *)

val hash_array : t array -> Disco_hash.Hash_space.id array

val byte_size : t -> int
