module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng

type t = {
  ids : int array;
  is_landmark : bool array;
  nearest : int array;
  dist : float array;
  forest_parent : int array;
}

let select ~rng ~params ~n =
  let p = Params.landmark_probability params ~n in
  let flags = Array.init n (fun _ -> Rng.bernoulli rng p) in
  if not (Array.exists Fun.id flags) then flags.(Rng.int rng n) <- true;
  flags

let assign g ~is_landmark =
  let n = Graph.n g in
  if Array.length is_landmark <> n then invalid_arg "Landmarks.assign: size";
  let ids =
    Array.of_list
      (List.filter (fun v -> is_landmark.(v)) (List.init n Fun.id))
  in
  if Array.length ids = 0 then invalid_arg "Landmarks.assign: no landmarks";
  let multi = Dijkstra.multi_source g ids in
  {
    ids;
    is_landmark = Array.copy is_landmark;
    nearest = multi.msource;
    dist = multi.mdist;
    forest_parent = multi.mparent;
  }

let build ~rng ~params g =
  let is_landmark = select ~rng ~params ~n:(Graph.n g) in
  assign g ~is_landmark

let of_ids g ids =
  let is_landmark = Array.make (Graph.n g) false in
  Array.iter (fun v -> is_landmark.(v) <- true) ids;
  assign g ~is_landmark

let ensure_coverage g ~k t =
  let n = Graph.n g in
  let ws = Dijkstra.make_workspace g in
  let is_landmark = Array.copy t.is_landmark in
  let promotions = ref 0 in
  let changed = ref true in
  (* Promotions only add landmarks, so coverage is monotone and the sweep
     reaches a fixpoint in at most n promotions. *)
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if not is_landmark.(v) then begin
        let run = Dijkstra.k_closest ~ws g v (k + 1) in
        if not (Array.exists (fun w -> is_landmark.(w)) run.Dijkstra.order) then begin
          let candidate =
            if Array.length run.Dijkstra.order > 1 then run.Dijkstra.order.(1) else v
          in
          is_landmark.(candidate) <- true;
          incr promotions;
          changed := true
        end
      end
    done
  done;
  (assign g ~is_landmark, !promotions)

let address_route t v =
  let rec up u acc =
    if t.forest_parent.(u) = -1 then u :: acc else up t.forest_parent.(u) (u :: acc)
  in
  up v []

let count t = Array.length t.ids
