(** Landmark selection and assignment (§4.2).

    Landmarks are self-selected: each node independently becomes a landmark
    with probability [sqrt(log n / n)], giving Θ(sqrt(n log n)) landmarks
    w.h.p. Every node then learns (via path vector; statically, via a
    multi-source shortest-path forest) its closest landmark [l_v], the
    distance [d(v, l_v)], and the explicit route [l_v ~> v] embedded in
    its address. *)

type t = {
  ids : int array;  (** landmark node ids, ascending *)
  is_landmark : bool array;
  nearest : int array;  (** l_v for every node v *)
  dist : float array;  (** d(v, l_v) *)
  forest_parent : int array;
      (** multi-source shortest-path forest: predecessor of v on the
          shortest path from l_v; -1 at landmarks themselves *)
}

val select : rng:Disco_util.Rng.t -> params:Params.t -> n:int -> bool array
(** Independent coin flips; guarantees at least one landmark by promoting
    a random node if all coins came up tails (the protocol cannot operate
    with zero landmarks, and w.h.p. this never triggers). *)

val assign : Disco_graph.Graph.t -> is_landmark:bool array -> t
(** Compute nearest landmarks and the shortest-path forest. *)

val build :
  rng:Disco_util.Rng.t -> params:Params.t -> Disco_graph.Graph.t -> t

val of_ids : Disco_graph.Graph.t -> int array -> t
(** Deterministic landmark set, e.g. for tests or operator-chosen
    landmarks (§6 discusses non-random selection). *)

val ensure_coverage : Disco_graph.Graph.t -> k:int -> t -> t * int
(** Make Theorem 1's w.h.p. precondition deterministic: §6 observes the
    bounds "require only that each node has at least one landmark within
    its vicinity". For every node whose [k]-vicinity contains no landmark,
    promote its closest non-landmark to landmark status and reassign;
    repeat to fixpoint. Returns the repaired set and how many promotions
    were needed (w.h.p. zero — random selection already covers). *)

val address_route : t -> int -> int list
(** The node path [l_v; ...; v] along the forest. *)

val count : t -> int
