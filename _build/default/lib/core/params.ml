type t = {
  landmark_factor : float;
  vicinity_factor : float;
  fingers : int;
  resolution_replicas : int;
}

let default =
  { landmark_factor = 1.0; vicinity_factor = 1.0; fingers = 1; resolution_replicas = 1 }

let log2 x = log x /. log 2.0

let landmark_probability t ~n =
  if n <= 1 then 1.0
  else begin
    let p = t.landmark_factor *. sqrt (log2 (float_of_int n) /. float_of_int n) in
    min 1.0 p
  end

let vicinity_size t ~n =
  if n <= 1 then 0
  else begin
    let k =
      int_of_float
        (ceil (t.vicinity_factor *. sqrt (float_of_int n *. log2 (float_of_int n))))
    in
    min (n - 1) (max 1 k)
  end

let group_bits ~n = Disco_hash.Hash_space.group_size_bits ~n_estimate:n
