(** Landmark-set maintenance under a changing network size (§4.2).

    "Since n can change, nodes will dynamically become, or cease to be,
    landmarks. To minimize churn in the set of landmarks, a node v only
    flips its landmark status if n has changed by at least a factor 2
    since the last time v changed its status. This amortizes the cost of
    landmark churn over the cost of a large number (Omega(n)) of node
    joins or leaves."

    This module simulates that rule (against the naive re-draw-every-update
    policy) so the amortization claim can be measured: see the [churn]
    experiment. *)

type t

val create :
  rng:Disco_util.Rng.t -> params:Params.t -> hysteresis:bool -> n0:int -> t
(** A population of [n0] nodes with freshly drawn landmark status.
    [hysteresis = false] gives the naive policy (every estimate update
    re-draws every node's coin). *)

val observe : t -> n:int -> int
(** Feed a new network-size estimate to every node; returns how many nodes
    flipped landmark status at this step. With hysteresis a node re-draws
    only when n moved by >= 2x since its own last re-draw. Node
    populations are resized implicitly: [n] is the new size. *)

val landmark_count : t -> int
(** Current landmarks among the current population. *)

val total_flips : t -> int
(** Cumulative status changes since creation. *)

val population : t -> int
