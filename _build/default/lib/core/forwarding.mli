(** Data-plane packet forwarding.

    {!Disco.route_first}/{!Disco.route_later} compute routes from the
    static simulator's global view; this module {e executes} a packet hop
    by hop using only state the forwarding node actually holds — its
    vicinity table, its landmark routes, its sloppy-group address store —
    exactly as a router would. The two must agree (tested), which is the
    strongest internal check that the protocol is genuinely distributed:
    no step consults information the current node wouldn't have.

    A first packet toward a flat name goes through phases:

    + at the source: classify — deliver locally, source-route if the
      address is known, else head for the best group proxy in the
      vicinity;
    + at the proxy: look the name up in the group store and rewrite the
      packet with the destination's address;
    + toward the landmark: follow the path-vector route to [l_t];
    + from the landmark: consume the address's forwarding labels bit by
      bit (the explicit route);
    + any node on the way that knows a direct route to the destination
      diverts ("to-destination" shortcutting), and the destination answers
      with the exact path when the source is in {e its} vicinity (the
      handshake), which is where later packets' stretch-3 routes come
      from.

    The trace records every decision for debugging and for the
    [disco-sim trace] CLI. *)

type step = {
  at : int;  (** node making the decision *)
  action : string;  (** human-readable decision, e.g. "rewrite: ..." *)
}

type trace = {
  path : int list;  (** nodes traversed, source first *)
  steps : step list;  (** decisions, in order *)
  delivered : bool;
  handshake : int list option;
      (** the exact path the destination reveals if the source is in its
          vicinity (None otherwise) *)
}

val first_packet : Disco.t -> src:int -> dst:int -> trace
(** Execute a first packet addressed to [dst]'s flat name. *)

val later_packet : Disco.t -> src:int -> dst:int -> trace
(** Execute a packet once the source holds the destination's address (and
    the handshake reply, if one was sent). *)

val pp_trace : Format.formatter -> trace -> unit
