lib/baselines/s4.mli: Disco_core Disco_graph Disco_util
