lib/baselines/vrr.ml: Array Disco_core Disco_graph Disco_hash Disco_util Hashtbl Int64 List Queue
