lib/baselines/seattle.ml: Array Disco_core Disco_graph Disco_hash Fun Hashtbl List
