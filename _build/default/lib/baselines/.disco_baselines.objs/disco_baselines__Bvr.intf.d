lib/baselines/bvr.mli: Disco_graph Disco_util
