lib/baselines/s4.ml: Array Disco_core Disco_graph Disco_hash Hashtbl List
