lib/baselines/tz_hierarchy.ml: Array Disco_graph Disco_util Fun Hashtbl List
