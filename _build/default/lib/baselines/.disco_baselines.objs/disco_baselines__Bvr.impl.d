lib/baselines/bvr.ml: Array Disco_graph Disco_util Float Fun List
