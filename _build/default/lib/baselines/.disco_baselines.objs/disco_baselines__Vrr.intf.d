lib/baselines/vrr.mli: Disco_core Disco_graph Disco_util
