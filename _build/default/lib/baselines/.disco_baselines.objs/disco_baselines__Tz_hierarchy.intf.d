lib/baselines/tz_hierarchy.mli: Disco_graph Disco_util
