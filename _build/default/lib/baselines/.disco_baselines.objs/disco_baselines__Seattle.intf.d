lib/baselines/seattle.mli: Disco_core Disco_graph
