lib/dynamic/network.ml: Array Disco_core Disco_graph Disco_hash Disco_sim Disco_util Fun Hashtbl List Msg
