lib/dynamic/network.mli: Disco_core Disco_graph Disco_util Msg
