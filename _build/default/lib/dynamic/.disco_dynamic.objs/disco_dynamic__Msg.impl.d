lib/dynamic/msg.ml: Disco_hash Printf
