lib/dynamic/msg.mli: Disco_hash
