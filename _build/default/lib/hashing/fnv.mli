(** FNV-1a 64-bit hash.

    A fast non-cryptographic hash used where SHA-256 would be overkill:
    consistent-hash virtual node placement and internal hash tables. *)

val hash : string -> int64
(** FNV-1a of the whole string. *)

val hash_with_seed : int -> string -> int64
(** Seeded variant: the seed is mixed in before the string, giving the
    independent hash functions needed for multi-hash consistent hashing. *)
