(** SHA-256 (FIPS 180-4), implemented from scratch.

    The paper hashes flat names with "a well-known hash function h(v)
    (e.g., SHA-2)" (§4.4) to place nodes in hash space for sloppy groups,
    the name-resolution database, and the dissemination overlay. This is a
    self-contained pure-OCaml implementation, validated against the FIPS
    test vectors in the test suite. *)

val digest : string -> string
(** [digest msg] is the 32-byte (raw, not hex) SHA-256 digest of [msg]. *)

val hex : string -> string
(** [hex msg] is the lowercase hex encoding of [digest msg]. *)

val digest_bytes : bytes -> string
