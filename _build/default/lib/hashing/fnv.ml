let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let step acc byte =
  Int64.mul (Int64.logxor acc (Int64.of_int byte)) prime

let hash s =
  let acc = ref offset_basis in
  String.iter (fun c -> acc := step !acc (Char.code c)) s;
  !acc

let hash_with_seed seed s =
  let acc = ref offset_basis in
  for i = 0 to 7 do
    acc := step !acc ((seed lsr (8 * i)) land 0xFF)
  done;
  String.iter (fun c -> acc := step !acc (Char.code c)) s;
  !acc
