(** Arithmetic on the circular hash space of node identifiers.

    Disco places each node at [h(name)], a point on a circular hash space
    (§4.4). Sloppy groups are prefixes of the hash; the dissemination
    overlay orders group members circularly; fingers are drawn with
    probability inversely proportional to hash distance. We represent a
    position as the first 64 bits of SHA-256(name), treated as an unsigned
    64-bit integer. *)

type id = int64
(** Unsigned 64-bit position in hash space. *)

val of_name : string -> id
(** First 8 bytes of SHA-256(name), big-endian. *)

val compare_unsigned : id -> id -> int
(** Order on the hash space as unsigned integers. *)

val prefix_bits : id -> width:int -> int
(** [prefix_bits h ~width] is the top [width] bits as an int
    (requires [0 <= width <= 30]); identifies [h]'s sloppy group when
    [width = k]. *)

val common_prefix_len : id -> id -> int
(** Length of the longest common leading bit prefix (0..64). *)

val ring_distance : id -> id -> id
(** Circular distance min(|a-b|, 2^64-|a-b|) as an unsigned value. *)

val directed_distance : id -> id -> id
(** Clockwise (increasing, wrapping) distance from [a] to [b]. *)

val to_hex : id -> string

val group_size_bits : n_estimate:int -> int
(** The sloppy-group prefix width [k = floor(log2 (sqrt (n / ln n)))],
    clamped to >= 0. §4.4 and Theorem 2 give two inconsistent formulas up
    to O(1); this is the variant consistent with the paper's measured
    group state (see EXPERIMENTS.md). Groups contain ~sqrt(n ln n) nodes. *)
