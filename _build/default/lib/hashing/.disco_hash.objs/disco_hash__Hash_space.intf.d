lib/hashing/hash_space.mli:
