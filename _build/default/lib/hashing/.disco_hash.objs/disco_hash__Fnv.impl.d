lib/hashing/fnv.ml: Char Int64 String
