lib/hashing/consistent_hash.ml: Array Hash_space Hashtbl List Option Printf
