lib/hashing/consistent_hash.mli: Hash_space
