lib/hashing/fnv.mli:
