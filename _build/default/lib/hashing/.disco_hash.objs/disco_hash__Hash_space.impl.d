lib/hashing/hash_space.ml: Char Int64 Printf Sha256 String
