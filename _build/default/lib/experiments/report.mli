(** Plain-text rendering of figures and tables.

    Every figure is printed as labelled gnuplot-style series ("label x y"
    rows) so the output of the bench harness diffs cleanly and can be
    re-plotted; tables are aligned text. *)

val section : string -> unit
(** Print a '== title ==' separator. *)

val kv : string -> string -> unit
(** Print an indented "key: value" line. *)

val cdf_series : label:string -> ?points:int -> float array -> unit
(** Print an empirical CDF of the samples as "label value fraction" rows. *)

val summary_line : label:string -> float array -> unit
(** One-line mean/p50/p95/max summary of a sample. *)

val table : header:string list -> string list list -> unit
(** Aligned text table. *)

val series_point : label:string -> x:float -> y:float -> unit
