lib/experiments/messaging.ml: Array Disco_core Disco_graph Disco_pathvector Disco_util List
