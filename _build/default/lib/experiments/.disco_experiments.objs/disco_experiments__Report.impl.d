lib/experiments/report.ml: Array Disco_util List Printf String
