lib/experiments/testbed.mli: Disco_baselines Disco_core Disco_graph Disco_util
