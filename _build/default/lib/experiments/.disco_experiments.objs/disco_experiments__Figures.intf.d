lib/experiments/figures.mli:
