lib/experiments/metrics.ml: Array Disco_baselines Disco_core Disco_graph Disco_util Hashtbl List Testbed
