lib/experiments/report.mli:
