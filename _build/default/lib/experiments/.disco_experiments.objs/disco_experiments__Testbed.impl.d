lib/experiments/testbed.ml: Disco_baselines Disco_core Disco_graph Disco_util
