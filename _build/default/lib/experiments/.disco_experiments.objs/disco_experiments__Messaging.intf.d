lib/experiments/messaging.mli:
