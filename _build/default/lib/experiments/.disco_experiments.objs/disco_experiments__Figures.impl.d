lib/experiments/figures.ml: Array Disco_baselines Disco_core Disco_dynamic Disco_graph Disco_pathvector Disco_synopsis Disco_util Float Fun Hashtbl List Messaging Metrics Option Printf Report Testbed
