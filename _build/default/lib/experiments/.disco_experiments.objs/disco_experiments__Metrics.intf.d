lib/experiments/metrics.mli: Disco_core Disco_graph Testbed
