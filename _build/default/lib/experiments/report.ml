module Stats = Disco_util.Stats

let section title = Printf.printf "\n== %s ==\n" title
let kv key value = Printf.printf "  %s: %s\n" key value

let cdf_series ~label ?(points = 20) samples =
  if Array.length samples = 0 then Printf.printf "%s (no samples)\n" label
  else
    List.iter
      (fun (v, f) -> Printf.printf "%s %.6g %.4f\n" label v f)
      (Stats.cdf_points samples points)

let summary_line ~label samples =
  if Array.length samples = 0 then Printf.printf "  %-28s (no samples)\n" label
  else begin
    let s = Stats.summarize samples in
    Printf.printf "  %-28s mean=%-10.4g p50=%-10.4g p95=%-10.4g max=%-10.4g\n"
      label s.Stats.mean s.Stats.p50 s.Stats.p95 s.Stats.max
  end

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell) row
    in
    Printf.printf "  %s\n" (String.concat "  " cells)
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let series_point ~label ~x ~y = Printf.printf "%s %.6g %.6g\n" label x y
