module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module S4 = Disco_baselines.S4
module Vrr = Disco_baselines.Vrr

type state_result = {
  disco : float array;
  nddisco : float array;
  s4 : float array;
  pathvector : float array;
  vrr : float array option;
}

let state ?(with_vrr = false) (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let disco_entries =
    Array.init n (fun v ->
        float_of_int (Core.Disco.total_entries (Core.Disco.state_entries tb.disco v)))
  in
  let nddisco_entries =
    Array.init n (fun v ->
        let resolution_entries =
          Core.Resolution.entries_at tb.disco.Core.Disco.resolution v
        in
        float_of_int
          (Core.Nddisco.total_entries
             (Core.Nddisco.state_entries ~resolution_entries (Testbed.nd tb) v)))
  in
  let cluster_sizes = S4.cluster_sizes tb.s4 in
  let resolution_loads = S4.resolution_loads tb.s4 in
  let s4_entries =
    Array.init n (fun v ->
        float_of_int (S4.state_entries tb.s4 ~cluster_sizes ~resolution_loads v))
  in
  let pv = Array.make n (float_of_int (n - 1)) in
  let vrr_entries =
    if with_vrr then
      Some (Array.map float_of_int (Vrr.state_entries (Testbed.vrr tb)))
    else None
  in
  {
    disco = disco_entries;
    nddisco = nddisco_entries;
    s4 = s4_entries;
    pathvector = pv;
    vrr = vrr_entries;
  }

let path_stretch graph ~dist path =
  if dist <= 0.0 then 1.0
  else Dijkstra.path_length graph path /. dist

type stretch_series = { first : float array; later : float array }

type stretch_result = {
  s_disco : stretch_series;
  s_nddisco : stretch_series;
  s_s4 : stretch_series;
  s_vrr : float array option;
  vrr_failures : int;
}

(* Sample [pairs] (src, dst) pairs grouped by source so one SSSP per source
   serves all its destinations. *)
let sample_pairs rng ~n ~pairs =
  let dests_per_src = 8 in
  let sources = max 1 ((pairs + dests_per_src - 1) / dests_per_src) in
  List.init sources (fun _ ->
      let s = Rng.int rng n in
      let ds =
        List.init dests_per_src (fun _ -> Rng.int rng n)
        |> List.filter (fun d -> d <> s)
        |> List.sort_uniq compare
      in
      (s, ds))

let stretch ?(heuristic = Core.Shortcut.No_path_knowledge) ?(pairs = 2000)
    ?(with_vrr = false) (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let rng = Testbed.rng tb ~purpose:11 in
  let groups = sample_pairs rng ~n ~pairs in
  let ws = Dijkstra.make_workspace tb.graph in
  let vrr = if with_vrr then Some (Testbed.vrr tb) else None in
  let acc_df = ref [] and acc_dl = ref [] in
  let acc_nf = ref [] and acc_nl = ref [] in
  let acc_sf = ref [] and acc_sl = ref [] in
  let acc_v = ref [] in
  let vrr_failures = ref 0 in
  List.iter
    (fun (s, dests) ->
      let sp = Dijkstra.sssp ~ws tb.graph s in
      List.iter
        (fun t ->
          let dist = sp.Dijkstra.dist.(t) in
          if dist < infinity && dist > 0.0 then begin
            let st path = path_stretch tb.graph ~dist path in
            acc_df :=
              st (Core.Disco.route_first ~heuristic tb.disco ~src:s ~dst:t)
              :: !acc_df;
            acc_dl :=
              st (Core.Disco.route_later ~heuristic tb.disco ~src:s ~dst:t)
              :: !acc_dl;
            acc_nf :=
              st (Core.Nddisco.route_first ~heuristic (Testbed.nd tb) ~src:s ~dst:t)
              :: !acc_nf;
            acc_nl :=
              st (Core.Nddisco.route_later ~heuristic (Testbed.nd tb) ~src:s ~dst:t)
              :: !acc_nl;
            acc_sf := st (S4.route_first tb.s4 ~src:s ~dst:t) :: !acc_sf;
            acc_sl := st (S4.route_later tb.s4 ~src:s ~dst:t) :: !acc_sl;
            match vrr with
            | None -> ()
            | Some v -> (
                match Vrr.route v ~src:s ~dst:t with
                | Some path -> acc_v := st path :: !acc_v
                | None -> incr vrr_failures)
          end)
        dests)
    groups;
  let arr l = Array.of_list (List.rev !l) in
  {
    s_disco = { first = arr acc_df; later = arr acc_dl };
    s_nddisco = { first = arr acc_nf; later = arr acc_nl };
    s_s4 = { first = arr acc_sf; later = arr acc_sl };
    s_vrr = (if with_vrr then Some (arr acc_v) else None);
    vrr_failures = !vrr_failures;
  }

let mean_stretch_by_heuristic ?(pairs = 1000) (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let rng = Testbed.rng tb ~purpose:12 in
  let groups = sample_pairs rng ~n ~pairs in
  let ws = Dijkstra.make_workspace tb.graph in
  List.map
    (fun heuristic ->
      let acc = ref [] in
      List.iter
        (fun (s, dests) ->
          let sp = Dijkstra.sssp ~ws tb.graph s in
          List.iter
            (fun t ->
              let dist = sp.Dijkstra.dist.(t) in
              if dist < infinity && dist > 0.0 then
                acc :=
                  path_stretch tb.graph ~dist
                    (Core.Disco.route_later ~heuristic tb.disco ~src:s ~dst:t)
                  :: !acc)
            dests)
        groups;
      (heuristic, Disco_util.Stats.mean (Array.of_list !acc)))
    Core.Shortcut.all

type congestion_result = {
  c_disco : float array;
  c_s4 : float array;
  c_pathvector : float array;
  c_vrr : float array option;
}

let congestion ?(with_vrr = false) (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let m = Graph.m tb.graph in
  let rng = Testbed.rng tb ~purpose:13 in
  (* Undirected edge id: index of the (min endpoint -> max endpoint) arc. *)
  let edge_id u v =
    let a = min u v and b = max u v in
    match Graph.edge_index tb.graph a b with
    | Some i -> i
    | None -> invalid_arg "Metrics.congestion: route uses a non-edge"
  in
  let compact = Hashtbl.create (2 * m) in
  let next = ref 0 in
  let slot arc =
    match Hashtbl.find_opt compact arc with
    | Some s -> s
    | None ->
        let s = !next in
        Hashtbl.add compact arc s;
        incr next;
        s
  in
  let use counts path =
    let rec go = function
      | [] | [ _ ] -> ()
      | u :: (v :: _ as rest) ->
          let s = slot (edge_id u v) in
          counts.(s) <- counts.(s) +. 1.0;
          go rest
    in
    go path
  in
  let disco_counts = Array.make m 0.0 in
  let s4_counts = Array.make m 0.0 in
  let pv_counts = Array.make m 0.0 in
  let vrr_counts = Array.make m 0.0 in
  let vrr = if with_vrr then Some (Testbed.vrr tb) else None in
  let ws = Dijkstra.make_workspace tb.graph in
  for s = 0 to n - 1 do
    let t = Rng.int rng n in
    if t <> s then begin
      use disco_counts (Core.Disco.route_later tb.disco ~src:s ~dst:t);
      use s4_counts (S4.route_later tb.s4 ~src:s ~dst:t);
      let sp = Dijkstra.sssp ~ws tb.graph s in
      use pv_counts
        (Dijkstra.path_of_parents
           ~parent:(fun u -> sp.Dijkstra.parent.(u))
           ~src:s ~dst:t);
      match vrr with
      | None -> ()
      | Some v -> (
          match Vrr.route v ~src:s ~dst:t with
          | Some path -> use vrr_counts path
          | None -> ())
    end
  done;
  {
    c_disco = disco_counts;
    c_s4 = s4_counts;
    c_pathvector = pv_counts;
    c_vrr = (if with_vrr then Some vrr_counts else None);
  }
