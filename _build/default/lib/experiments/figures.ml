module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

type scale = Small | Paper

let scale_of_string = function
  | "small" -> Some Small
  | "paper" -> Some Paper
  | _ -> None

let big_n = function Small -> 4096 | Paper -> 16384
let pairs_for = function Small -> 1500 | Paper -> 2000

let fig_topologies scale =
  [ (Gen.Geometric, big_n scale); (Gen.As_level, big_n scale); (Gen.Router_level, big_n scale) ]

(* fig1: the paper's protocol-comparison table, but measured. One
   latency-weighted topology, every protocol's state and stretch side by
   side; "scalable / low stretch / flat names" become numbers. *)
let fig1 ~seed _scale =
  let n = 1024 in
  Report.section
    (Printf.sprintf "fig1 (measured): all protocols on a geometric graph, n=%d" n);
  let tb = Testbed.make ~seed Gen.Geometric ~n in
  let g = tb.Testbed.graph in
  let bvr = Disco_baselines.Bvr.build ~rng:(Testbed.rng tb ~purpose:41) g in
  let seattle =
    Disco_baselines.Seattle.build g
      ~names:(Testbed.nd tb).Core.Nddisco.names
  in
  let vrr = Testbed.vrr tb in
  let st = Metrics.state ~with_vrr:true tb in
  let ws = Disco_graph.Dijkstra.make_workspace g in
  let rng = Testbed.rng tb ~purpose:42 in
  (* One pass of sampled pairs measured under every protocol. *)
  let samples = Hashtbl.create 8 in
  let push key v =
    Hashtbl.replace samples key
      (v :: Option.value ~default:[] (Hashtbl.find_opt samples key))
  in
  let bvr_failures = ref 0 in
  for _ = 1 to 250 do
    let s = Rng.int rng n in
    let sp = Disco_graph.Dijkstra.sssp ~ws g s in
    for _ = 1 to 4 do
      let t = Rng.int rng n in
      let d = sp.Disco_graph.Dijkstra.dist.(t) in
      if t <> s && d > 0.0 && d < infinity then begin
        let stretch path = Metrics.path_stretch g ~dist:d path in
        push `Disco_first (stretch (Core.Disco.route_first tb.Testbed.disco ~src:s ~dst:t));
        push `Disco_later (stretch (Core.Disco.route_later tb.Testbed.disco ~src:s ~dst:t));
        push `Nd_first (stretch (Core.Nddisco.route_first (Testbed.nd tb) ~src:s ~dst:t));
        push `S4_first (stretch (Disco_baselines.S4.route_first tb.Testbed.s4 ~src:s ~dst:t));
        push `S4_later (stretch (Disco_baselines.S4.route_later tb.Testbed.s4 ~src:s ~dst:t));
        push `Seattle_first (stretch (Disco_baselines.Seattle.route_first seattle ~src:s ~dst:t));
        (match Disco_baselines.Vrr.route vrr ~src:s ~dst:t with
        | Some p -> push `Vrr (stretch p)
        | None -> ());
        match Disco_baselines.Bvr.route bvr ~src:s ~dst:t with
        | Some p -> push `Bvr (stretch p)
        | None -> incr bvr_failures
      end
    done
  done;
  let stat key =
    match Hashtbl.find_opt samples key with
    | Some l ->
        let s = Stats.summarize (Array.of_list l) in
        Printf.sprintf "%.2f / %.2f" s.Stats.mean s.Stats.max
    | None -> "-"
  in
  let state_of arr =
    let s = Stats.summarize arr in
    Printf.sprintf "%.0f / %.0f" s.Stats.mean s.Stats.max
  in
  let bvr_state =
    state_of (Array.init n (fun v -> float_of_int (Disco_baselines.Bvr.state_entries bvr v)))
  in
  let seattle_state =
    state_of
      (Array.init n (fun v -> float_of_int (Disco_baselines.Seattle.state_entries seattle v)))
  in
  let vrr_state =
    match st.Metrics.vrr with Some v -> state_of v | None -> "-"
  in
  Report.table
    ~header:[ "protocol"; "state mean/max"; "first stretch mean/max"; "later"; "flat names" ]
    [
      [ "path vector"; state_of st.Metrics.pathvector; "1.00 / 1.00"; "1.00 / 1.00"; "no" ];
      [ "seattle"; seattle_state; stat `Seattle_first; "1.00 / 1.00"; "lookup detour" ];
      [ "bvr"; bvr_state; "-"; stat `Bvr; "lookup at beacons" ];
      [ "vrr"; vrr_state; stat `Vrr; stat `Vrr; "yes, unbounded stretch" ];
      [ "s4"; state_of st.Metrics.s4; stat `S4_first; stat `S4_later; "lookup detour" ];
      [ "nddisco"; state_of st.Metrics.nddisco; stat `Nd_first; "<= first"; "no (addresses)" ];
      [ "disco"; state_of st.Metrics.disco; stat `Disco_first; stat `Disco_later; "yes, stretch-bounded" ];
    ];
  Report.kv "bvr greedy failures (would scoped-flood)" (string_of_int !bvr_failures)

(* fig2: per-node state CDFs on geometric / AS / router topologies. *)
let fig2 ~seed scale =
  Report.section
    (Printf.sprintf "fig2: state CDF over nodes (Disco, NDDisco, S4); n=%d"
       (big_n scale));
  List.iter
    (fun (kind, n) ->
      let tb = Testbed.make ~seed kind ~n in
      let st = Metrics.state tb in
      Printf.printf " topology=%s\n" (Gen.kind_name kind);
      Report.summary_line ~label:"disco" st.Metrics.disco;
      Report.summary_line ~label:"nddisco" st.Metrics.nddisco;
      Report.summary_line ~label:"s4" st.Metrics.s4;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.disco" (Gen.kind_name kind)) st.Metrics.disco;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.nddisco" (Gen.kind_name kind)) st.Metrics.nddisco;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.s4" (Gen.kind_name kind)) st.Metrics.s4)
    (fig_topologies scale)

(* fig3: stretch CDFs (first and later packets) on the same topologies. *)
let fig3 ~seed scale =
  Report.section
    (Printf.sprintf "fig3: stretch CDF over src-dst pairs; n=%d" (big_n scale));
  List.iter
    (fun (kind, n) ->
      let tb = Testbed.make ~seed kind ~n in
      let st = Metrics.stretch ~pairs:(pairs_for scale) tb in
      Printf.printf " topology=%s\n" (Gen.kind_name kind);
      Report.summary_line ~label:"disco-first" st.Metrics.s_disco.Metrics.first;
      Report.summary_line ~label:"disco-later" st.Metrics.s_disco.Metrics.later;
      Report.summary_line ~label:"s4-first" st.Metrics.s_s4.Metrics.first;
      Report.summary_line ~label:"s4-later" st.Metrics.s_s4.Metrics.later;
      let pre = Printf.sprintf "fig3.%s" (Gen.kind_name kind) in
      Report.cdf_series ~label:(pre ^ ".disco-first") st.Metrics.s_disco.Metrics.first;
      Report.cdf_series ~label:(pre ^ ".disco-later") st.Metrics.s_disco.Metrics.later;
      Report.cdf_series ~label:(pre ^ ".s4-first") st.Metrics.s_s4.Metrics.first;
      Report.cdf_series ~label:(pre ^ ".s4-later") st.Metrics.s_s4.Metrics.later)
    (fig_topologies scale)

(* fig4/fig5: state, stretch and congestion with VRR on 1,024-node graphs. *)
let fig45 ~seed ~kind ~fig_name =
  let n = 1024 in
  Report.section
    (Printf.sprintf "%s: state/stretch/congestion incl. VRR; %s n=%d" fig_name
       (Gen.kind_name kind) n);
  let tb = Testbed.make ~seed kind ~n in
  let st = Metrics.state ~with_vrr:true tb in
  Printf.printf " state (entries per node)\n";
  Report.summary_line ~label:"disco" st.Metrics.disco;
  Report.summary_line ~label:"nddisco" st.Metrics.nddisco;
  Report.summary_line ~label:"s4" st.Metrics.s4;
  Report.summary_line ~label:"pathvector" st.Metrics.pathvector;
  (match st.Metrics.vrr with
  | Some v -> Report.summary_line ~label:"vrr" v
  | None -> ());
  Report.cdf_series ~label:(fig_name ^ ".state.disco") st.Metrics.disco;
  Report.cdf_series ~label:(fig_name ^ ".state.s4") st.Metrics.s4;
  (match st.Metrics.vrr with
  | Some v -> Report.cdf_series ~label:(fig_name ^ ".state.vrr") v
  | None -> ());
  let sr = Metrics.stretch ~pairs:1500 ~with_vrr:true tb in
  Printf.printf " stretch (over src-dst pairs)\n";
  Report.summary_line ~label:"disco-first" sr.Metrics.s_disco.Metrics.first;
  Report.summary_line ~label:"disco-later" sr.Metrics.s_disco.Metrics.later;
  Report.summary_line ~label:"s4-first" sr.Metrics.s_s4.Metrics.first;
  Report.summary_line ~label:"s4-later" sr.Metrics.s_s4.Metrics.later;
  (match sr.Metrics.s_vrr with
  | Some v ->
      Report.summary_line ~label:"vrr" v;
      Report.kv "vrr route failures" (string_of_int sr.Metrics.vrr_failures)
  | None -> ());
  let c = Metrics.congestion ~with_vrr:true tb in
  Printf.printf " congestion (paths per edge; tail matters)\n";
  Report.summary_line ~label:"disco" c.Metrics.c_disco;
  Report.summary_line ~label:"s4" c.Metrics.c_s4;
  Report.summary_line ~label:"pathvector" c.Metrics.c_pathvector;
  (match c.Metrics.c_vrr with
  | Some v -> Report.summary_line ~label:"vrr" v
  | None -> ())

(* fig6: mean stretch per shortcutting heuristic across four topologies. *)
let fig6 ~seed scale =
  Report.section "fig6: mean stretch by shortcutting heuristic";
  let n_big = big_n scale in
  let topologies =
    [
      (Gen.As_level, n_big, "as-level");
      (Gen.Router_level, n_big, "router-level");
      (Gen.Geometric, n_big, Printf.sprintf "geometric-%d" n_big);
      (Gen.Gnm, n_big, Printf.sprintf "gnm-%d" n_big);
    ]
  in
  let columns =
    List.map
      (fun (kind, n, label) ->
        let tb = Testbed.make ~seed kind ~n in
        (label, Metrics.mean_stretch_by_heuristic ~pairs:600 tb))
      topologies
  in
  let rows =
    List.map
      (fun h ->
        Core.Shortcut.name h
        :: List.map
             (fun (_, col) -> Printf.sprintf "%.3f" (List.assoc h col))
             columns)
      Core.Shortcut.all
  in
  Report.table
    ~header:("heuristic" :: List.map (fun (l, _) -> l) columns)
    rows

(* fig7: state in entries and kilobytes (IPv4/IPv6 name sizes). *)
let fig7 ~seed scale =
  let n = big_n scale in
  Report.section
    (Printf.sprintf "fig7: state entries and KB on router-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let st = Metrics.state tb in
  let addr_bytes name_bytes w =
    float_of_int
      (name_bytes + Core.Address.byte_size ~name_bytes (Core.Nddisco.address nd w))
  in
  let mean_addr nb =
    Stats.mean (Array.init (Graph.n tb.Testbed.graph) (fun w -> addr_bytes nb w))
  in
  (* Per-node bytes for the two route-table protocols: route entries cost
     name + 2B of next-hop state; resolution/group mappings cost
     name + address. *)
  let nddisco_bytes nb v =
    let resolution_entries =
      Core.Resolution.entries_at tb.Testbed.disco.Core.Disco.resolution v
    in
    let d = Core.Nddisco.state_entries ~resolution_entries nd v in
    float_of_int
      ((d.Core.Nddisco.vicinity_entries + d.Core.Nddisco.landmark_entries)
       * (nb + 2)
      + (2 * d.Core.Nddisco.label_mappings))
    +. (float_of_int d.Core.Nddisco.resolution_entries *. (mean_addr nb +. 0.0))
  in
  let cluster_sizes = Disco_baselines.S4.cluster_sizes tb.Testbed.s4 in
  let resolution_loads = Disco_baselines.S4.resolution_loads tb.Testbed.s4 in
  let s4_bytes nb v =
    let entries =
      Disco_baselines.S4.state_entries tb.Testbed.s4 ~cluster_sizes
        ~resolution_loads v
    in
    let resolution = resolution_loads.(v) in
    let labels = min (Graph.degree tb.Testbed.graph v) entries in
    float_of_int ((entries - resolution - labels) * (nb + 2))
    +. float_of_int (2 * labels)
    +. (float_of_int resolution *. mean_addr nb)
  in
  let disco_bytes nb v = Core.Disco.state_bytes tb.Testbed.disco ~name_bytes:nb v in
  let nn = Graph.n tb.Testbed.graph in
  let collect f = Array.init nn f in
  let row label entries bytes4 bytes16 =
    let e = Stats.summarize entries in
    let b4 = Stats.summarize bytes4 in
    let b16 = Stats.summarize bytes16 in
    [
      label;
      Printf.sprintf "%.1f" e.Stats.mean;
      Printf.sprintf "%.0f" e.Stats.max;
      Printf.sprintf "%.2f" (b4.Stats.mean /. 1024.0);
      Printf.sprintf "%.2f" (b4.Stats.max /. 1024.0);
      Printf.sprintf "%.2f" (b16.Stats.mean /. 1024.0);
      Printf.sprintf "%.2f" (b16.Stats.max /. 1024.0);
    ]
  in
  Report.table
    ~header:
      [ "scheme"; "entries-mean"; "entries-max"; "KB(IPv4)-mean"; "KB(IPv4)-max";
        "KB(IPv6)-mean"; "KB(IPv6)-max" ]
    [
      row "s4" st.Metrics.s4 (collect (s4_bytes 4)) (collect (s4_bytes 16));
      row "nddisco" st.Metrics.nddisco
        (collect (nddisco_bytes 4))
        (collect (nddisco_bytes 16));
      row "disco" st.Metrics.disco (collect (disco_bytes 4)) (collect (disco_bytes 16));
    ]

(* fig8: messages per node until convergence, G(n,m) of increasing size. *)
let fig8 ~seed scale =
  Report.section "fig8: mean messages/node until convergence on G(n,m)";
  let sizes =
    match scale with
    | Small -> [ 128; 256; 512; 1024 ]
    | Paper -> [ 128; 256; 512; 1024; 1280 ]
  in
  let points = Messaging.sweep ~seed ~pv_cap:512 ~sizes () in
  Report.table
    ~header:[ "n"; "pathvector"; "s4"; "nddisco"; "disco-1f"; "disco-3f" ]
    (List.map
       (fun (p : Messaging.point) ->
         [
           string_of_int p.Messaging.n;
           Printf.sprintf "%.0f%s" p.Messaging.pathvector
             (if p.Messaging.pv_measured then "" else " (extrapolated)");
           Printf.sprintf "%.0f" p.Messaging.s4;
           Printf.sprintf "%.0f" p.Messaging.nddisco;
           Printf.sprintf "%.0f" p.Messaging.disco_1f;
           Printf.sprintf "%.0f" p.Messaging.disco_3f;
         ])
       points)

(* fig9: mean stretch and mean state as n grows (geometric graphs). *)
let fig9 ~seed scale =
  Report.section "fig9: scaling on geometric graphs (mean stretch, mean state)";
  let sizes =
    match scale with
    | Small -> [ 1024; 2048; 4096 ]
    | Paper -> [ 2048; 4096; 8192; 16384 ]
  in
  List.iter
    (fun n ->
      let tb = Testbed.make ~seed Gen.Geometric ~n in
      let sr = Metrics.stretch ~pairs:800 tb in
      let st = Metrics.state tb in
      let x = float_of_int n in
      Report.series_point ~label:"fig9.stretch.disco-first" ~x
        ~y:(Stats.mean sr.Metrics.s_disco.Metrics.first);
      Report.series_point ~label:"fig9.stretch.disco-later" ~x
        ~y:(Stats.mean sr.Metrics.s_disco.Metrics.later);
      Report.series_point ~label:"fig9.stretch.s4-first" ~x
        ~y:(Stats.mean sr.Metrics.s_s4.Metrics.first);
      Report.series_point ~label:"fig9.stretch.s4-later" ~x
        ~y:(Stats.mean sr.Metrics.s_s4.Metrics.later);
      Report.series_point ~label:"fig9.state.disco" ~x ~y:(Stats.mean st.Metrics.disco);
      Report.series_point ~label:"fig9.state.nddisco" ~x
        ~y:(Stats.mean st.Metrics.nddisco);
      Report.series_point ~label:"fig9.state.s4" ~x ~y:(Stats.mean st.Metrics.s4))
    sizes

(* fig10: congestion tail on the AS-level topology. *)
let fig10 ~seed scale =
  let n = big_n scale in
  Report.section
    (Printf.sprintf "fig10: congestion on AS-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.As_level ~n in
  let c = Metrics.congestion tb in
  Report.summary_line ~label:"disco" c.Metrics.c_disco;
  Report.summary_line ~label:"s4" c.Metrics.c_s4;
  Report.summary_line ~label:"pathvector" c.Metrics.c_pathvector;
  let tail label samples =
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let m = Array.length sorted in
    let pick q = sorted.(min (m - 1) (int_of_float (q *. float_of_int m))) in
    Report.kv
      (label ^ " p99.9/p99.95/max")
      (Printf.sprintf "%.0f / %.0f / %.0f" (pick 0.999) (pick 0.9995)
         sorted.(m - 1))
  in
  tail "disco" c.Metrics.c_disco;
  tail "s4" c.Metrics.c_s4;
  tail "pathvector" c.Metrics.c_pathvector

(* addr: §4.2 explicit-route address sizes on the router-level topology. *)
let fig_addr ~seed scale =
  let n = big_n scale in
  Report.section
    (Printf.sprintf
       "addr: explicit-route address size on router-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let sizes =
    Array.init n (fun v ->
        float_of_int (Core.Address.route_byte_size (Core.Nddisco.address nd v)))
  in
  Report.summary_line ~label:"route bytes" sizes;
  Report.kv "paper (192k-node CAIDA router map)" "mean=2.93 p95=5 max=10.625";
  (* Ablation: the fixed-width tree-address variant §4.2 rejects. The
     paper's claim is that it "would actually increase the mean address
     size in practice" — compare. *)
  let ta = Core.Tree_address.build tb.Testbed.graph nd.Core.Nddisco.landmarks in
  let fixed_bytes = float_of_int ((Core.Tree_address.bits ta + 7) / 8) in
  Report.kv "tree-address variant"
    (Printf.sprintf "fixed %d bits = %.0f bytes per address (vs %.2f mean explicit)"
       (Core.Tree_address.bits ta) fixed_bytes (Stats.mean sizes));
  Report.kv "paper's claim holds"
    (if fixed_bytes > Stats.mean sizes then "yes (fixed > mean explicit)"
     else "no at this scale")

(* overlay: 1 vs 3 fingers, announcement hops and messages; then the
   naive alternative §4.4 rejects — relaying group state through the
   resolution landmarks — costed in bytes per refresh epoch. *)
let fig_overlay ~seed _scale =
  Report.section "overlay: address dissemination, 1 vs 3 fingers (G(n,m), n=1024)";
  List.iter
    (fun (s : Messaging.overlay_stats) ->
      Report.kv
        (Printf.sprintf "%d finger(s)" s.Messaging.fingers)
        (Printf.sprintf
           "announce hops mean=%.2f max=%d; dissemination msgs=%d; coverage=%.4f"
           s.Messaging.mean_announce_hops s.Messaging.max_announce_hops
           s.Messaging.dissemination_messages s.Messaging.coverage))
    (Messaging.overlay_comparison ~seed ~n:1024 ());
  (* Naive landmark relay: every node refreshes its address once per epoch;
     the owner landmark must push it to every member of the node's group
     ("the landmark would have to relay O~(sqrt n) addresses to each of
     O~(sqrt n) nodes for a total of O~(n) bytes per minute", §4.4). *)
  let n = 1024 in
  let tb = Testbed.make ~seed Gen.Gnm ~n in
  let nd = Testbed.nd tb in
  let owners = Core.Resolution.owners_by_node tb.Testbed.disco.Core.Disco.resolution in
  let addr_bytes w =
    20 + Core.Address.byte_size ~name_bytes:20 (Core.Nddisco.address nd w)
  in
  let relay = Array.make n 0 in
  for w = 0 to n - 1 do
    let subscribers = Array.length (Core.Groups.members tb.Testbed.disco.Core.Disco.groups w) - 1 in
    relay.(owners.(w)) <- relay.(owners.(w)) + (subscribers * addr_bytes w)
  done;
  let landmark_loads =
    Array.to_list relay |> List.filter (fun b -> b > 0) |> List.map float_of_int
    |> Array.of_list
  in
  let naive = Stats.summarize landmark_loads in
  (* Overlay: each node forwards each announcement it first receives to a
     constant number of overlay links. *)
  let groups = tb.Testbed.disco.Core.Disco.groups in
  let overlay = Core.Overlay.build ~rng:(Testbed.rng tb ~purpose:71) ~fingers:1 nd groups in
  let d = Core.Overlay.disseminate overlay in
  let mean_addr =
    Stats.mean (Array.init n (fun w -> float_of_int (addr_bytes w)))
  in
  let overlay_per_node =
    float_of_int d.Core.Overlay.messages /. float_of_int n *. mean_addr
  in
  Report.kv "naive landmark relay (bytes/landmark/epoch)"
    (Printf.sprintf "mean %.0f, max %.0f (concentrated on the %d owner landmarks)"
       naive.Stats.mean naive.Stats.max (Array.length landmark_loads));
  Report.kv "overlay dissemination (bytes/node/epoch)"
    (Printf.sprintf "%.0f, spread evenly" overlay_per_node)

(* nerror: random error in each node's estimate of n (§5). n = 2048 puts
   the group-width boundary (k flips at n ~ 1844) inside the error range,
   so nodes genuinely disagree on the grouping — at n = 1024 even ±60%
   error leaves every node with the same k and the experiment shows
   nothing. *)
let fig_nerror ~seed _scale =
  Report.section "nerror: error in estimating n (G(n,m), n=2048)";
  let n = 2048 in
  let rng = Rng.create ((seed * 31337) + 5) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let nd = Core.Nddisco.build ~rng graph in
  List.iter
    (fun error ->
      let est_rng = Rng.create ((seed * 7) + int_of_float (error *. 100.0)) in
      let n_estimates =
        Array.init n (fun _ ->
            let factor = 1.0 +. Rng.float est_rng (2.0 *. error) -. error in
            max 2 (int_of_float (float_of_int n *. factor)))
      in
      let groups =
        Core.Groups.build_with_estimates ~hashes:nd.Core.Nddisco.hashes ~n_estimates
      in
      let disco = Core.Disco.of_nddisco ~rng:(Rng.create (seed + 77)) ~groups nd in
      (* Sampled pairs: how often does the group mechanism fail over to the
         resolution database, and what's the mean first-packet stretch? *)
      let pair_rng = Rng.create (seed + 991) in
      let ws = Disco_graph.Dijkstra.make_workspace graph in
      let fallbacks = ref 0 and total = ref 0 in
      let stretches = ref [] in
      for _ = 1 to 300 do
        let s = Rng.int pair_rng n in
        let sp = Disco_graph.Dijkstra.sssp ~ws graph s in
        for _ = 1 to 5 do
          let t = Rng.int pair_rng n in
          if t <> s then begin
            incr total;
            (match Core.Disco.classify_first disco ~src:s ~dst:t with
            | Core.Disco.Resolution_fallback -> incr fallbacks
            | _ -> ());
            let dist = sp.Disco_graph.Dijkstra.dist.(t) in
            if dist > 0.0 && dist < infinity then
              stretches :=
                Metrics.path_stretch graph ~dist
                  (Core.Disco.route_first disco ~src:s ~dst:t)
                :: !stretches
          end
        done
      done;
      Report.kv
        (Printf.sprintf "error ±%.0f%%" (error *. 100.0))
        (Printf.sprintf "fallback rate=%.4f mean first stretch=%.4f"
           (float_of_int !fallbacks /. float_of_int (max 1 !total))
           (Stats.mean (Array.of_list !stretches))))
    [ 0.0; 0.4; 0.6 ]

(* synopsis: §4.1 estimate-n accuracy via synopsis diffusion. The sketch
   of a fixed name set is deterministic, so one run is a single
   realization; salt the names over several runs and report the average
   absolute error, matching the paper's "within 10% on average". *)
let fig_synopsis ~seed _scale =
  Report.section "synopsis: estimating n by synopsis diffusion (G(n,m), n=1024)";
  let n = 1024 in
  let rng = Rng.create (seed * 13) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let runs = 8 in
  List.iter
    (fun buckets ->
      let bytes = ref 0 and msgs = ref 0 and rounds = ref 0 in
      let errors =
        Array.init runs (fun salt ->
            let node_name v = Printf.sprintf "run%d/%s" salt (Core.Name.default v) in
            let o =
              Disco_synopsis.Diffusion.estimate_n ~graph ~node_name ~buckets ()
            in
            bytes := o.Disco_synopsis.Diffusion.sketch_bytes;
            msgs := o.Disco_synopsis.Diffusion.messages;
            rounds := o.Disco_synopsis.Diffusion.rounds_run;
            (* All nodes converge to the global sketch; read node 0. *)
            Float.abs (o.Disco_synopsis.Diffusion.estimates.(0) -. float_of_int n)
            /. float_of_int n)
      in
      Report.kv
        (Printf.sprintf "%d buckets (%dB synopsis)" buckets !bytes)
        (Printf.sprintf
           "mean |error|=%.1f%% max |error|=%.1f%% over %d runs (rounds=%d msgs/run=%d)"
           (100.0 *. Stats.mean errors)
           (100.0 *. (Stats.summarize errors).Stats.max)
           runs !rounds !msgs))
    [ 32; 64; 128 ]

(* churn: §4.2's factor-2 hysteresis rule for landmark status, vs the
   naive policy of re-drawing on every estimate update. *)
let fig_churn ~seed _scale =
  Report.section "churn: landmark flips while n grows 1k -> ~8k (+10%/step)";
  let trajectory =
    let rec go acc n k =
      if k = 0 then List.rev acc else go ((n * 11 / 10) :: acc) (n * 11 / 10) (k - 1)
    in
    go [] 1024 22
  in
  List.iter
    (fun hysteresis ->
      let c =
        Core.Landmark_churn.create ~rng:(Rng.create (seed * 3))
          ~params:Core.Params.default ~hysteresis ~n0:1024
      in
      List.iter (fun n -> ignore (Core.Landmark_churn.observe c ~n)) trajectory;
      Report.kv
        (if hysteresis then "factor-2 hysteresis (the paper's rule)" else "naive re-draw")
        (Printf.sprintf "%d total status flips; %d landmarks at n=%d"
           (Core.Landmark_churn.total_flips c)
           (Core.Landmark_churn.landmark_count c)
           (Core.Landmark_churn.population c)))
    [ true; false ]

(* policy: §6 — operators may choose landmarks non-randomly as long as
   there are O~(sqrt n) of them and every vicinity contains one. Compare
   random landmarks with degree-based selection on the AS-like topology. *)
let fig_policy ~seed _scale =
  Report.section "policy: random vs operator-chosen (highest-degree) landmarks";
  let n = 2048 in
  let rng = Rng.create (seed * 17) in
  let graph = Gen.by_kind ~rng Gen.As_level ~n in
  let expected = Core.Params.vicinity_size Core.Params.default ~n in
  let by_degree =
    let nodes = Array.init n Fun.id in
    Array.sort (fun a b -> compare (Graph.degree graph b) (Graph.degree graph a)) nodes;
    Array.sub nodes 0 expected
  in
  let measure label landmark_ids =
    let nd = Core.Nddisco.build ?landmark_ids ~rng:(Rng.create (seed + 1)) graph in
    let disco = Core.Disco.of_nddisco ~rng:(Rng.create (seed + 2)) nd in
    let ws = Disco_graph.Dijkstra.make_workspace graph in
    let pair_rng = Rng.create (seed + 3) in
    let stretches = ref [] in
    for _ = 1 to 200 do
      let s = Rng.int pair_rng n in
      let sp = Disco_graph.Dijkstra.sssp ~ws graph s in
      for _ = 1 to 5 do
        let t = Rng.int pair_rng n in
        let dist = sp.Disco_graph.Dijkstra.dist.(t) in
        if t <> s && dist > 0.0 && dist < infinity then
          stretches :=
            Metrics.path_stretch graph ~dist (Core.Disco.route_first disco ~src:s ~dst:t)
            :: !stretches
      done
    done;
    let addr_bytes =
      Array.init n (fun v ->
          float_of_int (Core.Address.route_byte_size (Core.Nddisco.address nd v)))
    in
    Report.kv label
      (Printf.sprintf
         "landmarks=%d mean first stretch=%.3f mean address=%.2fB max address=%.0fB"
         (Core.Landmarks.count nd.Core.Nddisco.landmarks)
         (Stats.mean (Array.of_list !stretches))
         (Stats.mean addr_bytes)
         (Stats.summarize addr_bytes).Stats.max)
  in
  measure "random (the default)" None;
  measure "highest-degree" (Some by_degree)

(* control: Theorem 2 — control-plane state is O(delta sqrt(n log n))
   under plain path vector but O(sqrt(n log n)) with forgetful routing. *)
let fig_control ~seed scale =
  let n = match scale with Small -> 4096 | Paper -> 16384 in
  Report.section
    (Printf.sprintf "control: control-plane state, plain vs forgetful routing; router-level n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let data_entries v =
    Core.Nddisco.total_entries (Core.Nddisco.state_entries nd v)
  in
  let plain =
    Array.init n (fun v ->
        float_of_int (Graph.degree tb.Testbed.graph v * data_entries v))
  in
  let forgetful = Array.init n (fun v -> float_of_int (data_entries v)) in
  Report.summary_line ~label:"plain path vector (delta x entries)" plain;
  Report.summary_line ~label:"forgetful routing" forgetful;
  (* Measured, not modeled: run the dynamic protocol and count the
     adjacency-RIB entries a non-forgetful implementation would retain. *)
  let mn = 1024 in
  let rng = Rng.create (seed * 37) in
  let graph = Gen.gnm ~rng ~n:mn ~m:(4 * mn) in
  let dnd = Core.Nddisco.build ~rng graph in
  let flags = dnd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark in
  let k = Core.Params.vicinity_size Core.Params.default ~n:mn in
  let r =
    Disco_pathvector.Pathvector.run ~graph
      ~mode:(Disco_pathvector.Pathvector.Landmarks_and_k_closest { landmarks = flags; k })
  in
  Printf.printf " measured on the event simulator (G(n,m), n=%d):
" mn;
  Report.summary_line ~label:"adjacency RIB (non-forgetful)"
    (Array.map float_of_int r.Disco_pathvector.Pathvector.adj_rib_entries);
  Report.summary_line ~label:"best routes only (forgetful)"
    (Array.map float_of_int (Disco_pathvector.Pathvector.table_sizes r))

(* dynamics: the event-driven protocol under a scripted life cycle —
   cold start, a batch of late joins, a batch of fail-stop leaves —
   reporting reachability and cumulative protocol messages over time.
   (The paper's simulations measure initial convergence only and leave
   "continuous churn to future work"; this experiment is that future
   work.) *)
let fig_dynamics ~seed _scale =
  Report.section "dynamics: event-driven Disco under join/leave churn (G(n,m), n=128)";
  let n = 128 in
  let rng = Rng.create (seed * 23) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let net = Disco_dynamic.Network.create ~rng ~graph ~n_estimate:n () in
  let joiners = [ 9; 23; 77; 101 ] in
  let leavers = [ 14; 60 ] in
  let pair_rng = Rng.create (seed + 5) in
  let pairs ~alive =
    List.init 80 (fun _ -> (Rng.int pair_rng n, Rng.int pair_rng n))
    |> List.filter (fun (s, d) -> s <> d && alive s && alive d)
  in
  for v = 0 to n - 1 do
    if not (List.mem v joiners) then Disco_dynamic.Network.activate net v
  done;
  let report label ~alive =
    Report.kv label
      (Printf.sprintf "t=%5.0f msgs=%8d landmarks=%3d reachability=%.3f"
         (Disco_dynamic.Network.now net)
         (Disco_dynamic.Network.messages_sent net)
         (Disco_dynamic.Network.landmark_count net)
         (Disco_dynamic.Network.reachable_fraction net ~pairs:(pairs ~alive)))
  in
  let alive0 v = not (List.mem v joiners) in
  Disco_dynamic.Network.run_until net 150.0;
  report "after cold start" ~alive:alive0;
  Disco_dynamic.Network.run_until net 400.0;
  report "steady state" ~alive:alive0;
  List.iter (Disco_dynamic.Network.activate net) joiners;
  Disco_dynamic.Network.run_until net 800.0;
  report "after 4 joins" ~alive:(fun _ -> true);
  List.iter (Disco_dynamic.Network.deactivate net) leavers;
  let alive2 v = not (List.mem v leavers) in
  Disco_dynamic.Network.run_until net 900.0;
  report "right after 2 fail-stops" ~alive:alive2;
  Disco_dynamic.Network.run_until net 1500.0;
  report "after soft-state repair" ~alive:alive2

(* tradeoff: §6's open question — other points on the state/stretch curve,
   via the generalized TZ hierarchy (k levels: stretch <= 2k-1, state
   O~(n^{1/k})). *)
let fig_tradeoff ~seed scale =
  let n = match scale with Small -> 1024 | Paper -> 4096 in
  Report.section
    (Printf.sprintf "tradeoff: TZ hierarchy, stretch vs state; G(n,m) n=%d" n);
  let rng = Rng.create (seed * 29) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let ws = Disco_graph.Dijkstra.make_workspace graph in
  let pair_rng = Rng.create (seed + 9) in
  let sources = Array.init 100 (fun _ -> Rng.int pair_rng n) in
  let rows =
    List.map
      (fun k ->
        let tz =
          Disco_baselines.Tz_hierarchy.build ~rng:(Rng.create (seed + k)) ~k graph
        in
        let states =
          Array.init n (fun v -> float_of_int (Disco_baselines.Tz_hierarchy.state tz v))
        in
        let stretches = ref [] in
        Array.iter
          (fun s ->
            let sp = Disco_graph.Dijkstra.sssp ~ws graph s in
            for _ = 1 to 5 do
              let t = Rng.int pair_rng n in
              let d = sp.Disco_graph.Dijkstra.dist.(t) in
              if t <> s && d > 0.0 && d < infinity then
                stretches :=
                  (Disco_baselines.Tz_hierarchy.route_length tz ~src:s ~dst:t /. d)
                  :: !stretches
            done)
          sources;
        let st = Stats.summarize states in
        let sr = Stats.summarize (Array.of_list !stretches) in
        [
          string_of_int k;
          Printf.sprintf "%.0f" (Disco_baselines.Tz_hierarchy.stretch_bound tz);
          Printf.sprintf "%.3f" sr.Stats.mean;
          Printf.sprintf "%.3f" sr.Stats.max;
          Printf.sprintf "%.0f" st.Stats.mean;
          Printf.sprintf "%.0f" st.Stats.max;
        ])
      [ 2; 3; 4 ]
  in
  let k1_row =
    (* k = 1 is plain shortest-path state; no need to materialize n^2
       bunch entries to report it. *)
    [ "1"; "1"; "1.000"; "1.000"; string_of_int (n - 1); string_of_int (n - 1) ]
  in
  Report.table
    ~header:[ "k"; "bound 2k-1"; "stretch-mean"; "stretch-max"; "state-mean"; "state-max" ]
    (k1_row :: rows)

(* fate: §2's fate-sharing argument, measured. "these solutions lack fate
   sharing: a failure far from the source-destination path can disrupt
   communication." Kill one uniform-random remote node and see whose
   first packet dies: resolution-based lookup (S4) drags packets through
   a hash-selected landmark anywhere in the network; Disco's lookup stays
   inside the source's vicinity. *)
let fig_fate ~seed scale =
  let n = match scale with Small -> 1024 | Paper -> 4096 in
  Report.section
    (Printf.sprintf
       "fate: flows disrupted by one random remote node failure; geometric n=%d" n);
  let tb = Testbed.make ~seed Gen.Geometric ~n in
  let rng = Testbed.rng tb ~purpose:31 in
  let ws = Disco_graph.Dijkstra.make_workspace tb.Testbed.graph in
  let trials = 1500 in
  let disrupted_disco = ref 0
  and disrupted_s4 = ref 0
  and disrupted_sp = ref 0
  and on_path = ref 0
  and total = ref 0 in
  for _ = 1 to trials do
    let s = Rng.int rng n and t = Rng.int rng n and dead = Rng.int rng n in
    if s <> t && dead <> s && dead <> t then begin
      incr total;
      let sp = Disco_graph.Dijkstra.sssp ~ws tb.Testbed.graph s in
      let shortest =
        Disco_graph.Dijkstra.path_of_parents
          ~parent:(fun u -> sp.Disco_graph.Dijkstra.parent.(u))
          ~src:s ~dst:t
      in
      let uses path = List.mem dead path in
      if uses shortest then begin
        (* The failure sits on the direct path: everyone suffers; exclude
           it from the "remote failure" statistic. *)
        incr on_path
      end
      else begin
        if uses (Core.Disco.route_first tb.Testbed.disco ~src:s ~dst:t) then
          incr disrupted_disco;
        if uses (Disco_baselines.S4.route_first tb.Testbed.s4 ~src:s ~dst:t) then
          incr disrupted_s4;
        if uses shortest then incr disrupted_sp
      end
    end
  done;
  let remote = !total - !on_path in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 remote) in
  Report.kv "trials (remote failures only)" (string_of_int remote);
  Report.kv "disco first packet disrupted" (Printf.sprintf "%.2f%%" (pct !disrupted_disco));
  Report.kv "s4 first packet disrupted (resolution detour)"
    (Printf.sprintf "%.2f%%" (pct !disrupted_s4));
  Report.kv "shortest path disrupted" "0.00% (by construction)"

(* vicinity: ablation of the central constant. DESIGN.md Â§4 pins vicinities
   at c * sqrt(n log n); shrinking c saves state but erodes the w.h.p.
   guarantees (landmark-in-vicinity, group-member-in-vicinity) that the
   stretch bounds rest on - this sweep shows where they break. *)
let fig_vicinity ~seed _scale =
  let n = 1024 in
  Report.section
    (Printf.sprintf "vicinity: state/stretch vs the vicinity constant; geometric n=%d" n);
  let rows =
    List.map
      (fun factor ->
        let params = { Core.Params.default with Core.Params.vicinity_factor = factor } in
        let tb = Testbed.make ~seed ~params Gen.Geometric ~n in
        let st = Metrics.state tb in
        let rng = Testbed.rng tb ~purpose:51 in
        let ws = Disco_graph.Dijkstra.make_workspace tb.Testbed.graph in
        let stretches = ref [] and fallbacks = ref 0 and total = ref 0 in
        for _ = 1 to 200 do
          let s = Rng.int rng n in
          let sp = Disco_graph.Dijkstra.sssp ~ws tb.Testbed.graph s in
          for _ = 1 to 4 do
            let t = Rng.int rng n in
            let d = sp.Disco_graph.Dijkstra.dist.(t) in
            if t <> s && d > 0.0 && d < infinity then begin
              incr total;
              (match Core.Disco.classify_first tb.Testbed.disco ~src:s ~dst:t with
              | Core.Disco.Resolution_fallback -> incr fallbacks
              | _ -> ());
              stretches :=
                Metrics.path_stretch tb.Testbed.graph ~dist:d
                  (Core.Disco.route_first tb.Testbed.disco ~src:s ~dst:t)
                :: !stretches
            end
          done
        done;
        let sr = Stats.summarize (Array.of_list !stretches) in
        [
          Printf.sprintf "%.2f" factor;
          string_of_int (Core.Params.vicinity_size params ~n);
          Printf.sprintf "%.0f" (Stats.mean st.Metrics.disco);
          Printf.sprintf "%.3f" sr.Stats.mean;
          Printf.sprintf "%.3f" sr.Stats.max;
          Printf.sprintf "%.2f%%"
            (100.0 *. float_of_int !fallbacks /. float_of_int (max 1 !total));
        ])
      [ 0.25; 0.5; 1.0; 2.0 ]
  in
  Report.table
    ~header:
      [ "factor"; "vicinity k"; "disco state mean"; "first stretch mean";
        "first stretch max"; "fallback rate" ]
    rows

(* header: wire cost of the packet header under the default heuristic vs
   Path Knowledge, which must carry the route's global node ids (Â§4.2). *)
let fig_header ~seed _scale =
  let n = 2048 in
  Report.section
    (Printf.sprintf "header: first-packet header bytes by heuristic; router-level n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let rng = Testbed.rng tb ~purpose:61 in
  let collect heuristic =
    let sizes = ref [] in
    for _ = 1 to 400 do
      let s = Rng.int rng n and t = Rng.int rng n in
      if s <> t then begin
        let c = Core.Header.first_packet tb.Testbed.disco ~heuristic ~name_bytes:20 ~src:s ~dst:t in
        sizes := float_of_int c.Core.Header.total :: !sizes
      end
    done;
    Stats.summarize (Array.of_list !sizes)
  in
  let rows =
    List.map
      (fun h ->
        let s = collect h in
        [ Core.Shortcut.name h;
          Printf.sprintf "%.1f" s.Stats.mean;
          Printf.sprintf "%.0f" s.Stats.p95;
          Printf.sprintf "%.0f" s.Stats.max ])
      [ Core.Shortcut.No_path_knowledge; Core.Shortcut.Path_knowledge ]
  in
  Report.table ~header:[ "heuristic"; "header-bytes mean"; "p95"; "max" ] rows;
  Report.kv "note" "20B self-certifying name included in every header"

let runners =
  [
    ("fig1", fig1);
    ("header", fig_header);
    ("vicinity", fig_vicinity);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fun ~seed _ -> fig45 ~seed ~kind:Gen.Gnm ~fig_name:"fig4");
    ("fig5", fun ~seed _ -> fig45 ~seed ~kind:Gen.Geometric ~fig_name:"fig5");
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("addr", fig_addr);
    ("overlay", fig_overlay);
    ("nerror", fig_nerror);
    ("synopsis", fig_synopsis);
    ("churn", fig_churn);
    ("policy", fig_policy);
    ("control", fig_control);
    ("dynamics", fig_dynamics);
    ("tradeoff", fig_tradeoff);
    ("fate", fig_fate);
  ]

let all_ids = List.map fst runners

let run ?(seed = 42) scale id =
  match List.assoc_opt id runners with
  | Some f -> f ~seed scale
  | None -> invalid_arg (Printf.sprintf "Figures.run: unknown figure %S" id)

let run_all ?(seed = 42) scale =
  List.iter (fun (_, f) -> f ~seed scale) runners
