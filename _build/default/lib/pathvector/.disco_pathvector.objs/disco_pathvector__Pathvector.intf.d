lib/pathvector/pathvector.mli: Disco_graph Hashtbl
