lib/pathvector/pathvector.ml: Array Disco_graph Disco_sim Hashtbl List
