bench/main.mli:
