bench/micro.ml: Analyze Bechamel Benchmark Char Disco_core Disco_graph Disco_hash Disco_util Hashtbl Instance List Measure Printf Staged String Test Time Toolkit
