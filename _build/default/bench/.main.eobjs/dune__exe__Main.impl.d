bench/main.ml: Arg Cmd Cmdliner Disco_experiments List Micro Printf String Term
