(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
   for paper-vs-measured). Usage:

     dune exec bench/main.exe                        # all figures, small scale
     dune exec bench/main.exe -- --figure fig3       # one figure
     dune exec bench/main.exe -- --scale paper       # paper-size topologies
     dune exec bench/main.exe -- --figure micro      # Bechamel micro-benches
*)

open Cmdliner
module Figures = Disco_experiments.Figures

let run figure scale seed =
  match Figures.scale_of_string scale with
  | None -> `Error (false, Printf.sprintf "unknown scale %S (small|paper)" scale)
  | Some scale -> (
      match figure with
      | "all" ->
          Figures.run_all ~seed scale;
          Micro.run ();
          `Ok ()
      | "micro" ->
          Micro.run ();
          `Ok ()
      | id when List.mem id Figures.all_ids ->
          Figures.run ~seed scale id;
          `Ok ()
      | id ->
          `Error
            ( false,
              Printf.sprintf "unknown figure %S (expected one of: %s, micro, all)"
                id
                (String.concat ", " Figures.all_ids) ))

let figure =
  let doc = "Figure/table to regenerate (fig2..fig10, addr, overlay, nerror, synopsis, micro, all)." in
  Arg.(value & opt string "all" & info [ "figure"; "f" ] ~docv:"ID" ~doc)

let scale =
  let doc = "Topology scale: small (minutes) or paper (paper-sized synthetics)." in
  Arg.(value & opt string "small" & info [ "scale" ] ~docv:"SCALE" ~doc)

let seed =
  let doc = "Deterministic RNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let cmd =
  let doc = "Regenerate the Disco paper's evaluation figures and tables" in
  let info = Cmd.info "disco-bench" ~doc in
  Cmd.v info Term.(ret (const run $ figure $ scale $ seed))

let () = exit (Cmd.eval cmd)
