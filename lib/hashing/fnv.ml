let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let step acc byte =
  Int64.mul (Int64.logxor acc (Int64.of_int byte)) prime

(* The fold is a toplevel recursion (no ref cell, no String.iter closure)
   so the only per-call allocation left is the boxed Int64 accumulator the
   FNV-1a semantics are pinned to. *)
let rec fold s n i acc =
  if i >= n then acc else fold s n (i + 1) (step acc (Char.code (String.get s i)))

let hash s =
  (* disco-lint: allow L7 FNV-1a is pinned to 64-bit arithmetic; the boxed Int64 accumulator is unavoidable short-lived minor garbage *)
  fold s (String.length s) 0 offset_basis

let rec fold_seed seed i acc =
  if i > 7 then acc
  else fold_seed seed (i + 1) (step acc ((seed lsr (8 * i)) land 0xFF))

let hash_with_seed seed s =
  (* disco-lint: allow L7 FNV-1a is pinned to 64-bit arithmetic; the boxed Int64 accumulator is unavoidable short-lived minor garbage *)
  fold s (String.length s) 0 (fold_seed seed 0 offset_basis)
