type id = int64

let of_name name =
  let d = Sha256.digest name in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code d.[i]))
  done;
  !acc

let compare_unsigned a b = Int64.unsigned_compare a b

let prefix_bits h ~width =
  if width < 0 || width > 30 then invalid_arg "Hash_space.prefix_bits";
  if width = 0 then 0
  else Int64.to_int (Int64.shift_right_logical h (64 - width))

let common_prefix_len a b =
  let x = Int64.logxor a b in
  if x = 0L then 64
  else begin
    (* Count leading zeros of x. *)
    let rec go i =
      if i >= 64 then 64
      else if Int64.logand (Int64.shift_right_logical x (63 - i)) 1L = 1L then i
      else go (i + 1)
    in
    go 0
  end

let directed_distance a b = Int64.sub b a

let ring_distance a b =
  (* disco-lint: allow L7 the ring metric is pinned to Int64; the two boxed intermediates are short-lived minor garbage *)
  let d = Int64.sub b a in
  (* disco-lint: allow L7 the ring metric is pinned to Int64; the two boxed intermediates are short-lived minor garbage *)
  let d' = Int64.neg d in
  if Int64.unsigned_compare d d' <= 0 then d else d'

let to_hex h = Printf.sprintf "%016Lx" h

let group_size_bits ~n_estimate =
  if n_estimate < 4 then 0
  else begin
    (* k = floor(log2(sqrt(n / ln n))). §4.4 writes blog2(sqrt n / log n)c
       and Theorem 2 writes blog2(sqrt n / log^2 n) + O(1)c; this variant is
       the one consistent with the state the paper actually measures
       (Fig 2, Fig 7 — group size ~ 3000 at n = 192k, ~ 512 at n = 16k).
       See EXPERIMENTS.md. *)
    let n = float_of_int n_estimate in
    let v = sqrt (n /. log n) in
    if v <= 1.0 then 0 else int_of_float (floor (log v /. log 2.0))
  end
