(* Ring points packed as parallel int arrays: (hi, lo) unsigned 32-bit
   halves of the position plus the owning node id. Plain int arrays keep
   successor lookup allocation-free (no Int64 boxing on reads) and make
   the ring's storage cost exact for state accounting. *)
type t = {
  phi : int array; (* position, top 32 bits *)
  plo : int array; (* position, bottom 32 bits *)
  powner : int array;
  owner_ids : int array;
}

let split64 x =
  ( Int64.to_int (Int64.shift_right_logical x 32),
    Int64.to_int (Int64.logand x 0xFFFFFFFFL) )

let create ?(replicas = 1) ~owners ~owner_name () =
  if replicas < 1 then invalid_arg "Consistent_hash.create: replicas";
  let points =
    Array.concat
      (List.init replicas (fun r ->
           Array.map
             (fun o ->
               let pos =
                 Hash_space.of_name (Printf.sprintf "%s#%d" (owner_name o) r)
               in
               (pos, o))
             owners))
  in
  Array.sort
    (fun (a, oa) (b, ob) ->
      let c = Hash_space.compare_unsigned a b in
      if c <> 0 then c else Int.compare oa ob)
    points;
  let n = Array.length points in
  let phi = Array.make n 0 and plo = Array.make n 0 and powner = Array.make n 0 in
  Array.iteri
    (fun i (pos, o) ->
      let hi, lo = split64 pos in
      phi.(i) <- hi;
      plo.(i) <- lo;
      powner.(i) <- o)
    points;
  { phi; plo; powner; owner_ids = Array.copy owners }

let is_empty t = Array.length t.phi = 0

let owner_of t key =
  let n = Array.length t.phi in
  if n = 0 then invalid_arg "Consistent_hash.owner_of: empty ring";
  let khi, klo = split64 key in
  (* Binary search for the first point >= key; wrap to 0. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let less =
      t.phi.(mid) < khi || (t.phi.(mid) = khi && t.plo.(mid) < klo)
    in
    if less then lo := mid + 1 else hi := mid
  done;
  let idx = if !lo = n then 0 else !lo in
  t.powner.(idx)

let owner_of_name t name = owner_of t (Hash_space.of_name name)

let owners t = Array.copy t.owner_ids

let load_counts t ~keys =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun k ->
      let o = owner_of t k in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    keys;
  Array.to_list t.owner_ids
  |> List.map (fun o -> (o, Option.value ~default:0 (Hashtbl.find_opt counts o)))

let byte_size t = 8 * (3 * Array.length t.phi)
