type t = {
  points : (Hash_space.id * int) array; (* sorted by ring position *)
  owner_ids : int array;
}

let create ?(replicas = 1) ~owners ~owner_name () =
  if replicas < 1 then invalid_arg "Consistent_hash.create: replicas";
  let points =
    Array.concat
      (List.init replicas (fun r ->
           Array.map
             (fun o ->
               let pos =
                 Hash_space.of_name (Printf.sprintf "%s#%d" (owner_name o) r)
               in
               (pos, o))
             owners))
  in
  Array.sort
    (fun (a, oa) (b, ob) ->
      let c = Hash_space.compare_unsigned a b in
      if c <> 0 then c else Int.compare oa ob)
    points;
  { points; owner_ids = Array.copy owners }

let is_empty t = Array.length t.points = 0

let owner_of t key =
  let n = Array.length t.points in
  if n = 0 then invalid_arg "Consistent_hash.owner_of: empty ring";
  (* Binary search for the first point >= key; wrap to 0. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let pos, _ = t.points.(mid) in
    if Hash_space.compare_unsigned pos key < 0 then lo := mid + 1 else hi := mid
  done;
  let idx = if !lo = n then 0 else !lo in
  snd t.points.(idx)

let owner_of_name t name = owner_of t (Hash_space.of_name name)

let owners t = Array.copy t.owner_ids

let load_counts t ~keys =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun k ->
      let o = owner_of t k in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    keys;
  Array.to_list t.owner_ids
  |> List.map (fun o -> (o, Option.value ~default:0 (Hashtbl.find_opt counts o)))
