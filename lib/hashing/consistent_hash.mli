(** Consistent hashing over a set of owner nodes.

    Disco runs a consistent-hashing name-resolution database over the
    globally-known set of landmarks (§4.3): the landmark owning key
    [h(name)] stores that node's current address. Theorem 2 notes that
    using multiple hash functions (virtual nodes) reduces the load
    imbalance from O(log n) to O(1); [replicas] controls that. *)

type t

val create : ?replicas:int -> owners:int array -> owner_name:(int -> string) -> unit -> t
(** [create ~owners ~owner_name ()] builds a ring over [owners] (arbitrary
    int ids, e.g. landmark node ids). [owner_name] gives the stable string
    hashed to position each owner; [replicas] virtual points are placed per
    owner (default 1, the paper's "simplest form"). *)

val owner_of : t -> Hash_space.id -> int
(** The owner whose ring point is the successor of the key. *)

val owner_of_name : t -> string -> int
(** [owner_of t (Hash_space.of_name name)]. *)

val owners : t -> int array

val load_counts : t -> keys:Hash_space.id array -> (int * int) list
(** For diagnostics/tests: number of keys from [keys] landing on each
    owner, as [(owner, count)] pairs. *)

val is_empty : t -> bool

val byte_size : t -> int
(** Exact bytes of the packed ring-point arrays (positions + owners). *)
