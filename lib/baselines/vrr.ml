module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Hash_space = Disco_hash.Hash_space
module Rng = Disco_util.Rng
module Core = Disco_core

type entry = { ea : int; eb : int; next_a : int; next_b : int }

type t = {
  graph : Graph.t;
  r : int;
  vids : Hash_space.id array;
  tables : entry list array;
  final_vsets : int array array;
  path_store : (int * int, int list) Hashtbl.t;
  mutable fallbacks : int;
}

let pair_key x y = if x < y then (x, y) else (y, x)

(* Next hop at [u] along some stored path ending at [e]. *)
let next_toward ~graph ~tables ~usable u e =
  let neighbor = ref false in
  Graph.iter_neighbors graph u (fun v _ -> if v = e && usable v then neighbor := true);
  if !neighbor then Some e
  else
    List.find_map
      (fun entry ->
        if entry.ea = e && entry.next_a <> u then Some entry.next_a
        else if entry.eb = e && entry.next_b <> u then Some entry.next_b
        else None)
      tables.(u)

let direct_neighbor ~graph ~usable u dst =
  let direct = ref false in
  Graph.iter_neighbors graph u (fun v _ -> if v = dst && usable v then direct := true);
  !direct

(* The endpoint known at [u] (physical neighbor or stored-path endpoint)
   virtually strictly closer to [dst] than [bound], if any, with its
   distance. *)
let best_endpoint ~graph ~vids ~tables ~usable u ~dst ~bound =
  let vd x = Hash_space.ring_distance vids.(x) vids.(dst) in
  let better a b = Hash_space.compare_unsigned a b < 0 in
  let best = ref None and best_d = ref bound in
  let consider endpoint =
    if endpoint <> u && usable endpoint then begin
      let d = vd endpoint in
      if better d !best_d then begin
        best := Some endpoint;
        best_d := d
      end
    end
  in
  Graph.iter_neighbors graph u (fun v _ -> if usable v then consider v);
  List.iter
    (fun e ->
      consider e.ea;
      consider e.eb)
    tables.(u);
  (!best, !best_d)

(* Greedy VRR forwarding over the given tables. [usable] filters which
   physical neighbors may be used (joined nodes only, during build).

   The packet is always committed to the known endpoint whose virtual id is
   closest to the destination; it follows that endpoint's stored path hop
   by hop, and any node on the way may re-commit to a strictly closer
   endpoint. The strict-improvement rule ensures the endpoint sequence
   converges on the destination (VRR's progress argument); a TTL catches
   paths broken by the incremental join state. *)
let greedy_route ~graph ~vids ~tables ~usable ~src ~dst =
  let n = Graph.n graph in
  (* [bound] is the virtual distance of the best endpoint ever committed;
     it only shrinks (monotone descent in id space, VRR's progress
     property), which rules out endpoint oscillation. *)
  let rec step u committed bound acc ttl =
    if u = dst then Some (List.rev (u :: acc))
    else if ttl = 0 then None
    else if direct_neighbor ~graph ~usable u dst then
      Some (List.rev (dst :: u :: acc))
    else begin
      let committed =
        match committed with Some c when c = u -> None | c -> c
      in
      (* Strictly better endpoint than anything committed so far? *)
      let best, best_d =
        best_endpoint ~graph ~vids ~tables ~usable u ~dst ~bound
      in
      let target = match best with Some _ as b -> b | None -> committed in
      match target with
      | None -> None
      | Some e -> (
          match next_toward ~graph ~tables ~usable u e with
          | None -> None (* broken corridor *)
          | Some hop -> step hop (Some e) best_d (u :: acc) (ttl - 1))
    end
  in
  (* Int64.minus_one is 2^64 - 1 read as unsigned: no initial bound. *)
  step src None Int64.minus_one [] (8 * n)

let install tables path =
  match path with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let arr = Array.of_list path in
      let len = Array.length arr in
      let last = arr.(len - 1) in
      for i = 0 to len - 1 do
        let z = arr.(i) in
        let next_a = if i = 0 then z else arr.(i - 1) in
        let next_b = if i = len - 1 then z else arr.(i + 1) in
        tables.(z) <- { ea = first; eb = last; next_a; next_b } :: tables.(z)
      done

(* r/2 successors and r/2 predecessors of [x] within [ring] (node ids
   sorted by vid). [x] may or may not be present in [ring]. *)
let ring_neighbors ~vids ~ring ~r x =
  let m = Array.length ring in
  if m = 0 then []
  else begin
    let half = max 1 (r / 2) in
    (* First index with vid >= vid(x), excluding x itself when scanning. *)
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Hash_space.compare_unsigned vids.(ring.(mid)) vids.(x) < 0 then
        lo := mid + 1
      else hi := mid
    done;
    let start = !lo mod m in
    let collect dir =
      let out = ref [] and i = ref start and seen = ref 0 and steps = ref 0 in
      if dir < 0 then i := (start + m - 1) mod m;
      while !seen < half && !steps < m do
        let candidate = ring.(!i) in
        if candidate <> x then begin
          out := candidate :: !out;
          incr seen
        end;
        incr steps;
        i := (!i + dir + m) mod m
      done;
      !out
    in
    List.sort_uniq Int.compare (collect 1 @ collect (-1))
  end

let bfs_join_order rng graph =
  let n = Graph.n graph in
  let start = Rng.int rng n in
  let order = Array.make n 0 and seen = Array.make n false in
  let q = Queue.create () in
  Queue.push start q;
  seen.(start) <- true;
  let idx = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!idx) <- u;
    incr idx;
    Graph.iter_neighbors graph u (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
  done;
  assert (!idx = n);
  order

let build ?(r = 4) ?names ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Core.Name.default_array n in
  let vids = Array.map Hash_space.of_name names in
  let tables = Array.make n [] in
  let path_store = Hashtbl.create (2 * n) in
  let fallbacks = ref 0 in
  let ws = Dijkstra.make_workspace graph in
  let joined = Array.make n false in
  (* Joined nodes sorted by vid, grown by insertion. *)
  let joined_ring = ref [||] in
  let insert_sorted x =
    let a = !joined_ring in
    let m = Array.length a in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Hash_space.compare_unsigned vids.(a.(mid)) vids.(x) < 0 then lo := mid + 1
      else hi := mid
    done;
    let pos = !lo in
    let b = Array.make (m + 1) x in
    Array.blit a 0 b 0 pos;
    Array.blit a pos b (pos + 1) (m - pos);
    joined_ring := b
  in
  let shortest_path src dst =
    let run = Dijkstra.sssp ~ws graph src in
    Dijkstra.path_of_parents ~parent:(fun u -> run.Dijkstra.parent.(u)) ~src ~dst
  in
  let establish x y =
    let key = pair_key x y in
    if not (Hashtbl.mem path_store key) then begin
      (* The joiner is excluded from the candidate set while its own setup
         request is routed: it is virtually closest to its vset targets, so
         allowing it would pull the request straight back (in real VRR the
         request is routed by a proxy before the joiner holds any paths). *)
      let path =
        match
          greedy_route ~graph ~vids ~tables
            ~usable:(fun v -> joined.(v) && v <> x)
            ~src:x ~dst:y
        with
        | Some p -> p
        | None ->
            incr fallbacks;
            shortest_path x y
      in
      Hashtbl.replace path_store key path;
      install tables path
    end
  in
  let order = bfs_join_order rng graph in
  Array.iter
    (fun x ->
      let vset = ring_neighbors ~vids ~ring:!joined_ring ~r x in
      joined.(x) <- true;
      insert_sorted x;
      List.iter (fun y -> establish x y) vset)
    order;
  (* Converged vsets over the full ring; tear down stale paths. *)
  let full_ring = Array.copy order in
  Array.sort
    (fun a b ->
      let c = Hash_space.compare_unsigned vids.(a) vids.(b) in
      if c <> 0 then c else Int.compare a b)
    full_ring;
  let final_vsets =
    Array.init n (fun x ->
        Array.of_list (ring_neighbors ~vids ~ring:full_ring ~r x))
  in
  let final_pairs = Hashtbl.create (2 * n) in
  Array.iteri
    (fun x vs -> Array.iter (fun y -> Hashtbl.replace final_pairs (pair_key x y) ()) vs)
    final_vsets;
  (* Any final pair missing a path (cannot normally happen): set it up over
     the fully built state. *)
  Hashtbl.iter
    (fun (x, y) () ->
      if not (Hashtbl.mem path_store (x, y)) then begin
        let path =
          match
            greedy_route ~graph ~vids ~tables ~usable:(fun _ -> true) ~src:x
              ~dst:y
          with
          | Some p -> p
          | None ->
              incr fallbacks;
              shortest_path x y
        in
        Hashtbl.replace path_store (x, y) path;
        install tables path
      end)
    final_pairs;
  (* Converged state keeps every path established during the joins: VRR's
     converged state "depends on the order of node joins" (§5.1) precisely
     because setup-time paths persist; this is also what concentrates state
     on early hub nodes (Fig 4/5). *)
  {
    graph;
    r;
    vids;
    tables;
    final_vsets;
    path_store;
    fallbacks = !fallbacks;
  }

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else
    greedy_route ~graph:t.graph ~vids:t.vids ~tables:t.tables
      ~usable:(fun _ -> true) ~src ~dst

module D = Core.Dataplane

(* VRR's corridors can wander: the converged greedy walk is bounded by 8n
   decisions (matching [greedy_route]'s TTL). *)
let ttl_factor = 8

(* Per-hop greedy forwarding: exactly one [greedy_route] step. The packet
   carries the committed endpoint ([anchor]) and the monotone bound on the
   best virtual distance ever committed ([vbound]); [Int64.minus_one] (max
   unsigned) is the no-bound sentinel in both this header field and the
   route oracle. The 8 [extra_bytes] are the destination's virtual id. *)
let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  (* disco-lint: allow L7 trivial usability predicate shared with the oracle's signature *)
  let usable _ = true in
  if u = dst then D.Deliver
  (* disco-lint: allow L7 the setup-path scan shares greedy_route's allocating helpers; VRR recomputes the step per node by design *)
  else if direct_neighbor ~graph:t.graph ~usable u dst then D.Forward dst
  else begin
    let committed = if h.D.anchor = u then -1 else h.D.anchor in
    let best, best_d =
      (* disco-lint: allow L7 endpoint scan recomputed per node from the carried bound is the VRR design *)
      best_endpoint ~graph:t.graph ~vids:t.vids ~tables:t.tables ~usable u
        ~dst ~bound:h.D.vbound
    in
    let target =
      match best with
      | Some e -> Some e
      | None -> if committed >= 0 then Some committed else None
    in
    match target with
    | None -> D.Drop D.No_route
    | Some e -> (
        (* disco-lint: allow L7 corridor step recomputed per node is the VRR design *)
        match next_toward ~graph:t.graph ~tables:t.tables ~usable u e with
        | None -> D.Drop D.No_route (* broken corridor *)
        | Some hop ->
            if e = h.D.anchor && Int64.equal best_d h.D.vbound then
              D.Forward hop
            else
              (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
              D.Rewrite
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                ({ h with D.anchor = e; vbound = best_d }, hop, D.Greedy_commit e))
  end

let packet_header (_ : t) ~src:_ ~dst =
  { (D.plain ~dst D.Greedy) with D.extra_bytes = 8 }

let state_entries t =
  Array.mapi
    (fun v entries -> List.length entries + Graph.degree t.graph v)
    t.tables

let vset t v = Array.copy t.final_vsets.(v)
let setup_fallbacks t = t.fallbacks

let ring_distance_ok t =
  let ok = ref true in
  Array.iteri
    (fun x vs ->
      Array.iter
        (fun y -> if not (Hashtbl.mem t.path_store (pair_key x y)) then ok := false)
        vs)
    t.final_vsets;
  !ok
