module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Hash_space = Disco_hash.Hash_space
module Rng = Disco_util.Rng
module Core = Disco_core
module Packed = Core.Packed

(* Build-time staging only: converged entries are frozen into the 4-stride
   CSR below, which both the typed face and the compiled fast path read. *)
type entry = { ea : int; eb : int; next_a : int; next_b : int }

type t = {
  graph : Graph.t;
  r : int;
  vids : Hash_space.id array;
  entries : Packed.Csr.t;
      (* per node, (ea, eb, next_a, next_b) blocks laid out in install
         order; both faces scan blocks backward so the newest entry wins,
         matching the prepend-order lists the build routes over *)
  final_vsets : Packed.Csr.t;
  path_store : (int * int, int list) Hashtbl.t;
  mutable fallbacks : int;
}

let pair_key x y = if x < y then (x, y) else (y, x)

module Iset = Set.Make (Int)

(* Greedy VRR forwarding, abstracted over the table representation:
   [next_toward u e] and [best_endpoint u bound] close over the tables,
   the destination, and the usability filter — the build routes over the
   staging lists, the converged oracle over the frozen CSR.

   The packet is always committed to the known endpoint whose virtual id is
   closest to the destination; it follows that endpoint's stored path hop
   by hop, and any node on the way may re-commit to a strictly closer
   endpoint. The strict-improvement rule ensures the endpoint sequence
   converges on the destination (VRR's progress argument); a TTL catches
   paths broken by the incremental join state. *)
let greedy_route_gen ~graph ~next_toward ~best_endpoint ~direct ~src ~dst =
  let n = Graph.n graph in
  (* [bound] is the virtual distance of the best endpoint ever committed;
     it only shrinks (monotone descent in id space, VRR's progress
     property), which rules out endpoint oscillation. *)
  let rec step u committed bound acc ttl =
    if u = dst then Some (List.rev (u :: acc))
    else if ttl = 0 then None
    else if direct u then Some (List.rev (dst :: u :: acc))
    else begin
      let committed =
        match committed with Some c when c = u -> None | c -> c
      in
      (* Strictly better endpoint than anything committed so far? *)
      let best, best_d = best_endpoint u bound in
      let target = match best with Some _ as b -> b | None -> committed in
      match target with
      | None -> None
      | Some e -> (
          match next_toward u e with
          | None -> None (* broken corridor *)
          | Some hop -> step hop (Some e) best_d (u :: acc) (ttl - 1))
    end
  in
  (* Int64.minus_one is 2^64 - 1 read as unsigned: no initial bound. *)
  step src None Int64.minus_one [] (8 * n)

(* r/2 successors and r/2 predecessors of [x] within [ring] (node ids
   sorted by vid). [x] may or may not be present in [ring]. *)
let ring_neighbors ~vids ~ring ~r x =
  let m = Array.length ring in
  if m = 0 then []
  else begin
    let half = max 1 (r / 2) in
    (* First index with vid >= vid(x), excluding x itself when scanning. *)
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Hash_space.compare_unsigned vids.(ring.(mid)) vids.(x) < 0 then
        lo := mid + 1
      else hi := mid
    done;
    let start = !lo mod m in
    let collect dir =
      let out = ref [] and i = ref start and seen = ref 0 and steps = ref 0 in
      if dir < 0 then i := (start + m - 1) mod m;
      while !seen < half && !steps < m do
        let candidate = ring.(!i) in
        if candidate <> x then begin
          out := candidate :: !out;
          incr seen
        end;
        incr steps;
        i := (!i + dir + m) mod m
      done;
      !out
    in
    List.sort_uniq Int.compare (collect 1 @ collect (-1))
  end

let bfs_join_order rng graph =
  let n = Graph.n graph in
  let start = Rng.int rng n in
  let order = Array.make n 0 and seen = Array.make n false in
  let q = Queue.create () in
  Queue.push start q;
  seen.(start) <- true;
  let idx = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!idx) <- u;
    incr idx;
    Graph.iter_neighbors graph u (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
  done;
  assert (!idx = n);
  order

let build ?(r = 4) ?names ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Core.Name.default_array n in
  let vids = Array.map Hash_space.of_name names in
  let tables = Array.make n [] in
  let path_store = Hashtbl.create (2 * n) in
  let fallbacks = ref 0 in
  let ws = Dijkstra.make_workspace graph in
  let joined = Array.make n false in
  (* The virtual ring order of all nodes is fixed by the vids; joining is
     membership, not insertion. Sort once, then a Fenwick tree over ring
     positions gives rank/select on the joined subset — each join is
     O(log n) where growing a sorted array by insertion was O(n). *)
  let full_ring = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Hash_space.compare_unsigned vids.(a) vids.(b) in
      if c <> 0 then c else Int.compare a b)
    full_ring;
  let ring_pos = Array.make n 0 in
  Array.iteri (fun i v -> ring_pos.(v) <- i) full_ring;
  let fen = Packed.Fenwick.create n in
  (* [ring_neighbors] over the joined subset, via Fenwick rank/select
     around [x]'s fixed ring position. *)
  let joined_ring_neighbors x =
    let total = Packed.Fenwick.total fen in
    if total = 0 then []
    else begin
      let half = max 1 (r / 2) in
      let start = Packed.Fenwick.prefix fen ring_pos.(x) mod total in
      let collect dir =
        let out = ref [] and i = ref start and seen = ref 0 and steps = ref 0 in
        if dir < 0 then i := (start + total - 1) mod total;
        while !seen < half && !steps < total do
          let candidate = full_ring.(Packed.Fenwick.kth fen !i) in
          if candidate <> x then begin
            out := candidate :: !out;
            incr seen
          end;
          incr steps;
          i := (!i + dir + total) mod total
        done;
        !out
      in
      List.sort_uniq Int.compare (collect 1 @ collect (-1))
    end
  in
  let shortest_path src dst =
    let run = Dijkstra.sssp ~ws ~until:dst graph src in
    Dijkstra.path_of_parents ~parent:(fun u -> run.Dijkstra.parent.(u)) ~src ~dst
  in
  (* --- setup-routing indexes ------------------------------------------
     Routing a setup request over the staging lists costs O(entries at u)
     per hop, and heavy-tailed hubs accumulate Θ(n) entries — overall
     quadratic build, the wall between the old 16k-node ceiling and the
     million-node sweep.  Three indexes make the two per-hop queries
     cheap while giving the same answers as the list scans (up to ties
     between distinct endpoints at exactly equal ring distance, which
     need colliding 64-bit vid differences):

     - [by_end]: (node, endpoint) -> newest-first entries naming that
       endpoint, for [next_toward]'s corridor lookup;
     - [ep_set]: per node, the ring positions of its stored endpoints,
       for the virtually-closest-endpoint query — in circular vid order
       the first usable candidate on each side of the destination
       realises that side's minimum arc, so probing two candidates finds
       the minimum ring distance;
     - [nbr_pos]: per node, its physical neighbors' ring positions,
       sorted once (the pset contributes candidates the same way). *)
  let by_end : (int, entry list) Hashtbl.t = Hashtbl.create (4 * n) in
  let ep_set = Array.make n Iset.empty in
  let nbr_pos =
    Array.init n (fun u ->
        let a =
          Array.init (Graph.degree graph u) (fun i ->
              ring_pos.(Graph.neighbor_at graph u i))
        in
        Array.sort Int.compare a;
        a)
  in
  let install path =
    match path with
    | [] | [ _ ] -> ()
    | first :: _ ->
        let arr = Array.of_list path in
        let len = Array.length arr in
        let last = arr.(len - 1) in
        for i = 0 to len - 1 do
          let z = arr.(i) in
          let next_a = if i = 0 then z else arr.(i - 1) in
          let next_b = if i = len - 1 then z else arr.(i + 1) in
          let e = { ea = first; eb = last; next_a; next_b } in
          tables.(z) <- e :: tables.(z);
          let index_endpoint ep =
            let key = (z * n) + ep in
            Hashtbl.replace by_end key
              (e :: Option.value ~default:[] (Hashtbl.find_opt by_end key));
            ep_set.(z) <- Iset.add ring_pos.(ep) ep_set.(z)
          in
          index_endpoint first;
          if last <> first then index_endpoint last
        done
  in
  (* [excl] is the joining node, excluded from the candidate set while its
     own setup request is routed (it is virtually closest to its vset
     targets, so allowing it would pull the request straight back; in real
     VRR the request is routed by a proxy before the joiner holds any
     paths); -1 once everyone has joined. *)
  let next_toward_idx ~excl u e =
    if Graph.has_edge graph u e && joined.(e) && e <> excl then Some e
    else
      match Hashtbl.find_opt by_end ((u * n) + e) with
      | None -> None
      | Some entries ->
          List.find_map
            (fun en ->
              if en.ea = e && en.next_a <> u then Some en.next_a
              else if en.eb = e && en.next_b <> u then Some en.next_b
              else None)
            entries
  in
  let best_endpoint_idx ~excl u ~dst ~bound =
    let usable e = joined.(e) && e <> excl in
    let best = ref None and best_d = ref bound in
    let consider e =
      if e <> u && usable e then begin
        let d = Hash_space.ring_distance vids.(e) vids.(dst) in
        if Hash_space.compare_unsigned d !best_d < 0 then begin
          best := Some e;
          best_d := d
        end
      end
    in
    let pd = ring_pos.(dst) in
    (* Physical neighbors: first usable candidate on each side of [pd],
       walking the sorted ring positions circularly. *)
    let a = nbr_pos.(u) in
    let len = Array.length a in
    if len > 0 then begin
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) < pd then lo := mid + 1 else hi := mid
      done;
      let walk start dir =
        let rec go i steps =
          if steps < len then begin
            let e = full_ring.(a.(i)) in
            if e <> u && usable e then consider e
            else go ((i + dir + len) mod len) (steps + 1)
          end
        in
        go start 0
      in
      walk (!lo mod len) 1;
      walk ((!lo + len - 1) mod len) (-1)
    end;
    (* Stored endpoints: same two probes over the ordered set.  Every
       stored endpoint has joined, so a probe skips at most [u] and
       [excl]; the cap cannot bind, but if it ever did the staging list
       scan restores the exact answer. *)
    let s = ep_set.(u) in
    if not (Iset.is_empty s) then begin
      let overflow = ref false in
      let probe dir =
        let rec go b steps =
          if steps > 8 then overflow := true
          else
            let found =
              if dir > 0 then
                match Iset.find_first_opt (fun p -> p >= b) s with
                | Some _ as r -> r
                | None -> Iset.min_elt_opt s
              else
                match Iset.find_last_opt (fun p -> p <= b) s with
                | Some _ as r -> r
                | None -> Iset.max_elt_opt s
            in
            match found with
            | None -> ()
            | Some p ->
                let e = full_ring.(p) in
                if e <> u && usable e then consider e
                else go (p + dir) (steps + 1)
        in
        go pd 0
      in
      probe 1;
      probe (-1);
      if !overflow then
        List.iter
          (fun en ->
            consider en.ea;
            consider en.eb)
          tables.(u)
    end;
    (!best, !best_d)
  in
  let greedy_route ~excl ~src ~dst =
    greedy_route_gen ~graph
      ~next_toward:(fun u e -> next_toward_idx ~excl u e)
      ~best_endpoint:(fun u bound -> best_endpoint_idx ~excl u ~dst ~bound)
      ~direct:(fun u -> Graph.has_edge graph u dst && joined.(dst) && dst <> excl)
      ~src ~dst
  in
  let establish x y =
    let key = pair_key x y in
    if not (Hashtbl.mem path_store key) then begin
      let path =
        match greedy_route ~excl:x ~src:x ~dst:y with
        | Some p -> p
        | None ->
            incr fallbacks;
            shortest_path x y
      in
      Hashtbl.replace path_store key path;
      install path
    end
  in
  let order = bfs_join_order rng graph in
  Array.iter
    (fun x ->
      let vset = joined_ring_neighbors x in
      joined.(x) <- true;
      Packed.Fenwick.add fen ring_pos.(x) 1;
      List.iter (fun y -> establish x y) vset)
    order;
  (* Converged vsets over the full ring; tear down stale paths. *)
  let final_vset_rows =
    Array.init n (fun x ->
        Array.of_list (ring_neighbors ~vids ~ring:full_ring ~r x))
  in
  let final_pairs = Hashtbl.create (2 * n) in
  Array.iteri
    (fun x vs -> Array.iter (fun y -> Hashtbl.replace final_pairs (pair_key x y) ()) vs)
    final_vset_rows;
  (* Any final pair missing a path (cannot normally happen): set it up over
     the fully built state. *)
  Hashtbl.iter
    (fun (x, y) () ->
      if not (Hashtbl.mem path_store (x, y)) then begin
        let path =
          match greedy_route ~excl:(-1) ~src:x ~dst:y with
          | Some p -> p
          | None ->
              incr fallbacks;
              shortest_path x y
        in
        Hashtbl.replace path_store (x, y) path;
        install path
      end)
    final_pairs;
  (* Converged state keeps every path established during the joins: VRR's
     converged state "depends on the order of node joins" (§5.1) precisely
     because setup-time paths persist; this is also what concentrates state
     on early hub nodes (Fig 4/5). Freeze the staging lists into the one
     packed table both faces read; the lists are newest-first, so blocks
     are written back to front to recover install order. *)
  let entries =
    Packed.Csr.of_fn ~n
      ~row_len:(fun v -> 4 * List.length tables.(v))
      ~fill:(fun v data off ->
        let j = ref (off + (4 * List.length tables.(v)) - 4) in
        List.iter
          (fun e ->
            data.(!j) <- e.ea;
            data.(!j + 1) <- e.eb;
            data.(!j + 2) <- e.next_a;
            data.(!j + 3) <- e.next_b;
            j := !j - 4)
          tables.(v))
  in
  {
    graph;
    r;
    vids;
    entries;
    final_vsets = Packed.Csr.of_rows final_vset_rows;
    path_store;
    fallbacks = !fallbacks;
  }

(* The typed face's readers over the frozen CSR: same scan semantics as the
   staging-list helpers above, realised as backward 4-stride block scans
   (newest entry first). *)

let pk_next_toward t ~usable u e =
  let neighbor = ref false in
  Graph.iter_neighbors t.graph u (fun v _ -> if v = e && usable v then neighbor := true);
  if !neighbor then Some e
  else begin
    let data = t.entries.Packed.Csr.data in
    let off = Packed.Csr.row_off t.entries u in
    let rec scan j =
      if j < off then None
      else if data.(j) = e && data.(j + 2) <> u then Some data.(j + 2)
      else if data.(j + 1) = e && data.(j + 3) <> u then Some data.(j + 3)
      else scan (j - 4)
    in
    scan (off + Packed.Csr.row_len t.entries u - 4)
  end

let pk_best_endpoint t ~usable u ~dst ~bound =
  let vd x = Hash_space.ring_distance t.vids.(x) t.vids.(dst) in
  let better a b = Hash_space.compare_unsigned a b < 0 in
  let best = ref None and best_d = ref bound in
  let consider endpoint =
    if endpoint <> u && usable endpoint then begin
      let d = vd endpoint in
      if better d !best_d then begin
        best := Some endpoint;
        best_d := d
      end
    end
  in
  Graph.iter_neighbors t.graph u (fun v _ -> if usable v then consider v);
  let data = t.entries.Packed.Csr.data in
  let off = Packed.Csr.row_off t.entries u in
  let j = ref (off + Packed.Csr.row_len t.entries u - 4) in
  while !j >= off do
    consider data.(!j);
    consider data.(!j + 1);
    j := !j - 4
  done;
  (!best, !best_d)

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else
    let usable _ = true in
    greedy_route_gen ~graph:t.graph
      ~next_toward:(fun u e -> pk_next_toward t ~usable u e)
      ~best_endpoint:(fun u bound -> pk_best_endpoint t ~usable u ~dst ~bound)
      ~direct:(fun u -> Graph.has_edge t.graph u dst)
      ~src ~dst

module D = Core.Dataplane

(* VRR's corridors can wander: the converged greedy walk is bounded by 8n
   decisions (matching [greedy_route]'s TTL). *)
let ttl_factor = 8

(* Per-hop greedy forwarding: exactly one [greedy_route] step. The packet
   carries the committed endpoint ([anchor]) and the monotone bound on the
   best virtual distance ever committed ([vbound]); [Int64.minus_one] (max
   unsigned) is the no-bound sentinel in both this header field and the
   route oracle. The 8 [extra_bytes] are the destination's virtual id. *)
let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  (* disco-lint: allow L7 trivial usability predicate shared with the oracle's signature *)
  let usable _ = true in
  if u = dst then D.Deliver
  else if Graph.has_edge t.graph u dst then D.Forward dst
  else begin
    let committed = if h.D.anchor = u then -1 else h.D.anchor in
    let best, best_d =
      (* disco-lint: allow L7 endpoint scan recomputed per node from the carried bound is the VRR design *)
      pk_best_endpoint t ~usable u ~dst ~bound:h.D.vbound
    in
    let target =
      match best with
      | Some e -> Some e
      | None -> if committed >= 0 then Some committed else None
    in
    match target with
    | None -> D.Drop D.No_route
    | Some e -> (
        (* disco-lint: allow L7 corridor step recomputed per node is the VRR design *)
        match pk_next_toward t ~usable u e with
        | None -> D.Drop D.No_route (* broken corridor *)
        | Some hop ->
            if e = h.D.anchor && Int64.equal best_d h.D.vbound then
              D.Forward hop
            else
              (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
              D.Rewrite
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                ({ h with D.anchor = e; vbound = best_d }, hop, D.Greedy_commit e))
  end

let packet_header (_ : t) ~src:_ ~dst =
  { (D.plain ~dst D.Greedy) with D.extra_bytes = 8 }

(* --- compiled fast path ---------------------------------------------------

   [forward] flattened for {!Dataplane.fast_walk}: virtual ids split into
   unsigned 32-bit halves ([fvhi]/[fvlo]); the entry table needs no
   flattening of its own any more — the fast path adopts the frozen CSR
   slabs ([feoff]/[fent]) directly, scanning 4-stride blocks backward
   exactly like the typed face, so the endpoint scan and the corridor
   lookup are array loads and the ring metric is borrow arithmetic on int
   halves — no Int64 ever boxes on the hop loop. Mirrors [forward]
   decision for decision, including the committed endpoint / monotone
   bound discipline. *)

type fast = {
  fg : Graph.t;
  fvhi : int array;
  fvlo : int array;
  feoff : int array; (* the frozen CSR's n+1 offsets, shared not copied *)
  fent : int array; (* the frozen CSR's 4-stride (ea, eb, na, nb) blocks *)
}

let compile t =
  let n = Graph.n t.graph in
  let fvhi = Array.make n 0 and fvlo = Array.make n 0 in
  Array.iteri
    (fun v id ->
      fvhi.(v) <- Int64.to_int (Int64.shift_right_logical id 32);
      fvlo.(v) <- Int64.to_int (Int64.logand id 0xFFFFFFFFL))
    t.vids;
  { fg = t.graph; fvhi; fvlo; feoff = t.entries.Packed.Csr.off;
    fent = t.entries.Packed.Csr.data }

let fast_prime (_ : fast) ~src:_ ~dst:_ = ()

(* [best_endpoint]'s consider: ring_distance vids.(e) vids.(dst) in
   unsigned halves (64-bit subtract with borrow, negate, unsigned min
   with the typed tie rule), then strict unsigned improvement over the
   best so far ([pis.(1)]=hi, [pis.(2)]=lo; candidate in [pis.(0)]). *)
let fast_consider f (pkt : D.packet) u e =
  if e <> u then begin
    let ahi = f.fvhi.(e) and alo = f.fvlo.(e) in
    let bhi = f.fvhi.(pkt.D.pdst) and blo = f.fvlo.(pkt.D.pdst) in
    let slo = (blo - alo) land 0xFFFFFFFF in
    let sbw = if blo < alo then 1 else 0 in
    let shi = (bhi - ahi - sbw) land 0xFFFFFFFF in
    let nlo = -slo land 0xFFFFFFFF in
    let nbw = if slo > 0 then 1 else 0 in
    let nhi = (-shi - nbw) land 0xFFFFFFFF in
    let take_s = shi < nhi || (shi = nhi && slo <= nlo) in
    let dhi = if take_s then shi else nhi in
    let dlo = if take_s then slo else nlo in
    if dhi < pkt.D.pis.(1) || (dhi = pkt.D.pis.(1) && dlo < pkt.D.pis.(2))
    then begin
      pkt.D.pis.(0) <- e;
      pkt.D.pis.(1) <- dhi;
      pkt.D.pis.(2) <- dlo
    end
  end

let rec fast_scan_nbrs f pkt u i deg =
  if i < deg then begin
    fast_consider f pkt u (Graph.neighbor_at f.fg u i);
    fast_scan_nbrs f pkt u (i + 1) deg
  end

(* Backward over [u]'s 4-stride blocks: newest entry first, ea arm before
   eb arm — the typed scan order exactly. *)
let rec fast_scan_entries f pkt u j lo =
  if j >= lo then begin
    fast_consider f pkt u f.fent.(j);
    fast_consider f pkt u f.fent.(j + 1);
    fast_scan_entries f pkt u (j - 4) lo
  end

(* [next_toward] over the frozen blocks: newest entry whose endpoint
   matches and whose stored next hop is not [u] (ea arm before eb arm);
   -1 when the corridor is broken. *)
let rec fast_next_entry f u e j lo =
  if j < lo then -1
  else if f.fent.(j) = e && f.fent.(j + 2) <> u then f.fent.(j + 2)
  else if f.fent.(j + 1) = e && f.fent.(j + 3) <> u then f.fent.(j + 3)
  else fast_next_entry f u e (j - 4) lo

let fast_step f (pkt : D.packet) u =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else if Graph.has_edge f.fg u dst then dst
  else begin
    let committed = if pkt.D.panchor = u then -1 else pkt.D.panchor in
    pkt.D.pis.(0) <- -1;
    pkt.D.pis.(1) <- pkt.D.pvb_hi;
    pkt.D.pis.(2) <- pkt.D.pvb_lo;
    fast_scan_nbrs f pkt u 0 (Graph.degree f.fg u);
    fast_scan_entries f pkt u (f.feoff.(u + 1) - 4) f.feoff.(u);
    let best = pkt.D.pis.(0) in
    let target = if best >= 0 then best else committed in
    if target < 0 then D.fast_no_route
    else begin
      let hop =
        if Graph.has_edge f.fg u target then target
        else fast_next_entry f u target (f.feoff.(u + 1) - 4) f.feoff.(u)
      in
      if hop < 0 then D.fast_no_route (* broken corridor *)
      else if
        target = pkt.D.panchor
        && pkt.D.pis.(1) = pkt.D.pvb_hi
        && pkt.D.pis.(2) = pkt.D.pvb_lo
      then hop
      else begin
        pkt.D.panchor <- target;
        pkt.D.pvb_hi <- pkt.D.pis.(1);
        pkt.D.pvb_lo <- pkt.D.pis.(2);
        hop
      end
    end
  end

let state_entries t =
  Array.init (Graph.n t.graph) (fun v ->
      (Packed.Csr.row_len t.entries v / 4) + Graph.degree t.graph v)

let state_bytes t v =
  (* Entry blocks are 4 words; the vset row, the pset (one word per
     physical neighbor) and the node's own vid are one word each. *)
  float_of_int
    (8
    * (Packed.Csr.row_len t.entries v
      + Packed.Csr.row_len t.final_vsets v
      + Graph.degree t.graph v + 1))

let vset t v = Packed.Csr.sub_row t.final_vsets v
let setup_fallbacks t = t.fallbacks

let ring_distance_ok t =
  let ok = ref true in
  for x = 0 to Packed.Csr.rows t.final_vsets - 1 do
    Packed.Csr.iter_row t.final_vsets x (fun y ->
        if not (Hashtbl.mem t.path_store (pair_key x y)) then ok := false)
  done;
  !ok
