module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Hash_space = Disco_hash.Hash_space
module Rng = Disco_util.Rng
module Core = Disco_core

type entry = { ea : int; eb : int; next_a : int; next_b : int }

type t = {
  graph : Graph.t;
  r : int;
  vids : Hash_space.id array;
  tables : entry list array;
  final_vsets : int array array;
  path_store : (int * int, int list) Hashtbl.t;
  mutable fallbacks : int;
}

let pair_key x y = if x < y then (x, y) else (y, x)

(* Next hop at [u] along some stored path ending at [e]. *)
let next_toward ~graph ~tables ~usable u e =
  let neighbor = ref false in
  Graph.iter_neighbors graph u (fun v _ -> if v = e && usable v then neighbor := true);
  if !neighbor then Some e
  else
    List.find_map
      (fun entry ->
        if entry.ea = e && entry.next_a <> u then Some entry.next_a
        else if entry.eb = e && entry.next_b <> u then Some entry.next_b
        else None)
      tables.(u)

let direct_neighbor ~graph ~usable u dst =
  let direct = ref false in
  Graph.iter_neighbors graph u (fun v _ -> if v = dst && usable v then direct := true);
  !direct

(* The endpoint known at [u] (physical neighbor or stored-path endpoint)
   virtually strictly closer to [dst] than [bound], if any, with its
   distance. *)
let best_endpoint ~graph ~vids ~tables ~usable u ~dst ~bound =
  let vd x = Hash_space.ring_distance vids.(x) vids.(dst) in
  let better a b = Hash_space.compare_unsigned a b < 0 in
  let best = ref None and best_d = ref bound in
  let consider endpoint =
    if endpoint <> u && usable endpoint then begin
      let d = vd endpoint in
      if better d !best_d then begin
        best := Some endpoint;
        best_d := d
      end
    end
  in
  Graph.iter_neighbors graph u (fun v _ -> if usable v then consider v);
  List.iter
    (fun e ->
      consider e.ea;
      consider e.eb)
    tables.(u);
  (!best, !best_d)

(* Greedy VRR forwarding over the given tables. [usable] filters which
   physical neighbors may be used (joined nodes only, during build).

   The packet is always committed to the known endpoint whose virtual id is
   closest to the destination; it follows that endpoint's stored path hop
   by hop, and any node on the way may re-commit to a strictly closer
   endpoint. The strict-improvement rule ensures the endpoint sequence
   converges on the destination (VRR's progress argument); a TTL catches
   paths broken by the incremental join state. *)
let greedy_route ~graph ~vids ~tables ~usable ~src ~dst =
  let n = Graph.n graph in
  (* [bound] is the virtual distance of the best endpoint ever committed;
     it only shrinks (monotone descent in id space, VRR's progress
     property), which rules out endpoint oscillation. *)
  let rec step u committed bound acc ttl =
    if u = dst then Some (List.rev (u :: acc))
    else if ttl = 0 then None
    else if direct_neighbor ~graph ~usable u dst then
      Some (List.rev (dst :: u :: acc))
    else begin
      let committed =
        match committed with Some c when c = u -> None | c -> c
      in
      (* Strictly better endpoint than anything committed so far? *)
      let best, best_d =
        best_endpoint ~graph ~vids ~tables ~usable u ~dst ~bound
      in
      let target = match best with Some _ as b -> b | None -> committed in
      match target with
      | None -> None
      | Some e -> (
          match next_toward ~graph ~tables ~usable u e with
          | None -> None (* broken corridor *)
          | Some hop -> step hop (Some e) best_d (u :: acc) (ttl - 1))
    end
  in
  (* Int64.minus_one is 2^64 - 1 read as unsigned: no initial bound. *)
  step src None Int64.minus_one [] (8 * n)

let install tables path =
  match path with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let arr = Array.of_list path in
      let len = Array.length arr in
      let last = arr.(len - 1) in
      for i = 0 to len - 1 do
        let z = arr.(i) in
        let next_a = if i = 0 then z else arr.(i - 1) in
        let next_b = if i = len - 1 then z else arr.(i + 1) in
        tables.(z) <- { ea = first; eb = last; next_a; next_b } :: tables.(z)
      done

(* r/2 successors and r/2 predecessors of [x] within [ring] (node ids
   sorted by vid). [x] may or may not be present in [ring]. *)
let ring_neighbors ~vids ~ring ~r x =
  let m = Array.length ring in
  if m = 0 then []
  else begin
    let half = max 1 (r / 2) in
    (* First index with vid >= vid(x), excluding x itself when scanning. *)
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Hash_space.compare_unsigned vids.(ring.(mid)) vids.(x) < 0 then
        lo := mid + 1
      else hi := mid
    done;
    let start = !lo mod m in
    let collect dir =
      let out = ref [] and i = ref start and seen = ref 0 and steps = ref 0 in
      if dir < 0 then i := (start + m - 1) mod m;
      while !seen < half && !steps < m do
        let candidate = ring.(!i) in
        if candidate <> x then begin
          out := candidate :: !out;
          incr seen
        end;
        incr steps;
        i := (!i + dir + m) mod m
      done;
      !out
    in
    List.sort_uniq Int.compare (collect 1 @ collect (-1))
  end

let bfs_join_order rng graph =
  let n = Graph.n graph in
  let start = Rng.int rng n in
  let order = Array.make n 0 and seen = Array.make n false in
  let q = Queue.create () in
  Queue.push start q;
  seen.(start) <- true;
  let idx = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!idx) <- u;
    incr idx;
    Graph.iter_neighbors graph u (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
  done;
  assert (!idx = n);
  order

let build ?(r = 4) ?names ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Core.Name.default_array n in
  let vids = Array.map Hash_space.of_name names in
  let tables = Array.make n [] in
  let path_store = Hashtbl.create (2 * n) in
  let fallbacks = ref 0 in
  let ws = Dijkstra.make_workspace graph in
  let joined = Array.make n false in
  (* Joined nodes sorted by vid, grown by insertion. *)
  let joined_ring = ref [||] in
  let insert_sorted x =
    let a = !joined_ring in
    let m = Array.length a in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Hash_space.compare_unsigned vids.(a.(mid)) vids.(x) < 0 then lo := mid + 1
      else hi := mid
    done;
    let pos = !lo in
    let b = Array.make (m + 1) x in
    Array.blit a 0 b 0 pos;
    Array.blit a pos b (pos + 1) (m - pos);
    joined_ring := b
  in
  let shortest_path src dst =
    let run = Dijkstra.sssp ~ws graph src in
    Dijkstra.path_of_parents ~parent:(fun u -> run.Dijkstra.parent.(u)) ~src ~dst
  in
  let establish x y =
    let key = pair_key x y in
    if not (Hashtbl.mem path_store key) then begin
      (* The joiner is excluded from the candidate set while its own setup
         request is routed: it is virtually closest to its vset targets, so
         allowing it would pull the request straight back (in real VRR the
         request is routed by a proxy before the joiner holds any paths). *)
      let path =
        match
          greedy_route ~graph ~vids ~tables
            ~usable:(fun v -> joined.(v) && v <> x)
            ~src:x ~dst:y
        with
        | Some p -> p
        | None ->
            incr fallbacks;
            shortest_path x y
      in
      Hashtbl.replace path_store key path;
      install tables path
    end
  in
  let order = bfs_join_order rng graph in
  Array.iter
    (fun x ->
      let vset = ring_neighbors ~vids ~ring:!joined_ring ~r x in
      joined.(x) <- true;
      insert_sorted x;
      List.iter (fun y -> establish x y) vset)
    order;
  (* Converged vsets over the full ring; tear down stale paths. *)
  let full_ring = Array.copy order in
  Array.sort
    (fun a b ->
      let c = Hash_space.compare_unsigned vids.(a) vids.(b) in
      if c <> 0 then c else Int.compare a b)
    full_ring;
  let final_vsets =
    Array.init n (fun x ->
        Array.of_list (ring_neighbors ~vids ~ring:full_ring ~r x))
  in
  let final_pairs = Hashtbl.create (2 * n) in
  Array.iteri
    (fun x vs -> Array.iter (fun y -> Hashtbl.replace final_pairs (pair_key x y) ()) vs)
    final_vsets;
  (* Any final pair missing a path (cannot normally happen): set it up over
     the fully built state. *)
  Hashtbl.iter
    (fun (x, y) () ->
      if not (Hashtbl.mem path_store (x, y)) then begin
        let path =
          match
            greedy_route ~graph ~vids ~tables ~usable:(fun _ -> true) ~src:x
              ~dst:y
          with
          | Some p -> p
          | None ->
              incr fallbacks;
              shortest_path x y
        in
        Hashtbl.replace path_store (x, y) path;
        install tables path
      end)
    final_pairs;
  (* Converged state keeps every path established during the joins: VRR's
     converged state "depends on the order of node joins" (§5.1) precisely
     because setup-time paths persist; this is also what concentrates state
     on early hub nodes (Fig 4/5). *)
  {
    graph;
    r;
    vids;
    tables;
    final_vsets;
    path_store;
    fallbacks = !fallbacks;
  }

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else
    greedy_route ~graph:t.graph ~vids:t.vids ~tables:t.tables
      ~usable:(fun _ -> true) ~src ~dst

module D = Core.Dataplane

(* VRR's corridors can wander: the converged greedy walk is bounded by 8n
   decisions (matching [greedy_route]'s TTL). *)
let ttl_factor = 8

(* Per-hop greedy forwarding: exactly one [greedy_route] step. The packet
   carries the committed endpoint ([anchor]) and the monotone bound on the
   best virtual distance ever committed ([vbound]); [Int64.minus_one] (max
   unsigned) is the no-bound sentinel in both this header field and the
   route oracle. The 8 [extra_bytes] are the destination's virtual id. *)
let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  (* disco-lint: allow L7 trivial usability predicate shared with the oracle's signature *)
  let usable _ = true in
  if u = dst then D.Deliver
  (* disco-lint: allow L7 the setup-path scan shares greedy_route's allocating helpers; VRR recomputes the step per node by design *)
  else if direct_neighbor ~graph:t.graph ~usable u dst then D.Forward dst
  else begin
    let committed = if h.D.anchor = u then -1 else h.D.anchor in
    let best, best_d =
      (* disco-lint: allow L7 endpoint scan recomputed per node from the carried bound is the VRR design *)
      best_endpoint ~graph:t.graph ~vids:t.vids ~tables:t.tables ~usable u
        ~dst ~bound:h.D.vbound
    in
    let target =
      match best with
      | Some e -> Some e
      | None -> if committed >= 0 then Some committed else None
    in
    match target with
    | None -> D.Drop D.No_route
    | Some e -> (
        (* disco-lint: allow L7 corridor step recomputed per node is the VRR design *)
        match next_toward ~graph:t.graph ~tables:t.tables ~usable u e with
        | None -> D.Drop D.No_route (* broken corridor *)
        | Some hop ->
            if e = h.D.anchor && Int64.equal best_d h.D.vbound then
              D.Forward hop
            else
              (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
              D.Rewrite
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                ({ h with D.anchor = e; vbound = best_d }, hop, D.Greedy_commit e))
  end

let packet_header (_ : t) ~src:_ ~dst =
  { (D.plain ~dst D.Greedy) with D.extra_bytes = 8 }

(* --- compiled fast path ---------------------------------------------------

   [forward] flattened for {!Dataplane.fast_walk}: virtual ids split into
   unsigned 32-bit halves ([fvhi]/[fvlo]) and the per-node entry lists
   flattened into one CSR block ([ftoff] offsets into [fea]/[feb]/
   [fna]/[fnb], preserving list iteration order), so the endpoint scan
   and the corridor lookup are array loads and the ring metric is borrow
   arithmetic on int halves — no Int64 ever boxes on the hop loop.
   Mirrors [forward] decision for decision, including the committed
   endpoint / monotone bound discipline. *)

type fast = {
  fg : Graph.t;
  fvhi : int array;
  fvlo : int array;
  ftoff : int array; (* n+1 offsets into the flattened entry arrays *)
  fea : int array;
  feb : int array;
  fna : int array;
  fnb : int array;
}

let compile t =
  let n = Graph.n t.graph in
  let fvhi = Array.make n 0 and fvlo = Array.make n 0 in
  Array.iteri
    (fun v id ->
      fvhi.(v) <- Int64.to_int (Int64.shift_right_logical id 32);
      fvlo.(v) <- Int64.to_int (Int64.logand id 0xFFFFFFFFL))
    t.vids;
  let ftoff = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    ftoff.(v + 1) <- ftoff.(v) + List.length t.tables.(v)
  done;
  let total = ftoff.(n) in
  let fea = Array.make (max 1 total) (-1)
  and feb = Array.make (max 1 total) (-1)
  and fna = Array.make (max 1 total) (-1)
  and fnb = Array.make (max 1 total) (-1) in
  Array.iteri
    (fun v entries ->
      List.iteri
        (fun i e ->
          let j = ftoff.(v) + i in
          fea.(j) <- e.ea;
          feb.(j) <- e.eb;
          fna.(j) <- e.next_a;
          fnb.(j) <- e.next_b)
        entries)
    t.tables;
  { fg = t.graph; fvhi; fvlo; ftoff; fea; feb; fna; fnb }

let fast_prime (_ : fast) ~src:_ ~dst:_ = ()

(* [best_endpoint]'s consider: ring_distance vids.(e) vids.(dst) in
   unsigned halves (64-bit subtract with borrow, negate, unsigned min
   with the typed tie rule), then strict unsigned improvement over the
   best so far ([pis.(1)]=hi, [pis.(2)]=lo; candidate in [pis.(0)]). *)
let fast_consider f (pkt : D.packet) u e =
  if e <> u then begin
    let ahi = f.fvhi.(e) and alo = f.fvlo.(e) in
    let bhi = f.fvhi.(pkt.D.pdst) and blo = f.fvlo.(pkt.D.pdst) in
    let slo = (blo - alo) land 0xFFFFFFFF in
    let sbw = if blo < alo then 1 else 0 in
    let shi = (bhi - ahi - sbw) land 0xFFFFFFFF in
    let nlo = -slo land 0xFFFFFFFF in
    let nbw = if slo > 0 then 1 else 0 in
    let nhi = (-shi - nbw) land 0xFFFFFFFF in
    let take_s = shi < nhi || (shi = nhi && slo <= nlo) in
    let dhi = if take_s then shi else nhi in
    let dlo = if take_s then slo else nlo in
    if dhi < pkt.D.pis.(1) || (dhi = pkt.D.pis.(1) && dlo < pkt.D.pis.(2))
    then begin
      pkt.D.pis.(0) <- e;
      pkt.D.pis.(1) <- dhi;
      pkt.D.pis.(2) <- dlo
    end
  end

let rec fast_scan_nbrs f pkt u i deg =
  if i < deg then begin
    fast_consider f pkt u (Graph.neighbor_at f.fg u i);
    fast_scan_nbrs f pkt u (i + 1) deg
  end

let rec fast_scan_entries f pkt u j hi =
  if j < hi then begin
    fast_consider f pkt u f.fea.(j);
    fast_consider f pkt u f.feb.(j);
    fast_scan_entries f pkt u (j + 1) hi
  end

(* [next_toward] over the flattened tables: first entry whose endpoint
   matches and whose stored next hop is not [u] (ea arm before eb arm,
   list order); -1 when the corridor is broken. *)
let rec fast_next_entry f u e j hi =
  if j >= hi then -1
  else if f.fea.(j) = e && f.fna.(j) <> u then f.fna.(j)
  else if f.feb.(j) = e && f.fnb.(j) <> u then f.fnb.(j)
  else fast_next_entry f u e (j + 1) hi

let fast_step f (pkt : D.packet) u =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else if Graph.has_edge f.fg u dst then dst
  else begin
    let committed = if pkt.D.panchor = u then -1 else pkt.D.panchor in
    pkt.D.pis.(0) <- -1;
    pkt.D.pis.(1) <- pkt.D.pvb_hi;
    pkt.D.pis.(2) <- pkt.D.pvb_lo;
    fast_scan_nbrs f pkt u 0 (Graph.degree f.fg u);
    fast_scan_entries f pkt u f.ftoff.(u) f.ftoff.(u + 1);
    let best = pkt.D.pis.(0) in
    let target = if best >= 0 then best else committed in
    if target < 0 then D.fast_no_route
    else begin
      let hop =
        if Graph.has_edge f.fg u target then target
        else fast_next_entry f u target f.ftoff.(u) f.ftoff.(u + 1)
      in
      if hop < 0 then D.fast_no_route (* broken corridor *)
      else if
        target = pkt.D.panchor
        && pkt.D.pis.(1) = pkt.D.pvb_hi
        && pkt.D.pis.(2) = pkt.D.pvb_lo
      then hop
      else begin
        pkt.D.panchor <- target;
        pkt.D.pvb_hi <- pkt.D.pis.(1);
        pkt.D.pvb_lo <- pkt.D.pis.(2);
        hop
      end
    end
  end

let state_entries t =
  Array.mapi
    (fun v entries -> List.length entries + Graph.degree t.graph v)
    t.tables

let vset t v = Array.copy t.final_vsets.(v)
let setup_fallbacks t = t.fallbacks

let ring_distance_ok t =
  let ok = ref true in
  Array.iteri
    (fun x vs ->
      Array.iter
        (fun y -> if not (Hashtbl.mem t.path_store (pair_key x y)) then ok := false)
        vs)
    t.final_vsets;
  !ok
