module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Consistent_hash = Disco_hash.Consistent_hash

type t = {
  graph : Graph.t;
  names : Disco_core.Name.t array;
  ring : Consistent_hash.t;
  resolver : int array; (* per destination *)
  trees : (int, Dijkstra.sssp) Disco_util.Pool.Memo.t;
}

let build graph ~names =
  let n = Graph.n graph in
  if Array.length names <> n then invalid_arg "Seattle.build: names size";
  let ring =
    Consistent_hash.create
      ~owners:(Array.init n Fun.id)
      ~owner_name:(fun v -> names.(v))
      ()
  in
  let resolver = Array.map (fun name -> Consistent_hash.owner_of_name ring name) names in
  { graph; names; ring; resolver; trees = Disco_util.Pool.Memo.create () }

(* Lazy per-root SSSP, shared across query handles; the memo makes the
   fill safe from pool tasks, and each fill uses its own workspace
   ([Dijkstra.sssp] returns fresh arrays, so cached trees are
   workspace-independent). *)
let tree t root =
  Disco_util.Pool.Memo.find_or_add t.trees root (fun () ->
      Dijkstra.sssp ~ws:(Dijkstra.make_workspace t.graph) t.graph root)

let shortest t ~src ~dst =
  let s = tree t src in
  Dijkstra.path_of_parents ~parent:(fun u -> s.Dijkstra.parent.(u)) ~src ~dst

let resolver_of t dst = t.resolver.(dst)

let route_later t ~src ~dst = if src = dst then [ src ] else shortest t ~src ~dst

let route_first t ~src ~dst =
  if src = dst then [ src ]
  else begin
    let r = t.resolver.(dst) in
    if r = src || r = dst then route_later t ~src ~dst
    else shortest t ~src ~dst:r @ List.tl (shortest t ~src:r ~dst)
  end

let state_entries t v =
  let directory = ref 0 in
  Array.iter (fun r -> if r = v then incr directory) t.resolver;
  Graph.n t.graph - 1 + !directory
