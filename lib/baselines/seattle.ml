module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Consistent_hash = Disco_hash.Consistent_hash
module Packed = Disco_core.Packed

type t = {
  graph : Graph.t;
  names : Disco_core.Name.t array;
  ring : Consistent_hash.t;
  resolver : int array; (* per destination *)
  directory : Packed.Csr.t;
      (* the resolver map inverted: row v = the destinations whose
         directory entry v stores, sorted ascending *)
  trees : (int, Dijkstra.sssp) Disco_util.Pool.Memo.t;
}

(* Invert [resolver] into a CSR by counting sort: row v lists v's
   directory share, and per-node state queries read a row length instead
   of rescanning all n resolver slots. *)
let invert_resolver n resolver =
  let off = Array.make (n + 1) 0 in
  Array.iter (fun r -> off.(r + 1) <- off.(r + 1) + 1) resolver;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + off.(i + 1)
  done;
  let data = Array.make n 0 in
  let cursor = Array.sub off 0 n in
  Array.iteri
    (fun d r ->
      data.(cursor.(r)) <- d;
      cursor.(r) <- cursor.(r) + 1)
    resolver;
  Packed.Csr.of_parts ~off ~data

let build graph ~names =
  let n = Graph.n graph in
  if Array.length names <> n then invalid_arg "Seattle.build: names size";
  let ring =
    Consistent_hash.create
      ~owners:(Array.init n Fun.id)
      ~owner_name:(fun v -> names.(v))
      ()
  in
  let resolver = Array.map (fun name -> Consistent_hash.owner_of_name ring name) names in
  {
    graph;
    names;
    ring;
    resolver;
    directory = invert_resolver n resolver;
    trees = Disco_util.Pool.Memo.create ();
  }

(* Lazy per-root SSSP, shared across query handles; the memo makes the
   fill safe from pool tasks, and each fill uses its own workspace
   ([Dijkstra.sssp] returns fresh arrays, so cached trees are
   workspace-independent). *)
let tree t root =
  Disco_util.Pool.Memo.find_or_add t.trees root (fun () ->
      Dijkstra.sssp ~ws:(Dijkstra.make_workspace t.graph) t.graph root)

let shortest t ~src ~dst =
  let s = tree t src in
  Dijkstra.path_of_parents ~parent:(fun u -> s.Dijkstra.parent.(u)) ~src ~dst

let resolver_of t dst = t.resolver.(dst)

let route_later t ~src ~dst = if src = dst then [ src ] else shortest t ~src ~dst

let route_first t ~src ~dst =
  if src = dst then [ src ]
  else begin
    let r = t.resolver.(dst) in
    if r = src || r = dst then route_later t ~src ~dst
    else shortest t ~src ~dst:r @ List.tl (shortest t ~src:r ~dst)
  end

let state_entries t v = Graph.n t.graph - 1 + Packed.Csr.row_len t.directory v

let state_bytes t v =
  (* One word per link-state route, plus a (name hash, location) pair per
     directory-share entry. *)
  float_of_int ((8 * (Graph.n t.graph - 1)) + (16 * Packed.Csr.row_len t.directory v))

module D = Disco_core.Dataplane

let ttl_factor = 4

(* SEATTLE's data plane has no shortcutting: packets follow the exact
   label route the source's link-state table produced (so walks equal the
   oracle node for node). A first packet steers to the resolver, which
   looks the destination up in its directory share and writes the onward
   route from its own table. While steering, the packet is addressed to
   the resolver — a node it rides through does not inspect the inner
   destination, so it only delivers in [Carry] (matching the oracle,
   whose resolver detour may pass through the destination). *)
let forward t (h : D.header) ~at:u =
  (* disco-lint: allow L7 the scrutinee pairs phase and labels: per-decision by design *)
  match (h.D.phase, h.D.labels) with
  | D.Carry, _ when u = h.D.dst -> D.Deliver
  | (D.Carry | D.Steer _), next :: rest ->
      (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
      D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
  | D.Carry, [] -> D.Drop D.No_route
  | D.Steer _, [] -> (
        (* At the resolver: its directory share holds the destination. *)
        (* disco-lint: allow L7 L9 the resolver writes the onward route from its table (one allocation at the waypoint); raises only on control-plane-impossible states *)
        match shortest t ~src:u ~dst:h.D.dst with
        | _ :: (next :: rest) ->
            (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
            D.Rewrite
              (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
              ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
                next,
                D.Address_rewrite )
        | _ -> D.Drop D.No_route)
    | (D.Seek _ | D.Greedy | D.Fallback), _ ->
        (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
        D.Drop (D.Protocol_error "seattle: foreign header phase")

(* --- compiled fast path ---------------------------------------------------

   The forward above, flattened for {!Dataplane.fast_walk}: link-state
   trees become parent arrays indexed by root ([ftrees], primed per flow),
   and the hop body is array indexing only.  Mirrors [forward] decision
   for decision — including the no-deliver-while-steering rule — which
   disco-check's fast≡typed differential enforces. *)

type fast = {
  fsea : t;
  ftrees : int array array; (* SSSP parent array per root; [||] = unprimed *)
}

let compile t = { fsea = t; ftrees = Array.make (Graph.n t.graph) [||] }

let fast_prime_root f root =
  if Array.length f.ftrees.(root) = 0 then
    f.ftrees.(root) <- (tree f.fsea root).Dijkstra.parent

(* Force the trees the flow's decisions read: the source's (header
   encode) and the resolver's (the steer-leg rewrite). *)
let fast_prime f ~src ~dst =
  fast_prime_root f src;
  fast_prime_root f f.fsea.resolver.(dst)

let fast_step f (pkt : D.packet) u =
  let m = pkt.D.pmode in
  if m = D.mode_carry then
    if u = pkt.D.pdst then D.fast_deliver
    else if D.route_len pkt > 0 then D.route_next pkt
    else D.fast_no_route
  else if m = D.mode_steer || m = D.mode_steer_tried then
    if D.route_len pkt > 0 then D.route_next pkt
    else
      (* At the resolver: write the onward route from its own tree. *)
      let parents = f.ftrees.(u) in
      if Array.length parents = 0 then D.fast_protocol
      else
        let cnt = D.route_fill_down pkt parents u pkt.D.pdst in
        if cnt >= 1 then begin
          pkt.D.pmode <- D.mode_carry;
          pkt.D.pway <- -1;
          D.route_next pkt
        end
        else D.fast_no_route
  else D.fast_protocol

let carry_header ~dst path =
  match path with
  | _ :: rest -> { (D.plain ~dst D.Carry) with D.labels = rest }
  | [] -> D.plain ~dst D.Carry

let later_header t ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else carry_header ~dst (shortest t ~src ~dst)

let first_header t ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else begin
    let r = t.resolver.(dst) in
    if r = src || r = dst then later_header t ~src ~dst
    else
      match shortest t ~src ~dst:r with
      | _ :: rest ->
          {
            (D.plain ~dst (D.Steer { tried_proxy = false })) with
            D.labels = rest;
            waypoint = r;
          }
      | [] -> later_header t ~src ~dst
  end
