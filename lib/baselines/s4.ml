module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Core = Disco_core

type ball = { bm : int array; bd : float array; bp : int array }

type t = {
  graph : Graph.t;
  names : Core.Name.t array;
  landmarks : Core.Landmarks.t;
  trees : Core.Landmark_trees.t;
  ring : Disco_hash.Consistent_hash.t;
  ball_cache : (int, ball) Disco_util.Pool.Memo.t;
}

let build ?(params = Core.Params.default) ?names ?landmark_ids ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Core.Name.default_array n in
  let landmarks =
    match landmark_ids with
    | Some ids -> Core.Landmarks.of_ids graph ids
    | None -> Core.Landmarks.build ~rng ~params graph
  in
  let ring =
    Disco_hash.Consistent_hash.create
      ~replicas:params.Core.Params.resolution_replicas
      ~owners:landmarks.Core.Landmarks.ids
      ~owner_name:(fun lm -> names.(lm))
      ()
  in
  {
    graph;
    names;
    landmarks;
    trees = Core.Landmark_trees.create graph;
    ring;
    ball_cache = Disco_util.Pool.Memo.create ~size:256 ();
  }

let graph t = t.graph
let landmarks t = t.landmarks
let radius t v = t.landmarks.Core.Landmarks.dist.(v)

(* Sorted-member binary search; -1 when [x] is outside the ball. *)
let rec ball_idx (members : int array) x lo hi =
  if lo > hi then -1
  else
    let mid = (lo + hi) / 2 in
    let m = members.(mid) in
    if m = x then mid
    else if m < x then ball_idx members x (mid + 1) hi
    else ball_idx members x lo (mid - 1)

let ball_mem b x = ball_idx b.bm x 0 (Array.length b.bm - 1) >= 0
let ball_bytes b = 8 * ((3 * Array.length b.bm) + 1)

(* Ball of [target]: every node strictly closer to [target] than
   [target]'s landmark, packed as id-sorted members with parallel
   distances and predecessors in the shortest-path tree rooted at
   [target] — the one representation both the typed face and the
   compiled fast path read. *)
let ball t target =
  (* Filled lazily from route calls, possibly inside pool tasks: the memo
     serializes the table, and each fill gets its own scratch workspace
     (results are copied out, so the cached ball is workspace-independent). *)
  Disco_util.Pool.Memo.find_or_add t.ball_cache target (fun () ->
      let ws = Dijkstra.make_workspace t.graph in
      let run = Dijkstra.within_radius ~ws t.graph target (radius t target) in
      let k = Array.length run.Dijkstra.order in
      let idx = Array.init k (fun i -> i) in
      Array.sort
        (fun a b -> Int.compare run.Dijkstra.order.(a) run.Dijkstra.order.(b))
        idx;
      {
        bm = Array.map (fun i -> run.Dijkstra.order.(i)) idx;
        bd = Array.map (fun i -> run.Dijkstra.tdist.(i)) idx;
        bp = Array.map (fun i -> run.Dijkstra.tparent.(i)) idx;
      })

let in_cluster t ~node ~target = node <> target && ball_mem (ball t target) node

(* Shortest path node ~> target via the ball's forest: predecessors lie one
   step closer to the target, so the parent walk from [node] reads off the
   node ~> target path in forward order (the graph is undirected). *)
let cluster_path t ~node ~target =
  let b = ball t target in
  if not (ball_mem b node) then None
  else begin
    let rec walk u acc =
      if u = target then Some (List.rev (target :: acc))
      else begin
        let k = ball_idx b.bm u 0 (Array.length b.bm - 1) in
        if k < 0 then None else walk b.bp.(k) (u :: acc)
      end
    in
    walk node []
  end

let knows t u x =
  if u = x then Some [ u ]
  else if t.landmarks.Core.Landmarks.is_landmark.(x) then
    Some (Core.Landmark_trees.path_to t.trees u ~lm:x)
  else cluster_path t ~node:u ~target:x

let raw_via_landmark t ~src ~dst =
  let lm = t.landmarks.Core.Landmarks.nearest.(dst) in
  if lm = src then Core.Landmark_trees.path_from t.trees ~lm dst
  else begin
    let to_landmark = Core.Landmark_trees.path_to t.trees src ~lm in
    let onward = Core.Landmark_trees.path_from t.trees ~lm dst in
    to_landmark @ List.tl onward
  end

let route_later t ~src ~dst =
  if src = dst then [ src ]
  else if t.landmarks.Core.Landmarks.is_landmark.(dst) then
    Core.Landmark_trees.path_to t.trees src ~lm:dst
  else begin
    match cluster_path t ~node:src ~target:dst with
    | Some p -> p
    | None ->
        let raw = raw_via_landmark t ~src ~dst in
        Core.Shortcut.to_destination ~graph:t.graph ~knows:(knows t) ~dst raw
  end

let route_first t ~src ~dst =
  if src = dst then [ src ]
  else begin
    let direct_known =
      t.landmarks.Core.Landmarks.is_landmark.(dst)
      || in_cluster t ~node:src ~target:dst
    in
    if direct_known then route_later t ~src ~dst
    else begin
      (* Resolution detour: the owner landmark of h(name_dst) holds the
         destination's landmark; continue from there. *)
      let owner = Disco_hash.Consistent_hash.owner_of_name t.ring t.names.(dst) in
      let raw =
        if owner = src then raw_via_landmark t ~src ~dst
        else begin
          let to_owner = Core.Landmark_trees.path_to t.trees src ~lm:owner in
          let onward =
            if t.landmarks.Core.Landmarks.nearest.(dst) = owner then
              Core.Landmark_trees.path_from t.trees ~lm:owner dst
            else raw_via_landmark t ~src:owner ~dst
          in
          to_owner @ List.tl onward
        end
      in
      Core.Shortcut.to_destination ~graph:t.graph ~knows:(knows t) ~dst raw
    end
  end

module D = Core.Dataplane

let ttl_factor = 4

(* Per-hop S4 forwarding. Headers are set up by the source: direct label
   route when it already knows the destination ([Carry]), else a [Steer]
   leg toward the resolution owner (first packet) or the destination's
   landmark (later packets). Any node whose cluster (or landmark table)
   holds the destination diverts — the per-hop form of the oracle's
   to-destination shortcutting; every such route is a shortest path to the
   destination, so walk length equals the oracle's even when the diversion
   points differ. *)

(* Waypoint reached with no labels left: this node resolves the next leg.
   At the destination's landmark the explicit descent is written; at the
   resolution owner the packet is steered onward to that landmark. *)
let steer_arrival t (h : D.header) ~at:u =
  let dst = h.D.dst in
  let lm = t.landmarks.Core.Landmarks.nearest.(dst) in
  if u = lm then
    match Core.Landmark_trees.path_from t.trees ~lm dst with
    | _ :: (next :: rest) ->
        D.Rewrite
          ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
            next,
            D.Address_rewrite )
    | _ -> D.Drop D.No_route
  else
    match Core.Landmark_trees.path_to t.trees u ~lm with
    | _ :: (next :: rest) ->
        D.Rewrite
          ({ h with D.labels = rest; waypoint = lm }, next, D.Address_rewrite)
    | _ -> D.Drop D.No_route

let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  if u = dst then D.Deliver
  else begin
    (* disco-lint: allow L7 per-decision closure for the shortcut check *)
    let divert () =
      (* disco-lint: allow L7 L9 the local-cluster lookup builds the candidate route (S4 shortcutting); raises only on control-plane-impossible states *)
      match knows t u dst with
      | Some (_ :: (_ :: _ as direct)) when direct <> h.D.labels -> (
          match direct with
          | next :: rest ->
              (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
              Some
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                (D.Rewrite
                   (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                   ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
                     next,
                     D.Shortcut_divert ))
          | [] -> None)
      | _ -> None
    in
    match h.D.phase with
    | D.Carry | D.Steer _ -> (
        match divert () with
        | Some d -> d
        | None -> (
            match h.D.labels with
            | next :: rest ->
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
            | [] -> (
                match h.D.phase with
                (* disco-lint: allow L7 L9 the resolver writes the onward route (one allocation at the steering waypoint); raises only on control-plane-impossible states *)
                | D.Steer _ -> steer_arrival t h ~at:u
                | _ -> D.Drop D.No_route)))
    | D.Seek _ | D.Greedy | D.Fallback ->
        (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
        D.Drop (D.Protocol_error "s4: foreign header phase")
  end

let carry_header ~dst path =
  match path with
  | _ :: rest -> { (D.plain ~dst D.Carry) with D.labels = rest }
  | [] -> D.plain ~dst D.Carry

let steer_header ~dst ~waypoint path =
  match path with
  | _ :: rest ->
      {
        (D.plain ~dst (D.Steer { tried_proxy = false })) with
        D.labels = rest;
        waypoint;
      }
  | [] -> D.plain ~dst D.Carry

let later_header t ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else if t.landmarks.Core.Landmarks.is_landmark.(dst) then
    carry_header ~dst (Core.Landmark_trees.path_to t.trees src ~lm:dst)
  else begin
    match cluster_path t ~node:src ~target:dst with
    | Some p -> carry_header ~dst p
    | None ->
        let lm = t.landmarks.Core.Landmarks.nearest.(dst) in
        if lm = src then
          carry_header ~dst (Core.Landmark_trees.path_from t.trees ~lm dst)
        else
          steer_header ~dst ~waypoint:lm
            (Core.Landmark_trees.path_to t.trees src ~lm)
  end

let first_header t ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else begin
    let direct_known =
      t.landmarks.Core.Landmarks.is_landmark.(dst)
      || in_cluster t ~node:src ~target:dst
    in
    if direct_known then later_header t ~src ~dst
    else begin
      let owner = Disco_hash.Consistent_hash.owner_of_name t.ring t.names.(dst) in
      if owner = src then later_header t ~src ~dst
      else
        steer_header ~dst ~waypoint:owner
          (Core.Landmark_trees.path_to t.trees src ~lm:owner)
    end
  end

(* --- compiled fast path ---------------------------------------------------

   [forward] flattened for {!Dataplane.fast_walk}: landmark trees become
   per-root parent arrays ([flm]), and each destination's packed ball is
   shared as-is with the typed face through the memo ([fball]), both
   primed per flow.  The per-hop shortcut check is then a binary search
   plus parent walks; mirrors [forward] decision for decision, with the
   typed path's Invalid_argument on an unreachable landmark tree mapped
   to the protocol verdict. *)

let empty_ball = { bm = [||]; bd = [||]; bp = [||] }

type fast = {
  fs4 : t;
  fg : Graph.t;
  fis_lm : bool array;
  fnearest : int array;
  flm : int array array; (* per landmark root: tree parents; [||] unprimed *)
  fball : ball array; (* per destination, shared with the memo; unprimed = empty *)
}

let compile t =
  let n = Graph.n t.graph in
  {
    fs4 = t;
    fg = t.graph;
    fis_lm = t.landmarks.Core.Landmarks.is_landmark;
    fnearest = t.landmarks.Core.Landmarks.nearest;
    flm = Array.make n [||];
    fball = Array.make n empty_ball;
  }

let fast_prime_tree f lm =
  if Array.length f.flm.(lm) = 0 then
    f.flm.(lm) <- Core.Landmark_trees.parents f.fs4.trees ~lm

let fast_prime f ~src:_ ~dst =
  if f.fis_lm.(dst) then fast_prime_tree f dst
  else begin
    fast_prime_tree f f.fnearest.(dst);
    if Array.length f.fball.(dst).bm = 0 then
      (* every ball contains its target, so a primed slot is never empty *)
      f.fball.(dst) <- ball f.fs4 dst
  end

(* [cluster_path]'s parent walk, split into a read-only probe (a broken
   chain means no divert, and the live route must stay intact) and the
   fill that runs only once the probe succeeds. *)
let rec fast_ball_check members parents x dst =
  x = dst
  ||
  let k = ball_idx members x 0 (Array.length members - 1) in
  k >= 0 && fast_ball_check members parents parents.(k) dst

let rec fast_ball_fill (pkt : D.packet) members parents x i dst =
  if x = dst then begin
    pkt.D.proute_pos <- 0;
    pkt.D.proute_end <- i;
    i
  end
  else begin
    let k = ball_idx members x 0 (Array.length members - 1) in
    let p = parents.(k) in
    pkt.D.proute.(i) <- p;
    fast_ball_fill pkt members parents p (i + 1) dst
  end

(* Labels left: consume; none: [Carry] is out of route, [Steer] resolves
   at the waypoint (the destination's landmark writes the descent, any
   other arrival steers onward to that landmark). *)
let fast_arrival f (pkt : D.packet) u dst m =
  if D.route_len pkt > 0 then D.route_next pkt
  else if m = D.mode_carry then D.fast_no_route
  else begin
    let lm = f.fnearest.(dst) in
    let parents = f.flm.(lm) in
    if Array.length parents = 0 then D.fast_protocol
    else if u = lm then begin
      let cnt = D.route_fill_down pkt parents lm dst in
      if cnt >= 1 then begin
        pkt.D.pmode <- D.mode_carry;
        pkt.D.pway <- -1;
        D.route_next pkt
      end
      else D.fast_protocol (* unreachable: the typed path raises *)
    end
    else if D.route_chain_ok parents u lm then begin
      let _cnt = D.route_fill_up pkt parents u lm in
      pkt.D.pway <- lm;
      D.route_next pkt
    end
    else D.fast_protocol
  end

let fast_step f (pkt : D.packet) u =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else begin
    let m = pkt.D.pmode in
    if m <> D.mode_carry && m <> D.mode_steer && m <> D.mode_steer_tried then
      D.fast_protocol
    else if f.fis_lm.(dst) then begin
      (* Landmark destination: every node diverts onto the tree route
         (when the remaining labels already equal it, the rewrite is the
         identity — same next hop, same tail — so always diverting
         matches the typed guard). *)
      let parents = f.flm.(dst) in
      if Array.length parents = 0 then D.fast_protocol
      else if D.route_chain_ok parents u dst then begin
        let _cnt = D.route_fill_up pkt parents u dst in
        pkt.D.pmode <- D.mode_carry;
        pkt.D.pway <- -1;
        D.route_next pkt
      end
      else D.fast_protocol (* unreachable: typed [knows] raises *)
    end
    else begin
      let b = f.fball.(dst) in
      let members = b.bm in
      let parents = b.bp in
      if
        ball_idx members u 0 (Array.length members - 1) >= 0
        && fast_ball_check members parents u dst
      then begin
        let _cnt = fast_ball_fill pkt members parents u 0 dst in
        pkt.D.pmode <- D.mode_carry;
        pkt.D.pway <- -1;
        D.route_next pkt
      end
      else fast_arrival f pkt u dst m
    end
  end

let cluster_sizes t =
  let n = Graph.n t.graph in
  let counts = Array.make n 0 in
  let ws = Dijkstra.make_workspace t.graph in
  for target = 0 to n - 1 do
    let run = Dijkstra.within_radius ~ws t.graph target (radius t target) in
    Array.iter
      (fun u -> if u <> target then counts.(u) <- counts.(u) + 1)
      run.Dijkstra.order
  done;
  counts

let resolution_loads t =
  let n = Graph.n t.graph in
  let loads = Array.make n 0 in
  Array.iter
    (fun name ->
      let owner = Disco_hash.Consistent_hash.owner_of_name t.ring name in
      loads.(owner) <- loads.(owner) + 1)
    t.names;
  loads

let state_entries t ~cluster_sizes ~resolution_loads v =
  let landmark_entries = Core.Landmarks.count t.landmarks in
  let cluster = cluster_sizes.(v) in
  let labels = min (Graph.degree t.graph v) (cluster + landmark_entries) in
  cluster + landmark_entries + labels + resolution_loads.(v)

let state_bytes t ~cluster_sizes ~resolution_loads v =
  let landmark_entries = Core.Landmarks.count t.landmarks in
  let cluster = cluster_sizes.(v) in
  let labels = min (Graph.degree t.graph v) (cluster + landmark_entries) in
  (* Cluster and landmark routes are packed-ball rows: (member, distance,
     next hop) at 24 bytes; forwarding labels one word; resolution-share
     entries a (name hash, location) pair. *)
  float_of_int
    ((24 * (cluster + landmark_entries))
    + (8 * labels)
    + (16 * resolution_loads.(v)))
