(** SEATTLE (Kim, Caesar, Rexford — SIGCOMM 2008), a Fig 1 baseline.

    SEATTLE routers run a link-state protocol (shortest paths to every
    router: Θ(n) state) and look flat addresses up in a one-hop consistent
    hashing directory over the routers themselves. First packets detour
    through the resolver that owns the destination's hash — anywhere in
    the network — and later packets follow exact shortest paths. It
    therefore scales better than Ethernet but is neither o(n)-state nor
    low-stretch on first packets, which is its row in Fig 1. *)

type t

val build : Disco_graph.Graph.t -> names:Disco_core.Name.t array -> t

val resolver_of : t -> int -> int
(** The router storing a destination's location (consistent hashing over
    all routers). *)

val route_first : t -> src:int -> dst:int -> int list
(** Shortest path to the resolver, then shortest path onward. *)

val route_later : t -> src:int -> dst:int -> int list
(** Exact shortest path (the source caches the location). *)

val state_entries : t -> int -> int
(** n-1 link-state routes + the node's directory share — a CSR row length
    over the inverted resolver map, not a rescan of all n slots. *)

val state_bytes : t -> int -> float
(** Exact bytes: one word per link-state route plus a 16-byte
    (name hash, location) directory entry per CSR row slot. *)

val ttl_factor : int
(** TTL budget as a multiple of [n] (4). *)

val forward :
  t ->
  Disco_core.Dataplane.header ->
  at:int ->
  Disco_core.Dataplane.decision
(** Consume the explicit label route; a first packet's [Steer] leg ends at
    the resolver, which writes the onward route from its own link-state
    table. No shortcutting — walks equal the route oracles node for node. *)

val first_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
val later_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header

(** {2 Compiled fast path} *)

type fast
(** Link-state trees flattened into per-root parent arrays for the
    zero-alloc walker ({!Disco_core.Dataplane.fast_walk}). *)

val compile : t -> fast

val fast_prime : fast -> src:int -> dst:int -> unit
(** Force the source's and the resolver's trees for one flow, so
    {!fast_step} never fills a cache on the hop loop. *)

val fast_step : fast -> Disco_core.Dataplane.packet -> int -> int
(** One zero-alloc decision, mirroring {!forward} exactly (the fast≡typed
    differential's contract). *)
