(** The generalized Thorup–Zwick hierarchy: other points on the
    state/stretch tradeoff curve (§6: "Disco has chosen one point in the
    state/stretch tradeoff space ... can we translate other tradeoff
    points to a distributed setting?").

    TZ's full scheme samples nested landmark levels
    [A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1}] (each kept with probability
    [n^{-1/k}]) and gives every node a {e bunch}: at each level, the
    sampled nodes closer than the nearest next-level sample. Routing via
    the first common pivot yields worst-case stretch [2k - 1] with
    [O~(n^{1/k})] state — [k = 2] is (essentially) the Disco/S4 regime,
    larger [k] trades stretch for even smaller tables.

    This is the {e static, name-dependent} skeleton of that family, enough
    to measure the tradeoff curve (the [tradeoff] experiment); making its
    higher-[k] points dynamic and name-independent is exactly the open
    problem the paper poses. *)

type t

val build : rng:Disco_util.Rng.t -> k:int -> Disco_graph.Graph.t -> t
(** [build ~rng ~k g] samples the hierarchy and computes all bunches.
    Requires [k >= 1]; [k = 1] degenerates to full shortest-path state. *)

val k : t -> int

val level_sizes : t -> int array
(** |A_0|, ..., |A_{k-1}|. *)

val state : t -> int -> int
(** Routing-table entries at a node: its bunch plus its per-level pivots. *)

val state_bytes : t -> int -> float
(** Exact bytes of a node's slice of the packed tables: its CSR bunch row
    with the parallel distance slab (16 bytes per entry) plus a
    (pivot, distance) pair per level. *)

val route_length : t -> src:int -> dst:int -> float
(** Length of the TZ route (via the first common pivot, taking the better
    direction). Finite for every connected pair. *)

val route : t -> src:int -> dst:int -> int list option
(** The node path of the TZ route, [src ~> pivot ~> dst] along shortest
    paths; [None] only when the pair is disconnected. Its length can
    exceed {!route_length} by the unexplored reverse direction — the
    scheme forwards via the pivot found climbing from [src]. *)

val stretch_bound : t -> float
(** The scheme's worst-case guarantee, [2k - 1]. *)

val in_bunch : t -> node:int -> target:int -> bool
(** Is [target] in [node]'s bunch? (Exposed for tests.) *)

val ttl_factor : int
(** TTL budget as a multiple of [n] (4). *)

val forward :
  t ->
  Disco_core.Dataplane.header ->
  at:int ->
  Disco_core.Dataplane.decision
(** One forwarding decision: climb the carried pivot's shortest-path tree
    (each hop a local parent lookup), then the pivot writes the explicit
    descent. Walking {!forward} reproduces {!route} node for node. *)

val packet_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
(** The header the source emits: the routing pivot of the (src, dst) climb
    as the [Steer] waypoint (-1 when the pair is disconnected). *)

(** {2 Compiled fast path} *)

type fast
(** Pivot trees flattened into parent arrays for the zero-alloc walker. *)

val compile : t -> fast

val fast_prime : fast -> src:int -> dst:int -> unit
(** Force the (src, dst) routing pivot's tree for one flow. *)

val fast_step : fast -> Disco_core.Dataplane.packet -> int -> int
(** One zero-alloc decision, mirroring {!forward} exactly. *)
