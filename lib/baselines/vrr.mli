(** Virtual Ring Routing (Caesar et al., SIGCOMM 2006).

    VRR organizes nodes into a virtual ring ordered by (hashes of) their
    flat identifiers. Each node maintains a {e vset} of r virtual
    neighbors (r/2 successors, r/2 predecessors on the ring) and sets up a
    physical path to each; every node on such a path stores a routing
    entry (endpoints + next hops both ways). Packets are forwarded
    greedily to the stored endpoint whose identifier is virtually closest
    to the destination.

    The paper evaluates VRR with r = 4 and notes two failure modes Disco
    avoids (§3, §5): no bound on stretch, and — because path state lands on
    every intermediate node — routing state that can exceed even path
    vector at central nodes, in theory up to Θ(n²).

    Following §5.1, the converged state depends on join order: we join a
    random start node first and grow the joined component outward, each
    joiner establishing vset paths by VRR-routing through the state built
    so far (falling back to a physical shortest path only when greedy
    routing fails, e.g. for the very first pairs). After all joins,
    stale paths (pairs no longer ring-adjacent) are torn down. *)

type t

val build :
  ?r:int -> ?names:Disco_core.Name.t array -> rng:Disco_util.Rng.t ->
  Disco_graph.Graph.t -> t
(** [r] defaults to 4 as in the paper's evaluation. *)

val route : t -> src:int -> dst:int -> int list option
(** Greedy virtual-ring forwarding; [None] if the packet loops or stalls
    (counted by {!failed_routes} — rare on connected graphs). *)

val ttl_factor : int
(** TTL budget as a multiple of [n] (8, matching {!route}'s internal TTL —
    VRR corridors can wander well past the diameter). *)

val forward :
  t ->
  Disco_core.Dataplane.header ->
  at:int ->
  Disco_core.Dataplane.decision
(** One greedy step at node [at], consulting only its pset, its stored
    path entries and the header's committed endpoint/bound. Walking
    {!forward} from [src] reproduces {!route} exactly (same path, same
    delivery verdict). *)

val packet_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
(** The header a source emits: phase {!Dataplane.Greedy}, no commitment
    yet, the destination's virtual id as 8 payload bytes. *)

val state_entries : t -> int array
(** Routing entries per node: converged path entries through the node plus
    its physical-neighbor (pset) entries. *)

val state_bytes : t -> int -> float
(** Exact bytes of a node's slice of the packed slabs: its frozen
    (endpoint, next-hop) entry blocks at 32 bytes each, plus one word per
    vset member, per physical neighbor, and for its own virtual id. *)

val vset : t -> int -> int array
(** The node's converged virtual neighbors. *)

val setup_fallbacks : t -> int
(** Path setups that required the shortest-path fallback during join. *)

val ring_distance_ok : t -> bool
(** Sanity invariant for tests: every node's vset equals its true ring
    neighborhood. *)

(** {2 Compiled fast path} *)

type fast
(** Virtual ids as unsigned 32-bit halves over the same frozen CSR entry
    slabs the typed face reads (shared, not copied), for the zero-alloc
    walker (no Int64 on the hop loop). *)

val compile : t -> fast
val fast_prime : fast -> src:int -> dst:int -> unit

val fast_step : fast -> Disco_core.Dataplane.packet -> int -> int
(** One zero-alloc decision, mirroring {!forward} exactly (same endpoint
    scan order, same committed-endpoint/monotone-bound discipline). *)
