(** Beacon Vector Routing (Fonseca et al., NSDI 2005) — a Fig 1 baseline.

    BVR gives every node a coordinate: its vector of distances to [r]
    randomly chosen beacons. Packets carry the destination's coordinate
    and are forwarded greedily to the neighbor minimizing BVR's asymmetric
    distance over the destination's [k] closest beacons (moving {e toward}
    a beacon the destination is close to is weighted tenfold versus moving
    away). When greedy is stuck, the packet falls back to routing toward
    the destination's closest beacon; if it arrives there still stuck, BVR
    would scoped-flood — we count that as a failure instead.

    The per-node state is tiny (r distances + r beacon next-hops), which
    is BVR's appeal; the paper's critique — greedy gets stuck in local
    minima, stretch is unbounded, and name lookup needs the beacons — is
    what the [fig1] experiment measures. *)

type t

val build :
  ?beacons:int -> ?routing_beacons:int -> rng:Disco_util.Rng.t ->
  Disco_graph.Graph.t -> t
(** [beacons] defaults to ~sqrt(n log n) (the landmark rate) capped at
    128 — the count x n distance slab dominates memory at million-node
    scale and more beacons stop buying routing power well before that;
    the packet routes on the destination's [routing_beacons] (default 10)
    closest beacons, as in the BVR paper. *)

val beacon_count : t -> int

val route : t -> src:int -> dst:int -> int list option
(** Greedy + beacon-fallback forwarding; [None] when the packet is stuck
    at the fallback beacon (BVR would flood). *)

val state_entries : t -> int -> int
(** Coordinates plus beacon next-hops at one node. *)

val state_bytes : t -> int -> float
(** Exact bytes of the node's columns of the packed slabs: 8 bytes of
    float64 distance plus one word of next hop per beacon. *)

val ttl_factor : int
(** TTL budget as a multiple of [n] (4, matching {!route}). *)

val forward :
  t ->
  Disco_core.Dataplane.header ->
  at:int ->
  Disco_core.Dataplane.decision
(** One greedy/fallback step at node [at] from the carried coordinate
    (phases {!Dataplane.Greedy}/{!Dataplane.Fallback}, re-entry bound in
    [fbound]). Walking {!forward} reproduces {!route} exactly. *)

val packet_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
(** The header a source emits: greedy phase, the destination's coordinate
    as payload bytes (4 per routing beacon). *)

val coordinate : t -> int -> float array
(** The node's beacon-distance vector (exposed for tests). *)

(** {2 Compiled fast path} *)

type fast
(** Per-destination routing-beacon components precomputed into one
    stride-[routing_beacons] slab over the build's distance/parent slabs,
    for the zero-alloc walker. *)

val compile : t -> fast
val fast_prime : fast -> src:int -> dst:int -> unit

val fast_step : fast -> Disco_core.Dataplane.packet -> int -> int
(** One zero-alloc decision, mirroring {!forward} exactly (epsilons, nan
    propagation and all); floats stay in the packet's [pfs] scratch. *)
