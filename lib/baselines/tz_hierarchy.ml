module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Heap = Disco_util.Heap
module Rng = Disco_util.Rng
module Packed = Disco_core.Packed

type t = {
  graph : Graph.t;
  k : int;
  level : int array; (* highest level each node belongs to *)
  pivot : int array array; (* pivot.(i).(v) = p_i(v); -1 if unreachable *)
  pivot_dist : float array array; (* d(v, A_i) *)
  bunch : Packed.Csr.t; (* per node: sorted bunch member ids *)
  bunch_d : Packed.Fslab.t; (* parallel to [bunch.data]: d(v, w) *)
  trees : (int, Dijkstra.sssp) Disco_util.Pool.Memo.t;
      (* lazy per-pivot SSSP shared by route and forward *)
}

let k t = t.k

let level_sizes t =
  let sizes = Array.make t.k 0 in
  Array.iter
    (fun l ->
      for i = 0 to l do
        sizes.(i) <- sizes.(i) + 1
      done)
    t.level;
  sizes

(* Bunch contributions of one sampled node [w] at level [i]: every node u
   with d(w, u) < d(u, A_{i+1}) learns a route to w (strict inequality,
   as in TZ). A pruned Dijkstra from w: a node only propagates the search
   if it satisfies the condition itself. [next_dist i u] is d(u, A_{i+1})
   with the sentinel d(u, A_k) = infinity; [staging] holds the mutable
   per-node bunches until {!build} freezes them into the CSR. *)
let scatter ~graph:g ~next_dist ~staging ~w ~i =
  let dist = Hashtbl.create 64 in
  let heap = Heap.create () in
  Heap.push heap 0.0 w;
  Hashtbl.replace dist w 0.0;
  let settled = Hashtbl.create 64 in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if not (Hashtbl.mem settled u) then begin
          Hashtbl.replace settled u ();
          if d < next_dist i u then begin
            if u <> w then Hashtbl.replace staging.(u) w d;
            Graph.iter_neighbors g u (fun v wgt ->
                let nd = d +. wgt in
                match Hashtbl.find_opt dist v with
                | Some old when old <= nd -> ()
                | _ ->
                    Hashtbl.replace dist v nd;
                    Heap.push heap nd v)
          end
        end
  done

let build ~rng ~k graph =
  if k < 1 then invalid_arg "Tz_hierarchy.build: k >= 1";
  let n = Graph.n graph in
  let level = Array.make n 0 in
  let q = float_of_int n ** (-1.0 /. float_of_int k) in
  for v = 0 to n - 1 do
    let rec climb i =
      if i < k - 1 && Rng.bernoulli rng q then climb (i + 1) else i
    in
    level.(v) <- climb 0
  done;
  (* The top level must be nonempty or top-level pivots (and the stretch
     guarantee) disappear. *)
  if not (Array.exists (fun l -> l = k - 1) level) then
    level.(Rng.int rng n) <- k - 1;
  let members i =
    Array.of_list
      (List.filter (fun v -> level.(v) >= i) (List.init n Fun.id))
  in
  let pivot = Array.make k [||] and pivot_dist = Array.make k [||] in
  for i = 0 to k - 1 do
    let multi = Dijkstra.multi_source graph (members i) in
    pivot.(i) <- multi.Dijkstra.msource;
    pivot_dist.(i) <- multi.Dijkstra.mdist
  done;
  let staging = Array.init n (fun _ -> Hashtbl.create 16) in
  let next_dist i v =
    if i + 1 >= k then infinity else pivot_dist.(i + 1).(v)
  in
  for w = 0 to n - 1 do
    (* w contributes at each level it belongs to. *)
    for i = 0 to level.(w) do
      scatter ~graph ~next_dist ~staging ~w ~i
    done
  done;
  (* Freeze the staged bunches into flat slabs: id-sorted CSR rows with a
     parallel distance slab, binary-searched from here on. *)
  let bunch =
    Packed.Csr.of_fn ~n
      ~row_len:(fun v -> Hashtbl.length staging.(v))
      ~fill:(fun v data off ->
        let j = ref off in
        Hashtbl.iter
          (fun w _ ->
            data.(!j) <- w;
            incr j)
          staging.(v);
        let row = Array.sub data off (!j - off) in
        Array.sort Int.compare row;
        Array.blit row 0 data off (Array.length row))
  in
  let bunch_d = Packed.Fslab.create (Packed.Csr.total bunch) ~init:infinity in
  for v = 0 to n - 1 do
    let off = Packed.Csr.row_off bunch v in
    for j = 0 to Packed.Csr.row_len bunch v - 1 do
      let w = Packed.Csr.get bunch v j in
      Packed.Fslab.set bunch_d (off + j) (Hashtbl.find staging.(v) w)
    done
  done;
  { graph; k; level; pivot; pivot_dist; bunch; bunch_d;
    trees = Disco_util.Pool.Memo.create () }

let state t v = Packed.Csr.row_len t.bunch v + t.k

(* Exact bytes of v's slice of the packed tables: its bunch row (8-byte id
   + 8-byte distance per entry) plus a (pivot, distance) pair per level. *)
let state_bytes t v =
  float_of_int ((16 * Packed.Csr.row_len t.bunch v) + (16 * t.k))

let in_bunch t ~node ~target =
  node = target || Packed.Csr.find_sorted t.bunch node target >= 0

(* The TZ query: climb levels, alternating sides, until the current pivot
   of one endpoint lies in the other's bunch; route via that pivot. *)
let route_length t ~src ~dst =
  if src = dst then 0.0
  else begin
    let rec climb i x y w =
      if in_bunch t ~node:y ~target:w then begin
        let d_xw = if w = x then 0.0 else t.pivot_dist.(i).(x) in
        let d_yw =
          if w = y then 0.0
          else
            Packed.Fslab.get t.bunch_d
              (Packed.Csr.row_off t.bunch y + Packed.Csr.find_sorted t.bunch y w)
        in
        d_xw +. d_yw
      end
      else begin
        let i = i + 1 in
        if i >= t.k then infinity (* disconnected *)
        else begin
          let x, y = (y, x) in
          climb i x y t.pivot.(i).(x)
        end
      end
    in
    climb 0 src dst src
  end

let stretch_bound t = float_of_int ((2 * t.k) - 1)

(* The same climb as {!route_length}, stopping at the pivot the packet
   routes through. *)
let routing_pivot t ~src ~dst =
  let rec climb i x y w =
    if in_bunch t ~node:y ~target:w then Some w
    else begin
      let i = i + 1 in
      if i >= t.k then None
      else begin
        let x, y = (y, x) in
        climb i x y t.pivot.(i).(x)
      end
    end
  in
  climb 0 src dst src

(* Lazy per-pivot SSSP: the memo makes fills safe from pool tasks, and
   each fill uses its own workspace (the returned arrays are fresh, so
   cached trees are workspace-independent). *)
let tree t w =
  Disco_util.Pool.Memo.find_or_add t.trees w (fun () ->
      Dijkstra.sssp ~ws:(Dijkstra.make_workspace t.graph) t.graph w)

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else
    match routing_pivot t ~src ~dst with
    | None -> None
    | Some w ->
        (* Both legs of [src ~> w ~> dst] are shortest paths, so one run
           rooted at the pivot reconstructs the whole route. *)
        let sp = tree t w in
        if sp.Dijkstra.dist.(src) = infinity || sp.Dijkstra.dist.(dst) = infinity
        then None
        else begin
          let from_pivot z =
            Dijkstra.path_of_parents
              ~parent:(fun u -> sp.Dijkstra.parent.(u))
              ~src:w ~dst:z
          in
          match from_pivot dst with
          | [] -> None
          | _ :: tail -> Some (List.rev (from_pivot src) @ tail)
        end

module D = Disco_core.Dataplane

let ttl_factor = 4

(* Per-hop TZ forwarding: the header carries the routing pivot found by
   the source's climb; nodes forward up the pivot's shortest-path tree
   ([Steer] with no labels — each hop is a local parent lookup), and the
   pivot itself writes the explicit descent to the destination. While
   climbing, the packet is addressed to the pivot, so a node it rides
   through does not deliver even if it is the destination (the oracle's
   route may cross the destination on the way up); only the pivot itself
   and the [Carry] descent deliver. Walks equal {!route} node for node. *)
let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  match h.D.phase with
    | D.Steer _ ->
        let w = h.D.waypoint in
        if w < 0 then D.Drop D.No_route (* no common pivot: disconnected *)
        else begin
          (* disco-lint: allow L7 L9 lazy pivot-tree lookup (memoized per pivot, amortized over packets); raises only on control-plane-impossible states *)
          let sp = tree t w in
          if u = w then begin
            if u = dst then D.Deliver
            else
            match
              (* disco-lint: allow L7 L9 the pivot writes the onward route (one allocation at the waypoint); raises only on control-plane-impossible states *)
              Dijkstra.path_of_parents
                (* disco-lint: allow L7 parent-accessor closure for the one-time route write at the pivot *)
                ~parent:(fun x -> sp.Dijkstra.parent.(x))
                ~src:w ~dst
            with
            | _ :: (next :: rest) ->
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                D.Rewrite
                  (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                  ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
                    next,
                    D.Address_rewrite )
            | _ -> D.Drop D.No_route
          end
          else begin
            match sp.Dijkstra.parent.(u) with
            | -1 -> D.Drop D.No_route
            | p -> D.Forward p
          end
        end
    | D.Carry when u = dst -> D.Deliver
    | D.Carry -> (
        match h.D.labels with
        | next :: rest ->
            (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
            D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
        | [] -> D.Drop D.No_route)
    | D.Seek _ | D.Greedy | D.Fallback ->
        (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
        D.Drop (D.Protocol_error "tz: foreign header phase")

let packet_header t ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else begin
    let w = match routing_pivot t ~src ~dst with Some w -> w | None -> -1 in
    { (D.plain ~dst (D.Steer { tried_proxy = false })) with D.waypoint = w }
  end

(* --- compiled fast path ---------------------------------------------------

   [forward] flattened for {!Dataplane.fast_walk}: the carried pivot's
   SSSP becomes a parent array ([ftrees], primed per flow), climbing is
   one array load per hop, and the pivot's descent write is a
   {!Dataplane.route_fill_down}.  Mirrors [forward] decision for
   decision (fast≡typed differential). *)

type fast = {
  ftz : t;
  ftrees : int array array; (* SSSP parent array per pivot; [||] = unprimed *)
}

let compile t = { ftz = t; ftrees = Array.make (Graph.n t.graph) [||] }

let fast_prime_root f w =
  if Array.length f.ftrees.(w) = 0 then
    f.ftrees.(w) <- (tree f.ftz w).Dijkstra.parent

let fast_prime f ~src ~dst =
  match routing_pivot f.ftz ~src ~dst with
  | Some w -> fast_prime_root f w
  | None -> ()

let fast_step f (pkt : D.packet) u =
  let m = pkt.D.pmode in
  if m = D.mode_steer || m = D.mode_steer_tried then begin
    let w = pkt.D.pway in
    if w < 0 then D.fast_no_route (* no common pivot: disconnected *)
    else
      let parents = f.ftrees.(w) in
      if Array.length parents = 0 then D.fast_protocol
      else if u = w then
        if u = pkt.D.pdst then D.fast_deliver
        else
          let cnt = D.route_fill_down pkt parents w pkt.D.pdst in
          if cnt >= 1 then begin
            pkt.D.pmode <- D.mode_carry;
            pkt.D.pway <- -1;
            D.route_next pkt
          end
          else D.fast_no_route
      else
        let p = parents.(u) in
        if p < 0 then D.fast_no_route else p
  end
  else if m = D.mode_carry then
    if u = pkt.D.pdst then D.fast_deliver
    else if D.route_len pkt > 0 then D.route_next pkt
    else D.fast_no_route
  else D.fast_protocol
