module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Packed = Disco_core.Packed

type t = {
  graph : Graph.t;
  beacons : int array;
  dist : Packed.Fslab.t;
      (* count x n beacon-to-node distances, one float64 slab: row b at
         [b * n .. b * n + n - 1] *)
  parent : int array; (* beacon shortest-path trees, same layout *)
  routing_beacons : int;
}

(* Beacon sets scale as ~sqrt(n log n) (the landmark rate) but are capped:
   the distance slab is count x n, and past a few hundred beacons the
   coordinate no longer gains routing power while the slab dominates
   memory at million-node scale. *)
let max_default_beacons = 128

let build ?beacons ?(routing_beacons = 10) ~rng graph =
  let n = Graph.n graph in
  let count =
    match beacons with
    | Some b -> max 1 (min b n)
    | None ->
        let f = float_of_int n in
        min max_default_beacons
          (max 1 (int_of_float (ceil (sqrt (f *. (log f /. log 2.0))))))
  in
  let beacons = Rng.sample_without_replacement rng count n in
  Array.sort Int.compare beacons;
  let dist = Packed.Fslab.create (count * n) ~init:infinity in
  let parent = Array.make (count * n) (-1) in
  let ws = Dijkstra.make_workspace graph in
  Array.iteri
    (fun b beacon ->
      let run = Dijkstra.sssp ~ws graph beacon in
      let base = b * n in
      for v = 0 to n - 1 do
        Packed.Fslab.set dist (base + v) run.Dijkstra.dist.(v);
        parent.(base + v) <- run.Dijkstra.parent.(v)
      done)
    beacons;
  { graph; beacons; dist; parent; routing_beacons = min routing_beacons count }

let beacon_count t = Array.length t.beacons

(* [Bigarray.Array1.get] on the concretely-typed slab compiles to an
   inline unboxed load; the cross-module [Fslab.get] wrapper boxes the
   float on every read, which the alloc gate flags on the typed face's
   per-hop delta folds. *)
let bdist t b v = Bigarray.Array1.get t.dist ((b * Graph.n t.graph) + v)

let coordinate t v =
  Array.init (Array.length t.beacons) (fun b -> bdist t b v)

let state_entries t v =
  ignore v;
  2 * Array.length t.beacons

let state_bytes t v =
  ignore v;
  (* The node's slab columns: its coordinate (8 bytes per beacon distance)
     and its beacon next hops (one word each). *)
  float_of_int (16 * Array.length t.beacons)

(* The destination's [routing_beacons] closest beacons (indexes into
   t.beacons), per the BVR paper's C_k(d). *)
let closest_beacons t dst =
  let dist = t.dist in
  let n = Graph.n t.graph in
  let idx = Array.init (Array.length t.beacons) Fun.id in
  Array.sort
    (fun a b ->
      Float.compare
        (Bigarray.Array1.get dist ((a * n) + dst))
        (Bigarray.Array1.get dist ((b * n) + dst)))
    idx;
  Array.sub idx 0 t.routing_beacons

(* BVR's asymmetric distance: delta = 10 * (sum of overshoot toward the
   beacons the destination is close to) + undershoot. *)
let delta t ~components ~node ~dst =
  let dist = t.dist in
  let n = Graph.n t.graph in
  let acc = ref 0.0 in
  for i = 0 to Array.length components - 1 do
    let b = components.(i) in
    let p = Bigarray.Array1.get dist ((b * n) + node)
    and d = Bigarray.Array1.get dist ((b * n) + dst) in
    acc := !acc +. (10.0 *. Float.max 0.0 (p -. d)) +. Float.max 0.0 (d -. p)
  done;
  !acc

type mode = Greedy | Fallback of float
(* BVR's fallback discipline: once stuck, ride the closest beacon's tree
   and return to greedy only on strict improvement over the distance at
   which fallback was entered — otherwise greedy would re-descend into the
   same local minimum. *)

let best_neighbor t ~components u ~dst =
  let best = ref None and best_d = ref infinity in
  Graph.iter_neighbors t.graph u (fun v _ ->
      let d = delta t ~components ~node:v ~dst in
      if d < !best_d -. 1e-12 then begin
        best := Some (v, d);
        best_d := d
      end);
  !best

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let n = Graph.n t.graph in
    let components = closest_beacons t dst in
    let b = components.(0) in
    let beacon = t.beacons.(b) in
    let best_neighbor u = best_neighbor t ~components u ~dst in
    let rec step u acc ttl mode =
      if u = dst then Some (List.rev (u :: acc))
      else if ttl = 0 then None
      else begin
        let here = delta t ~components ~node:u ~dst in
        match (mode, best_neighbor u) with
        | Greedy, Some (v, d) when d < here -. 1e-12 ->
            step v (u :: acc) (ttl - 1) Greedy
        | Greedy, _ ->
            if u = beacon then None (* stuck at the beacon: BVR would flood *)
            else step u acc ttl (Fallback here)
        | Fallback bound, Some (v, d) when d < bound -. 1e-12 ->
            step v (u :: acc) (ttl - 1) Greedy
        | Fallback _, _ -> (
            if u = beacon then None
            else
              match t.parent.((b * n) + u) with
              | -1 -> None
              | p -> step p (u :: acc) (ttl - 1) mode)
      end
    in
    step src [] (4 * n) Greedy
  end

module D = Disco_core.Dataplane

let ttl_factor = 4

(* Per-hop BVR forwarding from the carried coordinate. One decision per
   hop: [route]'s same-node Greedy -> Fallback mode switch compresses into
   the single [Fallback_descent] rewrite (its re-check of the improving
   neighbor against the just-recorded bound fails by construction, so both
   machines take the same parent hop). The header carries only the mode
   ([Greedy]/[Fallback] phase) and the fallback re-entry bound [fbound];
   everything else — the destination's closest beacons, the asymmetric
   delta — is recomputed at each node from the coordinate, which the
   [extra_bytes] account for on the wire. *)
let forward t (h : D.header) ~at:u =
  let dst = h.D.dst in
  if u = dst then D.Deliver
  else begin
    (* disco-lint: allow L7 BVR recomputes the destination's beacon components at every node from the carried coordinate (paper design) *)
    let components = closest_beacons t dst in
    let b = components.(0) in
    let beacon = t.beacons.(b) in
    (* disco-lint: allow L7 per-decision closure shared by the two fallback arms *)
    let descend () =
      if u = beacon then D.Drop D.No_route (* stuck at the beacon: BVR would flood *)
      else
        match t.parent.((b * Graph.n t.graph) + u) with
        | -1 -> D.Drop D.No_route
        | p -> (
            match h.D.phase with
            | D.Fallback -> D.Forward p
            | _ ->
                (* disco-lint: allow L7 delta folds the carried coordinate at each node by design *)
                let here = delta t ~components ~node:u ~dst in
                (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
                D.Rewrite ({ h with D.phase = D.Fallback; fbound = here }, p, D.Fallback_descent))
    in
    (* disco-lint: allow L7 the scrutinee pairs the phase with the recomputed best neighbor: per-decision by design *)
    match (h.D.phase, best_neighbor t ~components u ~dst) with
    (* disco-lint: allow L7 delta folds the carried coordinate at each node by design *)
    | D.Greedy, Some (v, d) when d < delta t ~components ~node:u ~dst -. 1e-12
      ->
        D.Forward v
    | D.Fallback, Some (v, d) when d < h.D.fbound -. 1e-12 ->
        (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
        D.Rewrite ({ h with D.phase = D.Greedy; fbound = infinity }, v, D.Greedy_commit v)
    | (D.Greedy | D.Fallback), _ -> descend ()
    | (D.Seek _ | D.Steer _ | D.Carry), _ ->
        (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
        D.Drop (D.Protocol_error "bvr: foreign header phase")
  end

let packet_header t ~src:_ ~dst =
  { (D.plain ~dst D.Greedy) with D.extra_bytes = 4 * t.routing_beacons }

(* --- compiled fast path ---------------------------------------------------

   [forward] flattened for {!Dataplane.fast_walk}: each destination's
   routing-beacon components are precomputed at compile time into one
   stride-[frb] int slab ([fcomp]), and the per-hop delta folds run over
   the build's distance slab with every intermediate float kept in the
   packet's [pfs] scratch — a flat float array — so no float ever crosses
   a call boundary boxed. Mirrors [forward] decision for decision,
   including the epsilon guards and the nan propagation of [Float.max]
   when a beacon reaches neither endpoint (disconnected graphs). *)

type fast = {
  fbvr : t;
  fn : int; (* row stride of the distance/parent slabs *)
  frb : int; (* routing beacons per destination *)
  fcomp : int array; (* n x frb: destination d's components at d * frb *)
}

let compile t =
  let n = Graph.n t.graph in
  let frb = t.routing_beacons in
  let fcomp = Array.make (n * frb) 0 in
  for d = 0 to n - 1 do
    let comp = closest_beacons t d in
    Array.blit comp 0 fcomp (d * frb) frb
  done;
  { fbvr = t; fn = n; frb; fcomp }

let fast_prime (_ : fast) ~src:_ ~dst:_ = ()

(* [pfs] scratch slots (slot 0 is the header's fallback bound). *)
let fs_delta = 1
let fs_here = 2
let fs_best = 3

(* [delta]'s fold, accumulating into [pfs.(slot)]: same order, same
   asymmetric weighting, same [Float.max 0.0] semantics (a nan overshoot
   stays nan, poisoning the sum exactly as the typed fold does). *)
let rec fast_delta_loop f base node dst i count (pfs : float array) slot =
  if i < count then begin
    let b = f.fcomp.(base + i) in
    (* the slab type is concrete, so these access primitives compile to
       inline loads with unboxed float results — a cross-module
       [Fslab.get] call would box on every read *)
    let dist : Packed.Fslab.t = f.fbvr.dist in
    let p = Bigarray.Array1.get dist ((b * f.fn) + node) in
    let d = Bigarray.Array1.get dist ((b * f.fn) + dst) in
    let over = p -. d in
    let over =
      if over > 0.0 then over else if Float.is_nan over then over else 0.0
    in
    let under = d -. p in
    let under =
      if under > 0.0 then under else if Float.is_nan under then under else 0.0
    in
    pfs.(slot) <- pfs.(slot) +. (10.0 *. over) +. under;
    fast_delta_loop f base node dst (i + 1) count pfs slot
  end

(* [best_neighbor]'s scan: best candidate into [pis.(0)], its delta into
   [pfs.(fs_best)] (strict epsilon improvement, CSR neighbor order). *)
let rec fast_scan_loop f base u dst i deg (pkt : D.packet) =
  if i < deg then begin
    let v = Graph.neighbor_at f.fbvr.graph u i in
    pkt.D.pfs.(fs_delta) <- 0.0;
    fast_delta_loop f base v dst 0 f.frb pkt.D.pfs fs_delta;
    if pkt.D.pfs.(fs_delta) < pkt.D.pfs.(fs_best) -. 1e-12 then begin
      pkt.D.pis.(0) <- v;
      pkt.D.pfs.(fs_best) <- pkt.D.pfs.(fs_delta)
    end;
    fast_scan_loop f base u dst (i + 1) deg pkt
  end

let fast_step f (pkt : D.packet) u =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else begin
    let m = pkt.D.pmode in
    if m <> D.mode_greedy && m <> D.mode_fallback then D.fast_protocol
    else begin
      let base = dst * f.frb in
      let b = f.fcomp.(base) in
      let beacon = f.fbvr.beacons.(b) in
      pkt.D.pis.(0) <- -1;
      pkt.D.pfs.(fs_best) <- infinity;
      fast_scan_loop f base u dst 0 (Graph.degree f.fbvr.graph u) pkt;
      pkt.D.pfs.(fs_here) <- 0.0;
      fast_delta_loop f base u dst 0 f.frb pkt.D.pfs fs_here;
      let best = pkt.D.pis.(0) in
      if
        m = D.mode_greedy && best >= 0
        && pkt.D.pfs.(fs_best) < pkt.D.pfs.(fs_here) -. 1e-12
      then best
      else if
        m = D.mode_fallback && best >= 0
        && pkt.D.pfs.(fs_best) < pkt.D.pfs.(D.fs_fbound) -. 1e-12
      then begin
        pkt.D.pmode <- D.mode_greedy;
        pkt.D.pfs.(D.fs_fbound) <- infinity;
        best
      end
      else if u = beacon then D.fast_no_route
        (* stuck at the beacon: BVR would flood *)
      else begin
        let p = f.fbvr.parent.((b * f.fn) + u) in
        if p < 0 then D.fast_no_route
        else if m = D.mode_fallback then p
        else begin
          pkt.D.pmode <- D.mode_fallback;
          pkt.D.pfs.(D.fs_fbound) <- pkt.D.pfs.(fs_here);
          p
        end
      end
    end
  end
