(** S4 (Mao et al., NSDI 2007): the paper's main baseline (§4.2, §5).

    S4 adapts the cluster-based Thorup–Zwick scheme: random landmarks, and
    each node [v] stores routes to its {e cluster} — the nodes [w] that are
    closer to [v] than to their own landmark ([d(v,w) < d(w, l_w)]) —
    instead of a fixed-size vicinity. Routing goes [s ~> l_t ~> t] with
    "to-destination" shortcutting: the first node on the way whose cluster
    contains [t] diverts directly.

    The catch (§5, footnote 6): random landmark selection breaks the TZ
    state bound — central nodes end up inside a Θ(n)-sized fraction of all
    balls, so their clusters explode. {!cluster_sizes} measures exactly
    that. Name lookup uses the same consistent-hashing resolution database
    over landmarks as NDDisco, making first-packet stretch unbounded. *)

type t

val build :
  ?params:Disco_core.Params.t ->
  ?names:Disco_core.Name.t array ->
  ?landmark_ids:int array ->
  rng:Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  t

val graph : t -> Disco_graph.Graph.t
val landmarks : t -> Disco_core.Landmarks.t

val radius : t -> int -> float
(** [d(v, l_v)], the ball radius governing who stores a route to [v]. *)

type ball = { bm : int array; bd : float array; bp : int array }
(** A target's ball packed flat: id-sorted members with parallel distances
    and rootward predecessors — the one representation the typed face and
    the compiled fast path both read. *)

val ball : t -> int -> ball
(** Ball of a target (one truncated Dijkstra, memoised). Always contains
    the target itself. *)

val ball_bytes : ball -> int
(** Exact bytes of the packed ball slabs. *)

val in_cluster : t -> node:int -> target:int -> bool
(** Is [target] in [node]'s cluster, i.e. [d(node,target) < radius target]?
    Computed from the target's ball (one truncated Dijkstra, cached). *)

val knows : t -> Disco_core.Shortcut.knowledge
(** Cluster + landmark route knowledge, for shortcutting. *)

val route_later : t -> src:int -> dst:int -> int list
(** Route when the source already knows the destination's landmark:
    direct if [dst] is a landmark or in [src]'s cluster, else via [l_dst]
    with to-destination shortcutting. Worst-case stretch 3 (TZ). *)

val route_first : t -> src:int -> dst:int -> int list
(** First packet: detour via the landmark that owns [h(name_dst)] in the
    resolution database, then continue as {!route_later} from there —
    unbounded stretch. *)

val ttl_factor : int
(** TTL budget as a multiple of [n] (4). *)

val forward :
  t ->
  Disco_core.Dataplane.header ->
  at:int ->
  Disco_core.Dataplane.decision
(** One forwarding decision at node [at]: divert if the node's cluster or
    landmark table holds the destination, else consume a label; a
    [Steer] waypoint (resolution owner, then the destination's landmark)
    rewrites the next leg on arrival. Walks agree with the route oracles
    on delivery and weighted length (diversion points may differ — every
    divert rides a shortest path). *)

val first_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
(** First packet: explicit route if the source knows the destination,
    else a [Steer] leg toward the resolution owner of [h(name_dst)]. *)

val later_header : t -> src:int -> dst:int -> Disco_core.Dataplane.header
(** Once the source knows the destination's landmark: direct labels, or a
    [Steer] leg toward that landmark. *)

val cluster_sizes : t -> int array
(** |cluster(v)| for every v, by accumulating every node's ball — O(total
    cluster state). This is the quantity that explodes on Internet-like
    topologies. *)

val resolution_loads : t -> int array
(** Resolution-database entries per node (0 off-landmark), computed once. *)

val state_entries :
  t -> cluster_sizes:int array -> resolution_loads:int array -> int -> int
(** Data-plane entries at a node: cluster + landmark routes + forwarding
    labels + resolution-database load. *)

val state_bytes :
  t -> cluster_sizes:int array -> resolution_loads:int array -> int -> float
(** Exact bytes of those entries as packed: 24-byte (member, distance,
    next hop) rows for cluster and landmark routes, one word per label,
    16 bytes per resolution entry. *)

(** {2 Compiled fast path} *)

type fast
(** Landmark trees as parent arrays and destination balls as sorted
    member/parent pairs, primed per flow for the zero-alloc walker. *)

val compile : t -> fast

val fast_prime : fast -> src:int -> dst:int -> unit
(** Force the flow's landmark tree(s) and the destination's ball. *)

val fast_step : fast -> Disco_core.Dataplane.packet -> int -> int
(** One zero-alloc decision, mirroring {!forward} exactly (shortcut
    diverts included). *)
