module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Sim = Disco_sim.Sim

type outcome = {
  estimates : float array;
  rounds_run : int;
  messages : int;
  sketch_bytes : int;
}

(* Eccentricity of node 0 in hops, doubled, bounds the diameter. *)
let diameter_estimate graph =
  let n = Graph.n graph in
  let dist = Array.make n (-1) in
  dist.(0) <- 0;
  let q = Queue.create () in
  Queue.push 0 q;
  let far = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors graph u (fun v _ ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          if dist.(v) > !far then far := dist.(v);
          Queue.push v q
        end)
  done;
  2 * !far

let estimate_n ~graph ~node_name ?(buckets = 64) ?rounds () =
  let n = Graph.n graph in
  let rounds =
    match rounds with Some r -> r | None -> diameter_estimate graph + 2
  in
  let sketches =
    Array.init n (fun v ->
        let s = Fm_sketch.create ~buckets in
        Fm_sketch.add s (node_name v);
        s)
  in
  let sim = Sim.create ~graph () in
  Sim.set_handler sim (fun node ~src:_ sketch ->
      Fm_sketch.merge_into sketches.(node) sketch);
  (* Round r at time r: every node pushes its current sketch to all
     neighbors. Link latencies are ignored for round pacing (rounds are a
     periodic timer); merging happens as messages arrive. *)
  for r = 0 to rounds - 1 do
    Sim.schedule sim ~delay:(float_of_int r) (fun () ->
        for v = 0 to n - 1 do
          Graph.iter_neighbors graph v (fun nbr _ ->
              Sim.send_direct sim ~src:v ~dst:nbr ~latency:0.5
                (Fm_sketch.copy sketches.(v)))
        done)
  done;
  Sim.run sim;
  {
    estimates = Array.map Fm_sketch.estimate sketches;
    rounds_run = rounds;
    messages = Sim.messages_sent sim;
    sketch_bytes = Fm_sketch.byte_size (Fm_sketch.create ~buckets);
  }
