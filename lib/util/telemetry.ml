(* Wall-clock reads live here (disco-lint L1 allowlist) so protocol code
   stays bit-deterministic under a seed: [now_s] may feed timing telemetry
   and reports, never routing or sampling decisions. *)
let now_s () = Unix.gettimeofday ()

type t = {
  mutable route_calls : int;
  mutable route_failures : int;
  mutable resolution_fallbacks : int;
  mutable messages_sent : int;
  mutable sssp_runs : int;
  mutable packets_walked : int;
  mutable packets_delivered : int;
  mutable packets_dropped : int;
  mutable hops_forwarded : int;
  mutable header_rewrites : int;
  mutable header_bytes : int;
}

let create () =
  {
    route_calls = 0;
    route_failures = 0;
    resolution_fallbacks = 0;
    messages_sent = 0;
    sssp_runs = 0;
    packets_walked = 0;
    packets_delivered = 0;
    packets_dropped = 0;
    hops_forwarded = 0;
    header_rewrites = 0;
    header_bytes = 0;
  }

let reset t =
  t.route_calls <- 0;
  t.route_failures <- 0;
  t.resolution_fallbacks <- 0;
  t.messages_sent <- 0;
  t.sssp_runs <- 0;
  t.packets_walked <- 0;
  t.packets_delivered <- 0;
  t.packets_dropped <- 0;
  t.hops_forwarded <- 0;
  t.header_rewrites <- 0;
  t.header_bytes <- 0

let route_call t = t.route_calls <- t.route_calls + 1
let route_failure t = t.route_failures <- t.route_failures + 1
let resolution_fallback t = t.resolution_fallbacks <- t.resolution_fallbacks + 1
let message_sent t = t.messages_sent <- t.messages_sent + 1
let sssp_run t = t.sssp_runs <- t.sssp_runs + 1

let packet_walked t ~delivered ~hops ~rewrites ~header_bytes =
  t.packets_walked <- t.packets_walked + 1;
  if delivered then t.packets_delivered <- t.packets_delivered + 1
  else t.packets_dropped <- t.packets_dropped + 1;
  t.hops_forwarded <- t.hops_forwarded + hops;
  t.header_rewrites <- t.header_rewrites + rewrites;
  t.header_bytes <- t.header_bytes + header_bytes

let add ~into t =
  into.route_calls <- into.route_calls + t.route_calls;
  into.route_failures <- into.route_failures + t.route_failures;
  into.resolution_fallbacks <- into.resolution_fallbacks + t.resolution_fallbacks;
  into.messages_sent <- into.messages_sent + t.messages_sent;
  into.sssp_runs <- into.sssp_runs + t.sssp_runs;
  into.packets_walked <- into.packets_walked + t.packets_walked;
  into.packets_delivered <- into.packets_delivered + t.packets_delivered;
  into.packets_dropped <- into.packets_dropped + t.packets_dropped;
  into.hops_forwarded <- into.hops_forwarded + t.hops_forwarded;
  into.header_rewrites <- into.header_rewrites + t.header_rewrites;
  into.header_bytes <- into.header_bytes + t.header_bytes

let merge ts =
  let into = create () in
  List.iter (fun t -> add ~into t) ts;
  into

type snapshot = {
  route_calls : int;
  route_failures : int;
  resolution_fallbacks : int;
  messages_sent : int;
  sssp_runs : int;
  packets_walked : int;
  packets_delivered : int;
  packets_dropped : int;
  hops_forwarded : int;
  header_rewrites : int;
  header_bytes : int;
}

let snapshot (t : t) =
  {
    route_calls = t.route_calls;
    route_failures = t.route_failures;
    resolution_fallbacks = t.resolution_fallbacks;
    messages_sent = t.messages_sent;
    sssp_runs = t.sssp_runs;
    packets_walked = t.packets_walked;
    packets_delivered = t.packets_delivered;
    packets_dropped = t.packets_dropped;
    hops_forwarded = t.hops_forwarded;
    header_rewrites = t.header_rewrites;
    header_bytes = t.header_bytes;
  }

let render ~route_calls ~route_failures ~resolution_fallbacks ~messages_sent
    ~sssp_runs ~packets_walked ~packets_delivered ~packets_dropped
    ~hops_forwarded ~header_rewrites ~header_bytes =
  Printf.sprintf
    "route_calls=%d failures=%d fallbacks=%d messages=%d sssp_runs=%d \
     walks=%d delivered=%d dropped=%d hops=%d rewrites=%d header_bytes=%d"
    route_calls route_failures resolution_fallbacks messages_sent sssp_runs
    packets_walked packets_delivered packets_dropped hops_forwarded
    header_rewrites header_bytes

let to_string (t : t) =
  render ~route_calls:t.route_calls ~route_failures:t.route_failures
    ~resolution_fallbacks:t.resolution_fallbacks ~messages_sent:t.messages_sent
    ~sssp_runs:t.sssp_runs ~packets_walked:t.packets_walked
    ~packets_delivered:t.packets_delivered ~packets_dropped:t.packets_dropped
    ~hops_forwarded:t.hops_forwarded ~header_rewrites:t.header_rewrites
    ~header_bytes:t.header_bytes

let snapshot_to_string (s : snapshot) =
  render ~route_calls:s.route_calls ~route_failures:s.route_failures
    ~resolution_fallbacks:s.resolution_fallbacks ~messages_sent:s.messages_sent
    ~sssp_runs:s.sssp_runs ~packets_walked:s.packets_walked
    ~packets_delivered:s.packets_delivered ~packets_dropped:s.packets_dropped
    ~hops_forwarded:s.hops_forwarded ~header_rewrites:s.header_rewrites
    ~header_bytes:s.header_bytes
