(* Wall-clock reads live here (disco-lint L1 allowlist) so protocol code
   stays bit-deterministic under a seed: [now_s] may feed timing telemetry
   and reports, never routing or sampling decisions. *)
let now_s () = Unix.gettimeofday ()

type t = {
  mutable route_calls : int;
  mutable route_failures : int;
  mutable resolution_fallbacks : int;
  mutable messages_sent : int;
  mutable sssp_runs : int;
}

let create () =
  {
    route_calls = 0;
    route_failures = 0;
    resolution_fallbacks = 0;
    messages_sent = 0;
    sssp_runs = 0;
  }

let reset t =
  t.route_calls <- 0;
  t.route_failures <- 0;
  t.resolution_fallbacks <- 0;
  t.messages_sent <- 0;
  t.sssp_runs <- 0

let route_call t = t.route_calls <- t.route_calls + 1
let route_failure t = t.route_failures <- t.route_failures + 1
let resolution_fallback t = t.resolution_fallbacks <- t.resolution_fallbacks + 1
let message_sent t = t.messages_sent <- t.messages_sent + 1
let sssp_run t = t.sssp_runs <- t.sssp_runs + 1

let add ~into t =
  into.route_calls <- into.route_calls + t.route_calls;
  into.route_failures <- into.route_failures + t.route_failures;
  into.resolution_fallbacks <- into.resolution_fallbacks + t.resolution_fallbacks;
  into.messages_sent <- into.messages_sent + t.messages_sent;
  into.sssp_runs <- into.sssp_runs + t.sssp_runs

let merge ts =
  let into = create () in
  List.iter (fun t -> add ~into t) ts;
  into

type snapshot = {
  route_calls : int;
  route_failures : int;
  resolution_fallbacks : int;
  messages_sent : int;
  sssp_runs : int;
}

let snapshot (t : t) =
  {
    route_calls = t.route_calls;
    route_failures = t.route_failures;
    resolution_fallbacks = t.resolution_fallbacks;
    messages_sent = t.messages_sent;
    sssp_runs = t.sssp_runs;
  }

let to_string (t : t) =
  Printf.sprintf
    "route_calls=%d failures=%d fallbacks=%d messages=%d sssp_runs=%d"
    t.route_calls t.route_failures t.resolution_fallbacks t.messages_sent
    t.sssp_runs

let snapshot_to_string (s : snapshot) =
  Printf.sprintf
    "route_calls=%d failures=%d fallbacks=%d messages=%d sssp_runs=%d"
    s.route_calls s.route_failures s.resolution_fallbacks s.messages_sent
    s.sssp_runs
