(** Minimal JSON reader for the benchmark gates.

    The repo's benches write their own JSON snapshots
    ([BENCH_alloc.json], [BENCH_scaling.json]) and later read them back —
    to gate a rerun against a committed baseline, or to resume a scaling
    sweep from its last checkpoint.  Reading them structurally (rather
    than scanning for byte offsets of known keys) keeps the gates correct
    when members are reordered or reformatted.

    Subset notes: numbers are [float]s, [\u] escapes cover the BMP only
    (no surrogate pairs) — all this repo's files need. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error. *)

val of_file : string -> (t, string) result
(** Read and parse a file; I/O errors surface as [Error]. *)

val member : string -> t -> t option
(** First member with that key, if the value is an object. *)

val to_float : t -> float option

val to_int : t -> int option
(** [Num] with an integral value only. *)

val to_string : t -> string option
val to_list : t -> t list option

val float_member : string -> t -> float option
(** [member] composed with the corresponding projection. *)

val int_member : string -> t -> int option
val string_member : string -> t -> string option

val list_member : string -> t -> t list
(** Like [member] + [to_list] but defaulting to [[]] — iteration sites
    read naturally. *)
