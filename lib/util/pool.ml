(* The only module allowed to use Domain/Mutex/Condition (disco-lint L6):
   everything parallel in the tree goes through this pool, so the
   determinism argument (DESIGN.md §5d) has a single choke point.

   Shape: [create] spawns jobs-1 worker domains that block on a
   Mutex/Condition-protected queue of thunks; [run] enqueues one thunk per
   input index, then the calling domain drains the queue alongside the
   workers and finally waits for in-flight thunks to land. Results and
   exceptions are written to per-index slots (disjoint writes, no races);
   the completion counter is the only cross-domain coordination, and it is
   mutex-protected, which also publishes the slot writes to the caller. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  pending : (unit -> unit) Queue.t;
  wake : Condition.t;  (* workers: work arrived or shutdown *)
  idle : Condition.t;  (* caller: a batch finished *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let resolve_jobs n = if n <= 0 then default_jobs () else n
let jobs t = t.jobs

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec take () =
      if t.stop then None
      else
        match Queue.take_opt t.pending with
        | Some _ as job -> job
        | None ->
            Condition.wait t.wake t.mutex;
            take ()
    in
    let job = take () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some thunk ->
        thunk ();
        loop ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      pending = Queue.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Shared lazy caches (e.g. landmark trees) are filled from inside pool
   tasks, so their fill path needs the same mutex discipline as the queue;
   exposing the memo from here keeps every lock in the tree behind this
   module (lint L6). The lock guards table lookups/inserts only — compute
   runs unlocked, and a lost race converges on the winner's value, which
   is sound because compute is required to be deterministic in the key. *)
module Memo = struct
  type ('k, 'v) t = { lock : Mutex.t; table : ('k, 'v) Hashtbl.t }

  let create ?(size = 64) () =
    { lock = Mutex.create (); table = Hashtbl.create size }

  let find_or_add m key compute =
    Mutex.lock m.lock;
    let hit = Hashtbl.find_opt m.table key in
    Mutex.unlock m.lock;
    match hit with
    | Some v -> v
    | None ->
        let v = compute () in
        Mutex.lock m.lock;
        let v =
          match Hashtbl.find_opt m.table key with
          | Some winner -> winner
          | None ->
              Hashtbl.add m.table key v;
              v
        in
        Mutex.unlock m.lock;
        v

  let length m =
    Mutex.lock m.lock;
    let n = Hashtbl.length m.table in
    Mutex.unlock m.lock;
    n
end

let run_sequential input f = Array.map f input

let run t input f =
  let n = Array.length input in
  if t.jobs = 1 || n <= 1 then run_sequential input f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let task i () =
      (match f input.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e);
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal t.idle;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.pending
    done;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* The calling domain is a worker too, for the duration of the batch. *)
    let rec help () =
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.pending in
      Mutex.unlock t.mutex;
      match job with
      | Some thunk ->
          thunk ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock t.mutex;
    while !remaining > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.run: task produced no result")
      results
  end
