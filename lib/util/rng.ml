type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let derive seed i =
  let z = mix64 (Int64.add (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int (i + 1)))) in
  Int64.to_int (Int64.shift_right_logical z 2)

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (add (sub r v) (of_int (bound - 1))) minus_one) < 0L then
      draw ()
    else Int64.to_int v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (k <= n);
  if k * 3 >= n then begin
    (* Dense case: shuffle a full permutation prefix. *)
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: hash-set rejection. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let exponential t lambda =
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda
