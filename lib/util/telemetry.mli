(** Lightweight instrumentation counters threaded through the protocol
    surface ({!module:ROUTER} adapters), the sampled-pairs engine and the
    event simulator, so every experiment can report its cost uniformly.

    A [t] is a bag of mutable counters; sharing one across components
    accumulates, and {!add} merges per-router records into a per-figure
    one. Wall-clock access also lives here ({!now_s}) so the rest of the
    tree stays free of [Unix.gettimeofday] (disco-lint rule L1). *)

val now_s : unit -> float
(** Wall-clock seconds since the epoch. Only for timing telemetry and
    reports — never for protocol logic, which must be seed-deterministic. *)

type t = {
  mutable route_calls : int;  (** route_first/route_later invocations *)
  mutable route_failures : int;  (** routes that returned no path *)
  mutable resolution_fallbacks : int;
      (** first packets that fell back to the resolution database *)
  mutable messages_sent : int;  (** protocol messages on the simulator *)
  mutable sssp_runs : int;  (** shortest-path computations (engine oracles) *)
  mutable packets_walked : int;  (** data-plane walks executed *)
  mutable packets_delivered : int;  (** walks that reached the destination *)
  mutable packets_dropped : int;  (** walks dropped (TTL, loop, no route) *)
  mutable hops_forwarded : int;  (** individual forwarding decisions taken *)
  mutable header_rewrites : int;  (** in-flight header rewrites *)
  mutable header_bytes : int;  (** header bytes carried, summed per hop *)
}

val create : unit -> t
val reset : t -> unit
val route_call : t -> unit
val route_failure : t -> unit
val resolution_fallback : t -> unit
val message_sent : t -> unit
val sssp_run : t -> unit

val packet_walked :
  t -> delivered:bool -> hops:int -> rewrites:int -> header_bytes:int -> unit
(** Record one finished data-plane walk: its outcome, per-hop decision
    count, in-flight rewrites and total header bytes carried. *)

val add : into:t -> t -> unit
(** Accumulate [t]'s counters into [into]. *)

val merge : t list -> t
(** A fresh [t] holding the fold of every record in order. The merge is a
    plain sum, so it is independent of how work that produced the records
    was scheduled — this is the barrier step of the parallel engine. *)

type snapshot = {
  route_calls : int;
  route_failures : int;
  resolution_fallbacks : int;
  messages_sent : int;
  sssp_runs : int;
  packets_walked : int;
  packets_delivered : int;
  packets_dropped : int;
  hops_forwarded : int;
  header_rewrites : int;
  header_bytes : int;
}
(** An immutable read view. Results that outlive the run (e.g.
    [Engine.sampled]) carry a [snapshot], never the live mutable [t], so a
    later run reusing the accumulator cannot retroactively change reported
    numbers. *)

val snapshot : t -> snapshot
(** Copy the current counter values. *)

val to_string : t -> string
(** One-line [key=value] rendering for report trailers. *)

val snapshot_to_string : snapshot -> string
(** Same rendering for the immutable view. *)
