(** Deterministic pseudo-random number generation.

    Every experiment in this repository is seeded explicitly so results are
    reproducible bit-for-bit. The generator is SplitMix64 (Steele et al.),
    which passes BigCrush, is trivially splittable, and needs no external
    dependency. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. Use to give
    each node or each experiment phase its own stream. *)

val derive : int -> int -> int
(** [derive seed i] is a well-mixed 62-bit child seed, so a run seed can
    fan out into per-case seeds ([derive seed 0], [derive seed 1], ...)
    whose streams are independent — unlike arithmetic on raw seeds, which
    SplitMix64 would partially correlate. Always non-negative. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [0, n). Requires [k <= n]. Output order is unspecified. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda). *)
