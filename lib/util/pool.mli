(** A fixed-size domain pool: the one place in the tree allowed to touch
    [Domain]/[Mutex]/[Condition] (disco-lint rule L6).

    The pool exists so the experiment engine can fan measurement tasks out
    over cores without giving up bit-reproducibility: {!run} preserves
    index order, propagates the lowest-index exception, and makes no
    scheduling decision observable to the caller. Determinism therefore
    reduces to the caller's task bodies being independent — which the
    engine guarantees by giving each task private accumulators and a
    derived RNG stream (see DESIGN.md §5d).

    No dependency beyond the stdlib: workers are [Domain.spawn]ed threads
    draining a [Mutex]/[Condition]-protected queue of thunks. *)

type t
(** A pool of worker domains. A pool with [jobs = 1] spawns no domains and
    runs every task inline, so single-job runs are exactly the sequential
    code path. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

val resolve_jobs : int -> int
(** Normalize a [--jobs] request: values [<= 0] mean "auto" (one worker
    per recommended domain); anything else is taken as given, clamped to
    at least 1. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs - 1] worker domains (the calling
    domain also executes tasks during {!run}, so [jobs] is the total
    parallelism). *)

val jobs : t -> int
(** The parallelism this pool was created with. *)

val run : t -> 'a array -> ('a -> 'b) -> 'b array
(** [run t input f] applies [f] to every element and returns the results
    in index order, regardless of which domain computed what. All tasks
    are attempted even if one raises; afterwards the exception raised by
    the lowest failing index is re-raised in the caller, so failure
    reporting does not depend on scheduling. Not reentrant: [f] must not
    itself call {!run} on the same pool. With [jobs t = 1] (or fewer than
    two tasks) this is an ordinary sequential loop. *)

val shutdown : t -> unit
(** Join the workers. Idempotent; the pool must not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'b) -> 'b
(** [create], apply, and [shutdown] (also on exception). *)

(** A mutex-protected lazy memo table — the one shared-mutable-state
    helper task bodies may use (anything built on raw [Mutex]/[Atomic]
    outside this module is banned by lint L6).

    The compute function passed to {!find_or_add} MUST be a deterministic
    function of the key: when two domains miss on the same key
    concurrently, both compute and the first insertion wins, so results
    stay independent of scheduling only because the loser's value is
    equal. The lock is never held while computing, so a slow fill cannot
    stall readers of other keys. *)
module Memo : sig
  type ('k, 'v) t

  val create : ?size:int -> unit -> ('k, 'v) t

  val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** [find_or_add t k compute] returns the cached value for [k], filling
      it with [compute ()] on a miss. [compute] may be called more than
      once across domains for the same key (first insert wins); it is
      called without the table lock held. *)

  val length : ('k, 'v) t -> int
  (** Number of distinct keys cached so far. *)
end
