(* Minimal recursive-descent JSON reader.  The bench gates (alloc baseline,
   scaling checkpoints) read back files this repo writes, but a structural
   parser keeps them robust to member reordering and reformatting — the
   string-offset scanner this replaces silently mis-parsed rows whose keys
   were not in the exact order [json_of_rows] emitted them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let fail pos msg = raise (Fail (Printf.sprintf "at byte %d: %s" pos msg))

(* The cursor is a plain int ref over the input string; every parse_*
   function leaves it on the first byte after the value it consumed. *)

let skip_ws s pos =
  let n = String.length s in
  while
    !pos < n
    && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    incr pos
  done

let expect s pos c =
  if !pos >= String.length s || s.[!pos] <> c then
    fail !pos (Printf.sprintf "expected %C" c);
  incr pos

let parse_literal s pos word value =
  let m = String.length word in
  if !pos + m <= String.length s && String.sub s !pos m = word then begin
    pos := !pos + m;
    value
  end
  else fail !pos (Printf.sprintf "expected %s" word)

let parse_string s pos =
  expect s pos '"';
  let b = Buffer.create 16 in
  let n = String.length s in
  let rec go () =
    if !pos >= n then fail !pos "unterminated string"
    else
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then fail !pos "unterminated escape";
          (match s.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 5 >= n then fail !pos "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s (!pos + 2) 4) with
                | Some c -> c
                | None -> fail !pos "bad \\u escape"
              in
              (* Enough Unicode for our own files: BMP code points as
                 UTF-8, no surrogate-pair handling. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
  in
  go ();
  Buffer.contents b

let parse_number s pos =
  let start = !pos in
  let n = String.length s in
  while
    !pos < n
    && match s.[!pos] with
       | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
       | _ -> false
  do
    incr pos
  done;
  match float_of_string_opt (String.sub s start (!pos - start)) with
  | Some f -> f
  | None -> fail start "bad number"

let rec parse_value s pos =
  skip_ws s pos;
  if !pos >= String.length s then fail !pos "unexpected end of input"
  else
    match s.[!pos] with
    | '{' -> parse_obj s pos
    | '[' -> parse_arr s pos
    | '"' -> Str (parse_string s pos)
    | 't' -> parse_literal s pos "true" (Bool true)
    | 'f' -> parse_literal s pos "false" (Bool false)
    | 'n' -> parse_literal s pos "null" Null
    | '-' | '0' .. '9' -> Num (parse_number s pos)
    | c -> fail !pos (Printf.sprintf "unexpected %C" c)

and parse_obj s pos =
  expect s pos '{';
  skip_ws s pos;
  if !pos < String.length s && s.[!pos] = '}' then begin
    incr pos;
    Obj []
  end
  else
    let rec members acc =
      skip_ws s pos;
      let key = parse_string s pos in
      skip_ws s pos;
      expect s pos ':';
      let v = parse_value s pos in
      skip_ws s pos;
      if !pos < String.length s && s.[!pos] = ',' then begin
        incr pos;
        members ((key, v) :: acc)
      end
      else begin
        expect s pos '}';
        Obj (List.rev ((key, v) :: acc))
      end
    in
    members []

and parse_arr s pos =
  expect s pos '[';
  skip_ws s pos;
  if !pos < String.length s && s.[!pos] = ']' then begin
    incr pos;
    Arr []
  end
  else
    let rec elements acc =
      let v = parse_value s pos in
      skip_ws s pos;
      if !pos < String.length s && s.[!pos] = ',' then begin
        incr pos;
        elements (v :: acc)
      end
      else begin
        expect s pos ']';
        Arr (List.rev (v :: acc))
      end
    in
    elements []

let parse s =
  let pos = ref 0 in
  match parse_value s pos with
  | v ->
      skip_ws s pos;
      if !pos <> String.length s then
        Error (Printf.sprintf "at byte %d: trailing garbage" !pos)
      else Ok v
  | exception Fail msg -> Error msg

let of_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      parse s

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_member key v = Option.bind (member key v) to_float
let int_member key v = Option.bind (member key v) to_int
let string_member key v = Option.bind (member key v) to_string

let list_member key v =
  match Option.bind (member key v) to_list with Some l -> l | None -> []
