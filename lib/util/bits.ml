(* The loop lives at toplevel so [width_for] — called for every label bit
   the byte accounting charges, i.e. per hop — allocates no closure (L7). *)
let rec width_loop d w cap = if cap >= d then w else width_loop d (w + 1) (cap * 2)
let width_for d = if d <= 1 then 0 else width_loop d 1 2

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable bits : int }

  let create () = { buf = Bytes.make 8 '\000'; bits = 0 }

  let ensure t needed_bits =
    let needed_bytes = (t.bits + needed_bits + 7) / 8 in
    if needed_bytes > Bytes.length t.buf then begin
      let buf = Bytes.make (max needed_bytes (2 * Bytes.length t.buf)) '\000' in
      Bytes.blit t.buf 0 buf 0 (Bytes.length t.buf);
      t.buf <- buf
    end

  let put_bit t b =
    let byte = t.bits / 8 and off = t.bits mod 8 in
    if b <> 0 then begin
      let cur = Char.code (Bytes.get t.buf byte) in
      Bytes.set t.buf byte (Char.chr (cur lor (0x80 lsr off)))
    end;
    t.bits <- t.bits + 1

  let put t v ~width =
    if width < 0 || width > 30 then invalid_arg "Bits.Writer.put: width";
    if v < 0 || (width < 30 && v lsr width <> 0) then
      invalid_arg "Bits.Writer.put: value out of range";
    ensure t width;
    for i = width - 1 downto 0 do
      put_bit t ((v lsr i) land 1)
    done

  let bit_length t = t.bits
  let byte_length t = (t.bits + 7) / 8
  let to_bytes t = Bytes.sub t.buf 0 (byte_length t)
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let remaining_bits t = (8 * Bytes.length t.data) - t.pos

  let get t ~width =
    if width < 0 || width > 30 then invalid_arg "Bits.Reader.get: width";
    if remaining_bits t < width then invalid_arg "Bits.Reader.get: underflow";
    let v = ref 0 in
    for _ = 1 to width do
      let byte = t.pos / 8 and off = t.pos mod 8 in
      let bit = (Char.code (Bytes.get t.data byte) lsr (7 - off)) land 1 in
      v := (!v lsl 1) lor bit;
      t.pos <- t.pos + 1
    done;
    !v
end
