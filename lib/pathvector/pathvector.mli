(** Distributed path-vector routing over the event simulator.

    §4.2 of the paper: "Nodes learn shortest paths to landmarks and
    vicinities via a single, standard path vector routing protocol. When
    learning paths, a route announcement is accepted into v's routing table
    if and only if the route's destination is a landmark or one of the
    Θ(sqrt(n log n)) closest nodes currently advertised to v."

    The same engine, with different acceptance policies, yields:
    - plain path vector (the paper's baseline, Fig 8),
    - NDDisco's landmark + vicinity tables,
    - S4's landmark + cluster tables (acceptance bounded by the origin's
      distance to its landmark, carried in the announcement).

    Messaging cost is measured by the simulator: one route announcement to
    one neighbor = one message, as in Fig 8. *)

type mode =
  | Full  (** accept a best route for every destination *)
  | Landmarks_and_k_closest of { landmarks : bool array; k : int }
      (** NDDisco: keep landmarks plus the [k] closest destinations
          currently advertised. *)
  | Landmarks_and_radius of { landmarks : bool array; radius : float array }
      (** S4: keep landmarks plus destinations [w] with
          [d(v,w) < radius.(w)] where [radius.(w) = d(w, l_w)]. *)

type route = { dist : float; path : int list  (** self .. dest, inclusive *) }

type result = {
  tables : (int, route) Hashtbl.t array;  (** per node: dest -> route *)
  total_messages : int;
  messages_by_node : int array;
  converged_at : float;
  events : int;
  adj_rib_entries : int array;
      (** per node: control-plane entries a non-forgetful implementation
          would hold — every (neighbor, destination) pair for which an
          announcement was retained, the Θ(δ·entries) term of Theorem 2.
          The data plane itself is forgetful (only best routes are kept);
          this counter measures what forgetting saves. *)
}

val run :
  ?telemetry:Disco_util.Telemetry.t ->
  graph:Disco_graph.Graph.t ->
  mode:mode ->
  unit ->
  result
(** Run to convergence (event queue drains) and return the tables. When
    [telemetry] is given, every simulator message also counts there. *)

val table_sizes : result -> int array
(** Routing-table entry count per node, for state comparisons. *)
