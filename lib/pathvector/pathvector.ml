module Graph = Disco_graph.Graph
module Sim = Disco_sim.Sim

type mode =
  | Full
  | Landmarks_and_k_closest of { landmarks : bool array; k : int }
  | Landmarks_and_radius of { landmarks : bool array; radius : float array }

type route = { dist : float; path : int list }

type announcement = { a_dest : int; a_dist : float; a_path : int list }

type result = {
  tables : (int, route) Hashtbl.t array;
  total_messages : int;
  messages_by_node : int array;
  converged_at : float;
  events : int;
  adj_rib_entries : int array;
}

let is_landmark mode v =
  match mode with
  | Full -> false
  | Landmarks_and_k_closest { landmarks; _ } | Landmarks_and_radius { landmarks; _ }
    -> landmarks.(v)

(* Whether [node] may keep a route of length [dist] to non-landmark [dest];
   returns the destination to evict to make room, if any. *)
let admission mode table ~node ~dest ~dist =
  match mode with
  | Full -> `Accept_no_evict
  | Landmarks_and_radius { radius; _ } ->
      if dist < radius.(dest) then `Accept_no_evict else `Reject
  | Landmarks_and_k_closest { landmarks; k } ->
      (* Count current non-landmark entries (the self entry is bookkeeping,
         not vicinity state); find the farthest for possible eviction. *)
      let count = ref 0 and worst = ref (-1) and worst_dist = ref neg_infinity in
      Hashtbl.iter
        (fun d (r : route) ->
          if (not landmarks.(d)) && d <> dest && d <> node then begin
            incr count;
            if r.dist > !worst_dist then begin
              worst_dist := r.dist;
              worst := d
            end
          end)
        table;
      if Hashtbl.mem table dest then `Accept_no_evict
      else if !count < k then `Accept_no_evict
      else if dist < !worst_dist then `Accept_evict !worst
      else `Reject

let run ?telemetry ~graph ~mode () =
  let n = Graph.n graph in
  let sim = Sim.create ?telemetry ~graph () in
  let tables = Array.init n (fun _ -> Hashtbl.create 64) in
  (* (neighbor, dest) pairs for which an announcement would sit in a
     non-forgetful adjacency RIB. *)
  let adj_rib = Array.init n (fun _ -> Hashtbl.create 64) in
  let announce node dest =
    match Hashtbl.find_opt tables.(node) dest with
    | None -> ()
    | Some r ->
        Graph.iter_neighbors graph node (fun nbr _ ->
            Sim.send sim ~src:node ~dst:nbr
              { a_dest = dest; a_dist = r.dist; a_path = r.path })
  in
  let handler node ~src { a_dest; a_dist; a_path } =
    if a_dest <> node && not (List.mem node a_path) then begin
      Hashtbl.replace adj_rib.(node) (src, a_dest) ();
      match Graph.edge_weight graph node src with
      | None -> ()
      | Some w ->
          let dist = a_dist +. w in
          let path = node :: a_path in
          let table = tables.(node) in
          let better =
            match Hashtbl.find_opt table a_dest with
            | Some r -> dist < r.dist
            | None -> true
          in
          if better then
            if is_landmark mode a_dest then begin
              Hashtbl.replace table a_dest { dist; path };
              announce node a_dest
            end
            else begin
              match admission mode table ~node ~dest:a_dest ~dist with
              | `Reject -> ()
              | `Accept_no_evict ->
                  Hashtbl.replace table a_dest { dist; path };
                  announce node a_dest
              | `Accept_evict victim ->
                  Hashtbl.remove table victim;
                  Hashtbl.replace table a_dest { dist; path };
                  announce node a_dest
            end
    end
  in
  Sim.set_handler sim handler;
  (* Every node originates itself at t=0. *)
  for v = 0 to n - 1 do
    Hashtbl.replace tables.(v) v { dist = 0.0; path = [ v ] };
    Sim.schedule sim ~delay:0.0 (fun () -> announce v v)
  done;
  Sim.run sim;
  (* Self-entries are not routing state; drop them before reporting. *)
  Array.iteri (fun v table -> Hashtbl.remove table v) tables;
  {
    tables;
    total_messages = Sim.messages_sent sim;
    messages_by_node = Sim.messages_by_node sim;
    converged_at = Sim.time sim;
    events = Sim.events_processed sim;
    adj_rib_entries = Array.map Hashtbl.length adj_rib;
  }

let table_sizes r = Array.map Hashtbl.length r.tables
