(** Shortest-path machinery: full, truncated, and multi-source Dijkstra.

    Everything the protocols derive their tables from: vicinities are
    truncated runs ({!k_closest}), S4 clusters are radius-bounded runs
    ({!within_radius}), landmark trees come from {!multi_source}, and
    stretch is measured against {!sssp}.

    A {!workspace} holds the scratch arrays (distances, flags, a heap) so
    running Dijkstra from all n sources costs O(settled) resets per run
    instead of O(n). Workspaces are single-threaded; create one per domain. *)

type workspace

val make_workspace : Graph.t -> workspace

type sssp = { dist : float array; parent : int array }
(** Full single-source result: [dist.(v) = infinity] and [parent.(v) = -1]
    when [v] is unreachable; [parent.(src) = -1]. *)

val sssp : ?ws:workspace -> ?until:int -> Graph.t -> int -> sssp
(** [sssp ?until g src] runs to exhaustion by default; with [~until:t] it
    halts as soon as [t] settles (its [dist]/[parent] entries are final),
    leaving later nodes at [infinity]/[-1]. *)

val distance : ?ws:workspace -> Graph.t -> int -> int -> float
(** Single-pair distance with early termination; [infinity] if unreachable. *)

type truncated = {
  source : int;
  order : int array;  (** settled nodes in settle order; [order.(0) = source] *)
  tdist : float array;  (** parallel to [order] *)
  tparent : int array;
      (** parallel to [order]: predecessor node id on the shortest path from
          [source]; [-1] for the source itself. Predecessors always appear
          earlier in [order]. *)
}

val k_closest : ?ws:workspace -> Graph.t -> int -> int -> truncated
(** [k_closest g src k] settles the [min k n] nodes closest to [src]
    (including [src]). Distance ties at the boundary are broken by
    settle order, deterministically. *)

val within_radius : ?ws:workspace -> Graph.t -> int -> float -> truncated
(** [within_radius g src r] settles every node at distance < [r] — the
    strict inequality matches S4's cluster definition ("closer to v than
    to their closest landmark"). *)

type multi = {
  mdist : float array;  (** distance to the nearest source *)
  mparent : int array;  (** shortest-path forest predecessor; -1 at roots *)
  msource : int array;  (** which source is nearest; -1 if unreachable *)
}

val multi_source : Graph.t -> int array -> multi
(** Simultaneous Dijkstra from all sources: per node, the distance to and
    identity of its nearest source (ties broken by heap settle order), and
    the forest for path extraction. Used for landmark assignment l_v. *)

val path_of_parents : parent:(int -> int) -> src:int -> dst:int -> int list
(** Reconstruct [src; ...; dst] by walking [parent] back from [dst].
    @raise Invalid_argument if the walk does not reach [src] within n
    steps (caller passes a closure that knows its own bounds). *)

val truncated_lookup : truncated -> (int -> (float * int) option)
(** Build an O(1) lookup from node id to (distance, predecessor) over a
    truncated run's settled set. *)

val path_length : Graph.t -> int list -> float
(** Total weight of a node path.
    @raise Invalid_argument on a non-path (missing edge). *)
