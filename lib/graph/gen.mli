(** Topology generators for the evaluation (§5.1).

    The paper evaluates on (1) an AS-level Internet map, (2) a router-level
    Internet map, (3) G(n,m) random graphs with average degree 8, and
    (4) geometric random graphs with average degree 8 (latency-weighted).
    The two CAIDA maps are proprietary snapshots, so we substitute
    preferential-attachment synthetics with matching heavy-tailed degree
    distributions (see DESIGN.md §2); the other two families are generated
    exactly as described.

    All generators return connected graphs (disconnected leftovers are
    stitched with minimal extra edges) and are deterministic in the given
    RNG. *)

val gnm : rng:Disco_util.Rng.t -> n:int -> m:int -> Graph.t
(** Uniform random graph with [n] nodes and [m] distinct edges, all of
    weight 1. The paper uses [m = 4n] (average degree 8). *)

val geometric :
  rng:Disco_util.Rng.t -> n:int -> avg_degree:float -> Graph.t
(** Random geometric graph: nodes uniform in the unit square, an edge
    between every pair within the radius that yields [avg_degree] in
    expectation, weighted by Euclidean distance (link latency). *)

val ring : n:int -> Graph.t
(** Cycle with unit weights; the worst case for explicit-route length. *)

val grid : rows:int -> cols:int -> Graph.t
(** Unit-weight 2-D mesh. *)

val star_of_stars : branch:int -> Graph.t
(** The S4 worst case of footnote 6: a root with [branch] children at
    distance 1, each child with [branch] grandchildren at distance 2.
    S4's cluster state at the root is Θ(n); Disco's stays bounded. *)

val power_law :
  rng:Disco_util.Rng.t -> n:int -> attach:int -> Graph.t
(** Barabási–Albert preferential attachment: each arriving node connects
    to [attach] existing nodes chosen proportionally to degree. Unit
    weights. *)

val internet_as : rng:Disco_util.Rng.t -> n:int -> Graph.t
(** AS-level Internet stand-in: preferential attachment with [attach = 2]
    (sparse, very heavy-tailed core — matches AS-graph degree shape). *)

val internet_router : rng:Disco_util.Rng.t -> n:int -> Graph.t
(** Router-level Internet stand-in: preferential attachment with
    [attach = 3] plus 10% uniform-random extra edges (flatter tail and
    higher local meshing, as in router maps). *)

val glp :
  ?m:int -> ?p:float -> ?beta:float -> rng:Disco_util.Rng.t -> n:int ->
  unit -> Graph.t
(** Generalized linear preference (Bu & Towsley 2002): attachment
    probability ∝ (degree − [beta]); with probability [p] a step adds [m]
    links between existing nodes, else a new node with [m] links. Defaults
    ([m = 1], [p = 0.4695], [beta = 0.6447]) are the paper's AS-graph fit;
    the linear edge count is what the million-node scaling sweep relies
    on. Unit weights, stitched connected. *)

type kind = As_level | Router_level | Gnm | Geometric | Glp

val by_kind : rng:Disco_util.Rng.t -> kind -> n:int -> Graph.t
(** Dispatch used by the experiment harness; G(n,m) and geometric use
    average degree 8 as in the paper. *)

val kind_name : kind -> string

val all_kinds : kind list
(** Every generator family, in a fixed order (CLIs and sweeps iterate it). *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_name}. *)
