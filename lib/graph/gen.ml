module Rng = Disco_util.Rng
module Union_find = Disco_util.Union_find

(* Stitch a possibly-disconnected builder into one component by linking a
   representative of each extra component to a node of the main one. *)
let connect_components b n rng weight_fn =
  let uf = Union_find.create n in
  (* Builder has no iteration API; track unions as edges are added instead.
     We rebuild connectivity by probing all pairs via the built graph. *)
  let g = Graph.Builder.build b in
  for u = 0 to n - 1 do
    Graph.iter_neighbors g u (fun v _ -> ignore (Union_find.union uf u v : bool))
  done;
  if Union_find.count uf > 1 then begin
    let reps = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      let r = Union_find.find uf v in
      if not (Hashtbl.mem reps r) then Hashtbl.add reps r v
    done;
    let members = Hashtbl.fold (fun _ v acc -> v :: acc) reps [] in
    match members with
    | [] | [ _ ] -> ()
    | anchor :: rest ->
        List.iter
          (fun v ->
            let u =
              (* Attach to a random node of the anchor's component when
                 possible; the anchor itself is always valid. *)
              let cand = Rng.int rng n in
              if Union_find.same uf cand anchor && cand <> v then cand
              else anchor
            in
            Graph.Builder.add_edge b u v (weight_fn u v);
            ignore (Union_find.union uf u v : bool))
          rest
  end

let gnm ~rng ~n ~m =
  let b = Graph.Builder.create n in
  let added = ref 0 in
  let cap = n * (n - 1) / 2 in
  let target = min m cap in
  while !added < target do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.Builder.has_edge b u v) then begin
      Graph.Builder.add_edge b u v 1.0;
      incr added
    end
  done;
  connect_components b n rng (fun _ _ -> 1.0);
  Graph.Builder.build b

let geometric ~rng ~n ~avg_degree =
  (* Expected degree = n * pi * r^2 (torus-free approximation), so pick
     r = sqrt (avg_degree / (pi * n)). Bucket the unit square into cells of
     side >= r so neighbor search is O(1) per node. *)
  let r = sqrt (avg_degree /. (Float.pi *. float_of_int n)) in
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let cells = max 1 (int_of_float (1.0 /. r)) in
  let cell_of x = min (cells - 1) (int_of_float (x *. float_of_int cells)) in
  let grid = Array.make (cells * cells) [] in
  for v = 0 to n - 1 do
    let c = (cell_of xs.(v) * cells) + cell_of ys.(v) in
    grid.(c) <- v :: grid.(c)
  done;
  let b = Graph.Builder.create n in
  let try_link u v =
    if u < v then begin
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      if d <= r && d > 0.0 then Graph.Builder.add_edge b u v d
    end
  in
  for cx = 0 to cells - 1 do
    for cy = 0 to cells - 1 do
      let here = grid.((cx * cells) + cy) in
      List.iter
        (fun u ->
          for dx = -1 to 1 do
            for dy = -1 to 1 do
              let nx = cx + dx and ny = cy + dy in
              if nx >= 0 && nx < cells && ny >= 0 && ny < cells then
                List.iter (fun v -> try_link u v) grid.((nx * cells) + ny)
            done
          done)
        here
    done
  done;
  let euclid u v =
    let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
    max 1e-9 (sqrt ((dx *. dx) +. (dy *. dy)))
  in
  connect_components b n rng euclid;
  Graph.Builder.build b

let ring ~n =
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    Graph.Builder.add_edge b v ((v + 1) mod n) 1.0
  done;
  Graph.Builder.build b

let grid ~rows ~cols =
  let b = Graph.Builder.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.Builder.add_edge b (id r c) (id r (c + 1)) 1.0;
      if r + 1 < rows then Graph.Builder.add_edge b (id r c) (id (r + 1) c) 1.0
    done
  done;
  Graph.Builder.build b

let star_of_stars ~branch =
  let n = 1 + branch + (branch * branch) in
  let b = Graph.Builder.create n in
  for i = 0 to branch - 1 do
    let child = 1 + i in
    Graph.Builder.add_edge b 0 child 1.0;
    for j = 0 to branch - 1 do
      let grandchild = 1 + branch + (i * branch) + j in
      Graph.Builder.add_edge b child grandchild 2.0
    done
  done;
  Graph.Builder.build b

let power_law ~rng ~n ~attach =
  if n <= attach then invalid_arg "Gen.power_law: n too small";
  let b = Graph.Builder.create n in
  (* Repeated-endpoint list: picking a uniform element is degree-biased. *)
  let store = ref (Array.make (4 * n * attach) 0) in
  let len = ref 0 in
  let push v =
    if !len >= Array.length !store then begin
      let bigger = Array.make (2 * Array.length !store) 0 in
      Array.blit !store 0 bigger 0 !len;
      store := bigger
    end;
    !store.(!len) <- v;
    incr len
  in
  (* Seed clique over the first attach+1 nodes. *)
  for u = 0 to attach do
    for v = u + 1 to attach do
      Graph.Builder.add_edge b u v 1.0;
      push u;
      push v
    done
  done;
  for v = attach + 1 to n - 1 do
    let chosen = Hashtbl.create attach in
    let attempts = ref 0 in
    while Hashtbl.length chosen < attach && !attempts < 50 * attach do
      incr attempts;
      let u = !store.(Rng.int rng !len) in
      if u <> v && not (Hashtbl.mem chosen u) then Hashtbl.add chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        Graph.Builder.add_edge b v u 1.0;
        push u;
        push v)
      chosen
  done;
  connect_components b n rng (fun _ _ -> 1.0);
  Graph.Builder.build b

(* GLP — generalized linear preference (Bu & Towsley, INFOCOM 2002).
   Attachment probability ∝ (d_v − β): the repeated-endpoint store makes a
   uniform draw ∝ d_v, and thinning by the accept probability 1 − β/d_v
   turns that into GLP's shifted preference without per-node weights. With
   probability [p] a step adds [m] links between existing nodes; otherwise
   it adds a new node with [m] links. The defaults are the paper's fit to
   AS-graph degree laws; [m = 1] keeps the edge count linear in n, which
   is what lets the scaling sweep grow this to a million nodes. *)
let glp ?(m = 1) ?(p = 0.4695) ?(beta = 0.6447) ~rng ~n () =
  if n < 2 then invalid_arg "Gen.glp: n < 2";
  if beta >= 1.0 then invalid_arg "Gen.glp: beta must be < 1";
  let b = Graph.Builder.create n in
  let degree = Array.make n 0 in
  let store = ref (Array.make (max 16 (8 * m)) 0) in
  let len = ref 0 in
  let push v =
    if !len >= Array.length !store then begin
      let bigger = Array.make (2 * Array.length !store) 0 in
      Array.blit !store 0 bigger 0 !len;
      store := bigger
    end;
    !store.(!len) <- v;
    incr len
  in
  let add_edge u v =
    Graph.Builder.add_edge b u v 1.0;
    degree.(u) <- degree.(u) + 1;
    degree.(v) <- degree.(v) + 1;
    push u;
    push v
  in
  let draw () =
    (* Expected attempts <= 1/(1 − β); the cap only guards degenerate
       RNG streaks and falls back to plain degree bias. *)
    let rec go attempts =
      let u = !store.(Rng.int rng !len) in
      if attempts > 200 then u
      else if Rng.float rng 1.0 < 1.0 -. (beta /. float_of_int degree.(u))
      then u
      else go (attempts + 1)
    in
    go 0
  in
  let seed = min n (m + 1) in
  for v = 0 to seed - 2 do
    add_edge v (v + 1)
  done;
  let next = ref seed in
  while !next < n do
    if Rng.float rng 1.0 < p then
      (* m new links between existing nodes, both ends preferential. *)
      for _ = 1 to m do
        let u = draw () and v = draw () in
        if u <> v && not (Graph.Builder.has_edge b u v) then add_edge u v
      done
    else begin
      let v = !next in
      incr next;
      for _ = 1 to m do
        let u = draw () in
        if not (Graph.Builder.has_edge b u v) then add_edge u v
      done
    end
  done;
  connect_components b n rng (fun _ _ -> 1.0);
  Graph.Builder.build b

let internet_as ~rng ~n = power_law ~rng ~n ~attach:2

let internet_router ~rng ~n =
  let g0 = power_law ~rng ~n ~attach:3 in
  (* Add ~10% extra uniform edges for router-level meshing. *)
  let b = Graph.Builder.create n in
  List.iter (fun (u, v, w) -> Graph.Builder.add_edge b u v w) (Graph.edges g0);
  let extra = n / 10 in
  let added = ref 0 in
  while !added < extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.Builder.has_edge b u v) then begin
      Graph.Builder.add_edge b u v 1.0;
      incr added
    end
  done;
  Graph.Builder.build b

type kind = As_level | Router_level | Gnm | Geometric | Glp

let by_kind ~rng kind ~n =
  match kind with
  | As_level -> internet_as ~rng ~n
  | Router_level -> internet_router ~rng ~n
  | Gnm -> gnm ~rng ~n ~m:(4 * n)
  | Geometric -> geometric ~rng ~n ~avg_degree:8.0
  | Glp -> glp ~rng ~n ()

let kind_name = function
  | As_level -> "as-level"
  | Router_level -> "router-level"
  | Gnm -> "gnm"
  | Geometric -> "geometric"
  | Glp -> "glp"

let all_kinds = [ As_level; Router_level; Gnm; Geometric; Glp ]

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_name k) s) all_kinds
