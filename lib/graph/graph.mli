(** Weighted undirected graphs in compressed sparse row form.

    The network substrate all protocols run over (§4.1 of the paper: an
    undirected connected network with arbitrary structure and link
    distances). Nodes are dense ints [0 .. n-1]; an edge carries a strictly
    positive weight (link latency/cost). Graphs are built once with
    {!Builder} and then immutable, so routing-table construction can share
    them freely.

    Neighbor lists are sorted by node id. The position of a neighbor within
    the list is the {e forwarding label} used by compact source routes
    (§4.2): a packet at a degree-[d] node selects its next hop with
    [ceil(log2 d)] bits. *)

type t

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  (** [create n] starts a graph with [n] nodes and no edges. *)

  val add_edge : t -> int -> int -> float -> unit
  (** [add_edge b u v w] adds an undirected edge. Self-loops are rejected;
      a duplicate edge keeps the smaller weight. Weight must be > 0. *)

  val has_edge : t -> int -> int -> bool
  val build : t -> graph
end

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> (int * float) list
(** Neighbors with edge weights, ascending by node id. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** Allocation-free iteration over [u]'s neighbors. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> float -> 'a) -> 'a

val neighbor_at : t -> int -> int -> int
(** [neighbor_at g u i] is the node reached by forwarding label [i] at
    [u] — {!nth_neighbor} without the weight, the bounds check or the
    tuple. The fast path's label decoder runs this per hop, so it is
    allocation-free (lint L7); the caller owns the range check. *)

val nth_neighbor : t -> int -> int -> int * float
(** [nth_neighbor g u i] is the [i]-th neighbor (the node reached by
    forwarding label [i] at [u]).
    @raise Invalid_argument if [i >= degree g u]. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] iff [u]–[v] is an edge (binary search; O(log d)).
    Allocation-free, unlike {!edge_weight}: the hop loop's link check
    must not touch the minor heap (lint L7). *)

val neighbor_rank : t -> int -> int -> int option
(** [neighbor_rank g u v] is the forwarding label at [u] that leads to [v],
    if [u]–[v] is an edge (binary search; O(log d)). *)

val edge_weight : t -> int -> int -> float option

val edge_index : t -> int -> int -> int option
(** Dense id in [0, 2m) of the directed arc [u -> v]; arcs [u->v] and
    [v->u] have distinct ids. Used by congestion counters. *)

val arc_count : t -> int
(** [2 * m g]. *)

val arc_endpoints : t -> int -> int * int
(** Inverse of {!edge_index}: [(u, v)] for a directed arc id. *)

val edges : t -> (int * int * float) list
(** Each undirected edge once, with [u < v]. *)

val is_connected : t -> bool

val total_weight : t -> float

val max_degree : t -> int
