type t = {
  n : int;
  m : int;
  row : int array; (* length n+1: CSR row offsets into col/wgt *)
  col : int array; (* length 2m: neighbor ids, sorted within each row *)
  wgt : float array; (* length 2m: edge weights, parallel to col *)
}

module Builder = struct
  type t = { nodes : int; edges : (int * int, float) Hashtbl.t }

  let create nodes =
    if nodes <= 0 then invalid_arg "Graph.Builder.create: need n > 0";
    { nodes; edges = Hashtbl.create (4 * nodes) }

  let key u v = if u < v then (u, v) else (v, u)

  let add_edge b u v w =
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if u < 0 || v < 0 || u >= b.nodes || v >= b.nodes then
      invalid_arg "Graph.Builder.add_edge: node out of range";
    if not (w > 0.0) then invalid_arg "Graph.Builder.add_edge: weight <= 0";
    let k = key u v in
    match Hashtbl.find_opt b.edges k with
    | Some w0 -> if w < w0 then Hashtbl.replace b.edges k w
    | None -> Hashtbl.add b.edges k w

  let has_edge b u v = Hashtbl.mem b.edges (key u v)

  let build b =
    let n = b.nodes in
    let deg = Array.make n 0 in
    Hashtbl.iter
      (fun (u, v) _ ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      b.edges;
    let row = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      row.(i + 1) <- row.(i) + deg.(i)
    done;
    let total = row.(n) in
    let col = Array.make (max 1 total) 0 in
    let wgt = Array.make (max 1 total) 0.0 in
    let fill = Array.copy row in
    Hashtbl.iter
      (fun (u, v) w ->
        col.(fill.(u)) <- v;
        wgt.(fill.(u)) <- w;
        fill.(u) <- fill.(u) + 1;
        col.(fill.(v)) <- u;
        wgt.(fill.(v)) <- w;
        fill.(v) <- fill.(v) + 1)
      b.edges;
    (* Sort each row by neighbor id so forwarding labels are canonical. *)
    for u = 0 to n - 1 do
      let lo = row.(u) and hi = row.(u + 1) in
      let idx = Array.init (hi - lo) (fun i -> lo + i) in
      Array.sort (fun a b -> compare col.(a) col.(b)) idx;
      let c = Array.map (fun i -> col.(i)) idx in
      let w = Array.map (fun i -> wgt.(i)) idx in
      Array.blit c 0 col lo (hi - lo);
      Array.blit w 0 wgt lo (hi - lo)
    done;
    { n; m = Hashtbl.length b.edges; row; col; wgt }
end

let n t = t.n
let m t = t.m
let degree t u = t.row.(u + 1) - t.row.(u)

let iter_neighbors t u f =
  for i = t.row.(u) to t.row.(u + 1) - 1 do
    f t.col.(i) t.wgt.(i)
  done

let neighbors t u =
  List.init (degree t u) (fun i ->
      let j = t.row.(u) + i in
      (t.col.(j), t.wgt.(j)))

let fold_neighbors t u ~init ~f =
  let acc = ref init in
  iter_neighbors t u (fun v w -> acc := f !acc v w);
  !acc

(* The fast-path variant of [nth_neighbor]: no bounds check, no weight,
   no tuple — the compiled walkers decode forwarding labels with this on
   every hop, so it must stay off the minor heap (lint L7). *)
let neighbor_at t u i = t.col.(t.row.(u) + i)

let nth_neighbor t u i =
  if i < 0 || i >= degree t u then invalid_arg "Graph.nth_neighbor";
  let j = t.row.(u) + i in
  (t.col.(j), t.wgt.(j))

(* Binary search within u's sorted row for neighbor v; -1 when absent.
   Allocation-free (a recursive loop, no refs, no option) so the hop-loop
   membership check [has_edge] stays off the minor heap (lint L7). *)
let rec slot_between t v lo hi =
  if lo > hi then -1
  else
    let mid = (lo + hi) / 2 in
    let c = t.col.(mid) in
    if c = v then mid
    else if c < v then slot_between t v (mid + 1) hi
    else slot_between t v lo (mid - 1)

let slot_of t u v = slot_between t v t.row.(u) (t.row.(u + 1) - 1)

let has_edge t u v = slot_of t u v >= 0

let find_slot t u v =
  match slot_of t u v with -1 -> None | slot -> Some slot

let neighbor_rank t u v =
  Option.map (fun slot -> slot - t.row.(u)) (find_slot t u v)

let edge_weight t u v = Option.map (fun slot -> t.wgt.(slot)) (find_slot t u v)
let edge_index t u v = find_slot t u v
let arc_count t = 2 * t.m

let arc_endpoints t idx =
  if idx < 0 || idx >= t.row.(t.n) then invalid_arg "Graph.arc_endpoints";
  (* Binary search in row offsets for the source node. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.row.(mid) <= idx then lo := mid else hi := mid - 1
  done;
  (!lo, t.col.(idx))

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for i = t.row.(u + 1) - 1 downto t.row.(u) do
      let v = t.col.(i) in
      if u < v then acc := (u, v, t.wgt.(i)) :: !acc
    done
  done;
  !acc

let is_connected t =
  let seen = Array.make t.n false in
  let stack = ref [ 0 ] in
  seen.(0) <- true;
  let count = ref 1 in
  let rec loop () =
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        iter_neighbors t u (fun v _ ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr count;
              stack := v :: !stack
            end);
        loop ()
  in
  loop ();
  !count = t.n

let total_weight t =
  List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 (edges t)

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best
