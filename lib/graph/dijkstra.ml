module Heap = Disco_util.Heap

type workspace = {
  g_n : int;
  dist : float array;
  par : int array;
  stamp : int array; (* which run last touched this slot *)
  settled : int array; (* which run settled this slot *)
  heap : int Heap.t;
  mutable run : int;
}

let make_workspace g =
  let n = Graph.n g in
  {
    g_n = n;
    dist = Array.make n infinity;
    par = Array.make n (-1);
    stamp = Array.make n (-1);
    settled = Array.make n (-1);
    heap = Heap.create ();
    run = 0;
  }

let fresh_run ws g =
  if ws.g_n <> Graph.n g then invalid_arg "Dijkstra: workspace/graph mismatch";
  ws.run <- ws.run + 1;
  Heap.clear ws.heap;
  ws.run

let get_ws ws g = match ws with Some w -> w | None -> make_workspace g

let touch ws run v d p =
  ws.dist.(v) <- d;
  ws.par.(v) <- p;
  ws.stamp.(v) <- run

let seen ws run v = ws.stamp.(v) = run
let is_settled ws run v = ws.settled.(v) = run

(* Core loop. [stop] inspects each newly settled node (with its settle
   index and distance) and returns true to halt. *)
let run_dijkstra ws g sources ~stop =
  let run = fresh_run ws g in
  Array.iter
    (fun s ->
      touch ws run s 0.0 (-1);
      Heap.push ws.heap 0.0 s)
    sources;
  let settle_count = ref 0 in
  let halted = ref false in
  while (not !halted) && not (Heap.is_empty ws.heap) do
    match Heap.pop ws.heap with
    | None -> halted := true
    | Some (d, u) ->
        if not (is_settled ws run u) then begin
          ws.settled.(u) <- run;
          let idx = !settle_count in
          incr settle_count;
          if stop u idx d then halted := true
          else
            Graph.iter_neighbors g u (fun v w ->
                let nd = d +. w in
                if (not (is_settled ws run v))
                   && ((not (seen ws run v)) || nd < ws.dist.(v))
                then begin
                  touch ws run v nd u;
                  Heap.push ws.heap nd v
                end)
        end
  done;
  run

type sssp = { dist : float array; parent : int array }

let sssp ?ws ?until g src =
  let ws = get_ws ws g in
  let stop =
    match until with
    | None -> fun _ _ _ -> false
    | Some t -> fun u _ _ -> u = t
  in
  let run = run_dijkstra ws g [| src |] ~stop in
  let n = Graph.n g in
  let dist = Array.make n infinity and parent = Array.make n (-1) in
  for v = 0 to n - 1 do
    if is_settled ws run v then begin
      dist.(v) <- ws.dist.(v);
      parent.(v) <- ws.par.(v)
    end
  done;
  { dist; parent }

let distance ?ws g src dst =
  if src = dst then 0.0
  else begin
    let ws = get_ws ws g in
    let result = ref infinity in
    let stop u _ d =
      if u = dst then begin
        result := d;
        true
      end
      else false
    in
    ignore (run_dijkstra ws g [| src |] ~stop : int);
    !result
  end

type truncated = {
  source : int;
  order : int array;
  tdist : float array;
  tparent : int array;
}

let collect_truncated ws g src ~stop =
  let order = ref [] and count = ref 0 in
  let stop' u idx d =
    if stop u idx d then true
    else begin
      order := u :: !order;
      incr count;
      false
    end
  in
  let run = run_dijkstra ws g [| src |] ~stop:stop' in
  let order = Array.of_list (List.rev !order) in
  let tdist = Array.map (fun v -> ws.dist.(v)) order in
  let tparent =
    Array.map (fun v -> if v = src then -1 else ws.par.(v)) order
  in
  ignore run;
  { source = src; order; tdist; tparent }

let k_closest ?ws g src k =
  let ws = get_ws ws g in
  let k = min k (Graph.n g) in
  collect_truncated ws g src ~stop:(fun _ idx _ -> idx >= k)

let within_radius ?ws g src r =
  let ws = get_ws ws g in
  collect_truncated ws g src ~stop:(fun _ _ d -> d >= r)

type multi = { mdist : float array; mparent : int array; msource : int array }

let multi_source g sources =
  let ws = make_workspace g in
  let n = Graph.n g in
  let msource = Array.make n (-1) in
  (* Track the originating source through the forest: when a node settles,
     it inherits its parent's source label. *)
  let stop u _ _ =
    let p = ws.par.(u) in
    msource.(u) <- (if p = -1 then u else msource.(p));
    false
  in
  let run = run_dijkstra ws g sources ~stop in
  let mdist = Array.make n infinity and mparent = Array.make n (-1) in
  for v = 0 to n - 1 do
    if is_settled ws run v then begin
      mdist.(v) <- ws.dist.(v);
      mparent.(v) <- ws.par.(v)
    end
    else msource.(v) <- -1
  done;
  { mdist; mparent; msource }

let path_of_parents ~parent ~src ~dst =
  let rec walk v acc steps =
    if steps < 0 then invalid_arg "Dijkstra.path_of_parents: no path";
    if v = src then src :: acc else walk (parent v) (v :: acc) (steps - 1)
  in
  walk dst [] 1_000_000_000

let truncated_lookup t =
  let tbl = Hashtbl.create (2 * Array.length t.order) in
  Array.iteri
    (fun i v -> Hashtbl.replace tbl v (t.tdist.(i), t.tparent.(i)))
    t.order;
  fun v -> Hashtbl.find_opt tbl v

let path_length g path =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | u :: (v :: _ as rest) -> (
        match Graph.edge_weight g u v with
        | Some w -> go (acc +. w) rest
        | None -> invalid_arg "Dijkstra.path_length: not a path")
  in
  go 0.0 path
