(* Inline suppression for disco-lint.

   A comment of the form

     (* disco-lint: allow L2 *)
     (* disco-lint: allow L1 L5 seeding happens once at startup *)

   waives the listed rules on the comment's own line and on the line
   directly below it, so it works both as a trailing comment and as a
   standalone line above the flagged expression.  Rule ids are an upper-case
   letter followed by digits; anything after the id list is free-form
   justification text. *)

type t = (string * int, unit) Hashtbl.t

let marker = "disco-lint:"

let is_token_char c =
  (c >= 'A' && c <= 'Z')
  || (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || Char.equal c '_'

let is_rule_id s =
  String.length s >= 2
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

(* Index of [sub] in [s], if any. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i + 1)
  in
  go 0

(* Maximal runs of token characters, left to right. *)
let tokenize s =
  let out = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_token_char c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

let rec take_rule_ids = function
  | id :: rest when is_rule_id id -> id :: take_rule_ids rest
  | _ -> []

let scan source : t =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker with
      | None -> ()
      | Some at -> (
          let start = at + String.length marker in
          let rest = String.sub line start (String.length line - start) in
          match tokenize rest with
          | "allow" :: tokens ->
              List.iter
                (fun id ->
                  Hashtbl.replace tbl (id, lineno) ();
                  Hashtbl.replace tbl (id, lineno + 1) ())
                (take_rule_ids tokens)
          | _ -> ()))
    (String.split_on_char '\n' source);
  tbl

let allows (t : t) ~rule ~line = Hashtbl.mem t (rule, line)
