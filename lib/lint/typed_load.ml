(* Load the .cmt files dune emits under _build into typedtrees for the typed
   pass.  Everything here returns data (rule L4); the bin/ driver prints.

   dune hides compilation artifacts in per-library dot-directories
   (lib/core/.disco_core.objs/byte/...), so unlike the source walker in
   Driver this one descends into dot-directories. *)

type unit_info = {
  u_modname : string;  (* compilation unit, e.g. "Disco_core__Forwarding" *)
  u_source : string;  (* repo-relative source path, e.g. "lib/core/forwarding.ml" *)
  u_structure : Typedtree.structure;
}

let rec walk_cmts acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> walk_cmts acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* [root] may be a directory prefix ("lib") or an exact source file
   ("lib/core/dataplane.ml"); both compare against the normalized
   cmt_sourcefile recorded at compile time. *)
let under_root root src =
  let root =
    if String.length root > 0 && Char.equal root.[String.length root - 1] '/'
    then String.sub root 0 (String.length root - 1)
    else root
  in
  String.equal root src || Rules.has_prefix ~prefix:(root ^ "/") src

let load_one path =
  match Cmt_format.read_cmt path with
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src ->
          Some
            {
              u_modname = cmt.Cmt_format.cmt_modname;
              u_source = Driver.normalize_path src;
              u_structure = str;
            }
      | _ -> None)
  (* disco-lint: allow L3 read_cmt raises Sys_error, End_of_file, Cmi_format.Error or Failure on stale or foreign artifacts; any of them just means "not a unit we can analyze" *)
  | exception _ -> None

(* All implementation units under [build_dir] whose source lives under one
   of [roots].  Deduplicates by unit name (byte/native subdirs can both hold
   a cmt) and sorts for deterministic analysis order. *)
let load ~build_dir ~roots =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Error
      (Printf.sprintf
         "build directory %s does not exist (run `dune build @check` first)"
         build_dir)
  else
    let cmts = walk_cmts [] build_dir |> List.sort String.compare in
    let seen = Hashtbl.create 64 in
    let units =
      List.filter_map
        (fun p ->
          match load_one p with
          | Some u
            when (not (Hashtbl.mem seen u.u_modname))
                 && List.exists (fun r -> under_root r u.u_source) roots ->
              Hashtbl.add seen u.u_modname ();
              Some u
          | _ -> None)
        cmts
    in
    if units = [] then
      Error
        (Printf.sprintf "no .cmt files under %s for roots %s" build_dir
           (String.concat " " roots))
    else
      Ok
        (List.sort (fun a b -> String.compare a.u_modname b.u_modname) units)

(* Per-root emptiness, for the CLI's missing-path diagnostics. *)
let roots_without_units ~units roots =
  List.filter
    (fun r -> not (List.exists (fun u -> under_root r u.u_source) units))
    roots
