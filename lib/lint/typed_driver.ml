(* Orchestration for the typed pass: load .cmt units, build the call graph,
   apply the typed rules, then filter findings through the same inline
   waiver comments and severity machinery as the syntactic pass.

   Waivers are read from the source files the findings point into
   ([source_root]/[file]); a finding whose source cannot be read simply
   keeps its diagnostic (missing sources should be loud, not silent). *)

let waivers_cache = Hashtbl.create 16

let waivers_for ~source_root file =
  match Hashtbl.find_opt waivers_cache (source_root, file) with
  | Some w -> w
  | None ->
      let w =
        match Driver.read_file (Filename.concat source_root file) with
        | source -> Some (Waivers.scan source)
        | exception Sys_error _ -> None
      in
      Hashtbl.add waivers_cache (source_root, file) w;
      w

let diagnostic_of ~severity_overrides (f : Typed_rules.finding) =
  {
    Diagnostic.rule = f.Typed_rules.rule.Rules.id;
    severity = Driver.severity_of ~overrides:severity_overrides f.Typed_rules.rule;
    file = f.Typed_rules.f_pos.Callgraph.p_file;
    line = f.Typed_rules.f_pos.Callgraph.p_line;
    col = f.Typed_rules.f_pos.Callgraph.p_col;
    message = f.Typed_rules.message;
    hint = f.Typed_rules.rule.Rules.hint;
  }

let waived ~source_root (f : Typed_rules.finding) =
  match waivers_for ~source_root f.Typed_rules.f_pos.Callgraph.p_file with
  | None -> false
  | Some w ->
      Waivers.allows w
        ~rule:f.Typed_rules.rule.Rules.id
        ~line:f.Typed_rules.f_pos.Callgraph.p_line

(* Run the typed pass.  [roots] scope both which units are analyzed and
   which sources are linted; [check_manifest] should be true when the
   whole repo is analyzed (H0 is meaningless on a subtree). *)
let run ?(severity_overrides = []) ?(check_manifest = true) ~build_dir
    ~source_root ~roots () =
  match Typed_load.load ~build_dir ~roots with
  | Error e -> Error e
  | Ok units ->
      let cg = Callgraph.build units in
      let findings = Typed_rules.run ~check_manifest cg in
      let diagnostics =
        findings
        |> List.filter (fun f -> not (waived ~source_root f))
        |> List.map (diagnostic_of ~severity_overrides)
        |> List.sort Diagnostic.compare_by_position
      in
      Ok (units, Driver.summarize ~files:(List.length units) diagnostics)
