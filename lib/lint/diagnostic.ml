(* A single disco-lint finding, plus rendering to the two output formats.
   This module is pure formatting: all printing happens in bin/disco_lint.ml
   so the library itself obeys rule L4 (no stray output from libraries). *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let compare_by_position a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_human d =
  Printf.sprintf "%s:%d:%d: %s [%s] %s\n  hint: %s" d.file d.line d.col
    (severity_label d.severity) d.rule d.message d.hint

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","severity":"%s","message":"%s","hint":"%s"}|}
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (severity_label d.severity) (json_escape d.message) (json_escape d.hint)
