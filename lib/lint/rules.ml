(* The disco-lint rule catalogue and the Ast_iterator engine that applies it.

   Rules are purely syntactic (untyped Parsetree), which keeps the checker
   fast and dependency-free; where a rule would need types (e.g. "=" on
   non-immediate values) it uses a conservative structural heuristic and
   relies on the inline waiver for the rare false positive.

   Scoping is by repo-relative path with '/' separators, e.g.
   "lib/core/groups.ml"; each rule carries its own [applies] predicate so
   the harness/report layers keep their legitimate printf/clock uses. *)

open Parsetree

type t = {
  id : string;
  title : string;
  default_severity : Diagnostic.severity;
  rationale : string;
  hint : string;
  applies : string -> bool;
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_dirs dirs path = List.exists (fun d -> has_prefix ~prefix:d path) dirs

(* Files allowed to read the wall clock: the telemetry module that wraps it
   and the human-facing report layer. *)
let clock_allowlist = [ "lib/util/telemetry.ml"; "lib/experiments/report.ml" ]

let l1 =
  {
    id = "L1";
    title = "determinism";
    default_severity = Diagnostic.Error;
    rationale =
      "every experiment must be bit-reproducible under a seed; ambient \
       randomness (Stdlib.Random) and wall-clock reads silently break that";
    hint =
      "draw randomness from the seeded SplitMix64 Disco_util.Rng; read the \
       clock only via Disco_util.Telemetry.now_s (telemetry/report allowlist)";
    applies =
      (fun p ->
        in_dirs [ "lib/"; "bin/" ] p
        && not (List.exists (String.equal p) clock_allowlist));
  }

let l2 =
  {
    id = "L2";
    title = "hash-space discipline";
    default_severity = Diagnostic.Error;
    rationale =
      "flat-name ordering is unsigned 64-bit ring arithmetic; OCaml's \
       polymorphic compare/equality/hash order raw representations instead \
       and corrupt successor/owner decisions";
    hint =
      "use the typed comparators: Hash_space.compare_unsigned for ids, \
       Int.compare / Float.compare / String.equal for scalars";
    applies = in_dirs [ "lib/core/"; "lib/hashing/"; "lib/baselines/" ];
  }

let l3 =
  {
    id = "L3";
    title = "no swallowed exceptions";
    default_severity = Diagnostic.Error;
    rationale =
      "a catch-all 'with _ ->' in protocol code turns corrupt state into a \
       silently wrong route instead of a crash the harness can see";
    hint = "match the specific exception, or bind it and re-raise/log";
    applies = in_dirs [ "lib/"; "bin/"; "bench/" ];
  }

let l4 =
  {
    id = "L4";
    title = "no stray output";
    default_severity = Diagnostic.Error;
    rationale =
      "libraries must return data, not print it; stdout belongs to the \
       experiments/report layer and the drivers";
    hint =
      "return the value (or Printf.sprintf it) and let lib/experiments or \
       the bin/ driver print";
    applies =
      (fun p -> has_prefix ~prefix:"lib/" p && not (has_prefix ~prefix:"lib/experiments/" p));
  }

let l5 =
  {
    id = "L5";
    title = "no Obj.magic / untyped ignore";
    default_severity = Diagnostic.Error;
    rationale =
      "Obj.magic defeats the type system entirely, and a bare 'ignore (f x)' \
       hides a result (often a success flag) without recording what was \
       discarded";
    hint = "annotate the discard as 'ignore (f x : ty)' or bind the result";
    applies = in_dirs [ "lib/"; "bin/"; "bench/" ];
  }

(* The one module allowed to touch the concurrency primitives: everything
   else submits work through its task API. *)
let pool_allowlist = [ "lib/util/pool.ml" ]

let l6 =
  {
    id = "L6";
    title = "concurrency primitives only in the pool";
    default_severity = Diagnostic.Error;
    rationale =
      "the bit-reproducibility argument (DESIGN.md \xc2\xa75d) holds because every \
       domain, lock, and atomic in the tree lives behind Disco_util.Pool's \
       task API; a stray Domain.spawn or shared Mutex reintroduces \
       scheduling-dependent behaviour the argument cannot see";
    hint =
      "submit the work through Disco_util.Pool.run; lib/util/pool.ml is the \
       only module that may use Domain/Mutex/Condition/Atomic directly";
    applies =
      (fun p ->
        in_dirs [ "lib/"; "bin/"; "bench/" ] p
        && not (List.exists (String.equal p) pool_allowlist));
  }

let catalogue = [ l1; l2; l3; l4; l5; l6 ]

let find id = List.find_opt (fun r -> String.equal r.id id) catalogue

(* --- longident helpers ---------------------------------------------------- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let dotted lid = String.concat "." (flatten_lid lid)

let strip_stdlib name =
  if has_prefix ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let mem_name name names = List.exists (String.equal (strip_stdlib name)) names

let l1_banned name =
  has_prefix ~prefix:"Random." (strip_stdlib name)
  || mem_name name
       [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime" ]

let l2_banned name = mem_name name [ "compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

let l4_banned name =
  mem_name name
    [
      "print_endline";
      "print_string";
      "print_newline";
      "print_int";
      "print_float";
      "print_char";
      "print_bytes";
      "Printf.printf";
      "Format.printf";
      "Format.print_string";
      "Format.print_newline";
    ]

let l5_banned name = mem_name name [ "Obj.magic" ]

let l6_banned name =
  let n = strip_stdlib name in
  List.exists
    (fun prefix -> has_prefix ~prefix n)
    [ "Domain."; "Mutex."; "Condition."; "Atomic."; "Thread." ]

(* Operand that definitely holds a boxed/structured value, where polymorphic
   equality walks the representation: tuples, records, arrays, string
   literals, and constructors/variants carrying a payload. *)
let structural e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (q, _) -> catch_all q
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

(* --- the engine ----------------------------------------------------------- *)

type finding = { rule : t; loc : Location.t; message : string }

let check_structure ~active structure =
  let out = ref [] in
  let emit id loc message =
    match List.find_opt (fun r -> String.equal r.id id) active with
    | Some rule -> out := { rule; loc; message } :: !out
    | None -> ()
  in
  let is_ignore e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> String.equal (strip_stdlib (dotted txt)) "ignore"
    | _ -> false
  in
  let bare_call e =
    (* A function application whose result is not type-annotated; wrapping
       the discard as [ignore (f x : ty)] is the accepted form. *)
    match e.pexp_desc with Pexp_apply _ -> true | _ -> false
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let name = dotted txt in
        if l1_banned name then
          emit "L1" loc
            (Printf.sprintf "%s is non-deterministic under a seed" name);
        if l2_banned name then
          emit "L2" loc
            (Printf.sprintf "polymorphic %s orders raw runtime representations" name);
        if l4_banned name then
          emit "L4" loc (Printf.sprintf "%s writes to stdout from library code" name);
        if l5_banned name then
          emit "L5" loc "Obj.magic defeats the type system";
        if l6_banned name then
          emit "L6" loc
            (Printf.sprintf
               "%s is a raw concurrency primitive outside lib/util/pool.ml" name)
    | Pexp_apply (fn, args) -> (
        (match (fn.pexp_desc, args) with
        | ( Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc },
            [ (_, a); (_, b) ] )
          when structural a || structural b ->
            emit "L2" loc
              (Printf.sprintf "polymorphic %s on a structured value" op)
        | _ -> ());
        match (fn.pexp_desc, args) with
        | _, [ (Asttypes.Nolabel, arg) ] when is_ignore fn && bare_call arg ->
            emit "L5" e.pexp_loc
              "ignore of a result-carrying call without a type annotation"
        | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, arg); (_, f) ]
          when is_ignore f && bare_call arg ->
            emit "L5" e.pexp_loc
              "ignore of a result-carrying call without a type annotation"
        | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, f); (_, arg) ]
          when is_ignore f && bare_call arg ->
            emit "L5" e.pexp_loc
              "ignore of a result-carrying call without a type annotation"
        | _ -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if catch_all c.pc_lhs then
              emit "L3" c.pc_lhs.ppat_loc
                "catch-all handler swallows every exception")
          cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p when catch_all p ->
                emit "L3" c.pc_lhs.ppat_loc
                  "catch-all exception case swallows every exception"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  List.rev !out
