(* Repo-wide interprocedural call graph over typedtrees, the substrate for
   the typed rules L7/L8/L9.

   Phase A walks every loaded unit's structure and registers definitions
   (top-level values, values in nested modules), module aliases, and
   top-level mutable globals.  Phase B walks each definition body and
   records per-definition facts: direct allocation sites, direct
   raise/partial-match sites, resolved calls (applied or referenced), and
   references to top-level mutable globals.  The rules layer computes
   transitive verdicts over these facts.

   Names: a definition's key is "Unit.Sub.name" with dune's "__" wrapper
   mangling folded to "." (Hot_manifest.key), so "Disco_core__Forwarding
   .forward" and a call written "Disco_core.Forwarding.forward" collide as
   intended.

   Approximations (documented in DESIGN.md §5b): a locally let-bound
   closure's facts are attributed to its enclosing definition; calls
   through function values are reported as unverifiable rather than
   resolved; globals bound by an arbitrary constructor call (not a
   recognized mutable type or literal) are missed. *)

open Typedtree

type pos = { p_file : string; p_line : int; p_col : int }

let pos_of_loc (loc : Location.t) =
  let s = loc.Location.loc_start in
  {
    p_file = Driver.normalize_path s.Lexing.pos_fname;
    p_line = s.Lexing.pos_lnum;
    p_col = s.Lexing.pos_cnum - s.Lexing.pos_bol;
  }

type target =
  | Repo of string  (* key of a definition in the loaded set *)
  | External of string  (* normalized name outside the loaded set *)
  | Indirect of string  (* function value: parameter, field, computed *)

type site = { s_pos : pos; s_what : string }

type call = {
  c_pos : pos;
  c_target : target;
  c_applied : bool;
  c_in_try : bool;  (* inside a try body: exceptions do not escape *)
}

type def = {
  d_key : string;
  d_pos : pos;
  mutable d_hot_attr : bool;
  mutable d_allocs : site list;
  mutable d_raises : site list;  (* raisers and partial matches *)
  mutable d_calls : call list;
  mutable d_mut_refs : site list;  (* s_what = key of the global *)
}

type global = { g_key : string; g_pos : pos; g_kind : string; g_memo : bool }

type t = {
  defs : (string, def) Hashtbl.t;
  mutable def_order : string list;  (* insertion order, for determinism *)
  globals : (string, global) Hashtbl.t;
  mutable task_entries : string list;  (* def keys seeded on pool domains *)
}

(* --- phase A: declarations ------------------------------------------------ *)

type decl = {
  (* Ident.unique_name -> def key, for every registered value binding. *)
  val_stamps : (string, string) Hashtbl.t;
  (* local structure module stamp -> canonical prefix *)
  mod_locals : (string, string) Hashtbl.t;
  (* module alias stamp -> aliased path, resolved lazily *)
  mod_aliases : (string, Path.t) Hashtbl.t;
  (* definition order: key, binding, hot?, enclosing source file *)
  mutable bindings : (string * value_binding * bool) list;
  mutable globals : global list;
  dc_unit : string;  (* unit key, e.g. "Disco_core.Forwarding" *)
  dc_source : string;
}

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let rec pat_idents p =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (q, id, _) -> id :: pat_idents q
  | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | Tpat_variant (_, Some q, _) -> pat_idents q
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, q) -> pat_idents q) fields
  | Tpat_lazy q -> pat_idents q
  | Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | _ -> []

let type_head ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Rules.strip_stdlib (Path.name p))
  | _ -> None

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.equal (String.sub s (n - m) m) suffix

let mutable_type_heads =
  [ "ref"; "array"; "bytes"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Atomic.t" ]

let mutable_makers =
  [
    "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Atomic.make";
  ]

(* Name as written at an application head, before resolution; used only for
   the structural mutable-global test where scope is irrelevant. *)
let rough_apply_head e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) ->
          Some (Rules.strip_stdlib (Hot_manifest.key (Path.name p)))
      | _ -> None)
  | _ -> None

let rec mutable_record_literal e =
  match e.exp_desc with
  | Texp_record { fields; _ } ->
      Array.exists
        (fun ((ld : Types.label_description), _) ->
          match ld.Types.lbl_mut with
          | Asttypes.Mutable -> true
          | Asttypes.Immutable -> false)
        fields
  | Texp_let (_, _, body) -> mutable_record_literal body
  | _ -> false

let global_of_binding ~key vb =
  let head = type_head vb.vb_expr.exp_type in
  let maker = rough_apply_head vb.vb_expr in
  let memo =
    (match head with Some h -> has_suffix ~suffix:"Pool.Memo.t" (Hot_manifest.key h) | None -> false)
    || match maker with
       | Some m -> has_suffix ~suffix:"Pool.Memo.create" m
       | None -> false
  in
  let kind =
    if memo then Some "Pool.Memo.t"
    else
      match head with
      | Some h when List.mem (Hot_manifest.key h) mutable_type_heads ->
          Some (Hot_manifest.key h)
      | _ -> (
          match maker with
          | Some m when List.mem m mutable_makers -> Some m
          | _ ->
              if mutable_record_literal vb.vb_expr then
                Some "record with mutable fields"
              else
                match vb.vb_expr.exp_desc with
                | Texp_array _ -> Some "array"
                | _ -> None)
  in
  match kind with
  | Some g_kind ->
      Some { g_key = key; g_pos = pos_of_loc vb.vb_loc; g_kind; g_memo = memo }
  | None -> None

let register_binding dc ~prefix vb =
  let anon_key () =
    Printf.sprintf "%s.<init@%d>" prefix
      (vb.vb_loc.Location.loc_start.Lexing.pos_lnum)
  in
  let ids = pat_idents vb.vb_pat in
  let key =
    match ids with
    | [ id ] -> prefix ^ "." ^ Ident.name id
    | _ -> anon_key ()
  in
  List.iter
    (fun id -> Hashtbl.replace dc.val_stamps (Ident.unique_name id) key)
    ids;
  let hot = has_attr "hot" vb.vb_attributes in
  dc.bindings <- (key, vb, hot) :: dc.bindings;
  (* Only single-name bindings can be globals; destructuring a mutable
     structure into parts is not a shape the repo uses at top level. *)
  match ids with
  | [ _ ] -> (
      match global_of_binding ~key vb with
      | Some g -> dc.globals <- g :: dc.globals
      | None -> ())
  | _ -> ()

let rec register_module_expr dc ~prefix (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> register_structure dc ~prefix str
  | Tmod_constraint (inner, _, _, _) -> register_module_expr dc ~prefix inner
  | _ -> ()

and register_module_binding dc ~prefix (mb : module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
      let sub = prefix ^ "." ^ Ident.name id in
      match mb.mb_expr.mod_desc with
      | Tmod_ident (p, _) | Tmod_constraint ({ mod_desc = Tmod_ident (p, _); _ }, _, _, _)
        ->
          Hashtbl.replace dc.mod_aliases (Ident.unique_name id) p
      | _ ->
          Hashtbl.replace dc.mod_locals (Ident.unique_name id) sub;
          register_module_expr dc ~prefix:sub mb.mb_expr)

and register_structure dc ~prefix str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (register_binding dc ~prefix) vbs
      | Tstr_module mb -> register_module_binding dc ~prefix mb
      | Tstr_recmodule mbs -> List.iter (register_module_binding dc ~prefix) mbs
      | _ -> ())
    str.str_items

let declare (u : Typed_load.unit_info) =
  let dc =
    {
      val_stamps = Hashtbl.create 64;
      mod_locals = Hashtbl.create 8;
      mod_aliases = Hashtbl.create 8;
      bindings = [];
      globals = [];
      dc_unit = Hot_manifest.key u.Typed_load.u_modname;
      dc_source = u.Typed_load.u_source;
    }
  in
  register_structure dc ~prefix:dc.dc_unit u.Typed_load.u_structure;
  dc.bindings <- List.rev dc.bindings;
  dc.globals <- List.rev dc.globals;
  dc

(* --- path resolution ------------------------------------------------------ *)

type env = {
  e_decl : decl;
  e_known : (string, unit) Hashtbl.t;  (* every def and global key, all units *)
}

let rec module_prefix env (p : Path.t) =
  match p with
  | Path.Pident id -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt env.e_decl.mod_aliases u with
      | Some target -> module_prefix env target
      | None -> (
          match Hashtbl.find_opt env.e_decl.mod_locals u with
          | Some prefix -> Some prefix
          | None -> Some (Ident.name id)))
  | Path.Pdot (q, s) -> (
      match module_prefix env q with
      | Some prefix -> Some (prefix ^ "." ^ s)
      | None -> None)
  | _ -> None

let classify_dotted env full =
  let k = Hot_manifest.key full in
  if Rules.has_prefix ~prefix:"Stdlib." k then
    External (Rules.strip_stdlib k)
  else if Hashtbl.mem env.e_known k then Repo k
  else External k

let resolve env ~local_clean (p : Path.t) =
  match p with
  | Path.Pident id -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt env.e_decl.val_stamps u with
      | Some key -> Repo key
      | None ->
          if Hashtbl.mem local_clean u then Indirect ("local function " ^ Ident.name id)
          else Indirect ("function value " ^ Ident.name id))
  | Path.Pdot (q, s) -> (
      match module_prefix env q with
      | Some prefix -> classify_dotted env (prefix ^ "." ^ s)
      | None -> Indirect "functor-applied module")
  | _ -> Indirect "functor-applied module"

(* Is a resolved Pident a local let-bound closure (whose body facts are
   already attributed to the enclosing def)? *)
let is_local_clean ~local_clean (p : Path.t) =
  match p with
  | Path.Pident id -> Hashtbl.mem local_clean (Ident.unique_name id)
  | _ -> false

(* --- phase B: per-definition facts ---------------------------------------- *)

type walk_ctx = {
  w_def : def;
  w_env : env;
  w_graph : t;
  (* stamps of let-bound syntactic closures in this body *)
  w_local_clean : (string, unit) Hashtbl.t;
  mutable w_try_depth : int;
  w_task_keys : (string, unit) Hashtbl.t;  (* task-API keys, for L8 seeding *)
}

let add_alloc ctx loc what =
  ctx.w_def.d_allocs <- { s_pos = pos_of_loc loc; s_what = what } :: ctx.w_def.d_allocs

let add_raise ctx loc what =
  if ctx.w_try_depth = 0 then
    ctx.w_def.d_raises <-
      { s_pos = pos_of_loc loc; s_what = what } :: ctx.w_def.d_raises

let add_call ctx loc target ~applied =
  ctx.w_def.d_calls <-
    {
      c_pos = pos_of_loc loc;
      c_target = target;
      c_applied = applied;
      c_in_try = ctx.w_try_depth > 0;
    }
    :: ctx.w_def.d_calls

let add_mut_ref ctx loc gkey =
  ctx.w_def.d_mut_refs <-
    { s_pos = pos_of_loc loc; s_what = gkey } :: ctx.w_def.d_mut_refs

let record_ident ctx loc p =
  if not (is_local_clean ~local_clean:ctx.w_local_clean p) then
    match resolve ctx.w_env ~local_clean:ctx.w_local_clean p with
    | Repo key ->
        add_call ctx loc (Repo key) ~applied:false;
        (match Hashtbl.find_opt ctx.w_graph.globals key with
        | Some g when not g.g_memo -> add_mut_ref ctx loc key
        | _ -> ())
    | External _ | Indirect _ -> ()

(* A payload argument that does not force a fresh block by itself. *)
let immediate_arg a =
  match a.exp_desc with
  | Texp_ident _ | Texp_constant _ -> true
  | Texp_construct (_, _, []) -> true
  | _ -> false

let exempt_construct (cd : Types.constructor_description) args =
  (not (String.equal cd.Types.cstr_name "::")) && List.for_all immediate_arg args

let task_entry_name parent_key line = Printf.sprintf "%s.<task@%d>" parent_key line

(* Shadowed top-level names share a key: merge their facts (a safe
   over-approximation) instead of dropping the later binding. *)
let new_def graph ~key ~pos ~hot =
  match Hashtbl.find_opt graph.defs key with
  | Some d ->
      if hot then d.d_hot_attr <- true;
      d
  | None ->
      let d =
        {
          d_key = key;
          d_pos = pos;
          d_hot_attr = hot;
          d_allocs = [];
          d_raises = [];
          d_calls = [];
          d_mut_refs = [];
        }
      in
      Hashtbl.add graph.defs key d;
      graph.def_order <- key :: graph.def_order;
      d

(* Strip the definition-lambda chain: single total unguarded cases are
   parameters of the definition, anything else is body.  Partial parameter
   patterns are a raise fact of the definition itself.

   An optional argument with a default, [fun ?(x = d) -> rest], elaborates
   to [fun *opt* -> let x = match *opt* with Some x -> x | None -> d in
   rest]; without the special case the stripper would stop at the let and
   count the remaining curried parameters as closure allocations of the
   body.  The binding (which evaluates [d] when the caller omits the
   argument) is kept as a body so a defaulted allocation still counts. *)
let rec bodies_of ctx e =
  match e.exp_desc with
  | Texp_function { param; cases; partial; _ } -> (
      if partial = Partial then
        add_raise ctx e.exp_loc "non-exhaustive parameter pattern";
      match cases with
      | [ { c_guard = None; c_rhs; _ } ] -> (
          match c_rhs.exp_desc with
          | Texp_let (_, vbs, cont) when String.equal (Ident.name param) "*opt*"
            ->
              List.concat_map (fun vb -> bodies_of ctx vb.vb_expr) vbs
              @ bodies_of ctx cont
          | _ -> bodies_of ctx c_rhs)
      | cases ->
          List.concat_map
            (fun c ->
              (match c.c_guard with Some g -> [ g ] | None -> []) @ [ c.c_rhs ])
            cases)
  | _ -> [ e ]

let rec walk_body ctx body =
  let expr it e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> record_ident ctx e.exp_loc p
    | Texp_let (_, vbs, rest) ->
        List.iter
          (fun vb ->
            match vb.vb_expr.exp_desc with
            | Texp_function _ ->
                List.iter
                  (fun id ->
                    Hashtbl.replace ctx.w_local_clean (Ident.unique_name id) ())
                  (pat_idents vb.vb_pat)
            | _ -> ())
          vbs;
        List.iter (fun vb -> it.Tast_iterator.expr it vb.vb_expr) vbs;
        it.Tast_iterator.expr it rest
    | Texp_function { partial; _ } ->
        add_alloc ctx e.exp_loc "closure allocation";
        if partial = Partial then
          add_raise ctx e.exp_loc "non-exhaustive function pattern";
        Tast_iterator.default_iterator.expr it e
    | Texp_apply (fn, args) -> walk_apply ctx it e fn args
    | Texp_match (_, _, partial) ->
        if partial = Partial then add_raise ctx e.exp_loc "non-exhaustive match";
        Tast_iterator.default_iterator.expr it e
    | Texp_try (b, cases) ->
        ctx.w_try_depth <- ctx.w_try_depth + 1;
        it.Tast_iterator.expr it b;
        ctx.w_try_depth <- ctx.w_try_depth - 1;
        List.iter
          (fun c ->
            (match c.c_guard with Some g -> it.Tast_iterator.expr it g | None -> ());
            it.Tast_iterator.expr it c.c_rhs)
          cases
    | Texp_tuple _ ->
        add_alloc ctx e.exp_loc "tuple allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_construct (_, cd, args) ->
        if args <> [] && not (exempt_construct cd args) then
          add_alloc ctx e.exp_loc
            (Printf.sprintf "constructor %s with a computed or list payload"
               cd.Types.cstr_name);
        Tast_iterator.default_iterator.expr it e
    | Texp_variant (_, Some _) ->
        add_alloc ctx e.exp_loc "polymorphic-variant allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_record _ ->
        add_alloc ctx e.exp_loc "record allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_array _ ->
        add_alloc ctx e.exp_loc "array literal allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_lazy _ ->
        add_alloc ctx e.exp_loc "lazy-block allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_letop _ ->
        add_alloc ctx e.exp_loc "binding-operator closure allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_pack _ ->
        add_alloc ctx e.exp_loc "first-class-module allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_object _ | Texp_new _ ->
        add_alloc ctx e.exp_loc "object allocation";
        Tast_iterator.default_iterator.expr it e
    | Texp_assert (_, _) ->
        add_raise ctx e.exp_loc "assert";
        Tast_iterator.default_iterator.expr it e
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it body

and walk_apply ctx it e fn args =
  (* Pipe operators: analyze f as applied to its argument. *)
  let reassociated =
    match (fn.exp_desc, args) with
    | Texp_ident (p, _, _), [ (_, Some a); (_, Some b) ] -> (
        match resolve ctx.w_env ~local_clean:ctx.w_local_clean p with
        | External "@@" -> Some (a, b)
        | External "|>" -> Some (b, a)
        | _ -> None)
    | _ -> None
  in
  match reassociated with
  | Some (f, x) ->
      walk_apply ctx it e f [ (Asttypes.Nolabel, Some x) ]
  | None ->
      (match fn.exp_desc with
      | Texp_ident (p, _, _) ->
          if not (is_local_clean ~local_clean:ctx.w_local_clean p) then begin
            let target = resolve ctx.w_env ~local_clean:ctx.w_local_clean p in
            add_call ctx e.exp_loc target ~applied:true;
            (match target with
            | Repo key -> (
                match Hashtbl.find_opt ctx.w_graph.globals key with
                | Some g when not g.g_memo -> add_mut_ref ctx e.exp_loc key
                | _ -> ())
            | _ -> ());
            let tkey =
              match target with
              | Repo k -> Some k
              | External k -> Some k
              | Indirect _ -> None
            in
            match tkey with
            | Some k when Hashtbl.mem ctx.w_task_keys k ->
                List.iter (fun (_, a) -> Option.iter (seed_task ctx) a) args
            | _ -> ()
          end
      | _ ->
          add_call ctx e.exp_loc (Indirect "computed function expression")
            ~applied:true;
          it.Tast_iterator.expr it fn);
      if is_arrow e.exp_type then
        add_alloc ctx e.exp_loc "partial application";
      List.iter (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a) args

(* A function argument at a task-API call site: it will run on a pool
   domain, so it seeds the L8 reachability check. *)
and seed_task ctx a =
  if is_arrow a.exp_type then
    match a.exp_desc with
    | Texp_function _ ->
        let line = a.exp_loc.Location.loc_start.Lexing.pos_lnum in
        let key = task_entry_name ctx.w_def.d_key line in
        if not (Hashtbl.mem ctx.w_graph.defs key) then begin
          let child =
            new_def ctx.w_graph ~key ~pos:(pos_of_loc a.exp_loc) ~hot:false
          in
          (* The closure shares the enclosing definition's environment:
             anything the parent can reach, the task can reach. *)
          child.d_calls <-
            [
              {
                c_pos = pos_of_loc a.exp_loc;
                c_target = Repo ctx.w_def.d_key;
                c_applied = true;
                c_in_try = false;
              };
            ];
          let child_ctx = { ctx with w_def = child; w_try_depth = 0 } in
          List.iter (walk_body child_ctx) (bodies_of child_ctx a);
          ctx.w_graph.task_entries <- key :: ctx.w_graph.task_entries
        end
    | Texp_ident (p, _, _) -> (
        match resolve ctx.w_env ~local_clean:ctx.w_local_clean p with
        | Repo key -> ctx.w_graph.task_entries <- key :: ctx.w_graph.task_entries
        | External _ -> ()
        | Indirect _ ->
            (* A function value from the enclosing scope: fall back to the
               parent's whole reachable set. *)
            ctx.w_graph.task_entries <- ctx.w_def.d_key :: ctx.w_graph.task_entries)
    | _ ->
        ctx.w_graph.task_entries <- ctx.w_def.d_key :: ctx.w_graph.task_entries

(* --- build ---------------------------------------------------------------- *)

let build ?(task_apis = Hot_manifest.task_api_keys ()) units =
  let decls = List.map declare units in
  let known = Hashtbl.create 256 in
  List.iter
    (fun dc ->
      List.iter (fun (key, _, _) -> Hashtbl.replace known key ()) dc.bindings)
    decls;
  let graph =
    {
      defs = Hashtbl.create 256;
      def_order = [];
      globals = Hashtbl.create 32;
      task_entries = [];
    }
  in
  (* The pool implementation is the guarded choke point: its own internal
     mutable state is what the Memo/mutex discipline is about, so it is not
     a lint subject for L8. *)
  List.iter
    (fun dc ->
      if not (has_suffix ~suffix:"Pool" dc.dc_unit) then
        List.iter (fun g -> Hashtbl.replace graph.globals g.g_key g) dc.globals)
    decls;
  let task_keys = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace task_keys k ()) task_apis;
  List.iter
    (fun dc ->
      let env = { e_decl = dc; e_known = known } in
      List.iter
        (fun (key, vb, hot) ->
          let def = new_def graph ~key ~pos:(pos_of_loc vb.vb_loc) ~hot in
          let ctx =
            {
              w_def = def;
              w_env = env;
              w_graph = graph;
              w_local_clean = Hashtbl.create 16;
              w_try_depth = 0;
              w_task_keys = task_keys;
            }
          in
          let bodies = bodies_of ctx vb.vb_expr in
          (* Eta-less aliases ([let g = f]) forward their verdict: treat the
             bare body identifier as an applied call. *)
          (match bodies with
          | [ ({ exp_desc = Texp_ident (p, _, _); _ } as b) ]
            when not (is_local_clean ~local_clean:ctx.w_local_clean p) ->
              add_call ctx b.exp_loc
                (resolve env ~local_clean:ctx.w_local_clean p)
                ~applied:true
          | _ -> List.iter (walk_body ctx) bodies))
        dc.bindings)
    decls;
  graph.def_order <- List.rev graph.def_order;
  graph.task_entries <- List.sort_uniq String.compare graph.task_entries;
  graph
