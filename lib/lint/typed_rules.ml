(* The typed rule catalogue (L7/L8/L9 plus the H0 manifest-integrity check)
   and the verdict engine that applies it to a Callgraph.t.

   Scope and honesty notes (also in DESIGN.md §5b):
   - L7 flags allocation the typedtree shows directly (closures, tuples,
     records, arrays, non-trivial constructor payloads, lazy, partial
     application) plus calls to anything not provably allocation-free:
     repo functions with an allocating body, externals outside the
     allowlist below, and calls through function values.  Boxed
     Int64/Int32/float trips through externals (Int64.mul, ...) fall out
     of the allowlist rule; float boxing introduced purely by the
     register allocator is out of scope.
   - Constructor payloads that are all identifiers/constants and not a
     list cons are exempt: the decision/header protocol is variants, and
     returning [Forward next] is the API, not a leak.
   - L9 flags raisers and partial matches; out-of-bounds/array accesses
     and division are implicit exceptions the typedtree does not mark and
     are out of scope.  A raise inside [try ... with] does not escape and
     is not a finding.
   - L8 seeds at task-API call sites (Hot_manifest.task_apis) and walks
     every call/reference edge; a reference to a top-level mutable global
     (outside Pool, and not a Pool.Memo.t) in the reachable set is a
     finding. *)

let l7 : Rules.t =
  {
    Rules.id = "L7";
    title = "hot-path allocation discipline";
    default_severity = Diagnostic.Error;
    rationale =
      "the paper's \xc3\x95(\xe2\x88\x9an)-state guarantee only matters at scale if the \
       per-hop walker is allocation-free; one closure or boxed value per hop \
       is a GC wall at 10^6 nodes";
    hint =
      "hoist the allocation out of the hot path, call only allocation-free \
       helpers, or waive the site: (* disco-lint: allow L7 reason *)";
    applies = (fun _ -> true);
  }

let l8 : Rules.t =
  {
    Rules.id = "L8";
    title = "domain escape";
    default_severity = Diagnostic.Error;
    rationale =
      "top-level mutable state reached from a Pool task runs on several \
       domains at once; unsynchronized access is a data race the \
       determinism argument (DESIGN.md \xc2\xa75d) cannot see";
    hint =
      "pass state through the task's arguments and merge results on the \
       caller, or guard the shared table with Disco_util.Pool.Memo";
    applies = (fun _ -> true);
  }

let l9 : Rules.t =
  {
    Rules.id = "L9";
    title = "hot-path exception hygiene";
    default_severity = Diagnostic.Error;
    rationale =
      "the walker must degrade to Drop, never throw: an exception escaping \
       a forward function tears down the whole experiment instead of \
       recording a routing failure";
    hint =
      "return Drop (or an option) instead of raising; wrap genuinely \
       impossible cases in try/with at the boundary; or waive the site: \
       (* disco-lint: allow L9 reason *)";
    applies = (fun _ -> true);
  }

let h0 : Rules.t =
  {
    Rules.id = "H0";
    title = "hot-path manifest integrity";
    default_severity = Diagnostic.Error;
    rationale =
      "a manifest entry that no longer resolves to a definition means a hot \
       function was renamed or removed without updating the discipline";
    hint = "update lib/lint/hot_manifest.ml to match the code";
    applies = (fun _ -> true);
  }

let catalogue = [ l7; l8; l9; h0 ]
let find id = List.find_opt (fun r -> String.equal r.Rules.id id) catalogue

(* --- external allowlists -------------------------------------------------- *)

(* Externals we assert are allocation-free per call.  Everything not listed
   is treated as potentially allocating ("not known to be allocation-free"):
   the list errs on the side of noise, because a waiver is cheap and a
   silent allocation in the hop loop is not. *)
let alloc_free_externals =
  [
    (* integer and float primitives *)
    "+"; "-"; "*"; "/"; "mod"; "abs"; "land"; "lor"; "lxor"; "lnot"; "lsl";
    "lsr"; "asr"; "succ"; "pred"; "+."; "-."; "*."; "/."; "**"; "~-"; "~-.";
    "~+"; "~+."; "sqrt"; "exp"; "log"; "floor"; "ceil"; "min"; "max";
    (* unboxed [@@noalloc] external: exact mantissa/exponent reassembly in
       the fast-path float decoder *)
    "ldexp";
    "float_of_int"; "int_of_float"; "truncate"; "float"; "int_of_char";
    "char_of_int"; "not"; "&&"; "||"; "&"; "or";
    (* comparison *)
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare";
    "Int.compare"; "Int.equal"; "Int.max"; "Int.min"; "Int.abs";
    "Float.compare"; "Float.equal"; "Float.is_nan"; "Float.abs";
    "Float.of_int"; "Float.to_int"; "Float.max"; "Float.min";
    "Char.code"; "Char.compare"; "Char.equal";
    "String.length"; "String.get"; "String.unsafe_get"; "String.equal";
    "String.compare"; "String.iter";
    "Int64.compare"; "Int64.equal"; "Int64.unsigned_compare"; "Int64.to_int";
    "Int32.to_int"; "Nativeint.to_int";
    (* mutation and cells that already exist *)
    "!"; ":="; "incr"; "decr"; "ignore"; "fst"; "snd";
    "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Array.iter";
    "Array.iteri"; "Array.fold_left"; "Array.sort"; "Array.exists";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit"; "Bytes.blit_string";
    "Bytes.unsafe_fill";
    (* bigarray access primitives: at call sites where the array's kind is
       statically known (our packed float slabs are concretely typed) the
       compiler emits an inline load/store with an unboxed float, so hop
       loops may read distance slabs directly — the throughput suite's
       zero-alloc gate double-checks this empirically *)
    "Bigarray.Array1.get"; "Bigarray.Array1.set"; "Bigarray.Array1.unsafe_get";
    "Bigarray.Array1.unsafe_set"; "Bigarray.Array1.dim";
    (* zero-copy casts: no allocation, just a type-level reinterpretation *)
    "Bytes.unsafe_of_string"; "Bytes.unsafe_to_string";
    (* float predicates/conversions returning immediates *)
    "Float.is_finite"; "Float.is_nan"; "Float.compare"; "Float.equal";
    "Float.to_int"; "int_of_float";
    "Hashtbl.mem"; "Hashtbl.length"; "Hashtbl.remove"; "Hashtbl.clear";
    "Hashtbl.reset"; "Hashtbl.iter";
    "Buffer.length"; "Buffer.clear"; "Buffer.reset"; "Buffer.add_char";
    "Queue.length"; "Queue.is_empty"; "Stack.length"; "Stack.is_empty";
    "List.length"; "List.iter"; "List.exists"; "List.mem"; "List.memq";
    "List.for_all"; "List.compare_lengths";
    "Option.is_some"; "Option.is_none"; "Option.value";
    "Fun.id"; "Sys.opaque_identity";
    (* raising is not allocating (the exception block is accounted at its
       construction site); these stay visible to L9 below *)
    "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit";
    (* pipes are re-associated by the walker; seeing one bare is harmless *)
    "@@"; "|>";
  ]

(* Externals that raise by contract (partial stdlib functions and the
   raisers themselves).  Implicit exceptions (bounds, Division_by_zero,
   Char.chr range, ...) are out of scope. *)
let raising_externals =
  [
    "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit"; "assert";
    "Hashtbl.find"; "List.hd"; "List.tl"; "List.find"; "List.nth";
    "List.assoc"; "Option.get"; "Stack.pop"; "Queue.pop"; "Queue.take";
    "Queue.peek";
  ]

let is_alloc_free_external name = List.mem name alloc_free_externals
let is_raising_external name = List.mem name raising_externals

(* --- transitive verdicts -------------------------------------------------- *)

(* For each def, an optional reason it is not allocation-free (resp. can
   raise).  Direct reasons seed a worklist; callers of a dirty def become
   dirty through applied repo calls. *)

type verdicts = (string, string) Hashtbl.t

let site_str (s : Callgraph.site) =
  Printf.sprintf "%s (%s:%d)" s.Callgraph.s_what s.Callgraph.s_pos.Callgraph.p_file
    s.Callgraph.s_pos.Callgraph.p_line

let direct_alloc_reason (d : Callgraph.def) =
  match d.Callgraph.d_allocs with
  | s :: _ -> Some (site_str s)
  | [] ->
      List.find_map
        (fun (c : Callgraph.call) ->
          if not c.Callgraph.c_applied then None
          else
            match c.Callgraph.c_target with
            | Callgraph.External x when not (is_alloc_free_external x) ->
                Some
                  (Printf.sprintf "calls %s (not known allocation-free) at %s:%d"
                     x c.Callgraph.c_pos.Callgraph.p_file
                     c.Callgraph.c_pos.Callgraph.p_line)
            | Callgraph.Indirect what ->
                Some
                  (Printf.sprintf "calls through a %s at %s:%d" what
                     c.Callgraph.c_pos.Callgraph.p_file
                     c.Callgraph.c_pos.Callgraph.p_line)
            | _ -> None)
        d.Callgraph.d_calls

let direct_raise_reason (d : Callgraph.def) =
  match d.Callgraph.d_raises with
  | s :: _ -> Some (site_str s)
  | [] ->
      List.find_map
        (fun (c : Callgraph.call) ->
          if (not c.Callgraph.c_applied) || c.Callgraph.c_in_try then None
          else
            match c.Callgraph.c_target with
            | Callgraph.External x when is_raising_external x ->
                Some
                  (Printf.sprintf "calls %s at %s:%d" x
                     c.Callgraph.c_pos.Callgraph.p_file
                     c.Callgraph.c_pos.Callgraph.p_line)
            | _ -> None)
        d.Callgraph.d_calls

(* Worklist propagation over reverse applied-call edges. *)
let propagate (cg : Callgraph.t) ~direct ~edge_ok : verdicts =
  let verdicts : verdicts = Hashtbl.create 128 in
  let rev = Hashtbl.create 128 in
  List.iter
    (fun key ->
      let d = Hashtbl.find cg.Callgraph.defs key in
      List.iter
        (fun (c : Callgraph.call) ->
          if c.Callgraph.c_applied && edge_ok c then
            match c.Callgraph.c_target with
            | Callgraph.Repo callee ->
                Hashtbl.add rev callee key  (* callee -> caller *)
            | _ -> ())
        d.Callgraph.d_calls)
    cg.Callgraph.def_order;
  let q = Queue.create () in
  List.iter
    (fun key ->
      let d = Hashtbl.find cg.Callgraph.defs key in
      match direct d with
      | Some reason ->
          Hashtbl.replace verdicts key reason;
          Queue.add key q
      | None -> ())
    cg.Callgraph.def_order;
  while not (Queue.is_empty q) do
    let callee = Queue.pop q in
    List.iter
      (fun caller ->
        if not (Hashtbl.mem verdicts caller) then begin
          Hashtbl.replace verdicts caller
            (Printf.sprintf "calls %s, which is not clean: %s" callee
               (Hashtbl.find verdicts callee));
          Queue.add caller q
        end)
      (Hashtbl.find_all rev callee)
  done;
  verdicts

(* --- findings ------------------------------------------------------------- *)

type finding = { rule : Rules.t; f_pos : Callgraph.pos; message : string }

let hot_set (cg : Callgraph.t) =
  let hot = Hashtbl.create 32 in
  let missing = ref [] in
  List.iter
    (fun name ->
      let k = Hot_manifest.key name in
      if Hashtbl.mem cg.Callgraph.defs k then Hashtbl.replace hot k ()
      else missing := name :: !missing)
    (Hot_manifest.hot_names ());
  List.iter
    (fun key ->
      let d = Hashtbl.find cg.Callgraph.defs key in
      if d.Callgraph.d_hot_attr then Hashtbl.replace hot key ())
    cg.Callgraph.def_order;
  (hot, List.rev !missing)

(* When the analyzed set is a subtree (fixtures, a single directory), the
   manifest mostly points outside it; H0 only applies when the whole repo
   is on the table, signalled by the driver via [check_manifest]. *)

let l7_findings cg hot alloc_verdicts =
  List.concat_map
    (fun key ->
      if not (Hashtbl.mem hot key) then []
      else
        let d = Hashtbl.find cg.Callgraph.defs key in
        let direct =
          List.rev_map
            (fun (s : Callgraph.site) ->
              {
                rule = l7;
                f_pos = s.Callgraph.s_pos;
                message =
                  Printf.sprintf "%s in hot function %s" s.Callgraph.s_what key;
              })
            d.Callgraph.d_allocs
        in
        let calls =
          List.rev
            (List.filter_map
               (fun (c : Callgraph.call) ->
                 if not c.Callgraph.c_applied then None
                 else
                   match c.Callgraph.c_target with
                   | Callgraph.Repo g ->
                       if Hashtbl.mem hot g then None
                       else
                         Option.map
                           (fun reason ->
                             {
                               rule = l7;
                               f_pos = c.Callgraph.c_pos;
                               message =
                                 Printf.sprintf
                                   "hot function %s calls %s, which is not \
                                    allocation-free: %s"
                                   key g reason;
                             })
                           (Hashtbl.find_opt alloc_verdicts g)
                   | Callgraph.External x ->
                       if is_alloc_free_external x then None
                       else
                         Some
                           {
                             rule = l7;
                             f_pos = c.Callgraph.c_pos;
                             message =
                               Printf.sprintf
                                 "hot function %s calls %s, which is not known \
                                  to be allocation-free"
                                 key x;
                           }
                   | Callgraph.Indirect what ->
                       Some
                         {
                           rule = l7;
                           f_pos = c.Callgraph.c_pos;
                           message =
                             Printf.sprintf
                               "hot function %s calls through a %s, which \
                                cannot be verified allocation-free"
                               key what;
                         })
               d.Callgraph.d_calls)
        in
        direct @ calls)
    cg.Callgraph.def_order

let l9_findings cg hot raise_verdicts =
  List.concat_map
    (fun key ->
      if not (Hashtbl.mem hot key) then []
      else
        let d = Hashtbl.find cg.Callgraph.defs key in
        let direct =
          List.rev_map
            (fun (s : Callgraph.site) ->
              {
                rule = l9;
                f_pos = s.Callgraph.s_pos;
                message =
                  Printf.sprintf "%s in hot function %s" s.Callgraph.s_what key;
              })
            d.Callgraph.d_raises
        in
        let calls =
          List.rev
            (List.filter_map
               (fun (c : Callgraph.call) ->
                 if (not c.Callgraph.c_applied) || c.Callgraph.c_in_try then None
                 else
                   match c.Callgraph.c_target with
                   | Callgraph.Repo g ->
                       if Hashtbl.mem hot g then None
                       else
                         Option.map
                           (fun reason ->
                             {
                               rule = l9;
                               f_pos = c.Callgraph.c_pos;
                               message =
                                 Printf.sprintf
                                   "hot function %s calls %s, which can raise: \
                                    %s"
                                   key g reason;
                             })
                           (Hashtbl.find_opt raise_verdicts g)
                   | Callgraph.External x ->
                       if is_raising_external x then
                         Some
                           {
                             rule = l9;
                             f_pos = c.Callgraph.c_pos;
                             message =
                               Printf.sprintf
                                 "hot function %s calls %s, which raises by \
                                  contract"
                                 key x;
                           }
                       else None
                   | Callgraph.Indirect _ -> None)
               d.Callgraph.d_calls)
        in
        direct @ calls)
    cg.Callgraph.def_order

let l8_findings (cg : Callgraph.t) =
  (* BFS over every call/reference edge from the task entries; keep a
     predecessor map so the finding can show how the task reaches the
     global. *)
  let pred = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun k ->
      if Hashtbl.mem cg.Callgraph.defs k && not (Hashtbl.mem pred k) then begin
        Hashtbl.replace pred k None;
        Queue.add k q
      end)
    cg.Callgraph.task_entries;
  while not (Queue.is_empty q) do
    let key = Queue.pop q in
    let d = Hashtbl.find cg.Callgraph.defs key in
    List.iter
      (fun (c : Callgraph.call) ->
        match c.Callgraph.c_target with
        | Callgraph.Repo g
          when Hashtbl.mem cg.Callgraph.defs g && not (Hashtbl.mem pred g) ->
            Hashtbl.replace pred g (Some key);
            Queue.add g q
        | _ -> ())
      d.Callgraph.d_calls
  done;
  let rec chain key acc n =
    if n > 5 then "..." :: acc
    else
      match Hashtbl.find_opt pred key with
      | Some (Some p) -> chain p (p :: acc) (n + 1)
      | _ -> acc
  in
  let reachable =
    List.filter (fun k -> Hashtbl.mem pred k) cg.Callgraph.def_order
  in
  List.concat_map
    (fun key ->
      let d = Hashtbl.find cg.Callgraph.defs key in
      List.rev_map
        (fun (s : Callgraph.site) ->
          let g = Hashtbl.find cg.Callgraph.globals s.Callgraph.s_what in
          {
            rule = l8;
            f_pos = s.Callgraph.s_pos;
            message =
              Printf.sprintf
                "%s (%s) is top-level mutable state reachable from a Pool \
                 task (via %s)"
                g.Callgraph.g_key g.Callgraph.g_kind
                (String.concat " -> " (chain key [ key ] 0));
          })
        d.Callgraph.d_mut_refs)
    reachable

let h0_findings missing =
  List.map
    (fun name ->
      {
        rule = h0;
        f_pos =
          { Callgraph.p_file = "lib/lint/hot_manifest.ml"; p_line = 1; p_col = 0 };
        message =
          Printf.sprintf
            "hot-path manifest entry %s does not resolve to any definition in \
             the analyzed .cmt set"
            name;
      })
    missing

let dedupe findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let k =
        ( f.rule.Rules.id,
          f.f_pos.Callgraph.p_file,
          f.f_pos.Callgraph.p_line,
          f.f_pos.Callgraph.p_col,
          f.message )
      in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    findings

let run ?(check_manifest = true) (cg : Callgraph.t) =
  let hot, missing = hot_set cg in
  let alloc_verdicts = propagate cg ~direct:direct_alloc_reason ~edge_ok:(fun _ -> true) in
  let raise_verdicts =
    propagate cg ~direct:direct_raise_reason
      ~edge_ok:(fun c -> not c.Callgraph.c_in_try)
  in
  dedupe
    (l7_findings cg hot alloc_verdicts
    @ l9_findings cg hot raise_verdicts
    @ l8_findings cg
    @ if check_manifest then h0_findings missing else [])
