(* The checked-in hot-path manifest for the typed pass (rules L7/L9).

   A function is "hot" if it carries a [@hot] attribute at its binding or if
   its qualified name is listed here.  The manifest exists so the fast-path
   surface is reviewable in one place and so renaming a hot function without
   updating the discipline is an analyzer error (rule H0: every entry must
   resolve to a definition in the loaded .cmt set).

   Names are written the way a caller writes them ("Disco_core.Forwarding
   .forward"); [key] folds dune's wrapped-module mangling ("Disco_core__
   Forwarding.forward") onto the same string so manifest entries, resolved
   typedtree paths and analyzer def keys all compare equal. *)

(* One entry per registered routing scheme: the registry name and the
   data-plane [forward] that scheme executes per hop.  test_lint_typed pins
   this list against Disco_experiments.Routers.names (). *)
let forward_of_scheme =
  [
    ("disco", "Disco_core.Forwarding.forward");
    ("nddisco", "Disco_core.Forwarding.forward_nd");
    ("s4", "Disco_baselines.S4.forward");
    ("vrr", "Disco_baselines.Vrr.forward");
    ("bvr", "Disco_baselines.Bvr.forward");
    ("seattle", "Disco_baselines.Seattle.forward");
    ("tz", "Disco_baselines.Tz_hierarchy.forward");
    ("pathvector", "Disco_experiments.Routers.Pathvector_router.forward");
  ]

(* One entry per registered scheme's {e compiled} forward — the zero-alloc
   face behind [Protocol.ROUTER.compile].  Unlike the typed forwards these
   admit no per-hop allocation waivers: L7 findings here are build
   breaks.  test_lint_typed pins this list against Routers.names () too. *)
let fast_of_scheme =
  [
    ("disco", "Disco_core.Forwarding.fast_step");
    ("nddisco", "Disco_core.Forwarding.fast_step_nd");
    ("s4", "Disco_baselines.S4.fast_step");
    ("vrr", "Disco_baselines.Vrr.fast_step");
    ("bvr", "Disco_baselines.Bvr.fast_step");
    ("seattle", "Disco_baselines.Seattle.fast_step");
    ("tz", "Disco_baselines.Tz_hierarchy.fast_step");
    ("pathvector", "Disco_experiments.Routers.Pathvector_router.fast_step");
  ]

(* Hot functions that are not a scheme forward: the hop-by-hop walker, the
   name digests, and the CSR accessors every per-hop decision touches. *)
let extras =
  [
    "Disco_core.Dataplane.walk";
    "Disco_core.Dataplane.byte_size";
    "Disco_core.Dataplane.fast_walk";
    "Disco_core.Dataplane.decode_into";
    "Disco_graph.Graph.neighbor_at";
    "Disco_hash.Fnv.hash";
    "Disco_hash.Fnv.hash_with_seed";
    "Disco_hash.Sha256.digest";
    "Disco_hash.Hash_space.compare_unsigned";
    "Disco_hash.Hash_space.ring_distance";
    "Disco_graph.Graph.n";
    "Disco_graph.Graph.degree";
    "Disco_graph.Graph.has_edge";
    "Disco_util.Bits.width_for";
    "Disco_core.Packed.Othello.query";
    "Disco_core.Packed.Csr.find_sorted";
  ]

(* Entry points whose function arguments run on pool domains (rule L8).
   Closure literals or named functions passed at a call of one of these are
   the seeds of the domain-escape reachability check. *)
let task_apis =
  [
    "Disco_util.Pool.run";
    "Disco_experiments.Engine.run";
    "Disco_experiments.Engine.map_groups";
    "Disco_experiments.Engine.map_pairs";
    "Disco_experiments.Engine.iter_groups";
    "Disco_experiments.Engine.iter_pairs";
    "Disco_experiments.Engine.sample_pairs";
  ]

(* Fold "A__B.x" (dune wrapped-library mangling) and "A.B.x" (source syntax)
   onto one comparison key. *)
let key name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let rec go i =
    if i >= n then ()
    else if
      i + 1 < n
      && Char.equal name.[i] '_'
      && Char.equal name.[i + 1] '_'
      && i > 0
      && not (Char.equal name.[i - 1] '.')
    then begin
      Buffer.add_char buf '.';
      go (i + 2)
    end
    else begin
      Buffer.add_char buf name.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let hot_names () =
  extras @ List.map snd forward_of_scheme @ List.map snd fast_of_scheme
let hot_keys () = List.map key (hot_names ())
let task_api_keys () = List.map key task_apis
