(* Parse and lint .ml files. Everything here returns data; the bin/ driver
   owns all printing (rule L4 applies to this library too). *)

type summary = {
  files : int;
  errors : int;
  warnings : int;
  diagnostics : Diagnostic.t list;
}

(* Logical paths use '/' regardless of platform and no leading "./" so the
   rule [applies] predicates and waiver tests see a stable shape. *)
let normalize_path p =
  let p = String.map (fun c -> if Char.equal c '\\' then '/' else c) p in
  if Rules.has_prefix ~prefix:"./" p then String.sub p 2 (String.length p - 2)
  else p

let parse_error ~path ~line ~col message =
  {
    Diagnostic.rule = "P0";
    severity = Diagnostic.Error;
    file = path;
    line;
    col;
    message;
    hint = "disco-lint parses with the toolchain grammar; fix the syntax error";
  }

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      let s = loc.Location.loc_start in
      Error
        (parse_error ~path ~line:s.Lexing.pos_lnum
           ~col:(s.Lexing.pos_cnum - s.Lexing.pos_bol)
           "syntax error")
  | exception exn ->
      Error (parse_error ~path ~line:1 ~col:0 ("cannot parse: " ^ Printexc.to_string exn))

let severity_of ~overrides (rule : Rules.t) =
  match List.assoc_opt rule.Rules.id overrides with
  | Some s -> s
  | None -> rule.Rules.default_severity

let lint_source ?(severity_overrides = []) ~path source =
  let path = normalize_path path in
  match parse ~path source with
  | Error d -> [ d ]
  | Ok ast ->
      let active = List.filter (fun r -> r.Rules.applies path) Rules.catalogue in
      let waivers = Waivers.scan source in
      Rules.check_structure ~active ast
      |> List.filter_map (fun { Rules.rule; loc; message } ->
             let s = loc.Location.loc_start in
             let line = s.Lexing.pos_lnum in
             if Waivers.allows waivers ~rule:rule.Rules.id ~line then None
             else
               Some
                 {
                   Diagnostic.rule = rule.Rules.id;
                   severity = severity_of ~overrides:severity_overrides rule;
                   file = path;
                   line;
                   col = s.Lexing.pos_cnum - s.Lexing.pos_bol;
                   message;
                   hint = rule.Rules.hint;
                 })
      |> List.sort Diagnostic.compare_by_position

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?severity_overrides path =
  lint_source ?severity_overrides ~path (read_file path)

let is_lintable name =
  Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")

let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry = 0 || Char.equal entry.[0] '.' then acc
           else if String.equal entry "_build" then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Sys.file_exists path && is_lintable path then path :: acc
  else acc

let collect_ml_files roots =
  List.fold_left walk [] roots |> List.sort String.compare

let is_error d =
  match d.Diagnostic.severity with
  | Diagnostic.Error -> true
  | Diagnostic.Warning -> false

let summarize ~files diagnostics =
  let errors = List.length (List.filter is_error diagnostics) in
  {
    files;
    errors;
    warnings = List.length diagnostics - errors;
    diagnostics;
  }

let lint_files ?severity_overrides paths =
  let diagnostics =
    List.concat_map (fun p -> lint_file ?severity_overrides p) paths
  in
  summarize ~files:(List.length paths) diagnostics

let summary_to_json s =
  Printf.sprintf {|{"files":%d,"errors":%d,"warnings":%d,"diagnostics":[%s]}|}
    s.files s.errors s.warnings
    (String.concat "," (List.map Diagnostic.to_json s.diagnostics))
