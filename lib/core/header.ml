module Graph = Disco_graph.Graph
module Bits = Disco_util.Bits

type cost = {
  name_bytes : int;
  label_bytes : int;
  id_list_bytes : int;
  total : int;
}

(* Packed per-hop labels for a concrete node path. *)
let encode_labels g path =
  let writer = Bits.Writer.create () in
  let rec encode = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        (match Graph.neighbor_rank g u v with
        | Some rank -> Bits.Writer.put writer rank ~width:(Bits.width_for (Graph.degree g u))
        | None -> invalid_arg "Header: route is not a path");
        encode rest
  in
  encode path;
  (Bits.Writer.to_bytes writer, Bits.Writer.bit_length writer)

let decode_labels g ~src ~hops labels =
  let reader = Bits.Reader.of_bytes labels in
  let rec walk u remaining acc =
    if remaining = 0 then List.rev (u :: acc)
    else begin
      let rank = Bits.Reader.get reader ~width:(Bits.width_for (Graph.degree g u)) in
      let v, _ = Graph.nth_neighbor g u rank in
      walk v (remaining - 1) (u :: acc)
    end
  in
  walk src hops []

let label_bytes_of g path =
  let _, bits = encode_labels g path in
  (bits + 7) / 8

let id_bits g =
  let n = Graph.n g in
  if n <= 1 then 1 else Bits.width_for n

let needs_id_list = function
  | Shortcut.Up_down_stream | Shortcut.Path_knowledge -> true
  | Shortcut.No_shortcut | Shortcut.To_destination | Shortcut.Shorter_fwd_rev
  | Shortcut.No_path_knowledge -> false

let make (d : Disco.t) ~route ~with_ids ~name_bytes =
  let g = d.Disco.nd.Nddisco.graph in
  let label_bytes = label_bytes_of g route in
  let id_list_bytes =
    if with_ids then (List.length route * id_bits g + 7) / 8 else 0
  in
  { name_bytes; label_bytes; id_list_bytes;
    total = name_bytes + label_bytes + id_list_bytes }

let first_packet d ~heuristic ~name_bytes ~src ~dst =
  let route = Disco.route_first ~heuristic d ~src ~dst in
  make d ~route ~with_ids:(needs_id_list heuristic) ~name_bytes

let later_packet d ~name_bytes ~src ~dst =
  let route = Disco.route_later d ~src ~dst in
  make d ~route ~with_ids:false ~name_bytes
