module Hash_space = Disco_hash.Hash_space
module Rng = Disco_util.Rng

type t = {
  nd : Nddisco.t;
  groups : Groups.t;
  neighbor_sets : int array array; (* per node: succ/pred/fingers, both ways *)
  fingers_out : int array array;
}

let u64_to_float h =
  if Int64.compare h 0L >= 0 then Int64.to_float h
  else Int64.to_float h +. 18446744073709551616.0

let build ~rng ?fingers (nd : Nddisco.t) groups =
  let fingers =
    match fingers with Some f -> f | None -> nd.params.Params.fingers
  in
  let n = Nddisco.n nd in
  let links = Array.make n [] in
  (* Indexed edge membership: an undirected edge {a,b} keyed as a single
     int, so the finger loop's duplicate check is O(1) instead of a linear
     scan of the neighbor list (quadratic in degree over a node's draws). *)
  let edge_set = Hashtbl.create (4 * n) in
  let edge_key a b = if a < b then (a * n) + b else (b * n) + a in
  let has_link a b = Hashtbl.mem edge_set (edge_key a b) in
  let add_link a b =
    if a <> b && not (has_link a b) then begin
      Hashtbl.add edge_set (edge_key a b) ();
      links.(a) <- b :: links.(a);
      links.(b) <- a :: links.(b)
    end
  in
  (* Groups are contiguous slices of the hash-sorted id array, so group
     membership is a (start, stop) range — no per-node member copies or
     re-sorts (those were quadratic-ish in group size across the n nodes).
     [hfloat] maps sorted positions to hash positions as floats once. *)
  let sorted = Groups.sorted_ids groups in
  let hfloat = Array.map (fun w -> u64_to_float nd.hashes.(w)) sorted in
  (* Successor/predecessor links in hash order within each group: linking
     each group's sorted chain gives exactly the in-group portion of the
     global circular ordering (groups are contiguous hash ranges). *)
  let chains = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let key = (Groups.bits_of groups v, Groups.group_id groups v) in
    if not (Hashtbl.mem chains key) then begin
      Hashtbl.add chains key ();
      let start, stop = Groups.member_range groups v in
      for i = start to stop - 2 do
        add_link sorted.(i) sorted.(i + 1)
      done
    end
  done;
  (* Fingers: log-uniform hash-distance draws within the group (Symphony). *)
  let fingers_of = Array.make n [] in
  for v = 0 to n - 1 do
    let start, stop = Groups.member_range groups v in
    let size = stop - start in
    if size > 3 then begin
      let hv = u64_to_float nd.hashes.(v) in
      let lo = hfloat.(start) in
      let hi = hfloat.(stop - 1) in
      let picked = ref 0 and attempts = ref 0 in
      while !picked < fingers && !attempts < 16 * fingers do
        incr attempts;
        let left_room = hv -. lo and right_room = hi -. hv in
        let side_right =
          if left_room <= 1.0 then true
          else if right_room <= 1.0 then false
          else Rng.bool rng
        in
        let room = if side_right then right_room else left_room in
        if room > 1.0 then begin
          let mag = exp (Rng.float rng (log room)) in
          let target = if side_right then hv +. mag else hv -. mag in
          (* Closest member hash to the target (the resolution-database
             query in the real protocol), by binary search over the sorted
             slice. Matches the old linear scan exactly: global minimum of
             |hash - target| over members other than v, ties resolved to
             the smallest sorted index. *)
          let p =
            let plo = ref start and phi = ref stop in
            while !plo < !phi do
              let mid = (!plo + !phi) / 2 in
              if hfloat.(mid) < target then plo := mid + 1 else phi := mid
            done;
            !plo
          in
          let best = ref (-1) and best_d = ref infinity in
          (* Nearest non-v member at or right of the crossing. *)
          let r = ref p in
          while !r < stop && sorted.(!r) = v do
            incr r
          done;
          if !r < stop then begin
            best := sorted.(!r);
            best_d := Float.abs (hfloat.(!r) -. target)
          end;
          (* Nearest non-v member left of the crossing, widened to the
             leftmost of its equal-hash run (the linear scan's first-seen
             tie rule). *)
          let l = ref (p - 1) in
          while !l >= start && sorted.(!l) = v do
            decr l
          done;
          if !l >= start then begin
            let d = Float.abs (hfloat.(!l) -. target) in
            if d <= !best_d then begin
              let ll = ref !l in
              let j = ref (!l - 1) in
              while !j >= start && hfloat.(!j) = hfloat.(!l) do
                if sorted.(!j) <> v then ll := !j;
                decr j
              done;
              best := sorted.(!ll);
              best_d := d
            end
          end;
          if !best >= 0 && not (has_link v !best) then begin
            add_link v !best;
            fingers_of.(v) <- !best :: fingers_of.(v);
            incr picked
          end
        end
      done
    end
  done;
  let neighbor_sets =
    Array.map
      (fun l ->
        let arr = Array.of_list (List.sort_uniq Int.compare l) in
        arr)
      links
  in
  { nd; groups; neighbor_sets; fingers_out = Array.map Array.of_list fingers_of }

let neighbors t v = t.neighbor_sets.(v)
let out_fingers t v = t.fingers_out.(v)
let degree t v = Array.length t.neighbor_sets.(v)

let mean_degree t =
  let n = Array.length t.neighbor_sets in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.neighbor_sets in
  float_of_int total /. float_of_int n

type dissemination = {
  messages : int;
  mean_hops : float;
  max_hops : int;
  reached : int;
  expected : int;
}

(* Flood one announcement from [src] under the directional rule; calls
   [on_reach w hops] on each first receipt and [on_send ()] per message. *)
let flood t ~src ~on_reach ~on_send =
  let nd = t.nd in
  let hops_of = Hashtbl.create 64 in
  Hashtbl.replace hops_of src 0;
  let q = Queue.create () in
  (* direction: +1 = announcements moving toward higher hashes. *)
  let forward u dir hops =
    Array.iter
      (fun x ->
        if Groups.believes t.groups u x && Groups.believes t.groups x u then begin
          let cmp = Hash_space.compare_unsigned nd.hashes.(x) nd.hashes.(u) in
          if (dir > 0 && cmp > 0) || (dir < 0 && cmp < 0) then begin
            on_send ();
            if not (Hashtbl.mem hops_of x) then begin
              Hashtbl.replace hops_of x (hops + 1);
              on_reach x (hops + 1);
              Queue.push (x, dir, hops + 1) q
            end
          end
        end)
      t.neighbor_sets.(u)
  in
  (* Origin seeds both directions. *)
  forward src 1 0;
  forward src (-1) 0;
  while not (Queue.is_empty q) do
    let u, dir, hops = Queue.pop q in
    forward u dir hops
  done;
  hops_of

let announcement_reaches t ~src ~dst =
  let reached = ref false in
  let hops_of =
    flood t ~src
      ~on_reach:(fun w _ -> if w = dst then reached := true)
      ~on_send:(fun () -> ())
  in
  ignore hops_of;
  !reached

let disseminate t =
  let n = Array.length t.neighbor_sets in
  let messages = ref 0 in
  let hop_sum = ref 0 and hop_count = ref 0 and max_hops = ref 0 in
  let reached = ref 0 and expected = ref 0 in
  for src = 0 to n - 1 do
    let storers = Groups.storers t.groups src in
    expected := !expected + max 0 (Array.length storers - 1);
    let hops_of =
      flood t ~src
        ~on_reach:(fun _ hops ->
          hop_sum := !hop_sum + hops;
          incr hop_count;
          if hops > !max_hops then max_hops := hops)
        ~on_send:(fun () -> incr messages)
    in
    Array.iter
      (fun w -> if w <> src && Hashtbl.mem hops_of w then incr reached)
      storers
  done;
  {
    messages = !messages;
    mean_hops =
      (if !hop_count = 0 then 0.0
       else float_of_int !hop_sum /. float_of_int !hop_count);
    max_hops = !max_hops;
    reached = !reached;
    expected = !expected;
  }
