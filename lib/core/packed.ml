module Grow = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }
  let len t = t.len
  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x

  let push t x =
    if t.len >= Array.length t.data then begin
      let bigger = Array.make (2 * Array.length t.data) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let clear t = t.len <- 0
  let to_array t = Array.sub t.data 0 t.len
end

module Csr = struct
  type t = { off : int array; data : int array }

  let of_rows rows =
    let n = Array.length rows in
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + Array.length rows.(i)
    done;
    let data = Array.make off.(n) 0 in
    for i = 0 to n - 1 do
      Array.blit rows.(i) 0 data off.(i) (Array.length rows.(i))
    done;
    { off; data }

  let of_fn ~n ~row_len ~fill =
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + row_len i
    done;
    let data = Array.make off.(n) 0 in
    for i = 0 to n - 1 do
      fill i data off.(i)
    done;
    { off; data }

  let of_parts ~off ~data =
    let n = Array.length off - 1 in
    if n < 0 || off.(0) <> 0 || off.(n) <> Array.length data then
      invalid_arg "Packed.Csr.of_parts";
    for i = 0 to n - 1 do
      if off.(i) > off.(i + 1) then invalid_arg "Packed.Csr.of_parts"
    done;
    { off; data }

  let rows t = Array.length t.off - 1
  let row_len t i = t.off.(i + 1) - t.off.(i)
  let row_off t i = t.off.(i)
  let get t i j = t.data.(t.off.(i) + j)
  let total t = Array.length t.data

  let iter_row t i f =
    for j = t.off.(i) to t.off.(i + 1) - 1 do
      f t.data.(j)
    done

  let sub_row t i = Array.sub t.data t.off.(i) (t.off.(i + 1) - t.off.(i))

  (* Lower bound in data.[lo,hi): first index holding a value >= x.
     Top-level and argument-threaded (no refs, no closure) so the row
     membership probe stays off the minor heap (lint L7), same shape as
     [Graph.slot_between]. *)
  let rec lower_bound data x lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if data.(mid) < x then lower_bound data x (mid + 1) hi
      else lower_bound data x lo mid

  let find_sorted t i x =
    let stop = t.off.(i + 1) in
    let idx = lower_bound t.data x t.off.(i) stop in
    if idx < stop && t.data.(idx) = x then idx - t.off.(i) else -1

  let byte_size t = 8 * (Array.length t.off + Array.length t.data)
end

module Fslab = struct
  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n ~init =
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    Bigarray.Array1.fill a init;
    a

  let len (t : t) = Bigarray.Array1.dim t
  let get (t : t) i = Bigarray.Array1.get t i
  let set (t : t) i x = Bigarray.Array1.set t i x
  let byte_size (t : t) = 8 * Bigarray.Array1.dim t
end

module Kv64 = struct
  type t = {
    keys : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
    vals : int array;
  }

  let of_pairs pairs =
    let sorted = Array.copy pairs in
    Array.sort
      (fun (a, va) (b, vb) ->
        let c = Int64.unsigned_compare a b in
        if c <> 0 then c else Int.compare va vb)
      sorted;
    let n = Array.length sorted in
    let keys = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
    let vals = Array.make n 0 in
    Array.iteri
      (fun i (k, v) ->
        Bigarray.Array1.set keys i k;
        vals.(i) <- v)
      sorted;
    { keys; vals }

  let length t = Array.length t.vals
  let key t i = Bigarray.Array1.get t.keys i
  let value t i = t.vals.(i)

  let rank_geq t probe =
    let lo = ref 0 and hi = ref (Array.length t.vals) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (Bigarray.Array1.get t.keys mid) probe < 0 then
        lo := mid + 1
      else hi := mid
    done;
    !lo

  let find t probe =
    let i = rank_geq t probe in
    if i < Array.length t.vals && Int64.equal (Bigarray.Array1.get t.keys i) probe
    then t.vals.(i)
    else -1

  let byte_size t = 16 * Array.length t.vals
end

module Bitvec = struct
  type t = { words : int array; width : int; per_word : int; mask : int; len : int }

  let create ~width ~len =
    if width < 1 || width > 30 then invalid_arg "Packed.Bitvec.create: width";
    let per_word = 62 / width in
    let nwords = (len + per_word - 1) / per_word in
    {
      words = Array.make (max 1 nwords) 0;
      width;
      per_word;
      mask = (1 lsl width) - 1;
      len;
    }

  let width t = t.width
  let len t = t.len

  let get t i =
    (t.words.(i / t.per_word) lsr (i mod t.per_word * t.width)) land t.mask

  let set t i x =
    let w = i / t.per_word and sh = i mod t.per_word * t.width in
    t.words.(w) <- t.words.(w) land lnot (t.mask lsl sh) lor ((x land t.mask) lsl sh)

  let byte_size t = 8 * Array.length t.words
end

module Othello = struct
  type t = {
    ma : Bitvec.t;
    mb : Bitvec.t;
    mask : int;
    seed : int;
    ca : int; (* per-(seed, side) multipliers, derived from [seed] *)
    cb : int;
    n : int;
  }

  (* The salt must pick the *multiplier*, not an xor offset: everything
     before the multiply is GF(2)-linear, so an xored-in salt shifts every
     key's pre-multiply state by the same constant and key pairs that
     collide on its low bits keep colliding under every retry (a cyclic
     draw would then survive all reseeds). A salt-dependent odd multiplier
     re-randomises the high product bits folded into the output. *)
  let mult_of_salt salt =
    (0x27D4EB2F165667C5 lxor (salt * 0x2545F4914F6CDD1D)) lor 1

  (* Multiply-xor mixer over the (hi, lo) halves; wraps mod 2^63, which is
     fine for mixing. Constants fit in OCaml's 63-bit native int. *)
  let mix c hi lo =
    let x = (hi * 0x9E3779B1) lxor ((lo * 0x85EBCA6B) lsl 1) in
    let x = (x lxor (x lsr 29)) * c in
    let x = x lxor (x lsr 32) in
    x land max_int

  let next_pow2 x =
    let p = ref 1 in
    while !p < x do
      p := !p * 2
    done;
    !p

  let check_duplicates hi lo =
    let n = Array.length hi in
    let idx = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Int.compare hi.(a) hi.(b) in
        if c <> 0 then c else Int.compare lo.(a) lo.(b))
      idx;
    for i = 1 to n - 1 do
      if hi.(idx.(i)) = hi.(idx.(i - 1)) && lo.(idx.(i)) = lo.(idx.(i - 1)) then
        invalid_arg "Packed.Othello.build: duplicate key"
    done

  (* Peel the bipartite key graph: repeatedly detach a degree-1 vertex and
     record (edge, free vertex); the xor trick recovers a degree-1 vertex's
     single remaining edge without storing adjacency lists. Assigning in
     reverse peel order makes A.(h_a k) lxor B.(h_b k) = value k hold for
     every key. Returns false on a cyclic draw (caller bumps the seed). *)
  let try_build ~seed ~m ~hi ~lo ~values ma mb =
    let n = Array.length hi in
    let mask = m - 1 in
    let ca = mult_of_salt ((2 * seed) + 1) and cb = mult_of_salt ((2 * seed) + 2) in
    let nv = 2 * m in
    let deg = Array.make nv 0 in
    let xe = Array.make nv 0 in
    let ea = Array.make (max 1 n) 0 in
    let eb = Array.make (max 1 n) 0 in
    for e = 0 to n - 1 do
      let a = mix ca hi.(e) lo.(e) land mask in
      let b = m + (mix cb hi.(e) lo.(e) land mask) in
      ea.(e) <- a;
      eb.(e) <- b;
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1;
      xe.(a) <- xe.(a) lxor e;
      xe.(b) <- xe.(b) lxor e
    done;
    let queue = Array.make nv 0 in
    let qlen = ref 0 in
    for v = 0 to nv - 1 do
      if deg.(v) = 1 then begin
        queue.(!qlen) <- v;
        incr qlen
      end
    done;
    let order_e = Array.make (max 1 n) 0 in
    let order_v = Array.make (max 1 n) 0 in
    let peeled = ref 0 in
    let qpos = ref 0 in
    while !qpos < !qlen do
      let v = queue.(!qpos) in
      incr qpos;
      if deg.(v) = 1 then begin
        let e = xe.(v) in
        order_e.(!peeled) <- e;
        order_v.(!peeled) <- v;
        incr peeled;
        let drop w =
          deg.(w) <- deg.(w) - 1;
          xe.(w) <- xe.(w) lxor e;
          if deg.(w) = 1 then begin
            queue.(!qlen) <- w;
            incr qlen
          end
        in
        drop ea.(e);
        drop eb.(e)
      end
    done;
    if !peeled < n then false
    else begin
      for i = n - 1 downto 0 do
        let e = order_e.(i) and v = order_v.(i) in
        let a = ea.(e) and b = eb.(e) in
        if v = a then Bitvec.set ma a (values.(e) lxor Bitvec.get mb (b - m))
        else Bitvec.set mb (v - m) (values.(e) lxor Bitvec.get ma a)
      done;
      true
    end

  let build ~hi ~lo ~values =
    let n = Array.length hi in
    if Array.length lo <> n || Array.length values <> n then
      invalid_arg "Packed.Othello.build: length mismatch";
    check_duplicates hi lo;
    let width =
      let vmax = Array.fold_left max 1 values in
      let w = ref 1 in
      while 1 lsl !w <= vmax do
        incr w
      done;
      if !w > 30 then invalid_arg "Packed.Othello.build: value width > 30";
      !w
    in
    let m = next_pow2 (max 2 (1 + (n * 4 / 3))) in
    let rec attempt seed =
      if seed > 100 then failwith "Packed.Othello.build: no acyclic draw";
      let ma = Bitvec.create ~width ~len:m in
      let mb = Bitvec.create ~width ~len:m in
      if try_build ~seed ~m ~hi ~lo ~values ma mb then
        {
          ma;
          mb;
          mask = m - 1;
          seed;
          ca = mult_of_salt ((2 * seed) + 1);
          cb = mult_of_salt ((2 * seed) + 2);
          n;
        }
      else attempt (seed + 1)
    in
    attempt 0

  let query t ~hi ~lo =
    Bitvec.get t.ma (mix t.ca hi lo land t.mask)
    lxor Bitvec.get t.mb (mix t.cb hi lo land t.mask)

  let length t = t.n
  let seed t = t.seed
  let byte_size t = Bitvec.byte_size t.ma + Bitvec.byte_size t.mb

  let bits_per_key t =
    if t.n = 0 then 0.0 else float_of_int (8 * byte_size t) /. float_of_int t.n
end

module Fenwick = struct
  type t = { tree : int array; n : int; msb : int; mutable sum : int }

  let create n =
    let msb = ref 1 in
    while !msb * 2 <= n do
      msb := !msb * 2
    done;
    { tree = Array.make (n + 1) 0; n; msb = (if n = 0 then 0 else !msb); sum = 0 }

  let add t i delta =
    if i < 0 || i >= t.n then invalid_arg "Packed.Fenwick.add";
    t.sum <- t.sum + delta;
    let j = ref (i + 1) in
    while !j <= t.n do
      t.tree.(!j) <- t.tree.(!j) + delta;
      j := !j + (!j land - !j)
    done;
    ()

  let prefix t i =
    let s = ref 0 and j = ref (min i t.n) in
    while !j > 0 do
      s := !s + t.tree.(!j);
      j := !j - (!j land - !j)
    done;
    !s

  let total t = t.sum

  let kth t k =
    if k < 0 || k >= t.sum then invalid_arg "Packed.Fenwick.kth";
    let pos = ref 0 and rem = ref (k + 1) and bit = ref t.msb in
    while !bit > 0 do
      let next = !pos + !bit in
      if next <= t.n && t.tree.(next) < !rem then begin
        pos := next;
        rem := !rem - t.tree.(next)
      end;
      bit := !bit / 2
    done;
    !pos

  let byte_size t = 8 * Array.length t.tree
end

let split64 x =
  ( Int64.to_int (Int64.shift_right_logical x 32),
    Int64.to_int (Int64.logand x 0xFFFFFFFFL) )
