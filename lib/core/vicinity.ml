module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra

type view = {
  members : int array;
  dists : float array;
  parents : int array;
  radius : float;
}

type t = {
  graph : Graph.t;
  k : int;
  cache : (int, view) Disco_util.Pool.Memo.t;
  mutable slots : view array option;
      (* direct-index face over the same view records, for compiled plans *)
}

let create graph ~k =
  if k < 0 then invalid_arg "Vicinity.create: k < 0";
  { graph; k; cache = Disco_util.Pool.Memo.create ~size:256 (); slots = None }

let k t = t.k

(* Each fill runs on its own workspace and copies the truncated run into
   fresh arrays, so cached views are workspace-independent; the memo makes
   the demand fill safe from pool tasks (every route consults V(v)). *)
let compute t v =
  (* k_closest includes the source; ask for one more and drop it. *)
  let ws = Dijkstra.make_workspace t.graph in
  let run = Dijkstra.k_closest ~ws t.graph v (t.k + 1) in
  let total = Array.length run.order in
  let size = max 0 (total - 1) in
  let members = Array.make size 0 in
  let dists = Array.make size 0.0 in
  let parents = Array.make size 0 in
  let j = ref 0 in
  let radius = ref 0.0 in
  for i = 0 to total - 1 do
    let w = run.order.(i) in
    if w <> v then begin
      members.(!j) <- w;
      dists.(!j) <- run.tdist.(i);
      parents.(!j) <- run.tparent.(i);
      if run.tdist.(i) > !radius then radius := run.tdist.(i);
      incr j
    end
  done;
  (* Sort the three parallel arrays by member id for binary search. *)
  let idx = Array.init size Fun.id in
  Array.sort (fun a b -> Int.compare members.(a) members.(b)) idx;
  {
    members = Array.map (fun i -> members.(i)) idx;
    dists = Array.map (fun i -> dists.(i)) idx;
    parents = Array.map (fun i -> parents.(i)) idx;
    radius = !radius;
  }

let view t v = Disco_util.Pool.Memo.find_or_add t.cache v (fun () -> compute t v)

let find_index vw w =
  let lo = ref 0 and hi = ref (Array.length vw.members - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Int.compare vw.members.(mid) w in
    if c = 0 then found := mid else if c < 0 then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let mem t v w = find_index (view t v) w <> None

let dist t v w =
  let vw = view t v in
  Option.map (fun i -> vw.dists.(i)) (find_index vw w)

let path t v w =
  let vw = view t v in
  match find_index vw w with
  | None -> None
  | Some i ->
      (* Walk predecessors back to v; every intermediate is in V(v). *)
      let rec back u acc =
        if u = v then Some (v :: acc)
        else begin
          match find_index vw u with
          | None -> None (* corrupt view; cannot happen for a valid run *)
          | Some j -> back vw.parents.(j) (u :: acc)
        end
      in
      back vw.parents.(i) [ w ]

let first_hop_count t v =
  let vw = view t v in
  let count = ref 0 in
  Array.iter (fun p -> if p = v then incr count) vw.parents;
  !count

let precompute_all t =
  for v = 0 to Graph.n t.graph - 1 do
    ignore (view t v : view)
  done

let cached_count t = Disco_util.Pool.Memo.length t.cache

(* The packed face: one flat array slot per node holding the same view
   record the memo serves, so a compiled plan indexes views directly
   (no mutex, no re-flattened CSR copy) while the typed face keeps its
   lazy fills. Forcing it computes every view once. *)
let slots t =
  match t.slots with
  | Some s -> s
  | None ->
      let s = Array.init (Graph.n t.graph) (fun v -> view t v) in
      t.slots <- Some s;
      s

let view_bytes vw = 8 * ((3 * Array.length vw.members) + 1)
