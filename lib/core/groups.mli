(** Sloppy groups (§4.4).

    Node [v] belongs to the group of nodes sharing the first [k] bits of
    [h(name)]. Every member of [G(v)] stores v's address, so any source
    can find {e some} member of the destination's group inside its own
    vicinity w.h.p. — that's what turns name-dependent routing into
    flat-name routing with constant stretch.

    The grouping is "sloppy": it depends on each node's estimate of n.
    With a single global estimate the groups are exact hash-prefix classes;
    {!build_with_estimates} models per-node estimation error, where nodes
    may disagree by one bit and only the intersection ("core group") is
    guaranteed to exchange announcements. *)

type t

val build : hashes:Disco_hash.Hash_space.id array -> bits:int -> t

val of_nddisco : Nddisco.t -> t
(** Group width from [Params.group_bits] at the true n. *)

val build_with_estimates :
  hashes:Disco_hash.Hash_space.id array -> n_estimates:int array -> t
(** Per-node group width from each node's own estimate of n. [knows t v w]
    then requires both nodes to consider each other group-mates. *)

val bits_of : t -> int -> int
(** The prefix width node [v] uses. *)

val group_id : t -> int -> int
(** [v]'s own group: its hash's leading [bits_of v] bits. *)

val believes : t -> int -> int -> bool
(** [believes t v w]: does [v] consider [w] a member of G(v)? (With exact
    n estimates this is symmetric; with erroneous estimates it may not
    be.) *)

val same_group : t -> int -> int -> bool
(** Mutual membership: [v] and [w] each believe the other is in their
    group — the condition for address state to flow between them. *)

val members : t -> int -> int array
(** Nodes that [v] believes are in G(v) (including [v]); ascending ids. *)

val sorted_ids : t -> int array
(** All node ids ordered by hash (unsigned, ties by id) — the packed face
    group slices point into. Do not mutate. *)

val member_range : t -> int -> int * int
(** [(start, stop)] bounds of v's group within {!sorted_ids}: the
    allocation-free form of {!members}, in hash order rather than id
    order. *)

val storers : t -> int -> int array
(** Nodes that hold [v]'s address: those mutually grouped with [v]. *)

val state_entries : t -> int -> int
(** Address-mapping entries at [v]: |{w : mutually grouped with v}| - 1. *)

val group_count : t -> int
(** Number of distinct (bits, prefix) groups present. *)
