module Graph = Disco_graph.Graph

type t = {
  landmarks : Landmarks.t;
  labels : int array; (* per node: allocated label *)
  range_hi : int array; (* per node: end (exclusive) of its subtree block *)
  children : int list array; (* landmark-forest children *)
  bits : int;
}

let build g (landmarks : Landmarks.t) =
  let n = Graph.n g in
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    let p = landmarks.Landmarks.forest_parent.(v) in
    if p >= 0 then children.(p) <- v :: children.(p)
  done;
  (* Subtree sizes, then DFS label allocation: node takes the first label
     of its block, children take consecutive sub-blocks sized by their
     subtrees (the "proportional partition" is exact here because the
     static simulator knows descendant counts precisely). *)
  let size = Array.make n 1 in
  let rec compute_size v =
    List.iter
      (fun c ->
        compute_size c;
        size.(v) <- size.(v) + size.(c))
      children.(v);
    ()
  in
  Array.iter (fun lm -> compute_size lm) landmarks.Landmarks.ids;
  let labels = Array.make n 0 in
  let range_hi = Array.make n 0 in
  let rec allocate v lo =
    labels.(v) <- lo;
    range_hi.(v) <- lo + size.(v);
    let next = ref (lo + 1) in
    List.iter
      (fun c ->
        allocate c !next;
        next := !next + size.(c))
      children.(v)
  in
  Array.iter (fun lm -> allocate lm 0) landmarks.Landmarks.ids;
  let bits =
    let rec go b cap = if cap >= n then b else go (b + 1) (2 * cap) in
    if n <= 1 then 1 else go 1 2
  in
  { landmarks; labels; range_hi; children; bits }

let bits t = t.bits
let label_of t v = t.labels.(v)

let route t v =
  let lm = t.landmarks.Landmarks.nearest.(v) in
  let target = t.labels.(v) in
  let rec walk u acc =
    if t.labels.(u) = target then List.rev (u :: acc)
    else begin
      match
        List.find_opt
          (fun c -> t.labels.(c) <= target && target < t.range_hi.(c))
          t.children.(u)
      with
      | Some c -> walk c (u :: acc)
      | None -> invalid_arg "Tree_address.route: label not in any child block"
    end
  in
  walk lm []

let encode_label t v =
  let writer = Disco_util.Bits.Writer.create () in
  Disco_util.Bits.Writer.put writer t.labels.(v) ~width:t.bits;
  Disco_util.Bits.Writer.to_bytes writer

let decode_label t ~landmark bytes =
  let reader = Disco_util.Bits.Reader.of_bytes bytes in
  let target = Disco_util.Bits.Reader.get reader ~width:t.bits in
  if target < t.labels.(landmark) || target >= t.range_hi.(landmark) then
    invalid_arg "Tree_address.decode_label: label outside landmark's block";
  let rec walk u =
    if t.labels.(u) = target then u
    else begin
      match
        List.find_opt
          (fun c -> t.labels.(c) <= target && target < t.range_hi.(c))
          t.children.(u)
      with
      | Some c -> walk c
      | None -> invalid_arg "Tree_address.decode_label: label not in any child block"
    end
  in
  walk landmark

let byte_size ~name_bytes t = name_bytes + ((t.bits + 7) / 8)
