module Graph = Disco_graph.Graph

(* All n addresses in four flat slabs instead of n boxed records: the
   landmark column, the explicit routes as one CSR, and the per-hop
   forwarding labels as one bytes blob with byte offsets and exact bit
   lengths. The compiled fast path walks [aroute] in place; the typed
   face rehydrates an [Address.t] on demand. *)
type addresses = {
  alm : int array;
  aroute : Packed.Csr.t;
  albl_off : int array;
  albl_bits : int array;
  albl : Bytes.t;
}

type t = {
  graph : Graph.t;
  params : Params.t;
  names : Name.t array;
  hashes : Disco_hash.Hash_space.id array;
  landmarks : Landmarks.t;
  vicinity : Vicinity.t;
  trees : Landmark_trees.t;
  addresses : addresses;
}

let build ?(params = Params.default) ?names ?landmark_ids ?(guarantee_coverage = false)
    ~rng graph =
  let n = Graph.n graph in
  let names = match names with Some a -> a | None -> Name.default_array n in
  if Array.length names <> n then invalid_arg "Nddisco.build: names size";
  let landmarks =
    match landmark_ids with
    | Some ids -> Landmarks.of_ids graph ids
    | None -> Landmarks.build ~rng ~params graph
  in
  let k = Params.vicinity_size params ~n in
  let landmarks =
    if guarantee_coverage then fst (Landmarks.ensure_coverage graph ~k landmarks)
    else landmarks
  in
  let vicinity = Vicinity.create graph ~k in
  let trees = Landmark_trees.create graph in
  let addresses =
    let alm = Array.make n 0 in
    let roff = Array.make (n + 1) 0 in
    let rdata = Packed.Grow.create ~capacity:(4 * n) () in
    let albl_off = Array.make (n + 1) 0 in
    let albl_bits = Array.make n 0 in
    let lbl = Buffer.create (2 * n) in
    for v = 0 to n - 1 do
      let a = Address.make graph ~route:(Landmarks.address_route landmarks v) in
      alm.(v) <- a.Address.landmark;
      Array.iter (Packed.Grow.push rdata) a.Address.route;
      roff.(v + 1) <- Packed.Grow.len rdata;
      Buffer.add_bytes lbl a.Address.labels;
      albl_off.(v + 1) <- Buffer.length lbl;
      albl_bits.(v) <- a.Address.label_bits
    done;
    {
      alm;
      aroute = Packed.Csr.of_parts ~off:roff ~data:(Packed.Grow.to_array rdata);
      albl_off;
      albl_bits;
      albl = Buffer.to_bytes lbl;
    }
  in
  {
    graph;
    params;
    names;
    hashes = Name.hash_array names;
    landmarks;
    vicinity;
    trees;
    addresses;
  }

let n t = Graph.n t.graph

let address t v =
  let a = t.addresses in
  Address.of_parts ~landmark:a.alm.(v)
    ~route:(Packed.Csr.sub_row a.aroute v)
    ~labels:(Bytes.sub a.albl a.albl_off.(v) (a.albl_off.(v + 1) - a.albl_off.(v)))
    ~label_bits:a.albl_bits.(v)

let address_landmark t v = t.addresses.alm.(v)

(* Route column of v's address as a list, straight off the CSR. *)
let address_route_list t v =
  let a = t.addresses in
  let acc = ref [] in
  for j = Packed.Csr.row_len a.aroute v - 1 downto 0 do
    acc := Packed.Csr.get a.aroute v j :: !acc
  done;
  !acc

let knows t u x =
  if u = x then Some [ u ]
  else if t.landmarks.is_landmark.(x) then
    Some (Landmark_trees.path_to t.trees u ~lm:x)
  else Vicinity.path t.vicinity u x

let raw_route t ~src ~dst =
  if src = dst then [ src ]
  else if t.landmarks.is_landmark.(dst) then
    Landmark_trees.path_to t.trees src ~lm:dst
  else begin
    match Vicinity.path t.vicinity src dst with
    | Some p -> p
    | None ->
        let lm = address_landmark t dst in
        let to_landmark = Landmark_trees.path_to t.trees src ~lm in
        let from_landmark = address_route_list t dst in
        (* Both segments contain the landmark; drop one copy. *)
        to_landmark @ List.tl from_landmark
  end

let shortcut_route t heuristic ~src ~dst =
  let fwd = raw_route t ~src ~dst in
  match fwd with
  | [ _ ] | [ _; _ ] -> fwd (* nothing to shorten *)
  | _ ->
      let rev =
        if Shortcut.uses_reverse heuristic then Some (raw_route t ~src:dst ~dst:src)
        else None
      in
      Shortcut.apply ~graph:t.graph ~knows:(knows t) heuristic ~fwd ~rev

let route_first ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  shortcut_route t heuristic ~src ~dst

let route_later ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  (* Handshake: if src is in V(dst), dst reveals the exact shortest path
     (the reverse of its vicinity path to src). *)
  match Vicinity.path t.vicinity dst src with
  | Some p when src <> dst -> List.rev p
  | _ -> shortcut_route t heuristic ~src ~dst

(* Exact in-memory cost of v's slice of the packed address slabs: landmark
   and bit-length columns, the two offset columns, the route row, and the
   label bytes. *)
let address_slab_bytes t v =
  let a = t.addresses in
  32 + (8 * Packed.Csr.row_len a.aroute v) + (a.albl_off.(v + 1) - a.albl_off.(v))

(* Exact per-node state from the packed slabs: the vicinity view arrays,
   one (parent, dist) slot in every landmark tree, and the node's own
   address. The Õ(√n) quantity the scaling sweep fits. *)
let packed_state_bytes t v =
  let lms = Landmarks.count t.landmarks in
  float_of_int
    (Vicinity.view_bytes (Vicinity.view t.vicinity v)
    + (16 * lms)
    + address_slab_bytes t v)

type state_detail = {
  vicinity_entries : int;
  landmark_entries : int;
  label_mappings : int;
  resolution_entries : int;
}

let state_entries ?(resolution_entries = 0) t v =
  let vicinity_entries = Vicinity.k t.vicinity in
  let landmark_entries = Landmarks.count t.landmarks in
  (* Forwarding-label mappings: one per neighbor that actually carries a
     shortest path toward a landmark or vicinity member (Theorem 2). We
     bound it by degree and by the routes available. *)
  let label_mappings =
    min (Graph.degree t.graph v) (vicinity_entries + landmark_entries)
  in
  { vicinity_entries; landmark_entries; label_mappings; resolution_entries }

let total_entries d =
  d.vicinity_entries + d.landmark_entries + d.label_mappings + d.resolution_entries
