(** Landmark-based name resolution (§4.3).

    A consistent-hashing database over the globally-known landmark set maps
    every node's name to its current address. Node [v] inserts
    [(name_v, address_v)] at the landmark owning key [h(name_v)]; anyone
    can query it. Resolution alone yields unbounded first-packet stretch —
    the query may cross the world — which is why Disco adds sloppy groups;
    but it remains (a) NDDisco's name lookup, (b) the bootstrap oracle for
    overlay fingers, and (c) Disco's fallback when group state is
    incomplete. *)

type t

val build : Nddisco.t -> t
(** Ring over the landmark set, with [params.resolution_replicas] virtual
    points per landmark. *)

val owner : t -> Name.t -> int
(** The landmark storing the given name's address. *)

val owners_by_node : t -> int array
(** [owner] applied to every node's name, computed once and cached. *)

val entries_per_landmark : t -> (int * int) list
(** Resolution-database load: for each landmark, how many of the n names
    it stores (Theorem 2: O(sqrt(n log n)) w.h.p. with one hash;
    multiple replicas flatten it). *)

val entries_at : t -> int -> int
(** Load at one node (0 for non-landmarks). *)

val resolve_then_route : ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list
(** The first-packet route when resolution is the only name service, as in
    NDDisco-with-resolution and S4: travel to the owner landmark, learn the
    address, continue to the destination ([s ~> l* ~> l_t ~> t], shortcut
    along the way). This is the route whose stretch is unbounded. *)

val find_closest_hash : t -> Disco_hash.Hash_space.id -> int
(** The node (any node, not only landmarks) whose name hash is circularly
    closest to the key — the database query Disco's overlay uses to pick
    fingers (§4.4): the resolution DB can answer it because it stores every
    name. *)

val fib : t -> Packed.Othello.t
(** The succinct owner table: an Othello map from name-hash halves to the
    owning landmark, built on demand from the ring. Lookup is two bit-array
    probes and an xor — the FIB the compiled fast path queries instead of a
    materialised per-node owner array. Agrees with [owners_by_node]. *)

val byte_size : t -> int
(** Exact bytes of the packed ring, the sorted hash slab, and the Othello
    FIB (when built). *)

val ring_byte_size : t -> int
(** Exact bytes of just the consistent-hash ring (every node stores it). *)
