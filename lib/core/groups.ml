module Hash_space = Disco_hash.Hash_space

type t = {
  hashes : Hash_space.id array;
  bits : int array; (* per node *)
  sorted : int array; (* node ids sorted by hash (unsigned) *)
}

let make hashes bits =
  let n = Array.length hashes in
  let sorted = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Hash_space.compare_unsigned hashes.(a) hashes.(b) in
      if c <> 0 then c else Int.compare a b)
    sorted;
  { hashes; bits; sorted }

let build ~hashes ~bits =
  if bits < 0 || bits > 30 then invalid_arg "Groups.build: bits";
  make hashes (Array.make (Array.length hashes) bits)

let of_nddisco (nd : Nddisco.t) =
  build ~hashes:nd.hashes ~bits:(Params.group_bits ~n:(Nddisco.n nd))

let build_with_estimates ~hashes ~n_estimates =
  if Array.length hashes <> Array.length n_estimates then
    invalid_arg "Groups.build_with_estimates: size mismatch";
  let bits =
    Array.map (fun est -> Hash_space.group_size_bits ~n_estimate:est) n_estimates
  in
  make hashes bits

let bits_of t v = t.bits.(v)
let group_id t v = Hash_space.prefix_bits t.hashes.(v) ~width:t.bits.(v)

let believes_in_group t v w =
  (* Does v think w is in G(v)? *)
  t.bits.(v) = 0
  || Hash_space.prefix_bits t.hashes.(w) ~width:t.bits.(v) = group_id t v

let believes = believes_in_group
let same_group t v w = believes_in_group t v w && believes_in_group t w v

(* Range of [sorted] whose hash prefix (width bits) equals [prefix]. *)
let prefix_range t ~width ~prefix =
  let n = Array.length t.sorted in
  if width = 0 then (0, n)
  else begin
    let lo_key = Int64.shift_left (Int64.of_int prefix) (64 - width) in
    let search key =
      (* first index with hash >= key *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Hash_space.compare_unsigned t.hashes.(t.sorted.(mid)) key < 0 then
          lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    let start = search lo_key in
    let stop =
      if prefix + 1 >= 1 lsl width then n
      else search (Int64.shift_left (Int64.of_int (prefix + 1)) (64 - width))
    in
    (start, stop)
  end

let members t v =
  let start, stop = prefix_range t ~width:t.bits.(v) ~prefix:(group_id t v) in
  let out = Array.sub t.sorted start (stop - start) in
  Array.sort Int.compare out;
  out

let sorted_ids t = t.sorted

let member_range t v =
  prefix_range t ~width:t.bits.(v) ~prefix:(group_id t v)

let storers t v =
  members t v |> Array.to_list
  |> List.filter (fun w -> believes_in_group t w v)
  |> Array.of_list

let state_entries t v =
  (* Addresses stored at v: nodes w that v accepts into its group and that
     announce towards v (mutual belief), minus v itself. *)
  let start, stop = prefix_range t ~width:t.bits.(v) ~prefix:(group_id t v) in
  let count = ref 0 in
  for i = start to stop - 1 do
    let w = t.sorted.(i) in
    if w <> v && believes_in_group t w v then incr count
  done;
  !count

let group_count t =
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun v _ -> Hashtbl.replace seen (t.bits.(v), group_id t v) ())
    t.hashes;
  Hashtbl.length seen
