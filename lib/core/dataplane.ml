module Graph = Disco_graph.Graph
module Bits = Disco_util.Bits

type reason =
  | Ttl_expired
  | Loop_detected
  | No_route
  | Protocol_error of string

type phase =
  | Seek of { tried_proxy : bool }
  | Steer of { tried_proxy : bool }
  | Carry
  | Greedy
  | Fallback

type header = {
  dst : int;
  phase : phase;
  labels : int list;
  waypoint : int;
  anchor : int;
  fbound : float;
  vbound : Disco_hash.Hash_space.id;
  extra_bytes : int;
}

let plain ~dst phase =
  {
    dst;
    phase;
    labels = [];
    waypoint = -1;
    anchor = -1;
    fbound = infinity;
    vbound = Int64.minus_one;
    extra_bytes = 0;
  }

type action =
  | Delivered
  | Dropped of reason
  | Direct_route
  | Group_store_hit
  | To_group_proxy of int
  | Resolution_via of int
  | Shortcut_divert
  | Address_rewrite
  | Directory_detour of int
  | Toward_pivot of int
  | Label_hop
  | Hop of int
  | Greedy_commit of int
  | Fallback_descent

let reason_to_string = function
  | Ttl_expired -> "ttl expired"
  | Loop_detected -> "loop detected"
  | No_route -> "no route"
  | Protocol_error what -> "protocol error: " ^ what

let action_to_string = function
  | Delivered -> "deliver"
  | Dropped r -> "drop: " ^ reason_to_string r
  | Direct_route -> "direct route in local tables"
  | Group_store_hit -> "group store hit: rewriting with destination address"
  | To_group_proxy w -> Printf.sprintf "forwarding to group proxy %d" w
  | Resolution_via lm -> Printf.sprintf "resolution fallback via landmark %d" lm
  | Shortcut_divert -> "to-destination shortcut"
  | Address_rewrite -> "address learned: explicit label route"
  | Directory_detour r -> Printf.sprintf "directory detour via %d" r
  | Toward_pivot w -> Printf.sprintf "toward routing pivot %d" w
  | Label_hop -> "label hop"
  | Hop v -> Printf.sprintf "forward to %d" v
  | Greedy_commit e -> Printf.sprintf "greedy commit toward %d" e
  | Fallback_descent -> "fallback: descending beacon tree"

type decision =
  | Forward of int
  | Rewrite of header * int * action
  | Deliver
  | Drop of reason

type step = { at : int; action : action }

type trace = {
  path : int list;
  steps : step list;
  delivered : bool;
  dropped : reason option;
  hops : int;
  rewrites : int;
  header_bytes_max : int;
  header_bytes_total : int;
}

(* Hoisted out of [byte_size] so the per-hop byte accounting does not
   allocate a fresh closure per call (lint L7). *)
let rec label_bits_from g u bits = function
  | [] -> bits
  | v :: rest -> label_bits_from g v (bits + Bits.width_for (Graph.degree g u)) rest

let byte_size ?(name_bytes = 20) g ~at h =
  let label_bits = label_bits_from g at 0 h.labels in
  let id_bits = if Graph.n g <= 1 then 1 else Bits.width_for (Graph.n g) in
  let bits =
    (8 * name_bytes) + label_bits
    + (if h.waypoint >= 0 then id_bits else 0)
    + (if h.anchor >= 0 then id_bits else 0)
    + (if Float.is_finite h.fbound then 32 else 0)
    + (if Int64.equal h.vbound Int64.minus_one then 0 else 64)
    + (8 * h.extra_bytes)
  in
  (bits + 7) / 8

(* Loop detection keys on the exact in-flight state: node id plus every
   header field, rendered into a string (typed, deterministic — no
   polymorphic hashing of variants). Revisiting a node with a different
   header is legal; an identical state can never progress under a
   deterministic forward function. *)
let phase_key = function
  | Seek { tried_proxy } -> if tried_proxy then "S1" else "S0"
  | Steer { tried_proxy } -> if tried_proxy then "T1" else "T0"
  | Carry -> "C"
  | Greedy -> "G"
  | Fallback -> "F"

(* Renders the key into a caller-owned buffer: [walk] keeps one buffer per
   walk, so a hop pays one short key string (for the seen-table) instead of
   the former Printf.sprintf + List.map + String.concat chain.  The float
   bound is keyed by its bit pattern, which is exact. *)
let add_int_field buf v =
  Buffer.add_string buf (string_of_int v);
  Buffer.add_char buf ';'

let state_key_into buf at h =
  Buffer.clear buf;
  add_int_field buf at;
  Buffer.add_string buf (phase_key h.phase);
  Buffer.add_char buf ';';
  add_int_field buf h.waypoint;
  add_int_field buf h.anchor;
  Buffer.add_string buf (Int64.to_string (Int64.bits_of_float h.fbound));
  Buffer.add_char buf ';';
  Buffer.add_string buf (Int64.to_string h.vbound);
  Buffer.add_char buf ';';
  add_int_field buf h.extra_bytes;
  List.iter (fun l -> add_int_field buf l) h.labels;
  Buffer.contents buf

(* [walk] is hot (the manifest's hop loop) but it is the *instrumented*
   reference walker: it exists to produce a trace, so the trace recording
   itself (step list, path list, seen-table) is the product and carries
   waivers.  What the typed pass holds allocation-free is the per-hop
   decision machinery: byte accounting (byte_size), the link-membership
   check (Graph.has_edge), and the degree/width lookups.  The per-walk
   setup (six closures, five refs, one table, one buffer) is O(1) per
   walk, not per hop, and is waived as such below.  The planned zero-alloc
   walker (ROADMAP) will drop the trace and keep the same forward
   contract. *)
let walk ?ttl ?name_bytes g ~forward ~src header =
  let n = Graph.n g in
  let ttl0 = match ttl with Some t -> t | None -> 4 * n in
  (* disco-lint: allow L7 per-walk trace accumulators, not per-hop *)
  let steps = ref [] and path = ref [ src ] in
  (* disco-lint: allow L7 per-walk counters *)
  let rewrites = ref 0 in
  (* disco-lint: allow L7 per-walk counters *)
  let bytes_max = ref 0 and bytes_total = ref 0 in
  (* disco-lint: allow L7 per-walk loop-detection table and key buffer *)
  let seen = Hashtbl.create 64 in
  (* disco-lint: allow L7 per-walk loop-detection table and key buffer *)
  let keybuf = Buffer.create 48 in
  (* disco-lint: allow L7 per-walk closure; the step record and cons are the trace product *)
  let log at action = steps := { at; action } :: !steps in
  (* disco-lint: allow L7 per-walk closure over the byte counters *)
  let account at h =
    let b = byte_size ?name_bytes g ~at h in
    if b > !bytes_max then bytes_max := b;
    bytes_total := !bytes_total + b
  in
  (* disco-lint: allow L7 per-walk closure; builds the result trace once *)
  let finish ~delivered ~dropped =
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    let p = List.rev !path in
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    let s = List.rev !steps in
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    {
      path = p;
      steps = s;
      delivered;
      dropped;
      hops = List.length p - 1;
      rewrites = !rewrites;
      header_bytes_max = !bytes_max;
      header_bytes_total = !bytes_total;
    }
  in
  (* disco-lint: allow L7 per-walk closure; drop path, executed at most once *)
  let fail u r =
    log u (Dropped r);
    finish ~delivered:false ~dropped:(Some r)
  in
  (* disco-lint: allow L7 per-walk closure pair (go/hop) driving the hop loop *)
  let rec go u h ttl =
    if ttl = 0 then fail u Ttl_expired
    else begin
      (* disco-lint: allow L7 loop-detection key: one short string per hop into the seen-table *)
      let key = state_key_into keybuf u h in
      if Hashtbl.mem seen key then fail u Loop_detected
      else begin
        (* disco-lint: allow L7 seen-table insert: loop detection is the walker's contract *)
        Hashtbl.add seen key ();
        (* disco-lint: allow L7 the scheme's forward is the function under test; its own hot body is checked separately *)
        match forward h ~at:u with
        | Deliver ->
            if u = h.dst then begin
              log u Delivered;
              finish ~delivered:true ~dropped:None
            end
            else fail u (Protocol_error "deliver away from the destination")
        | Drop r -> fail u r
        | Forward next ->
            log u (Hop next);
            hop u h next ttl
        | Rewrite (h', next, why) ->
            log u why;
            incr rewrites;
            hop u h' next ttl
      end
    end
  (* disco-lint: allow L7 per-walk closure pair (go/hop) driving the hop loop *)
  and hop u h next ttl =
    (* The one mechanical check of "forward consults only local state":
       whatever the node decided, the packet can only cross a real link.
       has_edge is the allocation-free membership probe (L7): the former
       edge_weight match boxed a float option on every hop. *)
    if not (Graph.has_edge g u next) then
      (* disco-lint: allow L7 protocol-violation diagnostic on the drop path *)
      fail u (Protocol_error (Printf.sprintf "%d is not a neighbor" next))
    else begin
      account u h;
      (* disco-lint: allow L7 path cons is the trace product *)
      path := next :: !path;
      go next h (ttl - 1)
    end
  in
  (* The source's initial header is on the wire for hop one; account for
     it even on a source-delivered packet so byte telemetry never reads
     zero for a walked packet. *)
  if src = header.dst then begin
    account src header;
    (* disco-lint: allow L7 the scheme's forward is the function under test; its own hot body is checked separately *)
    match forward header ~at:src with
    | Deliver ->
        log src Delivered;
        finish ~delivered:true ~dropped:None
    | Drop r -> fail src r
    | Forward _ | Rewrite _ ->
        fail src (Protocol_error "forwarding away from the destination")
  end
  else go src header ttl0

(* --- zero-alloc fast path ------------------------------------------------

   The batched walker: headers live pre-encoded in reusable [Bytes], the
   in-flight state lives in one preallocated {!packet} scratch record, and
   each scheme supplies a *compiled forward* ([packet -> int -> int]) whose
   hop loop is pure array indexing.  The typed {!walk} above stays the
   oracle — disco-check's fast≡typed differential holds the two walkers to
   the same hop sequence and verdict — while this path answers the
   throughput question ({!fast_walk} plus [bench --figure throughput]).

   Everything below the setup-time encoders is on the L7 hot manifest:
   no closures, no tuples, no options, no boxed floats in any per-hop
   body.  Floats travel through the caller-owned [pfs] scratch (a flat
   float array, so loads and stores are unboxed). *)

(* Phase as a small int, mirroring [phase] exactly (the [tried_proxy] bit
   is the low bit of the seek/steer pair). *)
let mode_seek = 0
let mode_seek_tried = 1
let mode_steer = 2
let mode_steer_tried = 3
let mode_carry = 4
let mode_greedy = 5
let mode_fallback = 6

let mode_of_phase = function
  | Seek { tried_proxy } -> if tried_proxy then mode_seek_tried else mode_seek
  | Steer { tried_proxy } -> if tried_proxy then mode_steer_tried else mode_steer
  | Carry -> mode_carry
  | Greedy -> mode_greedy
  | Fallback -> mode_fallback

let phase_of_mode = function
  | 0 -> Seek { tried_proxy = false }
  | 1 -> Seek { tried_proxy = true }
  | 2 -> Steer { tried_proxy = false }
  | 3 -> Steer { tried_proxy = true }
  | 4 -> Carry
  | 5 -> Greedy
  | 6 -> Fallback
  | m -> invalid_arg (Printf.sprintf "Dataplane.phase_of_mode: %d" m)

(* Verdicts of a compiled forward: a non-negative result is the next hop;
   the negatives are the terminal outcomes. *)
let fast_deliver = -1
let fast_no_route = -2
let fast_protocol = -3

(* Why a fast walk ended, in [pdrop] ([drop_none] while delivered/running). *)
let drop_none = 0
let drop_ttl = 1
let drop_no_route = 2
let drop_protocol = 3

let drop_to_string = function
  | 0 -> "none"
  | 1 -> "ttl expired"
  | 2 -> "no route"
  | 3 -> "protocol error"
  | d -> Printf.sprintf "unknown drop %d" d

(* The in-flight packet: one mutable scratch record reused across every
   flow of a batch.  [proute] holds the remaining explicit route as node
   ids ([proute_pos..proute_end)); [pfs] is float scratch with the BVR
   fallback bound pinned at slot 0; [pis] is int scratch; the VRR virtual
   bound travels as two unsigned 32-bit halves so no Int64 is ever boxed
   on the hop loop. *)
type packet = {
  mutable pdst : int;
  mutable pmode : int;
  mutable pway : int;
  mutable panchor : int;
  mutable pvb_hi : int;
  mutable pvb_lo : int;
  mutable pextra : int;
  mutable proute_pos : int;
  mutable proute_end : int;
  mutable phops : int;
  mutable pdelivered : bool;
  mutable pdrop : int;
  proute : int array;
  pfs : float array;
  pis : int array;
}

(* Scratch slots, by convention across the compiled forwards. *)
let fs_fbound = 0

let packet_create g =
  {
    pdst = -1;
    pmode = mode_carry;
    pway = -1;
    panchor = -1;
    pvb_hi = 0xFFFFFFFF;
    pvb_lo = 0xFFFFFFFF;
    pextra = 0;
    proute_pos = 0;
    proute_end = 0;
    phops = 0;
    pdelivered = false;
    pdrop = drop_none;
    proute = Array.make ((2 * Graph.n g) + 8) (-1);
    pfs = Array.make 8 0.0;
    pis = Array.make 8 0;
  }

(* --- remaining-route helpers (hot, called by the compiled forwards) --- *)

let route_len pkt = pkt.proute_end - pkt.proute_pos

let route_next pkt =
  let v = pkt.proute.(pkt.proute_pos) in
  pkt.proute_pos <- pkt.proute_pos + 1;
  v

(* Ascent fill: the labels of tree path [u ~> root] where [parents] points
   rootward ([parents.(x)] is x's next hop toward [root]).  Writes
   [parents.(u); ...; root] from slot 0, sets the route window, returns
   the label count (0 when [u = root]); -1 on a broken parent chain. *)
let rec fill_up_loop pkt parents x i root =
  if x = root then begin
    pkt.proute_pos <- 0;
    pkt.proute_end <- i;
    i
  end
  else
    let p = parents.(x) in
    if p < 0 then -1
    else begin
      pkt.proute.(i) <- p;
      fill_up_loop pkt parents p (i + 1) root
    end

let route_fill_up pkt parents u root = fill_up_loop pkt parents u 0 root

(* Does the parent chain from [u] actually reach [root]?  The fills above
   scribble over [proute] as they walk, so a caller diverting away from a
   live route must probe the chain first and only fill on success. *)
let rec route_chain_ok parents u root =
  u = root || (parents.(u) >= 0 && route_chain_ok parents parents.(u) root)

(* Descent fill: the labels of tree path [root ~> v] where [parents]
   points rootward.  Writes [child-of-root; ...; v] ending at the top of
   [proute], sets the route window, returns the label count (0 when
   [v = root]); -1 on a broken chain. *)
let rec fill_down_loop pkt parents x i root =
  if x = root then begin
    pkt.proute_pos <- i;
    pkt.proute_end <- Array.length pkt.proute;
    Array.length pkt.proute - i
  end
  else if parents.(x) < 0 then -1
  else begin
    pkt.proute.(i - 1) <- x;
    fill_down_loop pkt parents parents.(x) (i - 1) root
  end

let route_fill_down pkt parents root v =
  fill_down_loop pkt parents v (Array.length pkt.proute) root

(* --- wire codec -----------------------------------------------------------

   Fixed 33-byte header, then the explicit route as packed neighbor-rank
   bits (§4.2's forwarding labels, the same accounting as {!byte_size}):

     [0]      mode
     [1..4]   dst          (u32 BE)
     [5..8]   waypoint + 1 (u32 BE; 0 = none)
     [9..12]  anchor + 1   (u32 BE; 0 = none)
     [13..20] fbound       (IEEE-754 bits, hi then lo u32)
     [21..28] vbound       (unsigned hi then lo u32)
     [29..30] extra_bytes  (u16 BE)
     [31..32] label count  (u16 BE)
     [33..]   labels, MSB-first; each hop at a degree-d node takes
              [Bits.width_for d] bits

   Encoding runs at setup time and may allocate; {!decode_into} is the
   per-flow hot entry and is allocation-free. *)

let header_fixed_bytes = 33

let encoded_size g ~src h =
  header_fixed_bytes + ((label_bits_from g src 0 h.labels + 7) / 8)

let set_u8 buf pos v = Bytes.set buf pos (Char.chr (v land 0xff))

let set_u32 buf pos v =
  set_u8 buf pos (v lsr 24);
  set_u8 buf (pos + 1) (v lsr 16);
  set_u8 buf (pos + 2) (v lsr 8);
  set_u8 buf (pos + 3) v

let set_bit buf ~base bit v =
  if v <> 0 then
    let byte = base + (bit / 8) and off = bit mod 8 in
    Bytes.set buf byte
      (Char.chr (Char.code (Bytes.get buf byte) lor (0x80 lsr off)))

let encode_header g ~src h buf ~pos =
  let size = encoded_size g ~src h in
  if pos + size > Bytes.length buf then invalid_arg "Dataplane.encode_header";
  Bytes.fill buf pos size '\000';
  set_u8 buf pos (mode_of_phase h.phase);
  set_u32 buf (pos + 1) h.dst;
  set_u32 buf (pos + 5) (h.waypoint + 1);
  set_u32 buf (pos + 9) (h.anchor + 1);
  let fb = Int64.bits_of_float h.fbound in
  set_u32 buf (pos + 13) (Int64.to_int (Int64.shift_right_logical fb 32));
  set_u32 buf (pos + 17) (Int64.to_int (Int64.logand fb 0xFFFFFFFFL));
  set_u32 buf (pos + 21)
    (Int64.to_int (Int64.shift_right_logical h.vbound 32));
  set_u32 buf (pos + 25) (Int64.to_int (Int64.logand h.vbound 0xFFFFFFFFL));
  set_u8 buf (pos + 29) (h.extra_bytes lsr 8);
  set_u8 buf (pos + 30) h.extra_bytes;
  let count = List.length h.labels in
  if count > 0xffff then invalid_arg "Dataplane.encode_header: route too long";
  set_u8 buf (pos + 31) (count lsr 8);
  set_u8 buf (pos + 32) count;
  let base = pos + header_fixed_bytes in
  let bit = ref 0 in
  let at = ref src in
  List.iter
    (fun v ->
      let w = Bits.width_for (Graph.degree g !at) in
      let rank =
        match Graph.neighbor_rank g !at v with
        | Some r -> r
        | None ->
            invalid_arg
              (Printf.sprintf "Dataplane.encode_header: %d not a neighbor of %d"
                 v !at)
      in
      for i = w - 1 downto 0 do
        set_bit buf ~base !bit ((rank lsr i) land 1);
        incr bit
      done;
      at := v)
    h.labels;
  size

(* --- alloc-free decoding (hot) ------------------------------------- *)

let get_u8 buf pos = Char.code (Bytes.get buf pos)

let get_u32 buf pos =
  (get_u8 buf pos lsl 24)
  lor (get_u8 buf (pos + 1) lsl 16)
  lor (get_u8 buf (pos + 2) lsl 8)
  lor get_u8 buf (pos + 3)

let rec read_bits buf ~base bit width acc =
  if width = 0 then acc
  else
    let byte = base + (bit / 8) and off = bit mod 8 in
    let b = (Char.code (Bytes.get buf byte) lsr (7 - off)) land 1 in
    read_bits buf ~base (bit + 1) (width - 1) ((acc lsl 1) lor b)

(* Exact IEEE-754 double reassembly from two unsigned 32-bit halves with
   no Int64 box: sign/exponent/mantissa arithmetic plus one [ldexp]
   (an unboxed [@@noalloc] external).  Inlined so the float result flows
   unboxed into the caller's float-array store — as an outlined call the
   boxed return costs 2 minor words per decoded packet. *)
let[@inline always] float_of_bits_hl hi lo =
  let sign = if hi land 0x80000000 <> 0 then -1.0 else 1.0 in
  let e = (hi lsr 20) land 0x7ff in
  let m = ((hi land 0xfffff) lsl 32) lor lo in
  if e = 0x7ff then if m = 0 then sign *. infinity else nan
  else if e = 0 then sign *. ldexp (float_of_int m) (-1074)
  else sign *. ldexp (float_of_int (m + 0x10000000000000)) (e - 1075)

let rec decode_labels g pkt buf ~base bit u i count =
  if i < count then begin
    let w = Bits.width_for (Graph.degree g u) in
    let r = read_bits buf ~base bit w 0 in
    let v = Graph.neighbor_at g u r in
    pkt.proute.(i) <- v;
    decode_labels g pkt buf ~base (bit + w) v (i + 1) count
  end

(* Per-flow hot entry: rehydrate the scratch packet from the wire bytes.
   [src] resolves the neighbor-rank labels back to node ids. *)
let decode_into g pkt buf ~pos ~src =
  pkt.pmode <- get_u8 buf pos;
  pkt.pdst <- get_u32 buf (pos + 1);
  pkt.pway <- get_u32 buf (pos + 5) - 1;
  pkt.panchor <- get_u32 buf (pos + 9) - 1;
  pkt.pfs.(fs_fbound) <- float_of_bits_hl (get_u32 buf (pos + 13))
      (get_u32 buf (pos + 17));
  pkt.pvb_hi <- get_u32 buf (pos + 21);
  pkt.pvb_lo <- get_u32 buf (pos + 25);
  pkt.pextra <- (get_u8 buf (pos + 29) lsl 8) lor get_u8 buf (pos + 30);
  let count = (get_u8 buf (pos + 31) lsl 8) lor get_u8 buf (pos + 32) in
  pkt.proute_pos <- 0;
  pkt.proute_end <- count;
  decode_labels g pkt buf ~base:(pos + header_fixed_bytes) 0 src 0 count;
  pkt.phops <- 0;
  pkt.pdelivered <- false;
  pkt.pdrop <- drop_none

(* Typed reconstruction, for the codec round-trip tests (setup-time). *)
let decode_header g ~src buf ~pos =
  let count = (get_u8 buf (pos + 31) lsl 8) lor get_u8 buf (pos + 32) in
  let base = pos + header_fixed_bytes in
  let rec labels_from bit u i =
    if i >= count then []
    else
      let w = Bits.width_for (Graph.degree g u) in
      let r = read_bits buf ~base bit w 0 in
      let v = Graph.neighbor_at g u r in
      v :: labels_from (bit + w) v (i + 1)
  in
  let labels = labels_from 0 src 0 in
  let u32_64 p =
    Int64.logor
      (Int64.shift_left (Int64.of_int (get_u32 buf p)) 32)
      (Int64.of_int (get_u32 buf (p + 4)))
  in
  {
    dst = get_u32 buf (pos + 1);
    phase = phase_of_mode (get_u8 buf pos);
    labels;
    waypoint = get_u32 buf (pos + 5) - 1;
    anchor = get_u32 buf (pos + 9) - 1;
    fbound = Int64.float_of_bits (u32_64 (pos + 13));
    vbound = u32_64 (pos + 21);
    extra_bytes = (get_u8 buf (pos + 29) lsl 8) lor get_u8 buf (pos + 30);
  }

(* Load the scratch packet straight from a typed header (no wire bytes);
   the differential uses it to cross-check encode/decode against direct
   loading.  Setup-time. *)
let load_packet pkt h =
  pkt.pmode <- mode_of_phase h.phase;
  pkt.pdst <- h.dst;
  pkt.pway <- h.waypoint;
  pkt.panchor <- h.anchor;
  pkt.pfs.(fs_fbound) <- h.fbound;
  pkt.pvb_hi <- Int64.to_int (Int64.shift_right_logical h.vbound 32);
  pkt.pvb_lo <- Int64.to_int (Int64.logand h.vbound 0xFFFFFFFFL);
  pkt.pextra <- h.extra_bytes;
  pkt.proute_pos <- 0;
  pkt.proute_end <- List.length h.labels;
  List.iteri (fun i v -> pkt.proute.(i) <- v) h.labels;
  pkt.phops <- 0;
  pkt.pdelivered <- false;
  pkt.pdrop <- drop_none

(* --- the fast walker (hot) ------------------------------------------ *)

(* A scheme's compiled face: [fstep pkt u] is the zero-alloc per-hop
   decision (next hop or a negative verdict); [fprime ~src ~dst] forces
   any lazily-built node state for the flow at setup time so the hop loop
   never fills a cache. *)
type fast_plan = {
  fstep : packet -> int -> int;
  fprime : src:int -> dst:int -> unit;
}

let[@hot] rec fast_loop g step pkt u ttl trail =
  if ttl = 0 then pkt.pdrop <- drop_ttl
  else
    (* disco-lint: allow L7 indirect call: the compiled forward under test; each registered target is itself on the hot manifest *)
    let r = step pkt u in
    if r >= 0 then
      if Graph.has_edge g u r then begin
        pkt.phops <- pkt.phops + 1;
        trail.(pkt.phops) <- r;
        fast_loop g step pkt r (ttl - 1) trail
      end
      else pkt.pdrop <- drop_protocol
    else if r = fast_deliver then
      if u = pkt.pdst then pkt.pdelivered <- true
      else pkt.pdrop <- drop_protocol
    else if r = fast_no_route then pkt.pdrop <- drop_no_route
    else pkt.pdrop <- drop_protocol

(* Route one decoded packet from [src]: the fast mirror of {!walk}'s
   contract (TTL counts decisions; a next hop must be a real link; Deliver
   away from the destination is a protocol error; at [src = dst] the
   scheme still decides once).  No loop detection — an in-place cycle runs
   to TTL, which the typed oracle flags as [Loop_detected] and the
   differential accepts as the same non-delivery verdict.  [trail] must
   hold [ttl + 1] slots; [trail.(0..phops)] is the hop sequence. *)
let fast_walk g ~step pkt ~src ~ttl ~trail =
  pkt.phops <- 0;
  pkt.pdelivered <- false;
  pkt.pdrop <- drop_none;
  trail.(0) <- src;
  if src = pkt.pdst then begin
    (* disco-lint: allow L7 indirect call: the compiled forward under test; each registered target is itself on the hot manifest *)
    let r = step pkt src in
    if r = fast_deliver then pkt.pdelivered <- true
    else if r = fast_no_route then pkt.pdrop <- drop_no_route
    else pkt.pdrop <- drop_protocol
  end
  else fast_loop g step pkt src ttl trail

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>path: %s%s@,%a@]"
    (String.concat "-" (List.map string_of_int t.path))
    (match (t.delivered, t.dropped) with
    | true, _ -> ""
    | false, Some r -> Printf.sprintf "  (NOT DELIVERED: %s)" (reason_to_string r)
    | false, None -> "  (NOT DELIVERED)")
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  @[at %d: %s@]" s.at (action_to_string s.action)))
    t.steps
