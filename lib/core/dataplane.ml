module Graph = Disco_graph.Graph
module Bits = Disco_util.Bits

type reason =
  | Ttl_expired
  | Loop_detected
  | No_route
  | Protocol_error of string

type phase =
  | Seek of { tried_proxy : bool }
  | Steer of { tried_proxy : bool }
  | Carry
  | Greedy
  | Fallback

type header = {
  dst : int;
  phase : phase;
  labels : int list;
  waypoint : int;
  anchor : int;
  fbound : float;
  vbound : Disco_hash.Hash_space.id;
  extra_bytes : int;
}

let plain ~dst phase =
  {
    dst;
    phase;
    labels = [];
    waypoint = -1;
    anchor = -1;
    fbound = infinity;
    vbound = Int64.minus_one;
    extra_bytes = 0;
  }

type action =
  | Delivered
  | Dropped of reason
  | Direct_route
  | Group_store_hit
  | To_group_proxy of int
  | Resolution_via of int
  | Shortcut_divert
  | Address_rewrite
  | Directory_detour of int
  | Toward_pivot of int
  | Label_hop
  | Hop of int
  | Greedy_commit of int
  | Fallback_descent

let reason_to_string = function
  | Ttl_expired -> "ttl expired"
  | Loop_detected -> "loop detected"
  | No_route -> "no route"
  | Protocol_error what -> "protocol error: " ^ what

let action_to_string = function
  | Delivered -> "deliver"
  | Dropped r -> "drop: " ^ reason_to_string r
  | Direct_route -> "direct route in local tables"
  | Group_store_hit -> "group store hit: rewriting with destination address"
  | To_group_proxy w -> Printf.sprintf "forwarding to group proxy %d" w
  | Resolution_via lm -> Printf.sprintf "resolution fallback via landmark %d" lm
  | Shortcut_divert -> "to-destination shortcut"
  | Address_rewrite -> "address learned: explicit label route"
  | Directory_detour r -> Printf.sprintf "directory detour via %d" r
  | Toward_pivot w -> Printf.sprintf "toward routing pivot %d" w
  | Label_hop -> "label hop"
  | Hop v -> Printf.sprintf "forward to %d" v
  | Greedy_commit e -> Printf.sprintf "greedy commit toward %d" e
  | Fallback_descent -> "fallback: descending beacon tree"

type decision =
  | Forward of int
  | Rewrite of header * int * action
  | Deliver
  | Drop of reason

type step = { at : int; action : action }

type trace = {
  path : int list;
  steps : step list;
  delivered : bool;
  dropped : reason option;
  hops : int;
  rewrites : int;
  header_bytes_max : int;
  header_bytes_total : int;
}

let byte_size ?(name_bytes = 20) g ~at h =
  let label_bits =
    let rec go u bits = function
      | [] -> bits
      | v :: rest -> go v (bits + Bits.width_for (Graph.degree g u)) rest
    in
    go at 0 h.labels
  in
  let id_bits = if Graph.n g <= 1 then 1 else Bits.width_for (Graph.n g) in
  let bits =
    (8 * name_bytes) + label_bits
    + (if h.waypoint >= 0 then id_bits else 0)
    + (if h.anchor >= 0 then id_bits else 0)
    + (if Float.is_finite h.fbound then 32 else 0)
    + (if Int64.equal h.vbound Int64.minus_one then 0 else 64)
    + (8 * h.extra_bytes)
  in
  (bits + 7) / 8

(* Loop detection keys on the exact in-flight state: node id plus every
   header field, rendered into a string (typed, deterministic — no
   polymorphic hashing of variants). Revisiting a node with a different
   header is legal; an identical state can never progress under a
   deterministic forward function. *)
let phase_key = function
  | Seek { tried_proxy } -> if tried_proxy then "S1" else "S0"
  | Steer { tried_proxy } -> if tried_proxy then "T1" else "T0"
  | Carry -> "C"
  | Greedy -> "G"
  | Fallback -> "F"

let state_key at h =
  Printf.sprintf "%d;%s;%d;%d;%h;%Lx;%d;%s" at (phase_key h.phase) h.waypoint
    h.anchor h.fbound h.vbound h.extra_bytes
    (String.concat "," (List.map string_of_int h.labels))

let walk ?ttl ?name_bytes g ~forward ~src header =
  let n = Graph.n g in
  let ttl0 = match ttl with Some t -> t | None -> 4 * n in
  let steps = ref [] and path = ref [ src ] in
  let rewrites = ref 0 in
  let bytes_max = ref 0 and bytes_total = ref 0 in
  let seen = Hashtbl.create 64 in
  let log at action = steps := { at; action } :: !steps in
  let account at h =
    let b = byte_size ?name_bytes g ~at h in
    if b > !bytes_max then bytes_max := b;
    bytes_total := !bytes_total + b
  in
  let finish ~delivered ~dropped =
    let p = List.rev !path in
    {
      path = p;
      steps = List.rev !steps;
      delivered;
      dropped;
      hops = List.length p - 1;
      rewrites = !rewrites;
      header_bytes_max = !bytes_max;
      header_bytes_total = !bytes_total;
    }
  in
  let fail u r =
    log u (Dropped r);
    finish ~delivered:false ~dropped:(Some r)
  in
  let rec go u h ttl =
    if ttl = 0 then fail u Ttl_expired
    else begin
      let key = state_key u h in
      if Hashtbl.mem seen key then fail u Loop_detected
      else begin
        Hashtbl.add seen key ();
        match forward h ~at:u with
        | Deliver ->
            if u = h.dst then begin
              log u Delivered;
              finish ~delivered:true ~dropped:None
            end
            else fail u (Protocol_error "deliver away from the destination")
        | Drop r -> fail u r
        | Forward next ->
            log u (Hop next);
            hop u h next ttl
        | Rewrite (h', next, why) ->
            log u why;
            incr rewrites;
            hop u h' next ttl
      end
    end
  and hop u h next ttl =
    (* The one mechanical check of "forward consults only local state":
       whatever the node decided, the packet can only cross a real link. *)
    match Graph.edge_weight g u next with
    | None -> fail u (Protocol_error (Printf.sprintf "%d is not a neighbor" next))
    | Some _ ->
        account u h;
        path := next :: !path;
        go next h (ttl - 1)
  in
  (* The source's initial header is on the wire for hop one; account for
     it even on a source-delivered packet so byte telemetry never reads
     zero for a walked packet. *)
  if src = header.dst then begin
    account src header;
    match forward header ~at:src with
    | Deliver ->
        log src Delivered;
        finish ~delivered:true ~dropped:None
    | Drop r -> fail src r
    | Forward _ | Rewrite _ ->
        fail src (Protocol_error "forwarding away from the destination")
  end
  else go src header ttl0

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>path: %s%s@,%a@]"
    (String.concat "-" (List.map string_of_int t.path))
    (match (t.delivered, t.dropped) with
    | true, _ -> ""
    | false, Some r -> Printf.sprintf "  (NOT DELIVERED: %s)" (reason_to_string r)
    | false, None -> "  (NOT DELIVERED)")
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  @[at %d: %s@]" s.at (action_to_string s.action)))
    t.steps
