module Graph = Disco_graph.Graph
module Bits = Disco_util.Bits

type reason =
  | Ttl_expired
  | Loop_detected
  | No_route
  | Protocol_error of string

type phase =
  | Seek of { tried_proxy : bool }
  | Steer of { tried_proxy : bool }
  | Carry
  | Greedy
  | Fallback

type header = {
  dst : int;
  phase : phase;
  labels : int list;
  waypoint : int;
  anchor : int;
  fbound : float;
  vbound : Disco_hash.Hash_space.id;
  extra_bytes : int;
}

let plain ~dst phase =
  {
    dst;
    phase;
    labels = [];
    waypoint = -1;
    anchor = -1;
    fbound = infinity;
    vbound = Int64.minus_one;
    extra_bytes = 0;
  }

type action =
  | Delivered
  | Dropped of reason
  | Direct_route
  | Group_store_hit
  | To_group_proxy of int
  | Resolution_via of int
  | Shortcut_divert
  | Address_rewrite
  | Directory_detour of int
  | Toward_pivot of int
  | Label_hop
  | Hop of int
  | Greedy_commit of int
  | Fallback_descent

let reason_to_string = function
  | Ttl_expired -> "ttl expired"
  | Loop_detected -> "loop detected"
  | No_route -> "no route"
  | Protocol_error what -> "protocol error: " ^ what

let action_to_string = function
  | Delivered -> "deliver"
  | Dropped r -> "drop: " ^ reason_to_string r
  | Direct_route -> "direct route in local tables"
  | Group_store_hit -> "group store hit: rewriting with destination address"
  | To_group_proxy w -> Printf.sprintf "forwarding to group proxy %d" w
  | Resolution_via lm -> Printf.sprintf "resolution fallback via landmark %d" lm
  | Shortcut_divert -> "to-destination shortcut"
  | Address_rewrite -> "address learned: explicit label route"
  | Directory_detour r -> Printf.sprintf "directory detour via %d" r
  | Toward_pivot w -> Printf.sprintf "toward routing pivot %d" w
  | Label_hop -> "label hop"
  | Hop v -> Printf.sprintf "forward to %d" v
  | Greedy_commit e -> Printf.sprintf "greedy commit toward %d" e
  | Fallback_descent -> "fallback: descending beacon tree"

type decision =
  | Forward of int
  | Rewrite of header * int * action
  | Deliver
  | Drop of reason

type step = { at : int; action : action }

type trace = {
  path : int list;
  steps : step list;
  delivered : bool;
  dropped : reason option;
  hops : int;
  rewrites : int;
  header_bytes_max : int;
  header_bytes_total : int;
}

(* Hoisted out of [byte_size] so the per-hop byte accounting does not
   allocate a fresh closure per call (lint L7). *)
let rec label_bits_from g u bits = function
  | [] -> bits
  | v :: rest -> label_bits_from g v (bits + Bits.width_for (Graph.degree g u)) rest

let byte_size ?(name_bytes = 20) g ~at h =
  let label_bits = label_bits_from g at 0 h.labels in
  let id_bits = if Graph.n g <= 1 then 1 else Bits.width_for (Graph.n g) in
  let bits =
    (8 * name_bytes) + label_bits
    + (if h.waypoint >= 0 then id_bits else 0)
    + (if h.anchor >= 0 then id_bits else 0)
    + (if Float.is_finite h.fbound then 32 else 0)
    + (if Int64.equal h.vbound Int64.minus_one then 0 else 64)
    + (8 * h.extra_bytes)
  in
  (bits + 7) / 8

(* Loop detection keys on the exact in-flight state: node id plus every
   header field, rendered into a string (typed, deterministic — no
   polymorphic hashing of variants). Revisiting a node with a different
   header is legal; an identical state can never progress under a
   deterministic forward function. *)
let phase_key = function
  | Seek { tried_proxy } -> if tried_proxy then "S1" else "S0"
  | Steer { tried_proxy } -> if tried_proxy then "T1" else "T0"
  | Carry -> "C"
  | Greedy -> "G"
  | Fallback -> "F"

(* Renders the key into a caller-owned buffer: [walk] keeps one buffer per
   walk, so a hop pays one short key string (for the seen-table) instead of
   the former Printf.sprintf + List.map + String.concat chain.  The float
   bound is keyed by its bit pattern, which is exact. *)
let add_int_field buf v =
  Buffer.add_string buf (string_of_int v);
  Buffer.add_char buf ';'

let state_key_into buf at h =
  Buffer.clear buf;
  add_int_field buf at;
  Buffer.add_string buf (phase_key h.phase);
  Buffer.add_char buf ';';
  add_int_field buf h.waypoint;
  add_int_field buf h.anchor;
  Buffer.add_string buf (Int64.to_string (Int64.bits_of_float h.fbound));
  Buffer.add_char buf ';';
  Buffer.add_string buf (Int64.to_string h.vbound);
  Buffer.add_char buf ';';
  add_int_field buf h.extra_bytes;
  List.iter (fun l -> add_int_field buf l) h.labels;
  Buffer.contents buf

(* [walk] is hot (the manifest's hop loop) but it is the *instrumented*
   reference walker: it exists to produce a trace, so the trace recording
   itself (step list, path list, seen-table) is the product and carries
   waivers.  What the typed pass holds allocation-free is the per-hop
   decision machinery: byte accounting (byte_size), the link-membership
   check (Graph.has_edge), and the degree/width lookups.  The per-walk
   setup (six closures, five refs, one table, one buffer) is O(1) per
   walk, not per hop, and is waived as such below.  The planned zero-alloc
   walker (ROADMAP) will drop the trace and keep the same forward
   contract. *)
let walk ?ttl ?name_bytes g ~forward ~src header =
  let n = Graph.n g in
  let ttl0 = match ttl with Some t -> t | None -> 4 * n in
  (* disco-lint: allow L7 per-walk trace accumulators, not per-hop *)
  let steps = ref [] and path = ref [ src ] in
  (* disco-lint: allow L7 per-walk counters *)
  let rewrites = ref 0 in
  (* disco-lint: allow L7 per-walk counters *)
  let bytes_max = ref 0 and bytes_total = ref 0 in
  (* disco-lint: allow L7 per-walk loop-detection table and key buffer *)
  let seen = Hashtbl.create 64 in
  (* disco-lint: allow L7 per-walk loop-detection table and key buffer *)
  let keybuf = Buffer.create 48 in
  (* disco-lint: allow L7 per-walk closure; the step record and cons are the trace product *)
  let log at action = steps := { at; action } :: !steps in
  (* disco-lint: allow L7 per-walk closure over the byte counters *)
  let account at h =
    let b = byte_size ?name_bytes g ~at h in
    if b > !bytes_max then bytes_max := b;
    bytes_total := !bytes_total + b
  in
  (* disco-lint: allow L7 per-walk closure; builds the result trace once *)
  let finish ~delivered ~dropped =
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    let p = List.rev !path in
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    let s = List.rev !steps in
    (* disco-lint: allow L7 result construction: one trace record per walk *)
    {
      path = p;
      steps = s;
      delivered;
      dropped;
      hops = List.length p - 1;
      rewrites = !rewrites;
      header_bytes_max = !bytes_max;
      header_bytes_total = !bytes_total;
    }
  in
  (* disco-lint: allow L7 per-walk closure; drop path, executed at most once *)
  let fail u r =
    log u (Dropped r);
    finish ~delivered:false ~dropped:(Some r)
  in
  (* disco-lint: allow L7 per-walk closure pair (go/hop) driving the hop loop *)
  let rec go u h ttl =
    if ttl = 0 then fail u Ttl_expired
    else begin
      (* disco-lint: allow L7 loop-detection key: one short string per hop into the seen-table *)
      let key = state_key_into keybuf u h in
      if Hashtbl.mem seen key then fail u Loop_detected
      else begin
        (* disco-lint: allow L7 seen-table insert: loop detection is the walker's contract *)
        Hashtbl.add seen key ();
        (* disco-lint: allow L7 the scheme's forward is the function under test; its own hot body is checked separately *)
        match forward h ~at:u with
        | Deliver ->
            if u = h.dst then begin
              log u Delivered;
              finish ~delivered:true ~dropped:None
            end
            else fail u (Protocol_error "deliver away from the destination")
        | Drop r -> fail u r
        | Forward next ->
            log u (Hop next);
            hop u h next ttl
        | Rewrite (h', next, why) ->
            log u why;
            incr rewrites;
            hop u h' next ttl
      end
    end
  (* disco-lint: allow L7 per-walk closure pair (go/hop) driving the hop loop *)
  and hop u h next ttl =
    (* The one mechanical check of "forward consults only local state":
       whatever the node decided, the packet can only cross a real link.
       has_edge is the allocation-free membership probe (L7): the former
       edge_weight match boxed a float option on every hop. *)
    if not (Graph.has_edge g u next) then
      (* disco-lint: allow L7 protocol-violation diagnostic on the drop path *)
      fail u (Protocol_error (Printf.sprintf "%d is not a neighbor" next))
    else begin
      account u h;
      (* disco-lint: allow L7 path cons is the trace product *)
      path := next :: !path;
      go next h (ttl - 1)
    end
  in
  (* The source's initial header is on the wire for hop one; account for
     it even on a source-delivered packet so byte telemetry never reads
     zero for a walked packet. *)
  if src = header.dst then begin
    account src header;
    (* disco-lint: allow L7 the scheme's forward is the function under test; its own hot body is checked separately *)
    match forward header ~at:src with
    | Deliver ->
        log src Delivered;
        finish ~delivered:true ~dropped:None
    | Drop r -> fail src r
    | Forward _ | Rewrite _ ->
        fail src (Protocol_error "forwarding away from the destination")
  end
  else go src header ttl0

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>path: %s%s@,%a@]"
    (String.concat "-" (List.map string_of_int t.path))
    (match (t.delivered, t.dropped) with
    | true, _ -> ""
    | false, Some r -> Printf.sprintf "  (NOT DELIVERED: %s)" (reason_to_string r)
    | false, None -> "  (NOT DELIVERED)")
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  @[at %d: %s@]" s.at (action_to_string s.action)))
    t.steps
