(** The fixed-width address variant sketched in §4.2 (and rejected there).

    "The explicit route could be eliminated. Briefly, an address would be
    fixed at O(log n) bits; each landmark l would dynamically partition
    this block of addresses among its neighbors in proportion to their
    number of descendants, and this would continue recursively down the
    shortest-path tree rooted at l, analogous to a hierarchical assignment
    of IP addresses. Since this would complicate the protocol and actually
    increase the mean address size in practice, we chose the simpler
    explicit route design."

    This module implements that rejected design so the claim can be
    measured (the [addr] experiment compares both): every node in a
    landmark's shortest-path tree receives a label from a contiguous block,
    blocks nest along the tree, and forwarding at each hop picks the child
    whose block contains the target label. Addresses are exactly
    [ceil(log2 n)] bits regardless of route length. *)

type t

val build : Disco_graph.Graph.t -> Landmarks.t -> t
(** Allocate labels over the landmark forest. *)

val bits : t -> int
(** Fixed address width: [ceil(log2 n)]. *)

val label_of : t -> int -> int
(** The label allocated to a node (unique within its landmark's tree). *)

val route : t -> int -> int list
(** [route t v] replays forwarding from [l_v] by label containment and
    returns the node path [l_v; ...; v] — it must equal the forest path
    (tested), demonstrating the scheme routes correctly. *)

val encode_label : t -> int -> bytes
(** [encode_label t v] packs [label_of t v] into exactly [bits t] bits
    (MSB-first, final partial byte zero-padded) — the fixed-width wire
    form this variant was sketched for. *)

val decode_label : t -> landmark:int -> bytes -> int
(** [decode_label t ~landmark bytes] reads a [bits t]-wide label and
    resolves it to the node holding it in [landmark]'s tree, by the same
    block-containment walk forwarding uses. Inverse of {!encode_label}
    when [landmark] is the node's tree root (property-tested).
    @raise Invalid_argument if the label falls outside [landmark]'s
    block. *)

val byte_size : name_bytes:int -> t -> int
(** Wire size of one address: landmark name + fixed label. *)
