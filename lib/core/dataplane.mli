(** Scheme-agnostic hop-by-hop data plane.

    Every routing scheme in the repo answers one question per hop: given
    the packet's header and the state the current node holds, what happens
    next?  That answer is a {!decision}; this module supplies the shared
    packet {!header}, the {!walk} loop that executes a forward function
    hop by hop (TTL bound, loop detection, per-hop header-byte
    accounting), and the {!trace} every figure and check consumes.

    The walker itself enforces the two mechanical halves of the "local
    state only" contract: a decision may only move the packet across a
    real link of the graph ({!Protocol_error} otherwise), and anything the
    deciding node wants remembered across hops must be written into the
    header (the walker threads no other state). Scheme-specific forward
    functions live next to their control planes ({!Forwarding} for Disco,
    the baselines' [forward] for the rest); the experiment layer's
    [Walk] module derives the measured routes from these walks, demoting
    the closed-form path computations to oracles. *)

module Graph = Disco_graph.Graph

(** Why a packet was dropped. *)
type reason =
  | Ttl_expired
  | Loop_detected  (** the exact (node, header) state recurred *)
  | No_route  (** the node holds no state that makes progress *)
  | Protocol_error of string
      (** the forward function broke the data-plane contract, e.g. named a
          next hop that is not a neighbor of the current node *)

(** What kind of in-flight processing the header is asking for. Each
    scheme interprets the phases it uses; the walker never inspects them
    beyond loop-detection equality. *)
type phase =
  | Seek of { tried_proxy : bool }
      (** the packet carries only the destination's flat name (Disco) *)
  | Steer of { tried_proxy : bool }
      (** riding a leg toward {!field-waypoint}; when the label list runs
          out the waypoint node decides what happens next *)
  | Carry  (** consuming an explicit label route toward the destination *)
  | Greedy  (** coordinate/ring descent (BVR, VRR) *)
  | Fallback  (** BVR tree descent after a local minimum *)

type header = {
  dst : int;  (** destination (its flat name / coordinate stands for it) *)
  phase : phase;
  labels : int list;  (** remaining explicit route, next hop first *)
  waypoint : int;  (** current intermediate target; -1 = none *)
  anchor : int;  (** scheme anchor (VRR committed endpoint, BVR beacon
                     tree index); -1 = none *)
  fbound : float;  (** BVR fallback re-entry bound; [infinity] = none *)
  vbound : Disco_hash.Hash_space.id;
      (** VRR monotone virtual-distance bound; [Int64.minus_one] (max
          unsigned) = no bound yet *)
  extra_bytes : int;
      (** fixed scheme payload carried every hop (BVR coordinate, VRR
          virtual id), counted by {!byte_size} *)
}

val plain : dst:int -> phase -> header
(** A header with no labels, waypoint, anchor or bounds. *)

(** One per-hop decision, printable for traces and inspectable by tests
    and disco-lint (no strings to match on). *)
type action =
  | Delivered
  | Dropped of reason
  | Direct_route  (** the node's own tables hold a route to the destination *)
  | Group_store_hit  (** sloppy-group store supplied the address *)
  | To_group_proxy of int
  | Resolution_via of int  (** falling back to the resolution DB's owner *)
  | Shortcut_divert  (** to-destination shortcutting replaced the labels *)
  | Address_rewrite  (** a directory/landmark wrote the explicit route *)
  | Directory_detour of int  (** detour via a lookup node (SEATTLE, S4) *)
  | Toward_pivot of int  (** TZ: steering to the routing pivot *)
  | Label_hop  (** consumed one explicit-route label *)
  | Hop of int  (** plain forward, header unchanged *)
  | Greedy_commit of int  (** committed to a closer anchor (VRR) or
                              re-entered greedy mode (BVR) *)
  | Fallback_descent  (** BVR: entered fallback, descending the beacon tree *)

val reason_to_string : reason -> string
val action_to_string : action -> string

type decision =
  | Forward of int  (** send to this neighbor, header unchanged *)
  | Rewrite of header * int * action
      (** rewrite the header and send to this neighbor; the action says
          why, for the trace *)
  | Deliver
  | Drop of reason

type step = { at : int; action : action }

type trace = {
  path : int list;  (** nodes traversed, source first *)
  steps : step list;  (** one per decision, in order *)
  delivered : bool;
  dropped : reason option;  (** why the walk ended, when not delivered *)
  hops : int;  (** [List.length path - 1] *)
  rewrites : int;  (** header rewrites along the way *)
  header_bytes_max : int;  (** largest header carried on any hop *)
  header_bytes_total : int;  (** header bytes summed over every hop taken *)
}

val byte_size : ?name_bytes:int -> Graph.t -> at:int -> header -> int
(** Wire size of the header as carried at node [at]: the destination's
    self-certifying name ([name_bytes], default 20), the packed
    neighbor-rank label bits of the remaining explicit route (§4.2), one
    node id each for waypoint and anchor when present, 4 bytes for a
    finite fallback bound, and the scheme's [extra_bytes]. *)

val walk :
  ?ttl:int ->
  ?name_bytes:int ->
  Graph.t ->
  forward:(header -> at:int -> decision) ->
  src:int ->
  header ->
  trace
(** Execute [forward] hop by hop from [src] until it delivers, drops, the
    TTL (default [4 * n] decisions) expires, or the exact (node, header)
    state recurs — node revisits alone are legal (a Disco proxy leg may
    re-cross a node), but revisiting with an identical header can never
    make progress under a deterministic forward function. *)

val pp_trace : Format.formatter -> trace -> unit

(** {1 The zero-alloc fast path}

    The batched counterpart of {!walk}: headers pre-encoded into reusable
    [Bytes], in-flight state in one preallocated {!packet}, and per-scheme
    {e compiled forwards} ({!fast_plan}) whose hop loop is array indexing
    only.  {!walk} stays the oracle; disco-check's fast≡typed differential
    holds both walkers to the same hop sequence and verdict, and the L7
    lint plus [bench --figure alloc] hold this path to zero allocation
    per hop. *)

(** {2 Phase codes} — {!phase} as a small int on the wire. *)

val mode_seek : int
val mode_seek_tried : int
val mode_steer : int
val mode_steer_tried : int
val mode_carry : int
val mode_greedy : int
val mode_fallback : int
val mode_of_phase : phase -> int

val phase_of_mode : int -> phase
(** @raise Invalid_argument outside [0..6]. *)

(** {2 Verdicts} — a compiled forward returns the next hop ([>= 0]) or: *)

val fast_deliver : int
val fast_no_route : int
val fast_protocol : int

(** {2 Drop codes} — why a fast walk ended ({!field-pdrop}). *)

val drop_none : int
val drop_ttl : int
val drop_no_route : int
val drop_protocol : int
val drop_to_string : int -> string

(** The reusable in-flight packet.  [proute.(proute_pos..proute_end)] is
    the remaining explicit route as node ids; [pfs] is float scratch for
    the compiled forwards with the BVR fallback bound at {!fs_fbound};
    [pis] is int scratch; the VRR virtual bound is carried as two unsigned
    32-bit halves ([pvb_hi], [pvb_lo]) so the hop loop never boxes an
    Int64.  After a {!fast_walk}: [phops], [pdelivered], [pdrop]. *)
type packet = {
  mutable pdst : int;
  mutable pmode : int;
  mutable pway : int;
  mutable panchor : int;
  mutable pvb_hi : int;
  mutable pvb_lo : int;
  mutable pextra : int;
  mutable proute_pos : int;
  mutable proute_end : int;
  mutable phops : int;
  mutable pdelivered : bool;
  mutable pdrop : int;
  proute : int array;
  pfs : float array;
  pis : int array;
}

val fs_fbound : int
(** [pfs] slot holding the BVR fallback re-entry bound. *)

val packet_create : Graph.t -> packet
(** A scratch packet sized for [g] (route capacity [2n + 8]). *)

(** {2 Route-window helpers} (hot; used by the compiled forwards) *)

val route_len : packet -> int
val route_next : packet -> int
(** Consume and return the next route label (node id). *)

val route_fill_up : packet -> int array -> int -> int -> int
(** [route_fill_up pkt parents u root]: load the labels of the tree path
    [u ~> root] ([parents] pointing rootward), i.e.
    [parents.(u); ...; root].  Returns the label count, or -1 on a broken
    parent chain (route window untouched). *)

val route_chain_ok : int array -> int -> int -> bool
(** [route_chain_ok parents u root]: does the parent chain from [u] reach
    [root]?  Probe before a fill that would replace a live route — the
    fills scribble over [proute] as they walk. *)

val route_fill_down : packet -> int array -> int -> int -> int
(** [route_fill_down pkt parents root v]: load the labels of the descent
    [root ~> v], i.e. [child-of-root; ...; v].  Returns the label count,
    or -1 on a broken chain. *)

(** {2 Wire codec} — fixed 33-byte header, then the explicit route as
    packed neighbor-rank bits (the same §4.2 label accounting as
    {!byte_size}).  Encoding is setup-time and may allocate;
    {!decode_into} is the per-flow hot entry and is allocation-free. *)

val header_fixed_bytes : int

val encoded_size : Graph.t -> src:int -> header -> int
(** Bytes {!encode_header} will write for [h] emitted at [src]. *)

val encode_header : Graph.t -> src:int -> header -> Bytes.t -> pos:int -> int
(** Encode [h] at [buf.(pos..)]; returns the encoded size.
    @raise Invalid_argument on overflow or a label that is not a neighbor
    of the node consuming it. *)

val decode_into : Graph.t -> packet -> Bytes.t -> pos:int -> src:int -> unit
(** Rehydrate [pkt] from wire bytes (allocation-free); [src] resolves the
    neighbor-rank labels back to node ids and the walk counters reset. *)

val decode_header : Graph.t -> src:int -> Bytes.t -> pos:int -> header
(** Typed reconstruction of an encoded header (round-trip tests). *)

val load_packet : packet -> header -> unit
(** Load [pkt] straight from a typed header, skipping the wire. *)

val float_of_bits_hl : int -> int -> float
(** Exact IEEE-754 double from two unsigned 32-bit halves, without boxing
    an Int64 (exposed for the codec tests). *)

(** {2 The walker} *)

(** A scheme's compiled face: [fstep pkt u] is the zero-alloc per-hop
    decision; [fprime ~src ~dst] forces lazily-built node state for a
    flow at setup time so the hop loop never fills a cache. *)
type fast_plan = {
  fstep : packet -> int -> int;
  fprime : src:int -> dst:int -> unit;
}

val fast_walk :
  Graph.t ->
  step:(packet -> int -> int) ->
  packet ->
  src:int ->
  ttl:int ->
  trail:int array ->
  unit
(** Route one decoded packet from [src] under {!walk}'s contract (TTL
    counts decisions; hops must be real links; Deliver away from the
    destination is a protocol error; at [src = dst] the scheme decides
    once).  No loop detection: an in-place cycle runs to TTL, which the
    typed oracle reports as [Loop_detected] — the same non-delivery
    verdict.  [trail] needs [ttl + 1] slots; [trail.(0..phops)] is the
    hop sequence.  Results land in [pkt]: [pdelivered], [pdrop],
    [phops]. *)
