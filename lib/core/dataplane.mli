(** Scheme-agnostic hop-by-hop data plane.

    Every routing scheme in the repo answers one question per hop: given
    the packet's header and the state the current node holds, what happens
    next?  That answer is a {!decision}; this module supplies the shared
    packet {!header}, the {!walk} loop that executes a forward function
    hop by hop (TTL bound, loop detection, per-hop header-byte
    accounting), and the {!trace} every figure and check consumes.

    The walker itself enforces the two mechanical halves of the "local
    state only" contract: a decision may only move the packet across a
    real link of the graph ({!Protocol_error} otherwise), and anything the
    deciding node wants remembered across hops must be written into the
    header (the walker threads no other state). Scheme-specific forward
    functions live next to their control planes ({!Forwarding} for Disco,
    the baselines' [forward] for the rest); the experiment layer's
    [Walk] module derives the measured routes from these walks, demoting
    the closed-form path computations to oracles. *)

module Graph = Disco_graph.Graph

(** Why a packet was dropped. *)
type reason =
  | Ttl_expired
  | Loop_detected  (** the exact (node, header) state recurred *)
  | No_route  (** the node holds no state that makes progress *)
  | Protocol_error of string
      (** the forward function broke the data-plane contract, e.g. named a
          next hop that is not a neighbor of the current node *)

(** What kind of in-flight processing the header is asking for. Each
    scheme interprets the phases it uses; the walker never inspects them
    beyond loop-detection equality. *)
type phase =
  | Seek of { tried_proxy : bool }
      (** the packet carries only the destination's flat name (Disco) *)
  | Steer of { tried_proxy : bool }
      (** riding a leg toward {!field-waypoint}; when the label list runs
          out the waypoint node decides what happens next *)
  | Carry  (** consuming an explicit label route toward the destination *)
  | Greedy  (** coordinate/ring descent (BVR, VRR) *)
  | Fallback  (** BVR tree descent after a local minimum *)

type header = {
  dst : int;  (** destination (its flat name / coordinate stands for it) *)
  phase : phase;
  labels : int list;  (** remaining explicit route, next hop first *)
  waypoint : int;  (** current intermediate target; -1 = none *)
  anchor : int;  (** scheme anchor (VRR committed endpoint, BVR beacon
                     tree index); -1 = none *)
  fbound : float;  (** BVR fallback re-entry bound; [infinity] = none *)
  vbound : Disco_hash.Hash_space.id;
      (** VRR monotone virtual-distance bound; [Int64.minus_one] (max
          unsigned) = no bound yet *)
  extra_bytes : int;
      (** fixed scheme payload carried every hop (BVR coordinate, VRR
          virtual id), counted by {!byte_size} *)
}

val plain : dst:int -> phase -> header
(** A header with no labels, waypoint, anchor or bounds. *)

(** One per-hop decision, printable for traces and inspectable by tests
    and disco-lint (no strings to match on). *)
type action =
  | Delivered
  | Dropped of reason
  | Direct_route  (** the node's own tables hold a route to the destination *)
  | Group_store_hit  (** sloppy-group store supplied the address *)
  | To_group_proxy of int
  | Resolution_via of int  (** falling back to the resolution DB's owner *)
  | Shortcut_divert  (** to-destination shortcutting replaced the labels *)
  | Address_rewrite  (** a directory/landmark wrote the explicit route *)
  | Directory_detour of int  (** detour via a lookup node (SEATTLE, S4) *)
  | Toward_pivot of int  (** TZ: steering to the routing pivot *)
  | Label_hop  (** consumed one explicit-route label *)
  | Hop of int  (** plain forward, header unchanged *)
  | Greedy_commit of int  (** committed to a closer anchor (VRR) or
                              re-entered greedy mode (BVR) *)
  | Fallback_descent  (** BVR: entered fallback, descending the beacon tree *)

val reason_to_string : reason -> string
val action_to_string : action -> string

type decision =
  | Forward of int  (** send to this neighbor, header unchanged *)
  | Rewrite of header * int * action
      (** rewrite the header and send to this neighbor; the action says
          why, for the trace *)
  | Deliver
  | Drop of reason

type step = { at : int; action : action }

type trace = {
  path : int list;  (** nodes traversed, source first *)
  steps : step list;  (** one per decision, in order *)
  delivered : bool;
  dropped : reason option;  (** why the walk ended, when not delivered *)
  hops : int;  (** [List.length path - 1] *)
  rewrites : int;  (** header rewrites along the way *)
  header_bytes_max : int;  (** largest header carried on any hop *)
  header_bytes_total : int;  (** header bytes summed over every hop taken *)
}

val byte_size : ?name_bytes:int -> Graph.t -> at:int -> header -> int
(** Wire size of the header as carried at node [at]: the destination's
    self-certifying name ([name_bytes], default 20), the packed
    neighbor-rank label bits of the remaining explicit route (§4.2), one
    node id each for waypoint and anchor when present, 4 bytes for a
    finite fallback bound, and the scheme's [extra_bytes]. *)

val walk :
  ?ttl:int ->
  ?name_bytes:int ->
  Graph.t ->
  forward:(header -> at:int -> decision) ->
  src:int ->
  header ->
  trace
(** Execute [forward] hop by hop from [src] until it delivers, drops, the
    TTL (default [4 * n] decisions) expires, or the exact (node, header)
    state recurs — node revisits alone are legal (a Disco proxy leg may
    re-cross a node), but revisiting with an identical header can never
    make progress under a deterministic forward function. *)

val pp_trace : Format.formatter -> trace -> unit
