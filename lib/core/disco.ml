module Hash_space = Disco_hash.Hash_space
module Graph = Disco_graph.Graph

type t = {
  nd : Nddisco.t;
  groups : Groups.t;
  overlay : Overlay.t;
  resolution : Resolution.t;
}

let of_nddisco ~rng ?groups nd =
  let groups = match groups with Some g -> g | None -> Groups.of_nddisco nd in
  {
    nd;
    groups;
    overlay = Overlay.build ~rng nd groups;
    resolution = Resolution.build nd;
  }

let build ?params ?names ?landmark_ids ?groups ~rng graph =
  let nd = Nddisco.build ?params ?names ?landmark_ids ~rng graph in
  of_nddisco ~rng ?groups nd

type first_packet_case =
  | Trivial
  | Direct_landmark
  | Direct_vicinity
  | Known_address
  | Via_group_member of int
  | Resolution_fallback

(* The vicinity member most likely to hold dst's address: longest common
   hash prefix with h(dst); ties broken by distance (§4.4's "closest node
   with a long enough prefix match"). *)
let best_group_proxy t ~src ~dst =
  let nd = t.nd in
  let target = nd.hashes.(dst) in
  let vw = Vicinity.view nd.vicinity src in
  let best = ref (-1) and best_len = ref (-1) and best_dist = ref infinity in
  Array.iteri
    (fun i w ->
      if w <> dst then begin
        let len = Hash_space.common_prefix_len nd.hashes.(w) target in
        let d = vw.Vicinity.dists.(i) in
        if len > !best_len || (len = !best_len && d < !best_dist) then begin
          best := w;
          best_len := len;
          best_dist := d
        end
      end)
    vw.Vicinity.members;
  if !best < 0 then None else Some !best

let classify_first t ~src ~dst =
  let nd = t.nd in
  if src = dst then Trivial
  else if nd.landmarks.is_landmark.(dst) then Direct_landmark
  else if Vicinity.mem nd.vicinity src dst then Direct_vicinity
  else if Groups.same_group t.groups src dst then Known_address
  else begin
    match best_group_proxy t ~src ~dst with
    | Some w when Groups.same_group t.groups w dst -> Via_group_member w
    | Some _ | None -> Resolution_fallback
  end

(* Unshortcut first-packet route together with its case. *)
let raw_first t ~src ~dst =
  let nd = t.nd in
  match classify_first t ~src ~dst with
  | Trivial -> ([ src ], Trivial)
  | Direct_landmark -> (Nddisco.raw_route nd ~src ~dst, Direct_landmark)
  | Direct_vicinity -> (Nddisco.raw_route nd ~src ~dst, Direct_vicinity)
  | Known_address -> (Nddisco.raw_route nd ~src ~dst, Known_address)
  | Via_group_member w ->
      let to_proxy =
        match Vicinity.path nd.vicinity src w with
        | Some p -> p
        | None -> invalid_arg "Disco: proxy not in vicinity"
      in
      let onward = Nddisco.raw_route nd ~src:w ~dst in
      (to_proxy @ List.tl onward, Via_group_member w)
  | Resolution_fallback ->
      ( Resolution.resolve_then_route ~heuristic:Shortcut.No_shortcut t.resolution
          ~src ~dst,
        Resolution_fallback )

let route_first_case ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  let fwd, case = raw_first t ~src ~dst in
  match fwd with
  | [ _ ] | [ _; _ ] -> (fwd, case)
  | _ ->
      let rev =
        if Shortcut.uses_reverse heuristic then
          Some (fst (raw_first t ~src:dst ~dst:src))
        else None
      in
      ( Shortcut.apply ~graph:t.nd.graph ~knows:(Nddisco.knows t.nd) heuristic
          ~fwd ~rev,
        case )

let route_first ?heuristic t ~src ~dst =
  fst (route_first_case ?heuristic t ~src ~dst)

let route_later ?heuristic t ~src ~dst = Nddisco.route_later ?heuristic t.nd ~src ~dst

type state_detail = {
  nd_detail : Nddisco.state_detail;
  group_entries : int;
  overlay_neighbors : int;
}

let state_entries t v =
  let resolution_entries = Resolution.entries_at t.resolution v in
  {
    nd_detail = Nddisco.state_entries ~resolution_entries t.nd v;
    group_entries = Groups.state_entries t.groups v;
    overlay_neighbors = Overlay.degree t.overlay v;
  }

let total_entries d =
  Nddisco.total_entries d.nd_detail + d.group_entries + d.overlay_neighbors

let state_bytes t ~name_bytes v =
  let d = state_entries t v in
  let nd = t.nd in
  (* Route entries (vicinity + landmark tables): name + 2 bytes of
     next-hop/label bookkeeping each; label mappings: 2 bytes each. *)
  let route_entries =
    d.nd_detail.Nddisco.vicinity_entries + d.nd_detail.Nddisco.landmark_entries
  in
  let route_bytes = float_of_int (route_entries * (name_bytes + 2)) in
  let label_bytes = float_of_int (2 * d.nd_detail.Nddisco.label_mappings) in
  (* Address mappings (sloppy group + resolution DB): name + full address. *)
  let addr_bytes_of w =
    float_of_int (name_bytes + Address.byte_size ~name_bytes (Nddisco.address nd w))
  in
  let group_bytes =
    Array.fold_left
      (fun acc w -> if w = v then acc else acc +. addr_bytes_of w)
      0.0 (Groups.members t.groups v)
  in
  let resolution_bytes =
    if d.nd_detail.Nddisco.resolution_entries = 0 then 0.0
    else begin
      let owners = Resolution.owners_by_node t.resolution in
      let acc = ref 0.0 in
      Array.iteri (fun w o -> if o = v then acc := !acc +. addr_bytes_of w) owners;
      !acc
    end
  in
  route_bytes +. label_bytes +. group_bytes +. resolution_bytes

(* Exact per-node state measured from the packed slabs (no name-size
   modelling): NDDisco's share (vicinity view + landmark tree slots + own
   address), the consistent-hash ring every node stores, an amortised
   share of the Othello owner FIB, this node's slice of the group index,
   the packed addresses of mutually-grouped members it stores, and — at
   landmarks — the resolution shard (a 16-byte Kv64 slot plus the stored
   address per owned name). *)
let packed_state_bytes t v =
  let nd = t.nd in
  let n = Nddisco.n nd in
  let addr w = float_of_int (8 + Nddisco.address_slab_bytes nd w) in
  let sorted = Groups.sorted_ids t.groups in
  let start, stop = Groups.member_range t.groups v in
  let group = ref 0.0 in
  for i = start to stop - 1 do
    let w = sorted.(i) in
    if w <> v && Groups.believes t.groups w v then group := !group +. addr w
  done;
  let resolution =
    if not nd.Nddisco.landmarks.Landmarks.is_landmark.(v) then 0.0
    else begin
      let owners = Resolution.owners_by_node t.resolution in
      let acc = ref 0.0 in
      Array.iteri (fun w o -> if o = v then acc := !acc +. 16.0 +. addr w) owners;
      !acc
    end
  in
  let fib_share =
    float_of_int (Packed.Othello.byte_size (Resolution.fib t.resolution))
    /. float_of_int n
  in
  Nddisco.packed_state_bytes nd v
  +. float_of_int (Resolution.ring_byte_size t.resolution)
  +. 24.0 (* this node's slice of the group index: hash, bits, sorted id *)
  +. !group +. resolution +. fib_share
