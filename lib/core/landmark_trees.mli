(** Shortest-path trees rooted at landmarks.

    Path-vector convergence leaves every node with a shortest path to every
    landmark; statically that is the landmark's single-source tree. Trees
    are computed lazily and cached — a stretch experiment touches only the
    landmarks involved in its sampled routes. *)

type t

val create : Disco_graph.Graph.t -> t

val dist : t -> lm:int -> int -> float
(** [d(lm, v)] (= [d(v, lm)], the graph is undirected). *)

val path_from : t -> lm:int -> int -> int list
(** Shortest path [lm; ...; v].
    @raise Invalid_argument if [v] is unreachable. *)

val path_to : t -> int -> lm:int -> int list
(** Shortest path [v; ...; lm]: the reverse walk (§6 notes Disco relies on
    route reversibility). *)

val parents : t -> lm:int -> int array
(** The tree's parent array (predecessor on the path from [lm]; -1 at the
    root and at unreachable nodes).  Forces the tree.  The compiled fast
    paths flatten landmark routes through this: following parents from [v]
    reads off [path_to v ~lm] without allocating. *)

val cached_count : t -> int
