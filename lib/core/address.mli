(** Disco addresses: a landmark plus an explicit route from it (§4.2).

    The address of node [v] is the identifier of its closest landmark
    [l_v] paired with the information needed to forward along
    [l_v ~> v] — an explicit route listing one forwarding label per hop.
    The label at a degree-[d] node costs [ceil(log2 d)] bits (the pathlet
    format of [19]), which is why measured addresses are tiny: on the
    paper's router-level Internet map the mean is 2.93 bytes and the max
    10.625 bytes. Addresses are internal protocol state, recomputed as the
    topology changes; names stay flat. *)

type t = private {
  landmark : int;  (** l_v, as a graph node id *)
  route : int array;  (** node path [l_v; ...; v], inclusive of both ends *)
  labels : bytes;  (** packed per-hop forwarding labels *)
  label_bits : int;  (** exact bit length of [labels] *)
}

val make : Disco_graph.Graph.t -> route:int list -> t
(** [make g ~route] encodes an explicit route whose head is the landmark
    and whose last element is the addressed node. The route must be a
    path in [g].
    @raise Invalid_argument if the route is empty or not a path. *)

val of_parts : landmark:int -> route:int array -> labels:bytes -> label_bits:int -> t
(** Rehydrate an address from packed storage ({!Nddisco} keeps all
    addresses in flat slabs). The parts must originate from {!make};
    no re-validation is performed. *)

val decode : Disco_graph.Graph.t -> landmark:int -> labels:bytes -> hops:int -> int list
(** Replay [hops] packed labels from [landmark]: the data-plane forwarding
    walk. [decode g ~landmark ~labels ~hops] returns the full node path;
    inverse of {!make} (tested as a round-trip property). *)

val hops : t -> int
(** Number of forwarding steps ([route length - 1]). *)

val destination : t -> int

val route_byte_size : t -> int
(** Bytes occupied by the packed explicit route: [ceil (label_bits / 8)]. *)

val byte_size : name_bytes:int -> t -> int
(** Total wire size: landmark identifier ([name_bytes], e.g. 4 for
    IPv4-sized or 16 for IPv6-sized names) + packed route. *)

val pp : Format.formatter -> t -> unit
