module Graph = Disco_graph.Graph
module D = Dataplane

let ttl_factor = 4

let deliver_check (d : Disco.t) ~src ~dst =
  match Vicinity.path d.Disco.nd.Nddisco.vicinity dst src with
  | Some p when src <> dst -> Some (List.rev p)
  | _ -> None

(* The node's local route to [dst] if it stores one: landmark table or
   vicinity; mirrors Nddisco.knows but is written from the node's view. *)
let local_route (nd : Nddisco.t) u dst =
  if nd.Nddisco.landmarks.Landmarks.is_landmark.(dst) then
    Some (Landmark_trees.path_to nd.Nddisco.trees u ~lm:dst)
  else Vicinity.path nd.Nddisco.vicinity u dst

(* Rewrite at a node that holds [dst]'s address: the route to the
   destination's landmark from the node's own landmark table, then the
   explicit label route. *)
let address_route (nd : Nddisco.t) u dst =
  let addr = Nddisco.address nd dst in
  let lm = addr.Address.landmark in
  let label_path =
    Address.decode nd.Nddisco.graph ~landmark:lm ~labels:addr.Address.labels
      ~hops:(Address.hops addr)
  in
  if u = lm then label_path
  else Landmark_trees.path_to nd.Nddisco.trees u ~lm @ List.tl label_path

(* Rewrite [h] into a Carry header following [path] (current node first);
   the packet is put on the wire toward the path's second node. *)
let carry_along h path why =
  match path with
  | _ :: (next :: rest) ->
      D.Rewrite
        ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
          next,
          why )
  | _ -> D.Drop D.No_route

(* The Carry machine, shared by Disco, NDDisco and every label-routing leg:
   to-destination shortcutting at each hop (the first node holding a direct
   route diverts along it — its route is a shortest path, so the remaining
   distance strictly decreases; no loops), else consume one label. *)
let carry_step (nd : Nddisco.t) (h : D.header) ~at:u =
  if u = h.D.dst then D.Deliver
  else
    match local_route nd u h.D.dst with
    | Some (_ :: (_ :: _ as direct)) when direct <> h.D.labels ->
        carry_along h (u :: direct) D.Shortcut_divert
    | _ -> (
        match h.D.labels with
        | next :: rest ->
            D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
        | [] -> D.Drop D.No_route)

(* Seek: the packet carries only the flat name; the node classifies it
   exactly as the control plane's [Disco.classify_first] would from this
   node's view. One decision per hop: same-node transitions of the old
   multi-pass machine (Seek -> Carry at the proxy, say) compress into a
   single Rewrite. *)
let rec seek_step (d : Disco.t) (h : D.header) ~at:u ~tried_proxy =
  let nd = d.Disco.nd in
  let dst = h.D.dst in
  if u = dst then D.Deliver
  else
    match local_route nd u dst with
    | Some (_ :: _ :: _ as p) -> carry_along h p D.Direct_route
    | _ ->
        if Groups.same_group d.Disco.groups u dst then
          carry_along h (address_route nd u dst) D.Group_store_hit
        else if not tried_proxy then begin
          match Disco.classify_first d ~src:u ~dst with
          | Disco.Via_group_member w -> (
              match Vicinity.path nd.Nddisco.vicinity u w with
              | Some (_ :: (next :: rest)) ->
                  D.Rewrite
                    ( {
                        h with
                        D.phase = D.Steer { tried_proxy = true };
                        labels = rest;
                        waypoint = w;
                      },
                      next,
                      D.To_group_proxy w )
              | Some _ ->
                  (* The proxy is this node itself; its store came up empty
                     (same_group above), so fall to resolution. *)
                  resolution_step d h ~at:u
              | None -> D.Drop D.No_route)
          | _ -> resolution_step d h ~at:u
        end
        else resolution_step d h ~at:u

and resolution_step (d : Disco.t) (h : D.header) ~at:u =
  let nd = d.Disco.nd in
  let dst = h.D.dst in
  let owner = Resolution.owner d.Disco.resolution nd.Nddisco.names.(dst) in
  if u = owner then
    carry_along h (address_route nd u dst) (D.Resolution_via owner)
  else
    match Landmark_trees.path_to nd.Nddisco.trees u ~lm:owner with
    | _ :: (next :: rest) ->
        D.Rewrite
          ( {
              h with
              D.phase = D.Steer { tried_proxy = true };
              labels = rest;
              waypoint = owner;
            },
            next,
            D.Resolution_via owner )
    | _ -> D.Drop D.No_route

(* Steer: riding a leg toward the waypoint while still carrying only the
   name. Mid-leg nodes holding a direct route divert (becoming an ordinary
   Carry); at the waypoint (labels exhausted) the packet is re-classified. *)
let steer_step (d : Disco.t) (h : D.header) ~at:u ~tried_proxy =
  let nd = d.Disco.nd in
  if u = h.D.dst then D.Deliver
  else
    match h.D.labels with
    | [] -> seek_step d { h with D.waypoint = -1 } ~at:u ~tried_proxy
    | next :: rest -> (
        match local_route nd u h.D.dst with
        | Some (_ :: _ :: _ as p) -> carry_along h p D.Shortcut_divert
        | _ -> D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop))

(* The step functions allocate the rewritten header each hop: Rewrite
   carries a fresh immutable header by contract, so the L7 waivers below
   are the design, not an accident.  Their raise chains all bottom out in
   Landmark_trees/Bits range checks on states the control plane cannot
   produce (L9). *)
let forward (d : Disco.t) (h : D.header) ~at =
  match h.D.phase with
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Seek { tried_proxy } -> seek_step d h ~at ~tried_proxy
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Steer { tried_proxy } -> steer_step d h ~at ~tried_proxy
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Carry -> carry_step d.Disco.nd h ~at
  | D.Greedy | D.Fallback ->
      (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
      D.Drop (D.Protocol_error "disco: foreign header phase")

let first_header (_ : Disco.t) ~src:_ ~dst =
  D.plain ~dst (D.Seek { tried_proxy = false })

let carry_header ~dst path =
  match path with
  | _ :: rest -> { (D.plain ~dst D.Carry) with D.labels = rest }
  | [] -> D.plain ~dst D.Carry

let later_header (d : Disco.t) ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else
    (* The source now holds the address (and the handshake path when the
       destination sent one). *)
    match deliver_check d ~src ~dst with
    | Some exact -> carry_header ~dst exact
    | None -> (
        match address_route d.Disco.nd src dst with
        | _ :: _ as p -> carry_header ~dst p
        | [] -> first_header d ~src ~dst)

type trace = { walk : D.trace; handshake : int list option }

let run_walk (d : Disco.t) ~src header =
  let g = d.Disco.nd.Nddisco.graph in
  let w =
    D.walk ~ttl:(ttl_factor * Graph.n g) g ~forward:(forward d) ~src header
  in
  {
    walk = w;
    handshake =
      (if w.D.delivered then deliver_check d ~src ~dst:header.D.dst else None);
  }

let first_packet d ~src ~dst = run_walk d ~src (first_header d ~src ~dst)
let later_packet d ~src ~dst = run_walk d ~src (later_header d ~src ~dst)

let pp_trace ppf t =
  D.pp_trace ppf t.walk;
  match t.handshake with
  | Some p ->
      Format.fprintf ppf "@,handshake: %s"
        (String.concat "-" (List.map string_of_int p))
  | None -> ()

(* NDDisco's data plane: the pure Carry machine — the source already holds
   the destination's address, so first packets follow the raw route with
   per-hop to-destination shortcutting. *)
let forward_nd (nd : Nddisco.t) (h : D.header) ~at =
  match h.D.phase with
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Carry -> carry_step nd h ~at
  | D.Seek _ | D.Steer _ | D.Greedy | D.Fallback ->
      (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
      D.Drop (D.Protocol_error "nddisco: foreign header phase")

let first_header_nd (nd : Nddisco.t) ~src ~dst =
  carry_header ~dst (Nddisco.raw_route nd ~src ~dst)

let later_header_nd (nd : Nddisco.t) ~src ~dst =
  match Vicinity.path nd.Nddisco.vicinity dst src with
  | Some p when src <> dst -> carry_header ~dst (List.rev p)
  | _ -> first_header_nd nd ~src ~dst
