module Graph = Disco_graph.Graph
module D = Dataplane

let ttl_factor = 4

let deliver_check (d : Disco.t) ~src ~dst =
  match Vicinity.path d.Disco.nd.Nddisco.vicinity dst src with
  | Some p when src <> dst -> Some (List.rev p)
  | _ -> None

(* The node's local route to [dst] if it stores one: landmark table or
   vicinity; mirrors Nddisco.knows but is written from the node's view. *)
let local_route (nd : Nddisco.t) u dst =
  if nd.Nddisco.landmarks.Landmarks.is_landmark.(dst) then
    Some (Landmark_trees.path_to nd.Nddisco.trees u ~lm:dst)
  else Vicinity.path nd.Nddisco.vicinity u dst

(* Rewrite at a node that holds [dst]'s address: the route to the
   destination's landmark from the node's own landmark table, then the
   explicit label route. *)
let address_route (nd : Nddisco.t) u dst =
  let addr = Nddisco.address nd dst in
  let lm = addr.Address.landmark in
  let label_path =
    Address.decode nd.Nddisco.graph ~landmark:lm ~labels:addr.Address.labels
      ~hops:(Address.hops addr)
  in
  if u = lm then label_path
  else Landmark_trees.path_to nd.Nddisco.trees u ~lm @ List.tl label_path

(* Rewrite [h] into a Carry header following [path] (current node first);
   the packet is put on the wire toward the path's second node. *)
let carry_along h path why =
  match path with
  | _ :: (next :: rest) ->
      D.Rewrite
        ( { h with D.phase = D.Carry; labels = rest; waypoint = -1 },
          next,
          why )
  | _ -> D.Drop D.No_route

(* The Carry machine, shared by Disco, NDDisco and every label-routing leg:
   to-destination shortcutting at each hop (the first node holding a direct
   route diverts along it — its route is a shortest path, so the remaining
   distance strictly decreases; no loops), else consume one label. *)
let carry_step (nd : Nddisco.t) (h : D.header) ~at:u =
  if u = h.D.dst then D.Deliver
  else
    match local_route nd u h.D.dst with
    | Some (_ :: (_ :: _ as direct)) when direct <> h.D.labels ->
        carry_along h (u :: direct) D.Shortcut_divert
    | _ -> (
        match h.D.labels with
        | next :: rest ->
            D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
        | [] -> D.Drop D.No_route)

(* Seek: the packet carries only the flat name; the node classifies it
   exactly as the control plane's [Disco.classify_first] would from this
   node's view. One decision per hop: same-node transitions of the old
   multi-pass machine (Seek -> Carry at the proxy, say) compress into a
   single Rewrite. *)
let rec seek_step (d : Disco.t) (h : D.header) ~at:u ~tried_proxy =
  let nd = d.Disco.nd in
  let dst = h.D.dst in
  if u = dst then D.Deliver
  else
    match local_route nd u dst with
    | Some (_ :: _ :: _ as p) -> carry_along h p D.Direct_route
    | _ ->
        if Groups.same_group d.Disco.groups u dst then
          carry_along h (address_route nd u dst) D.Group_store_hit
        else if not tried_proxy then begin
          match Disco.classify_first d ~src:u ~dst with
          | Disco.Via_group_member w -> (
              match Vicinity.path nd.Nddisco.vicinity u w with
              | Some (_ :: (next :: rest)) ->
                  D.Rewrite
                    ( {
                        h with
                        D.phase = D.Steer { tried_proxy = true };
                        labels = rest;
                        waypoint = w;
                      },
                      next,
                      D.To_group_proxy w )
              | Some _ ->
                  (* The proxy is this node itself; its store came up empty
                     (same_group above), so fall to resolution. *)
                  resolution_step d h ~at:u
              | None -> D.Drop D.No_route)
          | _ -> resolution_step d h ~at:u
        end
        else resolution_step d h ~at:u

and resolution_step (d : Disco.t) (h : D.header) ~at:u =
  let nd = d.Disco.nd in
  let dst = h.D.dst in
  let owner = Resolution.owner d.Disco.resolution nd.Nddisco.names.(dst) in
  if u = owner then
    carry_along h (address_route nd u dst) (D.Resolution_via owner)
  else
    match Landmark_trees.path_to nd.Nddisco.trees u ~lm:owner with
    | _ :: (next :: rest) ->
        D.Rewrite
          ( {
              h with
              D.phase = D.Steer { tried_proxy = true };
              labels = rest;
              waypoint = owner;
            },
            next,
            D.Resolution_via owner )
    | _ -> D.Drop D.No_route

(* Steer: riding a leg toward the waypoint while still carrying only the
   name. Mid-leg nodes holding a direct route divert (becoming an ordinary
   Carry); at the waypoint (labels exhausted) the packet is re-classified. *)
let steer_step (d : Disco.t) (h : D.header) ~at:u ~tried_proxy =
  let nd = d.Disco.nd in
  if u = h.D.dst then D.Deliver
  else
    match h.D.labels with
    | [] -> seek_step d { h with D.waypoint = -1 } ~at:u ~tried_proxy
    | next :: rest -> (
        match local_route nd u h.D.dst with
        | Some (_ :: _ :: _ as p) -> carry_along h p D.Shortcut_divert
        | _ -> D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop))

(* The step functions allocate the rewritten header each hop: Rewrite
   carries a fresh immutable header by contract, so the L7 waivers below
   are the design, not an accident.  Their raise chains all bottom out in
   Landmark_trees/Bits range checks on states the control plane cannot
   produce (L9). *)
let forward (d : Disco.t) (h : D.header) ~at =
  match h.D.phase with
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Seek { tried_proxy } -> seek_step d h ~at ~tried_proxy
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Steer { tried_proxy } -> steer_step d h ~at ~tried_proxy
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Carry -> carry_step d.Disco.nd h ~at
  | D.Greedy | D.Fallback ->
      (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
      D.Drop (D.Protocol_error "disco: foreign header phase")

let first_header (_ : Disco.t) ~src:_ ~dst =
  D.plain ~dst (D.Seek { tried_proxy = false })

let carry_header ~dst path =
  match path with
  | _ :: rest -> { (D.plain ~dst D.Carry) with D.labels = rest }
  | [] -> D.plain ~dst D.Carry

let later_header (d : Disco.t) ~src ~dst =
  if src = dst then D.plain ~dst D.Carry
  else
    (* The source now holds the address (and the handshake path when the
       destination sent one). *)
    match deliver_check d ~src ~dst with
    | Some exact -> carry_header ~dst exact
    | None -> (
        match address_route d.Disco.nd src dst with
        | _ :: _ as p -> carry_header ~dst p
        | [] -> first_header d ~src ~dst)

type trace = { walk : D.trace; handshake : int list option }

let run_walk (d : Disco.t) ~src header =
  let g = d.Disco.nd.Nddisco.graph in
  let w =
    D.walk ~ttl:(ttl_factor * Graph.n g) g ~forward:(forward d) ~src header
  in
  {
    walk = w;
    handshake =
      (if w.D.delivered then deliver_check d ~src ~dst:header.D.dst else None);
  }

let first_packet d ~src ~dst = run_walk d ~src (first_header d ~src ~dst)
let later_packet d ~src ~dst = run_walk d ~src (later_header d ~src ~dst)

let pp_trace ppf t =
  D.pp_trace ppf t.walk;
  match t.handshake with
  | Some p ->
      Format.fprintf ppf "@,handshake: %s"
        (String.concat "-" (List.map string_of_int p))
  | None -> ()

(* NDDisco's data plane: the pure Carry machine — the source already holds
   the destination's address, so first packets follow the raw route with
   per-hop to-destination shortcutting. *)
let forward_nd (nd : Nddisco.t) (h : D.header) ~at =
  match h.D.phase with
  (* disco-lint: allow L7 L9 per-hop header rewrite is the Rewrite contract; raises only on control-plane-impossible states *)
  | D.Carry -> carry_step nd h ~at
  | D.Seek _ | D.Steer _ | D.Greedy | D.Fallback ->
      (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
      D.Drop (D.Protocol_error "nddisco: foreign header phase")

let first_header_nd (nd : Nddisco.t) ~src ~dst =
  carry_header ~dst (Nddisco.raw_route nd ~src ~dst)

let later_header_nd (nd : Nddisco.t) ~src ~dst =
  match Vicinity.path nd.Nddisco.vicinity dst src with
  | Some p when src <> dst -> carry_header ~dst (List.rev p)
  | _ -> first_header_nd nd ~src ~dst

(* ------------------------------------------------------------------ *)
(* Compiled fast path: reads the SAME packed state the typed steps
   consult — vicinity view records via their direct-index slots, address
   routes straight off Nddisco's CSR, the resolution owner from the
   Othello FIB — so compiling no longer re-flattens anything into private
   copies.  Landmark trees become parent rows primed per flow; name
   hashes split into unsigned 32-bit halves so the group tests never box
   an Int64. *)

type fast = {
  ffg : Graph.t;
  fis_lm : bool array;
  ftrees : Landmark_trees.t;
  flm : int array array;  (* parent row per landmark; [||] = unprimed *)
  fviews : Vicinity.view array;  (* shared with the typed face *)
  fghi : int array;  (* name-hash top/bottom 32 bits ([||] for NDDisco) *)
  fglo : int array;
  fgbits : int array;  (* per-node group prefix width *)
  ffib : Packed.Othello.t option;  (* resolution owner FIB; None for NDDisco *)
  falm : int array;  (* address landmark per node (shared slab) *)
  faroute : Packed.Csr.t;  (* address node paths [lm; ...; v] (shared CSR) *)
}

let compile_nd (nd : Nddisco.t) =
  let g = nd.Nddisco.graph in
  let n = Graph.n g in
  {
    ffg = g;
    fis_lm = nd.Nddisco.landmarks.Landmarks.is_landmark;
    ftrees = nd.Nddisco.trees;
    flm = Array.make n [||];
    fviews = Vicinity.slots nd.Nddisco.vicinity;
    fghi = [||];
    fglo = [||];
    fgbits = [||];
    ffib = None;
    falm = nd.Nddisco.addresses.Nddisco.alm;
    faroute = nd.Nddisco.addresses.Nddisco.aroute;
  }

let compile (d : Disco.t) =
  let nd = d.Disco.nd in
  let base = compile_nd nd in
  let n = Graph.n nd.Nddisco.graph in
  let fghi = Array.make n 0 in
  let fglo = Array.make n 0 in
  let fgbits = Array.make n 0 in
  for v = 0 to n - 1 do
    let hi, lo = Packed.split64 nd.Nddisco.hashes.(v) in
    fghi.(v) <- hi;
    fglo.(v) <- lo;
    fgbits.(v) <- Groups.bits_of d.Disco.groups v
  done;
  { base with fghi; fglo; fgbits; ffib = Some (Resolution.fib d.Disco.resolution) }

let fast_prime_lm f lm =
  if Array.length f.flm.(lm) = 0 then
    f.flm.(lm) <- Landmark_trees.parents f.ftrees ~lm

let fast_prime_nd f ~src:_ ~dst = if f.fis_lm.(dst) then fast_prime_lm f dst

let fast_owner f dst =
  match f.ffib with
  | Some fib -> Packed.Othello.query fib ~hi:f.fghi.(dst) ~lo:f.fglo.(dst)
  | None -> -1

let fast_prime f ~src:_ ~dst =
  if f.fis_lm.(dst) then fast_prime_lm f dst
  else begin
    fast_prime_lm f f.falm.(dst);
    fast_prime_lm f (fast_owner f dst)
  end

(* [w]'s index in V(v)'s sorted member row, or -1. *)
let rec vseg_search (mem : int array) w lo hi =
  if lo > hi then -1
  else begin
    let mid = (lo + hi) / 2 in
    let m = mem.(mid) in
    if m = w then mid
    else if m < w then vseg_search mem w (mid + 1) hi
    else vseg_search mem w lo (mid - 1)
  end

let vseg_find f v w =
  let mem = f.fviews.(v).Vicinity.members in
  vseg_search mem w 0 (Array.length mem - 1)

(* Label count of the vicinity path [v ~> x] with [x] already counted in
   [acc]; -1 when the view does not resolve it — exactly the cases where
   [Vicinity.path] returns None. *)
let rec vchain_len f v x acc =
  let j = vseg_find f v x in
  if j < 0 then -1
  else begin
    let p = f.fviews.(v).Vicinity.parents.(j) in
    if p = v then acc else vchain_len f v p (acc + 1)
  end

let rec vfill_back f (pkt : D.packet) v x i =
  pkt.D.proute.(i) <- x;
  if i > 0 then
    vfill_back f pkt v f.fviews.(v).Vicinity.parents.(vseg_find f v x) (i - 1)

(* Load the [c] labels of the vicinity path [v ~> w] (probed first with
   [vchain_len]) into the route window. *)
let vfill f pkt v w c =
  vfill_back f pkt v w (c - 1);
  pkt.D.proute_pos <- 0;
  pkt.D.proute_end <- c

(* The zero-alloc mirror of [local_route] + [carry_along]: load the node's
   direct route to [dst] into the route window.  Returns the label count
   (>= 1, window loaded), 0 (no local route, window untouched), or -1
   where the typed path raises (broken or unprimed landmark tree). *)
let local_fill f pkt u dst =
  if f.fis_lm.(dst) then begin
    let parents = f.flm.(dst) in
    if Array.length parents = 0 then -1
    else begin
      let c = D.route_fill_up pkt parents u dst in
      if c < 1 then -1 else c
    end
  end
  else begin
    let c = vchain_len f u dst 1 in
    if c < 1 then 0
    else begin
      vfill f pkt u dst c;
      c
    end
  end

(* [address_route] as a fill: the landmark-tree leg [u ~> l_dst] then the
   address labels.  Returns the label count or -1 (typed raise). *)
let addr_fill f (pkt : D.packet) u dst =
  let lm = f.falm.(dst) in
  let roff = f.faroute.Packed.Csr.off.(dst) in
  let rdata = f.faroute.Packed.Csr.data in
  let hops = f.faroute.Packed.Csr.off.(dst + 1) - roff - 1 in
  if u = lm then begin
    Array.blit rdata (roff + 1) pkt.D.proute 0 hops;
    pkt.D.proute_pos <- 0;
    pkt.D.proute_end <- hops;
    hops
  end
  else begin
    let parents = f.flm.(lm) in
    if Array.length parents = 0 then -1
    else begin
      let c = D.route_fill_up pkt parents u lm in
      if c < 0 then -1
      else begin
        Array.blit rdata (roff + 1) pkt.D.proute pkt.D.proute_end hops;
        pkt.D.proute_end <- pkt.D.proute_end + hops;
        c + hops
      end
    end
  end

(* Group tests over the hash halves (prefix widths are <= 30 < 32, so the
   prefix always lives in the top half). *)
let fd_prefix f v width = if width = 0 then 0 else f.fghi.(v) lsr (32 - width)

let fd_believes f v w =
  let b = f.fgbits.(v) in
  b = 0 || fd_prefix f w b = fd_prefix f v b

let fd_same_group f v w = fd_believes f v w && fd_believes f w v

let rec clz32_from x i =
  if i >= 32 then 32 else if (x lsr (31 - i)) land 1 = 1 then i else clz32_from x (i + 1)

(* [Hash_space.common_prefix_len] over the halves. *)
let fd_cpl f a b =
  let xh = f.fghi.(a) lxor f.fghi.(b) in
  if xh <> 0 then clz32_from xh 0
  else begin
    let xl = f.fglo.(a) lxor f.fglo.(b) in
    if xl = 0 then 64 else 32 + clz32_from xl 0
  end

(* [best_group_proxy]'s scan over V(u)'s member row: best proxy id in
   [pis.(1)], its prefix length in [pis.(2)], its distance in [pfs.(1)];
   same order (members ascending) and tie rule as the typed fold. *)
let rec proxy_scan f (pkt : D.packet) (vw : Vicinity.view) dst i stop =
  if i < stop then begin
    let w = vw.Vicinity.members.(i) in
    if w <> dst then begin
      let len = fd_cpl f w dst in
      let d = vw.Vicinity.dists.(i) in
      if len > pkt.D.pis.(2) || (len = pkt.D.pis.(2) && d < pkt.D.pfs.(1)) then begin
        pkt.D.pis.(1) <- w;
        pkt.D.pis.(2) <- len;
        pkt.D.pfs.(1) <- d
      end
    end;
    proxy_scan f pkt vw dst (i + 1) stop
  end

(* The step machine, decision-for-decision the typed [seek_step] /
   [resolution_step] / [steer_step] / [carry_step].  The only intended
   divergence: a Carry divert whose direct route equals the remaining
   labels is taken here and consumed by the typed step — same next hop,
   same remaining labels, so the walks cannot differ. *)
let rec fd_seek f (pkt : D.packet) u tried =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else begin
    let c = local_fill f pkt u dst in
    if c >= 1 then begin
      pkt.D.pmode <- D.mode_carry;
      pkt.D.pway <- -1;
      D.route_next pkt
    end
    else if c < 0 then D.fast_protocol
    else if fd_same_group f u dst then fd_addr_carry f pkt u dst
    else if not tried then begin
      pkt.D.pis.(1) <- -1;
      pkt.D.pis.(2) <- -1;
      pkt.D.pfs.(1) <- infinity;
      let vw = f.fviews.(u) in
      proxy_scan f pkt vw dst 0 (Array.length vw.Vicinity.members);
      let w = pkt.D.pis.(1) in
      if w >= 0 && fd_same_group f w dst then begin
        if w = u then fd_resolution f pkt u dst
        else begin
          let cw = vchain_len f u w 1 in
          if cw >= 1 then begin
            vfill f pkt u w cw;
            pkt.D.pmode <- D.mode_steer_tried;
            pkt.D.pway <- w;
            D.route_next pkt
          end
          else D.fast_no_route
        end
      end
      else fd_resolution f pkt u dst
    end
    else fd_resolution f pkt u dst
  end

and fd_addr_carry f (pkt : D.packet) u dst =
  let c = addr_fill f pkt u dst in
  if c < 0 then D.fast_protocol
  else if c = 0 then D.fast_no_route
  else begin
    pkt.D.pmode <- D.mode_carry;
    pkt.D.pway <- -1;
    D.route_next pkt
  end

and fd_resolution f (pkt : D.packet) u dst =
  let owner = fast_owner f dst in
  if u = owner then fd_addr_carry f pkt u dst
  else begin
    let parents = f.flm.(owner) in
    if Array.length parents = 0 then D.fast_protocol
    else begin
      let c = D.route_fill_up pkt parents u owner in
      if c < 1 then D.fast_protocol
      else begin
        pkt.D.pmode <- D.mode_steer_tried;
        pkt.D.pway <- owner;
        D.route_next pkt
      end
    end
  end

and fd_steer f (pkt : D.packet) u tried =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else if D.route_len pkt = 0 then begin
    pkt.D.pway <- -1;
    fd_seek f pkt u tried
  end
  else begin
    let c = local_fill f pkt u dst in
    if c >= 1 then begin
      pkt.D.pmode <- D.mode_carry;
      pkt.D.pway <- -1;
      D.route_next pkt
    end
    else if c < 0 then D.fast_protocol
    else D.route_next pkt
  end

and fd_carry f (pkt : D.packet) u =
  let dst = pkt.D.pdst in
  if u = dst then D.fast_deliver
  else begin
    let c = local_fill f pkt u dst in
    if c >= 1 then D.route_next pkt
    else if c < 0 then D.fast_protocol
    else if D.route_len pkt > 0 then D.route_next pkt
    else D.fast_no_route
  end

let fast_step f (pkt : D.packet) u =
  let m = pkt.D.pmode in
  if m = D.mode_seek then fd_seek f pkt u false
  else if m = D.mode_seek_tried then fd_seek f pkt u true
  else if m = D.mode_steer then fd_steer f pkt u false
  else if m = D.mode_steer_tried then fd_steer f pkt u true
  else if m = D.mode_carry then fd_carry f pkt u
  else D.fast_protocol

let fast_step_nd f (pkt : D.packet) u =
  if pkt.D.pmode = D.mode_carry then fd_carry f pkt u else D.fast_protocol
