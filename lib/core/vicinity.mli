(** Vicinities: the k closest nodes to each node (§4.2).

    [V(v)] is the set of [k = Θ(sqrt(n log n))] nodes closest to [v]
    (excluding [v] itself), with shortest paths to each. Fixing the size —
    rather than growing clusters until a landmark is met, as S4 does — is
    what gives Disco its per-node state bound on every topology.

    Views are computed lazily (truncated Dijkstra per node) and cached,
    since stretch experiments touch only the nodes along sampled routes
    while state accounting needs only the uniform size [k]. *)

type t

val create : Disco_graph.Graph.t -> k:int -> t
val k : t -> int

type view = {
  members : int array;  (** sorted ascending by node id; excludes the owner *)
  dists : float array;  (** parallel to [members] *)
  parents : int array;
      (** parallel: predecessor on the shortest path from the owner;
          the owner itself appears as predecessor of its first hops *)
  radius : float;  (** max distance to a member, 0 if k = 0 *)
}

val view : t -> int -> view
(** [view t v] is V(v), computing and caching it on first use. *)

val mem : t -> int -> int -> bool
(** [mem t v w]: is [w] in V(v)? (Not symmetric!) *)

val dist : t -> int -> int -> float option
(** Distance [d(v, w)] if [w] is in V(v). *)

val path : t -> int -> int -> int list option
(** Shortest path [v; ...; w] if [w] is in V(v). *)

val first_hop_count : t -> int -> int
(** Number of distinct first hops used by v's vicinity routes — the
    forwarding-label mappings v must retain for them (Theorem 2's
    label-mapping state term). *)

val precompute_all : t -> unit
(** Force every view into the cache (used before tight measurement
    loops). *)

val cached_count : t -> int

val slots : t -> view array
(** The packed face for compiled plans: slot [v] is the same record
    [view t v] returns, indexed directly with no lock and no copying.
    Forcing it computes every view once ([precompute_all] semantics);
    typed lazy fills and the compiled fast path then share the arrays. *)

val view_bytes : view -> int
(** Exact bytes of one view's member/dist/parent arrays plus radius. *)
