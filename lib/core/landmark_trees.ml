module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Pool = Disco_util.Pool

(* Lazily-computed SSSP trees, one per landmark (or per tree root a route
   actually touches). The memo is shared by every query handle of a router
   — it is what makes routes on converged state cheap — so it must tolerate
   concurrent fills from pool tasks: [Pool.Memo] serializes table access,
   and the SSSP itself is a deterministic function of the root, so a lost
   fill race converges on an equal tree. Each fill runs on its own
   workspace; a shared scratch workspace here would race. *)

type t = {
  graph : Graph.t;
  cache : (int, Dijkstra.sssp) Pool.Memo.t;
}

let create graph = { graph; cache = Pool.Memo.create () }

let tree t lm =
  Pool.Memo.find_or_add t.cache lm (fun () ->
      Dijkstra.sssp ~ws:(Dijkstra.make_workspace t.graph) t.graph lm)

let dist t ~lm v = (tree t lm).Dijkstra.dist.(v)

let path_from t ~lm v =
  let s = tree t lm in
  if s.Dijkstra.dist.(v) = infinity then
    invalid_arg "Landmark_trees.path_from: unreachable";
  Dijkstra.path_of_parents
    ~parent:(fun u -> s.Dijkstra.parent.(u))
    ~src:lm ~dst:v

let path_to t v ~lm = List.rev (path_from t ~lm v)
let parents t ~lm = (tree t lm).Dijkstra.parent

let cached_count t = Pool.Memo.length t.cache
