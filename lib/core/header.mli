(** Wire-format packet headers.

    What a Disco packet actually carries, and what it costs. A first
    packet ships the destination's flat name plus, once an address is
    known, the remaining explicit route (compact per-hop labels). The
    Up-Down-Stream / Path-Knowledge heuristics additionally require
    "listing the global identifiers of every node along the path ...
    on a single initial packet" (§4.2) — an O(route · log n) surcharge
    this module makes measurable (the [header] experiment). *)

type cost = {
  name_bytes : int;  (** the flat name carried end-to-end *)
  label_bytes : int;  (** packed explicit-route labels at the source *)
  id_list_bytes : int;
      (** global node ids of the route (0 unless the heuristic needs them) *)
  total : int;
}

val first_packet :
  Disco.t ->
  heuristic:Shortcut.heuristic ->
  name_bytes:int ->
  src:int ->
  dst:int ->
  cost
(** Header of the first packet as it leaves the source, for the route the
    given heuristic produces. A self-certifying SHA-1-sized identifier is
    [name_bytes = 20]. *)

val later_packet : Disco.t -> name_bytes:int -> src:int -> dst:int -> cost
(** Later packets carry the name plus the explicit route only. *)

val encode_labels : Disco_graph.Graph.t -> int list -> bytes * int
(** [encode_labels g path] packs the per-hop forwarding labels of a node
    path into an MSB-first bit stream: the label at a degree-[d] node is
    its neighbor rank in [ceil(log2 d)] bits. Returns the packed bytes
    (final partial byte zero-padded) and the exact bit length.
    @raise Invalid_argument if [path] is not a path in [g]. *)

val decode_labels : Disco_graph.Graph.t -> src:int -> hops:int -> bytes -> int list
(** [decode_labels g ~src ~hops labels] replays [hops] packed labels from
    [src] — the data-plane forwarding walk. Inverse of {!encode_labels}
    (property-tested as a round-trip).
    @raise Invalid_argument on reader underflow. *)
