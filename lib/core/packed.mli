(** Packed, flat per-node routing state.

    Mirrors what [Disco_graph.Graph] does for adjacency: every table that
    used to live in boxed hashtables or lists is stored as a handful of
    int arrays / Bigarray slabs, so a million-node build fits in RAM and
    both the typed [forward] faces and the compiled [Dataplane.fast_plan]
    read the same memory. Byte accounting is exact: each structure knows
    the size of its slabs, so [ROUTER.state_bytes] reports real storage
    rather than [Obj]-guesswork. *)

(** Growable int array; build-time staging before freezing into a {!Csr}. *)
module Grow : sig
  type t

  val create : ?capacity:int -> unit -> t
  val len : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit
  val clear : t -> unit
  val to_array : t -> int array
end

(** Compressed sparse rows: [n] variable-length int rows in two flat
    arrays, exactly the [row]/[col] layout [Disco_graph.Graph] uses. *)
module Csr : sig
  type t = private { off : int array; data : int array }

  val of_rows : int array array -> t

  val of_fn : n:int -> row_len:(int -> int) -> fill:(int -> int array -> int -> unit) -> t
  (** [of_fn ~n ~row_len ~fill] sizes the offsets from [row_len] and then
      calls [fill i data off] for each row to write [row_len i] ints at
      [data.(off)..]; avoids materialising intermediate row arrays. *)

  val of_parts : off:int array -> data:int array -> t
  (** Adopt already-packed offsets and data (no copy). [off] must be
      monotone with [off.(0) = 0] and end at [Array.length data]. *)

  val rows : t -> int
  val row_len : t -> int -> int
  val row_off : t -> int -> int
  val get : t -> int -> int -> int
  val total : t -> int
  val iter_row : t -> int -> (int -> unit) -> unit
  val sub_row : t -> int -> int array
  (** Fresh copy of row [i]; boxed-face convenience, not for hot paths. *)

  val find_sorted : t -> int -> int -> int
  (** [find_sorted t i x] is the index of [x] within row [i] (which must be
      sorted ascending), or [-1]. Binary search; allocation-free. *)

  val byte_size : t -> int
end

(** Flat [float] slab backed by a float64 [Bigarray]; reads are unboxed. *)
module Fslab : sig
  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : int -> init:float -> t
  val len : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val byte_size : t -> int
end

(** Sorted 64-bit keys in an int64 [Bigarray] slab with parallel int
    values: the binary-search map backing resolution tables and
    consistent-hash rings. Keys are ordered as unsigned integers, ties
    broken by value, matching the hash-ring conventions in
    [Disco_hash]. Reading a key boxes an [Int64]; hot paths keep
    (hi, lo) 31-bit halves elsewhere and never touch [key]. *)
module Kv64 : sig
  type t

  val of_pairs : (int64 * int) array -> t
  val length : t -> int
  val key : t -> int -> int64
  val value : t -> int -> int

  val rank_geq : t -> int64 -> int
  (** First index whose key is >= the probe (unsigned order);
      [length t] if none. *)

  val find : t -> int64 -> int
  (** Value at the probe key, or [-1] when absent. With duplicate keys,
      the one with the smallest value wins (the sort order). *)

  val byte_size : t -> int
end

(** Fixed-width bit-packed int vector (width 1..30); the value slabs of
    the {!Othello} maps. Values are packed [62 / width] per word so reads
    never cross a word boundary. *)
module Bitvec : sig
  type t

  val create : width:int -> len:int -> t
  val width : t -> int
  val len : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val byte_size : t -> int
end

(** Othello hashing (Yu et al., CoNEXT'17-style minimal perfect mapping):
    a key's value is [A.(h_a key) lxor B.(h_b key)] over two bit-packed
    slabs of ~1.33n slots each. Lookup is two array probes and an xor —
    allocation-free — at a few bits per key. The build peels the bipartite
    key graph (degree-1 elimination with the xor trick); a cyclic draw
    rebuilds with the next seed. Keys are (hi, lo) unsigned 31-bit halves
    of the 64-bit name hashes from [Disco_hash.Hash_space].

    Querying a key that was not in the build returns an arbitrary
    in-range value — callers only probe live names (the FIB invariant),
    exactly as in the Othello paper's forwarding setting. *)
module Othello : sig
  type t

  val build : hi:int array -> lo:int array -> values:int array -> t
  (** Raises [Invalid_argument] on duplicate (hi, lo) keys: a duplicated
      key is a 2-cycle in the bipartite graph and can never peel. *)

  val query : t -> hi:int -> lo:int -> int
  val length : t -> int

  val seed : t -> int
  (** Final seed; > 0 iff at least one cyclic draw forced a rebuild. *)

  val bits_per_key : t -> float
  val byte_size : t -> int
end

(** Fenwick (binary indexed) tree over unit counts: O(log n) insert and
    k-th-member select, the index structure behind VRR's incremental
    virtual ring. *)
module Fenwick : sig
  type t

  val create : int -> t
  val add : t -> int -> int -> unit
  val prefix : t -> int -> int
  (** [prefix t i] is the sum of counts at indices < [i]. *)

  val total : t -> int

  val kth : t -> int -> int
  (** [kth t k] is the index holding the (k+1)-th unit (0-based rank);
      counts must be 0/1 for rank semantics. Raises [Invalid_argument]
      when [k < 0 || k >= total t]. *)

  val byte_size : t -> int
end

val split64 : int64 -> int * int
(** (hi, lo) unsigned 32-bit halves of a hash id, as nonnegative ints —
    the boxing-free representation used on fast paths and Othello keys. *)
