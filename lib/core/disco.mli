(** Disco: name-independent compact routing on flat names (§4.4).

    Disco = NDDisco + the landmark resolution database + sloppy groups
    disseminated over the Symphony overlay. To route to a flat name, a
    source that does not already know the destination's address forwards
    to the vicinity member whose hash best matches the destination's —
    w.h.p. a member of the destination's sloppy group, which stores the
    address — and that member completes the route:

    [s ~> w ~> l_t ~> t]

    Theorem 1: stretch <= 7 on the first packet, <= 3 afterwards, w.h.p.
    Both theorems are exercised as properties in the test suite; the
    evaluation harness measures the actual distributions. *)

type t = {
  nd : Nddisco.t;
  groups : Groups.t;
  overlay : Overlay.t;
  resolution : Resolution.t;
}

val build :
  ?params:Params.t ->
  ?names:Name.t array ->
  ?landmark_ids:int array ->
  ?groups:Groups.t ->
  rng:Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  t
(** Build full converged Disco state over a graph. [groups] overrides the
    default exact-estimate grouping (used by the n-error experiment). *)

val of_nddisco : rng:Disco_util.Rng.t -> ?groups:Groups.t -> Nddisco.t -> t

type first_packet_case =
  | Trivial  (** source = destination *)
  | Direct_landmark  (** destination is a landmark *)
  | Direct_vicinity  (** destination in the source's vicinity *)
  | Known_address  (** source is in the destination's group *)
  | Via_group_member of int  (** the vicinity member w that held the address *)
  | Resolution_fallback
      (** no usable group member in the vicinity (vanishingly rare);
          fell back to the landmark resolution database *)

val classify_first : t -> src:int -> dst:int -> first_packet_case

val route_first :
  ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list
(** First packet of a flow toward a flat name (stretch <= 7 w.h.p.). *)

val route_first_case :
  ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list * first_packet_case

val route_later :
  ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list
(** Packets after the handshake (stretch <= 3 w.h.p.); identical to
    NDDisco since the source now holds the destination's address. *)

type state_detail = {
  nd_detail : Nddisco.state_detail;
  group_entries : int;  (** addresses of group members stored at the node *)
  overlay_neighbors : int;
}

val state_entries : t -> int -> state_detail
val total_entries : state_detail -> int

val state_bytes : t -> name_bytes:int -> int -> float
(** Data-plane state in bytes at a node (Fig 7): route entries cost
    name + label bytes; address mappings (groups, resolution) cost
    name + address bytes. *)

val packed_state_bytes : t -> int -> float
(** Exact per-node state from the packed slabs (vicinity view, landmark
    tree slots, address slab slice, ring, Othello FIB share, stored group
    and resolution addresses) — no name-size modelling, no [Obj]
    guesswork. Forces only what [v]'s accounting needs. *)
