module Graph = Disco_graph.Graph
module Bits = Disco_util.Bits

type t = { landmark : int; route : int array; labels : bytes; label_bits : int }

let make g ~route =
  match route with
  | [] -> invalid_arg "Address.make: empty route"
  | landmark :: _ ->
      let writer = Bits.Writer.create () in
      let rec encode = function
        | [] | [ _ ] -> ()
        | u :: (v :: _ as rest) ->
            (match Graph.neighbor_rank g u v with
            | None -> invalid_arg "Address.make: route is not a path"
            | Some rank ->
                Bits.Writer.put writer rank ~width:(Bits.width_for (Graph.degree g u)));
            encode rest
      in
      encode route;
      {
        landmark;
        route = Array.of_list route;
        labels = Bits.Writer.to_bytes writer;
        label_bits = Bits.Writer.bit_length writer;
      }

let of_parts ~landmark ~route ~labels ~label_bits = { landmark; route; labels; label_bits }

let decode g ~landmark ~labels ~hops =
  let reader = Bits.Reader.of_bytes labels in
  let rec walk u remaining acc =
    if remaining = 0 then List.rev (u :: acc)
    else begin
      let rank = Bits.Reader.get reader ~width:(Bits.width_for (Graph.degree g u)) in
      let v, _ = Graph.nth_neighbor g u rank in
      walk v (remaining - 1) (u :: acc)
    end
  in
  walk landmark hops []

let hops t = Array.length t.route - 1
let destination t = t.route.(Array.length t.route - 1)
let route_byte_size t = (t.label_bits + 7) / 8
let byte_size ~name_bytes t = name_bytes + route_byte_size t

let pp ppf t =
  Format.fprintf ppf "@[<h>lm=%d route=[%s] %d bits (%d B)@]" t.landmark
    (String.concat ";" (Array.to_list (Array.map string_of_int t.route)))
    t.label_bits (route_byte_size t)
