(** NDDisco: the name-dependent distributed compact routing protocol
    (§4.2).

    Every node knows shortest paths to all landmarks and to its vicinity;
    its address is (closest landmark, explicit route from it). Given the
    destination's {e address}, a source routes:

    - directly, if the destination is a landmark or in the source's
      vicinity;
    - otherwise via the destination's landmark, [s ~> l_t ~> t] — worst
      case stretch 5 on the first packet;
    - after the handshake (the destination replies with the exact path if
      the source is in {e its} vicinity), worst-case stretch 3.

    This module is the static simulator's view: tables as they stand after
    path-vector convergence (the dynamic construction lives in
    {!Disco_pathvector.Pathvector} and the two are cross-checked in the
    test suite). *)

type addresses = {
  alm : int array;  (** closest landmark per node *)
  aroute : Packed.Csr.t;  (** explicit routes [l_v; ...; v], one CSR row per node *)
  albl_off : int array;  (** byte offsets into [albl], length n+1 *)
  albl_bits : int array;  (** exact label bit length per node *)
  albl : Bytes.t;  (** concatenated per-hop forwarding labels *)
}
(** Every address packed into flat slabs (the succinct-state layout): the
    compiled data plane walks [aroute] rows in place; {!address}
    rehydrates a boxed {!Address.t} for the typed face. *)

type t = {
  graph : Disco_graph.Graph.t;
  params : Params.t;
  names : Name.t array;
  hashes : Disco_hash.Hash_space.id array;
  landmarks : Landmarks.t;
  vicinity : Vicinity.t;
  trees : Landmark_trees.t;
  addresses : addresses;
}

val build :
  ?params:Params.t ->
  ?names:Name.t array ->
  ?landmark_ids:int array ->
  ?guarantee_coverage:bool ->
  rng:Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  t
(** Construct converged protocol state. [landmark_ids] overrides random
    landmark selection (operators may choose landmarks, §6);
    [guarantee_coverage] (default false) repairs the landmark set with
    {!Landmarks.ensure_coverage} so the stretch theorems hold
    deterministically rather than w.h.p. *)

val n : t -> int

val address : t -> int -> Address.t
(** Rehydrated from the packed slabs; allocates — typed face only. *)

val address_landmark : t -> int -> int
(** [ (address t v).landmark ] without the rehydration. *)

val address_route_list : t -> int -> int list
(** Route column of [v]'s address, read straight off the CSR. *)

val knows : t -> Shortcut.knowledge
(** Direct-path knowledge of a node: shortest paths to landmarks and to
    its vicinity — what shortcutting is allowed to consult. *)

val raw_route : t -> src:int -> dst:int -> int list
(** The unshortcut route a first packet follows when [src] holds [dst]'s
    address: direct if [dst] is a landmark or in V(src), else
    [src ~> l_dst ~> dst]. *)

val route_first : ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list
(** First-packet route (stretch <= 5 after shortcutting; default heuristic
    {!Shortcut.No_path_knowledge} as in all the paper's headline results). *)

val route_later : ?heuristic:Shortcut.heuristic -> t -> src:int -> dst:int -> int list
(** Route after the handshake: if [src] is in V(dst), the destination has
    revealed the exact shortest path; otherwise same as a first packet
    (stretch <= 3 given a landmark in each vicinity). *)

val address_slab_bytes : t -> int -> int
(** Exact bytes of [v]'s slice of the packed address slabs. *)

val packed_state_bytes : t -> int -> float
(** Exact per-node state measured from the packed slabs: vicinity view
    arrays + a (parent, dist) slot per landmark tree + the node's own
    address. Forces only [v]'s vicinity view (lazy-friendly at large n). *)

type state_detail = {
  vicinity_entries : int;
  landmark_entries : int;
  label_mappings : int;
  resolution_entries : int;  (** nonzero only at landmarks; set by caller *)
}

val state_entries : ?resolution_entries:int -> t -> int -> state_detail
(** Data-plane routing-table entries at a node, per the paper's state
    accounting (§5.2): vicinity + landmark forwarding entries + forwarding
    label mappings (+ name-resolution load on landmarks, supplied by the
    resolution module). *)

val total_entries : state_detail -> int
