(** Disco's data plane: the per-hop forward functions for Disco and
    NDDisco, expressed as {!Dataplane.decision}s.

    {!Disco.route_first}/{!Disco.route_later} compute routes from the
    static simulator's global view; this module {e executes} a packet hop
    by hop using only state the forwarding node actually holds — its
    vicinity table, its landmark routes, its sloppy-group address store —
    exactly as a router would. The walk and the oracle must agree on
    delivery and on path length (tested, and enforced by disco-check's
    walk≡oracle differential), which is the strongest internal check that
    the protocol is genuinely distributed: no step consults information
    the current node wouldn't have.

    A first packet toward a flat name goes through phases:

    + at the source ({!Dataplane.Seek}): classify — deliver locally,
      source-route if the address is known, else head for the best group
      proxy in the vicinity;
    + at the proxy: look the name up in the group store and rewrite the
      packet with the destination's address ({!Dataplane.Carry});
    + toward the landmark ({!Dataplane.Steer}): follow the path-vector
      route to [l_t];
    + from the landmark: consume the address's forwarding labels bit by
      bit (the explicit route);
    + any node on the way that knows a direct route to the destination
      diverts ("to-destination" shortcutting), and the destination answers
      with the exact path when the source is in {e its} vicinity (the
      handshake), which is where later packets' stretch-3 routes come
      from. *)

type trace = {
  walk : Dataplane.trace;  (** the executed walk, typed steps included *)
  handshake : int list option;
      (** the exact path the destination reveals if the source is in its
          vicinity (None otherwise) *)
}

val ttl_factor : int
(** TTL budget as a multiple of [n] (Disco uses [4 * n] decisions). *)

val forward : Disco.t -> Dataplane.header -> at:int -> Dataplane.decision
(** One Disco forwarding decision at node [at], consulting only that
    node's vicinity, landmark, group-store and resolution state. *)

val first_header : Disco.t -> src:int -> dst:int -> Dataplane.header
(** The header a source emits for a first packet: just the flat name
    ({!Dataplane.Seek}). *)

val later_header : Disco.t -> src:int -> dst:int -> Dataplane.header
(** The header once the source holds the destination's address (and the
    handshake path when the destination sent one): an explicit
    {!Dataplane.Carry} route, falling back to a first-packet header when
    the source holds nothing. *)

val first_packet : Disco.t -> src:int -> dst:int -> trace
(** Execute a first packet addressed to [dst]'s flat name. *)

val later_packet : Disco.t -> src:int -> dst:int -> trace
(** Execute a packet once the source holds the destination's address (and
    the handshake reply, if one was sent). *)

val pp_trace : Format.formatter -> trace -> unit

(** {2 NDDisco}

    NDDisco's contract assumes the source already holds the destination's
    address, so its data plane is the pure label-route machine: an
    explicit {!Dataplane.Carry} header from the source, with
    to-destination shortcutting at every hop. *)

val forward_nd : Nddisco.t -> Dataplane.header -> at:int -> Dataplane.decision
val first_header_nd : Nddisco.t -> src:int -> dst:int -> Dataplane.header
val later_header_nd : Nddisco.t -> src:int -> dst:int -> Dataplane.header

(** {2 Compiled fast path}

    The zero-alloc face of {!forward}/{!forward_nd}: vicinity views
    flattened into one CSR, landmark trees as parent rows primed per
    flow, name hashes as unsigned 32-bit halves.  {!fast_step} mirrors
    the typed steps decision for decision (disco-check's fast≡typed
    differential holds them to the same hop sequence and verdict). *)

type fast

val compile : Disco.t -> fast
val compile_nd : Nddisco.t -> fast

val fast_prime : fast -> src:int -> dst:int -> unit
(** Force the landmark parent rows a flow to [dst] can touch: the
    destination itself when it is a landmark, else its address landmark
    and its resolution owner. *)

val fast_prime_nd : fast -> src:int -> dst:int -> unit

val fast_step : fast -> Dataplane.packet -> int -> int
(** One zero-alloc Disco decision (Seek/Steer/Carry machine). *)

val fast_step_nd : fast -> Dataplane.packet -> int -> int
(** One zero-alloc NDDisco decision (pure Carry machine). *)
