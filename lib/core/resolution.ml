module Hash_space = Disco_hash.Hash_space
module Consistent_hash = Disco_hash.Consistent_hash

type t = {
  nd : Nddisco.t;
  ring : Consistent_hash.t;
  sorted : Packed.Kv64.t; (* every node keyed by name hash *)
  mutable fib : Packed.Othello.t option; (* name hash -> owner landmark *)
  mutable owner_cache : int array option;
}

let build (nd : Nddisco.t) =
  let ring =
    Consistent_hash.create
      ~replicas:nd.params.resolution_replicas
      ~owners:nd.landmarks.ids
      ~owner_name:(fun lm -> nd.names.(lm))
      ()
  in
  let sorted = Packed.Kv64.of_pairs (Array.mapi (fun v h -> (h, v)) nd.hashes) in
  { nd; ring; sorted; fib = None; owner_cache = None }

let owner t name = Consistent_hash.owner_of_name t.ring name

let owners_by_node t =
  match t.owner_cache with
  | Some a -> a
  | None ->
      let a = Array.map (fun h -> Consistent_hash.owner_of t.ring h) t.nd.hashes in
      t.owner_cache <- Some a;
      a

(* The succinct owner table: an Othello map from name-hash halves to the
   owning landmark, a few bits per name instead of an 8-byte array slot.
   Values reproduce [owners_by_node] exactly (they are built from it), so
   the compiled fast path and the typed face stay bit-identical. *)
let fib t =
  match t.fib with
  | Some f -> f
  | None ->
      let owners = owners_by_node t in
      let n = Array.length t.nd.hashes in
      let hi = Array.make n 0 and lo = Array.make n 0 in
      Array.iteri
        (fun v h ->
          let h32, l32 = Packed.split64 h in
          hi.(v) <- h32;
          lo.(v) <- l32)
        t.nd.hashes;
      let f = Packed.Othello.build ~hi ~lo ~values:owners in
      t.fib <- Some f;
      f

let entries_per_landmark t =
  Consistent_hash.load_counts t.ring ~keys:t.nd.hashes

let entries_at t v =
  if not t.nd.landmarks.is_landmark.(v) then 0
  else begin
    let owners = owners_by_node t in
    let count = ref 0 in
    Array.iter (fun o -> if o = v then incr count) owners;
    !count
  end

let resolve_then_route ?(heuristic = Shortcut.No_path_knowledge) t ~src ~dst =
  let nd = t.nd in
  if src = dst then [ src ]
  else begin
    let raw from_node to_node =
      let lm_owner = owner t nd.names.(to_node) in
      if lm_owner = from_node || nd.landmarks.is_landmark.(to_node) then
        Nddisco.raw_route nd ~src:from_node ~dst:to_node
      else begin
        match Vicinity.path nd.vicinity from_node to_node with
        | Some p -> p (* destination nearby: no resolution trip needed *)
        | None ->
            let to_owner =
              Landmark_trees.path_to nd.trees from_node ~lm:lm_owner
            in
            let onward = Nddisco.raw_route nd ~src:lm_owner ~dst:to_node in
            to_owner @ List.tl onward
      end
    in
    let fwd = raw src dst in
    let rev =
      if Shortcut.uses_reverse heuristic then Some (raw dst src) else None
    in
    Shortcut.apply ~graph:nd.graph ~knows:(Nddisco.knows nd) heuristic ~fwd ~rev
  end

let find_closest_hash t key =
  let arr = t.sorted in
  let n = Packed.Kv64.length arr in
  (* Successor index by binary search, then compare with predecessor by
     circular distance. *)
  let r = Packed.Kv64.rank_geq arr key in
  let succ_idx = if r = n then 0 else r in
  let pred_idx = (succ_idx + n - 1) mod n in
  let d_succ = Hash_space.ring_distance key (Packed.Kv64.key arr succ_idx) in
  let d_pred = Hash_space.ring_distance key (Packed.Kv64.key arr pred_idx) in
  if Hash_space.compare_unsigned d_pred d_succ < 0 then Packed.Kv64.value arr pred_idx
  else Packed.Kv64.value arr succ_idx

let ring_byte_size t = Consistent_hash.byte_size t.ring

let byte_size t =
  Consistent_hash.byte_size t.ring
  + Packed.Kv64.byte_size t.sorted
  + match t.fib with Some f -> Packed.Othello.byte_size f | None -> 0
