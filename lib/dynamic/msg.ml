type address = { lm : int; lm_path : int list }

type t =
  | Hello
  | Route_ann of {
      dest : int;
      dest_is_landmark : bool;
      dist : float;
      path : int list;
    }
  | Route_withdraw of { dest : int }
  | Resolve_insert of {
      origin : int;
      origin_name : string;
      addr : address;
      target_lm : int;
    }
  | Addr_gossip of {
      origin : int;
      origin_hash : Disco_hash.Hash_space.id;
      addr : address;
      sender_hash : Disco_hash.Hash_space.id;
    }

let describe = function
  | Hello -> "hello"
  | Route_ann { dest; dist; _ } -> Printf.sprintf "route(%d, %.3f)" dest dist
  | Route_withdraw { dest } -> Printf.sprintf "withdraw(%d)" dest
  | Resolve_insert { origin; target_lm; _ } ->
      Printf.sprintf "insert(%d -> lm %d)" origin target_lm
  | Addr_gossip { origin; _ } -> Printf.sprintf "gossip(%d)" origin
