(** Wire messages of the dynamic Disco protocol.

    Everything a live deployment would exchange: periodic hellos (liveness),
    path-vector route announcements (landmarks and vicinities, §4.2),
    soft-state address inserts to the resolution database (§4.3), and the
    directional address gossip of the dissemination overlay (§4.4).

    Addresses travel as (landmark, explicit node path); the byte-level
    label encoding is exercised by {!Disco_core.Address} and omitted here
    to keep the simulation readable. *)

type address = { lm : int; lm_path : int list  (** landmark .. owner *) }

type t =
  | Hello  (** neighbor liveness beacon *)
  | Route_ann of {
      dest : int;
      dest_is_landmark : bool;
      dist : float;
      path : int list;  (** sender .. dest *)
    }
  | Route_withdraw of { dest : int }
      (** poisoned route: the sender no longer stands behind the path to
          [dest] it previously advertised. Receivers whose stored route
          uses the sender as first hop drop it and propagate, so routes to
          a fail-stopped destination die in O(diameter) rather than by
          slow count-to-infinity under soft-state expiry. *)
  | Resolve_insert of {
      origin : int;
      origin_name : string;
      addr : address;
      target_lm : int;  (** owner landmark the insert is routed toward *)
    }
  | Addr_gossip of {
      origin : int;
      origin_hash : Disco_hash.Hash_space.id;
      addr : address;
      sender_hash : Disco_hash.Hash_space.id;
          (** directional rule: forward only away from the sender in hash
              space *)
    }

val describe : t -> string
