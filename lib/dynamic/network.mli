(** The dynamic, distributed Disco protocol running on the event simulator.

    The static simulator (Disco_core) computes converged state; this module
    {e earns} that state through protocol messages, and keeps it correct as
    nodes come and go:

    - every node periodically beacons [Hello] to its neighbors; silence for
      [3 * hello_interval] marks a neighbor dead and purges routes through
      it;
    - routes (landmarks + the k closest nodes) spread by event-driven path
      vector with the acceptance rule of §4.2, refreshed every
      [refresh_interval] and expired when stale (soft state — leaves
      converge without explicit withdrawals);
    - each node periodically recomputes its address (closest landmark in
      its table + the reverse of that route), inserts it at the resolution
      owner (§4.3: "updated every t minutes and timed out after 2t+1"),
      and gossips it through its sloppy group with the directional
      forwarding rule of §4.4;
    - landmark status follows the factor-2 hysteresis rule when the
      (externally supplied) estimate of n changes.

    The driver activates/deactivates nodes and advances time; routing
    queries walk the packet hop by hop using only per-node state, like
    {!Disco_core.Forwarding}. *)

type config = {
  hello_interval : float;
  refresh_interval : float;  (** route re-announcement period *)
  addr_interval : float;  (** the paper's t (address refresh) *)
  params : Disco_core.Params.t;
}

val default_config : config

type t

val create :
  ?config:config ->
  rng:Disco_util.Rng.t ->
  graph:Disco_graph.Graph.t ->
  n_estimate:int ->
  unit ->
  t
(** A network over [graph] with all nodes initially inactive. [n_estimate]
    seeds every node's size estimate (drive it later with
    {!set_estimate}). *)

val activate : t -> int -> unit
(** Bring a node up: it draws landmark status, starts its timers and
    announces itself. Idempotent. *)

val activate_all : t -> unit

val deactivate : t -> int -> unit
(** Silent fail-stop: the node stops sending; the rest of the network
    notices through hello/route expiry. *)

val set_estimate : t -> int -> n:int -> unit
(** Update one node's estimate of n (re-evaluates landmark status under
    the hysteresis rule, and its group width). *)

val run_until : t -> float -> unit
(** Advance simulated time (processing all protocol events). *)

val now : t -> float
val messages_sent : t -> int

val is_active : t -> int -> bool
val is_landmark : t -> int -> bool
val landmark_count : t -> int

val route_table_size : t -> int -> int
(** Current routing-table entries at a node (routes + stored addresses +
    resolution entries). *)

val address_of : t -> int -> Msg.address option
(** The node's current self-computed address. *)

val debug_dump : t -> int -> unit
val route : t -> src:int -> dst:int -> int list option
(** Walk a packet from [src] toward [dst]'s flat name using only per-node
    protocol state (tables, address stores, resolution), with
    to-destination shortcutting. [None] if undeliverable with current
    state. *)

val reachable_fraction : t -> pairs:(int * int) list -> float
(** Fraction of the given (active) pairs the network can currently
    deliver. *)
