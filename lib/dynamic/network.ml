module Graph = Disco_graph.Graph
module Sim = Disco_sim.Sim
module Rng = Disco_util.Rng
module Hash_space = Disco_hash.Hash_space
module Consistent_hash = Disco_hash.Consistent_hash
module Params = Disco_core.Params
module Name = Disco_core.Name

type config = {
  hello_interval : float;
  refresh_interval : float;
  addr_interval : float;
  params : Params.t;
}

let default_config =
  {
    hello_interval = 5.0;
    refresh_interval = 30.0;
    addr_interval = 120.0;
    params = Params.default;
  }

type route = {
  r_dist : float;
  r_path : int list; (* self .. dest *)
  r_is_lm : bool;
  mutable r_expires : float;
}

type addr_entry = {
  mutable a_addr : Msg.address;
  mutable a_expires : float;
  mutable a_forwarded : float; (* last time we propagated this entry *)
}

type node = {
  id : int;
  name : string;
  hash : Hash_space.id;
  rng : Rng.t;
  mutable active : bool;
  mutable n_est : int;
  mutable is_lm : bool;
  mutable lm_ref_n : int;
  mutable group_bits : int;
  routes : (int, route) Hashtbl.t;
  addr_store : (int, addr_entry) Hashtbl.t; (* sloppy-group addresses *)
  res_store : (int, addr_entry) Hashtbl.t; (* resolution DB (landmarks) *)
  last_heard : (int, float) Hashtbl.t; (* neighbor liveness *)
  mutable fingers : int list;
}

type t = {
  graph : Graph.t;
  config : config;
  sim : Msg.t Sim.t;
  nodes : node array;
}

let now t = Sim.time t.sim
let messages_sent t = Sim.messages_sent t.sim
let is_active t v = t.nodes.(v).active
let is_landmark t v = t.nodes.(v).active && t.nodes.(v).is_lm

let landmark_count t =
  Array.fold_left (fun acc nd -> if nd.active && nd.is_lm then acc + 1 else acc) 0 t.nodes

let route_table_size t v =
  let nd = t.nodes.(v) in
  Hashtbl.length nd.routes + Hashtbl.length nd.addr_store + Hashtbl.length nd.res_store

let address_of t v =
  let nd = t.nodes.(v) in
  if not nd.active then None
  else if nd.is_lm then Some { Msg.lm = v; lm_path = [ v ] }
  else begin
    (* Closest landmark in the routing table; address route = reverse of
       the node's path to it. *)
    let best = ref None in
    Hashtbl.iter
      (fun dest r ->
        if r.r_is_lm then begin
          match !best with
          | Some (_, d) when d <= r.r_dist -> ()
          | _ -> best := Some (dest, r.r_dist)
        end)
      nd.routes;
    match !best with
    | None -> None
    | Some (lm, _) ->
        let r = Hashtbl.find nd.routes lm in
        Some { Msg.lm; lm_path = List.rev r.r_path }
  end

let vicinity_k nd config = Params.vicinity_size config.params ~n:nd.n_est

let neighbor_alive t nd nbr =
  t.nodes.(nbr).active
  &&
  match Hashtbl.find_opt nd.last_heard nbr with
  | Some heard -> now t -. heard <= 3.0 *. t.config.hello_interval
  | None -> false

(* --- route table maintenance ------------------------------------------- *)

let route_ttl t = 2.5 *. t.config.refresh_interval
let addr_ttl t = (2.0 *. t.config.addr_interval) +. 1.0

let announce_route t nd dest =
  match Hashtbl.find_opt nd.routes dest with
  | None -> ()
  | Some r ->
      Graph.iter_neighbors t.graph nd.id (fun nbr _ ->
          if t.nodes.(nbr).active then
            Sim.send t.sim ~src:nd.id ~dst:nbr
              (Msg.Route_ann
                 { dest; dest_is_landmark = r.r_is_lm; dist = r.r_dist; path = r.r_path }))

let withdraw_route t nd dest =
  Graph.iter_neighbors t.graph nd.id (fun nbr _ ->
      if t.nodes.(nbr).active then
        Sim.send t.sim ~src:nd.id ~dst:nbr (Msg.Route_withdraw { dest }))

let announce_self t nd =
  Graph.iter_neighbors t.graph nd.id (fun nbr _ ->
      if t.nodes.(nbr).active then
        Sim.send t.sim ~src:nd.id ~dst:nbr
          (Msg.Route_ann
             { dest = nd.id; dest_is_landmark = nd.is_lm; dist = 0.0; path = [ nd.id ] }))

(* §4.2 acceptance: landmarks always; otherwise one of the k closest
   currently advertised (evicting the worst). *)
let consider_route t nd ~dest ~dest_is_lm ~dist ~path =
  if dest = nd.id || List.mem nd.id path then ()
  else begin
    let fresh = { r_dist = dist; r_path = nd.id :: path; r_is_lm = dest_is_lm;
                  r_expires = now t +. route_ttl t }
    in
    let install () =
      Hashtbl.replace nd.routes dest fresh;
      announce_route t nd dest
    in
    match Hashtbl.find_opt nd.routes dest with
    | Some existing when existing.r_is_lm = dest_is_lm && dist >= existing.r_dist ->
        (* No improvement. An equal-cost announcement still refreshes the
           soft state AND replaces the stored path: the announcer is alive
           and currently standing behind that path, whereas the stored one
           may silently cross a dead node (with unit weights, equal-cost
           alternatives are everywhere and would otherwise keep stale
           paths alive forever). *)
        if dist = existing.r_dist then Hashtbl.replace nd.routes dest fresh
    | Some _ -> install () (* better route, or landmark-status change *)
    | None ->
        if dest_is_lm then install ()
        else begin
          let k = vicinity_k nd t.config in
          let count = ref 0 and worst = ref (-1) and worst_dist = ref neg_infinity in
          Hashtbl.iter
            (fun d r ->
              if (not r.r_is_lm) && d <> nd.id then begin
                incr count;
                if r.r_dist > !worst_dist then begin
                  worst_dist := r.r_dist;
                  worst := d
                end
              end)
            nd.routes;
          if !count < k then install ()
          else if dist < !worst_dist then begin
            Hashtbl.remove nd.routes !worst;
            install ()
          end
        end
  end

let purge_routes t nd =
  let dead = ref [] in
  Hashtbl.iter
    (fun dest r ->
      let first_hop = match r.r_path with _ :: h :: _ -> Some h | _ -> None in
      let hop_dead =
        match first_hop with Some h -> not (neighbor_alive t nd h) | None -> false
      in
      if r.r_expires < now t || hop_dead then dead := dest :: !dead)
    nd.routes;
  List.iter
    (fun dest ->
      Hashtbl.remove nd.routes dest;
      withdraw_route t nd dest)
    !dead

let purge_addrs t nd =
  let sweep store =
    let dead = ref [] in
    Hashtbl.iter (fun k e -> if e.a_expires < now t then dead := k :: !dead) store;
    List.iter (Hashtbl.remove store) !dead
  in
  sweep nd.addr_store;
  sweep nd.res_store

(* --- resolution and gossip --------------------------------------------- *)

let known_landmarks nd =
  Hashtbl.fold (fun dest r acc -> if r.r_is_lm then dest :: acc else acc) nd.routes
    (if nd.is_lm then [ nd.id ] else [])

let resolution_owner t nd key_name =
  match known_landmarks nd with
  | [] -> None
  | lms ->
      let owners = Array.of_list (List.sort compare lms) in
      let ring =
        Consistent_hash.create
          ~replicas:t.config.params.Params.resolution_replicas ~owners
          ~owner_name:(fun lm -> t.nodes.(lm).name) ()
      in
      Some (Consistent_hash.owner_of_name ring key_name)

let next_hop_toward nd dest =
  match Hashtbl.find_opt nd.routes dest with
  | Some { r_path = _ :: hop :: _; _ } -> Some hop
  | _ -> None

(* Multi-hop unicast used for bootstrap replies: costs [hops] messages and
   [hops] time units without simulating each relay (the relays would not
   change any state). *)
let unicast t ~src ~dst ~hops msg =
  Sim.send_direct t.sim ~src ~dst ~latency:(float_of_int (max 1 hops)) msg;
  for _ = 2 to hops do
    (* account the relay hops; self-delivered hellos are inert *)
    Sim.send_direct t.sim ~src ~dst:src ~latency:0.0 Msg.Hello
  done

let same_group nd origin_hash =
  nd.group_bits = 0
  || Hash_space.prefix_bits origin_hash ~width:nd.group_bits
     = Hash_space.prefix_bits nd.hash ~width:nd.group_bits

(* Store/refresh an address and decide whether to propagate: always for
   new or changed addresses, and once per refresh period for keep-alives
   (so soft state survives across the whole group, not just one overlay
   hop, without re-flooding every message). *)
let store_addr t nd ~origin ~addr =
  match Hashtbl.find_opt nd.addr_store origin with
  | Some e ->
      let changed = e.a_addr <> addr in
      e.a_addr <- addr;
      e.a_expires <- now t +. addr_ttl t;
      if changed || now t -. e.a_forwarded >= 0.9 *. t.config.addr_interval then begin
        e.a_forwarded <- now t;
        true
      end
      else false
  | None ->
      Hashtbl.replace nd.addr_store origin
        { a_addr = addr; a_expires = now t +. addr_ttl t; a_forwarded = now t };
      true

(* Overlay links: successor/predecessor among known group members plus the
   current fingers. *)
let overlay_links t nd =
  let members =
    Hashtbl.fold
      (fun origin _ acc -> if origin <> nd.id then origin :: acc else acc)
      nd.addr_store []
  in
  let by_hash =
    List.sort
      (fun a b -> Hash_space.compare_unsigned t.nodes.(a).hash t.nodes.(b).hash)
      members
  in
  let succ =
    List.find_opt
      (fun m -> Hash_space.compare_unsigned t.nodes.(m).hash nd.hash > 0)
      by_hash
  in
  let pred =
    List.fold_left
      (fun acc m ->
        if Hash_space.compare_unsigned t.nodes.(m).hash nd.hash < 0 then Some m else acc)
      None by_hash
  in
  let base = List.filter_map Fun.id [ succ; pred ] in
  List.sort_uniq compare (base @ List.filter (fun f -> Hashtbl.mem nd.addr_store f) nd.fingers)

let gossip_addr t nd ~origin ~origin_hash ~addr ~exclude_direction =
  List.iter
    (fun link ->
      let link_hash = t.nodes.(link).hash in
      let dir = Hash_space.compare_unsigned link_hash nd.hash in
      let ok =
        match exclude_direction with
        | None -> true (* origin: seed both directions *)
        | Some d -> (d > 0 && dir > 0) || (d < 0 && dir < 0)
      in
      if ok then
        Sim.send_direct t.sim ~src:nd.id ~dst:link ~latency:1.0
          (Msg.Addr_gossip { origin; origin_hash; addr; sender_hash = nd.hash }))
    (overlay_links t nd)

let refresh_fingers t nd =
  let members =
    Hashtbl.fold (fun o _ acc -> if o <> nd.id then o :: acc else acc) nd.addr_store []
  in
  match members with
  | [] -> nd.fingers <- []
  | _ ->
      let arr = Array.of_list members in
      nd.fingers <-
        List.init t.config.params.Params.fingers (fun _ ->
            arr.(Rng.int nd.rng (Array.length arr)))
        |> List.sort_uniq compare

(* --- timers -------------------------------------------------------------- *)

let rec hello_timer t v () =
  let nd = t.nodes.(v) in
  if nd.active then begin
    Graph.iter_neighbors t.graph v (fun nbr _ ->
        if t.nodes.(nbr).active then Sim.send t.sim ~src:v ~dst:nbr Msg.Hello);
    Sim.schedule t.sim ~delay:t.config.hello_interval (hello_timer t v)
  end

let rec refresh_timer t v () =
  let nd = t.nodes.(v) in
  if nd.active then begin
    purge_routes t nd;
    purge_addrs t nd;
    announce_self t nd;
    Hashtbl.iter (fun dest _ -> announce_route t nd dest) nd.routes;
    Sim.schedule t.sim ~delay:t.config.refresh_interval (refresh_timer t v)
  end

let rec addr_timer t v () =
  let nd = t.nodes.(v) in
  if nd.active then begin
    (match address_of t v with
    | None -> ()
    | Some addr -> (
        (* Insert at the resolution owner... *)
        (match resolution_owner t nd nd.name with
        | Some owner when owner <> v -> (
            match next_hop_toward nd owner with
            | Some hop ->
                Sim.send t.sim ~src:v ~dst:hop
                  (Msg.Resolve_insert
                     { origin = v; origin_name = nd.name; addr; target_lm = owner })
            | None -> ())
        | Some _ ->
            (* We are the owner: store locally. *)
            Hashtbl.replace nd.res_store v
              { a_addr = addr; a_expires = now t +. addr_ttl t; a_forwarded = now t }
        | None -> ());
        (* ...and gossip it through the sloppy group. *)
        refresh_fingers t nd;
        ignore (store_addr t nd ~origin:v ~addr : bool);
        gossip_addr t nd ~origin:v ~origin_hash:nd.hash ~addr ~exclude_direction:None));
    Sim.schedule t.sim ~delay:t.config.addr_interval (addr_timer t v)
  end

(* --- message handling ---------------------------------------------------- *)

let handle t v ~src msg =
  let nd = t.nodes.(v) in
  if nd.active then begin
    if src <> v then Hashtbl.replace nd.last_heard src (now t);
    match msg with
    | Msg.Hello -> ()
    | Msg.Route_ann { dest; dest_is_landmark; dist; path } -> (
        match Graph.edge_weight t.graph v src with
        | Some w -> consider_route t nd ~dest ~dest_is_lm:dest_is_landmark ~dist:(dist +. w) ~path
        | None -> () (* overlay accounting message; no route content *))
    | Msg.Route_withdraw { dest } -> (
        (* Drop only routes standing on the withdrawer, and pass the
           poison on; independent paths survive. *)
        match Hashtbl.find_opt nd.routes dest with
        | Some { r_path = _ :: hop :: _; _ } when hop = src ->
            Hashtbl.remove nd.routes dest;
            withdraw_route t nd dest
        | _ -> ())
    | Msg.Resolve_insert { origin; origin_name; addr; target_lm } ->
        if v = target_lm then begin
          Hashtbl.replace nd.res_store origin
            { a_addr = addr; a_expires = now t +. addr_ttl t; a_forwarded = now t };
          (* Bootstrap reply: hand the inserter the closest stored hashes
             of its own group so it can join the dissemination overlay. *)
          let origin_hash = t.nodes.(origin).hash in
          let candidates =
            Hashtbl.fold
              (fun o e acc ->
                if o <> origin && same_group t.nodes.(origin) t.nodes.(o).hash then
                  (Hash_space.ring_distance origin_hash t.nodes.(o).hash, o, e.a_addr)
                  :: acc
                else acc)
              nd.res_store []
            |> List.sort compare
          in
          let hops =
            match Hashtbl.find_opt nd.routes origin with
            | Some r -> List.length r.r_path - 1
            | None -> List.length addr.Msg.lm_path
          in
          List.iteri
            (fun i (_, o, a) ->
              if i < 4 then
                unicast t ~src:v ~dst:origin ~hops
                  (Msg.Addr_gossip
                     { origin = o; origin_hash = t.nodes.(o).hash; addr = a;
                       sender_hash = t.nodes.(origin).hash }))
            candidates;
          ignore origin_name
        end
        else begin
          match next_hop_toward nd target_lm with
          | Some hop ->
              Sim.send t.sim ~src:v ~dst:hop
                (Msg.Resolve_insert { origin; origin_name; addr; target_lm })
          | None -> () (* no route yet; the next periodic insert retries *)
        end
    | Msg.Addr_gossip { origin; origin_hash; addr; sender_hash } ->
        if origin <> v && same_group nd origin_hash then begin
          let fresh = store_addr t nd ~origin ~addr in
          if fresh then begin
            let dir = Hash_space.compare_unsigned nd.hash sender_hash in
            let dir = if dir = 0 then 1 else dir in
            gossip_addr t nd ~origin ~origin_hash ~addr ~exclude_direction:(Some dir)
          end
        end
  end

(* --- lifecycle ----------------------------------------------------------- *)

let create ?(config = default_config) ~rng ~graph ~n_estimate () =
  let n = Graph.n graph in
  let nodes =
    Array.init n (fun id ->
        let name = Name.default id in
        {
          id;
          name;
          hash = Name.hash name;
          rng = Rng.split rng;
          active = false;
          n_est = n_estimate;
          is_lm = false;
          lm_ref_n = n_estimate;
          group_bits = Hash_space.group_size_bits ~n_estimate;
          routes = Hashtbl.create 32;
          addr_store = Hashtbl.create 32;
          res_store = Hashtbl.create 8;
          last_heard = Hashtbl.create 8;
          fingers = [];
        })
  in
  let t = { graph; config; sim = Sim.create ~graph (); nodes } in
  Sim.set_handler t.sim (handle t);
  t

let activate t v =
  let nd = t.nodes.(v) in
  if not nd.active then begin
    nd.active <- true;
    nd.is_lm <- Rng.bernoulli nd.rng (Params.landmark_probability t.config.params ~n:nd.n_est);
    nd.lm_ref_n <- nd.n_est;
    Hashtbl.reset nd.routes;
    Hashtbl.reset nd.addr_store;
    Hashtbl.reset nd.res_store;
    (* Jittered timer starts keep the event pattern realistic. *)
    let jitter scale = Rng.float nd.rng scale in
    Sim.schedule t.sim ~delay:(jitter 1.0) (hello_timer t v);
    Sim.schedule t.sim ~delay:(jitter 1.0) (fun () ->
        announce_self t t.nodes.(v);
        refresh_timer t v ());
    Sim.schedule t.sim ~delay:(2.0 +. jitter t.config.hello_interval) (addr_timer t v)
  end

let activate_all t =
  for v = 0 to Graph.n t.graph - 1 do
    activate t v
  done

let deactivate t v = t.nodes.(v).active <- false

let set_estimate t v ~n =
  let nd = t.nodes.(v) in
  nd.n_est <- n;
  nd.group_bits <- Hash_space.group_size_bits ~n_estimate:n;
  let ratio = float_of_int (max n nd.lm_ref_n) /. float_of_int (max 1 (min n nd.lm_ref_n)) in
  if nd.active && ratio >= 2.0 then begin
    nd.lm_ref_n <- n;
    let status = Rng.bernoulli nd.rng (Params.landmark_probability t.config.params ~n) in
    if status <> nd.is_lm then begin
      nd.is_lm <- status;
      announce_self t nd
    end
  end

let run_until t time = Sim.run ~until:time t.sim

(* --- data-plane walk ------------------------------------------------------ *)

let route t ~src ~dst =
  let n = Graph.n t.graph in
  let rec follow u rest acc ttl =
    (* Follow a concrete path, with to-destination re-checks per hop. *)
    if ttl = 0 then None
    else if u = dst then Some (List.rev (u :: acc))
    else begin
      let nd = t.nodes.(u) in
      if not nd.active then None
      else begin
        match Hashtbl.find_opt nd.routes dst with
        | Some { r_path = _ :: direct; _ } when direct <> rest ->
            step u direct acc ttl (* divert along our own route *)
        | _ -> step u rest acc ttl
      end
    end
  and step u rest acc ttl =
    match rest with
    | [] -> None
    | next :: rest' ->
        if not t.nodes.(next).active then None
        else follow next rest' (u :: acc) (ttl - 1)
  and seek u acc ttl =
    if ttl = 0 then None
    else if u = dst then Some (List.rev (u :: acc))
    else begin
      let nd = t.nodes.(u) in
      if not nd.active then None
      else begin
        match Hashtbl.find_opt nd.routes dst with
        | Some { r_path = _ :: rest; _ } -> step u rest acc ttl
        | _ -> (
            match Hashtbl.find_opt nd.addr_store dst with
            | Some { a_addr = { Msg.lm; lm_path }; _ } -> carry_address u lm lm_path acc ttl
            | None -> (
                (* Resolution: head for the owner landmark; it knows. *)
                match resolution_owner t nd t.nodes.(dst).name with
                | None -> None
                | Some owner ->
                    if owner = u then begin
                      match Hashtbl.find_opt nd.res_store dst with
                      | Some { a_addr = { Msg.lm; lm_path }; _ } ->
                          carry_address u lm lm_path acc ttl
                      | None -> None
                    end
                    else begin
                      match next_hop_toward nd owner with
                      | Some hop when t.nodes.(hop).active ->
                          seek_toward hop owner (u :: acc) (ttl - 1)
                      | _ -> None
                    end))
      end
    end
  and seek_toward u owner acc ttl =
    (* Riding hop-by-hop toward the resolution owner, still only carrying
       the name; any node that knows better answers sooner. *)
    if ttl = 0 then None
    else begin
      let nd = t.nodes.(u) in
      if not nd.active then None
      else if Hashtbl.mem nd.routes dst || Hashtbl.mem nd.addr_store dst || u = owner
      then seek u acc ttl
      else begin
        match next_hop_toward nd owner with
        | Some hop when t.nodes.(hop).active -> seek_toward hop owner (u :: acc) (ttl - 1)
        | _ -> None
      end
    end
  and carry_address u lm lm_path acc ttl =
    if u = lm then follow u (List.tl lm_path) acc ttl
    else begin
      let nd = t.nodes.(u) in
      match Hashtbl.find_opt nd.routes lm with
      | Some { r_path = _ :: to_lm; _ } ->
          (* Ride to the landmark, then the explicit route. *)
          follow u (to_lm @ List.tl lm_path) acc ttl
      | _ -> None
    end
  in
  if src = dst then Some [ src ]
  else if not (t.nodes.(src).active && t.nodes.(dst).active) then None
  else seek src [] (4 * n)

let debug_dump t v =
  let nd = t.nodes.(v) in
  Printf.eprintf "node %d active=%b lm=%b known_lms=[%s] owner_of_19=%s res_store=[%s] routes_to_19=%b addr_19=%b\n"
    v nd.active nd.is_lm
    (String.concat ";" (List.map string_of_int (List.sort compare (known_landmarks nd))))
    (match resolution_owner t nd t.nodes.(19).name with Some o -> string_of_int o | None -> "-")
    (String.concat ";" (Hashtbl.fold (fun k _ acc -> string_of_int k :: acc) nd.res_store []))
    (Hashtbl.mem nd.routes 19) (Hashtbl.mem nd.addr_store 19)

let reachable_fraction t ~pairs =
  match pairs with
  | [] -> 1.0
  | _ ->
      let ok =
        List.fold_left
          (fun acc (s, d) -> if route t ~src:s ~dst:d <> None then acc + 1 else acc)
          0 pairs
      in
      float_of_int ok /. float_of_int (List.length pairs)
