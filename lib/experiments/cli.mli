(** Shared Cmdliner terms for the executables.

    [bench/main.exe] and [disco-sim figure] accept the same figure ids and
    scales; parsing and the error strings live here so the two frontends
    cannot drift. *)

val scale_term : Scale.t Cmdliner.Term.t
(** [--scale small|paper], defaulting to small; rejects anything else with
    the unified error message. *)

val seed_term : int Cmdliner.Term.t
(** [--seed N], defaulting to 42. *)

val jobs_term : int Cmdliner.Term.t
(** [--jobs]/[-j N], defaulting to 1 (sequential); [0] resolves to
    [Disco_util.Pool.default_jobs ()]. The value that reaches the program
    is already resolved to [>= 1]. *)

val scheme_term : ?extra:string list -> default:string -> unit -> string Cmdliner.Term.t
(** [--scheme]/[--protocol]/[-p], validated against the router registry
    ({!Routers.names}) plus [extra] values the caller handles itself
    (e.g. ["all"]). disco-sim and disco-check accept the same scheme
    names through this one term. *)

val figure_term : ?extra:string list -> default:string -> unit -> string Cmdliner.Term.t
(** [--figure]/[-f]/[--id], validated against {!Figures.all_ids} plus
    [extra] ids the caller handles itself (e.g. ["all"], ["micro"]). *)
