(* fig10 and the fate-sharing experiment: load tails and failure blast
   radius. *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Core = Disco_core

(* fig10: congestion tail on the AS-level topology. *)
let fig10 (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  let n = Scale.big_n scale in
  Report.section
    (Printf.sprintf "fig10: congestion on AS-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.As_level ~n in
  let c = Metrics.congestion ~tel:cfg.Engine.tel tb in
  Report.summary_line ~label:"disco" c.Metrics.c_disco;
  Report.summary_line ~label:"s4" c.Metrics.c_s4;
  Report.summary_line ~label:"pathvector" c.Metrics.c_pathvector;
  let tail label samples =
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let m = Array.length sorted in
    let pick q = sorted.(min (m - 1) (int_of_float (q *. float_of_int m))) in
    Report.kv
      (label ^ " p99.9/p99.95/max")
      (Printf.sprintf "%.0f / %.0f / %.0f" (pick 0.999) (pick 0.9995)
         sorted.(m - 1))
  in
  tail "disco" c.Metrics.c_disco;
  tail "s4" c.Metrics.c_s4;
  tail "pathvector" c.Metrics.c_pathvector

(* fate: §2's fate-sharing argument, measured. "these solutions lack fate
   sharing: a failure far from the source-destination path can disrupt
   communication." Kill one uniform-random remote node and see whose
   first packet dies: resolution-based lookup (S4) drags packets through
   a hash-selected landmark anywhere in the network; Disco's lookup stays
   inside the source's vicinity.

   This is a (src, dst, dead-node) triple sample, not a sampled-pairs
   sweep, so it keeps its own loop rather than going through Engine. *)
let fate (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  let n = match scale with Scale.Small -> 1024 | Scale.Paper -> 4096 in
  Report.section
    (Printf.sprintf
       "fate: flows disrupted by one random remote node failure; geometric n=%d" n);
  let tb = Testbed.make ~seed Gen.Geometric ~n in
  let rng = Testbed.rng tb ~purpose:31 in
  let graph = tb.Testbed.graph in
  let ws = Disco_graph.Dijkstra.make_workspace graph in
  let tel = cfg.Engine.tel in
  (* The disrupted flows are walked first packets, not oracle routes: a
     node is "on the flow" iff the data plane actually carries the packet
     through it. *)
  let first packed =
    let module R = (val packed : Protocol.ROUTER) in
    let rt = R.build tb in
    fun ~src ~dst ->
      (Walk.first_trace (module R) rt ~tel ~graph ~src ~dst).Disco_core.Dataplane.path
  in
  let disco_first = first (Routers.find_exn "disco") in
  let s4_first = first (Routers.find_exn "s4") in
  let trials = 1500 in
  let disrupted_disco = ref 0
  and disrupted_s4 = ref 0
  and disrupted_sp = ref 0
  and on_path = ref 0
  and total = ref 0 in
  for _ = 1 to trials do
    let s = Rng.int rng n and t = Rng.int rng n and dead = Rng.int rng n in
    if s <> t && dead <> s && dead <> t then begin
      incr total;
      let sp = Disco_graph.Dijkstra.sssp ~ws graph s in
      let shortest =
        Disco_graph.Dijkstra.path_of_parents
          ~parent:(fun u -> sp.Disco_graph.Dijkstra.parent.(u))
          ~src:s ~dst:t
      in
      let uses path = List.mem dead path in
      if uses shortest then begin
        (* The failure sits on the direct path: everyone suffers; exclude
           it from the "remote failure" statistic. *)
        incr on_path
      end
      else begin
        if uses (disco_first ~src:s ~dst:t) then incr disrupted_disco;
        if uses (s4_first ~src:s ~dst:t) then incr disrupted_s4;
        if uses shortest then incr disrupted_sp
      end
    end
  done;
  let remote = !total - !on_path in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 remote) in
  Report.kv "trials (remote failures only)" (string_of_int remote);
  Report.kv "disco first packet disrupted" (Printf.sprintf "%.2f%%" (pct !disrupted_disco));
  Report.kv "s4 first packet disrupted (resolution detour)"
    (Printf.sprintf "%.2f%%" (pct !disrupted_s4));
  Report.kv "shortest path disrupted" "0.00% (by construction)"
