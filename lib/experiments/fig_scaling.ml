(* fig9 and the TZ tradeoff sweep: how stretch and state scale. *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats

(* fig9: mean stretch and mean state as n grows (geometric graphs). *)
let fig9 (cfg : Engine.config) =
  let { Engine.seed; scale; jobs; _ } = cfg in
  Report.section "fig9: scaling on geometric graphs (mean stretch, mean state)";
  let sizes =
    match scale with
    | Scale.Small -> [ 1024; 2048; 4096 ]
    | Scale.Paper -> [ 2048; 4096; 8192; 16384 ]
  in
  List.iter
    (fun n ->
      let tb = Testbed.make ~seed Gen.Geometric ~n in
      let sr = Metrics.stretch ~pairs:800 ~jobs tb in
      let st = Metrics.state tb in
      let x = float_of_int n in
      Report.series_point ~label:"fig9.stretch.disco-first" ~x
        ~y:(Stats.mean sr.Metrics.s_disco.Metrics.first);
      Report.series_point ~label:"fig9.stretch.disco-later" ~x
        ~y:(Stats.mean sr.Metrics.s_disco.Metrics.later);
      Report.series_point ~label:"fig9.stretch.s4-first" ~x
        ~y:(Stats.mean sr.Metrics.s_s4.Metrics.first);
      Report.series_point ~label:"fig9.stretch.s4-later" ~x
        ~y:(Stats.mean sr.Metrics.s_s4.Metrics.later);
      Report.series_point ~label:"fig9.state.disco" ~x ~y:(Stats.mean st.Metrics.disco);
      Report.series_point ~label:"fig9.state.nddisco" ~x
        ~y:(Stats.mean st.Metrics.nddisco);
      Report.series_point ~label:"fig9.state.s4" ~x ~y:(Stats.mean st.Metrics.s4))
    sizes

(* tradeoff: §6's open question — other points on the state/stretch curve,
   via the generalized TZ hierarchy (k levels: stretch <= 2k-1, state
   O~(n^{1/k})). *)
let tradeoff (cfg : Engine.config) =
  let { Engine.seed; scale; tel; jobs } = cfg in
  let n = match scale with Scale.Small -> 1024 | Scale.Paper -> 4096 in
  Report.section
    (Printf.sprintf "tradeoff: TZ hierarchy, stretch vs state; G(n,m) n=%d" n);
  let rng = Rng.create (seed * 29) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let pair_rng = Rng.create (seed + 9) in
  (* One draw for every k: the rows compare hierarchies on identical
     pairs. *)
  let groups = Engine.draw_pairs ~dests_per_src:5 pair_rng ~n ~pairs:500 in
  let rows =
    List.map
      (fun k ->
        let tz =
          Disco_baselines.Tz_hierarchy.build ~rng:(Rng.create (seed + k)) ~k graph
        in
        let states =
          Array.init n (fun v -> float_of_int (Disco_baselines.Tz_hierarchy.state tz v))
        in
        let stretches =
          Engine.map_groups ~jobs ~tel ~seed:(Rng.derive seed (90 + k)) graph
            groups (fun ~src:s ~dst:t ~dist ->
              Disco_baselines.Tz_hierarchy.route_length tz ~src:s ~dst:t /. dist)
        in
        let st = Stats.summarize states in
        let sr = Stats.summarize stretches in
        [
          string_of_int k;
          Printf.sprintf "%.0f" (Disco_baselines.Tz_hierarchy.stretch_bound tz);
          Printf.sprintf "%.3f" sr.Stats.mean;
          Printf.sprintf "%.3f" sr.Stats.max;
          Printf.sprintf "%.0f" st.Stats.mean;
          Printf.sprintf "%.0f" st.Stats.max;
        ])
      [ 2; 3; 4 ]
  in
  let k1_row =
    (* k = 1 is plain shortest-path state; no need to materialize n^2
       bunch entries to report it. *)
    [ "1"; "1"; "1.000"; "1.000"; string_of_int (n - 1); string_of_int (n - 1) ]
  in
  Report.table
    ~header:[ "k"; "bound 2k-1"; "stretch-mean"; "stretch-max"; "state-mean"; "state-max" ]
    (k1_row :: rows)
