(* fig1: the paper's protocol-comparison table, but measured. One
   latency-weighted topology, every scheme's state and stretch side by
   side; "scalable / low stretch / flat names" become numbers. This is
   the registry showcase: the whole table is one [Engine.sample_pairs]
   call over the fig1 router list. *)

module Gen = Disco_graph.Gen
module Stats = Disco_util.Stats

let order = [ "pathvector"; "seattle"; "bvr"; "vrr"; "s4"; "nddisco"; "disco" ]

let fig1 (cfg : Engine.config) =
  let n = 1024 in
  Report.section
    (Printf.sprintf "fig1 (measured): all protocols on a geometric graph, n=%d" n);
  let tb = Testbed.make ~seed:cfg.Engine.seed Gen.Geometric ~n in
  let samples =
    Engine.sample_pairs ~pairs:1000 ~dests_per_src:4 ~purpose:42
      ~jobs:cfg.Engine.jobs ~tel:cfg.Engine.tel
      ~routers:(List.map Routers.find_exn order)
      tb
  in
  let stat a =
    if Array.length a = 0 then "-"
    else
      let s = Stats.summarize a in
      Printf.sprintf "%.2f / %.2f" s.Stats.mean s.Stats.max
  in
  let row (s : Engine.sampled) =
    let st = Stats.summarize s.Engine.state in
    let state = Printf.sprintf "%.0f / %.0f" st.Stats.mean st.Stats.max in
    (* Presentation quirks preserved from the paper's table: BVR has no
       handshake (its "first" is a beacon lookup we don't model), and
       NDDisco's later packets are by construction no worse than first. *)
    let first, later =
      match s.Engine.router with
      | "bvr" -> ("-", stat s.Engine.later)
      | "nddisco" -> (stat s.Engine.first, "<= first")
      | _ -> (stat s.Engine.first, stat s.Engine.later)
    in
    [ s.Engine.router; state; first; later; s.Engine.flat_names ]
  in
  Report.table
    ~header:
      [ "protocol"; "state mean/max"; "first stretch mean/max"; "later"; "flat names" ]
    (List.map row samples);
  match Engine.find_sampled "bvr" samples with
  | Some bvr ->
      Report.kv "bvr greedy failures (would scoped-flood)"
        (string_of_int bvr.Engine.first_failures)
  | None -> ()
