(** The routing-scheme abstraction the whole evaluation runs on.

    Krioukov et al. frame compact-routing schemes as one family differing
    only in their state/stretch trade-off; [ROUTER] is that family as a
    module type. Every scheme in the repo — Disco, NDDisco, S4, VRR, BVR,
    SEATTLE, the TZ hierarchy and path vector — is registered here as a
    first-class module (see {!module:Routers}), and the sampled-pairs
    engine ({!module:Engine}), the figures, the bench harness and
    [disco-sim] all select schemes by registry name.

    Adding a scheme is a one-registration change:
    + implement [ROUTER] (usually a thin adapter over an existing module),
    + [Protocol.register (module My_router)] in {!module:Routers},
    + done — [test_router_registry] picks it up and enforces the contract.
*)

module type ROUTER = sig
  type t

  val name : string
  (** Registry key, e.g. ["disco"]; lowercase, unique. *)

  val flat_names : string
  (** How the scheme supports flat names (the fig1 column), e.g.
      ["yes, stretch-bounded"] or ["lookup detour"]. *)

  val build : Testbed.t -> t
  (** Converged state over the testbed's graph. Adapters reuse the
      testbed's shared instances (same landmark draw across schemes) and
      its derived RNG streams, so builds are deterministic per seed. *)

  val route_first :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int -> int list option
  (** First packet of a flow toward a flat name: whatever lookup the
      scheme needs is included in the path. [None] means the scheme failed
      to deliver (e.g. BVR stuck in a local minimum — the engine counts it
      via [tel]). Adapters record scheme-internal events (resolution
      fallbacks) on [tel]. *)

  val route_later :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int -> int list option
  (** Packets after the handshake, when the source caches whatever the
      first exchange taught it. Schemes without a handshake return the
      same route as {!route_first}. *)

  val state_entries : t -> int -> int
  (** Data-plane routing-table entries at one node, per the paper's
      accounting (§5.2). Never negative. *)

  val fork : t -> t
  (** A query handle that can route concurrently with the original from
      another domain: shared converged state is immutable and may alias,
      but any query-time mutable scratch must either be private to the
      returned handle (the path-vector oracle forks its SSSP memo and
      workspace) or live behind {!Disco_util.Pool.Memo} (the demand-filled
      landmark/vicinity/ball/tree caches in Disco, NDDisco, S4 and Seattle, whose
      cross-pair amortization is the point of sharing). With that, fork is
      the identity for every adapter except path-vector. Forked handles
      feed the parallel engine ({!Engine.run}); [state_entries] is only
      called on the original. *)
end

type packed = (module ROUTER)

val name_of : packed -> string

val register : packed -> unit
(** Append to the registry.
    @raise Invalid_argument on a duplicate name. *)

val all : unit -> packed list
(** Registered routers, in registration order. Prefer
    {!Routers.all}, which guarantees the built-in schemes are loaded. *)

val names : unit -> string list
val find : string -> packed option

val find_exn : string -> packed
(** @raise Invalid_argument with the known names on a miss. *)
