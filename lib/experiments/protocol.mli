(** The routing-scheme abstraction the whole evaluation runs on.

    Krioukov et al. frame compact-routing schemes as one family differing
    only in their state/stretch trade-off; [ROUTER] is that family as a
    module type. Every scheme in the repo — Disco, NDDisco, S4, VRR, BVR,
    SEATTLE, the TZ hierarchy and path vector — is registered here as a
    first-class module (see {!module:Routers}), and the sampled-pairs
    engine ({!module:Engine}), the figures, the bench harness and
    [disco-sim] all select schemes by registry name.

    A scheme exposes two faces of the same protocol:

    - a {e data plane} — a per-hop {!val:ROUTER.forward} function plus the
      headers sources emit. The shared walker ({!module:Walk}) executes it
      hop by hop; this is what the engine and every figure measure.
    - two {e oracles} — {!val:ROUTER.oracle_first}/{!val:ROUTER.oracle_later},
      the closed-form route computations from the simulator's global view.
      They exist to check the data plane (disco-check's walk ≡ oracle
      differential), not to produce results.

    Adding a scheme is a one-registration change:
    + implement [ROUTER] (usually a thin adapter over an existing module),
    + [Protocol.register (module My_router)] in {!module:Routers},
    + done — [test_router_registry] picks it up and enforces the contract.
*)

module type ROUTER = sig
  type t

  val name : string
  (** Registry key, e.g. ["disco"]; lowercase, unique. *)

  val flat_names : string
  (** How the scheme supports flat names (the fig1 column), e.g.
      ["yes, stretch-bounded"] or ["lookup detour"]. *)

  val build : Testbed.t -> t
  (** Converged state over the testbed's graph. Adapters reuse the
      testbed's shared instances (same landmark draw across schemes) and
      its derived RNG streams, so builds are deterministic per seed. *)

  val ttl_factor : int
  (** Data-plane TTL budget as a multiple of [n] — a generous multiple of
      the worst-case route length (4 for most schemes; 8 for VRR, whose
      corridors wander). The walker drops the packet when it is spent. *)

  val first_header :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int ->
    Disco_core.Dataplane.header
  (** The header the source emits for the first packet of a flow toward a
      flat name, built from source-local state (plus the hash of the name;
      lookup detours are encoded in the header's phase/waypoint, not
      precomputed paths the source couldn't know). *)

  val later_header :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int ->
    Disco_core.Dataplane.header
  (** The header once the source caches whatever the first exchange taught
      it (address, handshake path, location). Schemes without a handshake
      emit the same header as {!first_header}. *)

  val forward :
    t -> Disco_core.Dataplane.header -> at:int -> Disco_core.Dataplane.decision
  (** One forwarding decision at node [at], consulting only state that
      node holds (plus the header). Pure: all in-flight protocol state
      lives in the header, so the walker — and disco-check — can replay
      and diff decisions freely. *)

  val oracle_first :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int -> int list option
  (** The closed-form first-packet route from the global view. [None]
      means the scheme cannot deliver (e.g. BVR stuck in a local minimum).
      Must agree with walking {!forward} from {!first_header} on delivery
      and weighted length (node sequences may differ only for schemes
      whose shortcutting can divert at several equivalent points). *)

  val oracle_later :
    t -> tel:Disco_util.Telemetry.t -> src:int -> dst:int -> int list option
  (** Same contract versus {!later_header} walks. *)

  val state_entries : t -> int -> int
  (** Data-plane routing-table entries at one node, per the paper's
      accounting (§5.2). Never negative. *)

  val state_bytes : t -> int -> float
  (** Exact bytes of one node's routing state as actually held in the
      packed representations (CSR rows, distance slabs, Othello FIB
      shares) — measured storage, not entries × a modelled name size.
      The [state] figure and the scaling bench plot this directly. *)

  val fork : t -> t
  (** A query handle that can route and forward concurrently with the
      original from another domain: shared converged state is immutable
      and may alias, but any query-time mutable scratch must either be
      private to the returned handle (the path-vector oracle forks its
      SSSP memo and workspace) or live behind {!Disco_util.Pool.Memo} (the
      demand-filled landmark/vicinity/ball/tree caches in Disco, NDDisco,
      S4, Seattle and TZ, whose cross-pair amortization is the point of
      sharing). Fork is therefore the identity for every adapter except
      path-vector — walker state (per-packet headers, traces, byte
      accounting) is local to each {!Walk} call, never stored on [t].
      Forked handles feed the parallel engine ({!Engine.run});
      [state_entries] is only called on the original. *)

  val compile : t -> Disco_core.Dataplane.fast_plan
  (** The scheme's zero-alloc face: node-local state flattened into int
      arrays so [fstep] is array indexing with no allocation per hop
      ({!Disco_core.Dataplane.fast_walk} runs it).  [fprime ~src ~dst]
      forces any lazily-built per-flow state at setup time.  The typed
      {!forward} stays the oracle: disco-check's fast≡typed differential
      holds the two walkers to the same hop sequence and verdict. *)
end

type packed = (module ROUTER)

val name_of : packed -> string

val register : packed -> unit
(** Append to the registry.
    @raise Invalid_argument on a duplicate name. *)

val all : unit -> packed list
(** Registered routers, in registration order. Prefer
    {!Routers.all}, which guarantees the built-in schemes are loaded. *)

val names : unit -> string list
val find : string -> packed option

val find_exn : string -> packed
(** @raise Invalid_argument with the known names on a miss. *)
