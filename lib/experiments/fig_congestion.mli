(** Runner bodies behind the [congestion] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val fig10 : Engine.config -> unit
(** Congestion tail on the AS-level topology (fig 10). *)

val fate : Engine.config -> unit
(** Fate sharing: flows disrupted by one random remote failure (§2). *)
