module Core = Disco_core
module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Telemetry = Disco_util.Telemetry
module D = Core.Dataplane

(* RNG purposes for adapters that draw their own randomness; disjoint from
   the figure runners' purposes (which start at 100 via Testbed.rng). *)
let bvr_purpose = 41
let tz_purpose = 43

(* Every oracle below uses the forward-only [To_destination] shortcut
   heuristic where one applies: the data plane diverts from knowledge at
   the node actually holding the packet, so only forward-direction
   shortcuts are comparable hop for hop (the paper's stretch bounds hold a
   fortiori — To_destination never lengthens the raw route). *)

module Disco_router = struct
  type t = Core.Disco.t

  let name = "disco"
  let flat_names = "yes, stretch-bounded"
  let build (tb : Testbed.t) = tb.Testbed.disco
  let ttl_factor = Core.Forwarding.ttl_factor

  let first_header t ~tel:_ ~src ~dst = Core.Forwarding.first_header t ~src ~dst
  let later_header t ~tel:_ ~src ~dst = Core.Forwarding.later_header t ~src ~dst
  let forward = Core.Forwarding.forward

  let oracle_first t ~tel:_ ~src ~dst =
    Some
      (Core.Disco.route_first ~heuristic:Core.Shortcut.To_destination t ~src
         ~dst)

  let oracle_later t ~tel:_ ~src ~dst =
    Some
      (Core.Disco.route_later ~heuristic:Core.Shortcut.To_destination t ~src
         ~dst)

  let state_entries t v =
    Core.Disco.total_entries (Core.Disco.state_entries t v)

  let state_bytes t v = Core.Disco.packed_state_bytes t v

  (* Routing only reads converged state. *)
  let fork t = t

  let compile t =
    let f = Core.Forwarding.compile t in
    { D.fstep = Core.Forwarding.fast_step f; D.fprime = Core.Forwarding.fast_prime f }
end

module Nddisco_router = struct
  (* NDDisco's contract assumes the source already knows the destination's
     address; resolution load still sits on its landmarks. *)
  type t = { nd : Core.Nddisco.t; resolution : Core.Resolution.t }

  let name = "nddisco"
  let flat_names = "no (addresses)"

  let build (tb : Testbed.t) =
    { nd = Testbed.nd tb; resolution = tb.Testbed.disco.Core.Disco.resolution }

  let ttl_factor = Core.Forwarding.ttl_factor

  let first_header t ~tel:_ ~src ~dst =
    Core.Forwarding.first_header_nd t.nd ~src ~dst

  let later_header t ~tel:_ ~src ~dst =
    Core.Forwarding.later_header_nd t.nd ~src ~dst

  let forward t h ~at = Core.Forwarding.forward_nd t.nd h ~at

  let oracle_first t ~tel:_ ~src ~dst =
    Some
      (Core.Nddisco.route_first ~heuristic:Core.Shortcut.To_destination t.nd
         ~src ~dst)

  let oracle_later t ~tel:_ ~src ~dst =
    Some
      (Core.Nddisco.route_later ~heuristic:Core.Shortcut.To_destination t.nd
         ~src ~dst)

  let state_entries t v =
    let resolution_entries = Core.Resolution.entries_at t.resolution v in
    Core.Nddisco.total_entries
      (Core.Nddisco.state_entries ~resolution_entries t.nd v)

  let state_bytes t v =
    (* NDDisco's packed share plus — at landmarks — the resolution shard:
       a 16-byte slot and the stored packed address per owned name. *)
    let resolution =
      if Core.Resolution.entries_at t.resolution v = 0 then 0.0
      else begin
        let owners = Core.Resolution.owners_by_node t.resolution in
        let acc = ref 0.0 in
        Array.iteri
          (fun w o ->
            if o = v then
              acc :=
                !acc +. 16.0
                +. float_of_int (8 + Core.Nddisco.address_slab_bytes t.nd w))
          owners;
        !acc
      end
    in
    Core.Nddisco.packed_state_bytes t.nd v +. resolution

  let fork t = t

  let compile t =
    let f = Core.Forwarding.compile_nd t.nd in
    {
      D.fstep = Core.Forwarding.fast_step_nd f;
      D.fprime = Core.Forwarding.fast_prime_nd f;
    }
end

module S4_router = struct
  module S4 = Disco_baselines.S4

  type t = {
    s4 : S4.t;
    (* cluster_sizes accumulates every node's ball — O(total cluster
       state), which million-node scaling runs must not pay at build
       time. Forced only by the state queries, which the engine contract
       keeps on the original handle (no cross-domain force). *)
    sizes : (int array * int array) Lazy.t;
  }

  let name = "s4"
  let flat_names = "lookup detour"

  let build (tb : Testbed.t) =
    let s4 = tb.Testbed.s4 in
    { s4; sizes = lazy (S4.cluster_sizes s4, S4.resolution_loads s4) }

  let ttl_factor = S4.ttl_factor
  let first_header t ~tel:_ ~src ~dst = S4.first_header t.s4 ~src ~dst
  let later_header t ~tel:_ ~src ~dst = S4.later_header t.s4 ~src ~dst
  let forward t h ~at = S4.forward t.s4 h ~at
  let oracle_first t ~tel:_ ~src ~dst = Some (S4.route_first t.s4 ~src ~dst)
  let oracle_later t ~tel:_ ~src ~dst = Some (S4.route_later t.s4 ~src ~dst)

  let state_entries t v =
    let cluster_sizes, resolution_loads = Lazy.force t.sizes in
    S4.state_entries t.s4 ~cluster_sizes ~resolution_loads v

  let state_bytes t v =
    let cluster_sizes, resolution_loads = Lazy.force t.sizes in
    S4.state_bytes t.s4 ~cluster_sizes ~resolution_loads v

  let fork t = t

  let compile t =
    let f = S4.compile t.s4 in
    { D.fstep = S4.fast_step f; D.fprime = S4.fast_prime f }
end

module Vrr_router = struct
  module Vrr = Disco_baselines.Vrr

  type t = { vrr : Vrr.t; state : int array }

  let name = "vrr"
  let flat_names = "yes, unbounded stretch"

  let build (tb : Testbed.t) =
    let vrr = Testbed.vrr tb in
    { vrr; state = Vrr.state_entries vrr }

  let ttl_factor = Vrr.ttl_factor

  (* VRR has no first/later distinction: every packet forwards greedily on
     the virtual ring. *)
  let first_header t ~tel:_ ~src ~dst = Vrr.packet_header t.vrr ~src ~dst
  let later_header = first_header
  let forward t h ~at = Vrr.forward t.vrr h ~at
  let oracle_first t ~tel:_ ~src ~dst = Vrr.route t.vrr ~src ~dst
  let oracle_later = oracle_first
  let state_entries t v = t.state.(v)
  let state_bytes t v = Vrr.state_bytes t.vrr v
  let fork t = t

  let compile t =
    let f = Vrr.compile t.vrr in
    { D.fstep = Vrr.fast_step f; D.fprime = Vrr.fast_prime f }
end

module Bvr_router = struct
  module Bvr = Disco_baselines.Bvr

  type t = Bvr.t

  let name = "bvr"
  let flat_names = "lookup at beacons"

  let build (tb : Testbed.t) =
    Bvr.build ~rng:(Testbed.rng tb ~purpose:bvr_purpose) tb.Testbed.graph

  let ttl_factor = Bvr.ttl_factor

  (* BVR packets always carry the destination's coordinate (looked up at
     the beacons); greedy forwarding does not change after a handshake. *)
  let first_header t ~tel:_ ~src ~dst = Bvr.packet_header t ~src ~dst
  let later_header = first_header
  let forward = Bvr.forward
  let oracle_first t ~tel:_ ~src ~dst = Bvr.route t ~src ~dst
  let oracle_later = oracle_first
  let state_entries t v = Bvr.state_entries t v
  let state_bytes t v = Bvr.state_bytes t v
  let fork t = t

  let compile t =
    let f = Bvr.compile t in
    { D.fstep = Bvr.fast_step f; D.fprime = Bvr.fast_prime f }
end

module Seattle_router = struct
  module Seattle = Disco_baselines.Seattle

  type t = Seattle.t

  let name = "seattle"
  let flat_names = "lookup detour"

  let build (tb : Testbed.t) =
    Seattle.build tb.Testbed.graph ~names:(Testbed.nd tb).Core.Nddisco.names

  let ttl_factor = Seattle.ttl_factor
  let first_header t ~tel:_ ~src ~dst = Seattle.first_header t ~src ~dst
  let later_header t ~tel:_ ~src ~dst = Seattle.later_header t ~src ~dst
  let forward = Seattle.forward
  let oracle_first t ~tel:_ ~src ~dst = Some (Seattle.route_first t ~src ~dst)
  let oracle_later t ~tel:_ ~src ~dst = Some (Seattle.route_later t ~src ~dst)
  let state_entries t v = Seattle.state_entries t v
  let state_bytes t v = Seattle.state_bytes t v
  let fork t = t

  let compile t =
    let f = Seattle.compile t in
    { D.fstep = Seattle.fast_step f; D.fprime = Seattle.fast_prime f }
end

module Tz_router = struct
  module Tz = Disco_baselines.Tz_hierarchy

  type t = Tz.t

  let name = "tz"
  let flat_names = "no (hierarchy labels)"

  (* The hierarchy depth follows the topology size: k = 2 is the paper's
     Disco/S4 regime at evaluation scale, but holding k fixed while n
     grows forfeits TZ's O~(n^{1/k}) state — million-node sweeps climb to
     k = 4 as the tradeoff curve dictates. *)
  let k_for n = if n <= 16_384 then 2 else if n <= 262_144 then 3 else 4

  let build (tb : Testbed.t) =
    Tz.build
      ~rng:(Testbed.rng tb ~purpose:tz_purpose)
      ~k:(k_for (Graph.n tb.Testbed.graph))
      tb.Testbed.graph

  let ttl_factor = Tz.ttl_factor
  let first_header t ~tel:_ ~src ~dst = Tz.packet_header t ~src ~dst
  let later_header = first_header
  let forward = Tz.forward
  let oracle_first t ~tel:_ ~src ~dst = Tz.route t ~src ~dst
  let oracle_later = oracle_first
  let state_entries t v = Tz.state t v
  let state_bytes t v = Tz.state_bytes t v
  let fork t = t

  let compile t =
    let f = Tz.compile t in
    { D.fstep = Tz.fast_step f; D.fprime = Tz.fast_prime f }
end

module Pathvector_router = struct
  (* Converged path vector holds a shortest path to every destination, so
     routing is a shortest-path oracle; one SSSP is cached per source
     because the engine samples destinations grouped by source. *)
  type t = {
    graph : Graph.t;
    ws : Dijkstra.workspace;
    mutable cached_src : int;
    mutable sp : Dijkstra.sssp option;
  }

  let name = "pathvector"
  let flat_names = "no"

  let build (tb : Testbed.t) =
    {
      graph = tb.Testbed.graph;
      ws = Dijkstra.make_workspace tb.Testbed.graph;
      cached_src = -1;
      sp = None;
    }

  let sssp t ~tel src =
    match t.sp with
    | Some sp when t.cached_src = src -> sp
    | _ ->
        Telemetry.sssp_run tel;
        let sp = Dijkstra.sssp ~ws:t.ws t.graph src in
        t.cached_src <- src;
        t.sp <- Some sp;
        sp

  let ttl_factor = 4

  (* The source's FIB supplies the whole explicit route; the data plane is
     pure label consumption. An unreachable destination leaves the label
     list empty and the walker drops at the source, matching the oracle's
     [None]. *)
  let first_header t ~tel ~src ~dst =
    let sp = sssp t ~tel src in
    if src = dst || sp.Dijkstra.dist.(dst) = infinity then D.plain ~dst D.Carry
    else
      match
        Dijkstra.path_of_parents
          ~parent:(fun u -> sp.Dijkstra.parent.(u))
          ~src ~dst
      with
      | _ :: rest -> { (D.plain ~dst D.Carry) with D.labels = rest }
      | [] -> D.plain ~dst D.Carry

  let later_header = first_header

  let forward _t (h : D.header) ~at:u =
    if u = h.D.dst then D.Deliver
    else
      (* disco-lint: allow L7 the scrutinee pairs phase and labels: per-decision by design *)
      match (h.D.phase, h.D.labels) with
      | D.Carry, next :: rest ->
          (* disco-lint: allow L7 fresh immutable header per hop is the Rewrite contract *)
          D.Rewrite ({ h with D.labels = rest }, next, D.Label_hop)
      | D.Carry, [] -> D.Drop D.No_route
      | (D.Seek _ | D.Steer _ | D.Greedy | D.Fallback), _ ->
          (* disco-lint: allow L7 drop-path diagnostic, not per-hop steady state *)
          D.Drop (D.Protocol_error "pathvector: foreign header phase")

  let oracle_first t ~tel ~src ~dst =
    let sp = sssp t ~tel src in
    if sp.Dijkstra.dist.(dst) = infinity then None
    else
      Some
        (Dijkstra.path_of_parents
           ~parent:(fun u -> sp.Dijkstra.parent.(u))
           ~src ~dst)

  let oracle_later = oracle_first
  let state_entries t _ = Graph.n t.graph - 1

  (* A converged path-vector FIB holds (next hop, distance) per
     destination; the advertised paths themselves are control-plane
     state. *)
  let state_bytes t _ = float_of_int (16 * (Graph.n t.graph - 1))

  (* The SSSP memo and the Dijkstra workspace are query-time mutable state:
     a fork gets fresh ones so two domains never share them. *)
  let fork t =
    {
      t with
      ws = Dijkstra.make_workspace t.graph;
      cached_src = -1;
      sp = None;
    }

  (* The whole route travels as labels, so the compiled forward is the
     pure label-consumption machine; nothing is lazily built per flow
     (headers come from the source's SSSP memo at setup time). *)
  let fast_step (_ : t) (pkt : D.packet) u =
    if u = pkt.D.pdst then D.fast_deliver
    else if pkt.D.pmode <> D.mode_carry then D.fast_protocol
    else if D.route_len pkt > 0 then D.route_next pkt
    else D.fast_no_route

  let compile t = { D.fstep = fast_step t; D.fprime = (fun ~src:_ ~dst:_ -> ()) }
end

let () =
  List.iter Protocol.register
    [
      (module Pathvector_router : Protocol.ROUTER);
      (module Seattle_router);
      (module Bvr_router);
      (module Vrr_router);
      (module S4_router);
      (module Nddisco_router);
      (module Disco_router);
      (module Tz_router);
    ]

(* Going through these accessors (rather than Protocol's) guarantees the
   registrations above have run, whatever the link order. *)
let all () = Protocol.all ()
let names () = Protocol.names ()
let find = Protocol.find
let find_exn = Protocol.find_exn
