(** Shared experiment setup: a topology plus converged protocol state.

    Disco, NDDisco and S4 are built over the same landmark set (all three
    select landmarks uniformly at the same rate; sharing the draw removes
    one source of cross-protocol noise, as in the paper's methodology of
    §5.1 where S4 is run "as in [34] except that we use path vector ...
    making it more comparable to NDDisco"). VRR state is join-order
    dependent and expensive, so it is built only on demand.

    The {!module:Protocol} registry's [ROUTER] adapters are all built from
    a [t], so every scheme in an experiment measures the same converged
    world. *)

type t = {
  seed : int;
  kind : Disco_graph.Gen.kind option;
      (** [None] when built from an externally supplied graph *)
  graph : Disco_graph.Graph.t;
  disco : Disco_core.Disco.t;  (** [disco.nd] is the NDDisco instance *)
  s4 : Disco_baselines.S4.t;
  mutable vrr_cache : Disco_baselines.Vrr.t option;  (** via {!vrr} *)
}

val make :
  ?seed:int -> ?params:Disco_core.Params.t -> Disco_graph.Gen.kind -> n:int -> t

val of_graph :
  ?seed:int ->
  ?params:Disco_core.Params.t ->
  ?kind:Disco_graph.Gen.kind ->
  Disco_graph.Graph.t ->
  t
(** Converge the protocols over a pre-built graph (e.g. one loaded from an
    edge-list file). Uses the same derived RNG streams as {!make}. *)

val vrr : t -> Disco_baselines.Vrr.t
(** Build VRR over the same graph (cached per testbed). *)

val rng : t -> purpose:int -> Disco_util.Rng.t
(** Derived deterministic RNG stream for a measurement phase. *)

val nd : t -> Disco_core.Nddisco.t
