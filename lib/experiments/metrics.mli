(** Metric collectors for the evaluation (§5.2): state, stretch,
    congestion.

    Conventions follow the paper: state counts data-plane routing-table
    entries; stretch is route length over shortest-path length, over
    sampled source–destination pairs; congestion routes one flow from
    every node to a uniform-random destination and counts per-edge path
    usage. All sampling is driven by explicit RNGs for reproducibility. *)

type state_result = {
  disco : float array;
  nddisco : float array;
  s4 : float array;
  pathvector : float array;  (** n-1 entries at every node *)
  vrr : float array option;
}

val state : ?with_vrr:bool -> Testbed.t -> state_result
(** Per-node entry counts for each protocol. *)

type stretch_series = { first : float array; later : float array }

type stretch_result = {
  s_disco : stretch_series;
  s_nddisco : stretch_series;
  s_s4 : stretch_series;
  s_vrr : float array option;
  vrr_failures : int;
}

val stretch :
  ?heuristic:Disco_core.Shortcut.heuristic ->
  ?pairs:int ->
  ?with_vrr:bool ->
  ?jobs:int ->
  Testbed.t ->
  stretch_result
(** Stretch over [pairs] sampled pairs (default 2000). NDDisco first
    packets assume the source knows the address (its name-dependent
    contract); S4 first packets pay the resolution detour; Disco first
    packets use sloppy groups. [jobs] fans the per-source tasks out over a
    domain pool; results are identical for every value (default 1). *)

val mean_stretch_by_heuristic :
  ?pairs:int ->
  ?jobs:int ->
  Testbed.t ->
  (Disco_core.Shortcut.heuristic * float) list
(** Fig 6 row: mean later-packet Disco stretch under each heuristic, on
    the same sampled pairs. *)

type congestion_result = {
  c_disco : float array;  (** per undirected edge: number of paths using it *)
  c_s4 : float array;
  c_pathvector : float array;
  c_vrr : float array option;
}

val congestion :
  ?with_vrr:bool -> ?tel:Disco_util.Telemetry.t -> Testbed.t ->
  congestion_result
(** One flow per node to a uniform-random destination, each walked
    through the scheme's data plane with its later-packet header.
    [tel] (fresh by default) accumulates the walker counters. *)

val path_stretch :
  Disco_graph.Graph.t -> dist:float -> int list -> float
(** Stretch of one route given the true shortest distance. *)
