module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Core = Disco_core

type t = {
  seed : int;
  kind : Gen.kind option;
  graph : Disco_graph.Graph.t;
  disco : Core.Disco.t;
  s4 : Disco_baselines.S4.t;
  mutable vrr_cache : Disco_baselines.Vrr.t option;
}

let rng_for seed purpose = Rng.create ((seed * 1_000_003) + purpose)

let of_graph ?(seed = 42) ?(params = Core.Params.default) ?kind graph =
  let nd = Core.Nddisco.build ~params ~rng:(rng_for seed 2) graph in
  let disco = Core.Disco.of_nddisco ~rng:(rng_for seed 3) nd in
  let s4 =
    Disco_baselines.S4.build ~params
      ~landmark_ids:nd.Core.Nddisco.landmarks.Core.Landmarks.ids
      ~rng:(rng_for seed 4) graph
  in
  { seed; kind; graph; disco; s4; vrr_cache = None }

let make ?(seed = 42) ?(params = Core.Params.default) kind ~n =
  let graph = Gen.by_kind ~rng:(rng_for seed 1) kind ~n in
  of_graph ~seed ~params ~kind graph

let vrr t =
  match t.vrr_cache with
  | Some v -> v
  | None ->
      let v = Disco_baselines.Vrr.build ~rng:(rng_for t.seed 5) t.graph in
      t.vrr_cache <- Some v;
      v

let rng t ~purpose = rng_for t.seed (100 + purpose)
let nd t = t.disco.Core.Disco.nd
