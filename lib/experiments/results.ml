type entry = {
  figure : string;
  router : string;
  samples : int;
  stretch_first_mean : float;
  stretch_first_max : float;
  stretch_later_mean : float;
  stretch_later_max : float;
  state_mean : float;
  state_max : float;
  failures : int;
  route_calls : int;
  resolution_fallbacks : int;
  messages : int;
  elapsed_s : float;
}

let entries : entry list ref = ref []
let current = ref "-"
let reset () = entries := []
let set_figure id = current := id

(* disco-lint: allow L8 read on the calling domain: tasks share record/current_figure lexically but the engine invokes them only after the merge *)
let current_figure () = !current

(* disco-lint: allow L8 write on the calling domain: tasks share record/current_figure lexically but the engine invokes them only after the merge *)
let record e = entries := e :: !entries
let all () = List.rev !entries

(* JSON by hand: the repo deliberately has no JSON dependency, and the
   values are all numbers plus two identifier-like strings. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_field f =
  (* NaN marks "no samples" (e.g. a state-only record); JSON has no NaN. *)
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let entry_to_json ~timings e =
  String.concat ","
    [
      Printf.sprintf {|"figure":"%s"|} (escape e.figure);
      Printf.sprintf {|"router":"%s"|} (escape e.router);
      Printf.sprintf {|"samples":%d|} e.samples;
      Printf.sprintf {|"stretch_first_mean":%s|} (float_field e.stretch_first_mean);
      Printf.sprintf {|"stretch_first_max":%s|} (float_field e.stretch_first_max);
      Printf.sprintf {|"stretch_later_mean":%s|} (float_field e.stretch_later_mean);
      Printf.sprintf {|"stretch_later_max":%s|} (float_field e.stretch_later_max);
      Printf.sprintf {|"state_mean":%s|} (float_field e.state_mean);
      Printf.sprintf {|"state_max":%s|} (float_field e.state_max);
      Printf.sprintf {|"failures":%d|} e.failures;
      Printf.sprintf {|"route_calls":%d|} e.route_calls;
      Printf.sprintf {|"resolution_fallbacks":%d|} e.resolution_fallbacks;
      Printf.sprintf {|"messages":%d|} e.messages;
      Printf.sprintf {|"elapsed_s":%s|}
        (if timings then float_field e.elapsed_s else "null");
    ]

let to_json ?(timings = true) () =
  let rows =
    List.map (fun e -> "  {" ^ entry_to_json ~timings e ^ "}") (all ())
  in
  "[\n" ^ String.concat ",\n" rows ^ "\n]\n"

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
