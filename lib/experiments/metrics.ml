module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Core = Disco_core
module S4 = Disco_baselines.S4
module Vrr = Disco_baselines.Vrr

type state_result = {
  disco : float array;
  nddisco : float array;
  s4 : float array;
  pathvector : float array;
  vrr : float array option;
}

let state ?(with_vrr = false) (tb : Testbed.t) =
  let arr name = Engine.state_array (Routers.find_exn name) tb in
  {
    disco = arr "disco";
    nddisco = arr "nddisco";
    s4 = arr "s4";
    pathvector = arr "pathvector";
    vrr = (if with_vrr then Some (arr "vrr") else None);
  }

let path_stretch = Engine.path_stretch

type stretch_series = { first : float array; later : float array }

type stretch_result = {
  s_disco : stretch_series;
  s_nddisco : stretch_series;
  s_s4 : stretch_series;
  s_vrr : float array option;
  vrr_failures : int;
}

(* All route calls below read converged state only (the same fact that
   makes ROUTER.fork the identity for these schemes), so per-pair mapping
   is safe to fan out over the pool. *)
let stretch ?(heuristic = Core.Shortcut.No_path_knowledge) ?(pairs = 2000)
    ?(with_vrr = false) ?jobs (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let rng = Testbed.rng tb ~purpose:11 in
  let groups = Engine.draw_pairs rng ~n ~pairs in
  let vrr = if with_vrr then Some (Testbed.vrr tb) else None in
  let nd = Testbed.nd tb in
  let per_pair =
    Engine.map_groups ?jobs ~seed:(Rng.derive tb.Testbed.seed 11) tb.graph
      groups (fun ~src:s ~dst:t ~dist ->
        let st path = path_stretch tb.graph ~dist path in
        let v =
          match vrr with
          | None -> None
          | Some v -> Some (Option.map st (Vrr.route v ~src:s ~dst:t))
        in
        ( st (Core.Disco.route_first ~heuristic tb.disco ~src:s ~dst:t),
          st (Core.Disco.route_later ~heuristic tb.disco ~src:s ~dst:t),
          st (Core.Nddisco.route_first ~heuristic nd ~src:s ~dst:t),
          st (Core.Nddisco.route_later ~heuristic nd ~src:s ~dst:t),
          st (S4.route_first tb.s4 ~src:s ~dst:t),
          st (S4.route_later tb.s4 ~src:s ~dst:t),
          v ))
  in
  let pick f = Array.map f per_pair in
  let vrr_samples =
    Array.to_list per_pair
    |> List.filter_map (fun (_, _, _, _, _, _, v) -> Option.join v)
    |> Array.of_list
  in
  let vrr_failures =
    Array.fold_left
      (fun acc (_, _, _, _, _, _, v) -> if v = Some None then acc + 1 else acc)
      0 per_pair
  in
  {
    s_disco =
      {
        first = pick (fun (x, _, _, _, _, _, _) -> x);
        later = pick (fun (_, x, _, _, _, _, _) -> x);
      };
    s_nddisco =
      {
        first = pick (fun (_, _, x, _, _, _, _) -> x);
        later = pick (fun (_, _, _, x, _, _, _) -> x);
      };
    s_s4 =
      {
        first = pick (fun (_, _, _, _, x, _, _) -> x);
        later = pick (fun (_, _, _, _, _, x, _) -> x);
      };
    s_vrr = (if with_vrr then Some vrr_samples else None);
    vrr_failures;
  }

let mean_stretch_by_heuristic ?(pairs = 1000) ?jobs (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let rng = Testbed.rng tb ~purpose:12 in
  (* One draw shared by every heuristic: the table compares heuristics on
     identical pairs. *)
  let groups = Engine.draw_pairs rng ~n ~pairs in
  List.map
    (fun heuristic ->
      let samples =
        Engine.map_groups ?jobs ~seed:(Rng.derive tb.Testbed.seed 12) tb.graph
          groups (fun ~src:s ~dst:t ~dist ->
            path_stretch tb.graph ~dist
              (Core.Disco.route_later ~heuristic tb.disco ~src:s ~dst:t))
      in
      (heuristic, Disco_util.Stats.mean samples))
    Core.Shortcut.all

type congestion_result = {
  c_disco : float array;
  c_s4 : float array;
  c_pathvector : float array;
  c_vrr : float array option;
}

(* Congestion is not a sampled-pairs measurement: every node sources
   exactly one flow, so it keeps its own (single) loop. The flows are the
   paths packets actually take — each scheme's data plane walked hop by
   hop — not the closed-form oracle routes. *)
let congestion ?(with_vrr = false) ?tel (tb : Testbed.t) =
  let n = Graph.n tb.graph in
  let m = Graph.m tb.graph in
  let rng = Testbed.rng tb ~purpose:13 in
  (* Undirected edge id: index of the (min endpoint -> max endpoint) arc. *)
  let edge_id u v =
    let a = min u v and b = max u v in
    match Graph.edge_index tb.graph a b with
    | Some i -> i
    | None -> invalid_arg "Metrics.congestion: route uses a non-edge"
  in
  let compact = Hashtbl.create (2 * m) in
  let next = ref 0 in
  let slot arc =
    match Hashtbl.find_opt compact arc with
    | Some s -> s
    | None ->
        let s = !next in
        Hashtbl.add compact arc s;
        incr next;
        s
  in
  let use counts path =
    let rec go = function
      | [] | [ _ ] -> ()
      | u :: (v :: _ as rest) ->
          let s = slot (edge_id u v) in
          counts.(s) <- counts.(s) +. 1.0;
          go rest
    in
    go path
  in
  let disco_counts = Array.make m 0.0 in
  let s4_counts = Array.make m 0.0 in
  let pv_counts = Array.make m 0.0 in
  let vrr_counts = Array.make m 0.0 in
  let tel =
    match tel with Some t -> t | None -> Disco_util.Telemetry.create ()
  in
  let later packed =
    let module R = (val packed : Protocol.ROUTER) in
    let rt = R.build tb in
    fun ~src ~dst -> Walk.later (module R) rt ~tel ~graph:tb.graph ~src ~dst
  in
  let disco_later = later (Routers.find_exn "disco") in
  let s4_later = later (Routers.find_exn "s4") in
  let pv_later = later (Routers.find_exn "pathvector") in
  let vrr_later =
    if with_vrr then Some (later (Routers.find_exn "vrr")) else None
  in
  let walk_into counts route ~src ~dst =
    match route ~src ~dst with Some path -> use counts path | None -> ()
  in
  for s = 0 to n - 1 do
    let t = Rng.int rng n in
    if t <> s then begin
      walk_into disco_counts disco_later ~src:s ~dst:t;
      walk_into s4_counts s4_later ~src:s ~dst:t;
      walk_into pv_counts pv_later ~src:s ~dst:t;
      match vrr_later with
      | None -> ()
      | Some route -> walk_into vrr_counts route ~src:s ~dst:t
    end
  done;
  {
    c_disco = disco_counts;
    c_s4 = s4_counts;
    c_pathvector = pv_counts;
    c_vrr = (if with_vrr then Some vrr_counts else None);
  }
