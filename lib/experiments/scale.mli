(** Experiment scale: how big the synthetic topologies are.

    [Small] shrinks everything so the whole suite finishes in minutes;
    [Paper] uses the paper's sizes where feasible (the two CAIDA maps are
    replaced by 16k-node synthetics — DESIGN.md §2). *)

type t = Small | Paper

val of_string : string -> t option
val to_string : t -> string

val big_n : t -> int
(** Node count for the headline topologies. *)

val pairs_for : t -> int
(** Sampled source–destination pairs for stretch measurements. *)

val topologies : t -> (Disco_graph.Gen.kind * int) list
(** The three headline topologies (geometric, AS-level, router-level). *)
