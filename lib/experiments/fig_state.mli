(** Runner bodies behind the [state] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val state : Engine.config -> unit
(** Exact packed-state bytes per node, every registered scheme
    ([ROUTER.state_bytes] over the router-level topology). *)

val fig2 : Engine.config -> unit
(** Per-node state CDFs (fig 2). *)

val fig7 : Engine.config -> unit
(** State in entries and kilobytes under IPv4/IPv6 name sizes (fig 7). *)
