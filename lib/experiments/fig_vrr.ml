(* fig4/fig5: state, stretch and congestion with VRR on 1,024-node graphs. *)

module Gen = Disco_graph.Gen

let run ~kind ~fig_name (cfg : Engine.config) =
  let { Engine.seed; jobs; _ } = cfg in
  let n = 1024 in
  Report.section
    (Printf.sprintf "%s: state/stretch/congestion incl. VRR; %s n=%d" fig_name
       (Gen.kind_name kind) n);
  let tb = Testbed.make ~seed kind ~n in
  let st = Metrics.state ~with_vrr:true tb in
  Printf.printf " state (entries per node)\n";
  Report.summary_line ~label:"disco" st.Metrics.disco;
  Report.summary_line ~label:"nddisco" st.Metrics.nddisco;
  Report.summary_line ~label:"s4" st.Metrics.s4;
  Report.summary_line ~label:"pathvector" st.Metrics.pathvector;
  (match st.Metrics.vrr with
  | Some v -> Report.summary_line ~label:"vrr" v
  | None -> ());
  Report.cdf_series ~label:(fig_name ^ ".state.disco") st.Metrics.disco;
  Report.cdf_series ~label:(fig_name ^ ".state.s4") st.Metrics.s4;
  (match st.Metrics.vrr with
  | Some v -> Report.cdf_series ~label:(fig_name ^ ".state.vrr") v
  | None -> ());
  let sr = Metrics.stretch ~pairs:1500 ~with_vrr:true ~jobs tb in
  Printf.printf " stretch (over src-dst pairs)\n";
  Report.summary_line ~label:"disco-first" sr.Metrics.s_disco.Metrics.first;
  Report.summary_line ~label:"disco-later" sr.Metrics.s_disco.Metrics.later;
  Report.summary_line ~label:"s4-first" sr.Metrics.s_s4.Metrics.first;
  Report.summary_line ~label:"s4-later" sr.Metrics.s_s4.Metrics.later;
  (match sr.Metrics.s_vrr with
  | Some v ->
      Report.summary_line ~label:"vrr" v;
      Report.kv "vrr route failures" (string_of_int sr.Metrics.vrr_failures)
  | None -> ());
  let c = Metrics.congestion ~with_vrr:true tb in
  Printf.printf " congestion (paths per edge; tail matters)\n";
  Report.summary_line ~label:"disco" c.Metrics.c_disco;
  Report.summary_line ~label:"s4" c.Metrics.c_s4;
  Report.summary_line ~label:"pathvector" c.Metrics.c_pathvector;
  (match c.Metrics.c_vrr with
  | Some v -> Report.summary_line ~label:"vrr" v
  | None -> ())

let fig4 ctx = run ~kind:Gen.Gnm ~fig_name:"fig4" ctx
let fig5 ctx = run ~kind:Gen.Geometric ~fig_name:"fig5" ctx
