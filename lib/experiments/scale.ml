module Gen = Disco_graph.Gen

type t = Small | Paper

let of_string = function
  | "small" -> Some Small
  | "paper" -> Some Paper
  | _ -> None

let to_string = function Small -> "small" | Paper -> "paper"
let big_n = function Small -> 4096 | Paper -> 16384
let pairs_for = function Small -> 1500 | Paper -> 2000

let topologies scale =
  [ (Gen.Geometric, big_n scale); (Gen.As_level, big_n scale);
    (Gen.Router_level, big_n scale) ]
