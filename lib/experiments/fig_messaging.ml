(* fig8 and the overlay experiment: control-plane messaging cost. *)

module Gen = Disco_graph.Gen
module Stats = Disco_util.Stats
module Core = Disco_core

(* fig8: messages per node until convergence, G(n,m) of increasing size. *)
let fig8 (cfg : Engine.config) =
  let { Engine.seed; scale; tel; _ } = cfg in
  Report.section "fig8: mean messages/node until convergence on G(n,m)";
  let sizes =
    match scale with
    | Scale.Small -> [ 128; 256; 512; 1024 ]
    | Scale.Paper -> [ 128; 256; 512; 1024; 1280 ]
  in
  let points = Messaging.sweep ~telemetry:tel ~seed ~pv_cap:512 ~sizes () in
  Report.table
    ~header:[ "n"; "pathvector"; "s4"; "nddisco"; "disco-1f"; "disco-3f" ]
    (List.map
       (fun (p : Messaging.point) ->
         [
           string_of_int p.Messaging.n;
           Printf.sprintf "%.0f%s" p.Messaging.pathvector
             (if p.Messaging.pv_measured then "" else " (extrapolated)");
           Printf.sprintf "%.0f" p.Messaging.s4;
           Printf.sprintf "%.0f" p.Messaging.nddisco;
           Printf.sprintf "%.0f" p.Messaging.disco_1f;
           Printf.sprintf "%.0f" p.Messaging.disco_3f;
         ])
       points)

(* overlay: 1 vs 3 fingers, announcement hops and messages; then the
   naive alternative §4.4 rejects — relaying group state through the
   resolution landmarks — costed in bytes per refresh epoch. *)
let overlay (cfg : Engine.config) =
  let { Engine.seed; _ } = cfg in
  Report.section "overlay: address dissemination, 1 vs 3 fingers (G(n,m), n=1024)";
  List.iter
    (fun (s : Messaging.overlay_stats) ->
      Report.kv
        (Printf.sprintf "%d finger(s)" s.Messaging.fingers)
        (Printf.sprintf
           "announce hops mean=%.2f max=%d; dissemination msgs=%d; coverage=%.4f"
           s.Messaging.mean_announce_hops s.Messaging.max_announce_hops
           s.Messaging.dissemination_messages s.Messaging.coverage))
    (Messaging.overlay_comparison ~seed ~n:1024 ());
  (* Naive landmark relay: every node refreshes its address once per epoch;
     the owner landmark must push it to every member of the node's group
     ("the landmark would have to relay O~(sqrt n) addresses to each of
     O~(sqrt n) nodes for a total of O~(n) bytes per minute", §4.4). *)
  let n = 1024 in
  let tb = Testbed.make ~seed Gen.Gnm ~n in
  let nd = Testbed.nd tb in
  let owners = Core.Resolution.owners_by_node tb.Testbed.disco.Core.Disco.resolution in
  let addr_bytes w =
    20 + Core.Address.byte_size ~name_bytes:20 (Core.Nddisco.address nd w)
  in
  let relay = Array.make n 0 in
  for w = 0 to n - 1 do
    let subscribers = Array.length (Core.Groups.members tb.Testbed.disco.Core.Disco.groups w) - 1 in
    relay.(owners.(w)) <- relay.(owners.(w)) + (subscribers * addr_bytes w)
  done;
  let landmark_loads =
    Array.to_list relay |> List.filter (fun b -> b > 0) |> List.map float_of_int
    |> Array.of_list
  in
  let naive = Stats.summarize landmark_loads in
  (* Overlay: each node forwards each announcement it first receives to a
     constant number of overlay links. *)
  let groups = tb.Testbed.disco.Core.Disco.groups in
  let overlay = Core.Overlay.build ~rng:(Testbed.rng tb ~purpose:71) ~fingers:1 nd groups in
  let d = Core.Overlay.disseminate overlay in
  let mean_addr =
    Stats.mean (Array.init n (fun w -> float_of_int (addr_bytes w)))
  in
  let overlay_per_node =
    float_of_int d.Core.Overlay.messages /. float_of_int n *. mean_addr
  in
  Report.kv "naive landmark relay (bytes/landmark/epoch)"
    (Printf.sprintf "mean %.0f, max %.0f (concentrated on the %d owner landmarks)"
       naive.Stats.mean naive.Stats.max (Array.length landmark_loads));
  Report.kv "overlay dissemination (bytes/node/epoch)"
    (Printf.sprintf "%.0f, spread evenly" overlay_per_node)
